// Event journal — the structured, append-only record of a campaign's rare
// transitions: crashes, hangs, fork-server respawns, seed imports, distill
// passes and worker lifecycle. Each event carries the telemetry-clock
// timestamp, the originating worker id, a seed/trace content hash (0 when
// not applicable) and a short free-form detail string.
//
// The journal is a pre-allocated ring of fixed-size POD events behind one
// mutex: events fire orders of magnitude below the execution rate (the
// lock-free guarantee of the telemetry layer applies to the per-execution
// counters, not to these transitions), and the fixed `detail` field keeps
// the append path free of heap allocations. When the ring wraps, the
// oldest events are dropped and counted — the exported JSONL says how many.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace icsfuzz::telem {

enum class EventType : std::uint8_t {
  kCampaignStart = 0,
  kCampaignStop,
  kWorkerStart,
  kWorkerStop,
  kCrash,            ///< new unique (kind, site) vulnerability
  kHang,             ///< hang fault (event budget or fork-server deadline)
  kForkServerRespawn,
  kServerLost,       ///< execution lost even after the respawn retry
  kSeedImport,       ///< peer seeds pulled from the exchange (per sync)
  kDistill,          ///< distillation pass (auto or final)
  kCheckpoint,       ///< supervisor checkpoint written (crash-safe resume)
  kOomKill,          ///< resource jail killed a child (allocation failure)
  kWatchdogKick,     ///< watchdog remediated a wedged worker
  kCount,
};

std::string_view to_string(EventType type);
std::optional<EventType> event_type_from(std::string_view name);

struct Event {
  std::uint64_t ts_ns = 0;
  std::uint64_t hash = 0;  ///< seed/trace content hash; 0 when n/a
  std::uint32_t worker = 0;
  EventType type = EventType::kCampaignStart;
  /// NUL-terminated free-form detail, truncated to fit.
  char detail[48] = {};

  [[nodiscard]] std::string_view detail_view() const {
    return std::string_view(detail);
  }
  void set_detail(std::string_view text);
  [[nodiscard]] bool operator==(const Event& other) const;
};

class EventJournal {
 public:
  explicit EventJournal(std::size_t capacity = 4096);

  void append(EventType type, std::uint64_t ts_ns, std::uint32_t worker,
              std::uint64_t hash, std::string_view detail);
  void append(const Event& event);

  /// All retained events, oldest first.
  [[nodiscard]] std::vector<Event> events() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Lifetime appends (>= size(); the difference was dropped by the ring).
  [[nodiscard]] std::uint64_t total_appended() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// One JSON object per line, oldest first:
  ///   {"ts_ns":N,"type":"crash","worker":W,"hash":"%016x","detail":"..."}
  [[nodiscard]] std::string to_jsonl() const;

  /// Parses one JSONL line (nullopt on malformed input).
  static std::optional<Event> parse_line(std::string_view line);
  /// Parses a whole JSONL document, skipping blank/malformed lines.
  static std::vector<Event> from_jsonl(std::string_view text);

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Event> ring_;   // pre-allocated to capacity_
  std::size_t next_ = 0;      // slot the next append writes
  std::size_t count_ = 0;     // live events (<= capacity_)
  std::uint64_t appended_ = 0;
};

}  // namespace icsfuzz::telem
