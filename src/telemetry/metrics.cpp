#include "telemetry/metrics.hpp"

namespace icsfuzz::telem {

std::string_view to_string(Counter counter) {
  switch (counter) {
    case Counter::kExecutions: return "executions";
    case Counter::kNewCoverageSeeds: return "new_coverage_seeds";
    case Counter::kNewPaths: return "new_paths";
    case Counter::kCrashFaults: return "crash_faults";
    case Counter::kHangFaults: return "hang_faults";
    case Counter::kUniqueCrashes: return "unique_crashes";
    case Counter::kImportedSeeds: return "imported_seeds";
    case Counter::kCrackRuns: return "crack_runs";
    case Counter::kBatchSeeds: return "batch_seeds";
    case Counter::kDistillPasses: return "distill_passes";
    case Counter::kDistillDroppedSeeds: return "distill_dropped_seeds";
    case Counter::kOopRestarts: return "oop_restarts";
    case Counter::kOopRetries: return "oop_retries";
    case Counter::kOopHangs: return "oop_hangs";
    case Counter::kOopServerLost: return "oop_server_lost";
    case Counter::kOopServerExits: return "oop_server_exits";
    case Counter::kOopChildRecycles: return "oop_child_recycles";
    case Counter::kOopOomKills: return "oop_oom_kills";
    case Counter::kCheckpointsSaved: return "checkpoints_saved";
    case Counter::kWatchdogKicks: return "watchdog_kicks";
    case Counter::kSessionsExecuted: return "sessions_executed";
    case Counter::kSessionMessages: return "session_messages";
    case Counter::kSessionNewStates: return "session_new_states";
    case Counter::kCount: break;
  }
  return "?";
}

std::string_view to_string(Gauge gauge) {
  switch (gauge) {
    case Gauge::kCorpusPuzzles: return "corpus_puzzles";
    case Gauge::kRetainedSeeds: return "retained_seeds";
    case Gauge::kPathsCovered: return "paths_covered";
    case Gauge::kEdgesCovered: return "edges_covered";
    case Gauge::kWorkersRunning: return "workers_running";
    case Gauge::kCount: break;
  }
  return "?";
}

std::string_view to_string(Histogram histogram) {
  switch (histogram) {
    case Histogram::kExecLatencyNs: return "exec_latency_ns";
    case Histogram::kPacketBytes: return "packet_bytes";
    case Histogram::kTraceDirtyWords: return "trace_dirty_words";
    case Histogram::kOopIterationsPerChild: return "oop_iterations_per_child";
    case Histogram::kCount: break;
  }
  return "?";
}

void MetricsRegistry::merge_into(Snapshot& out) const {
  for (std::size_t c = 0; c < kCounterCount; ++c) out.counters[c] = 0;
  for (std::size_t g = 0; g < kGaugeCount; ++g) out.gauges[g] = 0;
  for (std::size_t h = 0; h < kHistogramCount; ++h) {
    out.histograms[h] = HistogramSnapshot{};
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    const Shard& shard = shards_[s];
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      out.counters[c] += shard.counters[c].load(std::memory_order_relaxed);
    }
    for (std::size_t g = 0; g < kGaugeCount; ++g) {
      out.gauges[g] += shard.gauges[g].load(std::memory_order_relaxed);
    }
    for (std::size_t h = 0; h < kHistogramCount; ++h) {
      HistogramSnapshot& hist = out.histograms[h];
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        hist.buckets[b] +=
            shard.hist_buckets[h][b].load(std::memory_order_relaxed);
      }
      hist.sum += shard.hist_sum[h].load(std::memory_order_relaxed);
    }
  }
  for (std::size_t h = 0; h < kHistogramCount; ++h) {
    HistogramSnapshot& hist = out.histograms[h];
    hist.count = 0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) hist.count += hist.buckets[b];
  }
}

}  // namespace icsfuzz::telem
