// Windowed-rate aggregation — a ring of recent Snapshots turned into
// rates: execs/sec, new-edges/sec, crash-rate over 1s/10s/60s windows (or
// any window the caller asks for). The exporter pushes one snapshot per
// period; a rate is the delta between the newest snapshot and the newest
// one at least `window_ns` older, divided by the actual elapsed span — so
// early in a campaign a "60s" rate is really a since-start rate, and
// `Rate::window_seconds` reports the span actually used.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/metrics.hpp"

namespace icsfuzz::telem {

inline constexpr std::uint64_t kSecondNs = 1'000'000'000ULL;

class RateWindows {
 public:
  /// `capacity` snapshots retained (at a 1 Hz export cadence, 128 covers
  /// the 60s window with slack).
  explicit RateWindows(std::size_t capacity = 128);

  void push(const Snapshot& snapshot);

  struct Rate {
    double per_sec = 0.0;
    /// Span the rate was actually computed over (may undershoot the
    /// requested window early in a campaign).
    double window_seconds = 0.0;
    /// False until two snapshots with distinct timestamps exist.
    bool valid = false;
  };

  /// Counter delta per second over (up to) the trailing `window_ns`.
  [[nodiscard]] Rate counter_rate(Counter counter,
                                  std::uint64_t window_ns) const;
  /// Gauge delta per second (signed: gauges may shrink).
  [[nodiscard]] Rate gauge_rate(Gauge gauge, std::uint64_t window_ns) const;

  [[nodiscard]] std::size_t size() const { return count_; }
  /// Newest pushed snapshot (nullptr while empty).
  [[nodiscard]] const Snapshot* newest() const;

 private:
  /// Baseline snapshot for a window ending at the newest snapshot: the
  /// newest entry at least `window_ns` older, or the oldest entry when the
  /// ring does not reach back that far. Nullptr with fewer than 2 entries.
  [[nodiscard]] const Snapshot* base_for(std::uint64_t window_ns) const;
  [[nodiscard]] const Snapshot& at(std::size_t index_from_oldest) const;

  std::vector<Snapshot> ring_;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
};

}  // namespace icsfuzz::telem
