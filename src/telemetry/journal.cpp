#include "telemetry/journal.hpp"

#include <cstdio>
#include <cstring>

#include "util/json.hpp"
#include "util/strings.hpp"

namespace icsfuzz::telem {

std::string_view to_string(EventType type) {
  switch (type) {
    case EventType::kCampaignStart: return "campaign-start";
    case EventType::kCampaignStop: return "campaign-stop";
    case EventType::kWorkerStart: return "worker-start";
    case EventType::kWorkerStop: return "worker-stop";
    case EventType::kCrash: return "crash";
    case EventType::kHang: return "hang";
    case EventType::kForkServerRespawn: return "fork-server-respawn";
    case EventType::kServerLost: return "server-lost";
    case EventType::kSeedImport: return "seed-import";
    case EventType::kDistill: return "distill";
    case EventType::kCheckpoint: return "checkpoint";
    case EventType::kOomKill: return "oom-kill";
    case EventType::kWatchdogKick: return "watchdog-kick";
    case EventType::kCount: break;
  }
  return "?";
}

std::optional<EventType> event_type_from(std::string_view name) {
  for (std::uint8_t t = 0; t < static_cast<std::uint8_t>(EventType::kCount);
       ++t) {
    const EventType type = static_cast<EventType>(t);
    if (to_string(type) == name) return type;
  }
  return std::nullopt;
}

void Event::set_detail(std::string_view text) {
  const std::size_t n = text.size() < sizeof detail - 1 ? text.size()
                                                        : sizeof detail - 1;
  std::memcpy(detail, text.data(), n);
  detail[n] = '\0';
}

bool Event::operator==(const Event& other) const {
  return ts_ns == other.ts_ns && hash == other.hash &&
         worker == other.worker && type == other.type &&
         detail_view() == other.detail_view();
}

EventJournal::EventJournal(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void EventJournal::append(EventType type, std::uint64_t ts_ns,
                          std::uint32_t worker, std::uint64_t hash,
                          std::string_view detail) {
  Event event;
  event.ts_ns = ts_ns;
  event.type = type;
  event.worker = worker;
  event.hash = hash;
  event.set_detail(detail);
  append(event);
}

void EventJournal::append(const Event& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_[next_] = event;
  next_ = (next_ + 1) % capacity_;
  if (count_ < capacity_) ++count_;
  ++appended_;
}

std::vector<Event> EventJournal::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  out.reserve(count_);
  const std::size_t oldest = (next_ + capacity_ - count_) % capacity_;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(oldest + i) % capacity_]);
  }
  return out;
}

std::size_t EventJournal::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

std::uint64_t EventJournal::total_appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

std::uint64_t EventJournal::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_ - count_;
}

std::string EventJournal::to_jsonl() const {
  std::string out;
  for (const Event& event : events()) {
    char head[128];
    std::snprintf(head, sizeof head,
                  "{\"ts_ns\":%llu,\"type\":\"",
                  static_cast<unsigned long long>(event.ts_ns));
    out += head;
    out += to_string(event.type);
    std::snprintf(head, sizeof head, "\",\"worker\":%u,\"hash\":\"%016llx\"",
                  event.worker,
                  static_cast<unsigned long long>(event.hash));
    out += head;
    out += ",\"detail\":\"";
    out += json_escape(event.detail_view());
    out += "\"}\n";
  }
  return out;
}

std::optional<Event> EventJournal::parse_line(std::string_view line) {
  const std::optional<JsonValue> doc = json_parse(line);
  if (!doc || !doc->is_object()) return std::nullopt;
  const JsonValue* ts = doc->find("ts_ns");
  const JsonValue* type = doc->find("type");
  const JsonValue* worker = doc->find("worker");
  const JsonValue* hash = doc->find("hash");
  const JsonValue* detail = doc->find("detail");
  if (ts == nullptr || !ts->is_u64 || type == nullptr || !type->is_string()) {
    return std::nullopt;
  }
  const std::optional<EventType> parsed_type = event_type_from(type->string);
  if (!parsed_type) return std::nullopt;

  Event event;
  event.ts_ns = ts->u64;
  event.type = *parsed_type;
  if (worker != nullptr && worker->is_u64) {
    event.worker = static_cast<std::uint32_t>(worker->u64);
  }
  if (hash != nullptr && hash->is_string()) {
    // Hashes travel as zero-padded hex strings to dodge double rounding.
    if (const auto value = parse_uint("0x" + hash->string)) {
      event.hash = *value;
    }
  }
  if (detail != nullptr && detail->is_string()) {
    event.set_detail(detail->string);
  }
  return event;
}

std::vector<Event> EventJournal::from_jsonl(std::string_view text) {
  // A journal being appended by a live campaign can be read torn: the
  // final line may be a partial record that would either fail to parse or
  // — worse — parse as a truncated-but-valid prefix. Complete journals
  // always end with a newline, so an unterminated trailing line is
  // dropped; a follower (icsfuzz-stats --follow) re-reads it whole on the
  // next pass.
  if (!text.empty() && text.back() != '\n') {
    const std::size_t last = text.rfind('\n');
    text = last == std::string_view::npos ? std::string_view()
                                          : text.substr(0, last + 1);
  }
  std::vector<Event> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = trim(text.substr(start, end - start));
    if (!line.empty()) {
      if (const std::optional<Event> event = parse_line(line)) {
        out.push_back(*event);
      }
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  return out;
}

}  // namespace icsfuzz::telem
