// Metrics registry — lock-free, allocation-free-on-the-hot-path campaign
// counters, gauges and log2 histograms.
//
// Sharding mirrors the SeedExchange: each worker writes a private
// cache-line-aligned Shard (worker id picks the slot), so the fuzzing hot
// loop never contends with peers or with snapshot readers. Writes are
// owner-thread-only and use a relaxed load+store pair rather than an
// atomic RMW — on every mainstream ISA that compiles to a plain add, which
// is what keeps a counter bump at ~1 ns and the whole instrumented hot
// path inside the bench_telemetry 2% budget. Snapshot readers sum the
// shards with relaxed loads; the result is a consistent-enough view for
// rate math (monotonic counters can only be observed late, never torn:
// 64-bit aligned atomics).
//
// Histogram buckets are log2 of the observed value (bucket 0 holds zeros,
// bucket i holds values with bit-width i), so one `observe` is two plain
// adds (bucket + running sum) and the per-histogram count is derived at
// snapshot time as the bucket total.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

namespace icsfuzz::telem {

/// Monotonic counters (resettable only by constructing a fresh registry).
enum class Counter : std::uint8_t {
  kExecutions = 0,
  kNewCoverageSeeds,    ///< valuable seeds (new-edge executions)
  kNewPaths,            ///< new whole-trace hashes
  kCrashFaults,         ///< fault reports excluding hangs
  kHangFaults,          ///< hang fault reports (budget or deadline)
  kUniqueCrashes,       ///< first sighting of a (kind, site) pair
  kImportedSeeds,       ///< peer seeds queued via import_external_seed
  kCrackRuns,           ///< File Cracker invocations
  kBatchSeeds,          ///< combinatorial-batch seeds scheduled
  kDistillPasses,       ///< auto-distill minimizations
  kDistillDroppedSeeds, ///< retained seeds pruned by auto-distill
  kOopRestarts,         ///< fork-server respawns after a loss
  kOopRetries,          ///< packets re-run across a respawn
  kOopHangs,            ///< wall-clock deadline kills (SIGKILLed child)
  kOopServerLost,       ///< executions lost even after the respawn retry
  kOopServerExits,      ///< orderly fork-server exits absorbed by respawn
  kOopChildRecycles,    ///< persistent children recycled (budget/crash/hang)
  kOopOomKills,         ///< resource-jail allocation-failure kills
  kCheckpointsSaved,    ///< supervisor checkpoints written to disk
  kWatchdogKicks,       ///< wedged workers remediated by the watchdog
  kSessionsExecuted,    ///< stateful session executions (session backends)
  kSessionMessages,     ///< framed messages driven across all sessions
  kSessionNewStates,    ///< first sightings of a hashed session state
  kCount,
};
inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// Last-written-value metrics (summed across shards on snapshot, so a
/// per-worker gauge like kWorkersRunning merges into a campaign total).
enum class Gauge : std::uint8_t {
  kCorpusPuzzles = 0,  ///< puzzle-corpus size
  kRetainedSeeds,      ///< retained valuable-seed pool size
  kPathsCovered,       ///< accumulated distinct paths
  kEdgesCovered,       ///< accumulated covered edges
  kWorkersRunning,     ///< 1 while the shard's worker loop is live
  kCount,
};
inline constexpr std::size_t kGaugeCount =
    static_cast<std::size_t>(Gauge::kCount);

enum class Histogram : std::uint8_t {
  kExecLatencyNs = 0,  ///< sampled wall time of one execution
  kPacketBytes,        ///< generated packet size
  kTraceDirtyWords,    ///< dirty coverage words per execution
  kOopIterationsPerChild,  ///< executions a persistent child served before
                           ///< recycling (observed at each recycle)
  kCount,
};
inline constexpr std::size_t kHistogramCount =
    static_cast<std::size_t>(Histogram::kCount);

/// Exported snake_case metric names (stable; part of the snapshot schema).
std::string_view to_string(Counter counter);
std::string_view to_string(Gauge gauge);
std::string_view to_string(Histogram histogram);

/// Fixed log2 bucket count: bucket 47 holds everything >= 2^46 ns (~19.5h
/// as a latency), far beyond any observable single value here.
inline constexpr std::size_t kHistBuckets = 48;

/// Bucket index of a value: 0 for 0, else its bit width (clamped).
[[nodiscard]] inline std::size_t bucket_of(std::uint64_t value) {
  if (value == 0) return 0;
  const std::size_t width = static_cast<std::size_t>(std::bit_width(value));
  return width < kHistBuckets ? width : kHistBuckets - 1;
}

/// Smallest value that lands in bucket `index` (0 for bucket 0).
[[nodiscard]] inline std::uint64_t bucket_floor(std::size_t index) {
  return index == 0 ? 0 : std::uint64_t{1} << (index - 1);
}

/// Largest value that lands in bucket `index` (the Prometheus `le` bound;
/// the last bucket is unbounded).
[[nodiscard]] inline std::uint64_t bucket_ceil(std::size_t index) {
  if (index == 0) return 0;
  if (index >= kHistBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << index) - 1;
}

/// One worker's private slice of the registry. Exactly one thread writes a
/// shard at a time (the worker that owns it); any thread may read.
struct alignas(64) Shard {
  std::atomic<std::uint64_t> counters[kCounterCount] = {};
  std::atomic<std::uint64_t> gauges[kGaugeCount] = {};
  std::atomic<std::uint64_t> hist_buckets[kHistogramCount][kHistBuckets] = {};
  std::atomic<std::uint64_t> hist_sum[kHistogramCount] = {};

  // Owner-thread-only writes: relaxed load+store compiles to a plain add,
  // never an atomic RMW. Readers observe each cell atomically.
  void add(Counter counter, std::uint64_t delta = 1) {
    auto& cell = counters[static_cast<std::size_t>(counter)];
    cell.store(cell.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
  }
  void set(Gauge gauge, std::uint64_t value) {
    gauges[static_cast<std::size_t>(gauge)].store(value,
                                                  std::memory_order_relaxed);
  }
  void observe(Histogram histogram, std::uint64_t value) {
    const std::size_t h = static_cast<std::size_t>(histogram);
    auto& bucket = hist_buckets[h][bucket_of(value)];
    bucket.store(bucket.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    auto& sum = hist_sum[h];
    sum.store(sum.load(std::memory_order_relaxed) + value,
              std::memory_order_relaxed);
  }
};

/// Point-in-time merge of all shards (plain integers; safe to copy, store
/// in RateWindows rings, or serialize).
struct HistogramSnapshot {
  std::uint64_t buckets[kHistBuckets] = {};
  std::uint64_t count = 0;  ///< derived: sum of buckets
  std::uint64_t sum = 0;

  [[nodiscard]] bool operator==(const HistogramSnapshot&) const = default;

  /// Mean observed value (0 when empty).
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

struct Snapshot {
  std::uint64_t ts_ns = 0;
  std::uint64_t counters[kCounterCount] = {};
  std::uint64_t gauges[kGaugeCount] = {};
  HistogramSnapshot histograms[kHistogramCount] = {};

  [[nodiscard]] std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t gauge(Gauge g) const {
    return gauges[static_cast<std::size_t>(g)];
  }
  [[nodiscard]] const HistogramSnapshot& histogram(Histogram h) const {
    return histograms[static_cast<std::size_t>(h)];
  }
  [[nodiscard]] bool operator==(const Snapshot&) const = default;
};

class MetricsRegistry {
 public:
  /// Shard slots; worker ids map in modulo (a 64-way campaign uses every
  /// slot exclusively; beyond that, workers start sharing — still correct
  /// for counters because writes are per-owner serialized by the modulo
  /// only when worker counts exceed kShards, which no current campaign
  /// configuration does).
  static constexpr std::size_t kShards = 64;

  MetricsRegistry() : shards_(std::make_unique<Shard[]>(kShards)) {}

  [[nodiscard]] Shard& shard(std::uint32_t worker) {
    return shards_[worker & (kShards - 1)];
  }

  /// Sums every shard into `out` (ts_ns left untouched — the Telemetry hub
  /// stamps it from its clock).
  void merge_into(Snapshot& out) const;

 private:
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace icsfuzz::telem
