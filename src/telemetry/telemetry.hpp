// Telemetry hub + Sink — how the engine talks to the observability layer.
//
// A Telemetry owns the three campaign-wide surfaces: the shared Clock, the
// sharded MetricsRegistry and the EventJournal. Engine components never
// hold the hub directly; they hold a Sink — a two-pointer handle binding
// one worker's registry shard to the hub. Every Sink operation is
// null-guarded, so a default-constructed (disabled) Sink turns the entire
// instrumentation surface into a predictable not-taken branch; that branch
// plus the plain-add shard writes is the whole hot-path cost, gated <= 2%
// by bench_telemetry.
//
// Determinism contract: nothing in this layer is ever *read* by the
// fuzzing loop — sinks record, exporters observe. Enabling or disabling
// telemetry therefore cannot change a campaign's coverage or corpus
// trajectory (asserted by test_telemetry.cpp and bench_telemetry).
#pragma once

#include <cstdint>
#include <string_view>

#include "telemetry/clock.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/metrics.hpp"

namespace icsfuzz::telem {

/// Exec-latency clock sampling: one steady-clock read pair every 64th
/// execution (decided on the execution count, so sampling is deterministic
/// and identical across repeats), amortizing the ~40ns cost to well under
/// a nanosecond per execution.
inline constexpr std::uint64_t kLatencySampleInterval = 64;

class Telemetry {
 public:
  explicit Telemetry(std::size_t journal_capacity = 4096)
      : journal_(journal_capacity) {}

  [[nodiscard]] Clock& clock() { return clock_; }
  [[nodiscard]] const Clock& clock() const { return clock_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] EventJournal& journal() { return journal_; }
  [[nodiscard]] const EventJournal& journal() const { return journal_; }

  /// Merges all shards and stamps the clock.
  [[nodiscard]] Snapshot snapshot() const {
    Snapshot out;
    metrics_.merge_into(out);
    out.ts_ns = clock_.now_ns();
    return out;
  }

  /// The process-wide default hub (what FuzzerConfig binds by default).
  static Telemetry& global();

 private:
  Clock clock_;
  MetricsRegistry metrics_;
  EventJournal journal_;
};

class Sink {
 public:
  /// Disabled sink: every operation is a cheap no-op.
  Sink() = default;

  /// Binds worker `worker`'s shard of `hub` (hub must outlive the sink).
  Sink(Telemetry* hub, std::uint32_t worker)
      : hub_(hub), shard_(&hub->metrics().shard(worker)), worker_(worker) {}

  /// Sink on the process-wide default hub.
  static Sink global(std::uint32_t worker) {
    return Sink(&Telemetry::global(), worker);
  }

  [[nodiscard]] bool enabled() const { return shard_ != nullptr; }
  explicit operator bool() const { return enabled(); }

  void add(Counter counter, std::uint64_t delta = 1) const {
    if (shard_ != nullptr) shard_->add(counter, delta);
  }
  void set(Gauge gauge, std::uint64_t value) const {
    if (shard_ != nullptr) shard_->set(gauge, value);
  }
  void observe(Histogram histogram, std::uint64_t value) const {
    if (shard_ != nullptr) shard_->observe(histogram, value);
  }

  /// Telemetry-clock reading (0 when disabled).
  [[nodiscard]] std::uint64_t now_ns() const {
    return hub_ != nullptr ? hub_->clock().now_ns() : 0;
  }

  /// Journals an event stamped with the hub clock and this sink's worker.
  void event(EventType type, std::uint64_t hash,
             std::string_view detail) const {
    if (hub_ != nullptr) {
      hub_->journal().append(type, hub_->clock().now_ns(), worker_, hash,
                             detail);
    }
  }

  [[nodiscard]] Telemetry* hub() const { return hub_; }
  [[nodiscard]] std::uint32_t worker() const { return worker_; }

 private:
  Telemetry* hub_ = nullptr;
  Shard* shard_ = nullptr;
  std::uint32_t worker_ = 0;
};

}  // namespace icsfuzz::telem
