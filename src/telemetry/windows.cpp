#include "telemetry/windows.hpp"

namespace icsfuzz::telem {

RateWindows::RateWindows(std::size_t capacity) {
  ring_.resize(capacity == 0 ? 2 : capacity);
}

void RateWindows::push(const Snapshot& snapshot) {
  ring_[next_] = snapshot;
  next_ = (next_ + 1) % ring_.size();
  if (count_ < ring_.size()) ++count_;
}

const Snapshot& RateWindows::at(std::size_t index_from_oldest) const {
  const std::size_t oldest = (next_ + ring_.size() - count_) % ring_.size();
  return ring_[(oldest + index_from_oldest) % ring_.size()];
}

const Snapshot* RateWindows::newest() const {
  return count_ == 0 ? nullptr : &at(count_ - 1);
}

const Snapshot* RateWindows::base_for(std::uint64_t window_ns) const {
  if (count_ < 2) return nullptr;
  const std::uint64_t newest_ts = at(count_ - 1).ts_ns;
  const std::uint64_t cutoff =
      newest_ts >= window_ns ? newest_ts - window_ns : 0;
  // Walk newest-to-oldest for the first snapshot old enough; entries are
  // pushed in timestamp order, so this is the *newest* qualifying base.
  for (std::size_t i = count_ - 1; i-- > 0;) {
    if (at(i).ts_ns <= cutoff) return &at(i);
  }
  return &at(0);  // window reaches past the ring: rate since the oldest
}

RateWindows::Rate RateWindows::counter_rate(Counter counter,
                                            std::uint64_t window_ns) const {
  Rate rate;
  const Snapshot* base = base_for(window_ns);
  if (base == nullptr) return rate;
  const Snapshot& head = at(count_ - 1);
  if (head.ts_ns <= base->ts_ns) return rate;
  const double span_seconds =
      static_cast<double>(head.ts_ns - base->ts_ns) / 1e9;
  rate.per_sec = static_cast<double>(head.counter(counter) -
                                     base->counter(counter)) /
                 span_seconds;
  rate.window_seconds = span_seconds;
  rate.valid = true;
  return rate;
}

RateWindows::Rate RateWindows::gauge_rate(Gauge gauge,
                                          std::uint64_t window_ns) const {
  Rate rate;
  const Snapshot* base = base_for(window_ns);
  if (base == nullptr) return rate;
  const Snapshot& head = at(count_ - 1);
  if (head.ts_ns <= base->ts_ns) return rate;
  const double span_seconds =
      static_cast<double>(head.ts_ns - base->ts_ns) / 1e9;
  rate.per_sec = (static_cast<double>(head.gauge(gauge)) -
                  static_cast<double>(base->gauge(gauge))) /
                 span_seconds;
  rate.window_seconds = span_seconds;
  rate.valid = true;
  return rate;
}

}  // namespace icsfuzz::telem
