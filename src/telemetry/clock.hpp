// Telemetry clock — the single time source behind every observability
// timestamp: metrics snapshots, windowed rates, journal events, and the
// wall-clock column of StatsSeries checkpoints.
//
// Real mode reads the steady clock relative to the Clock's construction,
// so readings are campaign-relative nanoseconds and strictly monotonic.
// Manual mode pins the reading to a caller-driven value: deterministic
// tests and replayed campaigns advance time by hand and get byte-identical
// exports — the fuzzing trajectory itself never branches on a clock
// reading (timestamps are recorded, never consulted), which is what keeps
// telemetry-on campaigns bit-identical to telemetry-off ones.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace icsfuzz::telem {

class Clock {
 public:
  Clock() : origin_(std::chrono::steady_clock::now()) {}

  /// Nanoseconds since construction (real mode) or the pinned manual value.
  [[nodiscard]] std::uint64_t now_ns() const {
    if (manual_.load(std::memory_order_relaxed)) {
      return manual_ns_.load(std::memory_order_relaxed);
    }
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - origin_)
            .count());
  }

  /// Switches to manual mode and pins the reading to `ns`.
  void set_manual(std::uint64_t ns) {
    manual_ns_.store(ns, std::memory_order_relaxed);
    manual_.store(true, std::memory_order_relaxed);
  }

  /// Manual mode: moves the pinned reading forward by `ns`.
  void advance(std::uint64_t ns) {
    manual_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  [[nodiscard]] bool manual() const {
    return manual_.load(std::memory_order_relaxed);
  }

 private:
  std::chrono::steady_clock::time_point origin_;
  std::atomic<std::uint64_t> manual_ns_{0};
  std::atomic<bool> manual_{false};
};

}  // namespace icsfuzz::telem
