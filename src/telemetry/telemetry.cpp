#include "telemetry/telemetry.hpp"

namespace icsfuzz::telem {

Telemetry& Telemetry::global() {
  // Leaked on purpose: sinks bound to the global hub may outlive static
  // destruction order (worker threads, exit-time flushes).
  static Telemetry* instance = new Telemetry();
  return *instance;
}

}  // namespace icsfuzz::telem
