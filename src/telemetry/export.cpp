#include "telemetry/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/json.hpp"
#include "util/strings.hpp"

namespace icsfuzz::telem {
namespace {

void append_u64(std::string& out, std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%" PRIu64, value);
  out += buffer;
}

void append_double(std::string& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  out += buffer;
}

void append_rate_window(std::string& out, const RateWindows& rates,
                        std::uint64_t window_ns) {
  const RateWindows::Rate execs =
      rates.counter_rate(Counter::kExecutions, window_ns);
  const RateWindows::Rate edges =
      rates.gauge_rate(Gauge::kEdgesCovered, window_ns);
  const RateWindows::Rate paths =
      rates.gauge_rate(Gauge::kPathsCovered, window_ns);
  const RateWindows::Rate crashes =
      rates.counter_rate(Counter::kCrashFaults, window_ns);
  out += "{\"valid\":";
  out += execs.valid ? "true" : "false";
  out += ",\"window_seconds\":";
  append_double(out, execs.window_seconds);
  out += ",\"execs_per_sec\":";
  append_double(out, execs.per_sec);
  out += ",\"new_edges_per_sec\":";
  append_double(out, edges.per_sec);
  out += ",\"new_paths_per_sec\":";
  append_double(out, paths.per_sec);
  out += ",\"crash_faults_per_sec\":";
  append_double(out, crashes.per_sec);
  out += "}";
}

}  // namespace

std::string to_json(const Snapshot& snapshot, const RateWindows* rates) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"";
  out += kSnapshotSchema;
  out += "\",\n  \"ts_ns\": ";
  append_u64(out, snapshot.ts_ns);
  out += ",\n  \"counters\": {";
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    if (c != 0) out += ", ";
    out += "\"";
    out += to_string(static_cast<Counter>(c));
    out += "\": ";
    append_u64(out, snapshot.counters[c]);
  }
  out += "},\n  \"gauges\": {";
  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    if (g != 0) out += ", ";
    out += "\"";
    out += to_string(static_cast<Gauge>(g));
    out += "\": ";
    append_u64(out, snapshot.gauges[g]);
  }
  out += "},\n  \"histograms\": {";
  for (std::size_t h = 0; h < kHistogramCount; ++h) {
    const HistogramSnapshot& hist = snapshot.histograms[h];
    if (h != 0) out += ",";
    out += "\n    \"";
    out += to_string(static_cast<Histogram>(h));
    out += "\": {\"count\": ";
    append_u64(out, hist.count);
    out += ", \"sum\": ";
    append_u64(out, hist.sum);
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (b != 0) out += ",";
      append_u64(out, hist.buckets[b]);
    }
    out += "]}";
  }
  out += "\n  }";
  if (rates != nullptr) {
    out += ",\n  \"rates\": {\"1s\": ";
    append_rate_window(out, *rates, kSecondNs);
    out += ", \"10s\": ";
    append_rate_window(out, *rates, 10 * kSecondNs);
    out += ", \"60s\": ";
    append_rate_window(out, *rates, 60 * kSecondNs);
    out += "}";
  }
  out += "\n}\n";
  return out;
}

std::optional<Snapshot> snapshot_from_json(std::string_view text) {
  const std::optional<JsonValue> doc = json_parse(text);
  if (!doc || !doc->is_object()) return std::nullopt;
  const JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != kSnapshotSchema) {
    return std::nullopt;
  }
  Snapshot out;
  if (const JsonValue* ts = doc->find("ts_ns"); ts != nullptr && ts->is_u64) {
    out.ts_ns = ts->u64;
  }
  if (const JsonValue* counters = doc->find("counters");
      counters != nullptr && counters->is_object()) {
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      const JsonValue* cell =
          counters->find(to_string(static_cast<Counter>(c)));
      if (cell != nullptr && cell->is_u64) out.counters[c] = cell->u64;
    }
  }
  if (const JsonValue* gauges = doc->find("gauges");
      gauges != nullptr && gauges->is_object()) {
    for (std::size_t g = 0; g < kGaugeCount; ++g) {
      const JsonValue* cell = gauges->find(to_string(static_cast<Gauge>(g)));
      if (cell != nullptr && cell->is_u64) out.gauges[g] = cell->u64;
    }
  }
  if (const JsonValue* histograms = doc->find("histograms");
      histograms != nullptr && histograms->is_object()) {
    for (std::size_t h = 0; h < kHistogramCount; ++h) {
      const JsonValue* hist =
          histograms->find(to_string(static_cast<Histogram>(h)));
      if (hist == nullptr || !hist->is_object()) continue;
      HistogramSnapshot& into = out.histograms[h];
      if (const JsonValue* count = hist->find("count");
          count != nullptr && count->is_u64) {
        into.count = count->u64;
      }
      if (const JsonValue* sum = hist->find("sum");
          sum != nullptr && sum->is_u64) {
        into.sum = sum->u64;
      }
      if (const JsonValue* buckets = hist->find("buckets");
          buckets != nullptr && buckets->is_array()) {
        for (std::size_t b = 0;
             b < buckets->items.size() && b < kHistBuckets; ++b) {
          if (buckets->items[b].is_u64) into.buckets[b] = buckets->items[b].u64;
        }
      }
    }
  }
  return out;
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  out.reserve(8192);
  char line[160];
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    const std::string_view name = to_string(static_cast<Counter>(c));
    std::snprintf(line, sizeof line,
                  "# TYPE icsfuzz_%.*s_total counter\n"
                  "icsfuzz_%.*s_total %" PRIu64 "\n",
                  static_cast<int>(name.size()), name.data(),
                  static_cast<int>(name.size()), name.data(),
                  snapshot.counters[c]);
    out += line;
  }
  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    const std::string_view name = to_string(static_cast<Gauge>(g));
    std::snprintf(line, sizeof line,
                  "# TYPE icsfuzz_%.*s gauge\n"
                  "icsfuzz_%.*s %" PRIu64 "\n",
                  static_cast<int>(name.size()), name.data(),
                  static_cast<int>(name.size()), name.data(),
                  snapshot.gauges[g]);
    out += line;
  }
  for (std::size_t h = 0; h < kHistogramCount; ++h) {
    const std::string_view name = to_string(static_cast<Histogram>(h));
    const HistogramSnapshot& hist = snapshot.histograms[h];
    std::snprintf(line, sizeof line, "# TYPE icsfuzz_%.*s histogram\n",
                  static_cast<int>(name.size()), name.data());
    out += line;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      cumulative += hist.buckets[b];
      // Skip interior empty tail buckets; always emit +Inf below.
      if (hist.buckets[b] == 0 && b != 0) continue;
      std::snprintf(line, sizeof line,
                    "icsfuzz_%.*s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                    static_cast<int>(name.size()), name.data(),
                    bucket_ceil(b), cumulative);
      out += line;
    }
    std::snprintf(line, sizeof line,
                  "icsfuzz_%.*s_bucket{le=\"+Inf\"} %" PRIu64 "\n"
                  "icsfuzz_%.*s_sum %" PRIu64 "\n"
                  "icsfuzz_%.*s_count %" PRIu64 "\n",
                  static_cast<int>(name.size()), name.data(), hist.count,
                  static_cast<int>(name.size()), name.data(), hist.sum,
                  static_cast<int>(name.size()), name.data(), hist.count);
    out += line;
  }
  return out;
}

std::optional<std::string> write_text_atomic(const std::string& path,
                                             const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return "cannot open " + tmp;
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    if (!out) return "cannot write " + tmp;
  }
  std::error_code error;
  std::filesystem::rename(tmp, path, error);
  if (error) return "cannot rename " + tmp + ": " + error.message();
  return std::nullopt;
}

std::optional<std::string> export_live(const Telemetry& hub,
                                       RateWindows& rates,
                                       const std::string& directory) {
  std::error_code error;
  std::filesystem::create_directories(directory, error);
  if (error) {
    return "cannot create " + directory + ": " + error.message();
  }
  rates.push(hub.snapshot());
  const std::filesystem::path root(directory);
  if (auto err = write_text_atomic((root / kMetricsFile).string(),
                                   to_json(*rates.newest(), &rates))) {
    return err;
  }
  if (auto err = write_text_atomic((root / kPrometheusFile).string(),
                                   to_prometheus(*rates.newest()))) {
    return err;
  }
  return write_text_atomic((root / kJournalFile).string(),
                           hub.journal().to_jsonl());
}

}  // namespace icsfuzz::telem
