// Exporters — the three ways a campaign's telemetry leaves the process:
//
//   * to_json / snapshot_from_json — the machine-readable snapshot (the
//     format `schemas/metrics_snapshot.schema.json` pins and
//     `scripts/check_metrics_schema.py` validates in CI); counters and
//     gauges are exact integers, 64-bit hashes travel as hex strings.
//   * to_prometheus — Prometheus text exposition (counters as `_total`,
//     log2 histograms as cumulative `_bucket{le=...}` series).
//   * export_live — the periodic file exporter behind a live campaign
//     directory: pushes a fresh snapshot into the caller's RateWindows,
//     then atomically (tmp + rename) rewrites metrics.json, metrics.prom
//     and journal.jsonl so `icsfuzz-stats` can tail the directory without
//     ever observing a torn file.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "telemetry/telemetry.hpp"
#include "telemetry/windows.hpp"

namespace icsfuzz::telem {

inline constexpr std::string_view kSnapshotSchema =
    "icsfuzz-telemetry-snapshot-v1";

/// File names export_live maintains under the campaign directory.
inline constexpr std::string_view kMetricsFile = "metrics.json";
inline constexpr std::string_view kPrometheusFile = "metrics.prom";
inline constexpr std::string_view kJournalFile = "journal.jsonl";

/// Serializes a snapshot (optionally with 1s/10s/60s rates from `rates`).
std::string to_json(const Snapshot& snapshot,
                    const RateWindows* rates = nullptr);

/// Parses a to_json document (nullopt on malformed or wrong-schema input).
std::optional<Snapshot> snapshot_from_json(std::string_view text);

/// Prometheus text exposition format of the same snapshot.
std::string to_prometheus(const Snapshot& snapshot);

/// Writes `text` to `path` atomically (tmp file + rename). Returns an
/// error message on failure, nullopt on success.
std::optional<std::string> write_text_atomic(const std::string& path,
                                             const std::string& text);

/// One live-export step: snapshot `hub`, push into `rates`, rewrite
/// kMetricsFile/kPrometheusFile/kJournalFile under `directory` (created if
/// absent). Returns an error message on failure, nullopt on success.
std::optional<std::string> export_live(const Telemetry& hub,
                                       RateWindows& rates,
                                       const std::string& directory);

}  // namespace icsfuzz::telem
