// Modbus/TCP server — re-implementation of the packet-processing layer of
// libmodbus (the paper's first evaluation subject).
//
// Implements the MBAP + PDU pipeline for the standard data-access function
// codes (0x01-0x06, 0x0F, 0x10, 0x16, 0x17) plus Read Device Identification
// (0x2B/0x0E), over in-memory coil/register banks, with standard exception
// responses (illegal function / address / value).
//
// Injected vulnerabilities (Table I, libmodbus row):
//   * Heap Use after Free — the Read/Write Multiple Registers (0x17) handler
//     frees its response scratch buffer on the "empty write set" path and
//     then appends the read payload to it (site "modbus-rwmulti-uaf").
//   * SEGV — the Read Device Identification handler indexes the device-id
//     object table with an unvalidated object id when individual access
//     (ReadDevId 0x04) is requested (site "modbus-devid-oob").
//
// Both sites hide behind multiple semantic gates (correct function code,
// sub-code, in-range addresses) so they sit on deep paths, as the paper's
// bugs did.
#pragma once

#include <array>
#include <cstdint>

#include "protocols/protocol_target.hpp"

namespace icsfuzz::proto {

class ModbusServer final : public ProtocolTarget {
 public:
  ModbusServer();

  [[nodiscard]] std::string_view name() const override { return "libmodbus"; }
  void reset() override;

  /// Consumes a TCP-style stream of MBAP frames (up to kMaxFramesPerStream)
  /// and returns the concatenated responses.
  Bytes process(ByteSpan packet) override;

  /// Allocation-free hot path: responses assemble in member scratch
  /// writers whose capacity converges, then copy into the caller's reused
  /// buffer. Byte-identical to process().
  void process_into(ByteSpan packet, Bytes& response) override;

  static constexpr std::size_t kMaxFramesPerStream = 8;

  // -- Introspection for tests. --
  static constexpr std::size_t kNumCoils = 128;
  static constexpr std::size_t kNumRegisters = 128;
  static constexpr std::uint8_t kUnitId = 0x11;

  [[nodiscard]] bool coil(std::size_t index) const { return coils_.at(index); }
  [[nodiscard]] std::uint16_t holding_register(std::size_t index) const {
    return holding_.at(index);
  }

 private:
  // Handlers append into pdu_writer_; an empty PDU afterwards means "drop
  // the frame" (handlers clear the writer to abandon partial output).
  void process_frame(ByteSpan frame);
  void handle_pdu(ByteSpan pdu, std::uint16_t transaction, std::uint8_t unit);

  void read_bits(ByteSpan body, bool discrete);
  void read_registers(ByteSpan body, bool input_bank);
  void write_single_coil(ByteSpan body);
  void write_single_register(ByteSpan body);
  void write_multiple_coils(ByteSpan body);
  void write_multiple_registers(ByteSpan body);
  void mask_write_register(ByteSpan body);
  void read_write_multiple(ByteSpan body);  // 0x17 — UAF site lives here
  void read_device_identification(ByteSpan body);  // 0x2B — SEGV site

  void exception_response(std::uint8_t function, std::uint8_t code);

  std::array<bool, kNumCoils> coils_{};
  std::array<bool, kNumCoils> discrete_{};
  std::array<std::uint16_t, kNumRegisters> holding_{};
  std::array<std::uint16_t, kNumRegisters> input_{};
  std::uint32_t diagnostic_counter_ = 0;

  // Reused response scratch (see process_into).
  ByteWriter response_writer_;
  ByteWriter pdu_writer_;
};

}  // namespace icsfuzz::proto
