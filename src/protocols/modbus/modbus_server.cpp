#include "protocols/modbus/modbus_server.hpp"

#include <algorithm>

#include "coverage/instrument.hpp"
#include "sanitizer/guard.hpp"

namespace icsfuzz::proto {
namespace {

// Modbus function codes handled by this stack.
constexpr std::uint8_t kReadCoils = 0x01;
constexpr std::uint8_t kReadDiscreteInputs = 0x02;
constexpr std::uint8_t kReadHoldingRegisters = 0x03;
constexpr std::uint8_t kReadInputRegisters = 0x04;
constexpr std::uint8_t kWriteSingleCoil = 0x05;
constexpr std::uint8_t kWriteSingleRegister = 0x06;
constexpr std::uint8_t kWriteMultipleCoils = 0x0F;
constexpr std::uint8_t kWriteMultipleRegisters = 0x10;
constexpr std::uint8_t kMaskWriteRegister = 0x16;
constexpr std::uint8_t kReadWriteMultiple = 0x17;
constexpr std::uint8_t kEncapsulatedInterface = 0x2B;

// Exception codes.
constexpr std::uint8_t kIllegalFunction = 0x01;
constexpr std::uint8_t kIllegalDataAddress = 0x02;
constexpr std::uint8_t kIllegalDataValue = 0x03;

// Device identification objects (VendorName, ProductCode, Revision).
constexpr const char* kDeviceIdObjects[] = {"icsfuzz", "MBSRV-1", "v1.0.0"};
constexpr std::size_t kDeviceIdObjectCount = 3;

}  // namespace

ModbusServer::ModbusServer() { reset(); }

void ModbusServer::reset() {
  coils_.fill(false);
  discrete_.fill(false);
  holding_.fill(0);
  input_.fill(0);
  // A few plant-like preset values so reads return non-trivial data.
  for (std::size_t i = 0; i < kNumRegisters; ++i) {
    input_[i] = static_cast<std::uint16_t>(0x0100 + i);
  }
  for (std::size_t i = 0; i < kNumCoils; i += 3) discrete_[i] = true;
  diagnostic_counter_ = 0;
}

Bytes ModbusServer::process(ByteSpan packet) {
  Bytes response;
  process_into(packet, response);
  return response;
}

void ModbusServer::process_into(ByteSpan packet, Bytes& response) {
  ICSFUZZ_COV_BLOCK();
  // TCP stream framing: each MBAP frame occupies 6 + length bytes; a
  // partial trailing frame means "wait for more data" and ends the drain.
  response_writer_.clear();
  std::size_t offset = 0;
  for (std::size_t frames = 0; frames < kMaxFramesPerStream; ++frames) {
    if (packet.size() - offset < 7) break;  // no complete header left
    const std::uint16_t declared = static_cast<std::uint16_t>(
        (packet[offset + 4] << 8) | packet[offset + 5]);
    const std::size_t frame_size = 6 + static_cast<std::size_t>(declared);
    if (declared < 1 || packet.size() - offset < frame_size) break;
    ICSFUZZ_COV_BLOCK();
    process_frame(packet.subspan(offset, frame_size));
    if (san::FaultSink::tripped()) break;  // the server process just died
    offset += frame_size;
  }
  const Bytes& out = response_writer_.bytes();
  response.assign(out.begin(), out.end());
}

void ModbusServer::process_frame(ByteSpan packet) {
  ICSFUZZ_COV_BLOCK();
  // --- MBAP header ------------------------------------------------------
  ByteReader reader(packet);
  const std::uint16_t transaction = reader.read_u16(Endian::Big);
  const std::uint16_t protocol = reader.read_u16(Endian::Big);
  const std::uint16_t length = reader.read_u16(Endian::Big);
  const std::uint8_t unit = reader.read_u8();
  if (!reader.ok()) {
    ICSFUZZ_COV_BLOCK();
    return;  // runt frame
  }
  if (protocol != 0) {
    ICSFUZZ_COV_BLOCK();
    return;  // not Modbus
  }
  if (length < 2 || length > 254) {
    ICSFUZZ_COV_BLOCK();
    return;  // MBAP length out of spec
  }
  if (reader.remaining() + 1 != length) {
    ICSFUZZ_COV_BLOCK();
    return;  // declared length disagrees with frame
  }
  if (unit != kUnitId && unit != 0x00 && unit != 0xFF) {
    ICSFUZZ_COV_BLOCK();
    return;  // not addressed to us
  }
  ICSFUZZ_COV_BLOCK();
  handle_pdu(ByteSpan(packet.data() + 7, packet.size() - 7), transaction,
             unit);
}

void ModbusServer::handle_pdu(ByteSpan pdu, std::uint16_t transaction,
                              std::uint8_t unit) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(pdu);
  const std::uint8_t function = reader.read_u8();
  if (!reader.ok()) return;
  const ByteSpan body = pdu.subspan(1);

  pdu_writer_.clear();
  switch (function) {
    case kReadCoils:
      ICSFUZZ_COV_BLOCK();
      read_bits(body, false);
      break;
    case kReadDiscreteInputs:
      ICSFUZZ_COV_BLOCK();
      read_bits(body, true);
      break;
    case kReadHoldingRegisters:
      ICSFUZZ_COV_BLOCK();
      read_registers(body, false);
      break;
    case kReadInputRegisters:
      ICSFUZZ_COV_BLOCK();
      read_registers(body, true);
      break;
    case kWriteSingleCoil:
      ICSFUZZ_COV_BLOCK();
      write_single_coil(body);
      break;
    case kWriteSingleRegister:
      ICSFUZZ_COV_BLOCK();
      write_single_register(body);
      break;
    case kWriteMultipleCoils:
      ICSFUZZ_COV_BLOCK();
      write_multiple_coils(body);
      break;
    case kWriteMultipleRegisters:
      ICSFUZZ_COV_BLOCK();
      write_multiple_registers(body);
      break;
    case kMaskWriteRegister:
      ICSFUZZ_COV_BLOCK();
      mask_write_register(body);
      break;
    case kReadWriteMultiple:
      ICSFUZZ_COV_BLOCK();
      read_write_multiple(body);
      break;
    case kEncapsulatedInterface:
      ICSFUZZ_COV_BLOCK();
      read_device_identification(body);
      break;
    default:
      ICSFUZZ_COV_BLOCK();
      exception_response(function, kIllegalFunction);
      break;
  }
  if (pdu_writer_.size() == 0) return;

  // --- Response MBAP ----------------------------------------------------
  response_writer_.write_u16(transaction, Endian::Big);
  response_writer_.write_u16(0, Endian::Big);
  response_writer_.write_u16(static_cast<std::uint16_t>(pdu_writer_.size() + 1),
                             Endian::Big);
  response_writer_.write_u8(unit);
  response_writer_.write_bytes(pdu_writer_.span());
}

void ModbusServer::exception_response(std::uint8_t function,
                                      std::uint8_t code) {
  ICSFUZZ_COV_BLOCK();
  pdu_writer_.clear();
  pdu_writer_.write_u8(static_cast<std::uint8_t>(function | 0x80));
  pdu_writer_.write_u8(code);
}

void ModbusServer::read_bits(ByteSpan body, bool discrete) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(body);
  const std::uint16_t address = reader.read_u16(Endian::Big);
  const std::uint16_t quantity = reader.read_u16(Endian::Big);
  const std::uint8_t function = discrete ? kReadDiscreteInputs : kReadCoils;
  if (!reader.ok() || !reader.at_end()) {
    ICSFUZZ_COV_BLOCK();
    exception_response(function, kIllegalDataValue);
    return;
  }
  if (quantity == 0 || quantity > 2000) {
    ICSFUZZ_COV_BLOCK();
    exception_response(function, kIllegalDataValue);
    return;
  }
  if (address >= kNumCoils || address + quantity > kNumCoils) {
    ICSFUZZ_COV_BLOCK();
    exception_response(function, kIllegalDataAddress);
    return;
  }
  ICSFUZZ_COV_BLOCK();  // valid read path
  const auto& bank = discrete ? discrete_ : coils_;
  pdu_writer_.write_u8(function);
  pdu_writer_.write_u8(static_cast<std::uint8_t>((quantity + 7) / 8));
  std::uint8_t packed = 0;
  for (std::uint16_t i = 0; i < quantity; ++i) {
    ICSFUZZ_COV_BLOCK();  // loop body — hit-count buckets grade quantity
    if (bank[address + i]) packed |= static_cast<std::uint8_t>(1U << (i % 8));
    if (i % 8 == 7) {
      pdu_writer_.write_u8(packed);
      packed = 0;
    }
  }
  if (quantity % 8 != 0) pdu_writer_.write_u8(packed);
}

void ModbusServer::read_registers(ByteSpan body, bool input_bank) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(body);
  const std::uint16_t address = reader.read_u16(Endian::Big);
  const std::uint16_t quantity = reader.read_u16(Endian::Big);
  const std::uint8_t function =
      input_bank ? kReadInputRegisters : kReadHoldingRegisters;
  if (!reader.ok() || !reader.at_end()) {
    ICSFUZZ_COV_BLOCK();
    exception_response(function, kIllegalDataValue);
    return;
  }
  if (quantity == 0 || quantity > 125) {
    ICSFUZZ_COV_BLOCK();
    exception_response(function, kIllegalDataValue);
    return;
  }
  if (address >= kNumRegisters || address + quantity > kNumRegisters) {
    ICSFUZZ_COV_BLOCK();
    exception_response(function, kIllegalDataAddress);
    return;
  }
  ICSFUZZ_COV_BLOCK();  // valid read path
  const auto& bank = input_bank ? input_ : holding_;
  pdu_writer_.write_u8(function);
  pdu_writer_.write_u8(static_cast<std::uint8_t>(quantity * 2));
  for (std::uint16_t i = 0; i < quantity; ++i) {
    ICSFUZZ_COV_BLOCK();
    pdu_writer_.write_u16(bank[address + i], Endian::Big);
  }
}

void ModbusServer::write_single_coil(ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(body);
  const std::uint16_t address = reader.read_u16(Endian::Big);
  const std::uint16_t value = reader.read_u16(Endian::Big);
  if (!reader.ok() || !reader.at_end()) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kWriteSingleCoil, kIllegalDataValue);
    return;
  }
  if (value != 0x0000 && value != 0xFF00) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kWriteSingleCoil, kIllegalDataValue);
    return;
  }
  if (address >= kNumCoils) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kWriteSingleCoil, kIllegalDataAddress);
    return;
  }
  ICSFUZZ_COV_BLOCK();  // valid write path
  coils_[address] = value == 0xFF00;
  pdu_writer_.write_u8(kWriteSingleCoil);
  pdu_writer_.write_u16(address, Endian::Big);
  pdu_writer_.write_u16(value, Endian::Big);
}

void ModbusServer::write_single_register(ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(body);
  const std::uint16_t address = reader.read_u16(Endian::Big);
  const std::uint16_t value = reader.read_u16(Endian::Big);
  if (!reader.ok() || !reader.at_end()) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kWriteSingleRegister, kIllegalDataValue);
    return;
  }
  if (address >= kNumRegisters) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kWriteSingleRegister, kIllegalDataAddress);
    return;
  }
  ICSFUZZ_COV_BLOCK();  // valid write path
  holding_[address] = value;
  if (value >= 0xFF00) {
    ICSFUZZ_COV_BLOCK();  // alarm-range write, extra bookkeeping path
    ++diagnostic_counter_;
  }
  pdu_writer_.write_u8(kWriteSingleRegister);
  pdu_writer_.write_u16(address, Endian::Big);
  pdu_writer_.write_u16(value, Endian::Big);
}

void ModbusServer::write_multiple_coils(ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(body);
  const std::uint16_t address = reader.read_u16(Endian::Big);
  const std::uint16_t quantity = reader.read_u16(Endian::Big);
  const std::uint8_t byte_count = reader.read_u8();
  if (!reader.ok()) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kWriteMultipleCoils, kIllegalDataValue);
    return;
  }
  if (quantity == 0 || quantity > 0x07B0 ||
      byte_count != (quantity + 7) / 8 || reader.remaining() != byte_count) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kWriteMultipleCoils, kIllegalDataValue);
    return;
  }
  if (address >= kNumCoils || address + quantity > kNumCoils) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kWriteMultipleCoils, kIllegalDataAddress);
    return;
  }
  ICSFUZZ_COV_BLOCK();  // valid write path
  const ByteSpan payload = reader.rest_span();
  for (std::uint16_t i = 0; i < quantity; ++i) {
    ICSFUZZ_COV_BLOCK();
    const std::uint8_t byte = payload[i / 8];
    coils_[address + i] = (byte >> (i % 8)) & 1U;
  }
  pdu_writer_.write_u8(kWriteMultipleCoils);
  pdu_writer_.write_u16(address, Endian::Big);
  pdu_writer_.write_u16(quantity, Endian::Big);
}

void ModbusServer::write_multiple_registers(ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(body);
  const std::uint16_t address = reader.read_u16(Endian::Big);
  const std::uint16_t quantity = reader.read_u16(Endian::Big);
  const std::uint8_t byte_count = reader.read_u8();
  if (!reader.ok()) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kWriteMultipleRegisters, kIllegalDataValue);
    return;
  }
  if (quantity == 0 || quantity > 123 || byte_count != quantity * 2 ||
      reader.remaining() != byte_count) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kWriteMultipleRegisters, kIllegalDataValue);
    return;
  }
  if (address >= kNumRegisters || address + quantity > kNumRegisters) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kWriteMultipleRegisters, kIllegalDataAddress);
    return;
  }
  ICSFUZZ_COV_BLOCK();  // valid write path
  for (std::uint16_t i = 0; i < quantity; ++i) {
    ICSFUZZ_COV_BLOCK();
    holding_[address + i] = reader.read_u16(Endian::Big);
  }
  pdu_writer_.write_u8(kWriteMultipleRegisters);
  pdu_writer_.write_u16(address, Endian::Big);
  pdu_writer_.write_u16(quantity, Endian::Big);
}

void ModbusServer::mask_write_register(ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(body);
  const std::uint16_t address = reader.read_u16(Endian::Big);
  const std::uint16_t and_mask = reader.read_u16(Endian::Big);
  const std::uint16_t or_mask = reader.read_u16(Endian::Big);
  if (!reader.ok() || !reader.at_end()) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kMaskWriteRegister, kIllegalDataValue);
    return;
  }
  if (address >= kNumRegisters) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kMaskWriteRegister, kIllegalDataAddress);
    return;
  }
  ICSFUZZ_COV_BLOCK();  // valid mask-write path
  holding_[address] = static_cast<std::uint16_t>(
      (holding_[address] & and_mask) | (or_mask & ~and_mask));
  pdu_writer_.write_u8(kMaskWriteRegister);
  pdu_writer_.write_u16(address, Endian::Big);
  pdu_writer_.write_u16(and_mask, Endian::Big);
  pdu_writer_.write_u16(or_mask, Endian::Big);
}

void ModbusServer::read_write_multiple(ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(body);
  const std::uint16_t read_address = reader.read_u16(Endian::Big);
  const std::uint16_t read_quantity = reader.read_u16(Endian::Big);
  const std::uint16_t write_address = reader.read_u16(Endian::Big);
  const std::uint16_t write_quantity = reader.read_u16(Endian::Big);
  const std::uint8_t byte_count = reader.read_u8();
  if (!reader.ok()) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kReadWriteMultiple, kIllegalDataValue);
    return;
  }
  if (read_quantity == 0 || read_quantity > 125) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kReadWriteMultiple, kIllegalDataValue);
    return;
  }
  // BUG(modbus-rwmulti-uaf): the spec requires write_quantity >= 1, but this
  // check — like the libmodbus bug the paper's campaign surfaced — only
  // bounds it from above, letting an "empty write set" request through.
  if (write_quantity > 121 || byte_count != write_quantity * 2 ||
      reader.remaining() != byte_count) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kReadWriteMultiple, kIllegalDataValue);
    return;
  }
  if (read_address >= kNumRegisters ||
      read_address + read_quantity > kNumRegisters) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kReadWriteMultiple, kIllegalDataAddress);
    return;
  }
  if (write_quantity > 0 && (write_address >= kNumRegisters ||
                             write_address + write_quantity > kNumRegisters)) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kReadWriteMultiple, kIllegalDataAddress);
    return;
  }

  ICSFUZZ_COV_BLOCK();  // validated 0x17 path
  // Write phase first, per spec.
  for (std::uint16_t i = 0; i < write_quantity; ++i) {
    ICSFUZZ_COV_BLOCK();
    holding_[write_address + i] = reader.read_u16(Endian::Big);
  }

  // Response assembled in a tracked scratch allocation.
  san::GuardedAlloc scratch(2 + static_cast<std::size_t>(read_quantity) * 2,
                            san::site_id("modbus-rwmulti-uaf"),
                            "modbus 0x17 response scratch");
  scratch.write(0, kReadWriteMultiple);
  scratch.write(1, static_cast<std::uint8_t>(read_quantity * 2));
  if (write_quantity == 0) {
    ICSFUZZ_COV_BLOCK();
    // "Nothing was written, release the staging buffer early" — the freed
    // buffer is then reused below: heap use-after-free.
    scratch.free();
  }
  for (std::uint16_t i = 0; i < read_quantity; ++i) {
    ICSFUZZ_COV_BLOCK();
    const std::uint16_t value = holding_[read_address + i];
    scratch.write(2 + i * 2, static_cast<std::uint8_t>(value >> 8));
    scratch.write(2 + i * 2 + 1, static_cast<std::uint8_t>(value & 0xFF));
    if (san::FaultSink::tripped()) return;  // process died here
  }
  if (san::FaultSink::tripped()) return;
  pdu_writer_.write_bytes(ByteSpan(scratch.storage()));
}

void ModbusServer::read_device_identification(ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(body);
  const std::uint8_t mei_type = reader.read_u8();
  const std::uint8_t read_dev_id = reader.read_u8();
  const std::uint8_t object_id = reader.read_u8();
  if (!reader.ok() || !reader.at_end()) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kEncapsulatedInterface, kIllegalDataValue);
    return;
  }
  if (mei_type != 0x0E) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kEncapsulatedInterface, kIllegalFunction);
    return;
  }
  if (read_dev_id == 0 || read_dev_id > 0x04) {
    ICSFUZZ_COV_BLOCK();
    exception_response(kEncapsulatedInterface, kIllegalDataValue);
    return;
  }

  pdu_writer_.write_u8(kEncapsulatedInterface);
  pdu_writer_.write_u8(0x0E);
  pdu_writer_.write_u8(read_dev_id);
  pdu_writer_.write_u8(0x01);  // conformity level: basic

  if (read_dev_id == 0x04) {
    ICSFUZZ_COV_BLOCK();  // individual object access
    // BUG(modbus-devid-oob): object_id is trusted as an index into the
    // three-entry object-length table — ids above the table raise a wild
    // read.
    static constexpr std::array<std::uint8_t, kDeviceIdObjectCount>
        kObjectLengths = {7, 7, 6};
    san::GuardedSpan table(ByteSpan(kObjectLengths.data(), kObjectLengths.size()),
                           san::site_id("modbus-devid-oob"),
                           "device-id object table");
    // The index probe itself is the unchecked access.
    (void)table.at(object_id);
    if (san::FaultSink::tripped()) {
      pdu_writer_.clear();  // process died here: drop the partial PDU
      return;
    }
    if (object_id >= kDeviceIdObjectCount) {
      pdu_writer_.clear();
      return;
    }
    const char* text = kDeviceIdObjects[object_id];
    pdu_writer_.write_u8(0x00);  // more follows: no
    pdu_writer_.write_u8(object_id);
    pdu_writer_.write_u8(1);  // number of objects
    pdu_writer_.write_u8(object_id);
    const std::string_view view(text);
    pdu_writer_.write_u8(static_cast<std::uint8_t>(view.size()));
    pdu_writer_.write_string(view);
    return;
  }

  ICSFUZZ_COV_BLOCK();  // stream access (basic/regular/extended)
  const std::size_t first = object_id < kDeviceIdObjectCount ? object_id : 0;
  pdu_writer_.write_u8(0x00);
  pdu_writer_.write_u8(0x00);
  pdu_writer_.write_u8(static_cast<std::uint8_t>(kDeviceIdObjectCount - first));
  for (std::size_t i = first; i < kDeviceIdObjectCount; ++i) {
    ICSFUZZ_COV_BLOCK();
    const std::string_view view(kDeviceIdObjects[i]);
    pdu_writer_.write_u8(static_cast<std::uint8_t>(i));
    pdu_writer_.write_u8(static_cast<std::uint8_t>(view.size()));
    pdu_writer_.write_string(view);
  }
}

}  // namespace icsfuzz::proto
