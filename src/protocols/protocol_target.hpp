// ProtocolTarget — the interface between the fuzzer and a protocol stack
// under test (the "instrumented program" box in the paper's Figure 3).
//
// A target consumes one request packet and produces a response (possibly
// empty). Instrumentation (ICSFUZZ_COV_BLOCK) and the soft sanitizer are
// compiled into the implementation; the executor arms both around each
// `process` call.
#pragma once

#include <memory>
#include <string_view>

#include "util/bytes.hpp"

namespace icsfuzz {

class ProtocolTarget {
 public:
  virtual ~ProtocolTarget() = default;

  /// Stable project name used in reports (matches the paper's subjects,
  /// e.g. "libmodbus", "lib60870").
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Restores pristine server state (register banks, session state) so every
  /// execution is deterministic and independent.
  virtual void reset() = 0;

  /// Processes one inbound packet; returns the wire response (empty when the
  /// stack drops the packet). Must not throw: malformed input is the normal
  /// case under fuzzing.
  virtual Bytes process(ByteSpan packet) = 0;

  /// Buffer-reusing variant used by the executor hot path: writes the
  /// response into `response` (cleared first, capacity retained). The
  /// default delegates to process(); stacks that build their response
  /// incrementally can override it to make steady-state executions
  /// allocation-free.
  virtual void process_into(ByteSpan packet, Bytes& response) {
    response = process(packet);
  }
};

}  // namespace icsfuzz
