// IEC 61850 MMS server — re-implementation of the packet-processing layer
// of libiec61850 (the paper's largest evaluation subject; it reports
// thousands of covered paths, still growing at the 24-hour budget).
//
// Wire format: BER-TLV MMS over a TPKT-like envelope. Services implemented:
//   * initiate / conclude association management;
//   * confirmed requests: GetNameList (logical devices, logical nodes, data
//     objects, with continue-after), Read (by object reference path, with
//     per-FC views and array element access), Write (DA value type checks),
//     GetVariableAccessAttributes, Identify, Status;
//   * unconfirmed InformationReport ingestion (RCB-style).
//
// The served data model is a static IED directory: 2 logical devices, each
// with logical nodes (LLN0, MMXU1, GGIO1, ...) containing data objects with
// functional-constraint-qualified attributes — enough breadth that path
// coverage keeps growing for a long time, as in the paper's Figure 4(c).
//
// No vulnerabilities are injected: Table I lists none for libiec61850.
#pragma once

#include <cstdint>

#include "protocols/protocol_target.hpp"

namespace icsfuzz::proto {

class MmsServer final : public ProtocolTarget {
 public:
  MmsServer();

  [[nodiscard]] std::string_view name() const override { return "libiec61850"; }
  void reset() override;

  /// Consumes a stream of TPKT-framed MMS PDUs (up to kMaxFramesPerStream)
  /// and returns the concatenated responses.
  Bytes process(ByteSpan packet) override;

  /// Allocation-free hot path: BER payloads assemble in one member scratch
  /// writer per nesting level, then copy into the caller's reused buffer.
  /// Byte-identical to process().
  void process_into(ByteSpan packet, Bytes& response) override;

  static constexpr std::size_t kMaxFramesPerStream = 8;

  // -- Introspection for tests. --
  [[nodiscard]] bool associated() const { return associated_; }
  [[nodiscard]] std::uint32_t reads_served() const { return reads_served_; }
  [[nodiscard]] std::uint32_t writes_accepted() const {
    return writes_accepted_;
  }

 private:
  // Handlers append outbound PDUs into response_writer_; the three scratch
  // writers stage one BER nesting level each (see process_into).
  void process_frame(ByteSpan frame);
  void handle_pdu(ByteSpan pdu);
  void handle_initiate(ByteSpan body);
  void handle_confirmed(ByteSpan body);
  void service_name_list(std::uint32_t invoke_id, ByteSpan body);
  void service_read(std::uint32_t invoke_id, ByteSpan body);
  void service_write(std::uint32_t invoke_id, ByteSpan body);
  void service_access_attributes(std::uint32_t invoke_id, ByteSpan body);
  void service_identify(std::uint32_t invoke_id);
  void service_status(std::uint32_t invoke_id);
  void handle_information_report(ByteSpan body);

  void confirmed_response(std::uint32_t invoke_id, std::uint8_t service_tag,
                          ByteSpan payload);
  void service_error(std::uint32_t invoke_id, std::uint8_t klass,
                     std::uint8_t code);

  bool associated_ = false;
  std::uint32_t negotiated_pdu_size_ = 0;
  std::uint32_t reads_served_ = 0;
  std::uint32_t writes_accepted_ = 0;
  std::uint32_t reports_seen_ = 0;

  // Reused scratch (see process_into).
  ByteWriter response_writer_;  ///< concatenated outbound TPKT payloads
  ByteWriter inner_writer_;     ///< invoke id + service TLV of one response
  ByteWriter payload_writer_;   ///< service-level payload
  ByteWriter items_writer_;     ///< innermost list (names / read results)
};

}  // namespace icsfuzz::proto
