#include "protocols/iec61850/mms_server.hpp"

#include <array>
#include <optional>
#include <string>
#include <string_view>

#include "coverage/instrument.hpp"

namespace icsfuzz::proto {
namespace {

// MMS PDU tags.
constexpr std::uint8_t kConfirmedRequest = 0xA0;
constexpr std::uint8_t kConfirmedResponse = 0xA1;
constexpr std::uint8_t kConfirmedError = 0xA2;
constexpr std::uint8_t kInformationReport = 0xA3;
constexpr std::uint8_t kInitiateRequest = 0xA8;
constexpr std::uint8_t kInitiateResponse = 0xA9;
constexpr std::uint8_t kConcludeRequest = 0x8B;
constexpr std::uint8_t kConcludeResponse = 0x8C;

// Confirmed service tags.
constexpr std::uint8_t kSvcStatus = 0x80;
constexpr std::uint8_t kSvcGetNameList = 0xA1;
constexpr std::uint8_t kSvcIdentify = 0x82;
constexpr std::uint8_t kSvcRead = 0xA4;
constexpr std::uint8_t kSvcWrite = 0xA5;
constexpr std::uint8_t kSvcGetVarAttributes = 0xA6;

// ----- Static IED data model ------------------------------------------------
//
// Two logical devices; each logical node owns data objects; each object has
// functional-constraint-qualified attributes. Object references follow the
// 61850 convention "LD/LN$FC$DO$DA".

struct DataAttribute {
  std::string_view name;
  std::string_view fc;     // functional constraint: ST, MX, CF, DC, CO
  std::uint8_t mms_type;   // 0x83 bool, 0x85 integer, 0x86 unsigned, 0x8A str
  std::uint32_t value;
  bool writable;
};

struct DataObject {
  std::string_view name;
  const DataAttribute* attributes;
  std::size_t attribute_count;
};

struct LogicalNode {
  std::string_view name;
  const DataObject* objects;
  std::size_t object_count;
};

struct LogicalDevice {
  std::string_view name;
  const LogicalNode* nodes;
  std::size_t node_count;
};

constexpr DataAttribute kStValAttrs[] = {
    {"stVal", "ST", 0x83, 1, false},
    {"q", "ST", 0x86, 0, false},
    {"t", "ST", 0x86, 0, false},
};
constexpr DataAttribute kMagAttrs[] = {
    {"mag", "MX", 0x85, 2300, false},
    {"q", "MX", 0x86, 0, false},
    {"t", "MX", 0x86, 0, false},
    {"units", "CF", 0x86, 30, true},
    {"db", "CF", 0x86, 500, true},
};
constexpr DataAttribute kCtlAttrs[] = {
    {"ctlVal", "CO", 0x83, 0, true},
    {"origin", "CO", 0x86, 3, true},
    {"ctlNum", "CO", 0x86, 0, true},
    {"stVal", "ST", 0x83, 0, false},
    {"q", "ST", 0x86, 0, false},
};
constexpr DataAttribute kNamePltAttrs[] = {
    {"vendor", "DC", 0x8A, 0, false},
    {"swRev", "DC", 0x8A, 1, false},
    {"d", "DC", 0x8A, 2, true},
};
constexpr DataAttribute kModAttrs[] = {
    {"stVal", "ST", 0x85, 1, false},
    {"ctlModel", "CF", 0x85, 1, true},
};

constexpr DataObject kLln0Objects[] = {
    {"Mod", kModAttrs, std::size(kModAttrs)},
    {"Beh", kStValAttrs, std::size(kStValAttrs)},
    {"Health", kStValAttrs, std::size(kStValAttrs)},
    {"NamPlt", kNamePltAttrs, std::size(kNamePltAttrs)},
};
constexpr DataObject kMmxuObjects[] = {
    {"TotW", kMagAttrs, std::size(kMagAttrs)},
    {"TotVAr", kMagAttrs, std::size(kMagAttrs)},
    {"Hz", kMagAttrs, std::size(kMagAttrs)},
    {"PhV", kMagAttrs, std::size(kMagAttrs)},
};
constexpr DataObject kGgioObjects[] = {
    {"SPCSO1", kCtlAttrs, std::size(kCtlAttrs)},
    {"SPCSO2", kCtlAttrs, std::size(kCtlAttrs)},
    {"Ind1", kStValAttrs, std::size(kStValAttrs)},
    {"Ind2", kStValAttrs, std::size(kStValAttrs)},
};
constexpr DataObject kXcbrObjects[] = {
    {"Pos", kCtlAttrs, std::size(kCtlAttrs)},
    {"BlkOpn", kCtlAttrs, std::size(kCtlAttrs)},
    {"OpCnt", kStValAttrs, std::size(kStValAttrs)},
};

constexpr LogicalNode kLd0Nodes[] = {
    {"LLN0", kLln0Objects, std::size(kLln0Objects)},
    {"MMXU1", kMmxuObjects, std::size(kMmxuObjects)},
    {"GGIO1", kGgioObjects, std::size(kGgioObjects)},
};
constexpr LogicalNode kLd1Nodes[] = {
    {"LLN0", kLln0Objects, std::size(kLln0Objects)},
    {"XCBR1", kXcbrObjects, std::size(kXcbrObjects)},
    {"GGIO1", kGgioObjects, std::size(kGgioObjects)},
};

constexpr LogicalDevice kDevices[] = {
    {"simpleIOGenericIO", kLd0Nodes, std::size(kLd0Nodes)},
    {"simpleIOControl", kLd1Nodes, std::size(kLd1Nodes)},
};

// ----- BER helpers ----------------------------------------------------------

struct Tlv {
  std::uint8_t tag = 0;
  ByteSpan value;
};

std::optional<Tlv> read_tlv(ByteReader& reader, ByteSpan scope) {
  const std::uint8_t tag = reader.read_u8();
  const std::uint8_t first_len = reader.read_u8();
  if (!reader.ok()) return std::nullopt;
  std::size_t length = 0;
  if ((first_len & 0x80) == 0) {
    length = first_len;
  } else {
    const std::size_t octets = first_len & 0x7F;
    if (octets == 0 || octets > 2) return std::nullopt;
    length = static_cast<std::size_t>(reader.read_uint(octets, Endian::Big));
    if (!reader.ok()) return std::nullopt;
  }
  if (reader.remaining() < length) return std::nullopt;
  const std::size_t value_pos = reader.position();
  reader.skip(length);
  return Tlv{tag, scope.subspan(value_pos, length)};
}

void write_tlv(ByteWriter& writer, std::uint8_t tag, ByteSpan value) {
  writer.write_u8(tag);
  if (value.size() < 0x80) {
    writer.write_u8(static_cast<std::uint8_t>(value.size()));
  } else {
    writer.write_u8(0x82);
    writer.write_u16(static_cast<std::uint16_t>(value.size()), Endian::Big);
  }
  writer.write_bytes(value);
}

void write_visible_string(ByteWriter& writer, std::string_view text) {
  writer.write_u8(0x1A);
  writer.write_u8(static_cast<std::uint8_t>(text.size()));
  writer.write_string(text);
}

/// A string view over raw BER bytes (no copy — the view aliases the packet).
std::string_view as_view(ByteSpan span) {
  return std::string_view(reinterpret_cast<const char*>(span.data()),
                          span.size());
}

// ----- Object reference resolution -------------------------------------

struct ResolvedAttribute {
  const LogicalDevice* device = nullptr;
  const LogicalNode* node = nullptr;
  const DataObject* object = nullptr;
  const DataAttribute* attribute = nullptr;
};

const LogicalDevice* find_device(std::string_view name) {
  for (const LogicalDevice& device : kDevices) {
    if (device.name == name) return &device;
  }
  return nullptr;
}

const LogicalNode* find_node(const LogicalDevice& device,
                             std::string_view name) {
  for (std::size_t i = 0; i < device.node_count; ++i) {
    if (device.nodes[i].name == name) return &device.nodes[i];
  }
  return nullptr;
}

const DataObject* find_object(const LogicalNode& node, std::string_view name) {
  for (std::size_t i = 0; i < node.object_count; ++i) {
    if (node.objects[i].name == name) return &node.objects[i];
  }
  return nullptr;
}

const DataAttribute* find_attribute(const DataObject& object,
                                    std::string_view fc,
                                    std::string_view name) {
  for (std::size_t i = 0; i < object.attribute_count; ++i) {
    if (object.attributes[i].name == name && object.attributes[i].fc == fc) {
      return &object.attributes[i];
    }
  }
  return nullptr;
}

/// Resolves "LD/LN$FC$DO$DA". Returns nullopt on any missing path element.
/// Each resolution stage and each functional-constraint view runs its own
/// dispatch code, as in libiec61850's per-FC access paths.
std::optional<ResolvedAttribute> resolve_reference(std::string_view ref) {
  ICSFUZZ_COV_BLOCK();
  const std::size_t slash = ref.find('/');
  if (slash == std::string_view::npos) {
    ICSFUZZ_COV_BLOCK();  // vmd-scope name: unsupported
    return std::nullopt;
  }
  const LogicalDevice* device = find_device(ref.substr(0, slash));
  if (device == nullptr) {
    ICSFUZZ_COV_BLOCK();  // unknown logical device
    return std::nullopt;
  }
  if (device == &kDevices[0]) {
    ICSFUZZ_COV_BLOCK();  // generic-IO device access path
  } else {
    ICSFUZZ_COV_BLOCK();  // control device access path
  }
  std::string_view rest = ref.substr(slash + 1);

  std::array<std::string_view, 4> parts{};
  std::size_t part_count = 0;
  while (part_count < 4) {
    const std::size_t dollar = rest.find('$');
    parts[part_count++] = rest.substr(0, dollar);
    if (dollar == std::string_view::npos) break;
    rest = rest.substr(dollar + 1);
  }
  if (part_count != 4) {
    ICSFUZZ_COV_BLOCK();  // reference depth mismatch
    return std::nullopt;
  }

  const LogicalNode* node = find_node(*device, parts[0]);
  if (node == nullptr) {
    ICSFUZZ_COV_BLOCK();  // unknown logical node
    return std::nullopt;
  }
  // Per-node-class access routines (LLN0 / measurement / IO / breaker).
  if (node->name == "LLN0") {
    ICSFUZZ_COV_BLOCK();
  } else if (node->name == "MMXU1") {
    ICSFUZZ_COV_BLOCK();
  } else if (node->name == "XCBR1") {
    ICSFUZZ_COV_BLOCK();
  } else {
    ICSFUZZ_COV_BLOCK();  // GGIO
  }
  const DataObject* object = find_object(*node, parts[2]);
  if (object == nullptr) {
    ICSFUZZ_COV_BLOCK();  // unknown data object
    return std::nullopt;
  }
  // Functional-constraint views select distinct access code.
  const std::string_view fc = parts[1];
  if (fc == "ST") {
    ICSFUZZ_COV_BLOCK();  // status view
  } else if (fc == "MX") {
    ICSFUZZ_COV_BLOCK();  // measurand view
  } else if (fc == "CF") {
    ICSFUZZ_COV_BLOCK();  // configuration view
  } else if (fc == "DC") {
    ICSFUZZ_COV_BLOCK();  // description view
  } else if (fc == "CO") {
    ICSFUZZ_COV_BLOCK();  // control view
  } else {
    ICSFUZZ_COV_BLOCK();  // undefined functional constraint
    return std::nullopt;
  }
  const DataAttribute* attribute = find_attribute(*object, fc, parts[3]);
  if (attribute == nullptr) {
    ICSFUZZ_COV_BLOCK();  // attribute absent under this view
    return std::nullopt;
  }
  ICSFUZZ_COV_BLOCK();  // fully resolved
  return ResolvedAttribute{device, node, object, attribute};
}

void write_attribute_value(ByteWriter& writer, const DataAttribute& attribute) {
  switch (attribute.mms_type) {
    case 0x83:  // boolean
      ICSFUZZ_COV_BLOCK();
      writer.write_u8(0x83);
      writer.write_u8(1);
      writer.write_u8(attribute.value != 0 ? 0x01 : 0x00);
      break;
    case 0x85:  // integer
      ICSFUZZ_COV_BLOCK();
      writer.write_u8(0x85);
      writer.write_u8(4);
      writer.write_u32(attribute.value, Endian::Big);
      break;
    case 0x86:  // unsigned
      ICSFUZZ_COV_BLOCK();
      writer.write_u8(0x86);
      writer.write_u8(4);
      writer.write_u32(attribute.value, Endian::Big);
      break;
    case 0x8A:  // visible string
    default:
      ICSFUZZ_COV_BLOCK();
      writer.write_u8(0x8A);
      writer.write_u8(6);
      writer.write_string("ICSFZ-");
      break;
  }
}

}  // namespace

MmsServer::MmsServer() { reset(); }

void MmsServer::reset() {
  associated_ = false;
  negotiated_pdu_size_ = 0;
  reads_served_ = 0;
  writes_accepted_ = 0;
  reports_seen_ = 0;
}

Bytes MmsServer::process(ByteSpan packet) {
  Bytes response;
  process_into(packet, response);
  return response;
}

void MmsServer::process_into(ByteSpan packet, Bytes& response) {
  ICSFUZZ_COV_BLOCK();
  // Stream framing: each TPKT envelope declares its own total length in
  // octets 2-3.
  response_writer_.clear();
  std::size_t offset = 0;
  for (std::size_t frames = 0; frames < kMaxFramesPerStream; ++frames) {
    if (packet.size() - offset < 4) break;
    const std::size_t frame_size = static_cast<std::size_t>(
        (packet[offset + 2] << 8) | packet[offset + 3]);
    if (frame_size < 4 || packet.size() - offset < frame_size) break;
    ICSFUZZ_COV_BLOCK();
    process_frame(packet.subspan(offset, frame_size));
    offset += frame_size;
  }
  const ByteSpan out = response_writer_.span();
  response.assign(out.begin(), out.end());
}

void MmsServer::process_frame(ByteSpan packet) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(packet);
  const std::uint8_t version = reader.read_u8();
  const std::uint8_t reserved = reader.read_u8();
  const std::uint16_t length = reader.read_u16(Endian::Big);
  if (!reader.ok() || version != 0x03 || reserved != 0x00) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  if (length != packet.size()) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  ICSFUZZ_COV_BLOCK();
  handle_pdu(packet.subspan(4));
}

void MmsServer::handle_pdu(ByteSpan pdu) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(pdu);
  auto tlv = read_tlv(reader, pdu);
  if (!tlv || !reader.at_end()) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  switch (tlv->tag) {
    case kInitiateRequest:
      ICSFUZZ_COV_BLOCK();
      handle_initiate(tlv->value);
      return;
    case kConcludeRequest:
      ICSFUZZ_COV_BLOCK();
      if (!associated_) return;
      associated_ = false;
      response_writer_.write_u8s(kConcludeResponse, 0x00);
      return;
    case kConfirmedRequest:
      ICSFUZZ_COV_BLOCK();
      if (!associated_) {
        ICSFUZZ_COV_BLOCK();
        return;
      }
      handle_confirmed(tlv->value);
      return;
    case kInformationReport:
      ICSFUZZ_COV_BLOCK();
      if (!associated_) return;
      handle_information_report(tlv->value);
      return;
    default:
      ICSFUZZ_COV_BLOCK();
      return;
  }
}

void MmsServer::handle_initiate(ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  // initiate-Request: max PDU size (0x80 len2..4), proposed version
  // (0x81 len1), parameter CBB (0x82 len<=2), services supported
  // (0x83 len<=11).
  ByteReader reader(body);
  std::uint32_t pdu_size = 0;
  std::uint8_t version = 0;
  bool saw_services = false;
  while (!reader.at_end()) {
    auto tlv = read_tlv(reader, body);
    if (!tlv) {
      ICSFUZZ_COV_BLOCK();
      return;
    }
    switch (tlv->tag) {
      case 0x80:
        ICSFUZZ_COV_BLOCK();
        if (tlv->value.empty() || tlv->value.size() > 4) return;
        pdu_size = static_cast<std::uint32_t>(
            decode_uint(tlv->value, Endian::Big));
        break;
      case 0x81:
        ICSFUZZ_COV_BLOCK();
        if (tlv->value.size() != 1) return;
        version = tlv->value[0];
        break;
      case 0x82:
        ICSFUZZ_COV_BLOCK();
        if (tlv->value.size() > 2) return;
        break;
      case 0x83:
        ICSFUZZ_COV_BLOCK();
        if (tlv->value.size() > 11) return;
        saw_services = true;
        break;
      default:
        ICSFUZZ_COV_BLOCK();
        return;
    }
  }
  if (pdu_size < 1024 || pdu_size > 65000) {
    ICSFUZZ_COV_BLOCK();
    return;  // unacceptable PDU size
  }
  if (version != 1) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  if (!saw_services) {
    ICSFUZZ_COV_BLOCK();
    return;  // services-supported bitmap is mandatory
  }
  ICSFUZZ_COV_BLOCK();  // association accepted
  associated_ = true;
  negotiated_pdu_size_ = pdu_size < 32000 ? pdu_size : 32000;
  payload_writer_.clear();
  payload_writer_.write_u8(0x80);
  payload_writer_.write_u8(4);
  payload_writer_.write_u32(negotiated_pdu_size_, Endian::Big);
  payload_writer_.write_u8(0x81);
  payload_writer_.write_u8(1);
  payload_writer_.write_u8(1);
  write_tlv(response_writer_, kInitiateResponse, payload_writer_.span());
}

void MmsServer::handle_confirmed(ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(body);
  auto invoke = read_tlv(reader, body);
  if (!invoke || invoke->tag != 0x02 || invoke->value.empty() ||
      invoke->value.size() > 4) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  const std::uint32_t invoke_id =
      static_cast<std::uint32_t>(decode_uint(invoke->value, Endian::Big));
  auto service = read_tlv(reader, body);
  if (!service || !reader.at_end()) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  switch (service->tag) {
    case kSvcStatus:
      ICSFUZZ_COV_BLOCK();
      service_status(invoke_id);
      return;
    case kSvcGetNameList:
      ICSFUZZ_COV_BLOCK();
      service_name_list(invoke_id, service->value);
      return;
    case kSvcIdentify:
      ICSFUZZ_COV_BLOCK();
      service_identify(invoke_id);
      return;
    case kSvcRead:
      ICSFUZZ_COV_BLOCK();
      service_read(invoke_id, service->value);
      return;
    case kSvcWrite:
      ICSFUZZ_COV_BLOCK();
      service_write(invoke_id, service->value);
      return;
    case kSvcGetVarAttributes:
      ICSFUZZ_COV_BLOCK();
      service_access_attributes(invoke_id, service->value);
      return;
    default:
      ICSFUZZ_COV_BLOCK();
      service_error(invoke_id, 0x01, 0x05);  // service unsupported
      return;
  }
}

void MmsServer::service_name_list(std::uint32_t invoke_id, ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  // GetNameList: object class (0x80 len1: 0=LD list, 9=vmd scope / LN list
  // within a domain), optional domain name (0x81), optional continue-after
  // (0x82 string).
  ByteReader reader(body);
  auto klass_tlv = read_tlv(reader, body);
  if (!klass_tlv || klass_tlv->tag != 0x80 || klass_tlv->value.size() != 1) {
    ICSFUZZ_COV_BLOCK();
    service_error(invoke_id, 0x07, 0x01);
    return;
  }
  const std::uint8_t klass = klass_tlv->value[0];
  std::string_view domain;
  std::string_view continue_after;
  while (!reader.at_end()) {
    auto tlv = read_tlv(reader, body);
    if (!tlv) {
      ICSFUZZ_COV_BLOCK();
      service_error(invoke_id, 0x07, 0x01);
      return;
    }
    if (tlv->tag == 0x81) {
      ICSFUZZ_COV_BLOCK();
      domain = as_view(tlv->value);
    } else if (tlv->tag == 0x82) {
      ICSFUZZ_COV_BLOCK();
      continue_after = as_view(tlv->value);
    } else {
      ICSFUZZ_COV_BLOCK();
      service_error(invoke_id, 0x07, 0x01);
      return;
    }
  }

  items_writer_.clear();
  ByteWriter& names = items_writer_;
  bool more_follows = false;
  if (klass == 9 && domain.empty()) {
    ICSFUZZ_COV_BLOCK();  // list of logical devices
    bool emitting = continue_after.empty();
    for (const LogicalDevice& device : kDevices) {
      ICSFUZZ_COV_BLOCK();
      if (!emitting) {
        emitting = device.name == continue_after;
        continue;
      }
      write_visible_string(names, device.name);
    }
  } else if (klass == 9) {
    ICSFUZZ_COV_BLOCK();  // named variables within one domain
    const LogicalDevice* device = find_device(domain);
    if (device == nullptr) {
      ICSFUZZ_COV_BLOCK();
      service_error(invoke_id, 0x07, 0x02);  // domain unknown
      return;
    }
    bool emitting = continue_after.empty();
    std::size_t emitted = 0;
    for (std::size_t n = 0; n < device->node_count; ++n) {
      const LogicalNode& node = *(device->nodes + n);
      for (std::size_t o = 0; o < node.object_count; ++o) {
        ICSFUZZ_COV_BLOCK();
        // "LN$DO" entries are bounded by the static model (<= 12 chars),
        // so a stack buffer replaces the old std::string concatenation.
        std::array<char, 32> entry_buf{};
        std::size_t entry_len = 0;
        for (char c : node.name) entry_buf[entry_len++] = c;
        entry_buf[entry_len++] = '$';
        for (char c : node.objects[o].name) entry_buf[entry_len++] = c;
        const std::string_view entry(entry_buf.data(), entry_len);
        if (!emitting) {
          emitting = entry == continue_after;
          continue;
        }
        if (emitted >= 8) {
          more_follows = true;  // pagination — forces continuation requests
          break;
        }
        write_visible_string(names, entry);
        ++emitted;
      }
      if (more_follows) break;
    }
  } else {
    ICSFUZZ_COV_BLOCK();
    service_error(invoke_id, 0x07, 0x03);  // class unsupported
    return;
  }

  payload_writer_.clear();
  write_tlv(payload_writer_, 0xA0, names.span());
  payload_writer_.write_u8(0x81);
  payload_writer_.write_u8(1);
  payload_writer_.write_u8(more_follows ? 0xFF : 0x00);
  confirmed_response(invoke_id, kSvcGetNameList, payload_writer_.span());
}

void MmsServer::service_read(std::uint32_t invoke_id, ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  // Read: one or more object references (0x1A visible strings), each
  // resolved against the IED directory.
  ByteReader reader(body);
  items_writer_.clear();
  ByteWriter& results = items_writer_;
  std::size_t item_count = 0;
  while (!reader.at_end()) {
    auto item = read_tlv(reader, body);
    if (!item || item->tag != 0x1A) {
      ICSFUZZ_COV_BLOCK();
      service_error(invoke_id, 0x07, 0x01);
      return;
    }
    if (++item_count > 8) {
      ICSFUZZ_COV_BLOCK();
      service_error(invoke_id, 0x07, 0x04);  // too many items
      return;
    }
    auto resolved = resolve_reference(as_view(item->value));
    if (!resolved) {
      ICSFUZZ_COV_BLOCK();  // per-item failure: access-error component
      results.write_u8(0x80);
      results.write_u8(1);
      results.write_u8(0x0A);  // object-non-existent
      continue;
    }
    ICSFUZZ_COV_BLOCK();  // successful resolve — deep directory walk done
    ++reads_served_;
    write_attribute_value(results, *resolved->attribute);
  }
  if (item_count == 0) {
    ICSFUZZ_COV_BLOCK();
    service_error(invoke_id, 0x07, 0x01);
    return;
  }
  payload_writer_.clear();
  write_tlv(payload_writer_, 0xA1, results.span());
  confirmed_response(invoke_id, kSvcRead, payload_writer_.span());
}

void MmsServer::service_write(std::uint32_t invoke_id, ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  // Write: object reference (0x1A), then a typed value TLV.
  ByteReader reader(body);
  auto item = read_tlv(reader, body);
  auto value = read_tlv(reader, body);
  if (!item || item->tag != 0x1A || !value || !reader.at_end()) {
    ICSFUZZ_COV_BLOCK();
    service_error(invoke_id, 0x07, 0x01);
    return;
  }
  auto resolved = resolve_reference(as_view(item->value));
  if (!resolved) {
    ICSFUZZ_COV_BLOCK();
    service_error(invoke_id, 0x0A, 0x02);  // object non-existent
    return;
  }
  if (!resolved->attribute->writable) {
    ICSFUZZ_COV_BLOCK();
    service_error(invoke_id, 0x0A, 0x03);  // access denied
    return;
  }
  // Type check: the written TLV must match the attribute's MMS type.
  if (value->tag != resolved->attribute->mms_type) {
    ICSFUZZ_COV_BLOCK();
    service_error(invoke_id, 0x0A, 0x07);  // type inconsistent
    return;
  }
  switch (value->tag) {
    case 0x83:
      ICSFUZZ_COV_BLOCK();
      if (value->value.size() != 1) {
        service_error(invoke_id, 0x0A, 0x07);
        return;
      }
      break;
    case 0x85:
    case 0x86:
      ICSFUZZ_COV_BLOCK();
      if (value->value.empty() || value->value.size() > 4) {
        service_error(invoke_id, 0x0A, 0x07);
        return;
      }
      break;
    case 0x8A:
      ICSFUZZ_COV_BLOCK();
      if (value->value.size() > 64) {
        service_error(invoke_id, 0x0A, 0x07);
        return;
      }
      break;
    default:
      ICSFUZZ_COV_BLOCK();
      service_error(invoke_id, 0x0A, 0x07);
      return;
  }
  ICSFUZZ_COV_BLOCK();  // write accepted (static model: value not stored)
  ++writes_accepted_;
  payload_writer_.clear();
  payload_writer_.write_u8(0x80);
  payload_writer_.write_u8(0);
  confirmed_response(invoke_id, kSvcWrite, payload_writer_.span());
}

void MmsServer::service_access_attributes(std::uint32_t invoke_id,
                                          ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(body);
  auto item = read_tlv(reader, body);
  if (!item || item->tag != 0x1A || !reader.at_end()) {
    ICSFUZZ_COV_BLOCK();
    service_error(invoke_id, 0x07, 0x01);
    return;
  }
  auto resolved = resolve_reference(as_view(item->value));
  if (!resolved) {
    ICSFUZZ_COV_BLOCK();
    service_error(invoke_id, 0x0A, 0x02);
    return;
  }
  ICSFUZZ_COV_BLOCK();
  payload_writer_.clear();
  payload_writer_.write_u8(0x80);
  payload_writer_.write_u8(1);
  payload_writer_.write_u8(resolved->attribute->writable ? 0x01 : 0x00);
  payload_writer_.write_u8(0x81);
  payload_writer_.write_u8(1);
  payload_writer_.write_u8(resolved->attribute->mms_type);
  confirmed_response(invoke_id, kSvcGetVarAttributes, payload_writer_.span());
}

void MmsServer::service_identify(std::uint32_t invoke_id) {
  ICSFUZZ_COV_BLOCK();
  payload_writer_.clear();
  write_visible_string(payload_writer_, "icsfuzz");
  write_visible_string(payload_writer_, "MMS-IED");
  write_visible_string(payload_writer_, "1.0");
  confirmed_response(invoke_id, 0xA2, payload_writer_.span());
}

void MmsServer::service_status(std::uint32_t invoke_id) {
  ICSFUZZ_COV_BLOCK();
  payload_writer_.clear();
  payload_writer_.write_u8(0x80);
  payload_writer_.write_u8(1);
  payload_writer_.write_u8(0x01);  // vmd logical status: operational
  confirmed_response(invoke_id, kSvcStatus, payload_writer_.span());
}

void MmsServer::handle_information_report(ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  // InformationReport: RptID string (0x1A), inclusion bitstring (0x84),
  // then one value TLV per set bit. Parsed and counted, no response.
  ByteReader reader(body);
  auto rpt_id = read_tlv(reader, body);
  auto inclusion = read_tlv(reader, body);
  if (!rpt_id || rpt_id->tag != 0x1A || !inclusion || inclusion->tag != 0x84 ||
      inclusion->value.empty()) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  std::size_t expected = 0;
  for (std::size_t i = 1; i < inclusion->value.size(); ++i) {
    ICSFUZZ_COV_BLOCK();
    for (int bit = 0; bit < 8; ++bit) {
      if ((inclusion->value[i] >> bit) & 1) ++expected;
    }
  }
  std::size_t seen = 0;
  while (!reader.at_end() && seen < expected) {
    auto value = read_tlv(reader, body);
    if (!value) {
      ICSFUZZ_COV_BLOCK();
      return;
    }
    ++seen;
  }
  if (seen != expected || !reader.at_end()) {
    ICSFUZZ_COV_BLOCK();
    return;  // inclusion bitmap disagrees with value count
  }
  ICSFUZZ_COV_BLOCK();
  ++reports_seen_;
}

void MmsServer::confirmed_response(std::uint32_t invoke_id,
                                   std::uint8_t service_tag,
                                   ByteSpan payload) {
  inner_writer_.clear();
  inner_writer_.write_u8(0x02);
  inner_writer_.write_u8(4);
  inner_writer_.write_u32(invoke_id, Endian::Big);
  write_tlv(inner_writer_, service_tag, payload);
  write_tlv(response_writer_, kConfirmedResponse, inner_writer_.span());
}

void MmsServer::service_error(std::uint32_t invoke_id, std::uint8_t klass,
                              std::uint8_t code) {
  inner_writer_.clear();
  inner_writer_.write_u8(0x02);
  inner_writer_.write_u8(4);
  inner_writer_.write_u32(invoke_id, Endian::Big);
  inner_writer_.write_u8(0x80 | (klass & 0x0F));
  inner_writer_.write_u8(1);
  inner_writer_.write_u8(code);
  write_tlv(response_writer_, kConfirmedError, inner_writer_.span());
}

}  // namespace icsfuzz::proto
