#include "protocols/dnp3/dnp3_server.hpp"

#include "coverage/instrument.hpp"
#include "util/checksum.hpp"

namespace icsfuzz::proto {
namespace {

// Link-layer constants.
constexpr std::uint8_t kStart0 = 0x05;
constexpr std::uint8_t kStart1 = 0x64;

// Application function codes.
constexpr std::uint8_t kFuncRead = 0x01;
constexpr std::uint8_t kFuncWrite = 0x02;
constexpr std::uint8_t kFuncSelect = 0x03;
constexpr std::uint8_t kFuncOperate = 0x04;
constexpr std::uint8_t kFuncDirectOperate = 0x05;
constexpr std::uint8_t kFuncColdRestart = 0x0D;
constexpr std::uint8_t kFuncDelayMeasure = 0x17;
constexpr std::uint8_t kFuncResponse = 0x81;

// IIN bits (first octet in the high byte of our u16).
constexpr std::uint16_t kIinDeviceRestart = 0x8000;
constexpr std::uint16_t kIinFuncNotSupported = 0x0001;
constexpr std::uint16_t kIinObjectUnknown = 0x0002;
constexpr std::uint16_t kIinParamError = 0x0004;

}  // namespace

Dnp3Server::Dnp3Server() { reset(); }

void Dnp3Server::reset() {
  binary_.fill(false);
  for (std::size_t i = 0; i < kNumAnalog; ++i) {
    analog_[i] = static_cast<std::uint32_t>(100 * i);
  }
  for (std::size_t i = 0; i < kNumBinary; i += 2) binary_[i] = true;
  select_armed_ = false;
  select_index_ = 0;
  operate_count_ = 0;
  expected_transport_seq_ = 0;
}

std::optional<Dnp3Server::LinkFrame> Dnp3Server::parse_link(ByteSpan packet) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(packet);
  const std::uint8_t start0 = reader.read_u8();
  const std::uint8_t start1 = reader.read_u8();
  const std::uint8_t length = reader.read_u8();
  const std::uint8_t control = reader.read_u8();
  const std::uint16_t destination = reader.read_u16(Endian::Little);
  const std::uint16_t source = reader.read_u16(Endian::Little);
  const std::uint16_t header_crc = reader.read_u16(Endian::Little);
  if (!reader.ok() || start0 != kStart0 || start1 != kStart1) {
    ICSFUZZ_COV_BLOCK();
    return std::nullopt;
  }
  // Header CRC covers the first 8 octets.
  if (crc16_dnp3(packet.subspan(0, 8)) != header_crc) {
    ICSFUZZ_COV_BLOCK();
    return std::nullopt;  // header CRC failure
  }
  if (length < 5) {
    ICSFUZZ_COV_BLOCK();
    return std::nullopt;  // length counts control+dest+src at minimum
  }
  LinkFrame frame;
  frame.control = control;
  frame.destination = destination;
  frame.source = source;

  // User data: `length - 5` payload octets in 16-byte blocks, each with
  // CRC, reassembled into the reused user_data_ scratch.
  user_data_.clear();
  std::size_t remaining_payload = static_cast<std::size_t>(length) - 5;
  while (remaining_payload > 0) {
    ICSFUZZ_COV_BLOCK();
    const std::size_t block = remaining_payload < 16 ? remaining_payload : 16;
    const std::size_t block_start = reader.position();
    reader.skip(block);
    const std::uint16_t block_crc = reader.read_u16(Endian::Little);
    if (!reader.ok()) {
      ICSFUZZ_COV_BLOCK();
      return std::nullopt;  // truncated block
    }
    const ByteSpan data = packet.subspan(block_start, block);
    if (crc16_dnp3(data) != block_crc) {
      ICSFUZZ_COV_BLOCK();
      return std::nullopt;  // data CRC failure
    }
    append(user_data_, data);
    remaining_payload -= block;
  }
  if (!reader.at_end()) {
    ICSFUZZ_COV_BLOCK();
    return std::nullopt;  // trailing bytes after the last block
  }
  ICSFUZZ_COV_BLOCK();
  return frame;
}

Bytes Dnp3Server::process(ByteSpan packet) {
  Bytes response;
  process_into(packet, response);
  return response;
}

void Dnp3Server::process_into(ByteSpan packet, Bytes& response) {
  ICSFUZZ_COV_BLOCK();
  // Stream framing: a link frame with user-data length L occupies
  // 10 + L' + 2*ceil(L'/16) octets on the wire, where L' = L - 5.
  response_writer_.clear();
  std::size_t offset = 0;
  for (std::size_t frames = 0; frames < kMaxFramesPerStream; ++frames) {
    if (packet.size() - offset < 10) break;
    const std::uint8_t declared = packet[offset + 2];
    if (declared < 5) break;
    const std::size_t user = static_cast<std::size_t>(declared) - 5;
    const std::size_t frame_size = 10 + user + 2 * ((user + 15) / 16);
    if (packet.size() - offset < frame_size) break;
    ICSFUZZ_COV_BLOCK();
    process_frame(packet.subspan(offset, frame_size));
    offset += frame_size;
  }
  const Bytes& out = response_writer_.bytes();
  response.assign(out.begin(), out.end());
}

void Dnp3Server::process_frame(ByteSpan packet) {
  ICSFUZZ_COV_BLOCK();
  auto frame = parse_link(packet);
  if (!frame) return;
  if (frame->destination != kLocalAddress && frame->destination != 0xFFFF) {
    ICSFUZZ_COV_BLOCK();
    return;  // not addressed to this outstation
  }
  const std::uint8_t function = frame->control & 0x0F;
  const bool primary = (frame->control & 0x80) != 0;
  if (!primary) {
    ICSFUZZ_COV_BLOCK();
    return;  // secondary-station frames carry no requests
  }
  switch (function) {
    case 0x04:  // unconfirmed user data
      ICSFUZZ_COV_BLOCK();
      handle_transport(user_data_);
      break;
    case 0x03:  // confirmed user data — acknowledge then process
      ICSFUZZ_COV_BLOCK();
      handle_transport(user_data_);
      break;
    case 0x09:  // request link status
      ICSFUZZ_COV_BLOCK();
      frame_link({});
      break;
    default:
      ICSFUZZ_COV_BLOCK();
      break;
  }
}

void Dnp3Server::handle_transport(ByteSpan segment) {
  ICSFUZZ_COV_BLOCK();
  if (segment.empty()) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  const std::uint8_t transport = segment[0];
  const bool fin = (transport & 0x80) != 0;
  const bool fir = (transport & 0x40) != 0;
  if (!fir || !fin) {
    ICSFUZZ_COV_BLOCK();  // multi-fragment messages are not reassembled
    return;
  }
  expected_transport_seq_ =
      static_cast<std::uint8_t>((transport & 0x3F) + 1) & 0x3F;
  ICSFUZZ_COV_BLOCK();
  handle_application(segment.subspan(1));
}

void Dnp3Server::handle_application(ByteSpan fragment) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(fragment);
  const std::uint8_t app_control = reader.read_u8();
  const std::uint8_t function = reader.read_u8();
  if (!reader.ok()) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  std::uint16_t iin = 0;
  objects_writer_.clear();
  ByteWriter& response_objects = objects_writer_;

  switch (function) {
    case kFuncRead:
    case kFuncWrite:
    case kFuncSelect:
    case kFuncOperate:
    case kFuncDirectOperate: {
      ICSFUZZ_COV_BLOCK();
      ByteSpan remaining = fragment.subspan(2);
      if (remaining.empty()) {
        ICSFUZZ_COV_BLOCK();
        iin |= kIinParamError;  // request with no object headers
        break;
      }
      std::size_t headers = 0;
      while (!remaining.empty()) {
        ICSFUZZ_COV_BLOCK();
        if (!handle_object_header(remaining, function, response_objects, iin)) {
          ICSFUZZ_COV_BLOCK();
          iin |= kIinObjectUnknown;
          break;
        }
        if (++headers > 8) {
          ICSFUZZ_COV_BLOCK();
          iin |= kIinParamError;  // header flood
          break;
        }
      }
      break;
    }
    case kFuncColdRestart:
      ICSFUZZ_COV_BLOCK();
      iin |= kIinDeviceRestart;
      // Time-delay object g52v1, 0 ms.
      {
        static constexpr std::uint8_t kDelayObject[] = {0x34, 0x01, 0x07,
                                                        0x01, 0x00, 0x00};
        response_objects.write_bytes(ByteSpan(kDelayObject));
      }
      break;
    case kFuncDelayMeasure:
      ICSFUZZ_COV_BLOCK();
      {
        static constexpr std::uint8_t kDelayFine[] = {0x34, 0x02, 0x07,
                                                      0x01, 0x00, 0x00};
        response_objects.write_bytes(ByteSpan(kDelayFine));
      }
      break;
    default:
      ICSFUZZ_COV_BLOCK();
      iin |= kIinFuncNotSupported;
      break;
  }
  build_response(app_control, kFuncResponse, iin, response_objects.span());
}

bool Dnp3Server::handle_object_header(ByteSpan& remaining,
                                      std::uint8_t function,
                                      ByteWriter& response,
                                      std::uint16_t& iin) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(remaining);
  const std::uint8_t group = reader.read_u8();
  const std::uint8_t variation = reader.read_u8();
  const std::uint8_t qualifier = reader.read_u8();
  if (!reader.ok()) return false;

  std::uint32_t start = 0;
  std::uint32_t stop = 0;
  switch (qualifier) {
    case 0x00:  // 1-byte start/stop
      ICSFUZZ_COV_BLOCK();
      start = reader.read_u8();
      stop = reader.read_u8();
      break;
    case 0x01:  // 2-byte start/stop
      ICSFUZZ_COV_BLOCK();
      start = reader.read_u16(Endian::Little);
      stop = reader.read_u16(Endian::Little);
      break;
    case 0x06:  // all objects
      ICSFUZZ_COV_BLOCK();
      start = 0;
      stop = group == 30 ? kNumAnalog - 1 : kNumBinary - 1;
      break;
    case 0x17: {  // 1-byte count + index prefix
      ICSFUZZ_COV_BLOCK();
      const std::uint8_t count = reader.read_u8();
      if (!reader.ok() || count != 1) return false;  // single op only
      start = stop = reader.read_u8();
      break;
    }
    default:
      ICSFUZZ_COV_BLOCK();
      return false;
  }
  if (!reader.ok() || stop < start) return false;

  switch (group) {
    case 1: {  // binary inputs
      ICSFUZZ_COV_BLOCK();
      if (function != kFuncRead || variation > 2) return false;
      if (stop >= kNumBinary) return false;
      // g1v1 packed response header.
      response.write_u8(0x01);
      response.write_u8(0x01);
      response.write_u8(0x00);
      response.write_u8(static_cast<std::uint8_t>(start));
      response.write_u8(static_cast<std::uint8_t>(stop));
      std::uint8_t packed = 0;
      int bit = 0;
      for (std::uint32_t i = start; i <= stop; ++i) {
        ICSFUZZ_COV_BLOCK();
        if (binary_[i]) packed |= static_cast<std::uint8_t>(1 << bit);
        if (++bit == 8) {
          response.write_u8(packed);
          packed = 0;
          bit = 0;
        }
      }
      if (bit != 0) response.write_u8(packed);
      break;
    }
    case 30: {  // analog inputs
      ICSFUZZ_COV_BLOCK();
      if (function != kFuncRead || (variation != 1 && variation != 3)) {
        return false;
      }
      if (stop >= kNumAnalog) return false;
      response.write_u8(0x1E);
      response.write_u8(0x01);
      response.write_u8(0x01);
      response.write_u16(static_cast<std::uint16_t>(start), Endian::Little);
      response.write_u16(static_cast<std::uint16_t>(stop), Endian::Little);
      for (std::uint32_t i = start; i <= stop; ++i) {
        ICSFUZZ_COV_BLOCK();
        response.write_u8(0x01);  // online flag
        response.write_u32(analog_[i], Endian::Little);
      }
      break;
    }
    case 12: {  // CROB — control relay output block
      ICSFUZZ_COV_BLOCK();
      if (variation != 1 || qualifier != 0x17) return false;
      const std::uint8_t control_code = reader.read_u8();
      const std::uint8_t count = reader.read_u8();
      const std::uint32_t on_time = reader.read_u32(Endian::Little);
      const std::uint32_t off_time = reader.read_u32(Endian::Little);
      const std::uint8_t status = reader.read_u8();
      (void)count;
      (void)on_time;
      (void)off_time;
      (void)status;
      if (!reader.ok()) return false;
      if (start >= kNumBinary) return false;
      const std::uint8_t op_type = control_code & 0x0F;
      if (op_type != 0x01 && op_type != 0x03 && op_type != 0x04) {
        ICSFUZZ_COV_BLOCK();  // unsupported operation type
        iin |= kIinParamError;
        break;
      }
      if (function == kFuncSelect) {
        ICSFUZZ_COV_BLOCK();  // arm
        select_armed_ = true;
        select_index_ = static_cast<std::uint8_t>(start);
      } else if (function == kFuncOperate) {
        if (!select_armed_ || select_index_ != start) {
          ICSFUZZ_COV_BLOCK();  // operate without matching select
          iin |= kIinParamError;
          break;
        }
        ICSFUZZ_COV_BLOCK();  // select-before-operate success: deepest path
        select_armed_ = false;
        binary_[start] = op_type != 0x04;
        ++operate_count_;
      } else if (function == kFuncDirectOperate) {
        ICSFUZZ_COV_BLOCK();
        binary_[start] = op_type != 0x04;
        ++operate_count_;
      } else {
        ICSFUZZ_COV_BLOCK();  // READ/WRITE of CROB is invalid
        return false;
      }
      // Echo the CROB with status success.
      response.write_u8(0x0C);
      response.write_u8(0x01);
      response.write_u8(0x17);
      response.write_u8(0x01);
      response.write_u8(static_cast<std::uint8_t>(start));
      response.write_u8(control_code);
      response.write_u8(1);
      response.write_u32(0, Endian::Little);
      response.write_u32(0, Endian::Little);
      response.write_u8(0x00);
      break;
    }
    case 80: {  // internal indications (write to clear restart bit)
      ICSFUZZ_COV_BLOCK();
      if (function != kFuncWrite || variation != 1) return false;
      const std::uint8_t packed = reader.read_u8();
      if (!reader.ok()) return false;
      (void)packed;
      break;
    }
    default:
      ICSFUZZ_COV_BLOCK();
      return false;
  }
  remaining = remaining.subspan(reader.position());
  return true;
}

void Dnp3Server::build_response(std::uint8_t app_control,
                                std::uint8_t function, std::uint16_t iin,
                                ByteSpan payload) {
  ICSFUZZ_COV_BLOCK();
  // Transport header (FIR|FIN, sequence 0) + application fragment, in the
  // reused scratch the link framer blocks below.
  fragment_writer_.clear();
  fragment_writer_.write_u8(0xC0);
  fragment_writer_.write_u8(
      static_cast<std::uint8_t>(0xC0 | (app_control & 0x0F)));
  fragment_writer_.write_u8(function);
  fragment_writer_.write_u8(static_cast<std::uint8_t>(iin >> 8));
  fragment_writer_.write_u8(static_cast<std::uint8_t>(iin & 0xFF));
  fragment_writer_.write_bytes(payload);
  frame_link(fragment_writer_.span());
}

void Dnp3Server::frame_link(ByteSpan user_data) {
  ICSFUZZ_COV_BLOCK();
  // Appends one outbound link frame to response_writer_; the header CRC is
  // computed over the eight header octets just written.
  ByteWriter& link = response_writer_;
  const std::size_t base = link.size();
  link.write_u8(kStart0);
  link.write_u8(kStart1);
  link.write_u8(static_cast<std::uint8_t>(5 + user_data.size()));
  link.write_u8(0x44);  // DIR=0, PRM=1, unconfirmed user data
  link.write_u16(0xFFFF, Endian::Little);  // destination: whoever asked
  link.write_u16(kLocalAddress, Endian::Little);
  const std::uint16_t header_crc =
      crc16_dnp3(ByteSpan(link.bytes().data() + base, 8));
  link.write_u16(header_crc, Endian::Little);
  // Payload blocks.
  std::size_t offset = 0;
  while (offset < user_data.size()) {
    const std::size_t block =
        user_data.size() - offset < 16 ? user_data.size() - offset : 16;
    const ByteSpan slice = user_data.subspan(offset, block);
    link.write_bytes(slice);
    link.write_u16(crc16_dnp3(slice), Endian::Little);
    offset += block;
  }
}

}  // namespace icsfuzz::proto
