// DNP3 outstation — re-implementation of the packet-processing layer of
// opendnp3 (the paper's "opendnp3" evaluation subject; hundreds of paths).
//
// Implements the full inbound pipeline:
//   * link layer: 0x05 0x64 start, length, control, destination, source,
//     header CRC, then user data in <=16-byte blocks each trailed by a
//     DNP3 CRC;
//   * transport layer: FIR/FIN/sequence single-fragment reassembly;
//   * application layer: request header (app control, function code) and
//     object headers (group, variation, qualifier, ranges) for the READ /
//     WRITE / SELECT / OPERATE / DIRECT_OPERATE / COLD_RESTART /
//     DELAY_MEASURE function codes over static point databases.
//
// No vulnerabilities are injected: Table I lists none for opendnp3.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "protocols/protocol_target.hpp"

namespace icsfuzz::proto {

class Dnp3Server final : public ProtocolTarget {
 public:
  Dnp3Server();

  [[nodiscard]] std::string_view name() const override { return "opendnp3"; }
  void reset() override;

  /// Consumes a stream of DNP3 link frames (up to kMaxFramesPerStream) and
  /// returns the concatenated responses.
  Bytes process(ByteSpan packet) override;

  /// Allocation-free hot path: reassembly and response framing run through
  /// member scratch buffers whose capacity converges. Byte-identical to
  /// process().
  void process_into(ByteSpan packet, Bytes& response) override;

  static constexpr std::size_t kMaxFramesPerStream = 8;

  // -- Introspection for tests. --
  static constexpr std::uint16_t kLocalAddress = 10;
  static constexpr std::size_t kNumBinary = 16;
  static constexpr std::size_t kNumAnalog = 16;

  [[nodiscard]] bool selected() const { return select_armed_; }
  [[nodiscard]] std::uint32_t operates() const { return operate_count_; }

 private:
  struct LinkFrame {
    std::uint8_t control = 0;
    std::uint16_t destination = 0;
    std::uint16_t source = 0;
  };

  // Responses append into response_writer_; parse_link reassembles the
  // inbound user data into user_data_ (both reused across executions).
  void process_frame(ByteSpan frame);
  std::optional<LinkFrame> parse_link(ByteSpan packet);
  void handle_transport(ByteSpan segment);
  void handle_application(ByteSpan fragment);
  bool handle_object_header(ByteSpan& remaining, std::uint8_t function,
                            ByteWriter& response, std::uint16_t& iin);
  void build_response(std::uint8_t app_control, std::uint8_t function,
                      std::uint16_t iin, ByteSpan payload);
  void frame_link(ByteSpan user_data);

  std::array<bool, kNumBinary> binary_{};
  std::array<std::uint32_t, kNumAnalog> analog_{};
  bool select_armed_ = false;
  std::uint8_t select_index_ = 0;
  std::uint32_t operate_count_ = 0;
  std::uint8_t expected_transport_seq_ = 0;

  // Reused scratch (see process_into).
  ByteWriter response_writer_;   ///< concatenated outbound link frames
  Bytes user_data_;              ///< reassembled inbound link payload
  ByteWriter objects_writer_;    ///< response objects of one fragment
  ByteWriter fragment_writer_;   ///< outbound transport+application bytes
};

}  // namespace icsfuzz::proto
