#include "protocols/target_registry.hpp"

#include "protocols/dnp3/dnp3_server.hpp"
#include "protocols/iccp/iccp_server.hpp"
#include "protocols/iec104/iec104_server.hpp"
#include "protocols/iec61850/mms_server.hpp"
#include "protocols/lib60870/cs101_server.hpp"
#include "protocols/modbus/modbus_server.hpp"

namespace icsfuzz::proto {

std::function<std::unique_ptr<ProtocolTarget>()> target_factory(
    std::string_view project) {
  if (project == "libmodbus") {
    return [] { return std::make_unique<ModbusServer>(); };
  }
  if (project == "IEC104") {
    return [] { return std::make_unique<Iec104Server>(); };
  }
  if (project == "libiec61850") {
    return [] { return std::make_unique<MmsServer>(); };
  }
  if (project == "lib60870") {
    return [] { return std::make_unique<Cs101Server>(); };
  }
  if (project == "libiec_iccp_mod") {
    return [] { return std::make_unique<IccpServer>(); };
  }
  if (project == "opendnp3") {
    return [] { return std::make_unique<Dnp3Server>(); };
  }
  return {};
}

}  // namespace icsfuzz::proto
