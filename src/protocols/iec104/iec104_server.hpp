// IEC 60870-5-104 slave — re-implementation of the packet-processing layer
// of the paper's "IEC104" evaluation subject (the smallest stack; the paper
// reports dozens of covered paths for it).
//
// Implements the APCI frame dispatcher (U-, S- and I-format frames), the
// STARTDT/STOPDT/TESTFR handshake state machine, send/receive sequence
// validation and a small ASDU command dispatcher (C_IC_NA_1 interrogation,
// C_SC_NA_1 single command, C_CS_NA_1 clock sync, M_* monitor echoes).
//
// No vulnerabilities are injected: Table I lists none for IEC104.
#pragma once

#include <cstdint>

#include "protocols/protocol_target.hpp"

namespace icsfuzz::proto {

class Iec104Server final : public ProtocolTarget {
 public:
  Iec104Server();

  [[nodiscard]] std::string_view name() const override { return "IEC104"; }
  void reset() override;

  /// Consumes a TCP-style stream of APCI frames (up to kMaxFramesPerStream)
  /// and returns the concatenated responses.
  Bytes process(ByteSpan packet) override;

  /// Allocation-free hot path: responses assemble in member scratch
  /// writers whose capacity converges, then copy into the caller's reused
  /// buffer. Byte-identical to process().
  void process_into(ByteSpan packet, Bytes& response) override;

  static constexpr std::size_t kMaxFramesPerStream = 8;

  // -- Introspection for tests. --
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] std::uint16_t recv_seq() const { return recv_seq_; }

 private:
  // Handlers append outbound APCI frames into response_writer_; handle_asdu
  // stages the response ASDU in asdu_writer_ before build_i frames it.
  void process_frame(ByteSpan frame);
  void handle_u_frame(std::uint8_t control);
  void handle_s_frame(ByteSpan control);
  void handle_i_frame(ByteSpan control, ByteSpan asdu);
  void handle_asdu(ByteSpan asdu);

  void build_u(std::uint8_t control);
  void build_i(ByteSpan asdu);

  bool started_ = false;
  std::uint16_t send_seq_ = 0;
  std::uint16_t recv_seq_ = 0;
  bool selected_ = false;          // select-before-operate latch (C_SC_NA_1)
  std::uint32_t selected_ioa_ = 0; // object the select armed
  bool setpoint_selected_ = false; // select latch for C_SE_NB_1

  // Reused scratch (see process_into).
  ByteWriter response_writer_;  ///< concatenated outbound APCI frames
  ByteWriter asdu_writer_;      ///< response ASDU of one I frame
};

}  // namespace icsfuzz::proto
