#include "protocols/iec104/iec104_server.hpp"

#include "coverage/instrument.hpp"

namespace icsfuzz::proto {
namespace {

// APCI constants.
constexpr std::uint8_t kStartByte = 0x68;

// U-frame control functions (first control octet).
constexpr std::uint8_t kStartDtAct = 0x07;
constexpr std::uint8_t kStartDtCon = 0x0B;
constexpr std::uint8_t kStopDtAct = 0x13;
constexpr std::uint8_t kStopDtCon = 0x23;
constexpr std::uint8_t kTestFrAct = 0x43;
constexpr std::uint8_t kTestFrCon = 0x83;

// ASDU type identifications.
constexpr std::uint8_t kMSpNa1 = 1;    // single-point information
constexpr std::uint8_t kMMeNb1 = 11;   // measured value, scaled
constexpr std::uint8_t kCScNa1 = 45;   // single command
constexpr std::uint8_t kCDcNa1 = 46;   // double command
constexpr std::uint8_t kCSeNb1 = 49;   // set-point command, scaled value
constexpr std::uint8_t kCIcNa1 = 100;  // interrogation command
constexpr std::uint8_t kCCiNa1 = 101;  // counter interrogation command
constexpr std::uint8_t kCRdNa1 = 102;  // read command
constexpr std::uint8_t kCCsNa1 = 103;  // clock synchronisation

// Causes of transmission.
constexpr std::uint8_t kCotActivation = 6;
constexpr std::uint8_t kCotActivationCon = 7;
constexpr std::uint8_t kCotUnknownType = 44;
constexpr std::uint8_t kCotUnknownCot = 45;

constexpr std::uint16_t kCommonAddress = 0x0001;

}  // namespace

Iec104Server::Iec104Server() { reset(); }

void Iec104Server::reset() {
  started_ = false;
  send_seq_ = 0;
  recv_seq_ = 0;
  selected_ = false;
  selected_ioa_ = 0;
  setpoint_selected_ = false;
}

void Iec104Server::build_u(std::uint8_t control) {
  response_writer_.write_u8s(kStartByte, 0x04, control, 0x00, 0x00, 0x00);
}

void Iec104Server::build_i(ByteSpan asdu) {
  response_writer_.write_u8(kStartByte);
  response_writer_.write_u8(static_cast<std::uint8_t>(4 + asdu.size()));
  response_writer_.write_u16(static_cast<std::uint16_t>(send_seq_ << 1),
                             Endian::Little);
  response_writer_.write_u16(static_cast<std::uint16_t>(recv_seq_ << 1),
                             Endian::Little);
  response_writer_.write_bytes(asdu);
  send_seq_ = static_cast<std::uint16_t>((send_seq_ + 1) & 0x7FFF);
}

Bytes Iec104Server::process(ByteSpan packet) {
  Bytes response;
  process_into(packet, response);
  return response;
}

void Iec104Server::process_into(ByteSpan packet, Bytes& response) {
  ICSFUZZ_COV_BLOCK();
  // TCP stream framing: each APCI frame occupies 2 + length bytes.
  response_writer_.clear();
  std::size_t offset = 0;
  for (std::size_t frames = 0; frames < kMaxFramesPerStream; ++frames) {
    if (packet.size() - offset < 2) break;
    const std::size_t frame_size = 2 + packet[offset + 1];
    if (packet.size() - offset < frame_size) break;
    ICSFUZZ_COV_BLOCK();
    process_frame(packet.subspan(offset, frame_size));
    offset += frame_size;
  }
  const ByteSpan out = response_writer_.span();
  response.assign(out.begin(), out.end());
}

void Iec104Server::process_frame(ByteSpan packet) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(packet);
  const std::uint8_t start = reader.read_u8();
  const std::uint8_t length = reader.read_u8();
  if (!reader.ok() || start != kStartByte) {
    ICSFUZZ_COV_BLOCK();
    return;  // not an APCI frame
  }
  if (length < 4 || length > 253) {
    ICSFUZZ_COV_BLOCK();
    return;  // APDU length out of spec
  }
  if (reader.remaining() != length) {
    ICSFUZZ_COV_BLOCK();
    return;  // framing mismatch
  }
  const ByteSpan control = packet.subspan(2, 4);
  const ByteSpan asdu = packet.subspan(6);

  if ((control[0] & 0x03) == 0x03) {
    ICSFUZZ_COV_BLOCK();  // U format
    if (!asdu.empty()) {
      ICSFUZZ_COV_BLOCK();
      return;  // U frames carry no ASDU
    }
    handle_u_frame(control[0]);
    return;
  }
  if ((control[0] & 0x03) == 0x01) {
    ICSFUZZ_COV_BLOCK();  // S format
    if (!asdu.empty()) {
      ICSFUZZ_COV_BLOCK();
      return;
    }
    handle_s_frame(control);
    return;
  }
  ICSFUZZ_COV_BLOCK();  // I format (LSB of first control octet is 0)
  handle_i_frame(control, asdu);
}

void Iec104Server::handle_u_frame(std::uint8_t control) {
  ICSFUZZ_COV_BLOCK();
  switch (control) {
    case kStartDtAct:
      ICSFUZZ_COV_BLOCK();
      started_ = true;
      build_u(kStartDtCon);
      return;
    case kStopDtAct:
      ICSFUZZ_COV_BLOCK();
      started_ = false;
      build_u(kStopDtCon);
      return;
    case kTestFrAct:
      ICSFUZZ_COV_BLOCK();
      build_u(kTestFrCon);
      return;
    case kStartDtCon:
    case kStopDtCon:
    case kTestFrCon:
      ICSFUZZ_COV_BLOCK();  // confirmations from peer: accepted silently
      return;
    default:
      ICSFUZZ_COV_BLOCK();  // undefined U function
      return;
  }
}

void Iec104Server::handle_s_frame(ByteSpan control) {
  ICSFUZZ_COV_BLOCK();
  const std::uint16_t ack =
      static_cast<std::uint16_t>((control[2] | (control[3] << 8)) >> 1);
  if (ack > send_seq_) {
    ICSFUZZ_COV_BLOCK();  // acknowledging frames never sent
    return;
  }
  ICSFUZZ_COV_BLOCK();
}

void Iec104Server::handle_i_frame(ByteSpan control, ByteSpan asdu) {
  ICSFUZZ_COV_BLOCK();
  if (!started_) {
    ICSFUZZ_COV_BLOCK();  // data transfer not started: drop (per spec)
    return;
  }
  const std::uint16_t their_send =
      static_cast<std::uint16_t>((control[0] | (control[1] << 8)) >> 1);
  if (their_send != recv_seq_) {
    ICSFUZZ_COV_BLOCK();  // N(S) sequence error — the stack closes the link
    started_ = false;
    return;
  }
  const std::uint16_t their_recv =
      static_cast<std::uint16_t>((control[2] | (control[3] << 8)) >> 1);
  if (their_recv > send_seq_) {
    ICSFUZZ_COV_BLOCK();  // N(R) acknowledges unsent frames — link closed
    started_ = false;
    return;
  }
  recv_seq_ = static_cast<std::uint16_t>((recv_seq_ + 1) & 0x7FFF);
  handle_asdu(asdu);
}

void Iec104Server::handle_asdu(ByteSpan asdu) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(asdu);
  const std::uint8_t type_id = reader.read_u8();
  const std::uint8_t vsq = reader.read_u8();
  const std::uint8_t cot = reader.read_u8();
  const std::uint8_t originator = reader.read_u8();
  const std::uint16_t ca = reader.read_u16(Endian::Little);
  (void)originator;
  if (!reader.ok()) {
    ICSFUZZ_COV_BLOCK();
    return;  // ASDU header truncated
  }
  if (ca != kCommonAddress && ca != 0xFFFF) {
    ICSFUZZ_COV_BLOCK();
    return;  // not our station
  }
  const std::uint8_t count = vsq & 0x7F;
  if (count == 0) {
    ICSFUZZ_COV_BLOCK();
    return;
  }

  asdu_writer_.clear();
  ByteWriter& response = asdu_writer_;
  switch (type_id) {
    case kCIcNa1: {
      ICSFUZZ_COV_BLOCK();  // station interrogation
      const std::uint32_t ioa =
          static_cast<std::uint32_t>(reader.read_uint(3, Endian::Little));
      const std::uint8_t qoi = reader.read_u8();
      if (!reader.ok() || ioa != 0) {
        ICSFUZZ_COV_BLOCK();
        return;
      }
      if ((cot & 0x3F) != kCotActivation) {
        ICSFUZZ_COV_BLOCK();
        response.write_u8s(type_id, 1, kCotUnknownCot, 0, ca & 0xFF, ca >> 8,
                           0, 0, 0, qoi);
        build_i(response.span());
        return;
      }
      if (qoi == 20) {
        ICSFUZZ_COV_BLOCK();  // global interrogation: report a point
        response.write_u8s(kMSpNa1, 1, 20, 0, ca & 0xFF, ca >> 8, 0x01, 0x00,
                           0x00, 0x01);
      } else if (qoi >= 21 && qoi <= 28) {
        ICSFUZZ_COV_BLOCK();  // station group 1-8 interrogation
        response.write_u8s(kMSpNa1, 1, qoi, 0, ca & 0xFF, ca >> 8, 0x02, 0x00,
                           0x00, 0x00);
      } else if (qoi >= 29 && qoi <= 36) {
        ICSFUZZ_COV_BLOCK();  // measurand group interrogation: scaled reply
        response.write_u8s(kMMeNb1, 1, qoi, 0, ca & 0xFF, ca >> 8, 0x10, 0x00,
                           0x00, 0x34, 0x12, 0x00);
      } else {
        ICSFUZZ_COV_BLOCK();  // undefined qualifier
        return;
      }
      response.write_u8s(type_id, 1, kCotActivationCon, 0, ca & 0xFF, ca >> 8,
                         0, 0, 0, qoi);
      build_i(response.span());
      return;
    }
    case kCScNa1: {
      ICSFUZZ_COV_BLOCK();  // single command
      const std::uint32_t ioa =
          static_cast<std::uint32_t>(reader.read_uint(3, Endian::Little));
      const std::uint8_t sco = reader.read_u8();
      if (!reader.ok()) {
        ICSFUZZ_COV_BLOCK();
        return;
      }
      if (ioa < 0x1000 || ioa > 0x1010) {
        ICSFUZZ_COV_BLOCK();  // unknown object address
        return;
      }
      const bool select = (sco & 0x80) != 0;
      if (select) {
        ICSFUZZ_COV_BLOCK();  // select phase
        selected_ = true;
        selected_ioa_ = ioa;
      } else if (selected_) {
        if (selected_ioa_ != ioa) {
          ICSFUZZ_COV_BLOCK();  // execute targets a different object: abort
          selected_ = false;
          return;
        }
        ICSFUZZ_COV_BLOCK();  // execute after select: deepest command path
        selected_ = false;
        // Qualifier of command (QU) selects the output-circuit profile;
        // each defined profile drives a distinct actuation routine.
        switch ((sco >> 2) & 0x1F) {
          case 0:
            ICSFUZZ_COV_BLOCK();  // no additional definition
            break;
          case 1:
            ICSFUZZ_COV_BLOCK();  // short pulse
            break;
          case 2:
            ICSFUZZ_COV_BLOCK();  // long pulse
            break;
          case 3:
            ICSFUZZ_COV_BLOCK();  // persistent output
            break;
          default:
            ICSFUZZ_COV_BLOCK();  // reserved qualifier: refuse execution
            return;
        }
      } else {
        ICSFUZZ_COV_BLOCK();  // execute without select
        return;
      }
      response.write_u8s(kCScNa1, 1, kCotActivationCon, 0, ca & 0xFF, ca >> 8,
                         ioa & 0xFF, (ioa >> 8) & 0xFF, (ioa >> 16) & 0xFF,
                         sco);
      build_i(response.span());
      return;
    }
    case kCCsNa1: {
      ICSFUZZ_COV_BLOCK();  // clock synchronisation
      const std::uint32_t ioa =
          static_cast<std::uint32_t>(reader.read_uint(3, Endian::Little));
      const std::size_t time_pos = reader.position();
      reader.skip(7);
      if (!reader.ok() || ioa != 0) {
        ICSFUZZ_COV_BLOCK();
        return;
      }
      const ByteSpan time = asdu.subspan(time_pos, 7);
      // Validate CP56Time2a: minutes < 60, hours < 24.
      if ((time[2] & 0x3F) >= 60 || (time[3] & 0x1F) >= 24) {
        ICSFUZZ_COV_BLOCK();  // invalid timestamp
        return;
      }
      ICSFUZZ_COV_BLOCK();
      response.write_u8s(kCCsNa1, 1, kCotActivationCon, 0, ca & 0xFF, ca >> 8,
                         0, 0, 0);
      response.write_bytes(time);
      build_i(response.span());
      return;
    }
    case kCSeNb1: {
      ICSFUZZ_COV_BLOCK();  // set-point command, scaled value
      if (ca == 0xFFFF) {
        ICSFUZZ_COV_BLOCK();  // setpoints must not be broadcast
        return;
      }
      const std::uint32_t ioa =
          static_cast<std::uint32_t>(reader.read_uint(3, Endian::Little));
      const std::uint16_t value = reader.read_u16(Endian::Little);
      const std::uint8_t qos = reader.read_u8();
      if (!reader.ok()) {
        ICSFUZZ_COV_BLOCK();
        return;
      }
      if (ioa < 0x1900 || ioa > 0x1903) {
        ICSFUZZ_COV_BLOCK();  // unknown setpoint register
        return;
      }
      const std::uint8_t ql = qos & 0x7F;
      if (ql > 3) {
        ICSFUZZ_COV_BLOCK();  // undefined qualifier-of-set-point
        return;
      }
      if ((qos & 0x80) != 0) {
        ICSFUZZ_COV_BLOCK();  // select phase
        setpoint_selected_ = true;
      } else if (setpoint_selected_) {
        ICSFUZZ_COV_BLOCK();  // execute after select
        setpoint_selected_ = false;
        if (static_cast<std::int16_t>(value) < 0) {
          ICSFUZZ_COV_BLOCK();  // negative engineering value path
        } else if (value > 0x4000) {
          ICSFUZZ_COV_BLOCK();  // above-range clamp path
        } else {
          ICSFUZZ_COV_BLOCK();  // nominal setpoint
        }
      } else {
        ICSFUZZ_COV_BLOCK();  // execute without select
        return;
      }
      response.write_u8s(kCSeNb1, 1, kCotActivationCon, 0, ca & 0xFF, ca >> 8,
                         ioa & 0xFF, (ioa >> 8) & 0xFF, (ioa >> 16) & 0xFF,
                         value & 0xFF, value >> 8, qos);
      build_i(response.span());
      return;
    }
    case kCDcNa1: {
      ICSFUZZ_COV_BLOCK();  // double command (breaker-style control)
      if (ca == 0xFFFF) {
        ICSFUZZ_COV_BLOCK();  // controls must not be broadcast
        return;
      }
      const std::uint32_t ioa =
          static_cast<std::uint32_t>(reader.read_uint(3, Endian::Little));
      const std::uint8_t dco = reader.read_u8();
      if (!reader.ok()) {
        ICSFUZZ_COV_BLOCK();
        return;
      }
      const std::uint8_t dcs = dco & 0x03;
      if (dcs == 0 || dcs == 3) {
        ICSFUZZ_COV_BLOCK();  // DCS "not permitted" values
        return;
      }
      if (ioa < 0x1800 || ioa > 0x1804) {
        ICSFUZZ_COV_BLOCK();  // unknown double point
        return;
      }
      if (dcs == 2 && (dco & 0x80) == 0) {
        ICSFUZZ_COV_BLOCK();  // direct CLOSE requires select first: refuse
        return;
      }
      ICSFUZZ_COV_BLOCK();  // accepted double command
      response.write_u8s(kCDcNa1, 1, kCotActivationCon, 0, ca & 0xFF, ca >> 8,
                         ioa & 0xFF, (ioa >> 8) & 0xFF, (ioa >> 16) & 0xFF,
                         dco);
      build_i(response.span());
      return;
    }
    case kCCiNa1: {
      ICSFUZZ_COV_BLOCK();  // counter interrogation
      const std::uint32_t ioa =
          static_cast<std::uint32_t>(reader.read_uint(3, Endian::Little));
      const std::uint8_t qcc = reader.read_u8();
      if (!reader.ok() || ioa != 0) {
        ICSFUZZ_COV_BLOCK();
        return;
      }
      const std::uint8_t rqt = qcc & 0x3F;  // request qualifier
      const std::uint8_t frz = qcc >> 6;    // freeze/reset qualifier
      if (rqt == 0 || rqt > 5) {
        ICSFUZZ_COV_BLOCK();  // undefined counter group
        return;
      }
      if (frz == 3 && rqt != 5) {
        ICSFUZZ_COV_BLOCK();  // reset only defined for the general request
        return;
      }
      switch (frz) {
        case 0:
          ICSFUZZ_COV_BLOCK();  // read counters
          break;
        case 1:
          ICSFUZZ_COV_BLOCK();  // freeze without reset
          break;
        case 2:
          ICSFUZZ_COV_BLOCK();  // freeze with reset
          break;
        default:
          ICSFUZZ_COV_BLOCK();  // counter reset
          break;
      }
      ICSFUZZ_COV_BLOCK();
      response.write_u8s(kCCiNa1, 1, kCotActivationCon, 0, ca & 0xFF, ca >> 8,
                         0, 0, 0, qcc);
      build_i(response.span());
      return;
    }
    case kCRdNa1: {
      ICSFUZZ_COV_BLOCK();  // read command
      if (ca == 0xFFFF) {
        ICSFUZZ_COV_BLOCK();  // reads must not be broadcast
        return;
      }
      const std::uint32_t ioa =
          static_cast<std::uint32_t>(reader.read_uint(3, Endian::Little));
      if (!reader.ok() || !reader.at_end()) {
        ICSFUZZ_COV_BLOCK();
        return;
      }
      if (ioa >= 0x0100 && ioa <= 0x0107) {
        ICSFUZZ_COV_BLOCK();  // single-point bank
        if ((ioa & 1) != 0) {
          ICSFUZZ_COV_BLOCK();  // odd points latch inverted state
        }
        response.write_u8s(kMSpNa1, 1, 5 /* COT: requested */, 0, ca & 0xFF,
                           ca >> 8, ioa & 0xFF, (ioa >> 8) & 0xFF, 0, ioa & 1);
      } else if (ioa >= 0x0200 && ioa <= 0x0207) {
        ICSFUZZ_COV_BLOCK();  // measurand bank
        switch (ioa & 3) {
          case 0:
            ICSFUZZ_COV_BLOCK();  // voltage channel scaling
            break;
          case 1:
            ICSFUZZ_COV_BLOCK();  // current channel scaling
            break;
          case 2:
            ICSFUZZ_COV_BLOCK();  // power channel scaling
            break;
          default:
            ICSFUZZ_COV_BLOCK();  // frequency channel scaling
            break;
        }
        response.write_u8s(kMMeNb1, 1, 5, 0, ca & 0xFF, ca >> 8, ioa & 0xFF,
                           (ioa >> 8) & 0xFF, 0, 0x34, 0x12, 0x00);
      } else {
        ICSFUZZ_COV_BLOCK();  // unknown object
        return;
      }
      build_i(response.span());
      return;
    }
    case kMSpNa1:
    case kMMeNb1: {
      ICSFUZZ_COV_BLOCK();  // monitor-direction type sent to a slave
      response.write_u8s(type_id, 1, kCotUnknownType, 0, ca & 0xFF, ca >> 8,
                         0, 0, 0);
      build_i(response.span());
      return;
    }
    default:
      ICSFUZZ_COV_BLOCK();  // unknown type identification
      return;
  }
}

}  // namespace icsfuzz::proto
