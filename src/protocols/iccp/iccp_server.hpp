// ICCP / TASE.2 server — re-implementation of the packet-processing layer of
// libiec_iccp_mod (the paper's "libiccp" evaluation subject).
//
// The wire format is a simplified MMS-over-TPKT: a 4-byte TPKT-like header
// (version, reserved, big-endian length), then a BER-TLV MMS PDU. Supported
// services mirror what the ICCP profile exercises: association (initiate),
// conclude, and confirmed requests for Read / Write / GetNameList on a
// static table of TASE.2 data values.
//
// Injected vulnerabilities (Table I, libiec_iccp_mod row — 3 SEGV, 1 heap
// buffer overflow):
//   * "iccp-name-oob"    (SEGV) — GetNameList continuation trusts the
//     "continue after" index and reads the name table out of bounds.
//   * "iccp-nest-oob"    (SEGV) — structured Read dereferences a component
//     index without checking the structure arity.
//   * "iccp-report-oob"  (SEGV) — InformationReport parsing walks entry
//     offsets supplied in the packet without bounds checks.
//   * "iccp-write-heapbo" (heap buffer overflow) — Write copies the value
//     payload into a fixed 16-byte staging buffer using the declared,
//     unvalidated length.
#pragma once

#include <cstdint>

#include "protocols/protocol_target.hpp"

namespace icsfuzz::proto {

class IccpServer final : public ProtocolTarget {
 public:
  IccpServer();

  [[nodiscard]] std::string_view name() const override {
    return "libiec_iccp_mod";
  }
  void reset() override;

  /// Consumes a stream of TPKT-framed MMS PDUs (up to kMaxFramesPerStream)
  /// and returns the concatenated responses.
  Bytes process(ByteSpan packet) override;

  /// Allocation-free hot path (modulo the injected GuardedAlloc in the
  /// Write service): responses assemble in member scratch writers, then
  /// copy into the caller's reused buffer. Byte-identical to process().
  void process_into(ByteSpan packet, Bytes& response) override;

  static constexpr std::size_t kMaxFramesPerStream = 8;

  // -- Introspection for tests. --
  [[nodiscard]] bool associated() const { return associated_; }
  [[nodiscard]] std::uint32_t writes_accepted() const {
    return writes_accepted_;
  }

 private:
  // Handlers append outbound PDUs into response_writer_; the scratch
  // writers stage one BER nesting level each (see process_into).
  void process_frame(ByteSpan frame);
  void handle_pdu(ByteSpan pdu);
  void handle_initiate(ByteSpan body);
  void handle_confirmed_request(ByteSpan body);
  void handle_read(std::uint32_t invoke_id, ByteSpan body);
  void handle_write(std::uint32_t invoke_id, ByteSpan body);
  void handle_name_list(std::uint32_t invoke_id, ByteSpan body);
  void handle_information_report(ByteSpan body);

  void confirmed_response(std::uint32_t invoke_id, std::uint8_t service_tag,
                          ByteSpan payload);
  void error_response(std::uint32_t invoke_id, std::uint8_t error_code);

  bool associated_ = false;
  std::uint32_t writes_accepted_ = 0;

  // Reused scratch (see process_into).
  ByteWriter response_writer_;  ///< concatenated outbound TPKT payloads
  ByteWriter inner_writer_;     ///< invoke id + service TLV of one response
  ByteWriter payload_writer_;   ///< service-level payload
};

}  // namespace icsfuzz::proto
