#include "protocols/iccp/iccp_server.hpp"

#include <array>
#include <optional>
#include <string_view>

#include "coverage/instrument.hpp"
#include "sanitizer/guard.hpp"

namespace icsfuzz::proto {
namespace {

// MMS PDU tags (context-specific, constructed).
constexpr std::uint8_t kConfirmedRequest = 0xA0;
constexpr std::uint8_t kConfirmedResponse = 0xA1;
constexpr std::uint8_t kInitiateRequest = 0xA8;
constexpr std::uint8_t kInitiateResponse = 0xA9;
constexpr std::uint8_t kConcludeRequest = 0x8B;
constexpr std::uint8_t kInformationReport = 0xA3;

// Confirmed service tags within a request.
constexpr std::uint8_t kServiceRead = 0xA4;
constexpr std::uint8_t kServiceWrite = 0xA5;
constexpr std::uint8_t kServiceNameList = 0xA1;

// Static TASE.2 value table.
struct IccpPoint {
  std::string_view name;
  std::uint32_t value;
};
constexpr std::array<IccpPoint, 6> kPoints = {{
    {"Transfer_Set_Name", 0x01},
    {"Transfer_Set_Time_Limit", 0x3C},
    {"DSConditions_Requested", 0x04},
    {"Data_Value_A", 0x1234},
    {"Data_Value_B", 0x5678},
    {"Bilateral_Table_ID", 0x0001},
}};

/// Minimal BER TLV reader: definite short/long lengths up to 2 octets.
struct Tlv {
  std::uint8_t tag = 0;
  ByteSpan value;
};

std::optional<Tlv> read_tlv(ByteReader& reader, ByteSpan scope) {
  const std::size_t tag_pos = reader.position();
  const std::uint8_t tag = reader.read_u8();
  std::uint8_t first_len = reader.read_u8();
  if (!reader.ok()) return std::nullopt;
  std::size_t length = 0;
  if ((first_len & 0x80) == 0) {
    length = first_len;
  } else {
    const std::size_t octets = first_len & 0x7F;
    if (octets == 0 || octets > 2) return std::nullopt;  // no indefinite form
    length = static_cast<std::size_t>(reader.read_uint(octets, Endian::Big));
    if (!reader.ok()) return std::nullopt;
  }
  if (reader.remaining() < length) return std::nullopt;
  const std::size_t value_pos = reader.position();
  reader.skip(length);
  (void)tag_pos;
  return Tlv{tag, scope.subspan(value_pos, length)};
}

void write_tlv(ByteWriter& writer, std::uint8_t tag, ByteSpan value) {
  writer.write_u8(tag);
  if (value.size() < 0x80) {
    writer.write_u8(static_cast<std::uint8_t>(value.size()));
  } else {
    writer.write_u8(0x82);
    writer.write_u16(static_cast<std::uint16_t>(value.size()), Endian::Big);
  }
  writer.write_bytes(value);
}

}  // namespace

IccpServer::IccpServer() { reset(); }

void IccpServer::reset() {
  associated_ = false;
  writes_accepted_ = 0;
}

Bytes IccpServer::process(ByteSpan packet) {
  Bytes response;
  process_into(packet, response);
  return response;
}

void IccpServer::process_into(ByteSpan packet, Bytes& response) {
  ICSFUZZ_COV_BLOCK();
  // Stream framing: each TPKT envelope declares its own total length in
  // octets 2-3.
  response_writer_.clear();
  std::size_t offset = 0;
  for (std::size_t frames = 0; frames < kMaxFramesPerStream; ++frames) {
    if (packet.size() - offset < 4) break;
    const std::size_t frame_size = static_cast<std::size_t>(
        (packet[offset + 2] << 8) | packet[offset + 3]);
    if (frame_size < 4 || packet.size() - offset < frame_size) break;
    ICSFUZZ_COV_BLOCK();
    process_frame(packet.subspan(offset, frame_size));
    if (san::FaultSink::tripped()) break;  // the server process just died
    offset += frame_size;
  }
  const ByteSpan out = response_writer_.span();
  response.assign(out.begin(), out.end());
}

void IccpServer::process_frame(ByteSpan packet) {
  ICSFUZZ_COV_BLOCK();
  // --- TPKT-like envelope -------------------------------------------------
  ByteReader reader(packet);
  const std::uint8_t version = reader.read_u8();
  const std::uint8_t reserved = reader.read_u8();
  const std::uint16_t length = reader.read_u16(Endian::Big);
  if (!reader.ok() || version != 0x03 || reserved != 0x00) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  if (length != packet.size()) {
    ICSFUZZ_COV_BLOCK();
    return;  // envelope length mismatch
  }
  ICSFUZZ_COV_BLOCK();
  handle_pdu(packet.subspan(4));
}

void IccpServer::handle_pdu(ByteSpan pdu) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(pdu);
  auto tlv = read_tlv(reader, pdu);
  if (!tlv || !reader.at_end()) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  switch (tlv->tag) {
    case kInitiateRequest:
      ICSFUZZ_COV_BLOCK();
      handle_initiate(tlv->value);
      return;
    case kConcludeRequest:
      ICSFUZZ_COV_BLOCK();
      associated_ = false;
      response_writer_.write_u8s(0x8C, 0x00);  // conclude response
      return;
    case kConfirmedRequest:
      ICSFUZZ_COV_BLOCK();
      if (!associated_) {
        ICSFUZZ_COV_BLOCK();
        return;  // service request before association
      }
      handle_confirmed_request(tlv->value);
      return;
    case kInformationReport:
      ICSFUZZ_COV_BLOCK();
      if (!associated_) {
        ICSFUZZ_COV_BLOCK();
        return;
      }
      handle_information_report(tlv->value);
      return;
    default:
      ICSFUZZ_COV_BLOCK();
      return;
  }
}

void IccpServer::handle_initiate(ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  // initiate-Request: local-detail (0x80 len4), max-serv-outstanding
  // (0x81 len1), version (0x82 len1).
  ByteReader reader(body);
  std::uint32_t local_detail = 0;
  std::uint8_t version = 0;
  bool saw_detail = false;
  while (!reader.at_end()) {
    auto tlv = read_tlv(reader, body);
    if (!tlv) {
      ICSFUZZ_COV_BLOCK();
      return;
    }
    switch (tlv->tag) {
      case 0x80:
        ICSFUZZ_COV_BLOCK();
        if (tlv->value.size() != 4) return;
        local_detail = static_cast<std::uint32_t>(
            decode_uint(tlv->value, Endian::Big));
        saw_detail = true;
        break;
      case 0x81:
        ICSFUZZ_COV_BLOCK();
        if (tlv->value.size() != 1) return;
        break;
      case 0x82:
        ICSFUZZ_COV_BLOCK();
        if (tlv->value.size() != 1) return;
        version = tlv->value[0];
        break;
      default:
        ICSFUZZ_COV_BLOCK();
        return;  // unknown initiate parameter
    }
  }
  if (!saw_detail || local_detail < 1000 || local_detail > 65000) {
    ICSFUZZ_COV_BLOCK();
    return;  // negotiation failure
  }
  if (version != 1 && version != 2) {
    ICSFUZZ_COV_BLOCK();
    return;  // unsupported TASE.2 version
  }
  ICSFUZZ_COV_BLOCK();  // association established
  associated_ = true;
  payload_writer_.clear();
  payload_writer_.write_u8(0x80);
  payload_writer_.write_u8(4);
  payload_writer_.write_u32(local_detail, Endian::Big);
  write_tlv(response_writer_, kInitiateResponse, payload_writer_.span());
}

void IccpServer::handle_confirmed_request(ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  // confirmed-Request: invoke id (0x02 INTEGER), then one service TLV.
  ByteReader reader(body);
  auto invoke = read_tlv(reader, body);
  if (!invoke || invoke->tag != 0x02 || invoke->value.empty() ||
      invoke->value.size() > 4) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  const std::uint32_t invoke_id =
      static_cast<std::uint32_t>(decode_uint(invoke->value, Endian::Big));
  auto service = read_tlv(reader, body);
  if (!service || !reader.at_end()) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  switch (service->tag) {
    case kServiceRead:
      ICSFUZZ_COV_BLOCK();
      handle_read(invoke_id, service->value);
      return;
    case kServiceWrite:
      ICSFUZZ_COV_BLOCK();
      handle_write(invoke_id, service->value);
      return;
    case kServiceNameList:
      ICSFUZZ_COV_BLOCK();
      handle_name_list(invoke_id, service->value);
      return;
    default:
      ICSFUZZ_COV_BLOCK();
      error_response(invoke_id, 0x01);  // service not supported
      return;
  }
}

void IccpServer::handle_read(std::uint32_t invoke_id, ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  // Read: item index (0x80 len1) + optional component index (0x81 len1) for
  // structured points.
  ByteReader reader(body);
  auto item = read_tlv(reader, body);
  if (!item || item->tag != 0x80 || item->value.size() != 1) {
    ICSFUZZ_COV_BLOCK();
    error_response(invoke_id, 0x02);
    return;
  }
  const std::uint8_t item_index = item->value[0];
  if (item_index >= kPoints.size()) {
    ICSFUZZ_COV_BLOCK();
    error_response(invoke_id, 0x03);  // object non-existent
    return;
  }
  std::uint32_t value = kPoints[item_index].value;

  if (!reader.at_end()) {
    auto component = read_tlv(reader, body);
    if (!component || component->tag != 0x81 ||
        component->value.size() != 1 || !reader.at_end()) {
      ICSFUZZ_COV_BLOCK();
      error_response(invoke_id, 0x02);
      return;
    }
    ICSFUZZ_COV_BLOCK();  // structured (alternate-access) read
    // BUG(iccp-nest-oob): the component table of every structured point has
    // exactly 2 entries (value, quality), but the component index from the
    // wire is used unchecked.
    static constexpr std::array<std::uint8_t, 2> kComponents = {0x10, 0x20};
    san::GuardedSpan components(
        ByteSpan(kComponents.data(), kComponents.size()),
        san::site_id("iccp-nest-oob"), "structure component table");
    const std::uint8_t selector = components.at(component->value[0]);
    if (san::FaultSink::tripped()) return;  // process died here
    value = (value >> (selector & 0x1F)) & 0xFFFF;
  }

  ICSFUZZ_COV_BLOCK();
  payload_writer_.clear();
  payload_writer_.write_u8(0x89);  // unsigned data
  payload_writer_.write_u8(4);
  payload_writer_.write_u32(value, Endian::Big);
  confirmed_response(invoke_id, kServiceRead, payload_writer_.span());
}

void IccpServer::handle_write(std::uint32_t invoke_id, ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  // Write: item index (0x80 len1), declared value length (0x81 len1),
  // value octets (0x82 len N).
  ByteReader reader(body);
  auto item = read_tlv(reader, body);
  auto declared = read_tlv(reader, body);
  auto value = read_tlv(reader, body);
  if (!item || item->tag != 0x80 || item->value.size() != 1 || !declared ||
      declared->tag != 0x81 || declared->value.size() != 1 || !value ||
      value->tag != 0x82 || !reader.at_end()) {
    ICSFUZZ_COV_BLOCK();
    error_response(invoke_id, 0x02);
    return;
  }
  const std::uint8_t item_index = item->value[0];
  if (item_index >= kPoints.size()) {
    ICSFUZZ_COV_BLOCK();
    error_response(invoke_id, 0x03);
    return;
  }
  if (item_index < 3) {
    ICSFUZZ_COV_BLOCK();
    error_response(invoke_id, 0x04);  // read-only transfer-set point
    return;
  }
  ICSFUZZ_COV_BLOCK();  // writable point
  const std::uint8_t declared_length = declared->value[0];
  // BUG(iccp-write-heapbo): the staging buffer is a fixed 16-byte heap
  // allocation, but the copy loop trusts the *declared* length field rather
  // than the buffer capacity; declared lengths above 16 (with a matching
  // value payload) write past the allocation.
  san::GuardedAlloc staging(16, san::site_id("iccp-write-heapbo"),
                            "write value staging buffer");
  const std::size_t copy_length =
      declared_length <= value->value.size() ? declared_length
                                             : value->value.size();
  for (std::size_t i = 0; i < copy_length; ++i) {
    ICSFUZZ_COV_BLOCK();
    staging.write(i, value->value[i]);
    if (san::FaultSink::tripped()) return;  // process died here
  }
  ++writes_accepted_;
  payload_writer_.clear();
  payload_writer_.write_u8(0x80);
  payload_writer_.write_u8(1);
  payload_writer_.write_u8(0x00);  // success
  confirmed_response(invoke_id, kServiceWrite, payload_writer_.span());
}

void IccpServer::handle_name_list(std::uint32_t invoke_id, ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  // GetNameList: object class (0x80 len1), optional continue-after index
  // (0x81 len1).
  ByteReader reader(body);
  auto object_class = read_tlv(reader, body);
  if (!object_class || object_class->tag != 0x80 ||
      object_class->value.size() != 1) {
    ICSFUZZ_COV_BLOCK();
    error_response(invoke_id, 0x02);
    return;
  }
  if (object_class->value[0] != 0) {  // 0 = named variables
    ICSFUZZ_COV_BLOCK();
    error_response(invoke_id, 0x05);  // class not supported
    return;
  }
  std::size_t start = 0;
  if (!reader.at_end()) {
    auto continue_after = read_tlv(reader, body);
    if (!continue_after || continue_after->tag != 0x81 ||
        continue_after->value.size() != 1 || !reader.at_end()) {
      ICSFUZZ_COV_BLOCK();
      error_response(invoke_id, 0x02);
      return;
    }
    ICSFUZZ_COV_BLOCK();  // continuation request
    // BUG(iccp-name-oob): "continue after entry N" resumes at N+1 without
    // checking N against the table size; the first name fetch of the
    // continuation then reads out of bounds.
    static constexpr std::array<std::uint8_t, kPoints.size()> kNameLengths = {
        17, 23, 22, 12, 12, 18};
    san::GuardedSpan lengths(ByteSpan(kNameLengths.data(), kNameLengths.size()),
                             san::site_id("iccp-name-oob"),
                             "name-list length table");
    start = static_cast<std::size_t>(continue_after->value[0]) + 1;
    (void)lengths.at(start);  // prefetches the resume entry — unchecked
    if (san::FaultSink::tripped()) return;  // process died here
    if (start >= kPoints.size()) return;
  }
  ICSFUZZ_COV_BLOCK();
  payload_writer_.clear();
  ByteWriter& names = payload_writer_;
  for (std::size_t i = start; i < kPoints.size(); ++i) {
    ICSFUZZ_COV_BLOCK();
    const std::string_view name = kPoints[i].name;
    names.write_u8(0x1A);  // VisibleString
    names.write_u8(static_cast<std::uint8_t>(name.size()));
    names.write_string(name);
  }
  confirmed_response(invoke_id, kServiceNameList, names.span());
}

void IccpServer::handle_information_report(ByteSpan body) {
  ICSFUZZ_COV_BLOCK();
  // InformationReport: entry count (0x80 len1), offsets blob (0x81 len N —
  // one byte per entry), data blob (0x82 len M).
  ByteReader reader(body);
  auto count_tlv = read_tlv(reader, body);
  auto offsets_tlv = read_tlv(reader, body);
  auto data_tlv = read_tlv(reader, body);
  if (!count_tlv || count_tlv->tag != 0x80 || count_tlv->value.size() != 1 ||
      !offsets_tlv || offsets_tlv->tag != 0x81 || !data_tlv ||
      data_tlv->tag != 0x82 || !reader.at_end()) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  const std::uint8_t count = count_tlv->value[0];
  if (count == 0 || count > offsets_tlv->value.size()) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  ICSFUZZ_COV_BLOCK();
  // BUG(iccp-report-oob): each entry's offset into the data blob comes
  // straight from the wire; the dereference does not check it against the
  // blob length.
  san::GuardedSpan data(data_tlv->value, san::site_id("iccp-report-oob"),
                        "information-report data blob");
  std::uint8_t acc = 0;
  for (std::uint8_t i = 0; i < count; ++i) {
    ICSFUZZ_COV_BLOCK();
    const std::uint8_t offset = offsets_tlv->value[i];
    acc = static_cast<std::uint8_t>(acc ^ data.at(offset));
    if (san::FaultSink::tripped()) return;  // process died here
  }
  // Unconfirmed service: no response, but track the digest for liveness.
  (void)acc;
}

void IccpServer::confirmed_response(std::uint32_t invoke_id,
                                    std::uint8_t service_tag,
                                    ByteSpan payload) {
  inner_writer_.clear();
  inner_writer_.write_u8(0x02);
  inner_writer_.write_u8(4);
  inner_writer_.write_u32(invoke_id, Endian::Big);
  write_tlv(inner_writer_, service_tag, payload);
  write_tlv(response_writer_, kConfirmedResponse, inner_writer_.span());
}

void IccpServer::error_response(std::uint32_t invoke_id,
                                std::uint8_t error_code) {
  inner_writer_.clear();
  inner_writer_.write_u8(0x02);
  inner_writer_.write_u8(4);
  inner_writer_.write_u32(invoke_id, Endian::Big);
  inner_writer_.write_u8(0x85);
  inner_writer_.write_u8(1);
  inner_writer_.write_u8(error_code);
  write_tlv(response_writer_, 0xA2, inner_writer_.span());  // confirmed-error PDU
}

}  // namespace icsfuzz::proto
