// Maps the paper's project names ("libmodbus", "IEC104", ...) to factories
// producing fresh instances of the matching instrumented server. The one
// authoritative name-to-stack mapping — the benches, the icsfuzz-distill
// CLI, and any future tool share it, and the names align with
// pits::pit_for_project.
#pragma once

#include <functional>
#include <memory>
#include <string_view>

#include "protocols/protocol_target.hpp"

namespace icsfuzz::proto {

/// Factory for the named project's server; an empty std::function for
/// unknown names.
std::function<std::unique_ptr<ProtocolTarget>()> target_factory(
    std::string_view project);

}  // namespace icsfuzz::proto
