#include "protocols/lib60870/cs101_server.hpp"

#include "coverage/instrument.hpp"
#include "sanitizer/guard.hpp"

namespace icsfuzz::proto {
namespace {

constexpr std::uint8_t kStartByte = 0x68;

// Type identifications.
constexpr std::uint8_t kMSpNa1 = 1;    // single point
constexpr std::uint8_t kMMeNb1 = 11;   // measured value, scaled
constexpr std::uint8_t kCScNa1 = 45;   // single command
constexpr std::uint8_t kCScTa1 = 58;   // single command with CP56Time2a
constexpr std::uint8_t kCIcNa1 = 100;  // interrogation
constexpr std::uint8_t kCRdNa1 = 102;  // read command

// Causes of transmission.
constexpr std::uint8_t kCotActivation = 6;
constexpr std::uint8_t kCotActivationCon = 7;
constexpr std::uint8_t kCotInterrogated = 20;

constexpr std::uint16_t kCommonAddress = 3;

// U-frame controls (subset; the link layer mirrors Iec104Server but the
// interesting code — and the bugs — live in the ASDU layer).
constexpr std::uint8_t kStartDtAct = 0x07;
constexpr std::uint8_t kStartDtCon = 0x0B;
constexpr std::uint8_t kTestFrAct = 0x43;
constexpr std::uint8_t kTestFrCon = 0x83;

}  // namespace

Cs101Server::Cs101Server() { reset(); }

void Cs101Server::reset() {
  started_ = false;
  recv_seq_ = 0;
  send_seq_ = 0;
  commands_executed_ = 0;
  selected_ = false;
  selected_ioa_ = 0;
}

std::uint8_t Cs101Server::asdu_get_cot(ByteSpan asdu) const {
  // BUG(cs101-getcot-oob): mirrors the paper's Listing 1 —
  //   return (CS101_CauseOfTransmission)(self->asdu[2] & 0x3f);
  // The COT octet is fetched without checking that the ASDU actually has
  // three bytes, so a truncated ASDU reads past the allocation.
  san::GuardedSpan view(asdu, san::site_id("cs101-getcot-oob"),
                        "CS101_ASDU_getCOT");
  return static_cast<std::uint8_t>(view.at(2) & 0x3F);
}

Bytes Cs101Server::process(ByteSpan packet) {
  Bytes response;
  process_into(packet, response);
  return response;
}

void Cs101Server::process_into(ByteSpan packet, Bytes& response) {
  ICSFUZZ_COV_BLOCK();
  // TCP stream framing: each APCI frame occupies 2 + length bytes.
  response_writer_.clear();
  std::size_t offset = 0;
  for (std::size_t frames = 0; frames < kMaxFramesPerStream; ++frames) {
    if (packet.size() - offset < 2) break;
    const std::size_t frame_size = 2 + packet[offset + 1];
    if (packet.size() - offset < frame_size) break;
    ICSFUZZ_COV_BLOCK();
    process_frame(packet.subspan(offset, frame_size));
    if (san::FaultSink::tripped()) break;  // the server process just died
    offset += frame_size;
  }
  const ByteSpan out = response_writer_.span();
  response.assign(out.begin(), out.end());
}

void Cs101Server::process_frame(ByteSpan packet) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(packet);
  const std::uint8_t start = reader.read_u8();
  const std::uint8_t length = reader.read_u8();
  if (!reader.ok() || start != kStartByte) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  if (length < 4 || reader.remaining() != length) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  const ByteSpan control = packet.subspan(2, 4);
  const ByteSpan asdu = packet.subspan(6);

  if ((control[0] & 0x03) == 0x03) {
    ICSFUZZ_COV_BLOCK();  // U frame
    switch (control[0]) {
      case kStartDtAct:
        ICSFUZZ_COV_BLOCK();
        started_ = true;
        response_writer_.write_u8s(kStartByte, 4, kStartDtCon, 0, 0, 0);
        return;
      case kTestFrAct:
        ICSFUZZ_COV_BLOCK();
        response_writer_.write_u8s(kStartByte, 4, kTestFrCon, 0, 0, 0);
        return;
      default:
        ICSFUZZ_COV_BLOCK();
        return;
    }
  }
  if ((control[0] & 0x03) == 0x01) {
    ICSFUZZ_COV_BLOCK();  // S frame — sequence ack only
    return;
  }
  ICSFUZZ_COV_BLOCK();  // I frame
  if (!started_) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  recv_seq_ = static_cast<std::uint16_t>((recv_seq_ + 1) & 0x7FFF);
  handle_asdu(asdu);
}

void Cs101Server::handle_asdu(ByteSpan asdu) {
  ICSFUZZ_COV_BLOCK();
  // Type id and VSQ are checked for presence (lib60870 does verify these
  // two while constructing the ASDU object)...
  if (asdu.size() < 2) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  const std::uint8_t type_id = asdu[0];
  const std::uint8_t vsq = asdu[1];
  // ...but the COT accessor is the paper's unchecked one: an ASDU holding
  // exactly two bytes dies here, as in Listing 2's gdb session.
  const std::uint8_t cot = asdu_get_cot(asdu);
  if (san::FaultSink::tripped()) return;  // process died here

  if (asdu.size() < 6) {
    ICSFUZZ_COV_BLOCK();
    return;  // header incomplete (originator / common address missing)
  }
  const std::uint16_t ca =
      static_cast<std::uint16_t>(asdu[4] | (asdu[5] << 8));
  if (ca != kCommonAddress && ca != 0xFFFF) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  const ByteSpan objects = asdu.subspan(6);

  switch (type_id) {
    case kCIcNa1:
      ICSFUZZ_COV_BLOCK();
      handle_interrogation(objects, cot, ca);
      return;
    case kCRdNa1:
      ICSFUZZ_COV_BLOCK();
      handle_read_command(objects, ca);
      return;
    case kCScNa1:
      ICSFUZZ_COV_BLOCK();
      handle_single_command(objects, false, ca);
      return;
    case kCScTa1:
      ICSFUZZ_COV_BLOCK();
      handle_single_command(objects, true, ca);
      return;
    case kMMeNb1:
      ICSFUZZ_COV_BLOCK();
      handle_sequence_measurands(objects, vsq, ca);
      return;
    case kMSpNa1:
      ICSFUZZ_COV_BLOCK();  // monitor-direction type: negative confirm
      confirm(type_id, 45, ca, {});
      return;
    default:
      ICSFUZZ_COV_BLOCK();
      confirm(type_id, 44, ca, {});  // unknown type id
      return;
  }
}

void Cs101Server::handle_interrogation(ByteSpan objects, std::uint8_t cot,
                                       std::uint16_t ca) {
  ICSFUZZ_COV_BLOCK();
  ByteReader reader(objects);
  const std::uint32_t ioa =
      static_cast<std::uint32_t>(reader.read_uint(3, Endian::Little));
  const std::uint8_t qoi = reader.read_u8();
  if (!reader.ok() || !reader.at_end()) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  if (ioa != 0) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  payload_writer_.clear();
  if (cot != kCotActivation) {
    ICSFUZZ_COV_BLOCK();
    payload_writer_.write_u8s(0, 0, 0, qoi);
    confirm(kCIcNa1, 45, ca, payload_writer_.span());
    return;
  }
  if (qoi == 20) {
    ICSFUZZ_COV_BLOCK();  // global interrogation: full scan
    ++commands_executed_;
    payload_writer_.write_u8s(0x01, 0x00, 0x00, 0x01);
    confirm(kMSpNa1, kCotInterrogated, ca, payload_writer_.span());
    return;
  }
  if (qoi >= 21 && qoi <= 28) {
    ICSFUZZ_COV_BLOCK();  // station group scan
    ++commands_executed_;
    payload_writer_.write_u8s(0x02, 0x00, 0x00, 0x00);
    confirm(kMSpNa1, qoi, ca, payload_writer_.span());
    return;
  }
  if (qoi >= 29 && qoi <= 36) {
    ICSFUZZ_COV_BLOCK();  // measurand group scan
    ++commands_executed_;
    payload_writer_.write_u8s(0x10, 0x00, 0x00, 0x34, 0x12, 0x00);
    confirm(kMMeNb1, qoi, ca, payload_writer_.span());
    return;
  }
  ICSFUZZ_COV_BLOCK();  // undefined qualifier of interrogation
  payload_writer_.write_u8s(0, 0, 0, qoi);
  confirm(kCIcNa1, 10, ca, payload_writer_.span());
}

void Cs101Server::handle_read_command(ByteSpan objects, std::uint16_t ca) {
  ICSFUZZ_COV_BLOCK();
  if (ca == 0xFFFF) {
    ICSFUZZ_COV_BLOCK();  // reads must not be broadcast
    return;
  }
  ByteReader reader(objects);
  const std::uint32_t ioa =
      static_cast<std::uint32_t>(reader.read_uint(3, Endian::Little));
  if (!reader.ok() || !reader.at_end()) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  if (ioa >= 0x0100 && ioa <= 0x0107) {
    ICSFUZZ_COV_BLOCK();  // single-point bank
    if ((ioa & 1) != 0) {
      ICSFUZZ_COV_BLOCK();  // odd points report inverted state
    }
    ++commands_executed_;
    payload_writer_.clear();
    payload_writer_.write_u8s(ioa & 0xFF, (ioa >> 8) & 0xFF, 0, ioa & 1);
    confirm(kMSpNa1, 5, ca, payload_writer_.span());
    return;
  }
  if (ioa >= 0x0200 && ioa <= 0x0207) {
    ICSFUZZ_COV_BLOCK();  // measurand bank, per-channel scaling
    switch (ioa & 3) {
      case 0: ICSFUZZ_COV_BLOCK(); break;  // voltage channel
      case 1: ICSFUZZ_COV_BLOCK(); break;  // current channel
      case 2: ICSFUZZ_COV_BLOCK(); break;  // power channel
      default: ICSFUZZ_COV_BLOCK(); break; // frequency channel
    }
    ++commands_executed_;
    payload_writer_.clear();
    payload_writer_.write_u8s(ioa & 0xFF, (ioa >> 8) & 0xFF, 0, 0x34, 0x12,
                              0x00);
    confirm(kMMeNb1, 5, ca, payload_writer_.span());
    return;
  }
  ICSFUZZ_COV_BLOCK();  // unknown object address
}

void Cs101Server::handle_single_command(ByteSpan objects, bool time_tagged,
                                        std::uint16_t ca) {
  ICSFUZZ_COV_BLOCK();
  // lib60870-style parse: IOA + SCO are present-checked...
  if (objects.size() < 4) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  const std::uint32_t ioa = static_cast<std::uint32_t>(
      objects[0] | (objects[1] << 8) | (objects[2] << 16));
  const std::uint8_t sco = objects[3];
  if (ioa < 0x2000 || ioa > 0x2008) {
    ICSFUZZ_COV_BLOCK();  // unknown control point
    return;
  }
  if (time_tagged) {
    ICSFUZZ_COV_BLOCK();
    // BUG(cs101-time-oob): the CP56Time2a tail is read at fixed offsets
    // 4..10 without verifying the object actually carries 11 bytes.
    san::GuardedSpan view(objects, san::site_id("cs101-time-oob"),
                          "C_SC_TA_1 CP56Time2a");
    std::uint8_t acc = 0;
    for (std::size_t i = 4; i < 11; ++i) {
      acc = static_cast<std::uint8_t>(acc ^ view.at(i));
      if (san::FaultSink::tripped()) return;  // process died here
    }
    if ((view.at(6) & 0x3F) >= 60) {  // minutes field sanity
      ICSFUZZ_COV_BLOCK();
      return;
    }
  }
  const bool select = (sco & 0x80) != 0;
  if (select) {
    ICSFUZZ_COV_BLOCK();  // select phase: arm the latch
    selected_ = true;
    selected_ioa_ = ioa;
  } else if (selected_) {
    if (selected_ioa_ != ioa) {
      ICSFUZZ_COV_BLOCK();  // execute on a different object: abort select
      selected_ = false;
      return;
    }
    ICSFUZZ_COV_BLOCK();  // execute after matching select
    selected_ = false;
    // Qualifier-of-command bands select distinct output-circuit routines.
    switch ((sco >> 2) & 0x1F) {
      case 0: ICSFUZZ_COV_BLOCK(); break;  // no additional definition
      case 1: ICSFUZZ_COV_BLOCK(); break;  // short pulse
      case 2: ICSFUZZ_COV_BLOCK(); break;  // long pulse
      case 3: ICSFUZZ_COV_BLOCK(); break;  // persistent output
      default:
        ICSFUZZ_COV_BLOCK();  // reserved qualifier: refuse
        return;
    }
  } else {
    ICSFUZZ_COV_BLOCK();  // execute without select: refused
    return;
  }
  ICSFUZZ_COV_BLOCK();  // command accepted
  ++commands_executed_;
  payload_writer_.clear();
  payload_writer_.write_u8s(objects[0], objects[1], objects[2], sco);
  confirm(time_tagged ? kCScTa1 : kCScNa1, kCotActivationCon, ca,
          payload_writer_.span());
}

void Cs101Server::handle_sequence_measurands(ByteSpan objects,
                                             std::uint8_t vsq,
                                             std::uint16_t ca) {
  ICSFUZZ_COV_BLOCK();
  const bool sequence = (vsq & 0x80) != 0;
  const std::uint8_t count = vsq & 0x7F;
  if (count == 0) {
    ICSFUZZ_COV_BLOCK();
    return;
  }
  std::int32_t sum = 0;
  if (sequence) {
    ICSFUZZ_COV_BLOCK();  // SQ=1: one IOA, then `count` packed elements
    // BUG(cs101-seq-oob): the element walk trusts the VSQ count; each
    // scaled value + QDS is 3 bytes, and nothing checks that the payload
    // actually holds count*3 bytes after the 3-byte IOA.
    san::GuardedSpan view(objects, san::site_id("cs101-seq-oob"),
                          "M_ME_NB_1 sequence elements");
    for (std::uint8_t i = 0; i < count; ++i) {
      ICSFUZZ_COV_BLOCK();
      const std::size_t base = 3 + static_cast<std::size_t>(i) * 3;
      const std::int16_t value = static_cast<std::int16_t>(
          view.at(base) | (view.at(base + 1) << 8));
      const std::uint8_t qds = view.at(base + 2);
      if (san::FaultSink::tripped()) return;  // process died here
      if ((qds & 0x80) == 0) sum += value;  // skip invalid-flagged points
    }
  } else {
    ICSFUZZ_COV_BLOCK();  // SQ=0: per-object IOA; bounds-checked variant
    ByteReader reader(objects);
    for (std::uint8_t i = 0; i < count; ++i) {
      ICSFUZZ_COV_BLOCK();
      reader.skip(3);  // IOA
      const std::uint16_t raw = reader.read_u16(Endian::Little);
      const std::uint8_t qds = reader.read_u8();
      if (!reader.ok()) {
        ICSFUZZ_COV_BLOCK();
        return;  // truncated object list — correctly rejected here
      }
      if ((qds & 0x80) == 0) sum += static_cast<std::int16_t>(raw);
    }
  }
  ICSFUZZ_COV_BLOCK();
  const std::uint16_t folded = static_cast<std::uint16_t>(sum & 0xFFFF);
  payload_writer_.clear();
  payload_writer_.write_u8s(0, 0, 0, folded & 0xFF, folded >> 8, 0);
  confirm(kMMeNb1, kCotActivationCon, ca, payload_writer_.span());
}

void Cs101Server::confirm(std::uint8_t type_id, std::uint8_t cot,
                          std::uint16_t ca, ByteSpan payload) {
  ICSFUZZ_COV_BLOCK();
  asdu_writer_.clear();
  asdu_writer_.write_u8(type_id);
  asdu_writer_.write_u8(1);
  asdu_writer_.write_u8(cot);
  asdu_writer_.write_u8(0);
  asdu_writer_.write_u16(ca, Endian::Little);
  asdu_writer_.write_bytes(payload);

  response_writer_.write_u8(kStartByte);
  response_writer_.write_u8(static_cast<std::uint8_t>(4 + asdu_writer_.size()));
  response_writer_.write_u16(static_cast<std::uint16_t>(send_seq_ << 1),
                             Endian::Little);
  response_writer_.write_u16(static_cast<std::uint16_t>(recv_seq_ << 1),
                             Endian::Little);
  response_writer_.write_bytes(asdu_writer_.span());
  send_seq_ = static_cast<std::uint16_t>((send_seq_ + 1) & 0x7FFF);
}

}  // namespace icsfuzz::proto
