// IEC 60870-5-101/104 ASDU layer — re-implementation of the lib60870
// packet-processing layer (the paper's "lib60870" evaluation subject).
//
// Frames arrive in CS104 APCI envelopes (0x68 + length + 4 control octets);
// the ASDU body follows the CS101 layout used by lib60870's cs101_asdu.c:
// type id (1), VSQ (1), COT (1), originator (1), common address (2), then
// information objects (3-byte IOA + type-dependent element, optionally a
// 7-byte CP56Time2a tag).
//
// Injected vulnerabilities (Table I, lib60870 row — 3 SEGV):
//   * "cs101-getcot-oob"  — CS101_ASDU_getCOT reads asdu[2] without
//     verifying the ASDU length, exactly the paper's Listing 1 bug: a
//     truncated ASDU makes it read past the buffer.
//   * "cs101-seq-oob"     — sequence (SQ=1) element walk trusts the VSQ
//     count and strides past the end of short payloads.
//   * "cs101-time-oob"    — time-tagged single command (C_SC_TA_1) reads a
//     7-byte CP56Time2a timestamp that truncated packets do not carry.
#pragma once

#include <cstdint>

#include "protocols/protocol_target.hpp"

namespace icsfuzz::proto {

class Cs101Server final : public ProtocolTarget {
 public:
  Cs101Server();

  [[nodiscard]] std::string_view name() const override { return "lib60870"; }
  void reset() override;

  /// Consumes a TCP-style stream of APCI frames (up to kMaxFramesPerStream)
  /// and returns the concatenated responses.
  Bytes process(ByteSpan packet) override;

  /// Allocation-free hot path: responses assemble in member scratch
  /// writers whose capacity converges, then copy into the caller's reused
  /// buffer. Byte-identical to process().
  void process_into(ByteSpan packet, Bytes& response) override;

  static constexpr std::size_t kMaxFramesPerStream = 8;

  // -- Introspection for tests. --
  [[nodiscard]] std::uint32_t commands_executed() const {
    return commands_executed_;
  }

 private:
  // Handlers stage the information-object payload in payload_writer_ and
  // hand it to confirm(), which frames into response_writer_.
  void process_frame(ByteSpan frame);

  /// The paper's CS101_ASDU_getCOT: unchecked access to asdu[2].
  std::uint8_t asdu_get_cot(ByteSpan asdu) const;

  void handle_asdu(ByteSpan asdu);
  void handle_interrogation(ByteSpan objects, std::uint8_t cot,
                            std::uint16_t ca);
  void handle_read_command(ByteSpan objects, std::uint16_t ca);
  void handle_single_command(ByteSpan objects, bool time_tagged,
                             std::uint16_t ca);
  void handle_sequence_measurands(ByteSpan objects, std::uint8_t vsq,
                                  std::uint16_t ca);
  void confirm(std::uint8_t type_id, std::uint8_t cot, std::uint16_t ca,
               ByteSpan payload);

  bool started_ = false;
  std::uint16_t recv_seq_ = 0;
  std::uint16_t send_seq_ = 0;
  std::uint32_t commands_executed_ = 0;
  bool selected_ = false;           // select-before-operate latch
  std::uint32_t selected_ioa_ = 0;  // object the select armed

  // Reused scratch (see process_into).
  ByteWriter response_writer_;  ///< concatenated outbound APCI frames
  ByteWriter asdu_writer_;      ///< response ASDU of one confirm
  ByteWriter payload_writer_;   ///< information objects of one confirm
};

}  // namespace icsfuzz::proto
