// SanitizerCoverage → CoverageMap bridge of libicsfuzz-preload.so.
//
// A target built with `-fsanitize-coverage=trace-pc-guard` (clang, gcc 13+)
// or `-fsanitize-coverage=trace-pc` (gcc 12) calls these entry points on
// every instrumented edge. The bridge folds each hit into the same 64 KiB
// map geometry as the in-tree macro instrumentation — the paper's
//
//     shared_mem[cur ^ prev]++; prev = cur >> 1;
//
// scheme, with inject::mix_guard standing in for the compile-time random
// block id (guard indices are small sequential integers; raw return
// addresses cluster — both need mixing to spread across the map). The
// fuzzer side then runs its unchanged sparse adopt + analysis over the
// segment: nothing downstream knows the hits came from sancov.
//
// The symbols here resolve via ordinary dynamic lookup: the target binary
// links a no-op stub library (see demo/sancov_stubs.c) so it runs
// standalone, and LD_PRELOAD outranks DT_NEEDED dependencies, so under the
// runtime every hit lands here instead. Targets define nothing themselves
// — a definition inside the executable would win the lookup and the bridge
// would never see a hit.
#include "inject/runtime_state.hpp"

#include <cstdint>
#include <cstring>

#include "inject/inject_protocol.hpp"

namespace icsfuzz::inject_rt {

namespace {

// Plain zero-initialized members only (no DirtyWordList): the whole object
// must be constant-initialized — see the invariant in runtime_state.hpp.
struct TraceState {
  std::uint8_t* map = nullptr;
  std::uint32_t prev = 0;
  std::uint64_t events = 0;
  std::uint32_t dirty_count = 0;
  std::uint16_t dirty_indices[cov::kMapWords] = {};
};

thread_local TraceState g_trace;

// Module-load-time facts (guard_init runs before main, single-threaded).
std::uint32_t g_guard_total = 0;
bool g_sancov_seen = false;

/// One edge hit at (already masked) location `cur` — the cov::hit body
/// minus the TLS indirection the in-tree macro needs.
inline void record(std::uint32_t cur) {
  TraceState& trace = g_trace;
  std::uint8_t* mem = trace.map;
  if (mem == nullptr) return;
  ++trace.events;
  const std::uint32_t index = cur ^ trace.prev;
  std::uint64_t word;
  std::memcpy(&word, mem + (index & ~std::uint32_t{7}), sizeof(word));
  if (word == 0) {
    trace.dirty_indices[trace.dirty_count++] =
        static_cast<std::uint16_t>(index >> 3);
  }
  std::uint8_t& cell = mem[index];
  if (cell != 0xFF) ++cell;  // saturate: loops must not alias empty cells
  trace.prev = cur >> 1;
}

}  // namespace

void trace_arm(std::uint8_t* map) {
  TraceState& trace = g_trace;
  trace.map = map;
  trace.prev = 0;
  trace.events = 0;
  trace.dirty_count = 0;
}

void trace_disarm() { g_trace.map = nullptr; }

std::uint64_t trace_events() { return g_trace.events; }

std::uint32_t trace_dirty_count() { return g_trace.dirty_count; }

const std::uint16_t* trace_dirty_indices() { return g_trace.dirty_indices; }

std::uint32_t guard_total() { return g_guard_total; }

bool sancov_seen() { return g_sancov_seen; }

}  // namespace icsfuzz::inject_rt

// -- SanitizerCoverage entry points (C ABI, default visibility). -----------

extern "C" {

/// trace-pc-guard flavor: called once per instrumented module load with
/// its guard table; guards get small sequential nonzero ids. Re-entry for
/// an already-numbered table is a no-op (the compiler may call this more
/// than once per module).
void __sanitizer_cov_trace_pc_guard_init(std::uint32_t* start,
                                         std::uint32_t* stop) {
  using namespace icsfuzz::inject_rt;
  g_sancov_seen = true;
  if (start == stop || *start != 0) return;
  for (std::uint32_t* guard = start; guard != stop; ++guard) {
    *guard = ++g_guard_total;
  }
}

/// trace-pc-guard flavor: one edge hit, identified by the guard's id.
void __sanitizer_cov_trace_pc_guard(std::uint32_t* guard) {
  const std::uint32_t id = *guard;
  if (id == 0) return;  // guard table not initialized: discard
  icsfuzz::inject_rt::record(icsfuzz::inject::mix_guard(id) &
                             (icsfuzz::cov::kMapSize - 1));
}

/// trace-pc flavor (gcc 12): no guard table, the edge identity is the call
/// site's return address. Fold the 64-bit pc down and mix — consecutive
/// sites differ by a few bytes, so without mixing they would collide into
/// neighboring cells.
void __sanitizer_cov_trace_pc(void) {
  using namespace icsfuzz::inject_rt;
  if (!g_sancov_seen) g_sancov_seen = true;
  const auto pc =
      reinterpret_cast<std::uintptr_t>(__builtin_return_address(0));
  const auto id =
      static_cast<std::uint32_t>(pc ^ (static_cast<std::uint64_t>(pc) >> 32));
  record(icsfuzz::inject::mix_guard(id) & (icsfuzz::cov::kMapSize - 1));
}

}  // extern "C"
