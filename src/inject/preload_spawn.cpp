// Fuzzer-side helpers of the injection layer (linked into libicsfuzz, NOT
// into the preload shared object): assembling the spawn environment that
// puts a target under the runtime, and reading back the info block the
// runtime publishes.
#include "inject/inject_protocol.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

namespace icsfuzz::inject {

InjectInfo read_inject_info(const std::uint8_t* segment,
                            std::size_t segment_size) {
  InjectInfo info;
  if (segment == nullptr || segment_size < kInjectInfoOffset + 16) {
    return info;
  }
  const std::uint8_t* block = segment + kInjectInfoOffset;
  std::uint32_t magic = 0;
  std::memcpy(&magic, block, sizeof(magic));
  if (magic != kInjectInfoMagic) return info;
  std::atomic_thread_fence(std::memory_order_acquire);
  info.present = true;
  std::memcpy(&info.version, block + 4, sizeof(info.version));
  std::memcpy(&info.guard_count, block + 8, sizeof(info.guard_count));
  std::memcpy(&info.flags, block + 12, sizeof(info.flags));
  return info;
}

void append_preload_env(const std::string& preload_path, const char* mode,
                        std::vector<std::string>& env) {
  if (preload_path.empty()) return;
  // Prepend to any LD_PRELOAD this process already carries (an operator's
  // own preload, a sanitizer runtime) — the fork server's env merge drops
  // the inherited entry in favor of this one, so the inherited value must
  // be folded in here to survive. First position keeps the runtime ahead
  // of the target's DT_NEEDED sancov stubs in symbol lookup.
  std::string entry = "LD_PRELOAD=" + preload_path;
  if (const char* existing = std::getenv("LD_PRELOAD");
      existing != nullptr && *existing != '\0') {
    entry += ':';
    entry += existing;
  }
  env.push_back(std::move(entry));
  env.push_back(std::string(kInjectModeEnv) + "=" + mode);
}

}  // namespace icsfuzz::inject
