// Internal seam between the preload runtime (preload_runtime.cpp) and the
// SanitizerCoverage bridge (sancov_bridge.cpp) inside libicsfuzz-preload.so.
// Nothing outside the shared object includes this header.
//
// The bridge owns the trace window: an armed map pointer, the paper's
// prev_location chain, the event counter and the sparse dirty-word list.
// The runtime arms a window around each execution (fork child, persistent
// iteration, or TCP session) and harvests events + dirty words when it
// closes. State is thread_local with the same contract as
// coverage/instrument.hpp: the thread that arms is the thread whose hits
// are traced, so a multi-threaded target only contributes coverage from
// the arming thread (documented in docs/INJECTION.md).
//
// INVARIANT — constant initialization only. Every object with static (or
// thread) storage duration in this shared object must be
// constant-initialized: in fork mode the runtime's constructor never
// returns in the server process, so the library's remaining init-array
// entries run INSIDE each forked child, after the child already mutated
// runtime state. A dynamic initializer (any non-constexpr default
// constructor, e.g. cov::DirtyWordList's) would re-run there and silently
// wipe that state — which is why this seam traffics in plain zeroable
// arrays instead of DirtyWordList.
#pragma once

#include <cstdint>

#include "coverage/instrument.hpp"

namespace icsfuzz::inject_rt {

/// Arms tracing into `map` (cov::kMapSize bytes): resets prev_location,
/// the event counter and the dirty list. Every word of `map` not already
/// nonzero must be zero (the runtime memsets or sparse-clears first), so
/// the dirty list stays the exact set of nonzero words.
void trace_arm(std::uint8_t* map);

/// Disarms tracing; subsequent sancov hits are dropped (not counted).
void trace_disarm();

/// Instrumentation events recorded since the last trace_arm.
[[nodiscard]] std::uint64_t trace_events();

/// The armed window's dirty-word list (indices of map words that went
/// nonzero): `trace_dirty_indices()[0 .. trace_dirty_count())`. Valid
/// between trace_arm and the next trace_arm on this thread; the runtime
/// copies it into per-slot storage for the sparse clears between
/// persistent iterations.
[[nodiscard]] std::uint32_t trace_dirty_count();
[[nodiscard]] const std::uint16_t* trace_dirty_indices();

/// Total trace-pc-guard guards registered by module initializers (0 for
/// the gcc trace-pc flavor, which has no guard table).
[[nodiscard]] std::uint32_t guard_total();

/// True once any sancov entry point has been invoked — distinguishes an
/// instrumented target from one whose map will always stay empty.
[[nodiscard]] bool sancov_seen();

}  // namespace icsfuzz::inject_rt
