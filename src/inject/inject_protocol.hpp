// Instrumentation-injection contract shared by the LD_PRELOAD runtime
// (libicsfuzz-preload.so, built from preload_runtime.cpp + sancov_bridge.cpp)
// and the fuzzer-side spawn helpers (preload_spawn.hpp) / inspection tool
// (tools/icsfuzz_inject_check.cpp).
//
// The runtime turns an arbitrary binary — one that never linked icsfuzz —
// into a fork-server target speaking exec_oop/exec_protocol.hpp:
//
//   * Its constructor runs before the host binary's main(). When the
//     ICSFUZZ_OOP_SHM environment pair is present it attaches the segment
//     and (in fork mode) takes over the process as the fork server: the
//     original main() only ever runs inside per-execution fork children,
//     which receive the packet on stdin.
//   * A SanitizerCoverage bridge maps `-fsanitize-coverage=trace-pc-guard`
//     guard hits (and the gcc-flavored `trace-pc` callback) into the same
//     64 KiB coverage map cells the in-tree instrumentation uses, so the
//     sparse adopt_external + finalize_execution analysis downstream is
//     unchanged. Uninstrumented binaries simply leave the map empty and
//     run fault-driven (crash/hang/OOM classification still works — it
//     derives from wait status + the aux completion magic, not coverage).
//   * In tcp mode the runtime instead interposes the host server's own
//     listen/accept/write/close calls to speak the TCP session wire
//     (session/session_wire.hpp) around the unmodified server loop.
//
// docs/INJECTION.md is the operator-facing description of this contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec_oop/exec_protocol.hpp"

namespace icsfuzz::inject {

/// Selects what the preload runtime does when the shm env pair is present.
/// Absent (or "fork"): fork-server mode. "tcp": TCP session-server
/// interposition mode.
inline constexpr const char* kInjectModeEnv = "ICSFUZZ_INJECT_MODE";
inline constexpr const char* kInjectModeFork = "fork";
inline constexpr const char* kInjectModeTcp = "tcp";

/// Set to "0" to veto persistent-mode advertisement even when the target
/// exports the cooperation marker (debugging / forcing fork-per-exec).
inline constexpr const char* kInjectPersistentEnv = "ICSFUZZ_INJECT_PERSISTENT";

/// Persistent-mode cooperation marker: the runtime advertises
/// kCapPersistent only when dlsym(RTLD_DEFAULT) finds this symbol — i.e.
/// the target binary exports it (requires linking with -Wl,--export-dynamic)
/// and drives its input loop through the __icsfuzz_persistent_loop /
/// __icsfuzz_testcase hooks below. Targets without the marker degrade
/// gracefully to fork-per-exec (the v2 hello simply carries caps == 0).
inline constexpr const char* kPersistentMarkerSymbol =
    "icsfuzz_persistent_target";

// Weak-hook names a cooperating target declares (weak, so the same binary
// runs standalone when the runtime is not preloaded):
//   extern "C" int __icsfuzz_persistent_loop(void);
//     First call of an iteration returns 1 ("run one execution"); the call
//     after the final budgeted iteration publishes that iteration's aux
//     block and _exit(0)s (budget recycle). Outside a persistent child it
//     returns 0, which routes the target to its standalone input path.
//   extern "C" const unsigned char* __icsfuzz_testcase(unsigned* len);
//     The current iteration's packet (the shm test-case slot).
//   extern "C" void __icsfuzz_set_response(const void* data, unsigned len);
//     Optional: publishes response bytes into the iteration's aux block.
inline constexpr const char* kPersistentLoopSymbol =
    "__icsfuzz_persistent_loop";

/// Info block the runtime publishes inside the (otherwise unused) tail of
/// the v2 control block: [u32 magic][u32 version][u32 guard_count]
/// [u32 flags]. Exec children write it after module initializers have
/// registered their sancov guard ranges, so guard_count reports what the
/// target actually instruments; icsfuzz-inject-check reads it back after a
/// probe execution. A v1-sized segment has no control block and carries no
/// info block.
inline constexpr std::size_t kInjectInfoOffset = oop::kCtlBlockOffset + 32;
inline constexpr std::uint32_t kInjectInfoMagic = 0x494E4A31;  // "INJ1"
inline constexpr std::uint32_t kInjectRuntimeVersion = 1;
/// Info flag: at least one sancov guard range was registered.
inline constexpr std::uint32_t kInjectFlagSancov = 1u << 0;
/// Info flag: the runtime advertised persistent mode.
inline constexpr std::uint32_t kInjectFlagPersistent = 1u << 1;
/// Info flag: the runtime is running in tcp interposition mode.
inline constexpr std::uint32_t kInjectFlagTcp = 1u << 2;

struct InjectInfo {
  bool present = false;
  std::uint32_t version = 0;
  std::uint32_t guard_count = 0;
  std::uint32_t flags = 0;

  [[nodiscard]] bool sancov() const {
    return (flags & kInjectFlagSancov) != 0;
  }
};

/// Reads the info block out of a v2 segment (fuzzer side, after at least
/// one execution). `present` is false when no preload runtime wrote it —
/// e.g. the target is a native shim, or the segment is v1-sized.
InjectInfo read_inject_info(const std::uint8_t* segment,
                            std::size_t segment_size);

/// Appends the environment entries that spawn `target_cmd` under the
/// preload runtime: LD_PRELOAD=<preload_path> (prepended, colon-separated,
/// to any LD_PRELOAD already in this process' environment so operator
/// preloads survive) and ICSFUZZ_INJECT_MODE=<mode>. No-op when
/// `preload_path` is empty.
void append_preload_env(const std::string& preload_path, const char* mode,
                        std::vector<std::string>& env);

/// The sancov-bridge cell mapping, shared verbatim by the runtime and the
/// tools that predict or document it: a guard index (or hashed return
/// address) is finalized with a 32-bit splitmix-style mixer, masked into
/// the map, and combined with the shifted previous location — the paper's
/// `shared_mem[cur ^ prev]++; prev = cur >> 1` scheme, with the mixer
/// standing in for the compile-time site hash the in-tree instrumentation
/// uses.
[[nodiscard]] constexpr std::uint32_t mix_guard(std::uint32_t id) {
  id += 0x9E3779B9u;
  id ^= id >> 16;
  id *= 0x85EBCA6Bu;
  id ^= id >> 13;
  id *= 0xC2B2AE35u;
  id ^= id >> 16;
  return id;
}

}  // namespace icsfuzz::inject
