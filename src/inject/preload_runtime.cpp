// libicsfuzz-preload.so — instrumentation-injection runtime.
//
// LD_PRELOADed into a stock binary, the constructor below attaches the
// shared-memory segment named by ICSFUZZ_OOP_SHM and turns the process
// into a fork-server target speaking exec_oop/exec_protocol.hpp — without
// the binary linking a single icsfuzz object. Two modes
// (ICSFUZZ_INJECT_MODE):
//
//   fork (default)  The constructor NEVER RETURNS in the spawned process:
//                   it becomes the fork server (the target's own main()
//                   does not run there). Each request forks a child; the
//                   child finishes dynamic-loader initialization — which
//                   is where the target's sancov guard tables register,
//                   fresh and deterministic per execution — and runs the
//                   real main() with the fuzz packet on stdin. An atexit
//                   hook publishes the aux block on orderly exit; _exit /
//                   signals skip it, so the missing completion magic
//                   classifies the run as a crash, exactly like the
//                   in-tree shim. Persistent mode engages only when the
//                   target exports icsfuzz_persistent_target and drives
//                   __icsfuzz_persistent_loop (see inject_protocol.hpp);
//                   otherwise the v2 hello advertises no capability and
//                   the client degrades to fork-per-exec.
//
//   tcp             The constructor returns and the target's own socket
//                   server runs; the runtime interposes listen/accept/
//                   write/send/close to speak the TCP session wire
//                   (session/session_wire.hpp): hello with the real bound
//                   port, per-session map arming at accept, a served
//                   counter per response write, aux + session counter at
//                   close. A watcher thread turns control-pipe EOF into
//                   orderly shutdown.
//
// Without ICSFUZZ_OOP_SHM in the environment the runtime is fully dormant
// — every interposer forwards — so a binary can keep the preload in its
// wrapper scripts unconditionally.
#include <dlfcn.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <pthread.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "exec_oop/exec_protocol.hpp"
#include "inject/inject_protocol.hpp"
#include "inject/runtime_state.hpp"
#include "session/session_wire.hpp"
#include "supervise/resource_jail.hpp"

namespace icsfuzz::inject_rt {
namespace {

using oop::kAuxBytes;
using oop::kAuxOffset;
using oop::kCtlFd;
using oop::kStFd;

// -- Attached-segment state (set once, in the constructor). ----------------

std::uint8_t* g_segment = nullptr;
std::size_t g_segment_size = 0;
bool g_advertised_persistent = false;
bool g_tcp_mode = false;

/// Upper bound a hostile/corrupt environment cannot push us past: the v2
/// segment is ~576 KiB, the TCP segment ~128 KiB — 1 GiB is absurd.
constexpr std::uint64_t kMaxSegmentBytes = std::uint64_t{1} << 30;

void warn(const char* what) {
  std::fprintf(stderr, "[icsfuzz-preload] %s\n", what);
}

/// Strict decimal u64 with overflow rejection (the runtime cannot lean on
/// the host's libicsfuzz — it isn't there).
bool parse_env_u64(const char* text, std::uint64_t& out) {
  if (text == nullptr || *text == '\0') return false;
  std::uint64_t value = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
    if (value > (~std::uint64_t{0} - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

/// Publishes the inject-info block into the v2 control-block tail (magic
/// last, behind a release fence). Called whenever fresher facts exist —
/// guard tables register during each child's loader init, after the
/// constructor already ran.
void publish_inject_info() {
  if (g_segment_size < oop::kSegmentBytesV2) return;
  std::uint8_t* info = g_segment + inject::kInjectInfoOffset;
  std::uint32_t flags = 0;
  if (sancov_seen()) flags |= inject::kInjectFlagSancov;
  if (g_advertised_persistent) flags |= inject::kInjectFlagPersistent;
  if (g_tcp_mode) flags |= inject::kInjectFlagTcp;
  const std::uint32_t version = inject::kInjectRuntimeVersion;
  const std::uint32_t guards = guard_total();
  std::memcpy(info + 4, &version, sizeof(version));
  std::memcpy(info + 8, &guards, sizeof(guards));
  std::memcpy(info + 12, &flags, sizeof(flags));
  std::atomic_thread_fence(std::memory_order_release);
  std::memcpy(info, &inject::kInjectInfoMagic, sizeof(std::uint32_t));
}

// -- Deadline supervision (mirrors shim_runner.cpp). -----------------------

volatile sig_atomic_t g_deadline_fired = 0;

void on_deadline(int) { g_deadline_fired = 1; }

/// SIGALRM without SA_RESTART so the blocking waitpid EINTRs on the tick.
void install_deadline_handler() {
  struct sigaction action {};
  action.sa_handler = on_deadline;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ::sigaction(SIGALRM, &action, nullptr);
}

/// Repeating interval timer (0 disarms): a one-shot could fire and be
/// consumed before waitpid blocks; the repeat delivers another EINTR.
void arm_deadline(std::uint32_t timeout_ms) {
  struct itimerval timer {};
  timer.it_value.tv_sec = timeout_ms / 1000;
  timer.it_value.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  timer.it_interval = timer.it_value;
  ::setitimer(ITIMER_REAL, &timer, nullptr);
}

/// waitpid with the deadline armed; SIGKILLs the child when the timer
/// fires first. The runtime is the child's parent, so the pid cannot have
/// been recycled before the reap.
int await_child(pid_t child, std::uint32_t timeout_ms, bool wait_stops,
                bool& timed_out) {
  g_deadline_fired = 0;
  if (timeout_ms != 0) arm_deadline(timeout_ms);
  int wstatus = 0;
  timed_out = false;
  const int options = wait_stops ? WUNTRACED : 0;
  for (;;) {
    const pid_t reaped = ::waitpid(child, &wstatus, options);
    if (reaped == child) {
      if (timed_out && WIFSTOPPED(wstatus)) continue;
      break;
    }
    if (reaped < 0 && errno == EINTR) {
      if (g_deadline_fired && !timed_out) {
        timed_out = true;
        ::kill(child, SIGKILL);
      }
      continue;
    }
    break;
  }
  arm_deadline(0);
  return wstatus;
}

// -- Execution-child state (inside a fork child, post-fork only). ----------

/// Response bytes a cooperating target published via __icsfuzz_set_response
/// (stock targets write to stdout instead; their aux response stays empty).
constexpr std::size_t kResponseCap = std::size_t{1} << 14;
std::uint8_t g_response[kResponseCap];
std::uint32_t g_response_len = 0;

struct ExecChild {
  bool active = false;
  std::uint8_t* region = nullptr;  ///< map base (v1 region or a v2 slot)
};
ExecChild g_exec_child;

/// atexit hook of a fork-per-exec child: harvest the trace and publish the
/// aux block. Registered before the target's own handlers, so it runs
/// after them (LIFO) — their instrumented work still lands in the count.
/// _exit()/abort()/signals skip atexit entirely: no completion magic, and
/// the client classifies the run as a crash.
void publish_exec_aux() {
  if (!g_exec_child.active) return;
  oop::AuxResult result;
  result.events = trace_events();
  if (g_response_len != 0) {
    result.response.assign(g_response, g_response + g_response_len);
  }
  trace_disarm();
  // The aux block follows the map at the same offset in the v1 region and
  // in every v2 slot (kAuxOffset == kSlotAuxOffset == cov::kMapSize).
  oop::aux_store(g_exec_child.region + cov::kMapSize, kAuxBytes, result);
  publish_inject_info();
}

// -- Persistent-child state. -----------------------------------------------

// Constant-initialized only (the runtime_state.hpp invariant): a forked
// child mutates this BEFORE the library's init array finishes running in
// that child, so a dynamic initializer would wipe it. That rules out
// cov::DirtyWordList members (non-constexpr default constructor) — the
// per-slot dirty lists are plain zeroed arrays instead.
struct PersistentChildState {
  bool active = false;          ///< this process is the persistent child
  std::uint32_t iteration = 0;  ///< loop calls completed (1-based)
  std::uint32_t budget = 0;
  std::uint32_t slot = 0;
  std::uint32_t dirty_count[oop::kNumSlots] = {};
  std::uint16_t dirty_indices[oop::kNumSlots][cov::kMapWords] = {};
  bool slot_used[oop::kNumSlots] = {};
};
PersistentChildState g_pchild;

/// Restores a slot's map invariant before an iteration: full memset on
/// this child's first use (whatever an earlier child left), sparse clear
/// of this child's previous dirty words after that. Either way the aux
/// magic ends up invalid, so a crash mid-iteration cannot read as done.
void prepare_slot(std::uint32_t slot) {
  std::uint8_t* slot_base = g_segment + oop::slot_offset(slot);
  if (!g_pchild.slot_used[slot]) {
    std::memset(slot_base, 0, cov::kMapSize + kAuxBytes);
    g_pchild.slot_used[slot] = true;
    g_pchild.dirty_count[slot] = 0;
  } else {
    auto* words = reinterpret_cast<std::uint64_t*>(slot_base);
    const std::uint16_t* indices = g_pchild.dirty_indices[slot];
    for (std::uint32_t i = 0; i < g_pchild.dirty_count[slot]; ++i) {
      words[indices[i]] = 0;
    }
    g_pchild.dirty_count[slot] = 0;
    std::memset(slot_base + oop::kSlotAuxOffset, 0, 4);
  }
}

/// Publishes the finished iteration's aux block into its slot and saves
/// the trace's dirty words for the next sparse clear of that slot.
void publish_iteration_aux() {
  const std::uint32_t slot = g_pchild.slot;
  std::uint8_t* slot_base = g_segment + oop::slot_offset(slot);
  const std::uint32_t traced = trace_dirty_count();
  g_pchild.dirty_count[slot] = traced;
  std::memcpy(g_pchild.dirty_indices[slot], trace_dirty_indices(),
              std::size_t{traced} * sizeof(std::uint16_t));
  oop::AuxResult result;
  result.events = trace_events();
  if (g_response_len != 0) {
    result.response.assign(g_response, g_response + g_response_len);
  }
  trace_disarm();
  oop::aux_store(slot_base + oop::kSlotAuxOffset, kAuxBytes, result);
}

// -- Fork-server parent loop (never returns). ------------------------------

/// Writes what fits without blocking; the rest is finished after fork (the
/// child is the reader, so a pre-fork full-pipe write would deadlock).
std::size_t write_some_nonblocking(int fd, const std::uint8_t* data,
                                   std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EAGAIN (pipe full until the child drains) or error
  }
  return off;
}

/// Drains the reaped child's captured stdout and, when the child published
/// a complete aux block without a cooperative response, re-stores the block
/// with the stdout bytes as the response. A crashed/killed child left no
/// completion magic — its stdout is discarded along with the run.
void harvest_child_stdout(int fd, std::uint8_t* region) {
  static std::uint8_t captured[kResponseCap];
  std::size_t total = 0;
  bool truncated = false;
  for (;;) {
    std::uint8_t sink[4096];
    std::uint8_t* dst = total < kResponseCap ? captured + total : sink;
    const std::size_t room =
        total < kResponseCap ? kResponseCap - total : sizeof(sink);
    const ssize_t n = ::read(fd, dst, room);
    if (n > 0) {
      if (total < kResponseCap) {
        total += static_cast<std::size_t>(n);
      } else {
        truncated = true;  // kept draining only to learn this
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF, EAGAIN (a live grandchild still holds the pipe), error
  }
  if (total == 0) return;
  std::uint8_t* aux = region + cov::kMapSize;
  oop::AuxResult result;
  if (!oop::aux_load(aux, kAuxBytes, result)) return;
  if (!result.response.empty()) return;  // cooperative response wins
  result.response.assign(captured, captured + total);
  result.response_truncated = truncated;
  oop::aux_store(aux, kAuxBytes, result);
}

struct PersistentParent {
  pid_t pid = -1;
  std::uint32_t iteration = 0;
  std::uint32_t budget = 0;

  [[nodiscard]] bool alive() const { return pid > 0; }
};

void kill_persistent_child(PersistentParent& child) {
  if (!child.alive()) return;
  ::kill(child.pid, SIGKILL);
  int wstatus = 0;
  while (::waitpid(child.pid, &wstatus, 0) < 0 && errno == EINTR) {
  }
  child.pid = -1;
}

/// Forks one execution child that runs the target's real main() with
/// `packet` on stdin, tracing into `region` (v1 base or a v2 slot base —
/// caller memset it). Returns true from THE CHILD, which must let the
/// constructor return so the dynamic loader finishes initialization (the
/// target's sancov guard tables register there) and main() runs. In the
/// parent, fills wstatus/timed_out.
bool fork_exec_child(const supervise::ResourceJail& jail,
                     std::uint8_t* region, const std::vector<std::uint8_t>& packet,
                     std::uint32_t timeout_ms, int& wstatus, bool& timed_out) {
  int stdin_pipe[2];
  if (::pipe(stdin_pipe) != 0) ::_exit(5);
  const int rfd = stdin_pipe[0];
  const int wfd = stdin_pipe[1];
  ::fcntl(wfd, F_SETFL, O_NONBLOCK);
  const std::size_t pre_written =
      packet.empty() ? 0
                     : write_some_nonblocking(wfd, packet.data(), packet.size());
  // Child stdout rides a second pipe: a stock target's response is whatever
  // it prints, and the fuzzer's own stdout must not be polluted by fuzzed
  // traffic. Drained after the reap (nonblocking), capped at kResponseCap;
  // a target flooding past the pipe buffer blocks and the deadline turns
  // that into a hang — defensible for a filter-style program.
  int stdout_pipe[2];
  if (::pipe(stdout_pipe) != 0) ::_exit(5);

  const pid_t child = ::fork();
  if (child < 0) ::_exit(5);
  if (child == 0) {
    ::close(wfd);
    ::close(stdout_pipe[0]);
    ::dup2(rfd, STDIN_FILENO);
    if (rfd != STDIN_FILENO) ::close(rfd);
    ::dup2(stdout_pipe[1], STDOUT_FILENO);
    if (stdout_pipe[1] != STDOUT_FILENO) ::close(stdout_pipe[1]);
    supervise::apply_in_child(jail);
    g_exec_child.active = true;
    g_exec_child.region = region;
    g_response_len = 0;
    trace_arm(region);
    std::atexit(publish_exec_aux);
    return true;
  }

  ::close(rfd);
  ::close(stdout_pipe[1]);
  ::fcntl(stdout_pipe[0], F_SETFL, O_NONBLOCK);
  bool stdin_stalled = false;
  if (pre_written < packet.size()) {
    const oop::ReadStatus st = oop::write_full_deadline(
        wfd, packet.data() + pre_written, packet.size() - pre_written,
        timeout_ms != 0 ? static_cast<int>(timeout_ms) : -1);
    if (st == oop::ReadStatus::kTimeout) {
      // The child never drained its input inside the deadline: a hang by
      // definition, whatever it was doing instead.
      ::kill(child, SIGKILL);
      stdin_stalled = true;
    }
    // kClosed (EPIPE) means the child exited without reading everything —
    // await_child below reports how.
  }
  ::close(wfd);
  wstatus = await_child(child, stdin_stalled ? 0 : timeout_ms,
                        /*wait_stops=*/false, timed_out);
  if (stdin_stalled) timed_out = true;
  harvest_child_stdout(stdout_pipe[0], region);
  ::close(stdout_pipe[0]);
  return false;
}

/// The fork-server request loop, entered from the constructor and never
/// left in the parent. Returns (true) only inside a freshly forked child,
/// which then continues loader init toward the target's main().
bool fork_server_loop() {
  const bool v2 = g_segment_size >= oop::kSegmentBytesV2;
  bool persistent_ok = false;
  if (v2) {
    const char* veto = std::getenv(inject::kInjectPersistentEnv);
    const bool vetoed = veto != nullptr && std::strcmp(veto, "0") == 0;
    // Persistent mode is a cooperation contract, not something a preload
    // can impose: only a target exporting the marker (and driving
    // __icsfuzz_persistent_loop) gets the capability advertised. Everyone
    // else degrades to fork-per-exec by construction.
    persistent_ok =
        !vetoed &&
        ::dlsym(RTLD_DEFAULT, inject::kPersistentMarkerSymbol) != nullptr;
  }
  g_advertised_persistent = persistent_ok;

  if (v2) {
    const std::uint32_t hello[2] = {oop::kHelloMagicV2,
                                    persistent_ok ? oop::kCapPersistent : 0};
    if (!oop::write_full(kStFd, hello, sizeof(hello))) ::_exit(4);
  } else {
    const std::uint32_t hello = oop::kHelloMagic;
    if (!oop::write_full(kStFd, &hello, sizeof(hello))) ::_exit(4);
  }

  install_deadline_handler();
  const supervise::ResourceJail jail = supervise::jail_from_env();

  std::vector<std::uint8_t> packet;
  PersistentParent persistent;
  std::uint64_t exec_index = 0;
  for (;;) {
    std::uint32_t timeout_ms = 0;
    std::uint32_t control = 0;
    std::uint32_t length = 0;
    if (!oop::read_full(kCtlFd, &timeout_ms, sizeof(timeout_ms))) {
      kill_persistent_child(persistent);
      ::_exit(0);  // EOF: orderly shutdown, target's main never runs here
    }
    if (v2 && !oop::read_full(kCtlFd, &control, sizeof(control))) ::_exit(0);
    if (!oop::read_full(kCtlFd, &length, sizeof(length))) ::_exit(0);
    if (length > kMaxSegmentBytes) ::_exit(5);
    packet.resize(length);
    if (length != 0 && !oop::read_full(kCtlFd, packet.data(), length)) {
      ::_exit(0);
    }
    ++exec_index;

    std::int32_t wire_status = 0;
    std::uint32_t flags = 0;
    std::uint32_t iteration = 0;
    bool timed_out = false;

    if ((control & oop::kCtlPersistent) != 0 && persistent_ok) {
      // -- Persistent iteration (cooperating target). ---------------------
      const std::uint32_t slot = oop::control_slot(control);
      std::uint32_t budget = oop::control_budget(control);
      if (budget == 0) budget = 1;
      const bool fresh = !persistent.alive();
      oop::ctl_store(g_segment,
                     oop::CtlBlock{slot, fresh ? budget : persistent.budget,
                                   exec_index});
      if (fresh) {
        const pid_t child = ::fork();
        if (child < 0) ::_exit(5);
        if (child == 0) {
          supervise::apply_in_child(jail);
          g_pchild.active = true;
          g_response_len = 0;
          // Loader init continues to main(); the target drives iterations
          // through __icsfuzz_persistent_loop below.
          return true;
        }
        persistent = PersistentParent{child, 1, budget};
      } else {
        ++persistent.iteration;
        ::kill(persistent.pid, SIGCONT);
      }

      const int wstatus = await_child(persistent.pid, timeout_ms,
                                      /*wait_stops=*/true, timed_out);
      iteration = persistent.iteration;
      flags = oop::kReplyPersistent;
      wire_status = static_cast<std::int32_t>(wstatus);
      if (timed_out) {
        flags |= oop::kReplyTimedOut |
                 oop::encode_recycle(oop::RecycleReason::kHang);
        persistent.pid = -1;
      } else if (WIFSTOPPED(wstatus)) {
        wire_status = 0;
      } else if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0 &&
                 persistent.iteration >= persistent.budget) {
        wire_status = 0;
        flags |= oop::encode_recycle(oop::RecycleReason::kBudget);
        persistent.pid = -1;
      } else {
        flags |= oop::encode_recycle(oop::RecycleReason::kCrash);
        persistent.pid = -1;
      }
    } else if ((control & oop::kCtlPersistent) != 0) {
      // -- Persistent requested, target not cooperating: serve it as a
      // budget-1 persistent child — a fresh fork whose packet comes from
      // the slot (stdin) and whose results land in the slot. The reply
      // says "budget recycle at iteration 1", so a client that raced the
      // capability handshake still gets correct semantics, just at
      // fork-per-exec cost.
      const std::uint32_t slot = oop::control_slot(control);
      std::uint8_t* slot_base = g_segment + oop::slot_offset(slot);
      std::memset(slot_base, 0, cov::kMapSize + kAuxBytes);
      const auto slot_packet = oop::slot_load_packet(g_segment, slot);
      std::vector<std::uint8_t> slot_bytes(slot_packet.begin(),
                                           slot_packet.end());
      int wstatus = 0;
      if (fork_exec_child(jail, slot_base, slot_bytes, timeout_ms, wstatus,
                          timed_out)) {
        return true;  // the child: continue to main()
      }
      iteration = 1;
      flags = oop::kReplyPersistent;
      wire_status = static_cast<std::int32_t>(wstatus);
      if (timed_out) {
        flags |= oop::kReplyTimedOut |
                 oop::encode_recycle(oop::RecycleReason::kHang);
      } else if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) {
        wire_status = 0;
        flags |= oop::encode_recycle(oop::RecycleReason::kBudget);
      } else {
        flags |= oop::encode_recycle(oop::RecycleReason::kCrash);
      }
    } else {
      // -- Fork-per-exec over the v1 region. ------------------------------
      std::memset(g_segment, 0, oop::kSegmentBytes);
      int wstatus = 0;
      if (fork_exec_child(jail, g_segment, packet, timeout_ms, wstatus,
                          timed_out)) {
        return true;  // the child: continue to main()
      }
      wire_status = static_cast<std::int32_t>(wstatus);
      if (timed_out) flags |= oop::kReplyTimedOut;
    }

    if (v2) {
      if (!oop::write_full(kStFd, &wire_status, sizeof(wire_status))) {
        ::_exit(6);
      }
      if (!oop::write_full(kStFd, &flags, sizeof(flags))) ::_exit(6);
      if (!oop::write_full(kStFd, &iteration, sizeof(iteration))) ::_exit(6);
    } else {
      const std::uint8_t wire_timed_out = timed_out ? 1 : 0;
      if (!oop::write_full(kStFd, &wire_status, sizeof(wire_status))) {
        ::_exit(6);
      }
      if (!oop::write_full(kStFd, &wire_timed_out, sizeof(wire_timed_out))) {
        ::_exit(6);
      }
    }
  }
}

// -- TCP interposition mode. -----------------------------------------------

struct TcpState {
  bool active = false;
  bool hello_sent = false;
  int conn_fd = -1;  ///< the tracked (first concurrent) session connection
  std::uint64_t served = 0;
  std::uint64_t sessions = 0;
};
TcpState g_tcp;

/// Control-pipe watcher: the client closing its end is the shutdown
/// signal, same as the fork server's request-read EOF.
void* tcp_watch_ctl(void*) {
  struct pollfd pfd {};
  pfd.fd = kCtlFd;
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return nullptr;
    }
    if ((pfd.revents & POLLNVAL) != 0) return nullptr;  // not our spawn
    if ((pfd.revents & (POLLHUP | POLLERR)) != 0) ::_exit(0);
    if ((pfd.revents & POLLIN) != 0) {
      char buf[64];
      const ssize_t n = ::read(kCtlFd, buf, sizeof(buf));
      if (n == 0) ::_exit(0);  // EOF
      if (n < 0 && errno != EINTR) return nullptr;
    }
  }
}

void tcp_session_begin(int fd) {
  g_tcp.conn_fd = fd;
  std::memset(g_segment, 0, cov::kMapSize);
  std::memset(g_segment + kAuxOffset, 0, 4);  // invalidate aux magic
  g_response_len = 0;
  trace_arm(g_segment);
}

void tcp_session_end() {
  oop::AuxResult result;
  result.events = trace_events();
  trace_disarm();
  oop::aux_store(g_segment + kAuxOffset, kAuxBytes, result);
  ++g_tcp.sessions;
  session::sync_publish_session_done(g_segment, g_tcp.sessions);
  g_tcp.conn_fd = -1;
}

/// First successful listen(): report the real bound port through the TCP
/// hello. Also the first moment the target's guard tables are registered,
/// so the info block gets published here.
void tcp_on_listen(int fd) {
  if (g_tcp.hello_sent) return;
  sockaddr_storage addr {};
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    return;
  }
  std::uint32_t port = 0;
  if (addr.ss_family == AF_INET) {
    port = ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
  } else if (addr.ss_family == AF_INET6) {
    port = ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
  }
  if (port == 0) return;
  g_tcp.hello_sent = true;
  publish_inject_info();
  const std::uint32_t hello[2] = {oop::kTcpHelloMagic, port};
  // A failed hello (no status pipe: manual run) is fine — the server just
  // serves whoever connects, untracked.
  (void)oop::write_full(kStFd, hello, sizeof(hello));
}

void tcp_init() {
  g_tcp.active = true;
  pthread_t watcher;
  if (::pthread_create(&watcher, nullptr, tcp_watch_ctl, nullptr) == 0) {
    ::pthread_detach(watcher);
  }
}

// -- Constructor. ----------------------------------------------------------

__attribute__((constructor)) void icsfuzz_inject_init() {
  const char* shm_name = std::getenv(oop::kShmNameEnv);
  if (shm_name == nullptr || *shm_name == '\0') return;  // dormant

  std::uint64_t shm_size = 0;
  if (!parse_env_u64(std::getenv(oop::kShmSizeEnv), shm_size) ||
      shm_size < oop::kSegmentBytes || shm_size > kMaxSegmentBytes) {
    warn("invalid ICSFUZZ_OOP_SHM_SIZE; staying dormant");
    return;
  }
  const int fd = ::shm_open(shm_name, O_RDWR, 0);
  if (fd < 0) {
    warn("shm_open failed; staying dormant");
    return;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 ||
      static_cast<std::uint64_t>(st.st_size) < shm_size) {
    warn("shm object smaller than ICSFUZZ_OOP_SHM_SIZE; staying dormant");
    ::close(fd);
    return;
  }
  void* mapped = ::mmap(nullptr, static_cast<std::size_t>(shm_size),
                        PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (mapped == MAP_FAILED) {
    warn("mmap failed; staying dormant");
    return;
  }
  g_segment = static_cast<std::uint8_t*>(mapped);
  g_segment_size = static_cast<std::size_t>(shm_size);

  const char* mode = std::getenv(inject::kInjectModeEnv);
  const bool tcp = mode != nullptr &&
                   std::strcmp(mode, inject::kInjectModeTcp) == 0;

  // Processes the *target* spawns must not re-enter the protocol: scrub
  // the attach variables now that they are consumed. LD_PRELOAD may stay —
  // a runtime without ICSFUZZ_OOP_SHM is dormant.
  ::unsetenv(oop::kShmNameEnv);
  ::unsetenv(oop::kShmSizeEnv);
  ::unsetenv(inject::kInjectModeEnv);

  if (tcp) {
    tcp_init();
    return;  // the target's own main() serves; interposers do the wire
  }
  // Fork mode: the parent lives (and dies) inside this call. Only a
  // freshly forked execution/persistent child returns, continuing loader
  // initialization toward the target's main().
  (void)fork_server_loop();
}

}  // namespace
}  // namespace icsfuzz::inject_rt

// -- Cooperation + interposition surface (C ABI). --------------------------

extern "C" {

/// Persistent-mode iteration driver (see inject_protocol.hpp for the
/// contract). Returns 0 when this process is not a persistent child, which
/// routes a cooperating target to its standalone input path.
int __icsfuzz_persistent_loop(void) {
  using namespace icsfuzz;
  using namespace icsfuzz::inject_rt;
  if (!g_pchild.active) return 0;
  if (g_pchild.iteration != 0) {
    publish_iteration_aux();
    if (g_pchild.iteration >= g_pchild.budget) ::_exit(0);  // budget recycle
    ::raise(SIGSTOP);  // iteration complete; SIGCONT resumes with new ctl
  }
  const oop::CtlBlock ctl = oop::ctl_load(g_segment);
  const std::uint32_t slot =
      ctl.slot < oop::kNumSlots ? ctl.slot : 0;
  if (g_pchild.iteration == 0) {
    g_pchild.budget = ctl.budget != 0 ? ctl.budget : 1;
    publish_inject_info();  // guard tables registered during loader init
  }
  g_pchild.slot = slot;
  prepare_slot(slot);
  g_response_len = 0;
  trace_arm(g_segment + oop::slot_offset(slot));
  ++g_pchild.iteration;
  return 1;
}

/// The current iteration's packet (persistent children only; fork-per-exec
/// children read stdin and get nullptr here).
const unsigned char* __icsfuzz_testcase(unsigned* len) {
  using namespace icsfuzz;
  using namespace icsfuzz::inject_rt;
  if (!g_pchild.active || g_pchild.iteration == 0) {
    if (len != nullptr) *len = 0;
    return nullptr;
  }
  const auto packet = oop::slot_load_packet(g_segment, g_pchild.slot);
  if (len != nullptr) *len = static_cast<unsigned>(packet.size());
  return packet.data();
}

/// Publishes response bytes into the current execution's aux block
/// (optional; clamped to the runtime's buffer).
void __icsfuzz_set_response(const void* data, unsigned len) {
  using namespace icsfuzz::inject_rt;
  if (data == nullptr) {
    g_response_len = 0;
    return;
  }
  const auto take = static_cast<std::uint32_t>(
      len > kResponseCap ? kResponseCap : len);
  std::memcpy(g_response, data, take);
  g_response_len = take;
}

// -- TCP-mode libc interposers. All dormant-safe: without an active tcp
// session state they forward straight to libc.

int listen(int sockfd, int backlog) {
  using namespace icsfuzz::inject_rt;
  static auto real =
      reinterpret_cast<int (*)(int, int)>(::dlsym(RTLD_NEXT, "listen"));
  const int rc = real(sockfd, backlog);
  if (rc == 0 && g_tcp.active) tcp_on_listen(sockfd);
  return rc;
}

int accept(int sockfd, struct sockaddr* addr, socklen_t* addrlen) {
  using namespace icsfuzz::inject_rt;
  static auto real = reinterpret_cast<int (*)(int, struct sockaddr*,
                                              socklen_t*)>(
      ::dlsym(RTLD_NEXT, "accept"));
  const int fd = real(sockfd, addr, addrlen);
  if (fd >= 0 && g_tcp.active && g_tcp.conn_fd < 0) tcp_session_begin(fd);
  return fd;
}

int accept4(int sockfd, struct sockaddr* addr, socklen_t* addrlen,
            int flags) {
  using namespace icsfuzz::inject_rt;
  static auto real = reinterpret_cast<int (*)(int, struct sockaddr*,
                                              socklen_t*, int)>(
      ::dlsym(RTLD_NEXT, "accept4"));
  const int fd = real(sockfd, addr, addrlen, flags);
  if (fd >= 0 && g_tcp.active && g_tcp.conn_fd < 0) tcp_session_begin(fd);
  return fd;
}

ssize_t write(int fd, const void* buf, size_t count) {
  using namespace icsfuzz;
  using namespace icsfuzz::inject_rt;
  static auto real = reinterpret_cast<ssize_t (*)(int, const void*, size_t)>(
      ::dlsym(RTLD_NEXT, "write"));
  const ssize_t rc = real(fd, buf, count);
  if (rc > 0 && g_tcp.active && fd == g_tcp.conn_fd) {
    ++g_tcp.served;
    session::sync_publish_served(g_segment, g_tcp.served,
                                 static_cast<std::uint32_t>(rc));
  }
  return rc;
}

ssize_t send(int fd, const void* buf, size_t count, int flags) {
  using namespace icsfuzz;
  using namespace icsfuzz::inject_rt;
  static auto real =
      reinterpret_cast<ssize_t (*)(int, const void*, size_t, int)>(
          ::dlsym(RTLD_NEXT, "send"));
  const ssize_t rc = real(fd, buf, count, flags);
  if (rc > 0 && g_tcp.active && fd == g_tcp.conn_fd) {
    ++g_tcp.served;
    session::sync_publish_served(g_segment, g_tcp.served,
                                 static_cast<std::uint32_t>(rc));
  }
  return rc;
}

int close(int fd) {
  using namespace icsfuzz::inject_rt;
  static auto real =
      reinterpret_cast<int (*)(int)>(::dlsym(RTLD_NEXT, "close"));
  if (g_tcp.active && fd >= 0 && fd == g_tcp.conn_fd) tcp_session_end();
  return real(fd);
}

}  // extern "C"
