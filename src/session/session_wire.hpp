// Shared-memory wire state of the TCP session transport.
//
// Segment geometry (one ShmSegment of kTcpSegmentBytes, created by the
// client backend and attached by the `icsfuzz-shim-target --tcp` server
// through the usual ICSFUZZ_OOP_SHM environment pair):
//
//   [0, cov::kMapSize)   raw edge-hit map — the server traces every
//                        session into it (one trace per session)
//   [kAuxOffset, ...)    oop::AuxResult block, published at session end
//                        (events + faults; the response bytes travel over
//                        the socket, so the aux response stays empty)
//   [kSyncOffset, +64)   the sync block below
//
// The sync block solves the one thing a raw protocol socket cannot: the
// client must know when message i's response is COMPLETE (these protocols
// answer with zero, one or several frames — "no more bytes yet" and "no
// response" are indistinguishable on the wire). The server publishes a
// monotonic served-message counter and the byte length of the last
// response; the client sends message i, waits for served == i+1, then
// reads exactly last_response_len bytes. Socket traffic therefore stays
// pure protocol bytes in both directions — nothing about the transport
// leaks into the fuzzed stream. Counters are campaign-monotonic (never
// reset per session) so a stale read from a previous session can never be
// mistaken for this one's progress.
#pragma once

#include <atomic>
#include <cstdint>

#include "exec_oop/exec_protocol.hpp"

namespace icsfuzz::session {

inline constexpr std::size_t kSyncOffset = oop::kSegmentBytes;
inline constexpr std::size_t kSyncBytes = 64;
inline constexpr std::size_t kTcpSegmentBytes = kSyncOffset + kSyncBytes;

namespace wire_detail {
inline std::uint8_t* served_addr(std::uint8_t* segment) {
  return segment + kSyncOffset;
}
inline std::uint8_t* sessions_addr(std::uint8_t* segment) {
  return segment + kSyncOffset + 8;
}
inline std::uint8_t* response_len_addr(std::uint8_t* segment) {
  return segment + kSyncOffset + 16;
}
}  // namespace wire_detail

/// Server side: publishes "message done" — the response length first, the
/// served count last (release), so a client that observes the new count
/// also observes the matching length.
inline void sync_publish_served(std::uint8_t* segment, std::uint64_t served,
                                std::uint32_t response_len) {
  std::atomic_ref<std::uint32_t>(
      *reinterpret_cast<std::uint32_t*>(wire_detail::response_len_addr(segment)))
      .store(response_len, std::memory_order_relaxed);
  std::atomic_ref<std::uint64_t>(
      *reinterpret_cast<std::uint64_t*>(wire_detail::served_addr(segment)))
      .store(served, std::memory_order_release);
}

inline std::uint64_t sync_load_served(std::uint8_t* segment) {
  return std::atomic_ref<std::uint64_t>(
             *reinterpret_cast<std::uint64_t*>(wire_detail::served_addr(segment)))
      .load(std::memory_order_acquire);
}

inline std::uint32_t sync_load_response_len(std::uint8_t* segment) {
  return std::atomic_ref<std::uint32_t>(
             *reinterpret_cast<std::uint32_t*>(
                 wire_detail::response_len_addr(segment)))
      .load(std::memory_order_relaxed);
}

/// Server side: publishes "session done" (map + aux block fully written).
inline void sync_publish_session_done(std::uint8_t* segment,
                                      std::uint64_t sessions) {
  std::atomic_ref<std::uint64_t>(
      *reinterpret_cast<std::uint64_t*>(wire_detail::sessions_addr(segment)))
      .store(sessions, std::memory_order_release);
}

inline std::uint64_t sync_load_sessions_done(std::uint8_t* segment) {
  return std::atomic_ref<std::uint64_t>(
             *reinterpret_cast<std::uint64_t*>(
                 wire_detail::sessions_addr(segment)))
      .load(std::memory_order_acquire);
}

}  // namespace icsfuzz::session
