// Session sequencer — generates and mutates *sequences* of protocol
// messages from pit-defined session templates, the session layer's
// counterpart to the per-packet ModelInstantiator.
//
// A template is an ordered list of steps: literal byte strings (protocol
// choreography like IEC 104 STARTDT_act that must arrive verbatim for the
// server's state machine to advance) and model steps instantiated fresh
// from the loaded DataModelSet each time. On top of per-message byte
// mutation, the sequencer mutates the *sequence itself* — drop, duplicate,
// reorder, truncate-mid-message — which is what reaches the orderings and
// torn streams single-message fuzzing cannot express. The serialized
// session stream is one ordinary packet to everything downstream
// (dedup, corpus, retained seeds, checkpointing, distillation).
//
// Templates can come from session pit files (pits/iec104_session.xml —
// see parse_session_templates) or from the built-in per-project defaults.
#pragma once

#include <string>
#include <vector>

#include "fuzzer/instantiator.hpp"
#include "model/data_model.hpp"
#include "session/session_types.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace icsfuzz::session {

/// One step of a session template.
struct SessionStep {
  enum class Kind : std::uint8_t {
    kLiteral,  ///< fixed bytes, sent verbatim
    kModel,    ///< instantiate a data model (empty name = random model)
  };
  Kind kind = Kind::kModel;
  Bytes literal;
  std::string model;  // kModel: model name ("" = choose at random)
  /// kModel: the step emits between min_repeat and max_repeat messages.
  std::uint32_t min_repeat = 1;
  std::uint32_t max_repeat = 1;
};

struct SessionTemplate {
  std::string name;
  std::string project;  // registry project this choreography targets
  std::vector<SessionStep> steps;
};

struct SequencerConfig {
  /// Master switch: the Fuzzer only builds/consults a sequencer when set.
  bool enabled = false;
  Framing framing = Framing::kNone;
  /// Registry project the built-in templates are chosen for.
  std::string project;
  /// Chance (percent) that a model-generated message is byte-mutated.
  unsigned mutate_message_pct = 40;
  /// Chance (percent) that the generated sequence is itself mutated
  /// (drop/duplicate/reorder/truncate-mid-message).
  unsigned sequence_mutation_pct = 35;
  /// Chance (percent) that IEC 104 I-frame send sequence numbers are
  /// rewritten to the consecutive values the server's window check expects
  /// (the session analogue of File Fixup: without it almost every mutated
  /// sequence dies at the first sequence-number mismatch).
  unsigned fixup_pct = 75;
  /// Templates to draw from; empty selects builtin_session_templates().
  std::vector<SessionTemplate> templates;
};

/// Built-in session choreographies for a registry project: the IEC 104
/// STARTDT -> ASDU -> STOPDT flow for the 104-framed stacks, an
/// initiate -> requests flow for MMS, and a generic multi-message template
/// for everything else.
std::vector<SessionTemplate> builtin_session_templates(
    std::string_view project);

/// Parses session templates from a session pit document:
///
///   <Sessions project="IEC104">
///     <Session name="startdt-asdu">
///       <Literal hex="68 04 07 00 00 00"/>
///       <Model name="Interrogation" min="1" max="3"/>
///       <Model/>                      <!-- random model, once -->
///       <Literal hex="680413000000"/>
///     </Session>
///   </Sessions>
///
/// Returns false and fills `error` on malformed documents.
bool parse_session_templates(std::string_view xml_text,
                             std::vector<SessionTemplate>& out,
                             std::string& error);

/// File variant of parse_session_templates.
bool parse_session_templates_file(const std::string& path,
                                  std::vector<SessionTemplate>& out,
                                  std::string& error);

class SessionSequencer {
 public:
  SessionSequencer(SequencerConfig config, const model::DataModelSet& models,
                   const fuzz::ModelInstantiator& instantiator);

  /// Generates one session stream from a randomly chosen template into
  /// `out` (cleared first, capacity reused).
  void generate_into(Rng& rng, Bytes& out);

  /// Mutates an existing session stream (e.g. a retained valuable seed):
  /// re-splits it into its canonical message list, applies one or two
  /// sequence mutations plus per-message byte mutation, and reserializes.
  void mutate_stream_into(ByteSpan stream, Rng& rng, Bytes& out);

  [[nodiscard]] const std::vector<SessionTemplate>& templates() const {
    return templates_;
  }

 private:
  void instantiate_step(const SessionStep& step, Rng& rng);
  void mutate_sequence(Rng& rng);
  void apply_iec104_fixup();
  void serialize_into(Bytes& out) const;

  SequencerConfig config_;
  const model::DataModelSet& models_;
  const fuzz::ModelInstantiator& instantiator_;
  std::vector<SessionTemplate> templates_;
  /// Message list under construction (reused across calls).
  std::vector<Bytes> messages_;
  Bytes scratch_;
};

}  // namespace icsfuzz::session
