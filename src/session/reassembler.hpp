// Receive-path stream reassembly: turns an arbitrarily segmented TCP byte
// stream back into the canonical message list of framing.hpp.
//
// Invariant (gated by tests/test_reassembler.cpp's fragmentation oracle):
// for ANY segmentation of a stream — byte-at-a-time writes, coalesced
// frames, every split point — the emitted complete-frame sequence plus the
// finish() residue equals split_stream() of the whole stream. Malformed or
// oversized length fields never hang or pre-allocate: the reassembler
// buffers only bytes actually received, collapses everything after a
// malformed header (or the message cap) into one raw tail, and ignores
// bytes past kMaxSessionStreamBytes outright.
#pragma once

#include <cstdint>
#include <functional>

#include "session/framing.hpp"
#include "util/bytes.hpp"

namespace icsfuzz::session {

class StreamReassembler {
 public:
  /// `on_frame` receives each complete frame, in stream order, from inside
  /// feed(); the span is valid only for the duration of the callback.
  StreamReassembler(Framing framing,
                    std::function<void(ByteSpan)> on_frame);

  /// Consumes the next chunk of the stream, emitting every frame it
  /// completes.
  void feed(ByteSpan chunk);

  /// End of stream: returns the residue (bytes after the last complete
  /// frame — an incomplete tail, everything from a malformed header on, or
  /// the post-cap raw tail), empty when the stream ended on a frame
  /// boundary. The span is valid until the next feed()/reset().
  [[nodiscard]] ByteSpan finish() const;

  /// Complete frames emitted so far.
  [[nodiscard]] std::size_t frames() const { return frames_; }

  /// True once the stream degenerated to a raw tail (malformed header or
  /// message cap) — no further frames will be emitted.
  [[nodiscard]] bool raw_tail() const { return raw_tail_; }

  /// Forgets all stream state (fresh session, same framing and sink).
  void reset();

 private:
  Framing framing_;
  std::function<void(ByteSpan)> on_frame_;
  /// Unconsumed stream bytes (the buffered prefix of the next message).
  /// Outside raw-tail mode this never exceeds one frame's worth — frames
  /// are emitted and compacted away as soon as they complete.
  Bytes buffer_;
  /// Stream bytes accepted so far (consumed + buffered); feeds beyond
  /// kMaxSessionStreamBytes are clipped against this.
  std::size_t stream_bytes_ = 0;
  std::size_t frames_ = 0;
  bool raw_tail_ = false;
};

}  // namespace icsfuzz::session
