// Shared vocabulary of the session layer — dependency-free so the backend
// seam (fuzzer/exec_backend.hpp) can embed session options without pulling
// the framing/sequencer machinery into every translation unit.
//
// A *session* is one byte stream whose canonical message list is the
// framer's split of the whole stream (framing.hpp): the fuzzer keeps
// treating it as a single packet (dedup, corpus, retained pool, distill,
// checkpoints all unchanged), while the session backends execute it as a
// sequence of per-message exchanges against a stateful server — one target
// reset, one coverage trace, many messages.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace icsfuzz::session {

/// Per-protocol message framing of the six registry stacks. Mirrors each
/// server's own stream-drain rules exactly (framing.cpp documents the
/// per-variant byte layout) — the client-side splitter and the shim-side
/// reassembler MUST agree with the target or the per-message differential
/// oracle breaks.
enum class Framing : std::uint8_t {
  kNone = 0,   ///< not a session target; whole stream = one message
  kApci,       ///< IEC 60870-5-104 APCI: 0x68 + 1-byte length (IEC104, lib60870)
  kMbap,       ///< Modbus/TCP MBAP header, big-endian length (libmodbus)
  kTpkt,       ///< RFC 1006 TPKT over COTP, MMS/ICCP (libiec61850, libiec_iccp_mod)
  kDnp3Link,   ///< DNP3 link-layer frame with CRC blocks (opendnp3)
};

std::string_view to_string(Framing framing);

/// Complete messages a session may carry before the splitter/reassembler
/// collapses the rest of the stream into one raw tail — bounds both sides'
/// work and memory on adversarial many-tiny-frame streams.
inline constexpr std::size_t kMaxSessionMessages = 256;

/// How a session backend executes streams.
struct SessionOptions {
  /// kNone disables the session layer (plain single-exchange backends).
  Framing framing = Framing::kNone;
  /// Inject the response-class × position state machine's hashed states
  /// into the coverage map as their own cells (session-state coverage).
  bool state_coverage = true;
  /// Record per-message request/response byte streams (SessionTraffic) —
  /// differential-oracle tests only; off on fuzzing hot paths.
  bool record_traffic = false;
};

/// Per-message byte traffic of the last executed session (recorded only
/// under SessionOptions::record_traffic).
struct SessionTraffic {
  std::vector<Bytes> requests;
  std::vector<Bytes> responses;

  void clear() {
    requests.clear();
    responses.clear();
  }
};

}  // namespace icsfuzz::session
