// In-process session backend — the reference arm of the session
// differential oracle.
//
// Executes a session stream the way the TCP transport does — split into
// the canonical framed message list, one target reset, one coverage trace,
// each message processed in order with the tripped-sink guard — but
// entirely in-process. make_exec_backend routes kInProcess configurations
// with SessionOptions::framing != kNone here.
#pragma once

#include <memory>

#include "fuzzer/exec_backend.hpp"

namespace icsfuzz::session {

std::unique_ptr<fuzz::ExecBackend> make_in_process_session_backend(
    const fuzz::ExecBackendConfig& config, bool dense_reference);

}  // namespace icsfuzz::session
