#include "session/session_backend.hpp"

#include <cassert>

#include "coverage/instrument.hpp"
#include "session/framing.hpp"
#include "session/session_state.hpp"

namespace icsfuzz::session {

namespace {

class InProcessSessionBackend final : public fuzz::ExecBackend {
 public:
  InProcessSessionBackend(const SessionOptions& options, bool dense_reference)
      : options_(options), dense_(dense_reference) {}

  [[nodiscard]] fuzz::BackendKind kind() const override {
    return fuzz::BackendKind::kInProcess;
  }

  [[nodiscard]] const SessionTraffic* traffic() const override {
    return options_.record_traffic ? &traffic_ : nullptr;
  }

  cov::TraceSummary execute(ProtocolTarget& target, ByteSpan packet,
                            cov::CoverageMap& map,
                            fuzz::ExecResult& result) override {
    assert(!cov::trace_armed());
    split_stream(options_.framing, packet, ranges_);

    // One reset + one trace for the WHOLE session: server state carries
    // across messages, which is the entire point of the session layer.
    target.reset();
    san::FaultSink::arm();
    if (dense_) {
      map.begin_execution_dense();
    } else {
      map.begin_execution();
    }

    result.response.clear();
    result.session_states.clear();
    if (options_.record_traffic) traffic_.clear();
    std::uint32_t state = kInitialSessionState;
    for (std::size_t i = 0; i < ranges_.size(); ++i) {
      const ByteSpan message =
          packet.subspan(ranges_[i].offset, ranges_[i].length);
      response_scratch_.clear();
      // Tripped = the server process died on its first fault; remaining
      // messages of the session go unanswered (the TCP server applies the
      // identical guard).
      if (!san::FaultSink::tripped()) {
        target.process_into(message, response_scratch_);
      }
      append(result.response, ByteSpan(response_scratch_));
      state = next_session_state(
          state, classify_response(options_.framing,
                                   ByteSpan(response_scratch_)), i);
      result.session_states.push_back(state);
      if (options_.record_traffic) {
        traffic_.requests.emplace_back(message.begin(), message.end());
        traffic_.responses.push_back(response_scratch_);
      }
    }
    if (options_.state_coverage) {
      for (const std::uint32_t s : result.session_states) {
        map.bump_trace_cell(session_state_cell(s));
      }
    }
    result.session_messages = static_cast<std::uint32_t>(ranges_.size());
    result.response_truncated = false;

    const cov::TraceSummary summary =
        dense_ ? map.finalize_execution_dense() : map.finalize_execution();
    result.events = cov::tls_event_count;
    san::FaultSink::disarm_into(result.faults);
    return summary;
  }

 private:
  SessionOptions options_;
  bool dense_;
  std::vector<MessageRange> ranges_;
  Bytes response_scratch_;
  SessionTraffic traffic_;
};

}  // namespace

std::unique_ptr<fuzz::ExecBackend> make_in_process_session_backend(
    const fuzz::ExecBackendConfig& config, bool dense_reference) {
  return std::make_unique<InProcessSessionBackend>(config.session,
                                                   dense_reference);
}

}  // namespace icsfuzz::session
