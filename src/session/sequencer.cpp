#include "session/sequencer.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "model/xml.hpp"
#include "session/framing.hpp"

namespace icsfuzz::session {

namespace {

// IEC 104 APCI control bytes (start 0x68, length 4, control octets 1-4).
constexpr std::uint8_t kStartDtAct[] = {0x68, 0x04, 0x07, 0x00, 0x00, 0x00};
constexpr std::uint8_t kStopDtAct[] = {0x68, 0x04, 0x13, 0x00, 0x00, 0x00};
constexpr std::uint8_t kTestFrAct[] = {0x68, 0x04, 0x43, 0x00, 0x00, 0x00};

SessionStep literal_step(const std::uint8_t* data, std::size_t size) {
  SessionStep step;
  step.kind = SessionStep::Kind::kLiteral;
  step.literal.assign(data, data + size);
  return step;
}

SessionStep model_step(std::string name, std::uint32_t min_repeat,
                       std::uint32_t max_repeat) {
  SessionStep step;
  step.kind = SessionStep::Kind::kModel;
  step.model = std::move(name);
  step.min_repeat = min_repeat;
  step.max_repeat = max_repeat;
  return step;
}

bool parse_hex_attr(const std::string& text, Bytes& out) {
  out.clear();
  int nibble = -1;
  for (const char c : text) {
    int value;
    if (c >= '0' && c <= '9') {
      value = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      value = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      value = c - 'A' + 10;
    } else if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      continue;
    } else {
      return false;
    }
    if (nibble < 0) {
      nibble = value;
    } else {
      out.push_back(static_cast<std::uint8_t>((nibble << 4) | value));
      nibble = -1;
    }
  }
  return nibble < 0;  // odd digit counts are malformed
}

/// Messages a generated session may hold — far below the framing layer's
/// kMaxSessionMessages so sequence mutations (duplication) cannot push a
/// stream over the canonical-split cap.
constexpr std::size_t kMaxGeneratedMessages = 64;

}  // namespace

std::vector<SessionTemplate> builtin_session_templates(
    std::string_view project) {
  std::vector<SessionTemplate> out;
  const bool iec104 = project == "IEC104" || project == "lib60870";
  if (iec104) {
    // The canonical stateful flow: activate the link, drive ASDUs into the
    // post-STARTDT handler, deactivate. Without the literal STARTDT_act
    // the server drops every I-frame on the floor (started_ gate).
    SessionTemplate full;
    full.name = "startdt-asdu";
    full.project = std::string(project);
    full.steps.push_back(literal_step(kStartDtAct, sizeof kStartDtAct));
    full.steps.push_back(model_step("", 1, 3));
    full.steps.push_back(literal_step(kStopDtAct, sizeof kStopDtAct));
    out.push_back(std::move(full));

    SessionTemplate probe;
    probe.name = "startdt-testfr";
    probe.project = std::string(project);
    probe.steps.push_back(literal_step(kStartDtAct, sizeof kStartDtAct));
    probe.steps.push_back(literal_step(kTestFrAct, sizeof kTestFrAct));
    probe.steps.push_back(model_step("", 1, 2));
    out.push_back(std::move(probe));
  }
  if (project == "libiec61850") {
    // MMS association first, then reads/writes against the open session.
    SessionTemplate initiate;
    initiate.name = "initiate-requests";
    initiate.project = std::string(project);
    initiate.steps.push_back(model_step("MmsAssociate", 1, 1));
    initiate.steps.push_back(model_step("", 1, 3));
    out.push_back(std::move(initiate));
  }
  // Every project gets the generic multi-message template (for IEC 104 it
  // doubles as the "no STARTDT" negative flow).
  SessionTemplate generic;
  generic.name = "generic-sequence";
  generic.project = std::string(project);
  generic.steps.push_back(model_step("", 1, 3));
  out.push_back(std::move(generic));
  return out;
}

bool parse_session_templates(std::string_view xml_text,
                             std::vector<SessionTemplate>& out,
                             std::string& error) {
  const model::XmlParseResult doc = model::parse_xml(xml_text);
  if (!doc.ok()) {
    error = doc.error;
    return false;
  }
  if (doc.root->name != "Sessions") {
    error = "session pit root element must be <Sessions>, got <" +
            doc.root->name + ">";
    return false;
  }
  const std::string project = doc.root->attr("project").value_or("");
  for (const model::XmlElement* session : doc.root->children_named("Session")) {
    SessionTemplate tpl;
    tpl.project = project;
    const std::optional<std::string> name = session->attr("name");
    if (!name || name->empty()) {
      error = "<Session> requires a non-empty name attribute";
      return false;
    }
    tpl.name = *name;
    for (const model::XmlElement& child : session->children) {
      if (child.name == "Literal") {
        const std::optional<std::string> hex = child.attr("hex");
        SessionStep step;
        step.kind = SessionStep::Kind::kLiteral;
        if (!hex || !parse_hex_attr(*hex, step.literal)) {
          error = "<Literal> in session '" + tpl.name +
                  "' requires a hex attribute of hex byte pairs";
          return false;
        }
        tpl.steps.push_back(std::move(step));
      } else if (child.name == "Model") {
        SessionStep step;
        step.kind = SessionStep::Kind::kModel;
        step.model = child.attr("name").value_or("");
        try {
          step.min_repeat = static_cast<std::uint32_t>(
              std::stoul(child.attr("min").value_or("1")));
          step.max_repeat = static_cast<std::uint32_t>(
              std::stoul(child.attr("max").value_or("1")));
        } catch (...) {
          error = "<Model> in session '" + tpl.name +
                  "' has a non-numeric min/max attribute";
          return false;
        }
        if (step.min_repeat == 0 || step.max_repeat < step.min_repeat) {
          error = "<Model> in session '" + tpl.name +
                  "' requires 1 <= min <= max";
          return false;
        }
        tpl.steps.push_back(std::move(step));
      } else {
        error = "unknown session step <" + child.name + "> in session '" +
                tpl.name + "'";
        return false;
      }
    }
    if (tpl.steps.empty()) {
      error = "session '" + tpl.name + "' has no steps";
      return false;
    }
    out.push_back(std::move(tpl));
  }
  if (out.empty()) {
    error = "session pit defines no <Session> elements";
    return false;
  }
  return true;
}

bool parse_session_templates_file(const std::string& path,
                                  std::vector<SessionTemplate>& out,
                                  std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_session_templates(text.str(), out, error);
}

SessionSequencer::SessionSequencer(SequencerConfig config,
                                   const model::DataModelSet& models,
                                   const fuzz::ModelInstantiator& instantiator)
    : config_(std::move(config)),
      models_(models),
      instantiator_(instantiator),
      templates_(config_.templates.empty()
                     ? builtin_session_templates(config_.project)
                     : config_.templates) {}

void SessionSequencer::instantiate_step(const SessionStep& step, Rng& rng) {
  if (step.kind == SessionStep::Kind::kLiteral) {
    if (messages_.size() < kMaxGeneratedMessages) {
      messages_.push_back(step.literal);
    }
    return;
  }
  const std::uint64_t repeats = rng.between(step.min_repeat, step.max_repeat);
  for (std::uint64_t r = 0; r < repeats; ++r) {
    if (messages_.size() >= kMaxGeneratedMessages) return;
    const model::DataModel* model =
        step.model.empty() ? nullptr : models_.find(step.model);
    if (model == nullptr) {
      // Unknown or unspecified model: fall back to a random one, so
      // templates survive pit sets that lack a named choreography model.
      model = &models_.models()[rng.index(models_.size())];
    }
    Bytes message;
    instantiator_.generate_into(*model, rng, message);
    if (rng.chance(config_.mutate_message_pct, 100)) {
      instantiator_.mutators().mutate_bytes_into(ByteSpan(message), scratch_,
                                                 rng);
      message.swap(scratch_);
    }
    messages_.push_back(std::move(message));
  }
}

void SessionSequencer::mutate_sequence(Rng& rng) {
  const std::uint64_t rounds = rng.between(1, 2);
  for (std::uint64_t round = 0; round < rounds; ++round) {
    if (messages_.empty()) return;
    switch (rng.below(4)) {
      case 0:  // drop a message
        if (messages_.size() > 1) {
          messages_.erase(messages_.begin() +
                          static_cast<std::ptrdiff_t>(
                              rng.index(messages_.size())));
        }
        break;
      case 1: {  // duplicate a message in place
        if (messages_.size() >= kMaxGeneratedMessages) break;
        const std::size_t i = rng.index(messages_.size());
        messages_.insert(messages_.begin() + static_cast<std::ptrdiff_t>(i),
                         messages_[i]);
        break;
      }
      case 2: {  // reorder: swap two messages
        if (messages_.size() > 1) {
          const std::size_t a = rng.index(messages_.size());
          const std::size_t b = rng.index(messages_.size());
          std::swap(messages_[a], messages_[b]);
        }
        break;
      }
      default: {  // truncate the stream mid-message
        const std::size_t i = rng.index(messages_.size());
        Bytes& victim = messages_[i];
        if (!victim.empty()) {
          victim.resize(rng.index(victim.size()));
        }
        // Everything after the torn message would re-frame arbitrarily;
        // ending the stream here exercises the residue path instead.
        messages_.resize(i + 1);
        break;
      }
    }
  }
}

void SessionSequencer::apply_iec104_fixup() {
  if (config_.framing != Framing::kApci) return;
  // The server's window check demands I-frame N(S) values arrive in
  // exactly the order 0,1,2,... and acknowledges nothing back mid-session,
  // so N(R) stays 0. Rewriting the four sequence octets of every I-format
  // APCI (control octet LSB 0) is the session analogue of File Fixup.
  std::uint16_t send_seq = 0;
  for (Bytes& message : messages_) {
    if (message.size() < 6 || message[0] != 0x68) continue;
    if ((message[2] & 0x01) != 0) continue;  // U or S format
    message[2] = static_cast<std::uint8_t>((send_seq << 1) & 0xFE);
    message[3] = static_cast<std::uint8_t>(send_seq >> 7);
    message[4] = 0;
    message[5] = 0;
    ++send_seq;
  }
}

void SessionSequencer::serialize_into(Bytes& out) const {
  out.clear();
  std::size_t total = 0;
  for (const Bytes& message : messages_) total += message.size();
  out.reserve(total);
  for (const Bytes& message : messages_) append(out, ByteSpan(message));
  if (out.size() > kMaxSessionStreamBytes) out.resize(kMaxSessionStreamBytes);
}

void SessionSequencer::generate_into(Rng& rng, Bytes& out) {
  messages_.clear();
  const SessionTemplate& tpl = templates_[rng.index(templates_.size())];
  for (const SessionStep& step : tpl.steps) instantiate_step(step, rng);
  if (rng.chance(config_.sequence_mutation_pct, 100)) mutate_sequence(rng);
  if (rng.chance(config_.fixup_pct, 100)) apply_iec104_fixup();
  serialize_into(out);
}

void SessionSequencer::mutate_stream_into(ByteSpan stream, Rng& rng,
                                          Bytes& out) {
  std::vector<MessageRange> ranges;
  split_stream(config_.framing, stream, ranges);
  messages_.clear();
  messages_.reserve(ranges.size());
  for (const MessageRange& range : ranges) {
    const std::uint8_t* data = stream.data() + range.offset;
    messages_.emplace_back(data, data + range.length);
  }
  if (!messages_.empty() && rng.chance(config_.mutate_message_pct, 100)) {
    Bytes& victim = messages_[rng.index(messages_.size())];
    instantiator_.mutators().mutate_bytes_into(ByteSpan(victim), scratch_,
                                               rng);
    victim.swap(scratch_);
  }
  mutate_sequence(rng);
  if (rng.chance(config_.fixup_pct, 100)) apply_iec104_fixup();
  serialize_into(out);
}

}  // namespace icsfuzz::session
