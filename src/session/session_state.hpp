// Session-state coverage signal: a response-class × position state machine
// whose hashed states are injected into the edge-coverage map as their own
// cells (CoverageMap::bump_trace_cell), so every downstream consumer —
// valuable-seed detection, the parallel seed exchange, distillation,
// checkpoint/resume, telemetry — sees session-state novelty through the
// exact machinery it already uses for edges.
//
// The chain is computed CLIENT-side from response bytes alone (both the
// in-process and the TCP session backends see identical per-message
// responses, so the chains — and the injected cells — are identical by
// construction; the differential oracle asserts it).
#pragma once

#include <cstdint>

#include "session/session_types.hpp"
#include "util/bytes.hpp"

namespace icsfuzz::session {

/// Response classes. Protocol-aware where the response framing is cheap to
/// read (APCI frame types — the IEC 104 handshake states the tentpole
/// targets), shape-based otherwise.
enum class ResponseClass : std::uint8_t {
  kEmpty = 0,     ///< server said nothing (dropped / not started / error)
  kSingle,        ///< exactly one complete frame
  kMulti,         ///< several complete frames (e.g. interrogation bursts)
  kMalformed,     ///< bytes that do not frame cleanly
  kApciU,         ///< IEC 104 U-format (handshake confirmations)
  kApciS,         ///< IEC 104 S-format (supervisory acks)
  kApciI,         ///< IEC 104 I-format (data ASDUs — post-STARTDT only)
  kApciIMulti,    ///< burst of I-frames (interrogation responses)
};

/// Classifies one message's response bytes under `framing`.
ResponseClass classify_response(Framing framing, ByteSpan response);

/// Rolling state chain: `state` after message i, the class observed at
/// position i folded in. Position saturates at 31 so unbounded sessions
/// cannot mint unbounded states.
std::uint32_t next_session_state(std::uint32_t state, ResponseClass cls,
                                 std::size_t position);

/// The chain's seed state (before any message).
inline constexpr std::uint32_t kInitialSessionState = 0x5E551011u;

/// Map cell a session state bumps (its own cell namespace is not needed —
/// states land in the shared 64 Ki map like any edge, and collisions are
/// as harmless as edge collisions).
std::uint32_t session_state_cell(std::uint32_t state);

}  // namespace icsfuzz::session
