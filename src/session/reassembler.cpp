#include "session/reassembler.hpp"

#include <utility>

namespace icsfuzz::session {

StreamReassembler::StreamReassembler(Framing framing,
                                     std::function<void(ByteSpan)> on_frame)
    : framing_(framing), on_frame_(std::move(on_frame)) {}

void StreamReassembler::reset() {
  buffer_.clear();
  stream_bytes_ = 0;
  frames_ = 0;
  raw_tail_ = false;
}

void StreamReassembler::feed(ByteSpan chunk) {
  // Deterministic stream cap, mirrored by split_stream: bytes past the
  // limit never existed as far as either side is concerned.
  if (stream_bytes_ >= kMaxSessionStreamBytes) return;
  const std::size_t take =
      std::min(chunk.size(), kMaxSessionStreamBytes - stream_bytes_);
  stream_bytes_ += take;
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.begin() + take);
  if (raw_tail_) return;  // everything accumulates into the finish() tail

  std::size_t consumed = 0;
  while (frames_ < kMaxSessionMessages) {
    std::size_t frame_size = 0;
    const Peek peek = peek_frame(framing_, buffer_.data() + consumed,
                                 buffer_.size() - consumed, frame_size);
    if (peek == Peek::kMalformed) {
      raw_tail_ = true;
      break;
    }
    if (peek == Peek::kNeedMore) break;
    on_frame_(ByteSpan(buffer_.data() + consumed, frame_size));
    consumed += frame_size;
    ++frames_;
  }
  if (frames_ >= kMaxSessionMessages) raw_tail_ = true;
  // Compact the emitted prefix away so the buffered remainder stays at
  // most one (in-progress or tail) message.
  if (consumed != 0) buffer_.erase(buffer_.begin(), buffer_.begin() + consumed);
}

ByteSpan StreamReassembler::finish() const { return ByteSpan(buffer_); }

}  // namespace icsfuzz::session
