#include "session/tcp_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "coverage/instrument.hpp"
#include "exec_oop/exec_protocol.hpp"
#include "exec_oop/shm_segment.hpp"
#include "sanitizer/fault.hpp"
#include "session/reassembler.hpp"
#include "session/session_wire.hpp"
#include "util/strings.hpp"

namespace icsfuzz::session {

namespace {

/// MSG_NOSIGNAL exact send: a client that closed its read side must surface
/// as a short write, never as a process-killing SIGPIPE.
bool send_full(int fd, const std::uint8_t* data, std::size_t size) {
  while (size != 0) {
    const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += sent;
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

/// One accepted connection = one session. Reassembles the request stream,
/// serves each message, and publishes progress; returns once the client
/// half-closes (EOF) or the control pipe says shut down (`*shutdown`).
void serve_session(ProtocolTarget& target, Framing framing, int conn,
                   std::uint8_t* segment, cov::DirtyWordList& dirty,
                   std::uint64_t& served, std::uint64_t& sessions,
                   bool* shutdown) {
  // Pristine per-session map state: sparse-clear the previous session's
  // dirty words, invalidate the aux magic so a torn-down session is never
  // mistaken for a completed one.
  auto* words = reinterpret_cast<std::uint64_t*>(segment);
  for (std::uint32_t i = 0; i < dirty.count; ++i) words[dirty.indices[i]] = 0;
  dirty.count = 0;
  std::memset(segment + oop::kAuxOffset, 0, 4);

  // Same arming order as every other backend (reset, fault sink, trace) —
  // the differential oracle depends on the symmetry.
  target.reset();
  san::FaultSink::arm();
  cov::begin_trace(segment, &dirty);

  Bytes response;
  const auto serve_message = [&](ByteSpan message) {
    response.clear();
    // A tripped sink models the server process having died on its first
    // fault: later messages of the session go unanswered. The in-process
    // session backend applies the identical guard.
    if (!san::FaultSink::tripped()) target.process_into(message, response);
    if (!response.empty()) send_full(conn, response.data(), response.size());
    sync_publish_served(segment, ++served,
                        static_cast<std::uint32_t>(response.size()));
  };

  StreamReassembler reassembler(framing, serve_message);
  std::uint8_t chunk[4096];
  for (;;) {
    struct pollfd fds[2];
    fds[0] = {conn, POLLIN, 0};
    fds[1] = {oop::kCtlFd, POLLIN, 0};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      *shutdown = true;  // client closed the control pipe mid-session
      break;
    }
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    const ssize_t got = ::read(conn, chunk, sizeof chunk);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;  // EOF (orderly end of session) or error
    reassembler.feed(ByteSpan(chunk, static_cast<std::size_t>(got)));
  }

  // End of stream: the residue — an incomplete tail, a malformed-header
  // rest, or the post-cap raw tail — is the session's final message.
  const ByteSpan residue = reassembler.finish();
  if (!residue.empty()) serve_message(residue);

  oop::AuxResult result;
  result.events = cov::tls_event_count;
  cov::end_trace();
  san::FaultSink::disarm_into(result.faults);
  oop::aux_store(segment + oop::kAuxOffset, oop::kAuxBytes, result);
  sync_publish_session_done(segment, ++sessions);
}

}  // namespace

int run_tcp_session_server(ProtocolTarget& target, Framing framing) {
  const char* shm_name = std::getenv(oop::kShmNameEnv);
  const char* shm_size_text = std::getenv(oop::kShmSizeEnv);
  // The size comes from the environment — i.e. from whatever spawned us —
  // so it gets the same distrust as network input: a checked parse (no
  // strtoull garbage-as-0), a floor of the segment layout this server
  // writes to, and a 1 GiB ceiling so a corrupt value cannot turn the mmap
  // into an address-space grab.
  constexpr std::uint64_t kMaxShmBytes = std::uint64_t{1} << 30;
  const std::optional<std::uint64_t> shm_size =
      shm_size_text != nullptr ? parse_u64(shm_size_text)
                               : std::nullopt;
  if (shm_name == nullptr || !shm_size || *shm_size < kTcpSegmentBytes ||
      *shm_size > kMaxShmBytes) {
    return 3;
  }
  oop::ShmSegment segment =
      oop::ShmSegment::attach(shm_name, static_cast<std::size_t>(*shm_size));
  if (!segment.valid()) return 3;

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) return 8;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral: the kernel picks, the hello announces
  socklen_t addr_len = sizeof addr;
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd, 16) != 0 ||
      ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    ::close(listen_fd);
    return 8;
  }

  const std::uint32_t hello[2] = {oop::kTcpHelloMagic,
                                  static_cast<std::uint32_t>(
                                      ntohs(addr.sin_port))};
  if (!oop::write_full(oop::kStFd, hello, sizeof hello)) {
    ::close(listen_fd);
    return 4;
  }

  // The whole-map memset runs once; later sessions sparse-clear through
  // the dirty list (the begin_execution analogue).
  std::memset(segment.data(), 0, cov::kMapSize);
  static cov::DirtyWordList dirty;
  dirty.count = 0;
  std::uint64_t served = 0;
  std::uint64_t sessions = 0;

  for (;;) {
    struct pollfd fds[2];
    fds[0] = {listen_fd, POLLIN, 0};
    fds[1] = {oop::kCtlFd, POLLIN, 0};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      ::close(listen_fd);
      return 8;
    }
    if ((fds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      ::close(listen_fd);  // control-pipe EOF: orderly shutdown
      return 0;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    const int nodelay = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);

    bool shutdown = false;
    serve_session(target, framing, conn, segment.data(), dirty, served,
                  sessions, &shutdown);
    ::close(conn);
    if (shutdown) {
      ::close(listen_fd);
      return 0;
    }
  }
}

}  // namespace icsfuzz::session
