#include "session/framing.hpp"

#include <algorithm>

namespace icsfuzz::session {

std::string_view to_string(Framing framing) {
  switch (framing) {
    case Framing::kNone: return "none";
    case Framing::kApci: return "apci";
    case Framing::kMbap: return "mbap";
    case Framing::kTpkt: return "tpkt";
    case Framing::kDnp3Link: return "dnp3-link";
  }
  return "?";
}

Framing framing_for_project(std::string_view project) {
  if (project == "IEC104" || project == "lib60870") return Framing::kApci;
  if (project == "libmodbus") return Framing::kMbap;
  if (project == "libiec61850" || project == "libiec_iccp_mod") {
    return Framing::kTpkt;
  }
  if (project == "opendnp3") return Framing::kDnp3Link;
  return Framing::kNone;
}

Peek peek_frame(Framing framing, const std::uint8_t* data, std::size_t size,
                std::size_t& frame_size) {
  switch (framing) {
    case Framing::kNone:
      if (size == 0) return Peek::kNeedMore;
      frame_size = size;
      return Peek::kFrame;
    case Framing::kApci: {
      if (size < 2) return Peek::kNeedMore;
      frame_size = 2 + static_cast<std::size_t>(data[1]);
      return size >= frame_size ? Peek::kFrame : Peek::kNeedMore;
    }
    case Framing::kMbap: {
      if (size < 7) return Peek::kNeedMore;
      const std::size_t declared =
          (static_cast<std::size_t>(data[4]) << 8) | data[5];
      if (declared < 1) return Peek::kMalformed;
      frame_size = 6 + declared;
      return size >= frame_size ? Peek::kFrame : Peek::kNeedMore;
    }
    case Framing::kTpkt: {
      if (size < 4) return Peek::kNeedMore;
      frame_size = (static_cast<std::size_t>(data[2]) << 8) | data[3];
      if (frame_size < 4) return Peek::kMalformed;
      return size >= frame_size ? Peek::kFrame : Peek::kNeedMore;
    }
    case Framing::kDnp3Link: {
      if (size < 10) return Peek::kNeedMore;
      const std::size_t declared = data[2];
      if (declared < 5) return Peek::kMalformed;
      const std::size_t user = declared - 5;
      frame_size = 10 + user + 2 * ((user + 15) / 16);
      return size >= frame_size ? Peek::kFrame : Peek::kNeedMore;
    }
  }
  return Peek::kMalformed;
}

std::size_t split_stream(Framing framing, ByteSpan stream,
                         std::vector<MessageRange>& out) {
  out.clear();
  const std::size_t limit = std::min(stream.size(), kMaxSessionStreamBytes);
  std::size_t offset = 0;
  while (offset < limit && out.size() < kMaxSessionMessages) {
    std::size_t frame_size = 0;
    const Peek peek =
        peek_frame(framing, stream.data() + offset, limit - offset,
                   frame_size);
    if (peek != Peek::kFrame) break;  // incomplete or malformed: residue
    out.push_back(MessageRange{offset, frame_size});
    offset += frame_size;
  }
  const std::size_t residue_index = out.size();
  if (offset < limit) out.push_back(MessageRange{offset, limit - offset});
  return residue_index;
}

}  // namespace icsfuzz::session
