// Loopback TCP session server — the `icsfuzz-shim-target --tcp` mode.
//
// The in-tree hermetic stand-in for a real networked ICS server: binds an
// ephemeral 127.0.0.1 port, announces it through the session hello on the
// inherited status descriptor (exec_protocol.hpp::kTcpHelloMagic), and
// serves one *session* per accepted connection — reassembling the request
// stream with the per-protocol framing (reassembler.hpp), feeding each
// complete message (and the final residue, if any) to the wrapped
// ProtocolTarget, and answering with the raw response bytes. Coverage for
// the whole session lands in the shared-memory map as ONE trace; progress
// and completion are published through the session_wire.hpp sync block.
//
// Shutdown mirrors the fork server: EOF on the inherited control
// descriptor (the client closing its pipe end) ends the accept loop with
// exit status 0.
#pragma once

#include "protocols/protocol_target.hpp"
#include "session/session_types.hpp"

namespace icsfuzz::session {

/// Runs the accept loop until control-pipe EOF. Exit codes match
/// oop::run_shim_server's conventions: 0 orderly shutdown, 3 segment
/// attach failure, 4 hello write failure, 8 socket setup failure.
int run_tcp_session_server(ProtocolTarget& target, Framing framing);

}  // namespace icsfuzz::session
