// Per-protocol message framing: the single source of truth for where one
// session message ends and the next begins.
//
// Both ends of the session layer derive from these rules — the client-side
// splitter (split_stream, used by the in-process session backend and the
// sequencer) and the shim-side StreamReassembler (reassembler.hpp) — and
// they mirror each target server's own process_into() drain loop exactly.
// That three-way agreement is what the in-process vs over-TCP differential
// oracle rests on: the same session byte stream must decompose into the
// same message list everywhere.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "session/session_types.hpp"
#include "util/bytes.hpp"

namespace icsfuzz::session {

/// Framing for a registry project name (target_registry.cpp); kNone for an
/// unknown project.
Framing framing_for_project(std::string_view project);

/// What the header bytes at the front of a stream say.
enum class Peek : std::uint8_t {
  kNeedMore,   ///< not enough bytes yet to finish a frame
  kFrame,      ///< a complete frame of `size` bytes is available
  kMalformed,  ///< the header can never form a frame (the servers' drain
               ///< loops stop the stream here)
};

/// Examines the front of `data` (length `size`) and reports whether a
/// complete frame is available. On kFrame, `frame_size` is its byte length.
/// The per-variant rules are byte-for-byte those of the servers' drain
/// loops:
///   kApci     — need 2;  frame = 2 + b[1]                (never malformed)
///   kMbap     — need 7;  declared = BE16 b[4..5]; frame = 6 + declared;
///               declared < 1 is malformed
///   kTpkt     — need 4;  frame = BE16 b[2..3]; frame < 4 is malformed
///   kDnp3Link — need 10; declared = b[2]; declared < 5 is malformed;
///               user = declared - 5; frame = 10 + user + 2*ceil(user/16)
///   kNone     — the whole stream is one frame once non-empty
Peek peek_frame(Framing framing, const std::uint8_t* data, std::size_t size,
                std::size_t& frame_size);

/// One message's position inside a session stream.
struct MessageRange {
  std::size_t offset = 0;
  std::size_t length = 0;
};

/// Total session-stream bytes either side will ever consider; bytes past
/// this are deterministically ignored by split_stream and the reassembler
/// alike (bounds adversarial streams without desynchronizing the arms).
inline constexpr std::size_t kMaxSessionStreamBytes = std::size_t{1} << 20;

/// Splits `stream` into its canonical message list: complete frames first
/// (at most kMaxSessionMessages), then — when the remainder is non-empty —
/// one residue message covering everything from the first incomplete or
/// malformed header (or the message-cap point) to the end of the considered
/// prefix. Returns the index of the residue entry in `out`, or
/// `out.size()` when every message is a complete frame. `out` is cleared
/// first.
std::size_t split_stream(Framing framing, ByteSpan stream,
                         std::vector<MessageRange>& out);

}  // namespace icsfuzz::session
