#include "session/tcp_backend.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "exec_oop/exec_protocol.hpp"
#include "exec_oop/shm_segment.hpp"
#include "inject/inject_protocol.hpp"
#include "session/framing.hpp"
#include "session/session_state.hpp"
#include "session/session_wire.hpp"

extern char** environ;

namespace icsfuzz::session {

namespace {

std::uint64_t monotonic_ms() {
  struct timespec ts {};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000000;
}

bool send_full(int fd, const std::uint8_t* data, std::size_t size) {
  while (size != 0) {
    const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        struct pollfd pfd {fd, POLLOUT, 0};
        ::poll(&pfd, 1, 100);
        continue;
      }
      return false;
    }
    data += sent;
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

class TcpSessionBackend final : public fuzz::ExecBackend {
 public:
  TcpSessionBackend(const fuzz::ExecBackendConfig& config,
                    bool dense_reference, telem::Sink telemetry)
      : options_(config.session),
        target_cmd_(config.target_cmd),
        preload_(config.preload),
        exec_timeout_ms_(config.exec_timeout_ms),
        handshake_timeout_ms_(config.handshake_timeout_ms),
        dense_(dense_reference),
        telemetry_(telemetry) {
    segment_ = oop::ShmSegment::create(kTcpSegmentBytes);
  }

  ~TcpSessionBackend() override { stop_server(/*orderly=*/true); }

  [[nodiscard]] fuzz::BackendKind kind() const override {
    return fuzz::BackendKind::kTcp;
  }

  [[nodiscard]] const SessionTraffic* traffic() const override {
    return options_.record_traffic ? &traffic_ : nullptr;
  }

  cov::TraceSummary execute(ProtocolTarget& /*target*/, ByteSpan packet,
                            cov::CoverageMap& map,
                            fuzz::ExecResult& result) override {
    const std::size_t residue_index =
        split_stream(options_.framing, packet, ranges_);
    responses_.resize(ranges_.size());
    if (options_.record_traffic) traffic_.clear();

    if (!ensure_server()) {
      return fail(map, result, san::FaultKind::Segv, "tcp-server-lost",
                  "tcp session server unreachable: " + last_error_);
    }

    // One wall-clock deadline spans the whole session (the out-of-process
    // analogue treats a session as one execution, and so does the hang
    // accounting here).
    const std::uint64_t deadline =
        exec_timeout_ms_ > 0
            ? monotonic_ms() + static_cast<std::uint64_t>(exec_timeout_ms_)
            : 0;
    const std::uint64_t base_served = served_seen_;

    const int conn = connect_deadline(deadline);
    if (conn < 0) {
      stop_server(/*orderly=*/false);
      return fail(map, result, san::FaultKind::Segv, "tcp-server-lost",
                  "tcp session connect failed: " + last_error_);
    }

    bool wrote_shutdown = false;
    for (std::size_t i = 0; i < ranges_.size(); ++i) {
      const std::uint8_t* data = packet.data() + ranges_[i].offset;
      const std::size_t length = ranges_[i].length;
      if (!send_full(conn, data, length)) {
        close_abortive(conn);
        stop_server(/*orderly=*/false);
        return fail(map, result, san::FaultKind::Segv, "tcp-server-lost",
                    "tcp session send failed");
      }
      if (i == residue_index) {
        // The server can only complete the residue at EOF — half-close
        // BEFORE waiting for its ack or the session deadlocks.
        ::shutdown(conn, SHUT_WR);
        wrote_shutdown = true;
      }
      if (!wait_counter(
              [&] { return sync_load_served(segment_.data()); },
              base_served + i + 1, deadline)) {
        close_abortive(conn);
        stop_server(/*orderly=*/false);
        return fail(map, result, san::FaultKind::Hang, "tcp-session-deadline",
                    "session exceeded the " +
                        std::to_string(exec_timeout_ms_) +
                        " ms tcp deadline");
      }
      const std::uint32_t len = sync_load_response_len(segment_.data());
      Bytes& response = responses_[i];
      response.resize(len);
      if (len != 0 &&
          oop::read_full_deadline(conn, response.data(), len,
                                  remaining_ms(deadline)) !=
              oop::ReadStatus::kOk) {
        close_abortive(conn);
        stop_server(/*orderly=*/false);
        return fail(map, result, san::FaultKind::Hang, "tcp-session-deadline",
                    "session response read missed the tcp deadline");
      }
    }
    if (!wrote_shutdown) ::shutdown(conn, SHUT_WR);
    if (!wait_counter(
            [&] { return sync_load_sessions_done(segment_.data()); },
            sessions_seen_ + 1, deadline)) {
      close_abortive(conn);
      stop_server(/*orderly=*/false);
      return fail(map, result, san::FaultKind::Hang, "tcp-session-deadline",
                  "session completion missed the tcp deadline");
    }
    ++sessions_seen_;
    served_seen_ = base_served + ranges_.size();
    close_abortive(conn);

    oop::AuxResult aux;
    if (!oop::aux_load(segment_.data() + oop::kAuxOffset, oop::kAuxBytes,
                       aux)) {
      stop_server(/*orderly=*/false);
      return fail(map, result, san::FaultKind::Segv, "tcp-server-lost",
                  "tcp session server published no aux block");
    }

    // Adopt the server's trace, inject the client-computed session-state
    // cells, then run the exact in-process analysis.
    map.adopt_external(reinterpret_cast<const std::uint64_t*>(
        segment_.data()));
    result.response.clear();
    result.session_states.clear();
    std::uint32_t state = kInitialSessionState;
    for (std::size_t i = 0; i < responses_.size(); ++i) {
      append(result.response, ByteSpan(responses_[i]));
      state = next_session_state(
          state, classify_response(options_.framing, ByteSpan(responses_[i])),
          i);
      result.session_states.push_back(state);
    }
    if (options_.state_coverage) {
      for (const std::uint32_t s : result.session_states) {
        map.bump_trace_cell(session_state_cell(s));
      }
    }
    if (options_.record_traffic) {
      for (std::size_t i = 0; i < ranges_.size(); ++i) {
        const std::uint8_t* data = packet.data() + ranges_[i].offset;
        traffic_.requests.emplace_back(data, data + ranges_[i].length);
        traffic_.responses.push_back(responses_[i]);
      }
    }
    result.session_messages = static_cast<std::uint32_t>(ranges_.size());

    const cov::TraceSummary summary =
        dense_ ? map.finalize_execution_dense() : map.finalize_execution();
    result.events = aux.events;
    result.faults.assign(aux.faults.begin(), aux.faults.end());
    result.response_truncated = false;
    if (aux.faults_truncated) {
      result.faults.push_back(san::FaultReport{
          san::FaultKind::Segv, san::site_id("oop-aux-faults-truncated"),
          "fault reports overflowed the shared-memory aux block"});
    }
    return summary;
  }

  [[nodiscard]] std::uint64_t server_restarts() const { return restarts_; }

 private:
  /// Transport failure: the map still runs one (empty) trace cycle so the
  /// campaign-lifetime analysis stays uniform, and the failure surfaces as
  /// a synthetic fault exactly like the fork-server transport's.
  cov::TraceSummary fail(cov::CoverageMap& map, fuzz::ExecResult& result,
                         san::FaultKind kind, const char* site,
                         std::string detail) {
    if (telemetry_.enabled()) {
      telemetry_.add(kind == san::FaultKind::Hang
                         ? telem::Counter::kOopHangs
                         : telem::Counter::kOopServerLost);
    }
    map.adopt_external(nullptr);
    const cov::TraceSummary summary =
        dense_ ? map.finalize_execution_dense() : map.finalize_execution();
    result.events = 0;
    result.faults.clear();
    result.faults.push_back(
        san::FaultReport{kind, san::site_id(site), std::move(detail)});
    result.response.clear();
    result.response_truncated = false;
    result.session_states.clear();
    result.session_messages = 0;
    return summary;
  }

  [[nodiscard]] int remaining_ms(std::uint64_t deadline) const {
    if (deadline == 0) return -1;
    const std::uint64_t now = monotonic_ms();
    return now >= deadline ? 0 : static_cast<int>(deadline - now);
  }

  /// Polls a shm counter up to the deadline: a short busy-spin for the
  /// common sub-millisecond reply, then a sleeping loop.
  template <typename Load>
  bool wait_counter(Load load, std::uint64_t expected,
                    std::uint64_t deadline) {
    for (int spin = 0; spin < 4096; ++spin) {
      if (load() >= expected) return true;
    }
    while (deadline == 0 || monotonic_ms() < deadline) {
      if (load() >= expected) return true;
      ::usleep(100);
    }
    return load() >= expected;
  }

  bool ensure_server() {
    if (server_pid_ > 0) return true;
    if (!segment_.valid()) {
      last_error_ = "shm segment: " + segment_.error();
      return false;
    }
    if (!segment_.named()) {
      last_error_ =
          "tcp session server needs a named shm segment (anonymous "
          "fallback cannot cross exec)";
      return false;
    }
    if (target_cmd_.empty()) {
      last_error_ = "no target_cmd configured";
      return false;
    }
    // Fresh server, fresh wire state: the sync counters restart at zero
    // with the new process, so the client's expectations must too.
    std::memset(segment_.data(), 0, kTcpSegmentBytes);
    served_seen_ = 0;
    sessions_seen_ = 0;

    int ctl_pipe[2];
    int st_pipe[2];
    if (::pipe2(ctl_pipe, O_CLOEXEC) != 0) {
      last_error_ = std::string("pipe2: ") + std::strerror(errno);
      return false;
    }
    if (::pipe2(st_pipe, O_CLOEXEC) != 0) {
      last_error_ = std::string("pipe2: ") + std::strerror(errno);
      ::close(ctl_pipe[0]);
      ::close(ctl_pipe[1]);
      return false;
    }

    // Materialize argv/envp before fork (same discipline as the fork
    // server: nothing between fork and exec may allocate).
    std::vector<std::string> env_store;
    for (char** env = environ; *env != nullptr; ++env) {
      const std::string_view entry(*env);
      if (entry.rfind("ICSFUZZ_OOP_SHM", 0) == 0) continue;
      // When spawning under the injection runtime, append_preload_env
      // provides these two itself (folding the inherited LD_PRELOAD in).
      if (!preload_.empty() && (entry.rfind("LD_PRELOAD=", 0) == 0 ||
                                entry.rfind("ICSFUZZ_INJECT_MODE=", 0) == 0)) {
        continue;
      }
      env_store.emplace_back(entry);
    }
    env_store.push_back(std::string(oop::kShmNameEnv) + "=" +
                        segment_.name());
    env_store.push_back(std::string(oop::kShmSizeEnv) + "=" +
                        std::to_string(segment_.size()));
    inject::append_preload_env(preload_, inject::kInjectModeTcp, env_store);
    std::vector<char*> envp;
    envp.reserve(env_store.size() + 1);
    for (std::string& entry : env_store) envp.push_back(entry.data());
    envp.push_back(nullptr);
    std::vector<char*> argv;
    argv.reserve(target_cmd_.size() + 1);
    for (std::string& arg : target_cmd_) argv.push_back(arg.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
      last_error_ = std::string("fork: ") + std::strerror(errno);
      ::close(ctl_pipe[0]);
      ::close(ctl_pipe[1]);
      ::close(st_pipe[0]);
      ::close(st_pipe[1]);
      return false;
    }
    if (pid == 0) {
      ::setpgid(0, 0);
      // Move the child-side ends clear of the protocol fd range before
      // landing them on kCtlFd/kStFd (an end could already occupy one).
      int ctl = ctl_pipe[0];
      int st = st_pipe[1];
      if (ctl < oop::kStFd + 1) ctl = ::fcntl(ctl, F_DUPFD, oop::kStFd + 1);
      if (st < oop::kStFd + 1) st = ::fcntl(st, F_DUPFD, oop::kStFd + 1);
      if (ctl < 0 || st < 0 || ::dup2(ctl, oop::kCtlFd) < 0 ||
          ::dup2(st, oop::kStFd) < 0) {
        ::_exit(127);
      }
      ::execvpe(argv[0], argv.data(), envp.data());
      ::_exit(127);
    }

    ::close(ctl_pipe[0]);
    ::close(st_pipe[1]);
    ctl_write_ = ctl_pipe[1];
    st_read_ = st_pipe[0];
    server_pid_ = pid;
    ++restarts_;
    if (telemetry_.enabled() && restarts_ > 1) {
      telemetry_.add(telem::Counter::kOopRestarts);
    }

    std::uint32_t hello[2] = {0, 0};
    if (oop::read_full_deadline(st_read_, hello, sizeof hello,
                                handshake_timeout_ms_) !=
            oop::ReadStatus::kOk ||
        hello[0] != oop::kTcpHelloMagic || hello[1] == 0 ||
        hello[1] > 0xFFFF) {
      last_error_ = "tcp session hello failed";
      stop_server(/*orderly=*/false);
      return false;
    }
    port_ = static_cast<std::uint16_t>(hello[1]);
    return true;
  }

  int connect_deadline(std::uint64_t deadline) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      last_error_ = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);
    const int flags = ::fcntl(fd, F_GETFL);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      if (errno != EINPROGRESS) {
        last_error_ = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
        return -1;
      }
      struct pollfd pfd {fd, POLLOUT, 0};
      if (::poll(&pfd, 1, remaining_ms(deadline)) <= 0) {
        last_error_ = "connect deadline";
        ::close(fd);
        return -1;
      }
      int soerr = 0;
      socklen_t len = sizeof soerr;
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
      if (soerr != 0) {
        last_error_ = std::string("connect: ") + std::strerror(soerr);
        ::close(fd);
        return -1;
      }
    }
    ::fcntl(fd, F_SETFL, flags);  // back to blocking for the send path
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);
    return fd;
  }

  /// RST close (SO_LINGER 0): one connection per session must not pile up
  /// TIME_WAIT entries at campaign execution rates.
  static void close_abortive(int fd) {
    struct linger lg {1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
    ::close(fd);
  }

  void stop_server(bool orderly) {
    if (ctl_write_ >= 0) {
      ::close(ctl_write_);  // EOF: the server's accept loop exits 0
      ctl_write_ = -1;
    }
    if (st_read_ >= 0) {
      ::close(st_read_);
      st_read_ = -1;
    }
    if (server_pid_ > 0) {
      if (orderly) {
        // Grace window for the EOF-triggered exit before the SIGKILL.
        for (int i = 0; i < 50; ++i) {
          if (::waitpid(server_pid_, nullptr, WNOHANG) == server_pid_) {
            server_pid_ = -1;
            return;
          }
          ::usleep(2000);
        }
      }
      ::kill(server_pid_, SIGKILL);
      while (::waitpid(server_pid_, nullptr, 0) < 0 && errno == EINTR) {
      }
      server_pid_ = -1;
    }
  }

  SessionOptions options_;
  std::vector<std::string> target_cmd_;
  std::string preload_;
  int exec_timeout_ms_;
  int handshake_timeout_ms_;
  bool dense_;
  telem::Sink telemetry_;

  oop::ShmSegment segment_;
  pid_t server_pid_ = -1;
  int ctl_write_ = -1;
  int st_read_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t served_seen_ = 0;
  std::uint64_t sessions_seen_ = 0;
  std::uint64_t restarts_ = 0;
  std::string last_error_;

  std::vector<MessageRange> ranges_;
  std::vector<Bytes> responses_;
  SessionTraffic traffic_;
};

}  // namespace

std::unique_ptr<fuzz::ExecBackend> make_tcp_session_backend(
    const fuzz::ExecBackendConfig& config, bool dense_reference,
    telem::Sink telemetry) {
  return std::make_unique<TcpSessionBackend>(config, dense_reference,
                                             telemetry);
}

}  // namespace icsfuzz::session
