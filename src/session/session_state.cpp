#include "session/session_state.hpp"

#include "coverage/instrument.hpp"
#include "session/framing.hpp"

namespace icsfuzz::session {

namespace {

/// Complete frames at the front of `response` (0, 1 or "2+"), stopping at
/// the first malformed header. `clean` reports whether the whole response
/// was consumed by complete frames.
std::size_t count_frames(Framing framing, ByteSpan response, bool& clean) {
  std::size_t offset = 0;
  std::size_t frames = 0;
  while (offset < response.size() && frames < 3) {
    std::size_t frame_size = 0;
    if (peek_frame(framing, response.data() + offset,
                   response.size() - offset, frame_size) != Peek::kFrame) {
      break;
    }
    offset += frame_size;
    ++frames;
  }
  clean = offset == response.size();
  return frames;
}

}  // namespace

ResponseClass classify_response(Framing framing, ByteSpan response) {
  if (response.empty()) return ResponseClass::kEmpty;
  bool clean = false;
  const std::size_t frames = count_frames(framing, response, clean);
  if (frames == 0 || !clean) return ResponseClass::kMalformed;
  if (framing == Framing::kApci) {
    // APCI format discriminator: control octet 1 (byte 2 of the frame).
    // LSB 0 = I-format, 01 = S-format, 11 = U-format.
    const std::uint8_t control = response.size() > 2 ? response[2] : 0;
    if ((control & 0x1) == 0) {
      return frames > 1 ? ResponseClass::kApciIMulti : ResponseClass::kApciI;
    }
    return (control & 0x3) == 0x3 ? ResponseClass::kApciU
                                  : ResponseClass::kApciS;
  }
  return frames > 1 ? ResponseClass::kMulti : ResponseClass::kSingle;
}

std::uint32_t next_session_state(std::uint32_t state, ResponseClass cls,
                                 std::size_t position) {
  const std::uint64_t pos = position < 31 ? position : 31;
  const std::uint64_t token =
      static_cast<std::uint64_t>(cls) | (pos << 8);
  const std::uint64_t mixed = mix64((static_cast<std::uint64_t>(state) << 16) ^
                                    token ^ 0x9E3779B97F4A7C15ULL);
  return static_cast<std::uint32_t>(mixed ^ (mixed >> 32));
}

std::uint32_t session_state_cell(std::uint32_t state) {
  return state & (cov::kMapSize - 1);
}

}  // namespace icsfuzz::session
