// TCP session transport backend (BackendKind::kTcp) — drives an external
// `icsfuzz-shim-target --tcp` session server over a real loopback socket.
//
// Per execution: the session stream is split into its canonical message
// list (framing.hpp — the same split the server's reassembler will
// reproduce from the segmented TCP stream), one connection is opened
// (one connection = one session), and each message is sent and its
// response read back in lockstep through the session_wire.hpp sync block.
// The server traces the whole session into the shared-memory map; the
// client adopts it (CoverageMap::adopt_external), injects the
// client-computed session-state cells, and runs the exact in-process
// analysis — which is what makes in-process vs over-TCP execution a
// differential oracle (tests/test_session.cpp).
#pragma once

#include <memory>

#include "fuzzer/exec_backend.hpp"

namespace icsfuzz::session {

std::unique_ptr<fuzz::ExecBackend> make_tcp_session_backend(
    const fuzz::ExecBackendConfig& config, bool dense_reference,
    telem::Sink telemetry);

}  // namespace icsfuzz::session
