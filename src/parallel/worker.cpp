#include "parallel/worker.hpp"

#include <cstdio>

namespace icsfuzz::par {

Worker::Worker(WorkerConfig config, std::unique_ptr<ProtocolTarget> target,
               const model::DataModelSet& models, SeedExchange& exchange)
    : config_(config),
      target_(std::move(target)),
      exchange_(exchange),
      fuzzer_(*target_, models, config.fuzzer),
      sync_rng_(config.fuzzer.rng_seed ^ 0x5EEDE8C4A06EULL) {}

void Worker::run(std::uint64_t iterations) {
  const telem::Sink& telemetry = config_.fuzzer.telemetry;
  if (telemetry.enabled()) {
    // Each worker owns its registry shard, so the per-shard 0/1 flag sums
    // to a live campaign-wide workers_running gauge on snapshot.
    telemetry.set(telem::Gauge::kWorkersRunning, 1);
    char detail[48];
    std::snprintf(detail, sizeof detail, "iterations=%llu",
                  static_cast<unsigned long long>(iterations));
    telemetry.event(telem::EventType::kWorkerStart, 0, detail);
  }
  const std::uint64_t interval = config_.sync_interval;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    fuzzer_.step_fast();
    if (interval != 0 && (i + 1) % interval == 0) {
      // The sync closing the final iteration is publish-only too: anything
      // imported here could never execute.
      sync(/*import_phase=*/i + 1 < iterations);
    }
  }
  // Final publish-only sync, unless the last loop iteration just did it.
  if (interval != 0 && iterations % interval != 0) {
    sync(/*import_phase=*/false);
  }
  fuzzer_.finish();
  if (telemetry.enabled()) {
    telemetry.set(telem::Gauge::kWorkersRunning, 0);
    char detail[48];
    std::snprintf(detail, sizeof detail, "executions=%llu paths=%zu",
                  static_cast<unsigned long long>(
                      fuzzer_.executor().executions()),
                  fuzzer_.path_count());
    telemetry.event(telem::EventType::kWorkerStop, 0, detail);
  }
}

void Worker::sync(bool import_phase) {
  ++syncs_;

  // Publish: fresh valuable seeds, the cracked-puzzle corpus, and the
  // accumulated coverage of this shard. The revision check skips the full
  // re-merge while the corpus is quiet between discoveries; once hot
  // buckets saturate their cap, replacement churn (local and global evict
  // different random victims) can keep revisions moving and force
  // re-merges — bounded at O(corpus) per sync, the pre-optimization cost.
  for (fuzz::RetainedSeed& seed : fuzzer_.drain_new_retained()) {
    if (exchange_.publish(config_.id, std::move(seed.bytes),
                          std::move(seed.model_name), seed.execution)) {
      ++published_;
    }
  }
  if (fuzzer_.corpus().revision() != published_corpus_revision_) {
    published_corpus_revision_ = fuzzer_.corpus().revision();
    exchange_.publish_puzzles(fuzzer_.corpus());
  }
  exchange_.merge_coverage(fuzzer_.executor().coverage(),
                           fuzzer_.executor().paths());

  // Import: peers' seeds are queued for execution (so their discoveries
  // enter this worker's map and corpus through the normal feedback loop),
  // and the global puzzle pool is folded into the local corpus directly.
  if (!import_phase || config_.worker_count <= 1) return;
  std::vector<ExchangeSeed> fresh;
  exchange_.pull(config_.id, cursor_, fresh);
  if (!fresh.empty() && config_.fuzzer.telemetry.enabled()) {
    char detail[48];
    std::snprintf(detail, sizeof detail, "seeds=%zu sync=%llu", fresh.size(),
                  static_cast<unsigned long long>(syncs_));
    config_.fuzzer.telemetry.event(telem::EventType::kSeedImport,
                                   content_hash(fresh.front().bytes), detail);
  }
  for (ExchangeSeed& seed : fresh) {
    fuzzer_.import_external_seed(std::move(seed.bytes));
    ++imported_;
  }
  const std::uint64_t global_revision = exchange_.puzzle_revision();
  if (global_revision != imported_global_revision_) {
    imported_global_revision_ = global_revision;
    puzzles_imported_ +=
        exchange_.import_puzzles(fuzzer_.mutable_corpus(), sync_rng_);
  }
}

}  // namespace icsfuzz::par
