#include "parallel/worker.hpp"

#include <signal.h>

#include <cstdio>

#include "exec_oop/fork_server.hpp"
#include "exec_oop/oop_executor.hpp"

namespace icsfuzz::par {

Worker::Worker(WorkerConfig config, std::unique_ptr<ProtocolTarget> target,
               const model::DataModelSet& models, SeedExchange& exchange)
    : config_(config),
      target_(std::move(target)),
      exchange_(exchange),
      fuzzer_(*target_, models, config.fuzzer),
      sync_rng_(config.fuzzer.rng_seed ^ 0x5EEDE8C4A06EULL) {}

void Worker::run(std::uint64_t iterations) {
  run_range(0, iterations, iterations);
}

void Worker::run_range(std::uint64_t begin, std::uint64_t end,
                       std::uint64_t total) {
  const telem::Sink& telemetry = config_.fuzzer.telemetry;
  if (telemetry.enabled()) {
    // Each worker owns its registry shard, so the per-shard 0/1 flag sums
    // to a live campaign-wide workers_running gauge on snapshot.
    telemetry.set(telem::Gauge::kWorkersRunning, 1);
    if (begin == 0) {
      char detail[48];
      std::snprintf(detail, sizeof detail, "iterations=%llu",
                    static_cast<unsigned long long>(total));
      telemetry.event(telem::EventType::kWorkerStart, 0, detail);
    }
  }
  const std::uint64_t interval = config_.sync_interval;
  // The sync schedule keys on the ABSOLUTE iteration index `i`, so a
  // campaign split into chunks visits the exchange at exactly the same
  // points as one uninterrupted run — the bit-for-bit resume oracle
  // depends on it.
  for (std::uint64_t i = begin; i < end; ++i) {
    fuzzer_.step_fast();
    progress_.fetch_add(1, std::memory_order_relaxed);
    if (interval != 0 && (i + 1) % interval == 0) {
      // The sync closing the final iteration is publish-only too: anything
      // imported here could never execute.
      sync(/*import_phase=*/i + 1 < total);
    }
  }
  if (end < total) return;  // mid-campaign chunk: stay quiescent
  // Final publish-only sync, unless the last loop iteration just did it.
  if (interval != 0 && total % interval != 0) {
    sync(/*import_phase=*/false);
  }
  fuzzer_.finish();
  if (telemetry.enabled()) {
    telemetry.set(telem::Gauge::kWorkersRunning, 0);
    char detail[48];
    std::snprintf(detail, sizeof detail, "executions=%llu paths=%zu",
                  static_cast<unsigned long long>(
                      fuzzer_.executor().executions()),
                  fuzzer_.path_count());
    telemetry.event(telem::EventType::kWorkerStop, 0, detail);
  }
}

WorkerState Worker::capture_state() const {
  WorkerState state;
  state.fuzzer = fuzzer_.capture_checkpoint();
  state.cursor_next = cursor_.next;
  state.sync_rng = sync_rng_.state();
  state.published = published_;
  state.imported = imported_;
  state.puzzles_imported = puzzles_imported_;
  state.syncs = syncs_;
  state.published_corpus_revision = published_corpus_revision_;
  state.imported_global_revision = imported_global_revision_;
  return state;
}

void Worker::restore_state(const WorkerState& state) {
  fuzzer_.restore_checkpoint(state.fuzzer);
  cursor_.next = state.cursor_next;
  sync_rng_.set_state(state.sync_rng);
  published_ = state.published;
  imported_ = state.imported;
  puzzles_imported_ = state.puzzles_imported;
  syncs_ = state.syncs;
  published_corpus_revision_ = state.published_corpus_revision;
  imported_global_revision_ = state.imported_global_revision;
  // The heartbeat resumes from the checkpointed position: the watchdog
  // only ever diffs progress, and a resumed worker's absolute count then
  // matches what an uninterrupted one would show.
  progress_.store(state.fuzzer.executions, std::memory_order_relaxed);
}

void Worker::kill_target_server() const {
  const oop::OutOfProcessExecutor* oop = fuzzer_.executor().oop_backend();
  if (oop == nullptr) return;
  const pid_t pid = oop->server().server_pid();
  // Group kill first: the server leads its own process group, so a wedged
  // in-flight exec child dies with it instead of pausing forever as an
  // orphan; the direct kill covers a server that died before setpgid took
  // effect. ESRCH (the server died on its own in the meantime) is harmless;
  // the executor reaps and respawns through its normal server-lost path
  // either way. Never reap here — the pid belongs to the executor.
  if (pid > 0) {
    ::kill(-pid, SIGKILL);
    ::kill(pid, SIGKILL);
  }
}

void Worker::sync(bool import_phase) {
  ++syncs_;

  // Publish: fresh valuable seeds, the cracked-puzzle corpus, and the
  // accumulated coverage of this shard. The revision check skips the full
  // re-merge while the corpus is quiet between discoveries; once hot
  // buckets saturate their cap, replacement churn (local and global evict
  // different random victims) can keep revisions moving and force
  // re-merges — bounded at O(corpus) per sync, the pre-optimization cost.
  for (fuzz::RetainedSeed& seed : fuzzer_.drain_new_retained()) {
    if (exchange_.publish(config_.id, std::move(seed.bytes),
                          std::move(seed.model_name), seed.execution)) {
      ++published_;
    }
  }
  if (fuzzer_.corpus().revision() != published_corpus_revision_) {
    published_corpus_revision_ = fuzzer_.corpus().revision();
    exchange_.publish_puzzles(fuzzer_.corpus());
  }
  exchange_.merge_coverage(fuzzer_.executor().coverage(),
                           fuzzer_.executor().paths());

  // Import: peers' seeds are queued for execution (so their discoveries
  // enter this worker's map and corpus through the normal feedback loop),
  // and the global puzzle pool is folded into the local corpus directly.
  if (!import_phase || config_.worker_count <= 1) return;
  std::vector<ExchangeSeed> fresh;
  exchange_.pull(config_.id, cursor_, fresh);
  if (!fresh.empty() && config_.fuzzer.telemetry.enabled()) {
    char detail[48];
    std::snprintf(detail, sizeof detail, "seeds=%zu sync=%llu", fresh.size(),
                  static_cast<unsigned long long>(syncs_));
    config_.fuzzer.telemetry.event(telem::EventType::kSeedImport,
                                   content_hash(fresh.front().bytes), detail);
  }
  for (ExchangeSeed& seed : fresh) {
    fuzzer_.import_external_seed(std::move(seed.bytes));
    ++imported_;
  }
  const std::uint64_t global_revision = exchange_.puzzle_revision();
  if (global_revision != imported_global_revision_) {
    imported_global_revision_ = global_revision;
    puzzles_imported_ +=
        exchange_.import_puzzles(fuzzer_.mutable_corpus(), sync_rng_);
  }
}

}  // namespace icsfuzz::par
