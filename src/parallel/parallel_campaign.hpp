// ParallelCampaign — runs one fuzzing campaign sharded across W worker
// threads with periodic corpus/coverage synchronization through a
// SeedExchange (the campaign-parallel architecture AFL-derived fuzzers use
// to occupy every core; the sequential engine of fuzzer.hpp is the W=1
// special case and is reproduced bit-for-bit).
//
// Topology:
//
//     TargetFactory ──► target #0 ─ Fuzzer #0 ─┐        (thread 0)
//                       target #1 ─ Fuzzer #1 ─┤─ SeedExchange
//                       ...                    │   ├ sharded seed store
//                       target #W-1 ─ ... ─────┘   ├ global CoverageMap
//                                                  └ global PuzzleCorpus
//
// Each worker's RNG seed derives deterministically from `base_seed`
// (worker.hpp), so a parallel campaign is reproducible up to OS thread
// interleaving of the sync points — and exactly reproducible at W=1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "distill/distill.hpp"
#include "fuzzer/campaign.hpp"
#include "parallel/worker.hpp"

namespace icsfuzz::par {

struct ParallelCampaignConfig {
  /// Worker threads (shards). 1 reproduces the sequential engine.
  std::size_t workers = 1;
  /// Executions per worker (total campaign work = workers * iterations).
  std::uint64_t iterations_per_worker = 20000;
  /// Base RNG seed; worker w fuzzes with worker_seed(base_seed, w).
  std::uint64_t base_seed = 1;
  /// Executions between exchange visits (0 = never sync).
  std::uint64_t sync_interval = 1024;
  /// Seed-store shards in the exchange.
  std::size_t exchange_shards = 8;
  /// Distill the campaign's pooled retained seeds after the workers
  /// finish: replays are sharded across `workers` threads and the greedy
  /// set-cover minimum lands in ParallelCampaignResult::distilled_corpus.
  bool distill_final = false;
  /// Per-worker fuzzer configuration (rng_seed is overridden per worker —
  /// and so is fuzzer.telemetry: worker w gets a sink bound to shard w of
  /// the hub `fuzzer.telemetry` points at, so the hot loops never share a
  /// cache line; a disabled sink here disables telemetry for the whole
  /// campaign). Set fuzzer.distill_interval to auto-distill each worker's
  /// retained pool mid-campaign as well.
  fuzz::FuzzerConfig fuzzer;
  /// Live telemetry export: when non-empty, a background thread rewrites
  /// metrics.json / metrics.prom / journal.jsonl under this directory
  /// every telemetry_export_ms while the workers run (atomic tmp+rename
  /// writes — `icsfuzz-stats <dir> --follow` tails it), plus one final
  /// export after the last worker stops. Ignored when telemetry is
  /// disabled.
  std::string telemetry_dir;
  int telemetry_export_ms = 1000;
};

/// Final tallies of one worker shard.
struct WorkerReport {
  std::size_t id = 0;
  std::uint64_t executions = 0;
  std::size_t paths = 0;
  std::size_t edges = 0;
  std::size_t unique_crashes = 0;
  std::size_t corpus_size = 0;
  std::size_t retained_seeds = 0;
  std::uint64_t seeds_published = 0;
  std::uint64_t seeds_imported = 0;
  std::uint64_t puzzles_imported = 0;
  std::vector<fuzz::Checkpoint> series;
};

struct ParallelCampaignResult {
  std::vector<WorkerReport> workers;
  /// Deduplicated campaign-wide coverage (merged across workers).
  std::size_t global_paths = 0;
  std::size_t global_edges = 0;
  std::uint64_t total_executions = 0;
  std::size_t seeds_published = 0;
  /// Vulnerabilities pooled across workers, deduplicated by (kind, site).
  fuzz::CrashDb pooled_crashes;
  /// Campaign-wide throughput series (sum_series over the workers).
  std::vector<fuzz::Checkpoint> throughput_series;
  /// The coverage-preserving minimum of the workers' pooled retained seeds
  /// (distill_final only; empty otherwise).
  std::vector<Bytes> distilled_corpus;
  /// Distillation tallies (zeroed unless distill_final).
  distill::CminStats distill_stats;
  double wall_seconds = 0.0;
  [[nodiscard]] double execs_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(total_executions) / wall_seconds
               : 0.0;
  }
};

class ParallelCampaign {
 public:
  /// `models` must outlive the campaign; `make_target` is invoked once per
  /// worker (each worker owns a private target instance).
  ParallelCampaign(fuzz::TargetFactory make_target,
                   const model::DataModelSet& models,
                   ParallelCampaignConfig config);

  /// Runs all workers to completion and aggregates the result. Blocking;
  /// spawns workers-1 threads (worker 0 runs on the calling thread).
  ParallelCampaignResult run();

  // -- Composable pieces (what run() is made of). The CampaignSupervisor
  // reuses them to drive the same workers in checkpointable chunks.

  /// The exchange configuration this campaign derives from its own
  /// (shard count, exchange RNG seed).
  [[nodiscard]] SeedExchangeConfig exchange_config() const;

  /// Constructs the W workers against `exchange`: one private target
  /// instance each, the deterministic per-worker RNG seed, and the
  /// telemetry sink rebound to worker w's registry shard.
  [[nodiscard]] std::vector<std::unique_ptr<Worker>> build_workers(
      SeedExchange& exchange) const;

  /// Aggregates finished workers into the campaign result: per-worker
  /// reports, pooled crash db, summed throughput series, global coverage
  /// from the exchange, and (when configured) the final distillation.
  /// Workers must be quiescent; for the stats/distill tallies to be final
  /// they must have completed their full iteration budget.
  [[nodiscard]] ParallelCampaignResult aggregate(
      const std::vector<std::unique_ptr<Worker>>& workers,
      SeedExchange& exchange, double wall_seconds) const;

  [[nodiscard]] const ParallelCampaignConfig& config() const {
    return config_;
  }

 private:
  fuzz::TargetFactory make_target_;
  const model::DataModelSet& models_;
  ParallelCampaignConfig config_;
};

}  // namespace icsfuzz::par
