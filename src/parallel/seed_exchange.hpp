// SeedExchange — the shared rendezvous of a parallel fuzzing campaign.
//
// Workers run independent Peach*/Peach/ByteMutation loops and meet here
// periodically (worker.hpp's sync step) to
//   * publish valuable seeds into a mutex-sharded, content-deduplicated
//     store that peers pull with per-shard cursors (no worker ever blocks
//     another for longer than one shard append),
//   * fold their accumulated CoverageMap / PathTracker into the campaign's
//     global view (the deduplicated "paths covered" number reported for the
//     whole campaign, cf. the per-campaign metric of the paper's §V), and
//   * swap cracked puzzles through a global PuzzleCorpus so one worker's
//     File Cracker discoveries feed every worker's semantic generation.
//
// All three surfaces are independently locked; a campaign with W=1 merely
// publishes into an exchange nobody reads, which keeps the single-worker
// campaign bit-for-bit identical to the sequential engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "coverage/coverage_map.hpp"
#include "coverage/path_tracker.hpp"
#include "fuzzer/corpus.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace icsfuzz::par {

/// One published valuable seed.
struct ExchangeSeed {
  Bytes bytes;
  std::string model_name;
  std::size_t origin_worker = 0;
  std::uint64_t origin_execution = 0;
};

struct SeedExchangeConfig {
  /// Number of independent seed shards (locks); more shards, less
  /// contention. Content hash picks the shard, so dedup stays global.
  std::size_t shards = 8;
  /// Seed for the global corpus' replacement decisions.
  std::uint64_t rng_seed = 0xC0FFEE;
};

class SeedExchange {
 public:
  explicit SeedExchange(SeedExchangeConfig config = {});

  /// A reader's per-shard positions. Value-initialized cursors start at the
  /// beginning (the first pull sees everything published so far).
  struct Cursor {
    std::vector<std::size_t> next;
  };

  /// Publishes one valuable seed. Returns false when an identical payload
  /// was already published by any worker (content dedup).
  bool publish(std::size_t worker, Bytes bytes, std::string model_name,
               std::uint64_t execution);

  /// Appends to `out` every seed published since `cursor` whose origin is
  /// not `worker`, advancing the cursor. Returns the number appended.
  std::size_t pull(std::size_t worker, Cursor& cursor,
                   std::vector<ExchangeSeed>& out) const;

  /// Lifetime count of accepted (non-duplicate) seeds.
  [[nodiscard]] std::size_t published_count() const {
    return published_.load(std::memory_order_relaxed);
  }

  // -- Global coverage. --

  /// Folds a worker's accumulated map and path set into the global view.
  void merge_coverage(const cov::CoverageMap& map,
                      const cov::PathTracker& paths);

  /// Deduplicated campaign-wide tallies (across all merges so far).
  [[nodiscard]] std::size_t global_edges() const;
  [[nodiscard]] std::size_t global_paths() const;

  // -- Global puzzle pool. --

  /// Folds a worker's puzzle corpus into the global pool.
  void publish_puzzles(const fuzz::PuzzleCorpus& corpus);

  /// Folds the global pool into `into` using `rng` for replacement victims
  /// (the caller's import RNG). Returns puzzles added to `into`.
  std::size_t import_puzzles(fuzz::PuzzleCorpus& into, Rng& rng) const;

  /// Mutation counter of the global pool; a worker whose last import saw
  /// this revision can skip the next import wholesale.
  [[nodiscard]] std::uint64_t puzzle_revision() const;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::vector<ExchangeSeed> seeds;
    std::unordered_set<std::uint64_t> hashes;  // content dedup
  };

  // unique_ptr because std::mutex is immovable and shard count is dynamic.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> published_{0};

  mutable std::mutex coverage_mutex_;
  cov::CoverageMap global_map_;
  cov::PathTracker global_paths_;

  mutable std::mutex puzzle_mutex_;
  fuzz::PuzzleCorpus global_corpus_;
  Rng corpus_rng_;
};

}  // namespace icsfuzz::par
