// Worker — one shard of a parallel fuzzing campaign.
//
// Each worker owns a private ProtocolTarget instance and a private Fuzzer
// (its own RNG stream, CoverageMap, PathTracker, puzzle corpus and crash
// db), so the hot fuzzing loop runs entirely without synchronization —
// coverage tracing and the fault sink are thread_local (instrument.hpp,
// fault.hpp). Every `sync_interval` executions the worker visits the
// SeedExchange to publish what it learned and import what its peers did.
//
// Determinism: worker w's RNG seed is derived as
//     seed(w) = base_seed + w * kWorkerSeedStride     (seed(0) == base_seed)
// so a one-worker campaign reproduces the sequential Fuzzer bit-for-bit:
// publishing reads only, nothing is ever imported (the pull skips the
// worker's own seeds), and unchanged corpus merges add nothing and draw no
// randomness.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "fuzzer/fuzzer.hpp"
#include "parallel/seed_exchange.hpp"
#include "protocols/protocol_target.hpp"

namespace icsfuzz::par {

/// Odd stride keeps distinct workers' xoshiro seeds distinct.
inline constexpr std::uint64_t kWorkerSeedStride = 0x9E3779B97F4A7C15ULL;

/// RNG seed for worker `id` of a campaign seeded with `base_seed`.
[[nodiscard]] constexpr std::uint64_t worker_seed(std::uint64_t base_seed,
                                                  std::size_t id) {
  return base_seed + static_cast<std::uint64_t>(id) * kWorkerSeedStride;
}

struct WorkerConfig {
  std::size_t id = 0;
  /// Total workers in the campaign. A solo worker still publishes (the
  /// exchange carries the campaign-wide tallies) but skips the import
  /// phase: with no peers there is nothing to pull, and skipping it keeps
  /// even pathological cases (re-importing a puzzle the worker itself
  /// evicted from a full bucket) from perturbing the sequential replay.
  std::size_t worker_count = 1;
  /// Executions between exchange visits. 0 disables syncing entirely.
  std::uint64_t sync_interval = 1024;
  /// Full fuzzer configuration; rng_seed must already be the worker seed.
  fuzz::FuzzerConfig fuzzer;
};

/// Everything a worker needs to continue a campaign after a process
/// restart: the fuzzer checkpoint plus the exchange cursor, the import-side
/// RNG and the sync bookkeeping. Captured between iterations only (see
/// Fuzzer::capture_checkpoint).
struct WorkerState {
  fuzz::FuzzerCheckpoint fuzzer;
  std::vector<std::size_t> cursor_next;
  Rng::State sync_rng{};
  std::uint64_t published = 0;
  std::uint64_t imported = 0;
  std::uint64_t puzzles_imported = 0;
  std::uint64_t syncs = 0;
  std::uint64_t published_corpus_revision = 0;
  std::uint64_t imported_global_revision = 0;
};

class Worker {
 public:
  /// `models` and `exchange` must outlive the worker; the target is owned.
  Worker(WorkerConfig config, std::unique_ptr<ProtocolTarget> target,
         const model::DataModelSet& models, SeedExchange& exchange);

  /// Runs `iterations` executions with periodic sync, then a final sync.
  /// Call on the worker's own thread (coverage tracing is thread-local).
  void run(std::uint64_t iterations);

  /// Runs iterations [begin, end) of a `total`-iteration campaign, with
  /// the sync schedule keyed on the absolute iteration index — executing a
  /// campaign in consecutive chunks is bit-identical to one run(total)
  /// call. The finishing chunk (end == total) performs the final
  /// publish-only sync and the fuzzer's finish() pass; earlier chunks
  /// leave the worker quiescent between iterations, which is exactly when
  /// capture_state() is legal.
  void run_range(std::uint64_t begin, std::uint64_t end, std::uint64_t total);

  /// Checkpoint/resume (between run_range chunks only).
  [[nodiscard]] WorkerState capture_state() const;
  void restore_state(const WorkerState& state);

  /// Iterations completed across all run/run_range calls — the watchdog's
  /// heartbeat. Readable from any thread while the worker runs.
  [[nodiscard]] std::uint64_t progress() const {
    return progress_.load(std::memory_order_relaxed);
  }

  /// Watchdog remediation: SIGKILLs the worker's fork server (if any), so
  /// a worker wedged inside a blocking transport read unblocks through the
  /// normal server-lost respawn path. Callable from another thread; no-op
  /// for in-process backends or when no server is up (a raced pid that
  /// just exited is harmless — the executor owns reaping).
  void kill_target_server() const;

  [[nodiscard]] const fuzz::Fuzzer& fuzzer() const { return fuzzer_; }
  [[nodiscard]] std::size_t id() const { return config_.id; }
  [[nodiscard]] std::uint64_t seeds_published() const { return published_; }
  [[nodiscard]] std::uint64_t seeds_imported() const { return imported_; }
  [[nodiscard]] std::uint64_t puzzles_imported() const {
    return puzzles_imported_;
  }
  [[nodiscard]] std::uint64_t syncs() const { return syncs_; }

 private:
  /// One exchange visit: publish retained seeds + puzzles + coverage, then
  /// (when `import_phase`) import peers' seeds and puzzles. The final visit
  /// of a run is publish-only — imported seeds could never execute, so
  /// pulling them would only inflate the import counters.
  void sync(bool import_phase);

  WorkerConfig config_;
  std::unique_ptr<ProtocolTarget> target_;
  SeedExchange& exchange_;
  fuzz::Fuzzer fuzzer_;
  SeedExchange::Cursor cursor_;
  /// RNG for import-side decisions, separate from the fuzzer's stream.
  Rng sync_rng_;

  std::uint64_t published_ = 0;
  std::uint64_t imported_ = 0;
  std::uint64_t puzzles_imported_ = 0;
  std::uint64_t syncs_ = 0;
  /// Corpus revisions seen at the last publish/import — unchanged revisions
  /// let a sync skip the O(corpus) re-merges entirely.
  std::uint64_t published_corpus_revision_ = 0;
  std::uint64_t imported_global_revision_ = 0;
  /// Lifetime iteration heartbeat (relaxed; written by the worker thread,
  /// read by the watchdog).
  std::atomic<std::uint64_t> progress_{0};
};

}  // namespace icsfuzz::par
