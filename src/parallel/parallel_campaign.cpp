#include "parallel/parallel_campaign.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <unordered_set>

#include "telemetry/export.hpp"

namespace icsfuzz::par {

ParallelCampaign::ParallelCampaign(fuzz::TargetFactory make_target,
                                   const model::DataModelSet& models,
                                   ParallelCampaignConfig config)
    : make_target_(std::move(make_target)), models_(models), config_(config) {
  if (config_.workers == 0) config_.workers = 1;
}

SeedExchangeConfig ParallelCampaign::exchange_config() const {
  SeedExchangeConfig exchange_config;
  exchange_config.shards = config_.exchange_shards;
  exchange_config.rng_seed = config_.base_seed ^ 0xC0FFEEULL;
  return exchange_config;
}

std::vector<std::unique_ptr<Worker>> ParallelCampaign::build_workers(
    SeedExchange& exchange) const {
  const telem::Sink campaign_sink = config_.fuzzer.telemetry;
  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    WorkerConfig worker_config;
    worker_config.id = w;
    worker_config.worker_count = config_.workers;
    worker_config.sync_interval = config_.sync_interval;
    worker_config.fuzzer = config_.fuzzer;
    worker_config.fuzzer.rng_seed = worker_seed(config_.base_seed, w);
    // Rebind the sink to worker w's shard of the same hub: shards are
    // single-writer by contract, and the configured sink (worker 0's by
    // default) must not be shared across threads.
    worker_config.fuzzer.telemetry =
        campaign_sink.enabled()
            ? telem::Sink(campaign_sink.hub(), static_cast<std::uint32_t>(w))
            : telem::Sink();
    workers.push_back(std::make_unique<Worker>(worker_config, make_target_(),
                                               models_, exchange));
  }
  return workers;
}

ParallelCampaignResult ParallelCampaign::aggregate(
    const std::vector<std::unique_ptr<Worker>>& workers,
    SeedExchange& exchange, double wall_seconds) const {
  ParallelCampaignResult result;
  result.wall_seconds = wall_seconds;
  std::vector<std::vector<fuzz::Checkpoint>> all_series;
  for (const std::unique_ptr<Worker>& worker : workers) {
    const fuzz::Fuzzer& fuzzer = worker->fuzzer();
    WorkerReport report;
    report.id = worker->id();
    report.executions = fuzzer.executor().executions();
    report.paths = fuzzer.path_count();
    report.edges = fuzzer.executor().edge_count();
    report.unique_crashes = fuzzer.crashes().unique_count();
    report.corpus_size = fuzzer.corpus().size();
    report.retained_seeds = fuzzer.retained_seeds().size();
    report.seeds_published = worker->seeds_published();
    report.seeds_imported = worker->seeds_imported();
    report.puzzles_imported = worker->puzzles_imported();
    report.series = fuzzer.stats().checkpoints();
    all_series.push_back(report.series);

    result.total_executions += report.executions;
    for (const fuzz::CrashRecord* record : fuzzer.crashes().records()) {
      result.pooled_crashes.record(
          san::FaultReport{record->kind, record->site, record->detail},
          record->reproducer, record->first_execution, record->trace_hash);
    }
    result.workers.push_back(std::move(report));
  }
  result.throughput_series = fuzz::sum_series(all_series);

  if (config_.sync_interval == 0) {
    // Workers never visited the exchange; fold their final maps here so the
    // global numbers are meaningful in the no-sync configuration too.
    for (const std::unique_ptr<Worker>& worker : workers) {
      exchange.merge_coverage(worker->fuzzer().executor().coverage(),
                              worker->fuzzer().executor().paths());
    }
  }
  result.global_paths = exchange.global_paths();
  result.global_edges = exchange.global_edges();
  result.seeds_published = exchange.published_count();

  if (config_.distill_final) {
    // Pool every worker's retained seeds (content-deduplicated, worker
    // order — deterministic because workers are visited in id order) and
    // keep the coverage-preserving minimum. Replays shard across the same
    // worker count the campaign ran with.
    std::vector<Bytes> pooled;
    std::unordered_set<std::uint64_t> seen;
    for (const std::unique_ptr<Worker>& worker : workers) {
      for (const fuzz::RetainedSeed& seed :
           worker->fuzzer().retained_seeds()) {
        if (seen.insert(content_hash(seed.bytes)).second) {
          pooled.push_back(seed.bytes);
        }
      }
    }
    distill::CminConfig distill_config;
    distill_config.workers = config_.workers;
    distill_config.executor = config_.fuzzer.executor;
    distill::CminResult distilled =
        distill::cmin(make_target_, pooled, distill_config);
    result.distilled_corpus = std::move(distilled.seeds);
    result.distill_stats = distilled.stats;
  }
  return result;
}

ParallelCampaignResult ParallelCampaign::run() {
  SeedExchange exchange(exchange_config());
  std::vector<std::unique_ptr<Worker>> workers = build_workers(exchange);
  const telem::Sink campaign_sink = config_.fuzzer.telemetry;

  if (campaign_sink.enabled()) {
    char detail[48];
    std::snprintf(detail, sizeof detail, "workers=%zu iterations=%llu",
                  config_.workers,
                  static_cast<unsigned long long>(
                      config_.iterations_per_worker));
    campaign_sink.event(telem::EventType::kCampaignStart, 0, detail);
  }

  // Live exporter: periodic atomic rewrites of the campaign directory
  // while the workers run. Its snapshot reads race only against relaxed
  // atomic counters, never against the workers' control flow.
  std::atomic<bool> stop_export{false};
  std::thread exporter;
  const bool live_export =
      campaign_sink.enabled() && !config_.telemetry_dir.empty();
  if (live_export) {
    exporter = std::thread([&] {
      telem::RateWindows rates;
      const int interval_ms =
          config_.telemetry_export_ms > 0 ? config_.telemetry_export_ms : 1000;
      while (!stop_export.load(std::memory_order_relaxed)) {
        telem::export_live(*campaign_sink.hub(), rates, config_.telemetry_dir);
        // Sleep in small slices so campaign teardown is prompt.
        for (int slept = 0;
             slept < interval_ms &&
             !stop_export.load(std::memory_order_relaxed);
             slept += 20) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      }
      telem::export_live(*campaign_sink.hub(), rates, config_.telemetry_dir);
    });
  }

  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(config_.workers - 1);
    for (std::size_t w = 1; w < config_.workers; ++w) {
      threads.emplace_back(
          [&, w] { workers[w]->run(config_.iterations_per_worker); });
    }
    workers[0]->run(config_.iterations_per_worker);
    for (std::thread& thread : threads) thread.join();
  }
  const auto stop = std::chrono::steady_clock::now();

  if (campaign_sink.enabled()) {
    campaign_sink.event(telem::EventType::kCampaignStop, 0, "workers-joined");
  }
  if (live_export) {
    stop_export.store(true, std::memory_order_relaxed);
    exporter.join();
  }

  return aggregate(workers, exchange,
                   std::chrono::duration<double>(stop - start).count());
}

}  // namespace icsfuzz::par
