#include "parallel/seed_exchange.hpp"

namespace icsfuzz::par {

SeedExchange::SeedExchange(SeedExchangeConfig config)
    : corpus_rng_(config.rng_seed) {
  const std::size_t count = config.shards == 0 ? 1 : config.shards;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool SeedExchange::publish(std::size_t worker, Bytes bytes,
                           std::string model_name, std::uint64_t execution) {
  const std::uint64_t hash = content_hash(bytes);
  Shard& shard = *shards_[hash % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (!shard.hashes.insert(hash).second) return false;  // already published
  shard.seeds.push_back(
      ExchangeSeed{std::move(bytes), std::move(model_name), worker, execution});
  published_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t SeedExchange::pull(std::size_t worker, Cursor& cursor,
                               std::vector<ExchangeSeed>& out) const {
  cursor.next.resize(shards_.size(), 0);
  std::size_t pulled = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (std::size_t i = cursor.next[s]; i < shard.seeds.size(); ++i) {
      if (shard.seeds[i].origin_worker == worker) continue;
      out.push_back(shard.seeds[i]);
      ++pulled;
    }
    cursor.next[s] = shard.seeds.size();
  }
  return pulled;
}

void SeedExchange::merge_coverage(const cov::CoverageMap& map,
                                  const cov::PathTracker& paths) {
  std::lock_guard<std::mutex> lock(coverage_mutex_);
  global_map_.merge(map);
  global_paths_.merge(paths);
}

std::size_t SeedExchange::global_edges() const {
  std::lock_guard<std::mutex> lock(coverage_mutex_);
  return global_map_.edges_covered();
}

std::size_t SeedExchange::global_paths() const {
  std::lock_guard<std::mutex> lock(coverage_mutex_);
  return global_paths_.path_count();
}

void SeedExchange::publish_puzzles(const fuzz::PuzzleCorpus& corpus) {
  std::lock_guard<std::mutex> lock(puzzle_mutex_);
  global_corpus_.merge_from(corpus, corpus_rng_);
}

std::size_t SeedExchange::import_puzzles(fuzz::PuzzleCorpus& into,
                                         Rng& rng) const {
  std::lock_guard<std::mutex> lock(puzzle_mutex_);
  return into.merge_from(global_corpus_, rng);
}

std::uint64_t SeedExchange::puzzle_revision() const {
  std::lock_guard<std::mutex> lock(puzzle_mutex_);
  return global_corpus_.revision();
}

}  // namespace icsfuzz::par
