#include "util/checksum.hpp"

#include <array>

namespace icsfuzz {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint16_t, 256> make_crc16_table(std::uint16_t poly) {
  std::array<std::uint16_t, 256> table{};
  for (std::uint16_t i = 0; i < 256; ++i) {
    std::uint16_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? static_cast<std::uint16_t>(poly ^ (c >> 1))
                   : static_cast<std::uint16_t>(c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();
const std::array<std::uint16_t, 256> kCrc16ModbusTable = make_crc16_table(0xA001);
const std::array<std::uint16_t, 256> kCrc16Dnp3Table = make_crc16_table(0xA6BC);

}  // namespace

std::uint32_t crc32(ByteSpan data) {
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::uint8_t byte : data) {
    crc = kCrc32Table[(crc ^ byte) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

std::uint16_t crc16_modbus(ByteSpan data) {
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t byte : data) {
    crc = static_cast<std::uint16_t>(kCrc16ModbusTable[(crc ^ byte) & 0xFFU] ^
                                     (crc >> 8));
  }
  return crc;
}

std::uint16_t crc16_dnp3(ByteSpan data) {
  std::uint16_t crc = 0x0000;
  for (std::uint8_t byte : data) {
    crc = static_cast<std::uint16_t>(kCrc16Dnp3Table[(crc ^ byte) & 0xFFU] ^
                                     (crc >> 8));
  }
  return static_cast<std::uint16_t>(~crc);
}

std::uint8_t lrc8(ByteSpan data) {
  std::uint8_t sum = 0;
  for (std::uint8_t byte : data) sum = static_cast<std::uint8_t>(sum + byte);
  return static_cast<std::uint8_t>(-sum);
}

std::uint8_t sum8(ByteSpan data) {
  std::uint8_t sum = 0;
  for (std::uint8_t byte : data) sum = static_cast<std::uint8_t>(sum + byte);
  return sum;
}

std::uint16_t fletcher16(ByteSpan data) {
  std::uint16_t a = 0;
  std::uint16_t b = 0;
  for (std::uint8_t byte : data) {
    a = static_cast<std::uint16_t>((a + byte) % 255);
    b = static_cast<std::uint16_t>((b + a) % 255);
  }
  return static_cast<std::uint16_t>((b << 8) | a);
}

}  // namespace icsfuzz
