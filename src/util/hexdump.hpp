// Human-readable byte rendering for crash reports, examples and logging.
#pragma once

#include <string>

#include "util/bytes.hpp"

namespace icsfuzz {

/// Compact lowercase hex string, e.g. "0001fa".
std::string to_hex(ByteSpan data);

/// Parses a compact hex string; ignores whitespace. Returns empty on any
/// non-hex character or odd digit count.
Bytes from_hex(std::string_view hex);

/// Classic 16-bytes-per-row dump with offsets and ASCII gutter.
std::string hexdump(ByteSpan data);

}  // namespace icsfuzz
