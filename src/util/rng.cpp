#include "util/rng.hpp"

namespace icsfuzz {
namespace {

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t draw = next_u64();
    if (draw >= threshold) return draw % bound;
  }
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) {
  if (hi <= lo) return lo;
  return lo + below(hi - lo + 1);
}

bool Rng::chance(std::uint64_t numerator, std::uint64_t denominator) {
  if (denominator == 0) return false;
  return below(denominator) < numerator;
}

std::uint8_t Rng::byte() { return static_cast<std::uint8_t>(next_u64() & 0xFF); }

double Rng::unit() {
  return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

std::vector<std::uint8_t> Rng::bytes(std::size_t length) {
  std::vector<std::uint8_t> out(length);
  for (auto& b : out) b = byte();
  return out;
}

}  // namespace icsfuzz
