// Minimal JSON support for the telemetry exporters and the stats CLI: a
// recursive-descent parser over the subset the repo emits (objects,
// arrays, strings with escapes, numbers, booleans, null) plus the escape
// helper the writers share. No external dependencies.
//
// Numbers keep an exact-integer side channel: JSON has only doubles, but
// telemetry counters and 64-bit hashes must round-trip exactly, so integer
// literals that fit a uint64 are stored losslessly alongside the double.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace icsfuzz {

struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  /// Exact value for non-negative integer literals that fit 64 bits
  /// (is_u64 set); `number` holds the rounded double either way.
  std::uint64_t u64 = 0;
  bool is_u64 = false;
  std::string string;
  std::vector<JsonValue> items;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> members;   // kObject

  /// Object member lookup (nullptr when absent or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
};

/// Parses one JSON document (nullopt on malformed input or trailing junk).
std::optional<JsonValue> json_parse(std::string_view text);

/// Escapes `text` for embedding inside a JSON string literal (no quotes).
std::string json_escape(std::string_view text);

}  // namespace icsfuzz
