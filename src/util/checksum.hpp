// Checksum / CRC algorithms used by the ICS protocol stacks and by the data
// model Fixup mechanism (the paper's Crc32Fixup et al.).
//
// Each algorithm here corresponds to a wire format in one of the evaluated
// protocols: CRC-16/Modbus for Modbus RTU framing, the DNP3 block CRC for the
// DNP3 link layer, LRC for Modbus ASCII, and CRC-32 for the paper's running
// Crc32Fixup example.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace icsfuzz {

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320), as used by Crc32Fixup.
std::uint32_t crc32(ByteSpan data);

/// CRC-16/Modbus (poly 0xA001 reflected, init 0xFFFF).
std::uint16_t crc16_modbus(ByteSpan data);

/// DNP3 CRC (poly 0xA6BC reflected, init 0x0000, final complement).
std::uint16_t crc16_dnp3(ByteSpan data);

/// Longitudinal redundancy check: two's complement of the byte sum
/// (Modbus ASCII framing).
std::uint8_t lrc8(ByteSpan data);

/// Plain modulo-256 byte sum.
std::uint8_t sum8(ByteSpan data);

/// Fletcher-16 checksum (used by the synthetic example protocol).
std::uint16_t fletcher16(ByteSpan data);

}  // namespace icsfuzz
