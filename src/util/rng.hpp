// Deterministic pseudo-random source for the fuzzing engines.
//
// xoshiro256** — fast, high-quality, and (critically for reproducible
// experiments) fully determined by its 64-bit seed. Every stochastic choice
// in the fuzzers flows through an Rng instance so campaigns can be repeated
// bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace icsfuzz {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform in [0, bound); returns 0 when bound == 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli draw with probability numerator/denominator.
  bool chance(std::uint64_t numerator, std::uint64_t denominator);

  /// Uniform byte.
  std::uint8_t byte();

  /// Uniform double in [0, 1).
  double unit();

  /// Picks a uniformly random element index for a container of `size`.
  std::size_t index(std::size_t size) { return static_cast<std::size_t>(below(size)); }

  /// Picks a reference to a random element (container must be non-empty).
  template <typename Container>
  auto& pick(Container& items) {
    return items[index(items.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Random byte string of exactly `length` bytes.
  std::vector<std::uint8_t> bytes(std::size_t length);

  /// The full xoshiro256** state, for checkpoint/resume. Restoring the
  /// four words with set_state() continues the stream exactly where the
  /// captured instance left off.
  struct State {
    std::uint64_t words[4];
  };
  [[nodiscard]] State state() const {
    return State{{state_[0], state_[1], state_[2], state_[3]}};
  }
  void set_state(const State& state) {
    for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace icsfuzz
