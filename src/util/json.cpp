#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace icsfuzz {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse() {
    skip_ws();
    JsonValue value;
    if (!parse_value(value)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing junk
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(char expected) {
    if (at_end() || text_[pos_] != expected) return false;
    ++pos_;
    return true;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  // Depth-bounded so hostile input cannot overflow the stack.
  bool parse_value(JsonValue& out, int depth = 0) {
    if (depth > 64 || at_end()) return false;
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return consume_word("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return consume_word("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return consume_word("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.items.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  /// Four hex digits at pos_ → `code`; advances past them.
  bool parse_hex4(unsigned& code) {
    if (pos_ + 4 > text_.size()) return false;
    code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else return false;
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (!at_end()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // \uXXXX: decode to UTF-8. A high surrogate must be followed by
          // \uXXXX with a low surrogate (the pair decodes to one
          // supplementary-plane code point); a lone surrogate either way
          // is a parse error, never emitted as raw surrogate-encoded
          // bytes (invalid UTF-8 that downstream consumers would choke
          // on).
          unsigned code = 0;
          if (!parse_hex4(code)) return false;
          if (code >= 0xDC00 && code <= 0xDFFF) return false;  // lone low
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return false;  // high surrogate with no \uXXXX after it
            }
            pos_ += 2;
            unsigned low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) return false;
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    bool integral = true;
    while (!at_end()) {
      const char c = peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return false;
    const std::string literal(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(literal.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    if (integral && literal[0] != '-') {
      errno = 0;
      char* uend = nullptr;
      const unsigned long long exact =
          std::strtoull(literal.c_str(), &uend, 10);
      if (errno == 0 && uend != nullptr && *uend == '\0') {
        out.u64 = exact;
        out.is_u64 = true;
      }
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::optional<JsonValue> json_parse(std::string_view text) {
  return Parser(text).parse();
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace icsfuzz
