#include "util/strings.hpp"

#include <cctype>

namespace icsfuzz {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<std::uint64_t> parse_uint(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  std::uint64_t base = 10;
  if (starts_with(text, "0x") || starts_with(text, "0X")) {
    base = 16;
    text.remove_prefix(2);
    if (text.empty()) return std::nullopt;
  }
  std::uint64_t value = 0;
  for (char c : text) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (base == 16 && c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
    if (digit >= base) return std::nullopt;
    value = value * base + digit;
  }
  return value;
}

std::optional<bool> parse_bool(std::string_view text) {
  const std::string lowered = to_lower(trim(text));
  if (lowered == "true" || lowered == "1") return true;
  if (lowered == "false" || lowered == "0") return false;
  return std::nullopt;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace icsfuzz
