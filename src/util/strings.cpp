#include "util/strings.hpp"

#include <cctype>

namespace icsfuzz {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<std::uint64_t> parse_uint(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  std::uint64_t base = 10;
  if (starts_with(text, "0x") || starts_with(text, "0X")) {
    base = 16;
    text.remove_prefix(2);
    if (text.empty()) return std::nullopt;
  }
  std::uint64_t value = 0;
  for (char c : text) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (base == 16 && c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
    if (digit >= base) return std::nullopt;
    value = value * base + digit;
  }
  return value;
}

namespace {

void set_parse_error(std::string* error, std::string_view what,
                     std::string_view text, std::string_view reason) {
  if (error == nullptr) return;
  error->assign(what);
  *error += ": ";
  *error += reason;
  *error += " ('";
  error->append(text);
  *error += "')";
}

}  // namespace

std::optional<std::uint64_t> parse_u64(std::string_view text,
                                       std::string_view what,
                                       std::string* error) {
  const std::string_view raw = text;
  text = trim(text);
  if (text.empty()) {
    set_parse_error(error, what, raw, "expected a decimal integer, got");
    return std::nullopt;
  }
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      set_parse_error(error, what, raw, "expected a decimal integer, got");
      return std::nullopt;
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      set_parse_error(error, what, raw, "value does not fit in 64 bits");
      return std::nullopt;
    }
    value = value * 10 + digit;
  }
  return value;
}

std::optional<std::int64_t> parse_int(std::string_view text,
                                      std::string_view what,
                                      std::string* error) {
  const std::string_view raw = text;
  text = trim(text);
  bool negative = false;
  if (!text.empty() && (text.front() == '-' || text.front() == '+')) {
    negative = text.front() == '-';
    text.remove_prefix(1);
  }
  const std::optional<std::uint64_t> magnitude = parse_u64(text, what, error);
  if (!magnitude.has_value()) {
    // parse_u64 reported against the stripped text; rewrite with the raw
    // input so the message shows what the user actually typed.
    set_parse_error(error, what, raw, "expected a decimal integer, got");
    return std::nullopt;
  }
  const std::uint64_t limit =
      negative ? (static_cast<std::uint64_t>(INT64_MAX) + 1)
               : static_cast<std::uint64_t>(INT64_MAX);
  if (*magnitude > limit) {
    set_parse_error(error, what, raw, "value does not fit in 64 bits");
    return std::nullopt;
  }
  if (!negative) return static_cast<std::int64_t>(*magnitude);
  if (*magnitude == limit) return INT64_MIN;
  return -static_cast<std::int64_t>(*magnitude);
}

std::optional<bool> parse_bool(std::string_view text) {
  const std::string lowered = to_lower(trim(text));
  if (lowered == "true" || lowered == "1") return true;
  if (lowered == "false" || lowered == "0") return false;
  return std::nullopt;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace icsfuzz
