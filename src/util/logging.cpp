#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace icsfuzz {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_line(LogLevel level, const std::string& message) {
  std::string line = "[icsfuzz ";
  line += level_tag(level);
  line += "] ";
  line += message;
  line += "\n";
  std::fputs(line.c_str(), stderr);
}

}  // namespace icsfuzz
