// Byte-level primitives shared by every layer of icsfuzz.
//
// `Bytes` is the universal packet currency (a plain std::vector<uint8_t>).
// `ByteReader` / `ByteWriter` provide bounds-checked, endian-aware cursor
// access; the reader reports truncation through its `ok()` state instead of
// throwing, because protocol parsers routinely probe past the end of
// malformed packets and must recover cheaply.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace icsfuzz {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Byte order for multi-byte integer fields.
enum class Endian : std::uint8_t { Big, Little };

/// Returns a Bytes copy of an arbitrary string (useful for ASCII fields).
Bytes to_bytes(std::string_view text);

/// Returns the contents of `span` as a std::string (lossy for non-ASCII).
std::string to_string(ByteSpan span);

/// Concatenates `tail` onto `head` in place.
void append(Bytes& head, ByteSpan tail);

/// 64-bit FNV-1a content hash (finalized with the length) — the shared
/// dedup key of the puzzle corpus and the parallel seed exchange. Both
/// must agree on this function or cross-component dedup drifts.
std::uint64_t content_hash(ByteSpan data);

/// Stateless splitmix64 finalizer: the shared 64-bit scrambler behind the
/// order-insensitive set fingerprints (coverage trace hash, replay path
/// fingerprint).
std::uint64_t mix64(std::uint64_t value);

/// A non-owning, bounds-checked forward cursor over a byte span.
///
/// All `read_*` calls return a value and clear `ok()` on underrun; once the
/// reader is !ok() every further read returns 0/empty. This "sticky failure"
/// model lets parsers chain reads and test validity once.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }
  [[nodiscard]] bool at_end() const { return pos_ >= data_.size(); }

  /// Reads one byte; clears ok() when exhausted.
  std::uint8_t read_u8();

  /// Reads an unsigned integer of `width` bytes (1..8) in the given order.
  std::uint64_t read_uint(std::size_t width, Endian endian);

  std::uint16_t read_u16(Endian endian);
  std::uint32_t read_u32(Endian endian);

  /// Reads exactly `count` bytes; returns an empty vector and clears ok()
  /// when fewer remain.
  Bytes read_bytes(std::size_t count);

  /// Returns all remaining bytes (possibly empty) and advances to the end.
  Bytes read_rest();

  /// Non-allocating read_rest: a view of the remaining bytes, advancing to
  /// the end. The span aliases the reader's underlying buffer.
  ByteSpan rest_span();

  /// Peeks one byte at `offset` from the cursor without advancing.
  /// Clears ok() if out of range.
  std::uint8_t peek_u8(std::size_t offset = 0);

  /// Skips `count` bytes; clears ok() on underrun.
  void skip(std::size_t count);

 private:
  ByteSpan data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// An appending, endian-aware byte sink used by packet builders and fixups.
class ByteWriter {
 public:
  ByteWriter() = default;

  void write_u8(std::uint8_t value);
  void write_uint(std::uint64_t value, std::size_t width, Endian endian);
  void write_u16(std::uint16_t value, Endian endian);
  void write_u32(std::uint32_t value, Endian endian);
  void write_bytes(ByteSpan data);
  void write_string(std::string_view text);

  /// Appends each argument as one byte (truncated to 8 bits) — the
  /// allocation-free replacement for write_bytes(Bytes{...}) literals.
  template <typename... Ts>
  void write_u8s(Ts... values) {
    (write_u8(static_cast<std::uint8_t>(values)), ...);
  }

  /// Overwrites `width` bytes starting at `offset` (must already exist).
  /// Returns false when the patch range is out of bounds.
  bool patch_uint(std::size_t offset, std::uint64_t value, std::size_t width,
                  Endian endian);

  /// Drops the contents but keeps the capacity — the reuse primitive of
  /// the allocation-free server hot paths.
  void clear() { out_.clear(); }

  /// Shrinks back to `size` bytes (no-op when already smaller) — lets a
  /// builder abandon a partially-written tail without reallocating.
  void truncate(std::size_t size) {
    if (size < out_.size()) out_.resize(size);
  }

  [[nodiscard]] std::size_t size() const { return out_.size(); }
  [[nodiscard]] const Bytes& bytes() const { return out_; }
  [[nodiscard]] ByteSpan span() const { return ByteSpan(out_); }
  Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

/// Encodes `value` as `width` bytes with the requested byte order.
Bytes encode_uint(std::uint64_t value, std::size_t width, Endian endian);

/// Decodes `span` (1..8 bytes) as an unsigned integer; returns 0 for empty.
std::uint64_t decode_uint(ByteSpan span, Endian endian);

}  // namespace icsfuzz
