// Small string helpers used by the pit parser and report emitters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace icsfuzz {

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Case-sensitive prefix/suffix tests.
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Lowercases ASCII.
std::string to_lower(std::string_view text);

/// Parses a decimal or 0x-prefixed hex unsigned integer.
std::optional<std::uint64_t> parse_uint(std::string_view text);

/// Strict checked parse of a decimal unsigned integer for CLI/env input:
/// the whole (trimmed) string must be digits and the value must fit in 64
/// bits — "12abc", "", "-3" and overflowing values are all rejected, unlike
/// atoi/strtoull which silently return 0 or saturate. On failure `error`
/// (when non-null) receives a human-readable reason mentioning `what`.
std::optional<std::uint64_t> parse_u64(std::string_view text,
                                       std::string_view what = "value",
                                       std::string* error = nullptr);

/// Strict checked parse of a decimal signed integer (optional leading '-'),
/// same contract as parse_u64.
std::optional<std::int64_t> parse_int(std::string_view text,
                                      std::string_view what = "value",
                                      std::string* error = nullptr);

/// Parses a boolean: "true"/"false"/"1"/"0" (case-insensitive).
std::optional<bool> parse_bool(std::string_view text);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace icsfuzz
