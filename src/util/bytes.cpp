#include "util/bytes.hpp"

#include <algorithm>

namespace icsfuzz {

Bytes to_bytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string to_string(ByteSpan span) {
  return std::string(span.begin(), span.end());
}

void append(Bytes& head, ByteSpan tail) {
  head.insert(head.end(), tail.begin(), tail.end());
}

std::uint64_t content_hash(ByteSpan data) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (std::uint8_t byte : data) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  }
  return hash ^ data.size();
}

std::uint64_t mix64(std::uint64_t value) {
  value += 0x9E3779B97F4A7C15ULL;
  value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9ULL;
  value = (value ^ (value >> 27)) * 0x94D049BB133111EBULL;
  return value ^ (value >> 31);
}

std::uint8_t ByteReader::read_u8() {
  if (!ok_ || pos_ >= data_.size()) {
    ok_ = false;
    return 0;
  }
  return data_[pos_++];
}

std::uint64_t ByteReader::read_uint(std::size_t width, Endian endian) {
  if (width == 0 || width > 8 || !ok_ || remaining() < width) {
    ok_ = false;
    return 0;
  }
  std::uint64_t value = 0;
  if (endian == Endian::Big) {
    for (std::size_t i = 0; i < width; ++i) {
      value = (value << 8) | data_[pos_ + i];
    }
  } else {
    for (std::size_t i = width; i > 0; --i) {
      value = (value << 8) | data_[pos_ + i - 1];
    }
  }
  pos_ += width;
  return value;
}

std::uint16_t ByteReader::read_u16(Endian endian) {
  return static_cast<std::uint16_t>(read_uint(2, endian));
}

std::uint32_t ByteReader::read_u32(Endian endian) {
  return static_cast<std::uint32_t>(read_uint(4, endian));
}

Bytes ByteReader::read_bytes(std::size_t count) {
  if (!ok_ || remaining() < count) {
    ok_ = false;
    return {};
  }
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
  pos_ += count;
  return out;
}

Bytes ByteReader::read_rest() {
  if (!ok_) return {};
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_), data_.end());
  pos_ = data_.size();
  return out;
}

ByteSpan ByteReader::rest_span() {
  if (!ok_) return {};
  const ByteSpan rest = data_.subspan(pos_);
  pos_ = data_.size();
  return rest;
}

std::uint8_t ByteReader::peek_u8(std::size_t offset) {
  if (!ok_ || pos_ + offset >= data_.size()) {
    ok_ = false;
    return 0;
  }
  return data_[pos_ + offset];
}

void ByteReader::skip(std::size_t count) {
  if (!ok_ || remaining() < count) {
    ok_ = false;
    return;
  }
  pos_ += count;
}

void ByteWriter::write_u8(std::uint8_t value) { out_.push_back(value); }

void ByteWriter::write_uint(std::uint64_t value, std::size_t width,
                            Endian endian) {
  // Bytes go straight into the output vector (no encode_uint temporary):
  // the server hot paths rely on the writer staying allocation-free once
  // its capacity has converged.
  if (width == 0 || width > 8) return;
  if (endian == Endian::Big) {
    for (std::size_t i = width; i > 0; --i) {
      out_.push_back(static_cast<std::uint8_t>(value >> (8 * (i - 1))));
    }
  } else {
    for (std::size_t i = 0; i < width; ++i) {
      out_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }
}

void ByteWriter::write_u16(std::uint16_t value, Endian endian) {
  write_uint(value, 2, endian);
}

void ByteWriter::write_u32(std::uint32_t value, Endian endian) {
  write_uint(value, 4, endian);
}

void ByteWriter::write_bytes(ByteSpan data) { append(out_, data); }

void ByteWriter::write_string(std::string_view text) {
  out_.insert(out_.end(), text.begin(), text.end());
}

bool ByteWriter::patch_uint(std::size_t offset, std::uint64_t value,
                            std::size_t width, Endian endian) {
  if (width == 0 || width > 8 || offset + width > out_.size()) return false;
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t shift =
        8 * (endian == Endian::Big ? width - 1 - i : i);
    out_[offset + i] = static_cast<std::uint8_t>(value >> shift);
  }
  return true;
}

Bytes encode_uint(std::uint64_t value, std::size_t width, Endian endian) {
  if (width == 0 || width > 8) return {};
  Bytes out(width);
  if (endian == Endian::Big) {
    for (std::size_t i = 0; i < width; ++i) {
      out[width - 1 - i] = static_cast<std::uint8_t>(value >> (8 * i));
    }
  } else {
    for (std::size_t i = 0; i < width; ++i) {
      out[i] = static_cast<std::uint8_t>(value >> (8 * i));
    }
  }
  return out;
}

std::uint64_t decode_uint(ByteSpan span, Endian endian) {
  if (span.empty() || span.size() > 8) return 0;
  std::uint64_t value = 0;
  if (endian == Endian::Big) {
    for (std::uint8_t byte : span) value = (value << 8) | byte;
  } else {
    for (std::size_t i = span.size(); i > 0; --i) {
      value = (value << 8) | span[i - 1];
    }
  }
  return value;
}

}  // namespace icsfuzz
