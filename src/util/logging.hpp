// Minimal leveled logger. Campaigns run millions of executions, so the
// default level is Warn; benches and examples raise it explicitly.
#pragma once

#include <sstream>
#include <string>

namespace icsfuzz {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr with a level tag. Thread-compatible (single
/// writer per line via local buffering).
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() {
    if (level_ >= log_level()) log_line(level_, stream_.str());
  }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

#define ICSFUZZ_LOG_DEBUG ::icsfuzz::detail::LogStream(::icsfuzz::LogLevel::Debug)
#define ICSFUZZ_LOG_INFO ::icsfuzz::detail::LogStream(::icsfuzz::LogLevel::Info)
#define ICSFUZZ_LOG_WARN ::icsfuzz::detail::LogStream(::icsfuzz::LogLevel::Warn)
#define ICSFUZZ_LOG_ERROR ::icsfuzz::detail::LogStream(::icsfuzz::LogLevel::Error)

}  // namespace icsfuzz
