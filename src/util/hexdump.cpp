#include "util/hexdump.hpp"

#include <array>
#include <cctype>

namespace icsfuzz {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(ByteSpan data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t byte : data) {
    out.push_back(kHexDigits[byte >> 4]);
    out.push_back(kHexDigits[byte & 0xF]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  Bytes out;
  int high = -1;
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    const int value = hex_value(c);
    if (value < 0) return {};
    if (high < 0) {
      high = value;
    } else {
      out.push_back(static_cast<std::uint8_t>((high << 4) | value));
      high = -1;
    }
  }
  if (high >= 0) return {};
  return out;
}

std::string hexdump(ByteSpan data) {
  std::string out;
  for (std::size_t row = 0; row < data.size(); row += 16) {
    // Offset column.
    std::array<char, 9> offset{};
    for (int i = 7; i >= 0; --i) {
      offset[static_cast<std::size_t>(7 - i)] =
          kHexDigits[(row >> (4 * i)) & 0xF];
    }
    offset[8] = '\0';
    out += offset.data();
    out += "  ";
    // Hex column.
    for (std::size_t col = 0; col < 16; ++col) {
      if (row + col < data.size()) {
        const std::uint8_t byte = data[row + col];
        out.push_back(kHexDigits[byte >> 4]);
        out.push_back(kHexDigits[byte & 0xF]);
      } else {
        out += "  ";
      }
      out.push_back(col == 7 ? ' ' : ' ');
      if (col == 7) out.push_back(' ');
    }
    out += " |";
    // ASCII gutter.
    for (std::size_t col = 0; col < 16 && row + col < data.size(); ++col) {
      const std::uint8_t byte = data[row + col];
      out.push_back(byte >= 0x20 && byte < 0x7F ? static_cast<char>(byte) : '.');
    }
    out += "|\n";
  }
  return out;
}

}  // namespace icsfuzz
