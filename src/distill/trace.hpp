// Per-seed replay tracing — the measurement phase of corpus distillation.
//
// Distillation (the cmin/tmin family surveyed in protocol-fuzzing work)
// needs to know, for every corpus seed, exactly which classified
// (edge, bucket) elements its execution touches and which whole-trace hash
// it produces. This header replays seeds through a private Executor (the
// campaign's own maps are never touched) and extracts that element set
// from the classified trace buffer.
//
// Replays are embarrassingly parallel: collect_traces_sharded() splits the
// seed list into contiguous blocks, one worker thread per block, each with
// its own target instance and Executor. Coverage tracing is thread_local
// (coverage/instrument.hpp), so shards never observe each other, and the
// output is position-indexed — identical to the sequential collection for
// the deterministic targets this repository fuzzes.
#pragma once

#include <cstdint>
#include <vector>

#include "fuzzer/campaign.hpp"
#include "fuzzer/executor.hpp"

namespace icsfuzz::distill {

/// One corpus seed's replay observables.
struct SeedTrace {
  /// Position in the replayed seed list.
  std::size_t index = 0;
  /// Whole-trace hash — the PathTracker identity of the execution.
  std::uint64_t trace_hash = 0;
  /// Sorted classified trace elements, encoded (cell << 3) | bucket_index.
  /// Preserving the union of these across a seed subset preserves the
  /// campaign's accumulated coverage map bit-for-bit.
  std::vector<std::uint32_t> elements;
  /// The replay raised a sanitizer fault (crash reproducer, not a corpus
  /// seed in the usual sense).
  bool crashed = false;
};

/// Replays every seed against `target` through a private Executor and
/// returns one SeedTrace per seed, in input order.
std::vector<SeedTrace> collect_traces(
    ProtocolTarget& target, const std::vector<Bytes>& seeds,
    const fuzz::ExecutorConfig& executor_config = {});

/// Sharded variant: `workers` threads replay contiguous blocks of the seed
/// list, each against its own `make_target()` instance. Deterministic —
/// the result equals collect_traces() regardless of thread interleaving.
std::vector<SeedTrace> collect_traces_sharded(
    const fuzz::TargetFactory& make_target, const std::vector<Bytes>& seeds,
    std::size_t workers, const fuzz::ExecutorConfig& executor_config = {});

}  // namespace icsfuzz::distill
