#include "distill/distill.hpp"

#include <algorithm>
#include <bit>
#include <unordered_set>

namespace icsfuzz::distill {
namespace {

/// Path elements share the edge-element id space via the top bit (edge
/// elements are < 2^19, so no collision is possible).
constexpr std::uint64_t kPathElement = 1ULL << 63;

std::vector<std::uint64_t> seed_elements(const SeedTrace& trace,
                                         bool preserve_paths) {
  std::vector<std::uint64_t> elements;
  elements.reserve(trace.elements.size() + 1);
  for (const std::uint32_t element : trace.elements) {
    elements.push_back(element);
  }
  if (preserve_paths) elements.push_back(kPathElement | trace.trace_hash);
  return elements;
}

}  // namespace

CminResult cmin_from_traces(const std::vector<SeedTrace>& traces,
                            const std::vector<Bytes>& seeds,
                            const CminConfig& config) {
  CminResult result;
  result.stats.seeds_before = seeds.size();

  // Candidate element lists plus the universe they must cover.
  std::vector<std::vector<std::uint64_t>> elements(traces.size());
  std::unordered_set<std::uint64_t> universe;
  std::unordered_set<std::uint64_t> paths;
  std::size_t edge_elements = 0;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (config.drop_crashing && traces[i].crashed) continue;
    elements[i] = seed_elements(traces[i], config.preserve_paths);
    paths.insert(traces[i].trace_hash);
    for (const std::uint64_t element : elements[i]) {
      if (universe.insert(element).second && (element & kPathElement) == 0) {
        ++edge_elements;
      }
    }
  }
  result.stats.edge_elements = edge_elements;
  result.stats.paths = paths.size();
  result.stats.replay_executions = traces.size();

  // Greedy set cover: repeatedly take the seed adding the most uncovered
  // elements; break ties toward fewer bytes, then input order, so the
  // result is deterministic and biased toward small reproducers. The
  // covered set only grows, so a candidate whose gain hits zero can never
  // win later — prune it (and the pick) each round instead of rescanning
  // the whole corpus every time.
  std::unordered_set<std::uint64_t> covered;
  covered.reserve(universe.size());
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (!elements[i].empty()) candidates.push_back(i);
  }
  while (covered.size() < universe.size() && !candidates.empty()) {
    std::size_t best = traces.size();
    std::size_t best_gain = 0;
    std::vector<std::size_t> alive;
    alive.reserve(candidates.size());
    for (const std::size_t i : candidates) {
      std::size_t gain = 0;
      for (const std::uint64_t element : elements[i]) {
        gain += !covered.contains(element);
      }
      if (gain == 0) continue;  // fully covered — out for good
      alive.push_back(i);
      const bool wins =
          gain > best_gain ||
          (gain == best_gain &&
           (best == traces.size() || seeds[i].size() < seeds[best].size()));
      if (wins) {
        best = i;
        best_gain = gain;
      }
    }
    if (best == traces.size()) break;
    result.kept.push_back(best);
    for (const std::uint64_t element : elements[best]) covered.insert(element);
    alive.erase(std::find(alive.begin(), alive.end(), best));
    candidates = std::move(alive);
  }

  std::sort(result.kept.begin(), result.kept.end());
  result.seeds.reserve(result.kept.size());
  for (const std::size_t index : result.kept) {
    result.seeds.push_back(seeds[index]);
  }
  result.stats.seeds_after = result.kept.size();
  return result;
}

CminResult cmin(const fuzz::TargetFactory& make_target,
                const std::vector<Bytes>& seeds, const CminConfig& config) {
  const std::vector<SeedTrace> traces =
      collect_traces_sharded(make_target, seeds, config.workers,
                             config.executor);
  return cmin_from_traces(traces, seeds, config);
}

CminResult cmin(ProtocolTarget& target, const std::vector<Bytes>& seeds,
                const CminConfig& config) {
  return cmin_from_traces(collect_traces(target, seeds, config.executor),
                          seeds, config);
}

TminResult tmin(ProtocolTarget& target, const Bytes& seed,
                const TminConfig& config) {
  TminResult result;
  result.seed = seed;
  result.bytes_before = seed.size();
  if (seed.empty()) return result;

  fuzz::Executor executor(config.executor);
  const std::uint64_t baseline = executor.run(target, seed).trace_hash;
  ++result.executions;

  // afl-tmin style block removal: try deleting aligned blocks of halving
  // sizes; a removal survives only when the trace hash is unchanged.
  std::size_t block = std::bit_floor(std::max<std::size_t>(
      result.seed.size() / 2, 1));
  for (; block >= 1; block /= 2) {
    std::size_t pos = 0;
    while (pos < result.seed.size()) {
      if (result.executions >= config.max_executions) return result;
      const std::size_t len = std::min(block, result.seed.size() - pos);
      if (len == result.seed.size()) {  // never try the empty seed
        pos += block;
        continue;
      }
      Bytes candidate;
      candidate.reserve(result.seed.size() - len);
      candidate.insert(candidate.end(), result.seed.begin(),
                       result.seed.begin() + static_cast<std::ptrdiff_t>(pos));
      candidate.insert(
          candidate.end(),
          result.seed.begin() + static_cast<std::ptrdiff_t>(pos + len),
          result.seed.end());
      ++result.executions;
      if (executor.run(target, candidate).trace_hash == baseline) {
        result.seed = std::move(candidate);  // keep position, retry here
      } else {
        pos += block;
      }
    }
    if (block == 1) break;
  }
  return result;
}

}  // namespace icsfuzz::distill
