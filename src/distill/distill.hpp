// Corpus distillation — the cmin/tmin pair of released coverage-guided
// fuzzers, applied to the paper's valuable-seed corpus.
//
//   * cmin  — greedy set-cover corpus minimization: replay every seed,
//     record its classified (edge, bucket) elements and trace hash
//     (trace.hpp), then keep the smallest greedy subset whose union
//     preserves the whole corpus's coverage. With preserve_paths (the
//     default) every distinct trace hash is also a covered element, so the
//     paper's headline metric — paths covered — survives distillation
//     bit-for-bit, not just the edge map.
//   * tmin  — single-seed trimming: remove byte blocks (halving window
//     sizes, afl-tmin style) while the whole-trace hash stays invariant,
//     so the shrunken seed provably executes the identical path.
//
// Both are deterministic: no RNG, ties broken by seed size then input
// order, so a distilled corpus is a pure function of its input corpus.
#pragma once

#include "distill/trace.hpp"

namespace icsfuzz::distill {

struct CminConfig {
  /// Worker threads for the replay (trace-collection) phase of the
  /// factory-based entry point. 1 = sequential.
  std::size_t workers = 1;
  /// Cover distinct trace hashes as well as edge elements, preserving the
  /// path count exactly (a few extra representatives per unique path).
  bool preserve_paths = true;
  /// Drop seeds whose replay faults: reproducers belong in the crash_db,
  /// not in a generation corpus. Off by default (corpora are normally
  /// fault-free and dropping changes coverage accounting).
  bool drop_crashing = false;
  fuzz::ExecutorConfig executor;
};

struct CminStats {
  std::size_t seeds_before = 0;
  std::size_t seeds_after = 0;
  /// Distinct (edge, bucket) elements in the corpus union.
  std::size_t edge_elements = 0;
  /// Distinct trace hashes in the corpus union.
  std::size_t paths = 0;
  /// Replays spent collecting traces.
  std::uint64_t replay_executions = 0;

  /// Fraction of seeds removed (0 when the corpus was already minimal).
  [[nodiscard]] double reduction_ratio() const {
    return seeds_before == 0
               ? 0.0
               : 1.0 - static_cast<double>(seeds_after) /
                           static_cast<double>(seeds_before);
  }
};

struct CminResult {
  /// Kept positions into the input seed list, ascending.
  std::vector<std::size_t> kept;
  /// The kept seeds, in `kept` order.
  std::vector<Bytes> seeds;
  CminStats stats;
};

/// Minimizes over pre-collected traces (no replays; used by the fuzzer's
/// auto-distill hook, which already owns a target).
CminResult cmin_from_traces(const std::vector<SeedTrace>& traces,
                            const std::vector<Bytes>& seeds,
                            const CminConfig& config = {});

/// Replays (sharded across config.workers) and minimizes in one call.
CminResult cmin(const fuzz::TargetFactory& make_target,
                const std::vector<Bytes>& seeds,
                const CminConfig& config = {});

/// Single-target convenience: sequential replays against `target`.
CminResult cmin(ProtocolTarget& target, const std::vector<Bytes>& seeds,
                const CminConfig& config = {});

struct TminConfig {
  /// Replay budget; trimming stops when it is exhausted.
  std::uint64_t max_executions = 4096;
  fuzz::ExecutorConfig executor;
};

struct TminResult {
  /// The trimmed seed (== the input when nothing could be removed).
  Bytes seed;
  std::size_t bytes_before = 0;
  /// Replays spent (including the baseline run).
  std::uint64_t executions = 0;

  [[nodiscard]] bool shrunk() const { return seed.size() < bytes_before; }
  [[nodiscard]] double reduction_ratio() const {
    return bytes_before == 0
               ? 0.0
               : 1.0 - static_cast<double>(seed.size()) /
                           static_cast<double>(bytes_before);
  }
};

/// Shrinks `seed` while its whole-trace hash stays invariant.
TminResult tmin(ProtocolTarget& target, const Bytes& seed,
                const TminConfig& config = {});

}  // namespace icsfuzz::distill
