#include "distill/replay.hpp"

#include <thread>
#include <unordered_set>

#include "coverage/instrument.hpp"
#include "fuzzer/cracker.hpp"

namespace icsfuzz::distill {
namespace {

/// Order-insensitive fingerprint over a path-hash set (sum + xor of mixed
/// values, the same construction CoverageMap::trace_hash uses).
std::uint64_t path_set_fingerprint(const std::vector<std::uint64_t>& paths) {
  std::uint64_t sum = 0;
  std::uint64_t mix = 0;
  for (const std::uint64_t path : paths) {
    const std::uint64_t v = mix64(path);
    sum += v;
    mix ^= v;
  }
  return sum ^ (mix * 0x94D049BB133111EBULL);
}

ReplayReport report_from(const cov::CoverageMap& map,
                         const cov::PathTracker& paths, std::size_t seeds,
                         std::uint64_t executions, std::size_t crashes) {
  ReplayReport report;
  report.seeds = seeds;
  report.executions = executions;
  report.crashes = crashes;
  report.edges = map.edges_covered();
  report.paths = paths.path_count();
  const std::vector<std::uint8_t> snapshot = map.snapshot_accumulated();
  report.map_fingerprint =
      content_hash(ByteSpan(snapshot.data(), snapshot.size()));
  report.path_fingerprint = path_set_fingerprint(paths.snapshot());
  return report;
}

}  // namespace

ReplayReport report_from_traces(const std::vector<SeedTrace>& traces) {
  // Rebuild the accumulated map from the per-seed element sets: OR-ing
  // each (cell, bucket) bit is exactly what CoverageMap::accumulate does,
  // so the fingerprints match a live replay bit-for-bit.
  std::vector<std::uint8_t> virgin(cov::kMapSize, 0);
  std::unordered_set<std::uint64_t> path_set;
  ReplayReport report;
  report.seeds = traces.size();
  report.executions = traces.size();
  for (const SeedTrace& trace : traces) {
    report.crashes += trace.crashed;
    path_set.insert(trace.trace_hash);
    for (const std::uint32_t element : trace.elements) {
      virgin[element >> 3] |=
          static_cast<std::uint8_t>(1U << (element & 7U));
    }
  }
  for (const std::uint8_t cell : virgin) report.edges += cell != 0;
  report.paths = path_set.size();
  report.map_fingerprint = content_hash(ByteSpan(virgin.data(), virgin.size()));
  report.path_fingerprint = path_set_fingerprint(
      std::vector<std::uint64_t>(path_set.begin(), path_set.end()));
  return report;
}

ReplayReport replay_corpus(ProtocolTarget& target,
                           const std::vector<Bytes>& seeds,
                           const fuzz::ExecutorConfig& executor_config) {
  fuzz::Executor executor(executor_config);
  fuzz::ExecResult scratch;
  std::size_t crashes = 0;
  for (const Bytes& seed : seeds) {
    executor.run_into(target, seed, scratch);
    crashes += scratch.crashed();
  }
  return report_from(executor.coverage(), executor.paths(), seeds.size(),
                     executor.executions(), crashes);
}

ReplayReport replay_corpus_sharded(
    const fuzz::TargetFactory& make_target, const std::vector<Bytes>& seeds,
    std::size_t workers, const fuzz::ExecutorConfig& executor_config) {
  if (workers == 0) workers = 1;
  workers = std::min(workers, seeds.size());
  if (workers <= 1) {
    const auto target = make_target();
    return replay_corpus(*target, seeds, executor_config);
  }

  struct Shard {
    fuzz::Executor executor;
    std::size_t crashes = 0;
    explicit Shard(const fuzz::ExecutorConfig& config) : executor(config) {}
  };
  std::vector<Shard> shards;
  shards.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) shards.emplace_back(executor_config);

  const std::size_t block = (seeds.size() + workers - 1) / workers;
  {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t begin = w * block;
      const std::size_t end = std::min(seeds.size(), begin + block);
      if (begin >= end) break;
      threads.emplace_back([&, w, begin, end] {
        const auto target = make_target();
        fuzz::ExecResult scratch;
        for (std::size_t i = begin; i < end; ++i) {
          shards[w].executor.run_into(*target, seeds[i], scratch);
          shards[w].crashes += scratch.crashed();
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }

  cov::CoverageMap merged_map;
  cov::PathTracker merged_paths;
  std::uint64_t executions = 0;
  std::size_t crashes = 0;
  for (const Shard& shard : shards) {
    merged_map.merge(shard.executor.coverage());
    merged_paths.merge(shard.executor.paths());
    executions += shard.executor.executions();
    crashes += shard.crashes;
  }
  return report_from(merged_map, merged_paths, seeds.size(), executions,
                     crashes);
}

bool verify_deterministic(const fuzz::TargetFactory& make_target,
                          const std::vector<Bytes>& seeds, std::size_t rounds,
                          const fuzz::ExecutorConfig& executor_config) {
  if (rounds < 2) rounds = 2;
  ReplayReport first;
  for (std::size_t round = 0; round < rounds; ++round) {
    const auto target = make_target();
    const ReplayReport report =
        replay_corpus(*target, seeds, executor_config);
    if (round == 0) {
      first = report;
    } else if (!first.same_coverage(report) ||
               first.crashes != report.crashes) {
      return false;
    }
  }
  return true;
}

CrashReplay replay_crash(ProtocolTarget& target, ByteSpan reproducer,
                         const fuzz::ExecutorConfig& executor_config) {
  fuzz::Executor executor(executor_config);
  const fuzz::ExecResult result = executor.run(target, reproducer);
  CrashReplay replay;
  replay.reproduced = result.crashed();
  replay.faults = result.faults;
  replay.trace_hash = result.trace_hash;
  return replay;
}

std::size_t crack_into_corpus(const model::DataModelSet& models,
                              const std::vector<Bytes>& seeds,
                              fuzz::PuzzleCorpus& corpus, Rng& rng) {
  const fuzz::FileCracker cracker;
  std::size_t added = 0;
  for (const Bytes& seed : seeds) {
    added += cracker.crack(models, seed, corpus, rng).puzzles_added;
  }
  return added;
}

}  // namespace icsfuzz::distill
