#include "distill/trace.hpp"

#include <algorithm>
#include <bit>
#include <thread>

#include "coverage/instrument.hpp"

namespace icsfuzz::distill {
namespace {

SeedTrace trace_one(fuzz::Executor& executor, ProtocolTarget& target,
                    const Bytes& seed, std::size_t index,
                    fuzz::ExecResult& scratch) {
  SeedTrace trace;
  trace.index = index;
  executor.run_into(target, seed, scratch);
  const fuzz::ExecResult& result = scratch;
  trace.trace_hash = result.trace_hash;
  trace.crashed = result.crashed();

  // The classified trace of the execution is still in the executor's map;
  // extract its nonzero cells from the dirty-word list instead of sweeping
  // all 8192 map words. The list is in first-touch order, so the collected
  // elements are sorted afterwards (the encoding is monotone in the cell
  // index) to keep the documented ascending order.
  const cov::CoverageMap& map = executor.coverage();
  const std::uint8_t* cells = map.trace();
  trace.elements.reserve(result.trace_edges);
  for (std::uint32_t i = 0; i < map.dirty_word_count(); ++i) {
    const std::size_t w = map.dirty_words()[i];
    for (std::size_t b = 0; b < 8; ++b) {
      const std::size_t cell = w * 8 + b;
      if (cells[cell] == 0) continue;
      // classify_count() yields a one-bit bucket mask, so countr_zero is
      // the bucket index; three bits suffice.
      trace.elements.push_back(static_cast<std::uint32_t>(
          (cell << 3) | static_cast<unsigned>(std::countr_zero(cells[cell]))));
    }
  }
  std::sort(trace.elements.begin(), trace.elements.end());
  return trace;
}

}  // namespace

std::vector<SeedTrace> collect_traces(
    ProtocolTarget& target, const std::vector<Bytes>& seeds,
    const fuzz::ExecutorConfig& executor_config) {
  fuzz::Executor executor(executor_config);
  fuzz::ExecResult scratch;
  std::vector<SeedTrace> traces;
  traces.reserve(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    traces.push_back(trace_one(executor, target, seeds[i], i, scratch));
  }
  return traces;
}

std::vector<SeedTrace> collect_traces_sharded(
    const fuzz::TargetFactory& make_target, const std::vector<Bytes>& seeds,
    std::size_t workers, const fuzz::ExecutorConfig& executor_config) {
  if (workers == 0) workers = 1;
  workers = std::min(workers, seeds.size());
  if (workers <= 1) {
    const auto target = make_target();
    return collect_traces(*target, seeds, executor_config);
  }

  std::vector<SeedTrace> traces(seeds.size());
  const std::size_t block = (seeds.size() + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * block;
    const std::size_t end = std::min(seeds.size(), begin + block);
    if (begin >= end) break;
    threads.emplace_back([&, begin, end] {
      const auto target = make_target();
      fuzz::Executor executor(executor_config);
      fuzz::ExecResult scratch;
      for (std::size_t i = begin; i < end; ++i) {
        traces[i] = trace_one(executor, *target, seeds[i], i, scratch);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  return traces;
}

}  // namespace icsfuzz::distill
