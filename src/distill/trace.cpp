#include "distill/trace.hpp"

#include <bit>
#include <thread>

#include "coverage/instrument.hpp"

namespace icsfuzz::distill {
namespace {

SeedTrace trace_one(fuzz::Executor& executor, ProtocolTarget& target,
                    const Bytes& seed, std::size_t index) {
  SeedTrace trace;
  trace.index = index;
  const fuzz::ExecResult result = executor.run(target, seed);
  trace.trace_hash = result.trace_hash;
  trace.crashed = result.crashed();

  // The classified trace of the execution is still in the executor's map;
  // extract its nonzero cells with the same zero-word skip the coverage
  // passes use (the map is sparse).
  const std::uint8_t* cells = executor.coverage().trace();
  const auto* words = reinterpret_cast<const std::uint64_t*>(cells);
  trace.elements.reserve(result.trace_edges);
  for (std::size_t w = 0; w < cov::kMapSize / 8; ++w) {
    if (words[w] == 0) continue;
    for (std::size_t b = 0; b < 8; ++b) {
      const std::size_t cell = w * 8 + b;
      if (cells[cell] == 0) continue;
      // classify_count() yields a one-bit bucket mask, so countr_zero is
      // the bucket index; three bits suffice.
      trace.elements.push_back(static_cast<std::uint32_t>(
          (cell << 3) | static_cast<unsigned>(std::countr_zero(cells[cell]))));
    }
  }
  return trace;
}

}  // namespace

std::vector<SeedTrace> collect_traces(
    ProtocolTarget& target, const std::vector<Bytes>& seeds,
    const fuzz::ExecutorConfig& executor_config) {
  fuzz::Executor executor(executor_config);
  std::vector<SeedTrace> traces;
  traces.reserve(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    traces.push_back(trace_one(executor, target, seeds[i], i));
  }
  return traces;
}

std::vector<SeedTrace> collect_traces_sharded(
    const fuzz::TargetFactory& make_target, const std::vector<Bytes>& seeds,
    std::size_t workers, const fuzz::ExecutorConfig& executor_config) {
  if (workers == 0) workers = 1;
  workers = std::min(workers, seeds.size());
  if (workers <= 1) {
    const auto target = make_target();
    return collect_traces(*target, seeds, executor_config);
  }

  std::vector<SeedTrace> traces(seeds.size());
  const std::size_t block = (seeds.size() + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * block;
    const std::size_t end = std::min(seeds.size(), begin + block);
    if (begin >= end) break;
    threads.emplace_back([&, begin, end] {
      const auto target = make_target();
      fuzz::Executor executor(executor_config);
      for (std::size_t i = begin; i < end; ++i) {
        traces[i] = trace_one(executor, *target, seeds[i], i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  return traces;
}

}  // namespace icsfuzz::distill
