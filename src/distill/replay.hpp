// Deterministic replay verification — the proof obligation of corpus
// distillation.
//
// A distilled corpus is only trustworthy if re-running it reproduces the
// exact coverage it was distilled to preserve. ReplayReport captures a
// corpus replay's aggregate coverage with two order-insensitive
// fingerprints (one over the accumulated edge map, one over the path set),
// so "identical coverage" is a cheap equality test rather than a map diff.
// The same machinery replays crash_db reproducers for triage: a saved
// crash must still fault, and on the same (kind, site).
#pragma once

#include "distill/trace.hpp"
#include "fuzzer/corpus.hpp"
#include "sanitizer/fault.hpp"

namespace icsfuzz::distill {

/// Aggregate coverage of one corpus replay.
struct ReplayReport {
  std::size_t seeds = 0;
  std::uint64_t executions = 0;
  /// Accumulated distinct edges (nonzero cells of the merged map).
  std::size_t edges = 0;
  /// Distinct trace hashes.
  std::size_t paths = 0;
  /// Executions that raised a sanitizer fault.
  std::size_t crashes = 0;
  /// FNV-1a over the accumulated classified map — bit-identical maps, and
  /// only those, fingerprint equal.
  std::uint64_t map_fingerprint = 0;
  /// Commutative mix over the path-hash set (order-insensitive).
  std::uint64_t path_fingerprint = 0;

  /// True when `other` covers the bit-identical edge map and path set.
  [[nodiscard]] bool same_coverage(const ReplayReport& other) const {
    return edges == other.edges && paths == other.paths &&
           map_fingerprint == other.map_fingerprint &&
           path_fingerprint == other.path_fingerprint;
  }
};

/// Replays `seeds` sequentially against `target`.
ReplayReport replay_corpus(ProtocolTarget& target,
                           const std::vector<Bytes>& seeds,
                           const fuzz::ExecutorConfig& executor_config = {});

/// Derives the corpus report from already-collected traces — bit-identical
/// to replay_corpus on the same seeds, with no further executions (cmin
/// callers reuse their trace collection instead of replaying twice).
ReplayReport report_from_traces(const std::vector<SeedTrace>& traces);

/// Sharded replay: contiguous seed blocks on `workers` threads, merged
/// through CoverageMap/PathTracker merge (commutative), so the report is
/// identical to the sequential one.
ReplayReport replay_corpus_sharded(
    const fuzz::TargetFactory& make_target, const std::vector<Bytes>& seeds,
    std::size_t workers, const fuzz::ExecutorConfig& executor_config = {});

/// Replays `seeds` `rounds` times with fresh targets and returns true when
/// every round produced the identical report — the determinism check a
/// distilled corpus must pass before it is persisted as ground truth.
bool verify_deterministic(const fuzz::TargetFactory& make_target,
                          const std::vector<Bytes>& seeds,
                          std::size_t rounds = 2,
                          const fuzz::ExecutorConfig& executor_config = {});

/// One crash reproducer's replay outcome.
struct CrashReplay {
  bool reproduced = false;
  /// Faults raised (empty when the crash no longer reproduces).
  std::vector<san::FaultReport> faults;
  std::uint64_t trace_hash = 0;
};

/// Replays one reproducer from the crash_db / a saved session.
CrashReplay replay_crash(ProtocolTarget& target, ByteSpan reproducer,
                         const fuzz::ExecutorConfig& executor_config = {});

/// Warm-start wiring: cracks every seed of a (distilled) corpus into
/// `corpus` with the File Cracker, returning the number of puzzles added.
/// This is how a persisted distilled corpus re-seeds a fresh campaign's
/// puzzle store.
std::size_t crack_into_corpus(const model::DataModelSet& models,
                              const std::vector<Bytes>& seeds,
                              fuzz::PuzzleCorpus& corpus, Rng& rng);

}  // namespace icsfuzz::distill
