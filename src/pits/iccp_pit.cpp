// libiec_iccp_mod (TASE.2/MMS) pit.
//
// Every confirmed-service model is a session: a TPKT(initiate-Request)
// establishing the association, then a TPKT(confirmed-Request) carrying the
// service. Shared semantic tags: iccp-detail (negotiated local detail),
// iccp-invoke (invoke id), iccp-item (item index), iccp-declen (declared
// value length), iccp-valblob (value octets).
//
// BER lengths are modelled as SizeOf relations so the File Fixup module
// keeps spliced TLVs well-formed.

#include "pits/pits.hpp"

namespace icsfuzz::pits {
namespace {

using model::BlobSpec;
using model::Chunk;
using model::DataModel;
using model::NumberSpec;
using model::Relation;
using model::RelationKind;
using Endian = icsfuzz::Endian;

/// TPKT envelope around `pdu_fields`: version 3, reserved 0, total length.
Chunk tpkt(const std::string& prefix, std::vector<Chunk> pdu_fields) {
  std::vector<Chunk> frame;
  frame.push_back(Chunk::token(prefix + ".Version", 1, Endian::Big, 0x03));
  frame.push_back(Chunk::token(prefix + ".Reserved", 1, Endian::Big, 0x00));
  frame.push_back(
      Chunk::number(prefix + ".Length", NumberSpec{.width = 2})
          .with_relation(
              Relation{RelationKind::SizeOf, prefix + ".Pdu", 1, 4}));
  frame.push_back(Chunk::block(prefix + ".Pdu", std::move(pdu_fields)));
  return Chunk::block(prefix, std::move(frame));
}

/// One-octet-length BER TLV wrapping a block of fields.
std::vector<Chunk> tlv(const std::string& prefix, std::uint8_t tag,
                       std::vector<Chunk> inner) {
  std::vector<Chunk> fields;
  fields.push_back(Chunk::token(prefix + ".Tag", 1, Endian::Big, tag));
  fields.push_back(
      Chunk::number(prefix + ".Len", NumberSpec{.width = 1})
          .with_relation(Relation{RelationKind::SizeOf, prefix + ".Val", 1, 0}));
  fields.push_back(Chunk::block(prefix + ".Val", std::move(inner)));
  return fields;
}

Chunk tlv_block(const std::string& prefix, std::uint8_t tag,
                std::vector<Chunk> inner) {
  return Chunk::block(prefix, tlv(prefix, tag, std::move(inner)));
}

/// initiate-Request TPKT: local detail, max outstanding, version.
Chunk initiate_frame(const std::string& prefix) {
  NumberSpec detail;
  detail.width = 4;
  detail.default_value = 8000;
  detail.min_value = 500;
  detail.max_value = 70000;
  NumberSpec version;
  version.width = 1;
  version.default_value = 1;
  version.legal_values = {1, 2};
  std::vector<Chunk> params;
  params.push_back(tlv_block(prefix + ".Detail", 0x80,
                             {Chunk::number(prefix + ".Detail.Value", detail)
                                  .with_tag("iccp-detail")}));
  params.push_back(tlv_block(
      prefix + ".MaxServ", 0x81,
      {Chunk::number(prefix + ".MaxServ.Value", NumberSpec{.width = 1,
                                                           .default_value = 5})
           .with_tag("iccp-maxserv")}));
  params.push_back(tlv_block(prefix + ".Ver", 0x82,
                             {Chunk::number(prefix + ".Ver.Value", version)
                                  .with_tag("iccp-version")}));
  return tpkt(prefix,
              tlv(prefix + ".Init", 0xA8,
                  {Chunk::block(prefix + ".Init.Params", std::move(params))}));
}

Chunk invoke_field(const std::string& prefix) {
  NumberSpec invoke;
  invoke.width = 4;
  invoke.default_value = 1;
  return tlv_block(prefix, 0x02,
                   {Chunk::number(prefix + ".Value", invoke)
                        .with_tag("iccp-invoke")});
}

Chunk item_index_field(const std::string& prefix) {
  NumberSpec item;
  item.width = 1;
  item.default_value = 3;
  item.legal_values = {0, 1, 2, 3, 4, 5};
  return tlv_block(prefix, 0x80,
                   {Chunk::number(prefix + ".Value", item)
                        .with_tag("iccp-item")});
}

/// Confirmed-request session: initiate + confirmed(service TLV).
DataModel service_session(const std::string& name, std::uint8_t service_tag,
                          std::vector<Chunk> service_fields,
                          std::uint64_t opcode) {
  std::vector<Chunk> request_inner;
  request_inner.push_back(invoke_field(name + ".Req.Invoke"));
  request_inner.push_back(
      tlv_block(name + ".Req.Svc", service_tag, std::move(service_fields)));

  std::vector<Chunk> session;
  session.push_back(initiate_frame(name + ".Assoc"));
  session.push_back(tpkt(name + ".Req", tlv(name + ".Req.Conf", 0xA0,
                                            std::move(request_inner))));
  DataModel model(name, Chunk::block(name + ".root", std::move(session)));
  model.set_opcode(opcode);
  return model;
}

}  // namespace

model::DataModelSet iccp_pit() {
  model::DataModelSet set;

  // Association alone (negotiation space).
  {
    std::vector<Chunk> session;
    session.push_back(initiate_frame("Assoc"));
    set.add(DataModel("IccpAssociate",
                      Chunk::block("IccpAssociate.root", std::move(session))));
  }

  // Read — plain and structured (the nest-OOB site is the component read).
  set.add(service_session("IccpRead", 0xA4,
                          {item_index_field("IccpRead.Item")}, 0xA4));
  {
    NumberSpec component;
    component.width = 1;
    component.default_value = 0;
    component.legal_values = {0, 1};
    set.add(service_session(
        "IccpReadComponent", 0xA4,
        {item_index_field("IccpReadComponent.Item"),
         tlv_block("IccpReadComponent.Comp", 0x81,
                   {Chunk::number("IccpReadComponent.Comp.Value", component)
                        .with_tag("iccp-comp")})},
        0xA5));
  }

  // Write (the heap-overflow site): declared length vs value blob.
  {
    NumberSpec declared;
    declared.width = 1;
    declared.default_value = 4;
    BlobSpec value;
    value.default_value = {0xDE, 0xAD, 0xBE, 0xEF};
    value.max_generated = 24;
    set.add(service_session(
        "IccpWrite", 0xA5,
        {item_index_field("IccpWrite.Item"),
         tlv_block("IccpWrite.DecLen", 0x81,
                   {Chunk::number("IccpWrite.DecLen.Value", declared)
                        .with_tag("iccp-declen")}),
         tlv_block("IccpWrite.Value", 0x82,
                   {Chunk::blob("IccpWrite.Value.Blob", value)
                        .with_tag("iccp-valblob")})},
        0xA6));
  }

  // GetNameList — plain and continuation (the name-OOB site).
  set.add(service_session(
      "IccpNameList", 0xA1,
      {tlv_block("IccpNameList.Class", 0x80,
                 {Chunk::number("IccpNameList.Class.Value",
                                NumberSpec{.width = 1, .default_value = 0})
                      .with_tag("iccp-class")})},
      0xA1));
  {
    NumberSpec after;
    after.width = 1;
    after.default_value = 2;
    after.legal_values = {0, 1, 2, 3, 4};
    set.add(service_session(
        "IccpNameListContinue", 0xA1,
        {tlv_block("IccpNameListContinue.Class", 0x80,
                   {Chunk::number("IccpNameListContinue.Class.Value",
                                  NumberSpec{.width = 1, .default_value = 0})
                        .with_tag("iccp-class")}),
         tlv_block("IccpNameListContinue.After", 0x81,
                   {Chunk::number("IccpNameListContinue.After.Value", after)
                        .with_tag("iccp-after")})},
        0xA2));
  }

  // InformationReport (unconfirmed; the report-OOB site): count, offsets,
  // data. Offsets and data are free blobs so their interplay explores the
  // indexing logic.
  {
    NumberSpec count;
    count.width = 1;
    count.default_value = 2;
    BlobSpec offsets;
    offsets.default_value = {0x00, 0x01};
    offsets.max_generated = 8;
    BlobSpec data;
    data.default_value = {0xAA, 0xBB, 0xCC, 0xDD};
    data.max_generated = 16;
    std::vector<Chunk> report_inner;
    report_inner.push_back(
        tlv_block("IccpReport.Count", 0x80,
                  {Chunk::number("IccpReport.Count.Value", count)
                       .with_tag("iccp-count")}));
    report_inner.push_back(
        tlv_block("IccpReport.Offsets", 0x81,
                  {Chunk::blob("IccpReport.Offsets.Blob", offsets)
                       .with_tag("iccp-offsets")}));
    report_inner.push_back(tlv_block("IccpReport.Data", 0x82,
                                     {Chunk::blob("IccpReport.Data.Blob", data)
                                          .with_tag("iccp-datablob")}));
    std::vector<Chunk> session;
    session.push_back(initiate_frame("IccpReport.Assoc"));
    session.push_back(
        tpkt("IccpReport.Rpt",
             tlv("IccpReport.Rpt.Info", 0xA3,
                 {Chunk::block("IccpReport.Rpt.Body", std::move(report_inner))})));
    DataModel model("IccpReport",
                    Chunk::block("IccpReport.root", std::move(session)));
    model.set_opcode(0xA3);
    set.add(std::move(model));
  }

  // Coarse raw session: association + opaque PDU blob.
  {
    BlobSpec pdu;
    pdu.default_value = {0xA0, 0x03, 0x02, 0x01, 0x01};
    pdu.max_generated = 40;
    std::vector<Chunk> session;
    session.push_back(initiate_frame("RawIccp.Assoc"));
    session.push_back(
        tpkt("RawIccp.Frame", {Chunk::blob("RawIccp.Frame.Blob", pdu)}));
    set.add(
        DataModel("RawIccp", Chunk::block("RawIccp.root", std::move(session))));
  }

  return set;
}

}  // namespace icsfuzz::pits
