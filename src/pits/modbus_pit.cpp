// Modbus/TCP pit — data models for the libmodbus target.
//
// Shared semantic tags across models (the donor-transfer surface):
//   mb-trans (transaction id), mb-unit (unit id), mb-addr (item address),
//   mb-qty (item quantity), mb-regval (16-bit register value),
//   mb-coilval (0x0000/0xFF00 coil value), mb-regblob (register payload),
//   mb-coilblob (packed coil payload).

#include "pits/pits.hpp"

namespace icsfuzz::pits {
namespace {

using model::BlobSpec;
using model::Chunk;
using model::DataModel;
using model::NumberSpec;
using model::Relation;
using model::RelationKind;
using Endian = icsfuzz::Endian;

/// MBAP header + function code around a PDU-specific body block. The MBAP
/// length field covers unit id + function + body, which the Payload block
/// wraps so one SizeOf relation expresses the constraint.
DataModel make_model(const std::string& name, std::uint8_t function,
                     std::vector<Chunk> body_fields) {
  std::vector<Chunk> payload;
  NumberSpec unit;
  unit.width = 1;
  unit.default_value = 0x11;
  unit.legal_values = {0x11, 0x00, 0xFF};
  payload.push_back(
      Chunk::number(name + ".UnitId", unit).with_tag("mb-unit"));
  payload.push_back(
      Chunk::token(name + ".FunctionCode", 1, Endian::Big, function));
  payload.push_back(Chunk::block(name + ".Body", std::move(body_fields)));

  NumberSpec trans;
  trans.width = 2;
  trans.default_value = 0x0001;
  NumberSpec length;
  length.width = 2;

  std::vector<Chunk> fields;
  fields.push_back(
      Chunk::number(name + ".TransactionId", trans).with_tag("mb-trans"));
  fields.push_back(Chunk::token(name + ".ProtocolId", 2, Endian::Big, 0));
  fields.push_back(Chunk::number(name + ".Length", length)
                       .with_relation(Relation{RelationKind::SizeOf,
                                               name + ".Payload", 1, 0}));
  fields.push_back(Chunk::block(name + ".Payload", std::move(payload)));

  DataModel model(name, Chunk::block(name + ".root", std::move(fields)));
  model.set_opcode(function);
  return model;
}

Chunk address_field(const std::string& name) {
  NumberSpec spec;
  spec.width = 2;
  spec.default_value = 0x0000;
  spec.min_value = 0;
  spec.max_value = 0x01FF;  // engineering hint: plausible map region
  return Chunk::number(name, spec).with_tag("mb-addr");
}

Chunk quantity_field(const std::string& name) {
  NumberSpec spec;
  spec.width = 2;
  spec.default_value = 1;
  spec.legal_values = {1, 2, 8, 16, 125};
  return Chunk::number(name, spec).with_tag("mb-qty");
}

Chunk register_value_field(const std::string& name) {
  NumberSpec spec;
  spec.width = 2;
  spec.default_value = 0x0000;
  return Chunk::number(name, spec).with_tag("mb-regval");
}

}  // namespace

model::DataModelSet modbus_pit() {
  model::DataModelSet set;

  // 0x01 / 0x02 — read coils / discrete inputs.
  set.add(make_model("ReadCoils", 0x01,
                     {address_field("ReadCoils.Address"),
                      quantity_field("ReadCoils.Quantity")}));
  set.add(make_model("ReadDiscreteInputs", 0x02,
                     {address_field("ReadDiscreteInputs.Address"),
                      quantity_field("ReadDiscreteInputs.Quantity")}));

  // 0x03 / 0x04 — read holding / input registers.
  set.add(make_model("ReadHoldingRegisters", 0x03,
                     {address_field("ReadHoldingRegisters.Address"),
                      quantity_field("ReadHoldingRegisters.Quantity")}));
  set.add(make_model("ReadInputRegisters", 0x04,
                     {address_field("ReadInputRegisters.Address"),
                      quantity_field("ReadInputRegisters.Quantity")}));

  // 0x05 — write single coil (value must be 0x0000 or 0xFF00).
  {
    NumberSpec coil;
    coil.width = 2;
    coil.default_value = 0xFF00;
    coil.legal_values = {0x0000, 0xFF00};
    set.add(make_model(
        "WriteSingleCoil", 0x05,
        {address_field("WriteSingleCoil.Address"),
         Chunk::number("WriteSingleCoil.Value", coil).with_tag("mb-coilval")}));
  }

  // 0x06 — write single register.
  set.add(make_model("WriteSingleRegister", 0x06,
                     {address_field("WriteSingleRegister.Address"),
                      register_value_field("WriteSingleRegister.Value")}));

  // 0x0F — write multiple coils: quantity counts bits, byte count counts
  // payload bytes.
  {
    NumberSpec byte_count;
    byte_count.width = 1;
    BlobSpec bits;
    bits.default_value = {0xFF};
    bits.max_generated = 16;
    std::vector<Chunk> body;
    body.push_back(address_field("WriteMultipleCoils.Address"));
    // Quantity = bits in payload; modelled as countof(payload)*8 so the
    // fixup engine keeps it consistent (bias 0, unit 1, then *8 via unit
    // trick: count of 1-byte units times 8 is expressed with bias applied
    // by the server-side check instead; here quantity counts bytes*8 via
    // a dedicated relation on the byte count and a free quantity field).
    NumberSpec qty;
    qty.width = 2;
    qty.default_value = 8;
    qty.legal_values = {1, 8, 16, 64};
    body.push_back(
        Chunk::number("WriteMultipleCoils.Quantity", qty).with_tag("mb-qty"));
    body.push_back(Chunk::number("WriteMultipleCoils.ByteCount", byte_count)
                       .with_relation(Relation{RelationKind::SizeOf,
                                               "WriteMultipleCoils.Bits", 1, 0}));
    body.push_back(Chunk::blob("WriteMultipleCoils.Bits", bits)
                       .with_tag("mb-coilblob"));
    set.add(make_model("WriteMultipleCoils", 0x0F, std::move(body)));
  }

  // 0x10 — write multiple registers: quantity counts 2-byte units.
  {
    NumberSpec byte_count;
    byte_count.width = 1;
    BlobSpec values;
    values.default_value = {0x00, 0x01};
    values.max_generated = 32;
    values.unit = 2;
    std::vector<Chunk> body;
    body.push_back(address_field("WriteMultipleRegisters.Address"));
    body.push_back(
        Chunk::number("WriteMultipleRegisters.Quantity", NumberSpec{.width = 2})
            .with_tag("mb-qty")
            .with_relation(Relation{RelationKind::CountOf,
                                    "WriteMultipleRegisters.Values", 2, 0}));
    body.push_back(
        Chunk::number("WriteMultipleRegisters.ByteCount", byte_count)
            .with_relation(Relation{RelationKind::SizeOf,
                                    "WriteMultipleRegisters.Values", 1, 0}));
    body.push_back(Chunk::blob("WriteMultipleRegisters.Values", values)
                       .with_tag("mb-regblob"));
    set.add(make_model("WriteMultipleRegisters", 0x10, std::move(body)));
  }

  // 0x16 — mask write register.
  set.add(make_model("MaskWriteRegister", 0x16,
                     {address_field("MaskWriteRegister.Address"),
                      register_value_field("MaskWriteRegister.AndMask"),
                      register_value_field("MaskWriteRegister.OrMask")}));

  // 0x17 — read/write multiple registers (the UAF lives behind this one).
  {
    NumberSpec byte_count;
    byte_count.width = 1;
    BlobSpec values;
    values.default_value = {0x12, 0x34};
    values.max_generated = 16;
    values.unit = 2;
    std::vector<Chunk> body;
    body.push_back(address_field("ReadWriteMultiple.ReadAddress"));
    body.push_back(quantity_field("ReadWriteMultiple.ReadQuantity"));
    body.push_back(address_field("ReadWriteMultiple.WriteAddress"));
    body.push_back(
        Chunk::number("ReadWriteMultiple.WriteQuantity", NumberSpec{.width = 2})
            .with_tag("mb-qty")
            .with_relation(Relation{RelationKind::CountOf,
                                    "ReadWriteMultiple.WriteValues", 2, 0}));
    body.push_back(
        Chunk::number("ReadWriteMultiple.ByteCount", byte_count)
            .with_relation(Relation{RelationKind::SizeOf,
                                    "ReadWriteMultiple.WriteValues", 1, 0}));
    body.push_back(Chunk::blob("ReadWriteMultiple.WriteValues", values)
                       .with_tag("mb-regblob"));
    set.add(make_model("ReadWriteMultiple", 0x17, std::move(body)));
  }

  // 0x2B — read device identification (the SEGV lives behind this one).
  {
    NumberSpec mei;
    mei.width = 1;
    mei.default_value = 0x0E;
    mei.legal_values = {0x0E, 0x0D};
    NumberSpec read_dev_id;
    read_dev_id.width = 1;
    read_dev_id.default_value = 0x01;
    read_dev_id.legal_values = {0x01, 0x02, 0x03, 0x04};
    NumberSpec object_id;
    object_id.width = 1;
    object_id.default_value = 0x00;
    set.add(make_model(
        "ReadDeviceIdentification", 0x2B,
        {Chunk::number("ReadDeviceIdentification.MeiType", mei)
             .with_tag("mb-mei"),
         Chunk::number("ReadDeviceIdentification.ReadDevId", read_dev_id)
             .with_tag("mb-devid"),
         Chunk::number("ReadDeviceIdentification.ObjectId", object_id)
             .with_tag("mb-objid")}));
  }

  // Coarse catch-all: MBAP header + opaque PDU. Reaches frame shapes the
  // typed models cannot (wrong lengths, undefined function codes).
  {
    BlobSpec pdu;
    pdu.default_value = {0x03, 0x00, 0x00, 0x00, 0x01};
    pdu.max_generated = 48;
    NumberSpec trans;
    trans.width = 2;
    std::vector<Chunk> fields;
    fields.push_back(
        Chunk::number("RawModbus.TransactionId", trans).with_tag("mb-trans"));
    fields.push_back(Chunk::token("RawModbus.ProtocolId", 2, Endian::Big, 0));
    fields.push_back(
        Chunk::number("RawModbus.Length", NumberSpec{.width = 2})
            .with_relation(
                Relation{RelationKind::SizeOf, "RawModbus.Payload", 1, 0}));
    std::vector<Chunk> payload;
    NumberSpec unit;
    unit.width = 1;
    unit.default_value = 0x11;
    unit.legal_values = {0x11, 0x00, 0xFF};
    payload.push_back(
        Chunk::number("RawModbus.UnitId", unit).with_tag("mb-unit"));
    payload.push_back(Chunk::blob("RawModbus.Pdu", pdu));
    fields.push_back(Chunk::block("RawModbus.Payload", std::move(payload)));
    DataModel raw("RawModbus", Chunk::block("RawModbus.root", std::move(fields)));
    set.add(std::move(raw));
  }

  return set;
}

}  // namespace icsfuzz::pits
