#include "pits/pits.hpp"

namespace icsfuzz::pits {

model::DataModelSet pit_for_project(std::string_view project) {
  if (project == "libmodbus") return modbus_pit();
  if (project == "IEC104") return iec104_pit();
  if (project == "libiec61850") return mms_pit();
  if (project == "lib60870") return cs101_pit();
  if (project == "libiec_iccp_mod") return iccp_pit();
  if (project == "opendnp3") return dnp3_pit();
  return {};
}

const std::vector<std::string>& all_project_names() {
  static const std::vector<std::string> kNames = {
      "libmodbus",       "IEC104",   "libiec61850",
      "lib60870",        "libiec_iccp_mod", "opendnp3",
  };
  return kNames;
}

}  // namespace icsfuzz::pits
