// Built-in format specifications (pits) for the six evaluated protocol
// stacks — the typed-builder equivalent of the Peach Pit XML files the
// paper's experiments use ("we used the existing pit file of Peach",
// §V-A).
//
// Design conventions shared by all pits:
//   * One data model per packet type / function code, plus session models
//     that chain the handshake frames stateful stacks require, plus one
//     deliberately coarse "raw" model ("the input model does not have to be
//     elaborate", §V-A) whose variable-length blob reaches the malformed
//     corners — truncated ASDUs and the like — where the Table I bugs live.
//   * Chunks representing the same protocol concept carry the same semantic
//     `tag` across models (e.g. every Modbus register address is tagged
//     "mb-addr"); this is the cross-packet-type rule similarity that the
//     puzzle corpus keys on.
//   * Integrity constraints are expressed with Relations (size-of/count-of)
//     and Fixups (CRCs), so the File Fixup module can repair spliced seeds.
#pragma once

#include "model/data_model.hpp"

namespace icsfuzz::pits {

/// Modbus/TCP: 11 models — one per function code plus session + raw.
model::DataModelSet modbus_pit();

/// IEC 60870-5-104: U/S/I frame models with handshake sessions.
model::DataModelSet iec104_pit();

/// lib60870 CS101/CS104 ASDU layer: typed command models + raw-ASDU model.
model::DataModelSet cs101_pit();

/// libiec_iccp_mod (TASE.2/MMS): association + confirmed-service models.
model::DataModelSet iccp_pit();

/// opendnp3: link-framed application requests with DNP3 CRC fixups.
model::DataModelSet dnp3_pit();

/// libiec61850 (MMS): association + confirmed-service + report models.
model::DataModelSet mms_pit();

/// Looks a pit up by its project name ("libmodbus", "IEC104", ...).
/// Returns an empty set for unknown names.
model::DataModelSet pit_for_project(std::string_view project);

/// All six project names in the paper's order.
const std::vector<std::string>& all_project_names();

}  // namespace icsfuzz::pits
