// lib60870 (CS101/CS104 ASDU layer) pit.
//
// Shared semantic tags: cs-typeid, cs-vsq, cs-cot, cs-ca, cs-ioa, cs-sco,
// cs-time, cs-asdu (opaque ASDU blob).
//
// The RawAsdu model matters most here: its variable-length ASDU blob is the
// only way to produce the *truncated* ASDUs (fewer than 3 octets) that
// trigger the paper's CS101_ASDU_getCOT bug — typed models always emit a
// complete 6-octet header.

#include "pits/pits.hpp"

namespace icsfuzz::pits {
namespace {

using model::BlobSpec;
using model::Chunk;
using model::DataModel;
using model::NumberSpec;
using model::Relation;
using model::RelationKind;
using Endian = icsfuzz::Endian;

Chunk startdt_frame(const std::string& prefix) {
  return Chunk::block(
      prefix + ".StartDt",
      {Chunk::token(prefix + ".StartDt.Start", 1, Endian::Big, 0x68),
       Chunk::token(prefix + ".StartDt.Length", 1, Endian::Big, 4),
       Chunk::token(prefix + ".StartDt.Control", 4, Endian::Big, 0x07000000)});
}

Chunk i_frame(const std::string& prefix, std::vector<Chunk> asdu_fields) {
  std::vector<Chunk> body;
  NumberSpec seq;
  seq.width = 4;
  seq.endian = Endian::Little;
  seq.default_value = 0;
  body.push_back(Chunk::number(prefix + ".Control", seq).with_tag("cs-seq"));
  body.push_back(Chunk::block(prefix + ".Asdu", std::move(asdu_fields)));

  std::vector<Chunk> frame;
  frame.push_back(Chunk::token(prefix + ".Start", 1, Endian::Big, 0x68));
  frame.push_back(
      Chunk::number(prefix + ".Length", NumberSpec{.width = 1})
          .with_relation(Relation{RelationKind::SizeOf, prefix + ".Body", 1, 0}));
  frame.push_back(Chunk::block(prefix + ".Body", std::move(body)));
  return Chunk::block(prefix, std::move(frame));
}

void push_asdu_header(std::vector<Chunk>& fields, const std::string& prefix,
                      std::uint8_t type_id) {
  NumberSpec type;
  type.width = 1;
  type.default_value = type_id;
  type.legal_values = {1, 11, 45, 58, 100, 102};
  fields.push_back(Chunk::number(prefix + ".TypeId", type).with_tag("cs-typeid"));
  NumberSpec vsq;
  vsq.width = 1;
  vsq.default_value = 1;
  vsq.legal_values = {1, 2, 3, 0x81, 0x83, 0x8A};
  fields.push_back(Chunk::number(prefix + ".Vsq", vsq).with_tag("cs-vsq"));
  NumberSpec cot;
  cot.width = 1;
  cot.default_value = 6;
  cot.legal_values = {3, 6, 7, 20};
  fields.push_back(Chunk::number(prefix + ".Cot", cot).with_tag("cs-cot"));
  fields.push_back(Chunk::token(prefix + ".Originator", 1, Endian::Big, 0));
  NumberSpec ca;
  ca.width = 2;
  ca.endian = Endian::Little;
  ca.default_value = 3;
  ca.legal_values = {3, 0xFFFF};
  fields.push_back(Chunk::number(prefix + ".Ca", ca).with_tag("cs-ca"));
}

Chunk ioa_field(const std::string& name, std::uint32_t default_value) {
  NumberSpec spec;
  spec.width = 3;
  spec.endian = Endian::Little;
  spec.default_value = default_value;
  spec.min_value = 0;
  spec.max_value = 0x2100;
  return Chunk::number(name, spec).with_tag("cs-ioa");
}

}  // namespace

model::DataModelSet cs101_pit() {
  model::DataModelSet set;

  // Interrogation session.
  {
    std::vector<Chunk> asdu;
    push_asdu_header(asdu, "CsInterro.I.Asdu", 100);
    asdu.push_back(ioa_field("CsInterro.I.Asdu.Ioa", 0));
    NumberSpec qoi;
    qoi.width = 1;
    qoi.default_value = 20;
    qoi.legal_values = {20, 21, 22, 29, 36};
    asdu.push_back(Chunk::number("CsInterro.I.Asdu.Qoi", qoi).with_tag("cs-qoi"));
    std::vector<Chunk> session;
    session.push_back(startdt_frame("CsInterro"));
    session.push_back(i_frame("CsInterro.I", std::move(asdu)));
    DataModel model("CsInterrogation",
                    Chunk::block("CsInterrogation.root", std::move(session)));
    model.set_opcode(100);
    set.add(std::move(model));
  }

  // Single command session (C_SC_NA_1): select then execute, matching IOA.
  {
    auto command_asdu = [](const std::string& prefix, std::uint8_t sco_default) {
      std::vector<Chunk> asdu;
      push_asdu_header(asdu, prefix, 45);
      asdu.push_back(ioa_field(prefix + ".Ioa", 0x2000));
      NumberSpec sco;
      sco.width = 1;
      sco.default_value = sco_default;
      sco.legal_values = {0x00, 0x01, 0x80, 0x81};
      asdu.push_back(Chunk::number(prefix + ".Sco", sco).with_tag("cs-sco"));
      return asdu;
    };
    std::vector<Chunk> session;
    session.push_back(startdt_frame("CsCmd"));
    session.push_back(
        i_frame("CsCmd.Select", command_asdu("CsCmd.Select.Asdu", 0x81)));
    session.push_back(
        i_frame("CsCmd.Execute", command_asdu("CsCmd.Execute.Asdu", 0x01)));
    DataModel model("CsSingleCommand",
                    Chunk::block("CsSingleCommand.root", std::move(session)));
    model.set_opcode(45);
    set.add(std::move(model));
  }

  // Time-tagged single command session (C_SC_TA_1 — the time-OOB site).
  {
    std::vector<Chunk> asdu;
    push_asdu_header(asdu, "CsCmdT.I.Asdu", 58);
    asdu.push_back(ioa_field("CsCmdT.I.Asdu.Ioa", 0x2000));
    NumberSpec sco;
    sco.width = 1;
    sco.default_value = 0x01;
    sco.legal_values = {0x00, 0x01, 0x80, 0x81};
    asdu.push_back(Chunk::number("CsCmdT.I.Asdu.Sco", sco).with_tag("cs-sco"));
    BlobSpec time;
    time.default_value = {0x00, 0x00, 0x1E, 0x0A, 0x0C, 0x06, 0x18};
    time.max_generated = 7;  // variable: can truncate below the 7 octets
    asdu.push_back(Chunk::blob("CsCmdT.I.Asdu.Time", time).with_tag("cs-time"));
    std::vector<Chunk> session;
    session.push_back(startdt_frame("CsCmdT"));
    session.push_back(i_frame("CsCmdT.I", std::move(asdu)));
    DataModel model("CsTimedCommand",
                    Chunk::block("CsTimedCommand.root", std::move(session)));
    model.set_opcode(58);
    set.add(std::move(model));
  }

  // Sequence-of-measurands session (M_ME_NB_1, SQ-capable — the seq-OOB
  // site). Elements blob is variable so the VSQ count can disagree with it.
  {
    std::vector<Chunk> asdu;
    push_asdu_header(asdu, "CsMeas.I.Asdu", 11);
    asdu.push_back(ioa_field("CsMeas.I.Asdu.Ioa", 0x100));
    BlobSpec elements;
    elements.default_value = {0x10, 0x00, 0x00, 0x20, 0x00, 0x00};
    elements.max_generated = 24;
    elements.unit = 3;
    asdu.push_back(
        Chunk::blob("CsMeas.I.Asdu.Elements", elements).with_tag("cs-elems"));
    std::vector<Chunk> session;
    session.push_back(startdt_frame("CsMeas"));
    session.push_back(i_frame("CsMeas.I", std::move(asdu)));
    DataModel model("CsMeasurands",
                    Chunk::block("CsMeasurands.root", std::move(session)));
    model.set_opcode(11);
    set.add(std::move(model));
  }

  // Read-command session (C_RD_NA_1): IOA banks drive distinct replies.
  {
    std::vector<Chunk> asdu;
    push_asdu_header(asdu, "CsRead.I.Asdu", 102);
    NumberSpec ioa;
    ioa.width = 3;
    ioa.endian = Endian::Little;
    ioa.default_value = 0x0100;
    ioa.min_value = 0;
    ioa.max_value = 0x0300;
    asdu.push_back(Chunk::number("CsRead.I.Asdu.Ioa", ioa).with_tag("cs-ioa"));
    std::vector<Chunk> session;
    session.push_back(startdt_frame("CsRead"));
    session.push_back(i_frame("CsRead.I", std::move(asdu)));
    DataModel model("CsReadCommand",
                    Chunk::block("CsReadCommand.root", std::move(session)));
    model.set_opcode(102);
    set.add(std::move(model));
  }

  // Coarse raw session: opaque variable-length ASDU — reaches the
  // truncated-header shapes (including the 2-octet ASDU of Listing 2).
  {
    BlobSpec asdu;
    asdu.default_value = {100, 1, 6, 0, 3, 0, 0, 0, 0, 20};
    asdu.max_generated = 20;
    std::vector<Chunk> session;
    session.push_back(startdt_frame("RawCs"));
    session.push_back(
        i_frame("RawCs.I", {Chunk::blob("RawCs.I.Asdu.Blob", asdu)
                                .with_tag("cs-asdu")}));
    set.add(DataModel("RawCs101", Chunk::block("RawCs101.root", std::move(session))));
  }

  return set;
}

}  // namespace icsfuzz::pits
