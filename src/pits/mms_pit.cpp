// libiec61850 (MMS) pit.
//
// Every service model is a session: TPKT(initiate-Request) followed by
// TPKT(confirmed-Request). Shared semantic tags: mms-pdusize, mms-invoke,
// mms-ref (object reference strings), mms-class, mms-domain,
// mms-writeval. Object references are String chunks whose defaults point
// into the served IED directory; string mutation explores neighbouring
// names while donor reuse transfers *resolvable* references between the
// Read / Write / GetVariableAccessAttributes models — the paper's
// cross-packet-type chunk similarity in its purest form.

#include "pits/pits.hpp"

namespace icsfuzz::pits {
namespace {

using model::BlobSpec;
using model::Chunk;
using model::DataModel;
using model::NumberSpec;
using model::Relation;
using model::RelationKind;
using model::StringSpec;
using Endian = icsfuzz::Endian;

Chunk tpkt(const std::string& prefix, std::vector<Chunk> pdu_fields) {
  std::vector<Chunk> frame;
  frame.push_back(Chunk::token(prefix + ".Version", 1, Endian::Big, 0x03));
  frame.push_back(Chunk::token(prefix + ".Reserved", 1, Endian::Big, 0x00));
  frame.push_back(
      Chunk::number(prefix + ".Length", NumberSpec{.width = 2})
          .with_relation(
              Relation{RelationKind::SizeOf, prefix + ".Pdu", 1, 4}));
  frame.push_back(Chunk::block(prefix + ".Pdu", std::move(pdu_fields)));
  return Chunk::block(prefix, std::move(frame));
}

std::vector<Chunk> tlv(const std::string& prefix, std::uint8_t tag,
                       std::vector<Chunk> inner) {
  std::vector<Chunk> fields;
  fields.push_back(Chunk::token(prefix + ".Tag", 1, Endian::Big, tag));
  fields.push_back(
      Chunk::number(prefix + ".Len", NumberSpec{.width = 1})
          .with_relation(Relation{RelationKind::SizeOf, prefix + ".Val", 1, 0}));
  fields.push_back(Chunk::block(prefix + ".Val", std::move(inner)));
  return fields;
}

Chunk tlv_block(const std::string& prefix, std::uint8_t tag,
                std::vector<Chunk> inner) {
  return Chunk::block(prefix, tlv(prefix, tag, std::move(inner)));
}

/// initiate-Request: PDU size, version 1, parameter CBB, services bitmap.
Chunk initiate_frame(const std::string& prefix) {
  NumberSpec pdu_size;
  pdu_size.width = 4;
  pdu_size.default_value = 32000;
  pdu_size.min_value = 512;
  pdu_size.max_value = 70000;
  BlobSpec services;
  services.length = 8;
  services.default_value = {0xEE, 0x1C, 0x00, 0x00, 0x04, 0x08, 0x00, 0x79};
  std::vector<Chunk> params;
  params.push_back(tlv_block(prefix + ".PduSize", 0x80,
                             {Chunk::number(prefix + ".PduSize.Value", pdu_size)
                                  .with_tag("mms-pdusize")}));
  params.push_back(
      tlv_block(prefix + ".Ver", 0x81,
                {Chunk::number(prefix + ".Ver.Value",
                               NumberSpec{.width = 1, .default_value = 1})
                     .with_tag("mms-version")}));
  params.push_back(
      tlv_block(prefix + ".Cbb", 0x82,
                {Chunk::number(prefix + ".Cbb.Value",
                               NumberSpec{.width = 2, .default_value = 0xF100})
                     .with_tag("mms-cbb")}));
  params.push_back(tlv_block(prefix + ".Svcs", 0x83,
                             {Chunk::blob(prefix + ".Svcs.Value", services)
                                  .with_tag("mms-services")}));
  return tpkt(prefix,
              tlv(prefix + ".Init", 0xA8,
                  {Chunk::block(prefix + ".Init.Params", std::move(params))}));
}

Chunk invoke_field(const std::string& prefix) {
  return tlv_block(prefix, 0x02,
                   {Chunk::number(prefix + ".Value",
                                  NumberSpec{.width = 4, .default_value = 1})
                        .with_tag("mms-invoke")});
}

Chunk reference_field(const std::string& prefix, std::string default_ref) {
  StringSpec ref;
  ref.default_value = std::move(default_ref);
  ref.max_generated = 48;
  return tlv_block(prefix, 0x1A,
                   {Chunk::string(prefix + ".Text", ref).with_tag("mms-ref")});
}

DataModel service_session(const std::string& name, std::uint8_t service_tag,
                          std::vector<Chunk> service_fields,
                          std::uint64_t opcode) {
  std::vector<Chunk> request_inner;
  request_inner.push_back(invoke_field(name + ".Req.Invoke"));
  request_inner.push_back(
      tlv_block(name + ".Req.Svc", service_tag, std::move(service_fields)));
  std::vector<Chunk> session;
  session.push_back(initiate_frame(name + ".Assoc"));
  session.push_back(tpkt(name + ".Req", tlv(name + ".Req.Conf", 0xA0,
                                            std::move(request_inner))));
  DataModel model(name, Chunk::block(name + ".root", std::move(session)));
  model.set_opcode(opcode);
  return model;
}

}  // namespace

model::DataModelSet mms_pit() {
  model::DataModelSet set;

  // Association alone.
  {
    std::vector<Chunk> session;
    session.push_back(initiate_frame("MmsAssoc"));
    set.add(DataModel("MmsAssociate",
                      Chunk::block("MmsAssociate.root", std::move(session))));
  }

  // Status / Identify (atomic services).
  set.add(service_session(
      "MmsStatus", 0x80,
      {Chunk::number("MmsStatus.Derived",
                     NumberSpec{.width = 1, .default_value = 0})
           .with_tag("mms-statusarg")},
      0x80));
  set.add(service_session(
      "MmsIdentify", 0x82,
      {Chunk::number("MmsIdentify.Pad",
                     NumberSpec{.width = 1, .default_value = 0})
           .with_tag("mms-pad")},
      0x82));

  // GetNameList: LD directory and per-domain variables with continuation.
  set.add(service_session(
      "MmsNameListDevices", 0xA1,
      {tlv_block("MmsNameListDevices.Class", 0x80,
                 {Chunk::number("MmsNameListDevices.Class.Value",
                                NumberSpec{.width = 1,
                                           .default_value = 9,
                                           .legal_values = {0, 9}})
                      .with_tag("mms-class")})},
      0xA1));
  {
    StringSpec domain;
    domain.default_value = "simpleIOGenericIO";
    domain.max_generated = 24;
    StringSpec after;
    after.default_value = "LLN0$Mod";
    after.max_generated = 24;
    set.add(service_session(
        "MmsNameListVariables", 0xA1,
        {tlv_block("MmsNameListVariables.Class", 0x80,
                   {Chunk::number("MmsNameListVariables.Class.Value",
                                  NumberSpec{.width = 1,
                                             .default_value = 9,
                                             .legal_values = {0, 9}})
                        .with_tag("mms-class")}),
         tlv_block("MmsNameListVariables.Domain", 0x81,
                   {Chunk::string("MmsNameListVariables.Domain.Text", domain)
                        .with_tag("mms-domain")}),
         tlv_block("MmsNameListVariables.After", 0x82,
                   {Chunk::string("MmsNameListVariables.After.Text", after)
                        .with_tag("mms-after")})},
        0xA2));
  }

  // Read: one and two item variants with references into both devices.
  set.add(service_session(
      "MmsReadStVal", 0xA4,
      {reference_field("MmsReadStVal.Item",
                       "simpleIOGenericIO/GGIO1$ST$Ind1$stVal")},
      0xA4));
  set.add(service_session(
      "MmsReadMag", 0xA4,
      {reference_field("MmsReadMag.Item",
                       "simpleIOGenericIO/MMXU1$MX$TotW$mag"),
       reference_field("MmsReadMag.Item2",
                       "simpleIOControl/XCBR1$ST$Pos$stVal")},
      0xA5));

  // Write: boolean control value and config value.
  {
    std::vector<Chunk> fields;
    fields.push_back(reference_field(
        "MmsWriteCtl.Item", "simpleIOGenericIO/GGIO1$CO$SPCSO1$ctlVal"));
    fields.push_back(
        tlv_block("MmsWriteCtl.Value", 0x83,
                  {Chunk::number("MmsWriteCtl.Value.Bool",
                                 NumberSpec{.width = 1,
                                            .default_value = 1,
                                            .legal_values = {0, 1}})
                       .with_tag("mms-writeval")}));
    set.add(service_session("MmsWriteCtl", 0xA5, std::move(fields), 0xA6));
  }
  {
    std::vector<Chunk> fields;
    fields.push_back(reference_field("MmsWriteCfg.Item",
                                     "simpleIOGenericIO/MMXU1$CF$TotW$db"));
    fields.push_back(
        tlv_block("MmsWriteCfg.Value", 0x86,
                  {Chunk::number("MmsWriteCfg.Value.Uint",
                                 NumberSpec{.width = 4, .default_value = 250})
                       .with_tag("mms-writeval")}));
    set.add(service_session("MmsWriteCfg", 0xA5, std::move(fields), 0xA7));
  }

  // GetVariableAccessAttributes.
  set.add(service_session(
      "MmsVarAttributes", 0xA6,
      {reference_field("MmsVarAttributes.Item",
                       "simpleIOControl/XCBR1$CO$Pos$ctlVal")},
      0xA8));

  // InformationReport: RptID + inclusion bitstring + values.
  {
    StringSpec rpt_id;
    rpt_id.default_value = "urcbA";
    rpt_id.max_generated = 16;
    BlobSpec inclusion;
    inclusion.default_value = {0x00, 0xC0};  // 2 points included
    inclusion.max_generated = 4;
    std::vector<Chunk> report_inner;
    report_inner.push_back(
        tlv_block("MmsReport.RptId", 0x1A,
                  {Chunk::string("MmsReport.RptId.Text", rpt_id)
                       .with_tag("mms-rptid")}));
    report_inner.push_back(
        tlv_block("MmsReport.Inclusion", 0x84,
                  {Chunk::blob("MmsReport.Inclusion.Bits", inclusion)
                       .with_tag("mms-inclusion")}));
    report_inner.push_back(
        tlv_block("MmsReport.V1", 0x83,
                  {Chunk::number("MmsReport.V1.Value",
                                 NumberSpec{.width = 1, .default_value = 1})
                       .with_tag("mms-writeval")}));
    report_inner.push_back(
        tlv_block("MmsReport.V2", 0x86,
                  {Chunk::number("MmsReport.V2.Value",
                                 NumberSpec{.width = 4, .default_value = 7})
                       .with_tag("mms-writeval")}));
    std::vector<Chunk> session;
    session.push_back(initiate_frame("MmsReport.Assoc"));
    session.push_back(
        tpkt("MmsReport.Rpt",
             tlv("MmsReport.Rpt.Info", 0xA3,
                 {Chunk::block("MmsReport.Rpt.Body", std::move(report_inner))})));
    DataModel model("MmsReport",
                    Chunk::block("MmsReport.root", std::move(session)));
    model.set_opcode(0xA3);
    set.add(std::move(model));
  }

  // Coarse raw session.
  {
    BlobSpec pdu;
    pdu.default_value = {0xA0, 0x05, 0x02, 0x01, 0x01, 0x80, 0x00};
    pdu.max_generated = 48;
    std::vector<Chunk> session;
    session.push_back(initiate_frame("RawMms.Assoc"));
    session.push_back(
        tpkt("RawMms.Frame", {Chunk::blob("RawMms.Frame.Blob", pdu)}));
    set.add(DataModel("RawMms", Chunk::block("RawMms.root", std::move(session))));
  }

  return set;
}

}  // namespace icsfuzz::pits
