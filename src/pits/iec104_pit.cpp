// IEC 60870-5-104 pit — data models for the IEC104 target.
//
// Shared semantic tags: i104-seq (sequence octets), i104-cot, i104-ca
// (common address), i104-ioa (information object address), i104-qoi,
// i104-sco (single command qualifier), i104-time (CP56Time2a).
//
// Stateful note: I-frames are only processed after STARTDT, so every
// command model is a *session*: a STARTDT-act U frame followed by one or
// two I frames with the correct send-sequence numbers.

#include "pits/pits.hpp"

namespace icsfuzz::pits {
namespace {

using model::BlobSpec;
using model::Chunk;
using model::DataModel;
using model::NumberSpec;
using model::Relation;
using model::RelationKind;
using Endian = icsfuzz::Endian;

/// STARTDT-act U frame (constant six bytes, all tokens).
Chunk startdt_frame(const std::string& prefix) {
  return Chunk::block(prefix + ".StartDt",
                      {Chunk::token(prefix + ".StartDt.Start", 1, Endian::Big, 0x68),
                       Chunk::token(prefix + ".StartDt.Length", 1, Endian::Big, 4),
                       Chunk::token(prefix + ".StartDt.Control", 4, Endian::Big,
                                    0x07000000)});
}

/// I-frame wrapper: 0x68, length relation, send/recv sequence numbers and
/// an ASDU block assembled from `asdu_fields`.
Chunk i_frame(const std::string& prefix, std::uint16_t send_seq,
              std::vector<Chunk> asdu_fields) {
  NumberSpec send;
  send.width = 2;
  send.endian = Endian::Little;
  send.default_value = static_cast<std::uint64_t>(send_seq) << 1;
  NumberSpec recv;
  recv.width = 2;
  recv.endian = Endian::Little;
  recv.default_value = 0;

  std::vector<Chunk> body;
  body.push_back(
      Chunk::number(prefix + ".SendSeq", send).with_tag("i104-seq"));
  body.push_back(
      Chunk::number(prefix + ".RecvSeq", recv).with_tag("i104-seq"));
  body.push_back(Chunk::block(prefix + ".Asdu", std::move(asdu_fields)));

  std::vector<Chunk> frame;
  frame.push_back(Chunk::token(prefix + ".Start", 1, Endian::Big, 0x68));
  frame.push_back(
      Chunk::number(prefix + ".Length", NumberSpec{.width = 1})
          .with_relation(Relation{RelationKind::SizeOf, prefix + ".Body", 1, 0}));
  frame.push_back(Chunk::block(prefix + ".Body", std::move(body)));
  return Chunk::block(prefix, std::move(frame));
}

/// Common six-octet ASDU header: type, VSQ, COT, originator, CA.
void push_asdu_header(std::vector<Chunk>& fields, const std::string& prefix,
                      std::uint8_t type_id, std::uint8_t default_cot) {
  fields.push_back(Chunk::token(prefix + ".TypeId", 1, Endian::Big, type_id));
  NumberSpec vsq;
  vsq.width = 1;
  vsq.default_value = 1;
  fields.push_back(Chunk::number(prefix + ".Vsq", vsq).with_tag("i104-vsq"));
  NumberSpec cot;
  cot.width = 1;
  cot.default_value = default_cot;
  cot.legal_values = {5, 6, 7, 8, 20, 44, 45};
  fields.push_back(Chunk::number(prefix + ".Cot", cot).with_tag("i104-cot"));
  fields.push_back(Chunk::token(prefix + ".Originator", 1, Endian::Big, 0));
  NumberSpec ca;
  ca.width = 2;
  ca.endian = Endian::Little;
  ca.default_value = 0x0001;
  ca.legal_values = {0x0001, 0xFFFF};
  fields.push_back(Chunk::number(prefix + ".Ca", ca).with_tag("i104-ca"));
}

Chunk ioa_field(const std::string& name, std::uint32_t default_value) {
  NumberSpec spec;
  spec.width = 3;
  spec.endian = Endian::Little;
  spec.default_value = default_value;
  spec.min_value = 0;
  spec.max_value = 0x2000;
  return Chunk::number(name, spec).with_tag("i104-ioa");
}

}  // namespace

model::DataModelSet iec104_pit() {
  model::DataModelSet set;

  // Pure U-frame handshake model (STARTDT / TESTFR / STOPDT).
  {
    NumberSpec control;
    control.width = 1;
    control.default_value = 0x07;
    control.legal_values = {0x07, 0x0B, 0x13, 0x23, 0x43, 0x83};
    std::vector<Chunk> fields;
    fields.push_back(Chunk::token("UFrame.Start", 1, Endian::Big, 0x68));
    fields.push_back(Chunk::token("UFrame.Length", 1, Endian::Big, 4));
    fields.push_back(
        Chunk::number("UFrame.Control", control).with_tag("i104-ucontrol"));
    fields.push_back(Chunk::token("UFrame.Pad", 3, Endian::Big, 0));
    set.add(DataModel("UFrame", Chunk::block("UFrame.root", std::move(fields))));
  }

  // Interrogation session: STARTDT + C_IC_NA_1.
  {
    std::vector<Chunk> asdu;
    push_asdu_header(asdu, "Interro.I.Asdu", 100, 6);
    asdu.push_back(ioa_field("Interro.I.Asdu.Ioa", 0));
    NumberSpec qoi;
    qoi.width = 1;
    qoi.default_value = 20;
    qoi.legal_values = {20, 21, 22, 36};
    asdu.push_back(Chunk::number("Interro.I.Asdu.Qoi", qoi).with_tag("i104-qoi"));
    std::vector<Chunk> session;
    session.push_back(startdt_frame("Interro"));
    session.push_back(i_frame("Interro.I", 0, std::move(asdu)));
    DataModel model("Interrogation",
                    Chunk::block("Interrogation.root", std::move(session)));
    model.set_opcode(100);
    set.add(std::move(model));
  }

  // Select-then-execute single-command session: STARTDT + two C_SC_NA_1.
  {
    auto command_asdu = [](const std::string& prefix, std::uint8_t sco_default) {
      std::vector<Chunk> asdu;
      push_asdu_header(asdu, prefix, 45, 6);
      asdu.push_back(ioa_field(prefix + ".Ioa", 0x1000));
      NumberSpec sco;
      sco.width = 1;
      sco.default_value = sco_default;
      sco.legal_values = {0x00, 0x01, 0x80, 0x81};
      asdu.push_back(Chunk::number(prefix + ".Sco", sco).with_tag("i104-sco"));
      return asdu;
    };
    std::vector<Chunk> session;
    session.push_back(startdt_frame("SingleCmd"));
    session.push_back(
        i_frame("SingleCmd.Select", 0, command_asdu("SingleCmd.Select.Asdu", 0x81)));
    session.push_back(
        i_frame("SingleCmd.Execute", 1, command_asdu("SingleCmd.Execute.Asdu", 0x01)));
    DataModel model("SingleCommand",
                    Chunk::block("SingleCommand.root", std::move(session)));
    model.set_opcode(45);
    set.add(std::move(model));
  }

  // Clock-sync session: STARTDT + C_CS_NA_1 with CP56Time2a payload.
  {
    std::vector<Chunk> asdu;
    push_asdu_header(asdu, "ClockSync.I.Asdu", 103, 6);
    asdu.push_back(ioa_field("ClockSync.I.Asdu.Ioa", 0));
    BlobSpec time;
    time.length = 7;
    time.default_value = {0x00, 0x00, 0x1E, 0x0A, 0x0C, 0x06, 0x18};
    asdu.push_back(
        Chunk::blob("ClockSync.I.Asdu.Time", time).with_tag("i104-time"));
    std::vector<Chunk> session;
    session.push_back(startdt_frame("ClockSync"));
    session.push_back(i_frame("ClockSync.I", 0, std::move(asdu)));
    DataModel model("ClockSync",
                    Chunk::block("ClockSync.root", std::move(session)));
    model.set_opcode(103);
    set.add(std::move(model));
  }

  // Double-command session (C_DC_NA_1): DCS values and select gating.
  {
    std::vector<Chunk> asdu;
    push_asdu_header(asdu, "DoubleCmd.I.Asdu", 46, 6);
    NumberSpec ioa;
    ioa.width = 3;
    ioa.endian = Endian::Little;
    ioa.default_value = 0x1800;
    ioa.min_value = 0;
    ioa.max_value = 0x2000;
    asdu.push_back(
        Chunk::number("DoubleCmd.I.Asdu.Ioa", ioa).with_tag("i104-ioa"));
    NumberSpec dco;
    dco.width = 1;
    dco.default_value = 0x01;
    dco.legal_values = {0x01, 0x02, 0x81, 0x82};
    asdu.push_back(Chunk::number("DoubleCmd.I.Asdu.Dco", dco).with_tag("i104-dco"));
    std::vector<Chunk> session;
    session.push_back(startdt_frame("DoubleCmd"));
    session.push_back(i_frame("DoubleCmd.I", 0, std::move(asdu)));
    DataModel model("DoubleCommand",
                    Chunk::block("DoubleCommand.root", std::move(session)));
    model.set_opcode(46);
    set.add(std::move(model));
  }

  // Setpoint session (C_SE_NB_1): select then execute with scaled value.
  {
    auto setpoint_asdu = [](const std::string& prefix, std::uint8_t qos_default) {
      std::vector<Chunk> asdu;
      push_asdu_header(asdu, prefix, 49, 6);
      NumberSpec ioa;
      ioa.width = 3;
      ioa.endian = Endian::Little;
      ioa.default_value = 0x1900;
      ioa.min_value = 0;
      ioa.max_value = 0x2000;
      asdu.push_back(Chunk::number(prefix + ".Ioa", ioa).with_tag("i104-ioa"));
      NumberSpec value;
      value.width = 2;
      value.endian = Endian::Little;
      value.default_value = 0x0400;
      asdu.push_back(
          Chunk::number(prefix + ".Value", value).with_tag("i104-setval"));
      NumberSpec qos;
      qos.width = 1;
      qos.default_value = qos_default;
      qos.legal_values = {0x00, 0x01, 0x80, 0x81};
      asdu.push_back(Chunk::number(prefix + ".Qos", qos).with_tag("i104-qos"));
      return asdu;
    };
    std::vector<Chunk> session;
    session.push_back(startdt_frame("Setpoint"));
    session.push_back(i_frame("Setpoint.Select", 0,
                              setpoint_asdu("Setpoint.Select.Asdu", 0x80)));
    session.push_back(i_frame("Setpoint.Execute", 1,
                              setpoint_asdu("Setpoint.Execute.Asdu", 0x00)));
    DataModel model("SetpointCommand",
                    Chunk::block("SetpointCommand.root", std::move(session)));
    model.set_opcode(49);
    set.add(std::move(model));
  }

  // Counter-interrogation session (C_CI_NA_1).
  {
    std::vector<Chunk> asdu;
    push_asdu_header(asdu, "CounterInterro.I.Asdu", 101, 6);
    asdu.push_back(ioa_field("CounterInterro.I.Asdu.Ioa", 0));
    NumberSpec qcc;
    qcc.width = 1;
    qcc.default_value = 0x05;
    qcc.legal_values = {0x01, 0x05, 0x45, 0xC5};
    asdu.push_back(
        Chunk::number("CounterInterro.I.Asdu.Qcc", qcc).with_tag("i104-qcc"));
    std::vector<Chunk> session;
    session.push_back(startdt_frame("CounterInterro"));
    session.push_back(i_frame("CounterInterro.I", 0, std::move(asdu)));
    DataModel model("CounterInterrogation",
                    Chunk::block("CounterInterrogation.root", std::move(session)));
    model.set_opcode(101);
    set.add(std::move(model));
  }

  // Read-command session (C_RD_NA_1): IOA banks drive distinct replies.
  {
    std::vector<Chunk> asdu;
    push_asdu_header(asdu, "ReadCmd.I.Asdu", 102, 5);
    NumberSpec ioa;
    ioa.width = 3;
    ioa.endian = Endian::Little;
    ioa.default_value = 0x0100;
    ioa.min_value = 0;
    ioa.max_value = 0x0300;
    asdu.push_back(Chunk::number("ReadCmd.I.Asdu.Ioa", ioa).with_tag("i104-ioa"));
    std::vector<Chunk> session;
    session.push_back(startdt_frame("ReadCmd"));
    session.push_back(i_frame("ReadCmd.I", 0, std::move(asdu)));
    DataModel model("ReadCommand",
                    Chunk::block("ReadCommand.root", std::move(session)));
    model.set_opcode(102);
    set.add(std::move(model));
  }

  // Coarse raw session: STARTDT + one I frame with an opaque ASDU blob.
  {
    BlobSpec asdu;
    asdu.default_value = {100, 1, 6, 0, 1, 0, 0, 0, 0, 20};
    asdu.max_generated = 32;
    std::vector<Chunk> session;
    session.push_back(startdt_frame("Raw104"));
    session.push_back(i_frame("Raw104.I", 0,
                              {Chunk::blob("Raw104.I.Asdu.Blob", asdu)}));
    set.add(DataModel("Raw104", Chunk::block("Raw104.root", std::move(session))));
  }

  return set;
}

}  // namespace icsfuzz::pits
