// opendnp3 pit — DNP3 link frames with header and block CRC fixups.
//
// Shared semantic tags: dnp-dest / dnp-src (link addresses), dnp-appctl,
// dnp-func, dnp-group / dnp-var / dnp-qual (object header), dnp-range,
// dnp-crob (control block payload).
//
// The pit keeps the application fragment within one 16-byte link block so
// a single data-CRC fixup covers it; the server itself accepts multi-block
// frames (the coarse model exercises longer shapes via its blob).

#include "pits/pits.hpp"

namespace icsfuzz::pits {
namespace {

using model::BlobSpec;
using model::Chunk;
using model::DataModel;
using model::Fixup;
using model::FixupKind;
using model::NumberSpec;
using model::Relation;
using model::RelationKind;
using Endian = icsfuzz::Endian;

/// Wraps an application fragment (transport octet + app bytes) in a full
/// link frame: header with CRC fixup, then the payload with its block CRC.
DataModel link_frame(const std::string& name, std::vector<Chunk> app_fields,
                     std::uint64_t opcode) {
  std::vector<Chunk> payload;
  // Transport header: FIR|FIN, sequence 0.
  payload.push_back(Chunk::token(name + ".Transport", 1, Endian::Big, 0xC0));
  for (Chunk& field : app_fields) payload.push_back(std::move(field));

  NumberSpec dest;
  dest.width = 2;
  dest.endian = Endian::Little;
  dest.default_value = 10;
  dest.legal_values = {10, 0xFFFF};
  NumberSpec src;
  src.width = 2;
  src.endian = Endian::Little;
  src.default_value = 1;
  NumberSpec control;
  control.width = 1;
  control.default_value = 0xC4;  // DIR|PRM, unconfirmed user data
  control.legal_values = {0xC4, 0xC3, 0xC9, 0x44};

  std::vector<Chunk> header;
  header.push_back(Chunk::token(name + ".Start0", 1, Endian::Big, 0x05));
  header.push_back(Chunk::token(name + ".Start1", 1, Endian::Big, 0x64));
  header.push_back(
      Chunk::number(name + ".Length", NumberSpec{.width = 1})
          .with_relation(
              Relation{RelationKind::SizeOf, name + ".Payload", 1, 5}));
  header.push_back(
      Chunk::number(name + ".Control", control).with_tag("dnp-linkctl"));
  header.push_back(Chunk::number(name + ".Dest", dest).with_tag("dnp-dest"));
  header.push_back(Chunk::number(name + ".Src", src).with_tag("dnp-src"));

  std::vector<Chunk> fields;
  fields.push_back(Chunk::block(name + ".Header", std::move(header)));
  fields.push_back(
      Chunk::number(name + ".HeaderCrc",
                    NumberSpec{.width = 2, .endian = Endian::Little})
          .with_fixup(Fixup{FixupKind::CrcDnp3, name + ".Header"}));
  fields.push_back(Chunk::block(name + ".Payload", std::move(payload)));
  fields.push_back(
      Chunk::number(name + ".BlockCrc",
                    NumberSpec{.width = 2, .endian = Endian::Little})
          .with_fixup(Fixup{FixupKind::CrcDnp3, name + ".Payload"}));

  DataModel model(name, Chunk::block(name + ".root", std::move(fields)));
  model.set_opcode(opcode);
  return model;
}

Chunk app_control(const std::string& name) {
  NumberSpec spec;
  spec.width = 1;
  spec.default_value = 0xC0;  // FIR|FIN, sequence 0
  spec.legal_values = {0xC0, 0xC1, 0xC2};
  return Chunk::number(name, spec).with_tag("dnp-appctl");
}

Chunk range_field(const std::string& name, std::uint8_t default_value) {
  NumberSpec spec;
  spec.width = 1;
  spec.default_value = default_value;
  spec.min_value = 0;
  spec.max_value = 32;
  return Chunk::number(name, spec).with_tag("dnp-range");
}

}  // namespace

model::DataModelSet dnp3_pit() {
  model::DataModelSet set;

  // READ g1v1 (binary inputs) with 1-byte start/stop qualifier.
  set.add(link_frame(
      "DnpReadBinary",
      {app_control("DnpReadBinary.AppCtl"),
       Chunk::token("DnpReadBinary.Func", 1, Endian::Big, 0x01),
       Chunk::token("DnpReadBinary.Group", 1, Endian::Big, 0x01),
       Chunk::number("DnpReadBinary.Variation",
                     NumberSpec{.width = 1, .default_value = 1,
                                .legal_values = {0, 1, 2}})
           .with_tag("dnp-var"),
       Chunk::token("DnpReadBinary.Qualifier", 1, Endian::Big, 0x00),
       range_field("DnpReadBinary.StartIdx", 0),
       range_field("DnpReadBinary.StopIdx", 7)},
      0x0101));

  // READ g30v1 (analog inputs) with 2-byte start/stop qualifier.
  {
    NumberSpec range16;
    range16.width = 2;
    range16.endian = Endian::Little;
    range16.default_value = 0;
    range16.min_value = 0;
    range16.max_value = 32;
    NumberSpec stop16 = range16;
    stop16.default_value = 7;
    set.add(link_frame(
        "DnpReadAnalog",
        {app_control("DnpReadAnalog.AppCtl"),
         Chunk::token("DnpReadAnalog.Func", 1, Endian::Big, 0x01),
         Chunk::token("DnpReadAnalog.Group", 1, Endian::Big, 0x1E),
         Chunk::number("DnpReadAnalog.Variation",
                       NumberSpec{.width = 1, .default_value = 1,
                                  .legal_values = {1, 3}})
             .with_tag("dnp-var"),
         Chunk::token("DnpReadAnalog.Qualifier", 1, Endian::Big, 0x01),
         Chunk::number("DnpReadAnalog.StartIdx", range16).with_tag("dnp-range16"),
         Chunk::number("DnpReadAnalog.StopIdx", stop16).with_tag("dnp-range16")},
        0x011E));
  }

  // READ "all objects" (qualifier 0x06) — class-style poll.
  set.add(link_frame(
      "DnpReadAll",
      {app_control("DnpReadAll.AppCtl"),
       Chunk::token("DnpReadAll.Func", 1, Endian::Big, 0x01),
       Chunk::number("DnpReadAll.Group",
                     NumberSpec{.width = 1, .default_value = 1,
                                .legal_values = {1, 30}})
           .with_tag("dnp-group"),
       Chunk::number("DnpReadAll.Variation",
                     NumberSpec{.width = 1, .default_value = 1,
                                .legal_values = {1, 3}})
           .with_tag("dnp-var"),
       Chunk::token("DnpReadAll.Qualifier", 1, Endian::Big, 0x06)},
      0x0106));

  // DIRECT_OPERATE CROB (g12v1, qualifier 0x17, single index).
  auto crob_fields = [](const std::string& prefix, std::uint8_t function) {
    NumberSpec op;
    op.width = 1;
    op.default_value = 0x01;  // latch on
    op.legal_values = {0x01, 0x03, 0x04, 0x41};
    std::vector<Chunk> fields;
    fields.push_back(app_control(prefix + ".AppCtl"));
    fields.push_back(Chunk::token(prefix + ".Func", 1, Endian::Big, function));
    fields.push_back(Chunk::token(prefix + ".Group", 1, Endian::Big, 0x0C));
    fields.push_back(Chunk::token(prefix + ".Variation", 1, Endian::Big, 0x01));
    fields.push_back(Chunk::token(prefix + ".Qualifier", 1, Endian::Big, 0x17));
    fields.push_back(Chunk::token(prefix + ".Count", 1, Endian::Big, 0x01));
    fields.push_back(range_field(prefix + ".Index", 3));
    fields.push_back(Chunk::number(prefix + ".OpCode", op).with_tag("dnp-crobop"));
    fields.push_back(Chunk::token(prefix + ".OpCount", 1, Endian::Big, 0x01));
    fields.push_back(Chunk::number(prefix + ".OnTime",
                                   NumberSpec{.width = 4,
                                              .endian = Endian::Little,
                                              .default_value = 100})
                         .with_tag("dnp-time"));
    fields.push_back(Chunk::number(prefix + ".OffTime",
                                   NumberSpec{.width = 4,
                                              .endian = Endian::Little,
                                              .default_value = 100})
                         .with_tag("dnp-time"));
    fields.push_back(Chunk::token(prefix + ".Status", 1, Endian::Big, 0x00));
    return fields;
  };
  set.add(link_frame("DnpDirectOperate", crob_fields("DnpDirectOperate", 0x05),
                     0x0C05));
  set.add(link_frame("DnpSelect", crob_fields("DnpSelect", 0x03), 0x0C03));
  set.add(link_frame("DnpOperate", crob_fields("DnpOperate", 0x04), 0x0C04));

  // COLD_RESTART / DELAY_MEASURE (no object headers).
  set.add(link_frame("DnpColdRestart",
                     {app_control("DnpColdRestart.AppCtl"),
                      Chunk::token("DnpColdRestart.Func", 1, Endian::Big, 0x0D)},
                     0x0D));
  set.add(link_frame(
      "DnpDelayMeasure",
      {app_control("DnpDelayMeasure.AppCtl"),
       Chunk::token("DnpDelayMeasure.Func", 1, Endian::Big, 0x17)},
      0x17));

  // Coarse model: valid link header/CRCs around an opaque fragment.
  {
    BlobSpec fragment;
    fragment.default_value = {0xC0, 0x01, 0x3C, 0x02, 0x06};
    fragment.max_generated = 13;  // keep within one CRC block (15 - transport)
    set.add(link_frame("RawDnp3",
                       {Chunk::blob("RawDnp3.Fragment", fragment)}, 0));
  }

  return set;
}

}  // namespace icsfuzz::pits
