// Mutators — Peach's per-data-type value factories (paper §II): "Mutator
// generates data in these ways: random generation, mutation on default
// value and mutation on existing chunks".
//
// `MutatorSuite::generate_leaf` produces the content of one leaf chunk by
// picking one of those modes; `mutate_bytes` implements the byte-level
// mutation operators used for existing-chunk mutation.
#pragma once

#include "model/chunk.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace icsfuzz::mutation {

/// Knobs for the value factories. The defaults mirror Peach's bias towards
/// structurally valid frames carrying value-wise aggressive data: most of
/// the probability mass is random/boundary, with occasional sane values so
/// deep semantic paths stay *reachable* but rare — the regime in which the
/// paper observes Peach bogging down.
struct MutatorConfig {
  /// Probability (percent) of emitting the chunk's default value verbatim.
  unsigned default_value_pct = 10;
  /// Probability (percent) of picking from the chunk's legal-value list
  /// (when non-empty).
  unsigned legal_value_pct = 15;
  /// Probability (percent) of a boundary value (0, 1, max, max-1, ...).
  unsigned boundary_pct = 15;
  /// Remaining probability mass is fully random generation.

  /// Probability (percent) that an existing-content mutation is applied on
  /// top of the chosen base value.
  unsigned post_mutate_pct = 25;

  /// Probability (percent) that one model instantiation uses Peach's
  /// *sequential* field-mutation profile — every field holds its default
  /// while one or two randomly chosen fields receive aggressive values —
  /// instead of regenerating every field independently. Sequential
  /// mutation is how Peach walks a data model in practice; it covers the
  /// "defaults plus one deviation" neighbourhood quickly and then
  /// plateaus, which is precisely the §III behaviour Peach* attacks with
  /// multi-field donor recombination.
  unsigned sequential_mode_pct = 65;
};

class MutatorSuite {
 public:
  explicit MutatorSuite(MutatorConfig config = {}) : config_(config) {}

  /// Generates wire content for a leaf chunk (Number/String/Blob).
  Bytes generate_leaf(const model::Chunk& chunk, Rng& rng) const;

  /// Generates a numeric value honouring the spec's legal values/bounds per
  /// the configured mode mix (exposed for tests and the baseline engine).
  std::uint64_t generate_number_value(const model::NumberSpec& spec,
                                      Rng& rng) const;

  /// Byte-level mutation operators applied to existing chunk content:
  /// bit flip, byte flip, arithmetic on a byte, block duplicate, block
  /// remove, byte insert. Empty input may grow.
  Bytes mutate_bytes(ByteSpan input, Rng& rng) const;

  /// Buffer-reusing variant: writes the mutated bytes into `out` (cleared
  /// first, capacity retained), drawing the identical RNG sequence as
  /// mutate_bytes. `input` must not alias `out` — stacked-mutation callers
  /// ping-pong two scratch buffers (see Fuzzer::next_packet_into).
  void mutate_bytes_into(ByteSpan input, Bytes& out, Rng& rng) const;

  [[nodiscard]] const MutatorConfig& config() const { return config_; }

 private:
  Bytes generate_string(const model::StringSpec& spec, Rng& rng) const;
  Bytes generate_blob(const model::BlobSpec& spec, Rng& rng) const;

  MutatorConfig config_;
};

}  // namespace icsfuzz::mutation
