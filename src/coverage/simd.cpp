// Kernel implementations for coverage/simd.hpp.
//
// Layout of every analyze kernel: classify a batch of dirty words with
// byte-wide vector ops (the scalar cost was 8 bucket-table lookups per word),
// then finish each 64-bit word with the shared scalar tail — virgin
// accumulate, dirty-superset append, and a hash mix per nonzero cell driven
// by a branchless nonzero-byte bitmask, so only cells that actually hashed
// under the scalar reference are visited. The (sum, xor) hash accumulators
// are commutative, which is what makes any batch width bit-identical to the
// scalar loop.
//
// The classify sequence itself uses only operations present on SSE2, AVX2
// and NEON alike: unsigned byte max (v >= c  <=>  max(v, c) == v), byte
// equality, and mask blends. Applied in ascending threshold order, later
// ranges overwrite earlier ones:
//
//   r = v                    // 0, 1, 2 map to themselves
//   r = (v == 3)   ? 4   : r
//   r = (v >= 4)   ? 8   : r
//   r = (v >= 8)   ? 16  : r
//   r = (v >= 16)  ? 32  : r
//   r = (v >= 32)  ? 64  : r
//   r = (v >= 128) ? 128 : r
#include "coverage/simd.hpp"

#include <bit>
#include <cstdlib>
#include <cstring>

#include "coverage/dense_ref.hpp"

#if defined(ICSFUZZ_SCALAR_COVERAGE)
// Portable-fallback build: compile no vector kernel at all.
#elif defined(__x86_64__) || defined(_M_X64)
#define ICSFUZZ_SIMD_SSE2 1
#include <immintrin.h>
#if defined(__AVX2__) || defined(__GNUC__) || defined(__clang__)
// The AVX2 kernel is compiled even in baseline builds via the target
// attribute; best_kernel() gates it behind a cpuid probe.
#define ICSFUZZ_SIMD_AVX2 1
#endif
#elif defined(__aarch64__) || defined(__ARM_NEON)
#define ICSFUZZ_SIMD_NEON 1
#include <arm_neon.h>
#endif

#if defined(__GNUC__) && !defined(__AVX2__) && defined(ICSFUZZ_SIMD_AVX2)
#define ICSFUZZ_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define ICSFUZZ_TARGET_AVX2
#endif

namespace icsfuzz::cov::simd {
namespace {

/// Bitmask of nonzero bytes of `word` (bit b set iff byte b != 0), branch
/// free: collapse each byte onto its LSB, then gather the LSBs into the top
/// byte with a multiply.
inline std::uint32_t nonzero_byte_mask(std::uint64_t word) {
  std::uint64_t t = word | (word >> 4);
  t |= t >> 2;
  t |= t >> 1;
  t &= 0x0101010101010101ULL;
  return static_cast<std::uint32_t>((t * 0x0102040810204080ULL) >> 56);
}

/// Scalar tail shared by every vector analyze kernel: store the classified
/// word, fold fresh bits into the virgin map (appending the 0 -> nonzero
/// transition to the accumulated dirty superset), and mix the hash of each
/// nonzero cell.
inline void finish_word(std::uint64_t* trace, std::uint64_t* virgin,
                        DirtyWordList* acc_dirty, TraceAnalysis& out,
                        std::size_t w, std::uint64_t classified) {
  trace[w] = classified;
  const std::uint64_t have = virgin[w];
  const std::uint64_t fresh = classified & ~have;
  if (fresh != 0) {
    if (have == 0) {
      acc_dirty->indices[acc_dirty->count++] = static_cast<std::uint16_t>(w);
    }
    virgin[w] = have | fresh;
    out.newly_covered += newly_nonzero_bytes(have, have | fresh);
    out.new_coverage = true;
  }
  std::uint32_t mask = nonzero_byte_mask(classified);
  out.trace_edges += std::popcount(mask);
  while (mask != 0) {
    const unsigned b = static_cast<unsigned>(std::countr_zero(mask));
    mask &= mask - 1;
    const std::uint64_t v = dense::mix_cell(
        w * 8 + b, static_cast<std::uint8_t>(classified >> (b * 8)));
    out.hash_sum += v;
    out.hash_mix ^= v;
  }
}

/// Scalar merge of one source word into dst[w] (shared by every merge
/// kernel's hit path).
inline void merge_one_word(std::uint64_t* dst, std::uint64_t src_word,
                           std::size_t w, DirtyWordList* acc_dirty,
                           MergeResult& out) {
  const std::uint64_t have = dst[w];
  const std::uint64_t fresh = src_word & ~have;
  if (fresh == 0) return;
  if (have == 0) {
    acc_dirty->indices[acc_dirty->count++] = static_cast<std::uint16_t>(w);
  }
  dst[w] = have | fresh;
  out.newly_covered += newly_nonzero_bytes(have, have | fresh);
  out.added = true;
}

// ------------------------------------------------------------- scalar --
// PR 3's fused loop, verbatim — the reference every vector kernel must
// match bit for bit (and the portability fallback for untested targets).

TraceAnalysis analyze_trace_scalar(std::uint64_t* trace,
                                   const std::uint16_t* indices,
                                   std::uint32_t count, std::uint64_t* virgin,
                                   DirtyWordList* acc_dirty) {
  TraceAnalysis out;
  auto* bytes = reinterpret_cast<std::uint8_t*>(trace);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t w = indices[i];
    std::uint8_t* cell = bytes + w * 8;
    for (std::size_t b = 0; b < 8; ++b) cell[b] = kBucketTable[cell[b]];
    const std::uint64_t word = trace[w];
    const std::uint64_t have = virgin[w];
    const std::uint64_t fresh = word & ~have;
    if (fresh != 0) {
      if (have == 0) {
        acc_dirty->indices[acc_dirty->count++] = static_cast<std::uint16_t>(w);
      }
      virgin[w] = have | fresh;
      out.newly_covered += newly_nonzero_bytes(have, have | fresh);
      out.new_coverage = true;
    }
    for (std::size_t b = 0; b < 8; ++b) {
      if (cell[b] == 0) continue;
      const std::uint64_t v = dense::mix_cell(w * 8 + b, cell[b]);
      out.hash_sum += v;
      out.hash_mix ^= v;
      ++out.trace_edges;
    }
  }
  return out;
}

void classify_words_scalar(std::uint64_t* trace, const std::uint16_t* indices,
                           std::uint32_t count) {
  auto* bytes = reinterpret_cast<std::uint8_t*>(trace);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint8_t* cell = bytes + static_cast<std::size_t>(indices[i]) * 8;
    for (std::size_t b = 0; b < 8; ++b) cell[b] = kBucketTable[cell[b]];
  }
}

MergeResult merge_words_scalar(std::uint64_t* dst, const std::uint64_t* src,
                               const std::uint16_t* indices,
                               std::uint32_t count,
                               DirtyWordList* acc_dirty) {
  MergeResult out;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t w = indices[i];
    merge_one_word(dst, src[w], w, acc_dirty, out);
  }
  return out;
}

MergeResult merge_full_scalar(std::uint64_t* dst,
                              const std::uint8_t* src_bytes,
                              DirtyWordList* acc_dirty) {
  MergeResult out;
  for (std::size_t w = 0; w < kMapWords; ++w) {
    merge_one_word(dst, dense::load_word(src_bytes, w), w, acc_dirty, out);
  }
  return out;
}

/// Shared tail of every adopt kernel: copy one nonzero word and list it.
inline void adopt_one_word(std::uint64_t* dst, std::uint64_t src_word,
                           std::size_t w, DirtyWordList* dirty) {
  if (src_word == 0) return;
  dst[w] = src_word;
  dirty->indices[dirty->count++] = static_cast<std::uint16_t>(w);
}

void adopt_full_scalar(std::uint64_t* dst, const std::uint64_t* src,
                       DirtyWordList* dirty) {
  for (std::size_t w = 0; w < kMapWords; ++w) {
    adopt_one_word(dst, src[w], w, dirty);
  }
}

constexpr KernelOps kScalarOps = {Kernel::kScalar,      "scalar",
                                  analyze_trace_scalar, classify_words_scalar,
                                  merge_words_scalar,   merge_full_scalar,
                                  adopt_full_scalar};

// --------------------------------------------------------------- SSE2 --
#if defined(ICSFUZZ_SIMD_SSE2)

/// v >= c, per unsigned byte (max(v, c) == v).
inline __m128i ge_epu8(__m128i v, __m128i c) {
  return _mm_cmpeq_epi8(_mm_max_epu8(v, c), v);
}

/// mask ? a : b, per byte.
inline __m128i blend8(__m128i mask, __m128i a, __m128i b) {
  return _mm_or_si128(_mm_and_si128(mask, a), _mm_andnot_si128(mask, b));
}

/// AFL-classifies 16 raw counts at once.
inline __m128i classify16(__m128i v) {
  __m128i r = v;
  r = blend8(_mm_cmpeq_epi8(v, _mm_set1_epi8(3)), _mm_set1_epi8(4), r);
  r = blend8(ge_epu8(v, _mm_set1_epi8(4)), _mm_set1_epi8(8), r);
  r = blend8(ge_epu8(v, _mm_set1_epi8(8)), _mm_set1_epi8(16), r);
  r = blend8(ge_epu8(v, _mm_set1_epi8(16)), _mm_set1_epi8(32), r);
  r = blend8(ge_epu8(v, _mm_set1_epi8(32)), _mm_set1_epi8(64), r);
  r = blend8(ge_epu8(v, _mm_set1_epi8(static_cast<char>(128))),
             _mm_set1_epi8(static_cast<char>(128)), r);
  return r;
}

TraceAnalysis analyze_trace_sse2(std::uint64_t* trace,
                                 const std::uint16_t* indices,
                                 std::uint32_t count, std::uint64_t* virgin,
                                 DirtyWordList* acc_dirty) {
  TraceAnalysis out;
  std::uint32_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const std::size_t w0 = indices[i];
    const std::size_t w1 = indices[i + 1];
    const __m128i raw =
        _mm_set_epi64x(static_cast<long long>(trace[w1]),
                       static_cast<long long>(trace[w0]));
    alignas(16) std::uint64_t classified[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(classified), classify16(raw));
    finish_word(trace, virgin, acc_dirty, out, w0, classified[0]);
    finish_word(trace, virgin, acc_dirty, out, w1, classified[1]);
  }
  for (; i < count; ++i) {
    const std::size_t w = indices[i];
    const __m128i raw =
        _mm_set_epi64x(0, static_cast<long long>(trace[w]));
    alignas(16) std::uint64_t classified[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(classified), classify16(raw));
    finish_word(trace, virgin, acc_dirty, out, w, classified[0]);
  }
  return out;
}

void classify_words_sse2(std::uint64_t* trace, const std::uint16_t* indices,
                         std::uint32_t count) {
  std::uint32_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const std::size_t w0 = indices[i];
    const std::size_t w1 = indices[i + 1];
    const __m128i raw =
        _mm_set_epi64x(static_cast<long long>(trace[w1]),
                       static_cast<long long>(trace[w0]));
    alignas(16) std::uint64_t classified[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(classified), classify16(raw));
    trace[w0] = classified[0];
    trace[w1] = classified[1];
  }
  if (i < count) classify_words_scalar(trace, indices + i, count - i);
}

MergeResult merge_words_sse2(std::uint64_t* dst, const std::uint64_t* src,
                             const std::uint16_t* indices, std::uint32_t count,
                             DirtyWordList* acc_dirty) {
  MergeResult out;
  std::uint32_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const std::size_t w0 = indices[i];
    const std::size_t w1 = indices[i + 1];
    const __m128i s = _mm_set_epi64x(static_cast<long long>(src[w1]),
                                     static_cast<long long>(src[w0]));
    const __m128i d = _mm_set_epi64x(static_cast<long long>(dst[w1]),
                                     static_cast<long long>(dst[w0]));
    const __m128i fresh = _mm_andnot_si128(d, s);
    // Steady state: nothing fresh in the whole batch, skip it in one test.
    if (_mm_movemask_epi8(
            _mm_cmpeq_epi8(fresh, _mm_setzero_si128())) == 0xFFFF) {
      continue;
    }
    merge_one_word(dst, src[w0], w0, acc_dirty, out);
    merge_one_word(dst, src[w1], w1, acc_dirty, out);
  }
  for (; i < count; ++i) {
    const std::size_t w = indices[i];
    merge_one_word(dst, src[w], w, acc_dirty, out);
  }
  return out;
}

MergeResult merge_full_sse2(std::uint64_t* dst, const std::uint8_t* src_bytes,
                            DirtyWordList* acc_dirty) {
  MergeResult out;
  for (std::size_t w = 0; w < kMapWords; w += 2) {
    const __m128i s = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src_bytes + w * 8));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + w));
    const __m128i fresh = _mm_andnot_si128(d, s);
    if (_mm_movemask_epi8(
            _mm_cmpeq_epi8(fresh, _mm_setzero_si128())) == 0xFFFF) {
      continue;
    }
    merge_one_word(dst, dense::load_word(src_bytes, w), w, acc_dirty, out);
    merge_one_word(dst, dense::load_word(src_bytes, w + 1), w + 1, acc_dirty,
                   out);
  }
  return out;
}

void adopt_full_sse2(std::uint64_t* dst, const std::uint64_t* src,
                     DirtyWordList* dirty) {
  for (std::size_t w = 0; w < kMapWords; w += 2) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + w));
    // Steady state: the external map is mostly zero — skip the whole batch
    // on one compare.
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(s, _mm_setzero_si128())) == 0xFFFF) {
      continue;
    }
    adopt_one_word(dst, src[w], w, dirty);
    adopt_one_word(dst, src[w + 1], w + 1, dirty);
  }
}

constexpr KernelOps kSse2Ops = {Kernel::kSSE2,       "sse2",
                                analyze_trace_sse2,  classify_words_sse2,
                                merge_words_sse2,    merge_full_sse2,
                                adopt_full_sse2};
#endif  // ICSFUZZ_SIMD_SSE2

// --------------------------------------------------------------- AVX2 --
#if defined(ICSFUZZ_SIMD_AVX2)

ICSFUZZ_TARGET_AVX2 inline __m256i ge256_epu8(__m256i v, __m256i c) {
  return _mm256_cmpeq_epi8(_mm256_max_epu8(v, c), v);
}

ICSFUZZ_TARGET_AVX2 inline __m256i blend256(__m256i mask, __m256i a,
                                            __m256i b) {
  return _mm256_or_si256(_mm256_and_si256(mask, a),
                         _mm256_andnot_si256(mask, b));
}

/// AFL-classifies 32 raw counts (4 map words) at once.
ICSFUZZ_TARGET_AVX2 inline __m256i classify32(__m256i v) {
  __m256i r = v;
  r = blend256(_mm256_cmpeq_epi8(v, _mm256_set1_epi8(3)), _mm256_set1_epi8(4),
               r);
  r = blend256(ge256_epu8(v, _mm256_set1_epi8(4)), _mm256_set1_epi8(8), r);
  r = blend256(ge256_epu8(v, _mm256_set1_epi8(8)), _mm256_set1_epi8(16), r);
  r = blend256(ge256_epu8(v, _mm256_set1_epi8(16)), _mm256_set1_epi8(32), r);
  r = blend256(ge256_epu8(v, _mm256_set1_epi8(32)), _mm256_set1_epi8(64), r);
  r = blend256(ge256_epu8(v, _mm256_set1_epi8(static_cast<char>(128))),
               _mm256_set1_epi8(static_cast<char>(128)), r);
  return r;
}

ICSFUZZ_TARGET_AVX2 TraceAnalysis analyze_trace_avx2(
    std::uint64_t* trace, const std::uint16_t* indices, std::uint32_t count,
    std::uint64_t* virgin, DirtyWordList* acc_dirty) {
  TraceAnalysis out;
  std::uint32_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const std::size_t w0 = indices[i];
    const std::size_t w1 = indices[i + 1];
    const std::size_t w2 = indices[i + 2];
    const std::size_t w3 = indices[i + 3];
    const __m256i raw = _mm256_set_epi64x(
        static_cast<long long>(trace[w3]), static_cast<long long>(trace[w2]),
        static_cast<long long>(trace[w1]), static_cast<long long>(trace[w0]));
    alignas(32) std::uint64_t classified[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(classified),
                       classify32(raw));
    finish_word(trace, virgin, acc_dirty, out, w0, classified[0]);
    finish_word(trace, virgin, acc_dirty, out, w1, classified[1]);
    finish_word(trace, virgin, acc_dirty, out, w2, classified[2]);
    finish_word(trace, virgin, acc_dirty, out, w3, classified[3]);
  }
  for (; i < count; ++i) {
    const std::size_t w = indices[i];
    const __m256i raw =
        _mm256_set_epi64x(0, 0, 0, static_cast<long long>(trace[w]));
    alignas(32) std::uint64_t classified[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(classified),
                       classify32(raw));
    finish_word(trace, virgin, acc_dirty, out, w, classified[0]);
  }
  return out;
}

ICSFUZZ_TARGET_AVX2 void classify_words_avx2(std::uint64_t* trace,
                                             const std::uint16_t* indices,
                                             std::uint32_t count) {
  std::uint32_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const std::size_t w0 = indices[i];
    const std::size_t w1 = indices[i + 1];
    const std::size_t w2 = indices[i + 2];
    const std::size_t w3 = indices[i + 3];
    const __m256i raw = _mm256_set_epi64x(
        static_cast<long long>(trace[w3]), static_cast<long long>(trace[w2]),
        static_cast<long long>(trace[w1]), static_cast<long long>(trace[w0]));
    alignas(32) std::uint64_t classified[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(classified),
                       classify32(raw));
    trace[w0] = classified[0];
    trace[w1] = classified[1];
    trace[w2] = classified[2];
    trace[w3] = classified[3];
  }
  if (i < count) classify_words_scalar(trace, indices + i, count - i);
}

ICSFUZZ_TARGET_AVX2 MergeResult merge_words_avx2(
    std::uint64_t* dst, const std::uint64_t* src, const std::uint16_t* indices,
    std::uint32_t count, DirtyWordList* acc_dirty) {
  MergeResult out;
  std::uint32_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const std::size_t w0 = indices[i];
    const std::size_t w1 = indices[i + 1];
    const std::size_t w2 = indices[i + 2];
    const std::size_t w3 = indices[i + 3];
    const __m256i s = _mm256_set_epi64x(
        static_cast<long long>(src[w3]), static_cast<long long>(src[w2]),
        static_cast<long long>(src[w1]), static_cast<long long>(src[w0]));
    const __m256i d = _mm256_set_epi64x(
        static_cast<long long>(dst[w3]), static_cast<long long>(dst[w2]),
        static_cast<long long>(dst[w1]), static_cast<long long>(dst[w0]));
    const __m256i fresh = _mm256_andnot_si256(d, s);
    if (_mm256_testz_si256(fresh, fresh)) continue;
    merge_one_word(dst, src[w0], w0, acc_dirty, out);
    merge_one_word(dst, src[w1], w1, acc_dirty, out);
    merge_one_word(dst, src[w2], w2, acc_dirty, out);
    merge_one_word(dst, src[w3], w3, acc_dirty, out);
  }
  for (; i < count; ++i) {
    const std::size_t w = indices[i];
    merge_one_word(dst, src[w], w, acc_dirty, out);
  }
  return out;
}

ICSFUZZ_TARGET_AVX2 MergeResult merge_full_avx2(std::uint64_t* dst,
                                                const std::uint8_t* src_bytes,
                                                DirtyWordList* acc_dirty) {
  MergeResult out;
  for (std::size_t w = 0; w < kMapWords; w += 4) {
    const __m256i s = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(src_bytes + w * 8));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i fresh = _mm256_andnot_si256(d, s);
    if (_mm256_testz_si256(fresh, fresh)) continue;
    for (std::size_t k = 0; k < 4; ++k) {
      merge_one_word(dst, dense::load_word(src_bytes, w + k), w + k, acc_dirty,
                     out);
    }
  }
  return out;
}

ICSFUZZ_TARGET_AVX2 void adopt_full_avx2(std::uint64_t* dst,
                                         const std::uint64_t* src,
                                         DirtyWordList* dirty) {
  for (std::size_t w = 0; w < kMapWords; w += 4) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    if (_mm256_testz_si256(s, s)) continue;
    adopt_one_word(dst, src[w], w, dirty);
    adopt_one_word(dst, src[w + 1], w + 1, dirty);
    adopt_one_word(dst, src[w + 2], w + 2, dirty);
    adopt_one_word(dst, src[w + 3], w + 3, dirty);
  }
}

constexpr KernelOps kAvx2Ops = {Kernel::kAVX2,       "avx2",
                                analyze_trace_avx2,  classify_words_avx2,
                                merge_words_avx2,    merge_full_avx2,
                                adopt_full_avx2};
#endif  // ICSFUZZ_SIMD_AVX2

// --------------------------------------------------------------- NEON --
#if defined(ICSFUZZ_SIMD_NEON)

/// AFL-classifies 16 raw counts at once (NEON has native unsigned >=).
inline uint8x16_t classify16_neon(uint8x16_t v) {
  uint8x16_t r = v;
  r = vbslq_u8(vceqq_u8(v, vdupq_n_u8(3)), vdupq_n_u8(4), r);
  r = vbslq_u8(vcgeq_u8(v, vdupq_n_u8(4)), vdupq_n_u8(8), r);
  r = vbslq_u8(vcgeq_u8(v, vdupq_n_u8(8)), vdupq_n_u8(16), r);
  r = vbslq_u8(vcgeq_u8(v, vdupq_n_u8(16)), vdupq_n_u8(32), r);
  r = vbslq_u8(vcgeq_u8(v, vdupq_n_u8(32)), vdupq_n_u8(64), r);
  r = vbslq_u8(vcgeq_u8(v, vdupq_n_u8(128)), vdupq_n_u8(128), r);
  return r;
}

TraceAnalysis analyze_trace_neon(std::uint64_t* trace,
                                 const std::uint16_t* indices,
                                 std::uint32_t count, std::uint64_t* virgin,
                                 DirtyWordList* acc_dirty) {
  TraceAnalysis out;
  std::uint32_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const std::size_t w0 = indices[i];
    const std::size_t w1 = indices[i + 1];
    const uint8x16_t raw =
        vcombine_u8(vcreate_u8(trace[w0]), vcreate_u8(trace[w1]));
    const uint8x16_t cls = classify16_neon(raw);
    finish_word(trace, virgin, acc_dirty, out, w0,
                vgetq_lane_u64(vreinterpretq_u64_u8(cls), 0));
    finish_word(trace, virgin, acc_dirty, out, w1,
                vgetq_lane_u64(vreinterpretq_u64_u8(cls), 1));
  }
  for (; i < count; ++i) {
    const std::size_t w = indices[i];
    const uint8x16_t raw =
        vcombine_u8(vcreate_u8(trace[w]), vcreate_u8(0));
    const uint8x16_t cls = classify16_neon(raw);
    finish_word(trace, virgin, acc_dirty, out, w,
                vgetq_lane_u64(vreinterpretq_u64_u8(cls), 0));
  }
  return out;
}

void classify_words_neon(std::uint64_t* trace, const std::uint16_t* indices,
                         std::uint32_t count) {
  std::uint32_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const std::size_t w0 = indices[i];
    const std::size_t w1 = indices[i + 1];
    const uint8x16_t cls = classify16_neon(
        vcombine_u8(vcreate_u8(trace[w0]), vcreate_u8(trace[w1])));
    trace[w0] = vgetq_lane_u64(vreinterpretq_u64_u8(cls), 0);
    trace[w1] = vgetq_lane_u64(vreinterpretq_u64_u8(cls), 1);
  }
  if (i < count) classify_words_scalar(trace, indices + i, count - i);
}

void adopt_full_neon(std::uint64_t* dst, const std::uint64_t* src,
                     DirtyWordList* dirty) {
  for (std::size_t w = 0; w < kMapWords; w += 2) {
    if ((src[w] | src[w + 1]) == 0) continue;
    adopt_one_word(dst, src[w], w, dirty);
    adopt_one_word(dst, src[w + 1], w + 1, dirty);
  }
}

// Merges batch only two words per vector on NEON, so the compare-and-skip
// trick buys little; the scalar merge kernels serve as the merge arms.
constexpr KernelOps kNeonOps = {Kernel::kNEON,       "neon",
                                analyze_trace_neon,  classify_words_neon,
                                merge_words_scalar,  merge_full_scalar,
                                adopt_full_neon};
#endif  // ICSFUZZ_SIMD_NEON

// ----------------------------------------------------------- dispatch --

Kernel probe_best() {
#if defined(ICSFUZZ_SIMD_AVX2)
#if defined(__AVX2__)
  return Kernel::kAVX2;  // compiled for AVX2 hardware; no probe needed
#elif defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return Kernel::kAVX2;
#endif
#endif
#if defined(ICSFUZZ_SIMD_SSE2)
  return Kernel::kSSE2;
#elif defined(ICSFUZZ_SIMD_NEON)
  return Kernel::kNEON;
#else
  return Kernel::kScalar;
#endif
}

/// The process default, mutated only by force_kernel(). Initialized from the
/// runtime probe, then the ICSFUZZ_COV_KERNEL environment override.
const KernelOps* default_ops() {
  static const KernelOps* chosen = [] {
    const KernelOps* ops = ops_for(probe_best());
    if (const char* env = std::getenv("ICSFUZZ_COV_KERNEL")) {
      if (const KernelOps* forced = ops_for(parse_kernel(env))) ops = forced;
    }
    return ops == nullptr ? &scalar_ops() : ops;
  }();
  return chosen;
}

const KernelOps*& active_slot() {
  static const KernelOps* slot = default_ops();
  return slot;
}

}  // namespace

const KernelOps& scalar_ops() { return kScalarOps; }

const KernelOps* ops_for(Kernel kind) {
  switch (kind) {
    case Kernel::kAuto:
      return ops_for(best_kernel());
    case Kernel::kScalar:
      return &kScalarOps;
    case Kernel::kSSE2:
#if defined(ICSFUZZ_SIMD_SSE2)
      return &kSse2Ops;
#else
      return nullptr;
#endif
    case Kernel::kAVX2:
#if defined(ICSFUZZ_SIMD_AVX2)
      return best_kernel() == Kernel::kAVX2 ? &kAvx2Ops : nullptr;
#else
      return nullptr;
#endif
    case Kernel::kNEON:
#if defined(ICSFUZZ_SIMD_NEON)
      return &kNeonOps;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

Kernel best_kernel() {
  static const Kernel best = probe_best();
  return best;
}

const KernelOps& active() { return *active_slot(); }

bool force_kernel(Kernel kind) {
  const KernelOps* ops =
      kind == Kernel::kAuto ? default_ops() : ops_for(kind);
  if (ops == nullptr) return false;
  active_slot() = ops;
  return true;
}

std::string_view kernel_name(Kernel kind) {
  switch (kind) {
    case Kernel::kAuto:
      return "auto";
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kSSE2:
      return "sse2";
    case Kernel::kAVX2:
      return "avx2";
    case Kernel::kNEON:
      return "neon";
  }
  return "scalar";
}

Kernel parse_kernel(std::string_view name) {
  if (name == "scalar") return Kernel::kScalar;
  if (name == "sse2") return Kernel::kSSE2;
  if (name == "avx2") return Kernel::kAVX2;
  if (name == "neon") return Kernel::kNEON;
  return Kernel::kAuto;
}

}  // namespace icsfuzz::cov::simd
