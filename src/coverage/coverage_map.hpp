// Edge-coverage bookkeeping: the per-execution trace map plus the
// accumulated "virgin" map that decides whether a seed is valuable.
//
// Hot-path design (the sparse dirty-word overhaul): a typical execution
// touches a few hundred of the 64 Ki map cells, so every per-execution
// operation runs over the DirtyWordList maintained by cov::hit() instead of
// sweeping all 8192 words — begin_execution clears only the words the
// previous execution dirtied (no 64 KiB memset), and finalize_execution
// classifies, hashes, counts and accumulates in ONE sweep of the dirty
// words. The pre-sparse full-map passes live on in coverage/dense_ref.hpp
// as the bit-for-bit reference (equivalence tests, bench_hotpath's A/B).
//
// The per-word cell work itself (classify + nonzero scan + hash mix, and the
// word compares of merges) runs through a pluggable SIMD kernel
// (coverage/simd.hpp): byte-wide SSE2/AVX2/NEON implementations selected at
// runtime, with the scalar fused loop as the always-available reference. A
// map defaults to the process-wide best kernel; use_kernel() pins one
// explicitly (tests, bench_hotpath's scalar-vs-SIMD arms,
// ExecutorConfig::coverage_kernel).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "coverage/instrument.hpp"
#include "coverage/simd.hpp"

namespace icsfuzz::cov {

/// Classifies raw edge-hit counts into AFL's 8 buckets so that loop-count
/// changes (1 vs 2 vs 3..) register as new behaviour without making every
/// count unique.
std::uint8_t classify_count(std::uint8_t raw);

/// Everything the feedback loop needs to know about one finished execution,
/// produced by CoverageMap::finalize_execution in a single sparse sweep.
struct TraceSummary {
  /// Order-insensitive hash of the classified (edge, bucket) set.
  std::uint64_t trace_hash = 0;
  /// Distinct edges in the trace.
  std::size_t trace_edges = 0;
  /// The trace contained virgin bits, which were accumulated (the combined
  /// has_new_bits() + accumulate() answer).
  bool new_coverage = false;
};

/// One execution's trace plus campaign-lifetime accumulation.
class CoverageMap {
 public:
  CoverageMap();

  /// Clears the words the previous execution dirtied (sparse analogue of
  /// the full memset) and arms thread-local tracing into the trace buffer.
  void begin_execution();

  /// Disarms tracing, then classifies, hashes, counts and accumulates the
  /// trace in one sweep of the dirty words. Exactly equivalent to
  /// end_execution() + trace_hash() + trace_edge_count() + accumulate(),
  /// fused; call one or the other per execution (classification is not
  /// idempotent). The per-query API below remains valid afterwards.
  TraceSummary finalize_execution();

  /// Disarms tracing and classifies the raw counts in place (dirty words
  /// only). Use the per-query API below afterwards; prefer
  /// finalize_execution() on hot paths.
  void end_execution();

  /// Reader-side adoption of an externally produced raw trace — the shared
  /// memory map an out-of-process target wrote (exec_oop/). Clears the
  /// words the previous execution dirtied, then rebuilds the dirty list
  /// with the active kernel's nonzero sweep of `words` (kMapWords uint64s),
  /// copying every nonzero word into the trace buffer. Afterwards the map
  /// is in exactly the state begin_execution + in-process tracing would
  /// have left it (dirty order is ascending instead of first-touch, which
  /// every consumer is insensitive to — the hash accumulators are
  /// commutative), so finalize_execution / finalize_execution_dense and the
  /// per-query API apply unchanged. Does NOT arm thread-local tracing.
  /// `words == nullptr` adopts the empty trace (clear only, no sweep).
  void adopt_external(const std::uint64_t* words);

  /// Saturating increment of one raw trace cell, maintaining the dirty-word
  /// invariant (the word is appended on its 0 -> nonzero transition). The
  /// session layer injects its hashed session-state cells through this —
  /// directly into the cell, so neither tls_prev_location nor the
  /// instrumentation event count is perturbed. Safe between begin_execution
  /// (or adopt_external) and finalize_execution on the owning thread,
  /// including while thread-local tracing is armed into this map.
  void bump_trace_cell(std::uint32_t cell);

  /// True when the classified trace contains a bucketed edge never seen in
  /// the accumulated map. Does NOT update the accumulated map.
  [[nodiscard]] bool has_new_bits() const;

  /// Merges the classified trace into the accumulated map. Returns true if
  /// anything new was added (same condition as has_new_bits()).
  bool accumulate();

  /// Number of distinct edges (cells ever nonzero) accumulated so far.
  /// O(1): maintained incrementally by every accumulate/merge path.
  [[nodiscard]] std::size_t edges_covered() const { return edges_covered_; }

  /// Number of distinct edges in the current trace.
  [[nodiscard]] std::size_t trace_edge_count() const;

  /// Order-insensitive 64-bit hash of the classified (edge, bucket) set of
  /// the current trace; identical executions hash identically.
  [[nodiscard]] std::uint64_t trace_hash() const;

  /// Raw access for tests and serialization.
  [[nodiscard]] const std::uint8_t* trace() const {
    return reinterpret_cast<const std::uint8_t*>(trace_.get());
  }
  [[nodiscard]] const std::uint8_t* accumulated() const {
    return reinterpret_cast<const std::uint8_t*>(virgin_.get());
  }

  /// The 64-bit map words the current trace touched, in first-touch order
  /// (complete: every nonzero trace word is listed exactly once). Lets
  /// trace consumers (distill replay extraction, tests) iterate the sparse
  /// trace without a full-map sweep. Valid until the next begin_execution.
  [[nodiscard]] const std::uint16_t* dirty_words() const {
    return dirty_->indices;
  }
  [[nodiscard]] std::uint32_t dirty_word_count() const {
    return dirty_->count;
  }

  /// The 64-bit words of the *accumulated* map that have ever gone nonzero,
  /// in first-accumulation order (complete: every nonzero virgin word is
  /// listed exactly once — the campaign-lifetime dirty superset). merge()
  /// iterates the source map's superset instead of all 8192 words, so
  /// worker-to-exchange sync cost scales with coverage actually reached.
  [[nodiscard]] const std::uint16_t* accumulated_dirty_words() const {
    return acc_dirty_->indices;
  }
  [[nodiscard]] std::uint32_t accumulated_dirty_word_count() const {
    return acc_dirty_->count;
  }

  /// Pins this map's analysis/merge kernel (kAuto restores the process-wide
  /// default; unavailable kernels fall back to scalar). Results are
  /// bit-identical across kernels — only throughput changes.
  void use_kernel(simd::Kernel kind);

  /// The kernel this map currently dispatches to.
  [[nodiscard]] simd::Kernel kernel() const { return ops_->kind; }
  [[nodiscard]] const char* kernel_name() const { return ops_->name; }

  // -- Dense reference mode (tests / bench_hotpath / Executor's
  //    dense_reference flag). Bit-identical results via the retained
  //    full-map passes of coverage/dense_ref.hpp; ~6 whole-map sweeps per
  //    execution, exactly the pre-overhaul cost profile. --

  /// Full-memset variant of begin_execution (dirty tracking stays armed, so
  /// the sparse queries remain valid even in dense mode).
  void begin_execution_dense();

  /// Full-map-pass variant of finalize_execution.
  TraceSummary finalize_execution_dense();

  /// Merges `other`'s accumulated map into this one (bitwise OR of the
  /// classified bits). Returns true when anything new was added. The
  /// operation is idempotent and commutative, so parallel workers' maps can
  /// be folded into a global map in any order.
  bool merge(const CoverageMap& other);

  /// Merges a raw accumulated-map snapshot (kMapSize bytes, as produced by
  /// snapshot_accumulated()). Returns true when anything new was added.
  bool merge_accumulated(const std::uint8_t* bits);

  /// Copies the accumulated map. The in-process seed exchange merges live
  /// maps directly (merge()); the snapshot form exists for consumers that
  /// need a detached copy — serialization, cross-process shipping, tests.
  [[nodiscard]] std::vector<std::uint8_t> snapshot_accumulated() const;

  /// Forgets all accumulated coverage (fresh campaign).
  void reset_accumulated();

 private:
  [[nodiscard]] std::uint8_t* trace_bytes() {
    return reinterpret_cast<std::uint8_t*>(trace_.get());
  }
  [[nodiscard]] std::uint8_t* virgin_bytes() {
    return reinterpret_cast<std::uint8_t*>(virgin_.get());
  }

  // Maps are stored as uint64 words (the unit every sparse operation works
  // in); cell access goes through the uint8_t aliases above. Heap-allocated
  // to keep CoverageMap cheaply movable and stack-friendly; the dirty list
  // lives behind its own pointer so an armed map's tls reference survives a
  // move of the CoverageMap object itself.
  std::unique_ptr<std::uint64_t[]> trace_;
  std::unique_ptr<std::uint64_t[]> virgin_;  // accumulated classified bits
  std::unique_ptr<DirtyWordList> dirty_;
  /// Dirty superset of the accumulated map: every virgin word that ever went
  /// nonzero, appended on its 0 -> nonzero transition by each accumulate/
  /// merge path (rebuilt by the dense-reference finalize, which bypasses the
  /// incremental paths). Cleared by reset_accumulated().
  std::unique_ptr<DirtyWordList> acc_dirty_;
  /// Active analysis/merge kernel (never null; defaults to simd::active()).
  const simd::KernelOps* ops_;
  /// Incrementally maintained nonzero-cell count of the virgin map.
  std::size_t edges_covered_ = 0;
};

}  // namespace icsfuzz::cov
