// Edge-coverage bookkeeping: the per-execution trace map plus the
// accumulated "virgin" map that decides whether a seed is valuable.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "coverage/instrument.hpp"

namespace icsfuzz::cov {

/// Classifies raw edge-hit counts into AFL's 8 buckets so that loop-count
/// changes (1 vs 2 vs 3..) register as new behaviour without making every
/// count unique.
std::uint8_t classify_count(std::uint8_t raw);

/// One execution's trace plus campaign-lifetime accumulation.
class CoverageMap {
 public:
  CoverageMap();

  /// Zeroes the trace buffer and arms thread-local tracing into it.
  void begin_execution();

  /// Disarms tracing and classifies the raw counts in place.
  void end_execution();

  /// True when the classified trace contains a bucketed edge never seen in
  /// the accumulated map. Does NOT update the accumulated map.
  [[nodiscard]] bool has_new_bits() const;

  /// Merges the classified trace into the accumulated map. Returns true if
  /// anything new was added (same condition as has_new_bits()).
  bool accumulate();

  /// Number of distinct edges (cells ever nonzero) accumulated so far.
  [[nodiscard]] std::size_t edges_covered() const;

  /// Number of distinct edges in the current trace.
  [[nodiscard]] std::size_t trace_edge_count() const;

  /// Order-insensitive 64-bit hash of the classified (edge, bucket) set of
  /// the current trace; identical executions hash identically.
  [[nodiscard]] std::uint64_t trace_hash() const;

  /// Raw access for tests and serialization.
  [[nodiscard]] const std::uint8_t* trace() const { return trace_.get(); }
  [[nodiscard]] const std::uint8_t* accumulated() const { return virgin_.get(); }

  /// Merges `other`'s accumulated map into this one (bitwise OR of the
  /// classified bits). Returns true when anything new was added. The
  /// operation is idempotent and commutative, so parallel workers' maps can
  /// be folded into a global map in any order.
  bool merge(const CoverageMap& other);

  /// Merges a raw accumulated-map snapshot (kMapSize bytes, as produced by
  /// snapshot_accumulated()). Returns true when anything new was added.
  bool merge_accumulated(const std::uint8_t* bits);

  /// Copies the accumulated map. The in-process seed exchange merges live
  /// maps directly (merge()); the snapshot form exists for consumers that
  /// need a detached copy — serialization, cross-process shipping, tests.
  [[nodiscard]] std::vector<std::uint8_t> snapshot_accumulated() const;

  /// Forgets all accumulated coverage (fresh campaign).
  void reset_accumulated();

 private:
  // Heap-allocated to keep CoverageMap cheaply movable and stack-friendly.
  std::unique_ptr<std::uint8_t[]> trace_;
  std::unique_ptr<std::uint8_t[]> virgin_;  // accumulated classified bits
};

}  // namespace icsfuzz::cov
