#include "coverage/instrument.hpp"

namespace icsfuzz::cov {

thread_local std::uint8_t* tls_shared_mem = nullptr;
thread_local std::uint32_t tls_prev_location = 0;
thread_local std::uint64_t tls_event_count = 0;
thread_local DirtyWordList* tls_dirty_words = nullptr;

namespace {

/// Sink for callers of the one-argument begin_trace (tests, ad-hoc raw-map
/// tracing): hit() needs *somewhere* to append so its hot path stays
/// branch-free on the dirty pointer. Bounded by construction — each word is
/// appended at most once per arming — and reset on every arm.
thread_local DirtyWordList tls_fallback_dirty;

}  // namespace

void begin_trace(std::uint8_t* map) {
  tls_fallback_dirty.count = 0;
  begin_trace(map, &tls_fallback_dirty);
}

void begin_trace(std::uint8_t* map, DirtyWordList* dirty) {
  tls_shared_mem = map;
  tls_dirty_words = dirty;
  tls_prev_location = 0;
  tls_event_count = 0;
}

void end_trace() {
  tls_shared_mem = nullptr;
  tls_dirty_words = nullptr;
  tls_prev_location = 0;
}

bool trace_armed() { return tls_shared_mem != nullptr; }

}  // namespace icsfuzz::cov
