#include "coverage/instrument.hpp"

namespace icsfuzz::cov {

thread_local std::uint8_t* tls_shared_mem = nullptr;
thread_local std::uint32_t tls_prev_location = 0;
thread_local std::uint64_t tls_event_count = 0;

void begin_trace(std::uint8_t* map) {
  tls_shared_mem = map;
  tls_prev_location = 0;
  tls_event_count = 0;
}

void end_trace() {
  tls_shared_mem = nullptr;
  tls_prev_location = 0;
}

bool trace_armed() { return tls_shared_mem != nullptr; }

}  // namespace icsfuzz::cov
