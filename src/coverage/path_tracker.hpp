// Path-coverage accounting: the paper's primary metric ("number of paths
// covered") counts distinct whole-execution traces, identified here by the
// order-insensitive hash of the classified edge set.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace icsfuzz::cov {

class PathTracker {
 public:
  /// Registers one execution's trace hash; returns true if this path is new.
  bool record(std::uint64_t trace_hash);

  /// Distinct paths observed so far.
  [[nodiscard]] std::size_t path_count() const { return paths_.size(); }

  /// True when `trace_hash` has been seen.
  [[nodiscard]] bool contains(std::uint64_t trace_hash) const {
    return paths_.contains(trace_hash);
  }

  /// Folds `other`'s path set into this one (idempotent, commutative).
  /// Returns the number of paths that were new to this tracker.
  std::size_t merge(const PathTracker& other);

  /// Copies the path set (order unspecified). The seed exchange merges live
  /// trackers directly (merge()); the snapshot form is for detached copies
  /// — serialization, cross-process shipping, tests.
  [[nodiscard]] std::vector<std::uint64_t> snapshot() const;

  void clear() { paths_.clear(); }

 private:
  std::unordered_set<std::uint64_t> paths_;
};

}  // namespace icsfuzz::cov
