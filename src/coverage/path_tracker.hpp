// Path-coverage accounting: the paper's primary metric ("number of paths
// covered") counts distinct whole-execution traces, identified here by the
// order-insensitive hash of the classified edge set.
//
// The store is a linear-probing open-addressing table rather than
// std::unordered_set (the ROADMAP's "batched path-tracker probing"
// follow-on): record() runs once per execution, and with the map ops gone
// sparse the node-based set's pointer chase and per-insert allocation were
// a visible slice of the executor. Keys are already splitmix-finalized
// 64-bit hashes, so the raw key indexes the table well; probes touch one
// contiguous cache line in the common case, inserts never allocate until
// the table doubles, and the semantics (set of uint64) are observably
// identical — asserted against an unordered_set oracle in
// tests/test_path_tracker.cpp and gated for throughput in bench_hotpath.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace icsfuzz::cov {

class PathTracker {
 public:
  /// Registers one execution's trace hash; returns true if this path is new.
  bool record(std::uint64_t trace_hash);

  /// Distinct paths observed so far.
  [[nodiscard]] std::size_t path_count() const {
    return filled_ + (has_zero_ ? 1 : 0);
  }

  /// True when `trace_hash` has been seen.
  [[nodiscard]] bool contains(std::uint64_t trace_hash) const;

  /// Folds `other`'s path set into this one (idempotent, commutative).
  /// Returns the number of paths that were new to this tracker.
  std::size_t merge(const PathTracker& other);

  /// Copies the path set (order unspecified). The seed exchange merges live
  /// trackers directly (merge()); the snapshot form is for detached copies
  /// — serialization, cross-process shipping, tests.
  [[nodiscard]] std::vector<std::uint64_t> snapshot() const;

  void clear();

 private:
  /// Doubles the table and re-inserts every key (no tombstones: the
  /// tracker never erases individual paths).
  void grow();

  /// Slot index `trace_hash` lives in or would be inserted at.
  [[nodiscard]] std::size_t probe(std::uint64_t trace_hash) const;

  /// Slot array; 0 marks an empty slot, so the (rare but legal) zero hash
  /// is tracked by the side flag instead. Sized to a power of two, grown
  /// at 50% load — probe chains stay short and the memory cost is ~16
  /// bytes per path at worst.
  std::vector<std::uint64_t> slots_;
  std::size_t filled_ = 0;
  bool has_zero_ = false;
};

}  // namespace icsfuzz::cov
