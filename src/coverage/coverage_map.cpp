#include "coverage/coverage_map.hpp"

#include <cstring>

#include "coverage/dense_ref.hpp"

namespace icsfuzz::cov {

std::uint8_t classify_count(std::uint8_t raw) {
  return simd::kBucketTable[raw];
}

CoverageMap::CoverageMap()
    : trace_(std::make_unique<std::uint64_t[]>(kMapWords)),
      virgin_(std::make_unique<std::uint64_t[]>(kMapWords)),
      dirty_(std::make_unique<DirtyWordList>()),
      acc_dirty_(std::make_unique<DirtyWordList>()),
      ops_(&simd::active()) {
  std::memset(trace_.get(), 0, kMapSize);
  std::memset(virgin_.get(), 0, kMapSize);
}

void CoverageMap::use_kernel(simd::Kernel kind) {
  const simd::KernelOps* ops = kind == simd::Kernel::kAuto
                                   ? &simd::active()
                                   : simd::ops_for(kind);
  ops_ = ops == nullptr ? &simd::scalar_ops() : ops;
}

void CoverageMap::begin_execution() {
  // Sparse clear: only the words the previous execution made nonzero. The
  // invariant "every word not in the dirty list is zero" holds from the
  // constructor memset onwards, because hit() appends each word on its
  // 0 -> nonzero transition and counters never decrease while armed.
  for (std::uint32_t i = 0; i < dirty_->count; ++i) {
    trace_[dirty_->indices[i]] = 0;
  }
  dirty_->count = 0;
  begin_trace(trace_bytes(), dirty_.get());
}

void CoverageMap::begin_execution_dense() {
  std::memset(trace_.get(), 0, kMapSize);
  dirty_->count = 0;
  begin_trace(trace_bytes(), dirty_.get());
}

TraceSummary CoverageMap::finalize_execution() {
  end_trace();
  // The fused classify+hash+count+accumulate pass, dispatched to the active
  // SIMD kernel (scalar reference produces bit-identical results).
  const simd::TraceAnalysis analysis = ops_->analyze_trace(
      trace_.get(), dirty_->indices, dirty_->count, virgin_.get(),
      acc_dirty_.get());
  edges_covered_ += analysis.newly_covered;
  TraceSummary summary;
  summary.trace_hash = dense::finish_hash(analysis.hash_sum,
                                          analysis.hash_mix);
  summary.trace_edges = analysis.trace_edges;
  summary.new_coverage = analysis.new_coverage;
  return summary;
}

TraceSummary CoverageMap::finalize_execution_dense() {
  end_trace();
  dense::classify_in_place(trace_bytes());
  TraceSummary summary;
  summary.trace_hash = dense::trace_hash(trace_bytes());
  summary.trace_edges = dense::edge_count(trace_bytes());
  summary.new_coverage = dense::accumulate(trace_bytes(), virgin_bytes());
  edges_covered_ = dense::edge_count(accumulated());
  // dense::accumulate bypasses the incremental superset maintenance; rebuild
  // it with one more full sweep (consistent with dense mode's charter of
  // paying the pre-overhaul whole-map costs).
  acc_dirty_->count = 0;
  for (std::size_t w = 0; w < kMapWords; ++w) {
    if (virgin_[w] != 0) {
      acc_dirty_->indices[acc_dirty_->count++] =
          static_cast<std::uint16_t>(w);
    }
  }
  return summary;
}

void CoverageMap::end_execution() {
  end_trace();
  ops_->classify_words(trace_.get(), dirty_->indices, dirty_->count);
}

void CoverageMap::adopt_external(const std::uint64_t* words) {
  // Same sparse clear as begin_execution (the invariant "every word not in
  // the dirty list is zero" carries over), but tracing stays disarmed: the
  // trace was produced in another process and only needs adopting.
  for (std::uint32_t i = 0; i < dirty_->count; ++i) {
    trace_[dirty_->indices[i]] = 0;
  }
  dirty_->count = 0;
  // Null = the empty trace (a lost fork server produced no coverage): the
  // clear above already is that state, no sweep needed.
  if (words != nullptr) ops_->adopt_full(trace_.get(), words, dirty_.get());
}

void CoverageMap::bump_trace_cell(std::uint32_t cell) {
  cell &= kMapSize - 1;
  const std::uint16_t word = static_cast<std::uint16_t>(cell >> 3);
  if (trace_[word] == 0) dirty_->indices[dirty_->count++] = word;
  std::uint8_t* bytes = trace_bytes();
  // Saturating (unlike the wrapping instrumentation counter): a cell stuck
  // at 255 still classifies into the top bucket, and saturation keeps the
  // "nonzero word implies listed" invariant unconditional.
  if (bytes[cell] != 0xFF) ++bytes[cell];
}

bool CoverageMap::has_new_bits() const {
  for (std::uint32_t i = 0; i < dirty_->count; ++i) {
    const std::size_t w = dirty_->indices[i];
    if ((trace_[w] & ~virgin_[w]) != 0) return true;
  }
  return false;
}

bool CoverageMap::accumulate() {
  // The classified trace is a sparse source whose nonzero words are exactly
  // the dirty list — the same shape as a peer merge, so it shares the
  // SIMD-compared merge kernel.
  const simd::MergeResult merged = ops_->merge_words(
      virgin_.get(), trace_.get(), dirty_->indices, dirty_->count,
      acc_dirty_.get());
  edges_covered_ += merged.newly_covered;
  return merged.added;
}

std::size_t CoverageMap::trace_edge_count() const {
  std::size_t count = 0;
  for (std::uint32_t i = 0; i < dirty_->count; ++i) {
    const std::uint8_t* cell = trace() + dirty_->indices[i] * 8;
    for (std::size_t b = 0; b < 8; ++b) count += cell[b] != 0;
  }
  return count;
}

std::uint64_t CoverageMap::trace_hash() const {
  // Commutative accumulation (sum + xor of per-cell mixes) so the hash is
  // independent of iteration order — which also makes the first-touch-order
  // dirty sweep hash identically to the ascending dense sweep.
  std::uint64_t sum = 0;
  std::uint64_t mix = 0;
  for (std::uint32_t i = 0; i < dirty_->count; ++i) {
    const std::size_t w = dirty_->indices[i];
    const std::uint8_t* cell = trace() + w * 8;
    for (std::size_t b = 0; b < 8; ++b) {
      if (cell[b] == 0) continue;
      const std::uint64_t v = dense::mix_cell(w * 8 + b, cell[b]);
      sum += v;
      mix ^= v;
    }
  }
  return dense::finish_hash(sum, mix);
}

bool CoverageMap::merge(const CoverageMap& other) {
  // Dirty-superset-aware: when the source campaign covered few words, walk
  // only its acc_dirty list (complete by the same append-on-transition
  // invariant as the trace dirty list). Once the superset is dense enough
  // that scattered gathers lose to contiguous loads, switch to the
  // SIMD-compared full sweep — a whole register of words per compare, with
  // the steady-state "peer has nothing new" case skipping each batch on one
  // test.
  const std::uint32_t count = other.acc_dirty_->count;
  const simd::MergeResult merged =
      count >= kMapWords / 8
          ? ops_->merge_full(virgin_.get(), other.accumulated(),
                             acc_dirty_.get())
          : ops_->merge_words(virgin_.get(), other.virgin_.get(),
                              other.acc_dirty_->indices, count,
                              acc_dirty_.get());
  edges_covered_ += merged.newly_covered;
  return merged.added;
}

bool CoverageMap::merge_accumulated(const std::uint8_t* bits) {
  // Raw snapshots carry no dirty list, so this stays a full-map sweep — but
  // a SIMD-compared one (a whole register of words per compare).
  const simd::MergeResult merged =
      ops_->merge_full(virgin_.get(), bits, acc_dirty_.get());
  edges_covered_ += merged.newly_covered;
  return merged.added;
}

std::vector<std::uint8_t> CoverageMap::snapshot_accumulated() const {
  return std::vector<std::uint8_t>(accumulated(), accumulated() + kMapSize);
}

void CoverageMap::reset_accumulated() {
  std::memset(virgin_.get(), 0, kMapSize);
  acc_dirty_->count = 0;
  edges_covered_ = 0;
}

}  // namespace icsfuzz::cov
