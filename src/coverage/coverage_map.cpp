#include "coverage/coverage_map.hpp"

#include <cstring>

namespace icsfuzz::cov {
namespace {

// Lookup table mapping a raw count to its AFL bucket bitmask.
constexpr std::array<std::uint8_t, 256> make_bucket_table() {
  std::array<std::uint8_t, 256> table{};
  table[0] = 0;
  table[1] = 1;
  table[2] = 2;
  table[3] = 4;
  for (int i = 4; i <= 7; ++i) table[static_cast<std::size_t>(i)] = 8;
  for (int i = 8; i <= 15; ++i) table[static_cast<std::size_t>(i)] = 16;
  for (int i = 16; i <= 31; ++i) table[static_cast<std::size_t>(i)] = 32;
  for (int i = 32; i <= 127; ++i) table[static_cast<std::size_t>(i)] = 64;
  for (int i = 128; i <= 255; ++i) table[static_cast<std::size_t>(i)] = 128;
  return table;
}

const std::array<std::uint8_t, 256> kBucketTable = make_bucket_table();

}  // namespace

std::uint8_t classify_count(std::uint8_t raw) { return kBucketTable[raw]; }

CoverageMap::CoverageMap()
    : trace_(std::make_unique<std::uint8_t[]>(kMapSize)),
      virgin_(std::make_unique<std::uint8_t[]>(kMapSize)) {
  std::memset(trace_.get(), 0, kMapSize);
  std::memset(virgin_.get(), 0, kMapSize);
}

void CoverageMap::begin_execution() {
  std::memset(trace_.get(), 0, kMapSize);
  begin_trace(trace_.get());
}

namespace {

// The maps are sparse (a few hundred live cells out of 64 Ki), so every
// whole-map pass skips zero 64-bit words — the same trick AFL uses.
constexpr std::size_t kWords = kMapSize / sizeof(std::uint64_t);

const std::uint64_t* as_words(const std::uint8_t* bytes) {
  return reinterpret_cast<const std::uint64_t*>(bytes);
}

std::uint64_t* as_words(std::uint8_t* bytes) {
  return reinterpret_cast<std::uint64_t*>(bytes);
}

}  // anonymous namespace

void CoverageMap::end_execution() {
  end_trace();
  std::uint64_t* words = as_words(trace_.get());
  for (std::size_t w = 0; w < kWords; ++w) {
    if (words[w] == 0) continue;
    std::uint8_t* cell = trace_.get() + w * 8;
    for (std::size_t b = 0; b < 8; ++b) cell[b] = kBucketTable[cell[b]];
  }
}

bool CoverageMap::has_new_bits() const {
  const std::uint64_t* trace_words = as_words(trace_.get());
  const std::uint64_t* virgin_words = as_words(virgin_.get());
  for (std::size_t w = 0; w < kWords; ++w) {
    if ((trace_words[w] & ~virgin_words[w]) != 0) return true;
  }
  return false;
}

bool CoverageMap::accumulate() {
  const std::uint64_t* trace_words = as_words(trace_.get());
  std::uint64_t* virgin_words = as_words(virgin_.get());
  bool added = false;
  for (std::size_t w = 0; w < kWords; ++w) {
    const std::uint64_t fresh = trace_words[w] & ~virgin_words[w];
    if (fresh != 0) {
      virgin_words[w] |= fresh;
      added = true;
    }
  }
  return added;
}

std::size_t CoverageMap::edges_covered() const {
  const std::uint64_t* words = as_words(virgin_.get());
  std::size_t count = 0;
  for (std::size_t w = 0; w < kWords; ++w) {
    if (words[w] == 0) continue;
    const std::uint8_t* cell = virgin_.get() + w * 8;
    for (std::size_t b = 0; b < 8; ++b) count += cell[b] != 0;
  }
  return count;
}

std::size_t CoverageMap::trace_edge_count() const {
  const std::uint64_t* words = as_words(trace_.get());
  std::size_t count = 0;
  for (std::size_t w = 0; w < kWords; ++w) {
    if (words[w] == 0) continue;
    const std::uint8_t* cell = trace_.get() + w * 8;
    for (std::size_t b = 0; b < 8; ++b) count += cell[b] != 0;
  }
  return count;
}

std::uint64_t CoverageMap::trace_hash() const {
  // Commutative accumulation (sum + xor of per-cell mixes) so the hash is
  // independent of iteration order while remaining sensitive to both edge
  // identity and hit bucket.
  std::uint64_t sum = 0;
  std::uint64_t mix = 0;
  const std::uint64_t* words = as_words(trace_.get());
  for (std::size_t w = 0; w < kWords; ++w) {
    if (words[w] == 0) continue;
    for (std::size_t b = 0; b < 8; ++b) {
      const std::size_t i = w * 8 + b;
      if (trace_[i] == 0) continue;
      std::uint64_t v = (static_cast<std::uint64_t>(i) << 8) | trace_[i];
      v *= 0x9E3779B97F4A7C15ULL;
      v ^= v >> 29;
      v *= 0xBF58476D1CE4E5B9ULL;
      v ^= v >> 32;
      sum += v;
      mix ^= v;
    }
  }
  return sum ^ (mix * 0x94D049BB133111EBULL);
}

bool CoverageMap::merge(const CoverageMap& other) {
  return merge_accumulated(other.virgin_.get());
}

bool CoverageMap::merge_accumulated(const std::uint8_t* bits) {
  const std::uint64_t* in_words = as_words(bits);
  std::uint64_t* virgin_words = as_words(virgin_.get());
  bool added = false;
  for (std::size_t w = 0; w < kWords; ++w) {
    const std::uint64_t fresh = in_words[w] & ~virgin_words[w];
    if (fresh != 0) {
      virgin_words[w] |= fresh;
      added = true;
    }
  }
  return added;
}

std::vector<std::uint8_t> CoverageMap::snapshot_accumulated() const {
  return std::vector<std::uint8_t>(virgin_.get(), virgin_.get() + kMapSize);
}

void CoverageMap::reset_accumulated() {
  std::memset(virgin_.get(), 0, kMapSize);
}

}  // namespace icsfuzz::cov
