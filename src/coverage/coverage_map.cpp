#include "coverage/coverage_map.hpp"

#include <cstring>

#include "coverage/dense_ref.hpp"

namespace icsfuzz::cov {
namespace {

// Lookup table mapping a raw count to its AFL bucket bitmask.
constexpr std::array<std::uint8_t, 256> make_bucket_table() {
  std::array<std::uint8_t, 256> table{};
  table[0] = 0;
  table[1] = 1;
  table[2] = 2;
  table[3] = 4;
  for (int i = 4; i <= 7; ++i) table[static_cast<std::size_t>(i)] = 8;
  for (int i = 8; i <= 15; ++i) table[static_cast<std::size_t>(i)] = 16;
  for (int i = 16; i <= 31; ++i) table[static_cast<std::size_t>(i)] = 32;
  for (int i = 32; i <= 127; ++i) table[static_cast<std::size_t>(i)] = 64;
  for (int i = 128; i <= 255; ++i) table[static_cast<std::size_t>(i)] = 128;
  return table;
}

const std::array<std::uint8_t, 256> kBucketTable = make_bucket_table();

/// Number of bytes that are zero in `before` but nonzero in `after` — the
/// edges a virgin-map OR newly covered (feeds the O(1) edges_covered()).
std::size_t newly_nonzero_bytes(std::uint64_t before, std::uint64_t after) {
  std::size_t count = 0;
  for (std::size_t b = 0; b < 8; ++b) {
    const std::uint64_t mask = 0xFFULL << (b * 8);
    count += (before & mask) == 0 && (after & mask) != 0;
  }
  return count;
}

}  // namespace

std::uint8_t classify_count(std::uint8_t raw) { return kBucketTable[raw]; }

CoverageMap::CoverageMap()
    : trace_(std::make_unique<std::uint64_t[]>(kMapWords)),
      virgin_(std::make_unique<std::uint64_t[]>(kMapWords)),
      dirty_(std::make_unique<DirtyWordList>()) {
  std::memset(trace_.get(), 0, kMapSize);
  std::memset(virgin_.get(), 0, kMapSize);
}

void CoverageMap::begin_execution() {
  // Sparse clear: only the words the previous execution made nonzero. The
  // invariant "every word not in the dirty list is zero" holds from the
  // constructor memset onwards, because hit() appends each word on its
  // 0 -> nonzero transition and counters never decrease while armed.
  for (std::uint32_t i = 0; i < dirty_->count; ++i) {
    trace_[dirty_->indices[i]] = 0;
  }
  dirty_->count = 0;
  begin_trace(trace_bytes(), dirty_.get());
}

void CoverageMap::begin_execution_dense() {
  std::memset(trace_.get(), 0, kMapSize);
  dirty_->count = 0;
  begin_trace(trace_bytes(), dirty_.get());
}

TraceSummary CoverageMap::finalize_execution() {
  end_trace();
  TraceSummary summary;
  std::uint64_t sum = 0;
  std::uint64_t mix = 0;
  for (std::uint32_t i = 0; i < dirty_->count; ++i) {
    const std::size_t w = dirty_->indices[i];
    std::uint8_t* cell = trace_bytes() + w * 8;
    // Classify the word's cells, then hash/count/accumulate the classified
    // values — the fused single pass.
    for (std::size_t b = 0; b < 8; ++b) cell[b] = kBucketTable[cell[b]];
    const std::uint64_t word = trace_[w];
    const std::uint64_t have = virgin_[w];
    const std::uint64_t fresh = word & ~have;
    if (fresh != 0) {
      virgin_[w] = have | fresh;
      edges_covered_ += newly_nonzero_bytes(have, have | fresh);
      summary.new_coverage = true;
    }
    for (std::size_t b = 0; b < 8; ++b) {
      if (cell[b] == 0) continue;
      const std::uint64_t v = dense::mix_cell(w * 8 + b, cell[b]);
      sum += v;
      mix ^= v;
      ++summary.trace_edges;
    }
  }
  summary.trace_hash = dense::finish_hash(sum, mix);
  return summary;
}

TraceSummary CoverageMap::finalize_execution_dense() {
  end_trace();
  dense::classify_in_place(trace_bytes());
  TraceSummary summary;
  summary.trace_hash = dense::trace_hash(trace_bytes());
  summary.trace_edges = dense::edge_count(trace_bytes());
  summary.new_coverage = dense::accumulate(trace_bytes(), virgin_bytes());
  edges_covered_ = dense::edge_count(accumulated());
  return summary;
}

void CoverageMap::end_execution() {
  end_trace();
  for (std::uint32_t i = 0; i < dirty_->count; ++i) {
    std::uint8_t* cell = trace_bytes() + dirty_->indices[i] * 8;
    for (std::size_t b = 0; b < 8; ++b) cell[b] = kBucketTable[cell[b]];
  }
}

bool CoverageMap::has_new_bits() const {
  for (std::uint32_t i = 0; i < dirty_->count; ++i) {
    const std::size_t w = dirty_->indices[i];
    if ((trace_[w] & ~virgin_[w]) != 0) return true;
  }
  return false;
}

bool CoverageMap::accumulate() {
  bool added = false;
  for (std::uint32_t i = 0; i < dirty_->count; ++i) {
    const std::size_t w = dirty_->indices[i];
    const std::uint64_t have = virgin_[w];
    const std::uint64_t fresh = trace_[w] & ~have;
    if (fresh != 0) {
      virgin_[w] = have | fresh;
      edges_covered_ += newly_nonzero_bytes(have, have | fresh);
      added = true;
    }
  }
  return added;
}

std::size_t CoverageMap::trace_edge_count() const {
  std::size_t count = 0;
  for (std::uint32_t i = 0; i < dirty_->count; ++i) {
    const std::uint8_t* cell = trace() + dirty_->indices[i] * 8;
    for (std::size_t b = 0; b < 8; ++b) count += cell[b] != 0;
  }
  return count;
}

std::uint64_t CoverageMap::trace_hash() const {
  // Commutative accumulation (sum + xor of per-cell mixes) so the hash is
  // independent of iteration order — which also makes the first-touch-order
  // dirty sweep hash identically to the ascending dense sweep.
  std::uint64_t sum = 0;
  std::uint64_t mix = 0;
  for (std::uint32_t i = 0; i < dirty_->count; ++i) {
    const std::size_t w = dirty_->indices[i];
    const std::uint8_t* cell = trace() + w * 8;
    for (std::size_t b = 0; b < 8; ++b) {
      if (cell[b] == 0) continue;
      const std::uint64_t v = dense::mix_cell(w * 8 + b, cell[b]);
      sum += v;
      mix ^= v;
    }
  }
  return dense::finish_hash(sum, mix);
}

bool CoverageMap::merge(const CoverageMap& other) {
  return merge_accumulated(other.accumulated());
}

bool CoverageMap::merge_accumulated(const std::uint8_t* bits) {
  bool added = false;
  for (std::size_t w = 0; w < kMapWords; ++w) {
    const std::uint64_t have = virgin_[w];
    const std::uint64_t fresh = dense::load_word(bits, w) & ~have;
    if (fresh != 0) {
      virgin_[w] = have | fresh;
      edges_covered_ += newly_nonzero_bytes(have, have | fresh);
      added = true;
    }
  }
  return added;
}

std::vector<std::uint8_t> CoverageMap::snapshot_accumulated() const {
  return std::vector<std::uint8_t>(accumulated(), accumulated() + kMapSize);
}

void CoverageMap::reset_accumulated() {
  std::memset(virgin_.get(), 0, kMapSize);
  edges_covered_ = 0;
}

}  // namespace icsfuzz::cov
