// Byte-wide SIMD kernels for the coverage hot loops.
//
// PR 3's sparse dirty-word overhaul removed every full-map sweep from the
// execution path; what remained on the profile was the per-cell work *inside*
// each dirty word (8 bucket-table lookups + a nonzero scan + a hash mix per
// cell) and the full 8192-word sweep of worker-to-exchange merges. This layer
// vectorizes both with plain byte-wide operations (compare / min-max / blend)
// that exist identically on SSE2, AVX2 and NEON, behind one dispatch table:
//
//   * Compile-time selection — each kernel is compiled only when the target
//     architecture can express it (SSE2 is x86-64 baseline; AVX2 additionally
//     via the GCC/Clang `target("avx2")` function attribute so a plain
//     -march=x86-64 build still *contains* the AVX2 kernel; NEON on
//     aarch64/ARM; the portable scalar kernel always). Defining
//     ICSFUZZ_SCALAR_COVERAGE (CMake: -DICSFUZZ_SCALAR_COVERAGE=ON) compiles
//     the scalar kernel alone.
//   * Runtime dispatch — best_kernel() probes the CPU once (AVX2 via
//     __builtin_cpu_supports) and active() returns the process-wide default
//     table, overridable with force_kernel() or the ICSFUZZ_COV_KERNEL
//     environment variable (scalar|sse2|avx2|neon|auto). Each CoverageMap can
//     also pin its own kernel (CoverageMap::use_kernel /
//     ExecutorConfig::coverage_kernel), which is how tests and bench_hotpath
//     run the scalar and SIMD arms side by side in one process.
//
// Every kernel is bit-identical to the scalar reference: same classified
// bytes, same commutative (sum, xor) hash accumulators, same edge counts,
// same accumulated maps, same dirty-superset append order. The scalar kernel
// *is* PR 3's fused loop, verbatim; the equivalence suite
// (tests/test_coverage_sparse.cpp) drives all compiled kernels against it and
// against the dense full-map reference (coverage/dense_ref.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "coverage/instrument.hpp"

namespace icsfuzz::cov::simd {

/// Kernel identities, in dispatch-preference order (higher is preferred).
enum class Kernel : std::uint8_t {
  kAuto = 0,  ///< "best available" — resolved by ops_for()/best_kernel()
  kScalar,
  kSSE2,
  kAVX2,
  kNEON,
};

/// AFL bucket table: raw hit count -> bucket bitmask. Shared by the scalar
/// kernel, classify_count() and the dense reference so every implementation
/// classifies identically.
constexpr std::array<std::uint8_t, 256> make_bucket_table() {
  std::array<std::uint8_t, 256> table{};
  table[0] = 0;
  table[1] = 1;
  table[2] = 2;
  table[3] = 4;
  for (int i = 4; i <= 7; ++i) table[static_cast<std::size_t>(i)] = 8;
  for (int i = 8; i <= 15; ++i) table[static_cast<std::size_t>(i)] = 16;
  for (int i = 16; i <= 31; ++i) table[static_cast<std::size_t>(i)] = 32;
  for (int i = 32; i <= 127; ++i) table[static_cast<std::size_t>(i)] = 64;
  for (int i = 128; i <= 255; ++i) table[static_cast<std::size_t>(i)] = 128;
  return table;
}

inline constexpr std::array<std::uint8_t, 256> kBucketTable =
    make_bucket_table();

/// Number of bytes that are zero in `before` but nonzero in `after` — the
/// cells a virgin-map OR newly covered (feeds the O(1) edges_covered()).
inline std::size_t newly_nonzero_bytes(std::uint64_t before,
                                       std::uint64_t after) {
  std::size_t count = 0;
  for (std::size_t b = 0; b < 8; ++b) {
    const std::uint64_t mask = 0xFFULL << (b * 8);
    count += (before & mask) == 0 && (after & mask) != 0;
  }
  return count;
}

/// Commutative accumulators of the fused trace pass. Finish with
/// dense::finish_hash(hash_sum, hash_mix); commutativity is what lets the
/// kernels batch dirty words in any width without changing the hash.
struct TraceAnalysis {
  std::uint64_t hash_sum = 0;
  std::uint64_t hash_mix = 0;
  std::size_t trace_edges = 0;
  /// Virgin-map cells that went 0 -> nonzero (edges_covered delta).
  std::size_t newly_covered = 0;
  bool new_coverage = false;
};

/// Outcome of a merge kernel (accumulate / worker-to-exchange fold).
struct MergeResult {
  std::size_t newly_covered = 0;
  bool added = false;
};

/// Fused classify + hash + count + accumulate over the listed dirty words of
/// `trace` (uint64 map words), folding fresh bits into `virgin` and appending
/// every virgin word that transitions 0 -> nonzero to `acc_dirty` (the
/// accumulated-map dirty superset the sparse merge path iterates).
using AnalyzeTraceFn = TraceAnalysis (*)(std::uint64_t* trace,
                                         const std::uint16_t* indices,
                                         std::uint32_t count,
                                         std::uint64_t* virgin,
                                         DirtyWordList* acc_dirty);

/// Classify-only pass over the listed dirty words (the per-query
/// end_execution path).
using ClassifyWordsFn = void (*)(std::uint64_t* trace,
                                 const std::uint16_t* indices,
                                 std::uint32_t count);

/// Sparse merge: ORs the listed words of `src` into `dst` (both uint64 map
/// arrays), appending dst words that transition 0 -> nonzero to `acc_dirty`.
/// The SIMD arms compare whole batches first, so the steady-state case
/// (nothing fresh) skips several words per instruction.
using MergeWordsFn = MergeResult (*)(std::uint64_t* dst,
                                     const std::uint64_t* src,
                                     const std::uint16_t* indices,
                                     std::uint32_t count,
                                     DirtyWordList* acc_dirty);

/// Full-map merge from a raw kMapSize-byte snapshot (cross-process shipping,
/// persistence — no dirty list travels with the bytes).
using MergeFullFn = MergeResult (*)(std::uint64_t* dst,
                                    const std::uint8_t* src_bytes,
                                    DirtyWordList* acc_dirty);

/// Reader-side adoption of an externally produced raw trace (the shared
/// memory map an out-of-process target wrote): sweeps all kMapWords of
/// `src`, copies every nonzero word into `dst` and appends its index to
/// `dirty` in ascending order — rebuilding the dirty list the shm map could
/// not ship. `dst`'s unlisted words must already be zero (the caller clears
/// its previous dirty words first). The vector arms test whole batches for
/// zero, so the mostly-zero steady-state map skips several words per
/// instruction.
using AdoptFullFn = void (*)(std::uint64_t* dst, const std::uint64_t* src,
                             DirtyWordList* dirty);

/// One kernel's dispatch table.
struct KernelOps {
  Kernel kind = Kernel::kScalar;
  const char* name = "scalar";
  AnalyzeTraceFn analyze_trace = nullptr;
  ClassifyWordsFn classify_words = nullptr;
  MergeWordsFn merge_words = nullptr;
  MergeFullFn merge_full = nullptr;
  AdoptFullFn adopt_full = nullptr;
};

/// The portable reference kernel (always compiled).
const KernelOps& scalar_ops();

/// The dispatch table for `kind`, or nullptr when that kernel is not
/// compiled in / not supported by this CPU. kAuto resolves to the best
/// runnable kernel (never nullptr: scalar always runs).
const KernelOps* ops_for(Kernel kind);

/// The best kernel this build can run on this CPU (compile-time selection
/// refined by the one-time runtime probe).
Kernel best_kernel();

/// The process-wide default table: best_kernel(), unless overridden by
/// force_kernel() or the ICSFUZZ_COV_KERNEL environment variable
/// (scalar|sse2|avx2|neon|auto), read once on first use.
const KernelOps& active();

/// Overrides the process-wide default. Returns false (and changes nothing)
/// when `kind` is unavailable; kAuto restores runtime selection.
bool force_kernel(Kernel kind);

/// Human-readable kernel name ("scalar", "sse2", "avx2", "neon", "auto").
std::string_view kernel_name(Kernel kind);

/// Parses a kernel name (as accepted by ICSFUZZ_COV_KERNEL); kAuto for
/// unrecognized input.
Kernel parse_kernel(std::string_view name);

}  // namespace icsfuzz::cov::simd
