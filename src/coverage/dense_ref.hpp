// Dense full-map reference implementation of the trace analyses.
//
// These are the pre-sparse whole-map passes (memset + classify + has-new-bits
// + accumulate + hash + count, each a full 64 KiB sweep), retained verbatim
// for two consumers:
//
//   * the equivalence suite (tests/test_coverage_sparse.cpp) asserts the
//     sparse dirty-word path produces bit-identical hashes, edge counts,
//     new-bit decisions and accumulated maps;
//   * bench_hotpath.cpp measures speedup_vs_dense, the hardware-independent
//     headline number of the hot-path overhaul, and Executor's
//     dense_reference mode replays whole campaigns through these passes to
//     prove trajectory preservation.
//
// All word access goes through memcpy so the functions are alias-safe on any
// uint8_t buffer (the sparse CoverageMap stores its maps as real uint64
// arrays; callers here often hold plain std::vector<uint8_t>).
#pragma once

#include <cstdint>
#include <cstring>

#include "coverage/instrument.hpp"

namespace icsfuzz::cov::dense {

/// Loads the w-th 64-bit word of a kMapSize byte map.
inline std::uint64_t load_word(const std::uint8_t* map, std::size_t w) {
  std::uint64_t word;
  std::memcpy(&word, map + w * sizeof(word), sizeof(word));
  return word;
}

/// Per-cell contribution to the order-insensitive trace hash: mixes the cell
/// index and its classified bucket through a splitmix64-style finalizer.
/// Shared with the sparse fused pass so both compute the identical hash.
inline std::uint64_t mix_cell(std::size_t index, std::uint8_t value) {
  std::uint64_t v = (static_cast<std::uint64_t>(index) << 8) | value;
  v *= 0x9E3779B97F4A7C15ULL;
  v ^= v >> 29;
  v *= 0xBF58476D1CE4E5B9ULL;
  v ^= v >> 32;
  return v;
}

/// Finalizes the commutative (sum, xor) accumulators into the trace hash.
inline std::uint64_t finish_hash(std::uint64_t sum, std::uint64_t mix) {
  return sum ^ (mix * 0x94D049BB133111EBULL);
}

/// Classifies every raw count of `trace` into its AFL bucket, in place.
void classify_in_place(std::uint8_t* trace);

/// True when the classified `trace` contains a bit absent from `virgin`.
[[nodiscard]] bool has_new_bits(const std::uint8_t* trace,
                                const std::uint8_t* virgin);

/// ORs the classified `trace` into `virgin`; returns true if anything new.
bool accumulate(const std::uint8_t* trace, std::uint8_t* virgin);

/// Number of nonzero cells in `map`.
[[nodiscard]] std::size_t edge_count(const std::uint8_t* map);

/// Order-insensitive hash of the classified (edge, bucket) set of `trace`.
[[nodiscard]] std::uint64_t trace_hash(const std::uint8_t* trace);

}  // namespace icsfuzz::cov::dense
