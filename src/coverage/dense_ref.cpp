#include "coverage/dense_ref.hpp"

#include "coverage/coverage_map.hpp"

namespace icsfuzz::cov::dense {

void classify_in_place(std::uint8_t* trace) {
  for (std::size_t w = 0; w < kMapWords; ++w) {
    if (load_word(trace, w) == 0) continue;
    std::uint8_t* cell = trace + w * 8;
    for (std::size_t b = 0; b < 8; ++b) cell[b] = classify_count(cell[b]);
  }
}

bool has_new_bits(const std::uint8_t* trace, const std::uint8_t* virgin) {
  for (std::size_t w = 0; w < kMapWords; ++w) {
    if ((load_word(trace, w) & ~load_word(virgin, w)) != 0) return true;
  }
  return false;
}

bool accumulate(const std::uint8_t* trace, std::uint8_t* virgin) {
  bool added = false;
  for (std::size_t w = 0; w < kMapWords; ++w) {
    const std::uint64_t have = load_word(virgin, w);
    const std::uint64_t fresh = load_word(trace, w) & ~have;
    if (fresh != 0) {
      const std::uint64_t merged = have | fresh;
      std::memcpy(virgin + w * 8, &merged, sizeof(merged));
      added = true;
    }
  }
  return added;
}

std::size_t edge_count(const std::uint8_t* map) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < kMapWords; ++w) {
    if (load_word(map, w) == 0) continue;
    const std::uint8_t* cell = map + w * 8;
    for (std::size_t b = 0; b < 8; ++b) count += cell[b] != 0;
  }
  return count;
}

std::uint64_t trace_hash(const std::uint8_t* trace) {
  std::uint64_t sum = 0;
  std::uint64_t mix = 0;
  for (std::size_t w = 0; w < kMapWords; ++w) {
    if (load_word(trace, w) == 0) continue;
    for (std::size_t b = 0; b < 8; ++b) {
      const std::size_t i = w * 8 + b;
      if (trace[i] == 0) continue;
      const std::uint64_t v = mix_cell(i, trace[i]);
      sum += v;
      mix ^= v;
    }
  }
  return finish_hash(sum, mix);
}

}  // namespace icsfuzz::cov::dense
