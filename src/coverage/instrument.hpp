// Lightweight edge-coverage instrumentation.
//
// The paper's Peach*-clang wraps clang with an LLVM pass that injects, at
// every branch point of the protocol program:
//
//     cur_location = <COMPILE_TIME_RANDOM>;
//     shared_mem[cur_location ^ prev_location]++;
//     prev_location = cur_location >> 1;
//
// This repository reproduces the identical runtime semantics, but the
// injection vehicle is a macro (`ICSFUZZ_COV_BLOCK()`) placed in the basic
// blocks of the re-implemented protocol stacks. The "compile-time random"
// block id is an FNV-1a hash of file/line/counter, which has the same
// statistical properties as the pass's random constant.
#pragma once

#include <cstddef>
#include <cstdint>

namespace icsfuzz::cov {

/// Size of the shared edge map; same 64 KiB default as AFL / the paper.
inline constexpr std::size_t kMapSize = 1 << 16;

/// The "shared memory" edge-hit array for the currently executing target.
/// Owned by the active CoverageMap (coverage_map.hpp); null when no
/// execution is being traced, in which case hits are dropped.
extern thread_local std::uint8_t* tls_shared_mem;

/// prev_location from the paper's instrumentation snippet.
extern thread_local std::uint32_t tls_prev_location;

/// Total instrumentation events in the current execution; the executor uses
/// this as a deterministic "time" budget for hang detection.
extern thread_local std::uint64_t tls_event_count;

/// Records a transition into the basic block identified by `block_id`.
inline void hit(std::uint32_t block_id) {
  ++tls_event_count;
  if (tls_shared_mem == nullptr) return;
  const std::uint32_t cur_location = block_id & (kMapSize - 1);
  std::uint8_t& cell = tls_shared_mem[cur_location ^ tls_prev_location];
  // Saturating increment: a wrapped counter would make a 256-iteration loop
  // look identical to a straight-line block.
  if (cell != 0xFF) ++cell;
  tls_prev_location = cur_location >> 1;
}

/// Arms tracing for this thread: hits go to `map` (kMapSize bytes).
///
/// All arming state is thread_local, so each worker thread of a parallel
/// campaign traces into its own CoverageMap with no synchronization: arming
/// on one thread never observes or disturbs another thread's trace. The map
/// pointer must stay valid until the matching end_trace() on the same
/// thread, and target code must run on the thread that armed it.
void begin_trace(std::uint8_t* map);

/// Disarms tracing and resets prev_location / the event counter.
void end_trace();

/// True while this thread has tracing armed (diagnostics; lets an executor
/// assert it is not re-entering another execution on the same thread).
[[nodiscard]] bool trace_armed();

/// Compile-time FNV-1a over file/line/counter — the macro's block id.
constexpr std::uint32_t fnv1a(const char* text, std::uint32_t seed) {
  std::uint32_t hash = 2166136261U ^ seed;
  for (const char* p = text; *p != '\0'; ++p) {
    hash ^= static_cast<std::uint8_t>(*p);
    hash *= 16777619U;
  }
  return hash;
}

}  // namespace icsfuzz::cov

/// Marks one basic block of target code. Each textual occurrence gets a
/// distinct compile-time id, mirroring the paper's <COMPILE_TIME_RANDOM>.
#define ICSFUZZ_COV_BLOCK()                                                  \
  ::icsfuzz::cov::hit(::icsfuzz::cov::fnv1a(                                 \
      __FILE__, static_cast<std::uint32_t>(__LINE__ * 977u + __COUNTER__)))

/// Marks a block with an explicit stable id (used by tests).
#define ICSFUZZ_COV_BLOCK_ID(id) ::icsfuzz::cov::hit((id))
