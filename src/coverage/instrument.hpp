// Lightweight edge-coverage instrumentation.
//
// The paper's Peach*-clang wraps clang with an LLVM pass that injects, at
// every branch point of the protocol program:
//
//     cur_location = <COMPILE_TIME_RANDOM>;
//     shared_mem[cur_location ^ prev_location]++;
//     prev_location = cur_location >> 1;
//
// This repository reproduces the identical runtime semantics, but the
// injection vehicle is a macro (`ICSFUZZ_COV_BLOCK()`) placed in the basic
// blocks of the re-implemented protocol stacks. The "compile-time random"
// block id is an FNV-1a hash of file/line/counter, which has the same
// statistical properties as the pass's random constant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace icsfuzz::cov {

/// Size of the shared edge map; same 64 KiB default as AFL / the paper.
inline constexpr std::size_t kMapSize = 1 << 16;

/// Number of 64-bit words in the edge map.
inline constexpr std::size_t kMapWords = kMapSize / sizeof(std::uint64_t);

/// Sparse-trace bookkeeping: the index of every 64-bit map word that went
/// nonzero during the current execution, in first-touch order. A typical
/// trace dirties a few hundred of the 8192 words, so clearing and analysing
/// only the dirty words replaces every full 64 KiB map pass with an O(touched)
/// sweep — the hot-path optimisation the whole coverage layer is built on.
///
/// Capacity never overflows: a word is appended only on its 0 -> nonzero
/// transition, counters saturate (never return to zero) while armed, so each
/// word appears at most once per arming.
struct DirtyWordList {
  std::uint32_t count = 0;
  std::uint16_t indices[kMapWords];
};

/// The "shared memory" edge-hit array for the currently executing target.
/// Owned by the active CoverageMap (coverage_map.hpp); null when no
/// execution is being traced, in which case hits are dropped.
extern thread_local std::uint8_t* tls_shared_mem;

/// prev_location from the paper's instrumentation snippet.
extern thread_local std::uint32_t tls_prev_location;

/// Total instrumentation events in the current execution; the executor uses
/// this as a deterministic "time" budget for hang detection.
extern thread_local std::uint64_t tls_event_count;

/// Dirty-word list of the currently armed trace. Invariant: non-null
/// whenever tls_shared_mem is non-null (begin_trace installs a per-thread
/// fallback when the caller does not supply one), so hit() never branches
/// on it.
extern thread_local DirtyWordList* tls_dirty_words;

/// Records a transition into the basic block identified by `block_id`.
inline void hit(std::uint32_t block_id) {
  ++tls_event_count;
  std::uint8_t* mem = tls_shared_mem;
  if (mem == nullptr) return;
  const std::uint32_t cur_location = block_id & (kMapSize - 1);
  const std::uint32_t index = cur_location ^ tls_prev_location;
  // Dirty-word bookkeeping: the containing 64-bit word shares the cell's
  // cache line, so this is one extra load + compare on the hot path; the
  // append itself runs once per word per execution.
  std::uint64_t word;
  std::memcpy(&word, mem + (index & ~std::uint32_t{7}), sizeof(word));
  if (word == 0) {
    DirtyWordList* dirty = tls_dirty_words;
    dirty->indices[dirty->count++] = static_cast<std::uint16_t>(index >> 3);
  }
  std::uint8_t& cell = mem[index];
  // Saturating increment: a wrapped counter would make a 256-iteration loop
  // look identical to a straight-line block.
  if (cell != 0xFF) ++cell;
  tls_prev_location = cur_location >> 1;
}

/// Arms tracing for this thread: hits go to `map` (kMapSize bytes).
///
/// All arming state is thread_local, so each worker thread of a parallel
/// campaign traces into its own CoverageMap with no synchronization: arming
/// on one thread never observes or disturbs another thread's trace. The map
/// pointer must stay valid until the matching end_trace() on the same
/// thread, and target code must run on the thread that armed it.
///
/// Dirty-word tracking uses a per-thread fallback list (reset by this call);
/// callers that want to *read* the dirty list pass their own via the
/// two-argument overload.
void begin_trace(std::uint8_t* map);

/// Arms tracing with a caller-owned dirty-word list (not reset: the caller
/// decides which words are already dirty). `hit` appends the index of every
/// map word whose first nonzero transition it causes; for the appended list
/// to be the complete set of nonzero words, every word NOT already listed in
/// `dirty` must be zero when tracing starts. Both `map` and `dirty` must
/// outlive the matching end_trace().
void begin_trace(std::uint8_t* map, DirtyWordList* dirty);

/// Disarms tracing and resets prev_location / the event counter.
void end_trace();

/// True while this thread has tracing armed (diagnostics; lets an executor
/// assert it is not re-entering another execution on the same thread).
[[nodiscard]] bool trace_armed();

/// Compile-time FNV-1a over file/line/counter — the macro's block id.
constexpr std::uint32_t fnv1a(const char* text, std::uint32_t seed) {
  std::uint32_t hash = 2166136261U ^ seed;
  for (const char* p = text; *p != '\0'; ++p) {
    hash ^= static_cast<std::uint8_t>(*p);
    hash *= 16777619U;
  }
  return hash;
}

}  // namespace icsfuzz::cov

/// Marks one basic block of target code. Each textual occurrence gets a
/// distinct compile-time id, mirroring the paper's <COMPILE_TIME_RANDOM>.
#define ICSFUZZ_COV_BLOCK()                                                  \
  ::icsfuzz::cov::hit(::icsfuzz::cov::fnv1a(                                 \
      __FILE__, static_cast<std::uint32_t>(__LINE__ * 977u + __COUNTER__)))

/// Marks a block with an explicit stable id (used by tests).
#define ICSFUZZ_COV_BLOCK_ID(id) ::icsfuzz::cov::hit((id))
