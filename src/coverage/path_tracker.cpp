#include "coverage/path_tracker.hpp"

namespace icsfuzz::cov {

bool PathTracker::record(std::uint64_t trace_hash) {
  return paths_.insert(trace_hash).second;
}

std::size_t PathTracker::merge(const PathTracker& other) {
  std::size_t added = 0;
  for (std::uint64_t hash : other.paths_) {
    added += paths_.insert(hash).second ? 1 : 0;
  }
  return added;
}

std::vector<std::uint64_t> PathTracker::snapshot() const {
  return std::vector<std::uint64_t>(paths_.begin(), paths_.end());
}

}  // namespace icsfuzz::cov
