#include "coverage/path_tracker.hpp"

namespace icsfuzz::cov {

namespace {
/// First allocation on first insert; small enough to be free, large enough
/// that short campaigns never rehash.
constexpr std::size_t kInitialSlots = 1024;
}  // namespace

std::size_t PathTracker::probe(std::uint64_t trace_hash) const {
  // Trace hashes are splitmix-finalized (dense::finish_hash), so the low
  // bits are already uniform — the raw key indexes the table directly.
  const std::size_t mask = slots_.size() - 1;
  std::size_t slot = static_cast<std::size_t>(trace_hash) & mask;
  while (slots_[slot] != 0 && slots_[slot] != trace_hash) {
    slot = (slot + 1) & mask;
  }
  return slot;
}

bool PathTracker::record(std::uint64_t trace_hash) {
  if (trace_hash == 0) {
    const bool fresh = !has_zero_;
    has_zero_ = true;
    return fresh;
  }
  if (slots_.empty()) slots_.assign(kInitialSlots, 0);
  const std::size_t slot = probe(trace_hash);
  if (slots_[slot] == trace_hash) return false;
  slots_[slot] = trace_hash;
  ++filled_;
  if (filled_ * 2 >= slots_.size()) grow();
  return true;
}

bool PathTracker::contains(std::uint64_t trace_hash) const {
  if (trace_hash == 0) return has_zero_;
  if (slots_.empty()) return false;
  return slots_[probe(trace_hash)] == trace_hash;
}

void PathTracker::grow() {
  const std::vector<std::uint64_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, 0);
  for (const std::uint64_t key : old) {
    if (key != 0) slots_[probe(key)] = key;
  }
}

std::size_t PathTracker::merge(const PathTracker& other) {
  std::size_t added = 0;
  if (other.has_zero_ && !has_zero_) {
    has_zero_ = true;
    ++added;
  }
  for (const std::uint64_t key : other.slots_) {
    if (key != 0) added += record(key) ? 1 : 0;
  }
  return added;
}

std::vector<std::uint64_t> PathTracker::snapshot() const {
  std::vector<std::uint64_t> paths;
  paths.reserve(path_count());
  if (has_zero_) paths.push_back(0);
  for (const std::uint64_t key : slots_) {
    if (key != 0) paths.push_back(key);
  }
  return paths;
}

void PathTracker::clear() {
  slots_.clear();
  filled_ = 0;
  has_zero_ = false;
}

}  // namespace icsfuzz::cov
