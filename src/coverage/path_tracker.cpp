#include "coverage/path_tracker.hpp"

namespace icsfuzz::cov {

bool PathTracker::record(std::uint64_t trace_hash) {
  return paths_.insert(trace_hash).second;
}

}  // namespace icsfuzz::cov
