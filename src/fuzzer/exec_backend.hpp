// ExecBackend — the single seam between the fuzzing engine and *how* a
// packet gets executed.
//
// The engine (Executor, Fuzzer, ParallelCampaign, icsfuzz-distill) is
// written against this interface only; which process runs the target is a
// configuration choice, not a code path:
//
//   kInProcess   — the ProtocolTarget runs in this process under the
//                  thread-local trace arming (fastest; the default).
//   kForkPerExec — packets cross into a fork-server target; every
//                  execution is one fork() inside the server (protocol v1
//                  semantics — crash isolation for real binaries).
//   kPersistent  — fork-server target with ICSFUZZ_LOOP-style persistent
//                  children: K executions per fork, packets through shm
//                  test-case slots, SIGSTOP/SIGCONT between iterations.
//                  An old (v1) server degrades this to fork-per-exec at
//                  handshake time; nothing else changes.
//
// Contract of execute(): fill the observable fields of `result` (events,
// faults, response, truncation flags) and run the map's trace
// begin/finalize cycle, returning the TraceSummary. The Executor that owns
// the map layers the campaign-lifetime semantics on top (hang budget,
// path recording, new_coverage/new_path flags) — identically across
// backends, which is what the in-process/out-of-process differential
// oracle (test_exec_oop.cpp) leans on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coverage/coverage_map.hpp"
#include "exec_oop/oop_executor.hpp"
#include "protocols/protocol_target.hpp"
#include "sanitizer/fault.hpp"
#include "session/session_types.hpp"
#include "supervise/resource_jail.hpp"
#include "telemetry/telemetry.hpp"

namespace icsfuzz::fuzz {

struct ExecResult {
  /// The trace contained a bucketed edge never seen before in this
  /// campaign — the seed is "valuable" in the paper's sense.
  bool new_coverage = false;
  /// The whole-trace hash was never seen before — a new path.
  bool new_path = false;
  std::uint64_t trace_hash = 0;
  std::size_t trace_edges = 0;
  /// Instrumentation events consumed (deterministic time proxy).
  std::uint64_t events = 0;
  /// Faults raised during the execution (at most one real fault, possibly
  /// followed by a synthetic Hang entry).
  std::vector<san::FaultReport> faults;
  /// Response bytes the target produced (diagnostics; empty on fault).
  Bytes response;
  /// Out-of-process execution only: the response overflowed the shm aux
  /// block and `response` holds a clamped prefix (always false in-process
  /// — callers comparing the two modes must check it before trusting
  /// response equality).
  bool response_truncated = false;
  /// Session backends only: the hashed session-state chain, one entry per
  /// message (session/session_state.hpp). Empty for plain single-exchange
  /// executions.
  std::vector<std::uint32_t> session_states;
  /// Messages the session stream decomposed into (0 = not a session
  /// execution).
  std::uint32_t session_messages = 0;

  [[nodiscard]] bool crashed() const { return !faults.empty(); }
};

/// Which execution backend an Executor drives.
enum class BackendKind : std::uint8_t {
  kInProcess = 0,
  kForkPerExec,
  kPersistent,
  /// Session transport over a real loopback socket: packets are session
  /// streams driven message-by-message against an external
  /// `icsfuzz-shim-target --tcp` server (session/tcp_backend.hpp).
  /// Requires ExecBackendConfig::session.framing != kNone.
  kTcp,
};

std::string_view to_string(BackendKind kind);

struct ExecBackendConfig {
  BackendKind kind = BackendKind::kInProcess;
  /// Fork-server target command (argv; argv[0] resolved through PATH;
  /// typically {"icsfuzz-shim-target", "--project", <name>}). Required for
  /// the out-of-process kinds, ignored in-process.
  std::vector<std::string> target_cmd;
  /// Wall-clock deadline per out-of-process execution (a SIGKILLed hang;
  /// the deterministic hang_event_budget still applies on top, from the
  /// event count the child ships back). <= 0 disables the wall-clock
  /// deadline entirely — executions may then block indefinitely.
  int exec_timeout_ms = 1000;
  /// Deadline for the fork-server spawn handshake.
  int handshake_timeout_ms = 5000;
  /// kPersistent: executions per persistent child before it retires and
  /// the next request pays a fresh fork (the ICSFUZZ_LOOP budget K).
  std::uint32_t persistent_budget = 1024;
  /// Lost-server respawn/retry policy (out-of-process kinds only; the
  /// defaults reproduce the historical respawn-once behavior).
  oop::RetryPolicy retry;
  /// Resource jail applied inside every forked execution child
  /// (out-of-process kinds only; disabled by default).
  supervise::ResourceJail jail;
  /// Path to libicsfuzz-preload.so (out-of-process kinds and kTcp).
  /// Non-empty: the target is spawned under the instrumentation-injection
  /// runtime, so a stock binary that never linked icsfuzz becomes the
  /// fork-server (or TCP session) target — src/inject/inject_protocol.hpp
  /// documents the contract. Empty (default): the target must speak the
  /// protocol natively (the shim does).
  std::string preload;
  /// Session-layer options. framing != kNone turns kInProcess into the
  /// in-process *session* backend (split the packet into framed messages,
  /// execute them as one stateful session) and is mandatory for kTcp; the
  /// two are each other's differential oracle — identical per-message byte
  /// streams must yield identical coverage (tests/test_session.cpp).
  session::SessionOptions session;
};

class ExecBackend {
 public:
  virtual ~ExecBackend() = default;

  [[nodiscard]] virtual BackendKind kind() const = 0;

  /// Executes one packet: fills result.events/.faults/.response/
  /// .response_truncated (reusing vector capacity) and runs one trace
  /// cycle on `map`, returning its summary. Everything campaign-lifetime
  /// (hang budget, path set, new_* flags) is the caller's job.
  virtual cov::TraceSummary execute(ProtocolTarget& target, ByteSpan packet,
                                    cov::CoverageMap& map,
                                    ExecResult& result) = 0;

  /// Batch execution for replay-shaped workloads (bench, distill,
  /// trajectory replay): delivers one (index, summary, result) triple per
  /// packet, strictly in order, through `each`; `scratch` is reused for
  /// every delivery. The default implementation loops execute(); the
  /// persistent backend overrides it to pipeline requests across the shm
  /// slots.
  virtual void execute_batch(
      ProtocolTarget& target, const std::vector<Bytes>& packets,
      cov::CoverageMap& map, ExecResult& scratch,
      const std::function<void(std::size_t, const cov::TraceSummary&,
                               ExecResult&)>& each);

  /// The fork-server transport, when this backend has one (null
  /// in-process). Fault-injection tests and the OOP bench read restart /
  /// recycle counts and transport errors through this.
  [[nodiscard]] virtual const oop::OutOfProcessExecutor* oop() const {
    return nullptr;
  }

  /// The previous execution's per-message byte traffic, when this is a
  /// session backend running with SessionOptions::record_traffic (null
  /// otherwise). The differential-oracle tests compare the two session
  /// arms' traffic byte for byte through this.
  [[nodiscard]] virtual const session::SessionTraffic* traffic() const {
    return nullptr;
  }
};

/// Builds the backend `config` describes. `dense_reference` routes the
/// trace analysis through the retained dense full-map passes (tests /
/// benches); `telemetry` receives the out-of-process restart / retry /
/// hang / recycle observables (in-process backends never touch it).
std::unique_ptr<ExecBackend> make_exec_backend(const ExecBackendConfig& config,
                                               bool dense_reference,
                                               telem::Sink telemetry);

}  // namespace icsfuzz::fuzz
