#include "fuzzer/corpus.hpp"

#include <algorithm>

namespace icsfuzz::fuzz {
namespace {

std::uint64_t bytes_hash(const Bytes& data) { return content_hash(data); }

}  // namespace

bool PuzzleCorpus::add_to(std::unordered_map<std::uint64_t, Bucket>& tier,
                          std::uint64_t key, const Bytes& puzzle, Rng& rng) {
  Bucket& bucket = tier[key];
  const std::uint64_t hash = bytes_hash(puzzle);
  if (!bucket.hashes.insert(hash).second) return false;  // duplicate
  ++revision_;
  if (bucket.entries.size() < config_.per_rule_cap) {
    bucket.entries.push_back(puzzle);
    return true;
  }
  // Random replacement keeps the bucket fresh without unbounded growth.
  const std::size_t victim = rng.index(bucket.entries.size());
  bucket.hashes.erase(bytes_hash(bucket.entries[victim]));
  bucket.entries[victim] = puzzle;
  return true;
}

bool PuzzleCorpus::add(const model::Chunk& rule, Bytes puzzle, Rng& rng) {
  const bool exact_added = add_to(exact_, rule.rule_key(), puzzle, rng);
  const bool shape_added = add_to(shape_, rule.shape_key(), puzzle, rng);
  return exact_added || shape_added;
}

std::size_t PuzzleCorpus::merge_from(const PuzzleCorpus& other, Rng& rng) {
  if (&other == this) return 0;
  std::size_t added = 0;
  for (const auto& [key, bucket] : other.exact_) {
    for (const Bytes& puzzle : bucket.entries) {
      added += add_to(exact_, key, puzzle, rng) ? 1 : 0;
    }
  }
  for (const auto& [key, bucket] : other.shape_) {
    for (const Bytes& puzzle : bucket.entries) {
      add_to(shape_, key, puzzle, rng);
    }
  }
  return added;
}

const std::vector<Bytes>* PuzzleCorpus::exact_candidates(
    const model::Chunk& rule) const {
  auto it = exact_.find(rule.rule_key());
  if (it == exact_.end() || it->second.entries.empty()) return nullptr;
  return &it->second.entries;
}

const std::vector<Bytes>* PuzzleCorpus::similar_candidates(
    const model::Chunk& rule) const {
  auto it = shape_.find(rule.shape_key());
  if (it == shape_.end() || it->second.entries.empty()) return nullptr;
  return &it->second.entries;
}

std::size_t PuzzleCorpus::size() const {
  std::size_t total = 0;
  for (const auto& [key, bucket] : exact_) total += bucket.entries.size();
  return total;
}

void PuzzleCorpus::clear() {
  exact_.clear();
  shape_.clear();
  ++revision_;
}

namespace {

// Templated so the helpers never name the private PuzzleCorpus::Bucket type.
template <typename Tier>
std::vector<CorpusSnapshot::BucketImage> image_tier(const Tier& tier) {
  std::vector<CorpusSnapshot::BucketImage> images;
  images.reserve(tier.size());
  for (const auto& [key, bucket] : tier) {
    images.push_back({key, bucket.entries});
  }
  std::sort(images.begin(), images.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  return images;
}

template <typename Tier>
void restore_tier(Tier& tier,
                  const std::vector<CorpusSnapshot::BucketImage>& images) {
  tier.clear();
  for (const CorpusSnapshot::BucketImage& image : images) {
    auto& bucket = tier[image.key];
    bucket.entries = image.entries;
    for (const Bytes& entry : bucket.entries) {
      bucket.hashes.insert(bytes_hash(entry));
    }
  }
}

}  // namespace

CorpusSnapshot PuzzleCorpus::snapshot() const {
  CorpusSnapshot image;
  image.exact = image_tier(exact_);
  image.shape = image_tier(shape_);
  image.revision = revision_;
  return image;
}

void PuzzleCorpus::restore(const CorpusSnapshot& image) {
  restore_tier(exact_, image.exact);
  restore_tier(shape_, image.shape);
  revision_ = image.revision;
}

}  // namespace icsfuzz::fuzz
