// ModelInstantiator — Peach's inherent generation strategy (Algorithm 1 of
// the paper): walk the data model tree, generate every leaf through the
// per-type Mutators, pick Choice alternatives at random, then re-establish
// relations and fixups. Used verbatim by the baseline engine and as the
// no-donor fallback of the semantic-aware strategy.
#pragma once

#include "model/data_model.hpp"
#include "model/instantiation.hpp"
#include "mutation/mutator.hpp"
#include "util/rng.hpp"

namespace icsfuzz::fuzz {

class ModelInstantiator {
 public:
  explicit ModelInstantiator(mutation::MutatorConfig config = {})
      : config_(config), mutators_(config) {}

  /// Generates one instantiation tree from `model` (constraints applied).
  /// Per MutatorConfig::sequential_mode_pct, either Peach's sequential
  /// profile (defaults + 1-2 aggressively mutated fields) or independent
  /// regeneration of every field.
  model::InsTree instantiate(const model::DataModel& model, Rng& rng) const;

  /// Convenience: instantiate and serialize.
  Bytes generate(const model::DataModel& model, Rng& rng) const;

  /// Buffer-reusing variant of generate(): serializes into `out` (cleared
  /// first, capacity retained). Identical RNG draws.
  void generate_into(const model::DataModel& model, Rng& rng,
                     Bytes& out) const;

  [[nodiscard]] const mutation::MutatorSuite& mutators() const {
    return mutators_;
  }

  /// Collects the *free* leaves of an instantiation tree (non-token, no
  /// relation/fixup): the fields sequential mutation may perturb. Exposed
  /// for the semantic generator and tests.
  static std::vector<model::InsNode*> free_leaves(model::InsNode& root);

  /// Builds the all-defaults tree (random Choice alternatives, constraints
  /// NOT yet applied) — the base of both sequential profiles.
  model::InsNode instantiate_defaults(const model::DataModel& model,
                                      Rng& rng) const {
    return build_defaults(model.root(), rng);
  }

 private:
  model::InsNode build(const model::Chunk& chunk, Rng& rng) const;
  model::InsNode build_defaults(const model::Chunk& chunk, Rng& rng) const;

  mutation::MutatorConfig config_;
  mutation::MutatorSuite mutators_;
};

}  // namespace icsfuzz::fuzz
