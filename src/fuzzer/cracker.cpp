#include "fuzzer/cracker.hpp"

namespace icsfuzz::fuzz {

void FileCracker::collect(const model::InsNode& node, PuzzleCorpus& corpus,
                          Rng& rng, CrackStats& stats) const {
  if (node.rule == nullptr) return;
  ++stats.puzzles_seen;
  // DFS(TreeNode): the puzzle of a leaf is its content; the puzzle of an
  // internal node is the ordered concatenation of its children's puzzles —
  // which is exactly this sub-tree's serialization.
  Bytes puzzle = node.serialize();
  if (!puzzle.empty() && corpus.add(*node.rule, std::move(puzzle), rng)) {
    ++stats.puzzles_added;
  }
  for (const model::InsNode& child : node.children) {
    collect(child, corpus, rng, stats);
  }
}

CrackStats FileCracker::crack_one(const model::DataModel& model, ByteSpan seed,
                                  PuzzleCorpus& corpus, Rng& rng) const {
  CrackStats stats;
  auto tree = model::parse_packet(model, seed, options_);
  if (!tree) return stats;  // LEGAL(InsTree) failed
  stats.models_parsed = 1;
  collect(tree->root, corpus, rng, stats);
  return stats;
}

CrackStats FileCracker::crack(const model::DataModelSet& models, ByteSpan seed,
                              PuzzleCorpus& corpus, Rng& rng) const {
  CrackStats total;
  for (const model::DataModel& model : models.models()) {
    CrackStats one = crack_one(model, seed, corpus, rng);
    total.models_parsed += one.models_parsed;
    total.puzzles_added += one.puzzles_added;
    total.puzzles_seen += one.puzzles_seen;
  }
  return total;
}

}  // namespace icsfuzz::fuzz
