// Executor — runs one generated packet against the instrumented target and
// reports the observables the paper's feedback loop consumes: edge
// coverage novelty ("valuable seed" detection, §IV-B), the execution path
// hash (the path-coverage metric of §V), and soft-sanitizer faults
// (crash/hang detection).
//
// *How* the packet executes is delegated to an ExecBackend
// (fuzzer/exec_backend.hpp): in-process, fork-per-exec, or persistent-mode
// out-of-process — one seam, selected by ExecutorConfig::backend. The
// Executor owns everything campaign-lifetime regardless of backend: the
// accumulated coverage map, the path set, the deterministic hang budget.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "coverage/coverage_map.hpp"
#include "coverage/path_tracker.hpp"
#include "fuzzer/exec_backend.hpp"
#include "protocols/protocol_target.hpp"
#include "sanitizer/fault.hpp"
#include "telemetry/telemetry.hpp"

namespace icsfuzz::fuzz {

struct ExecutorConfig {
  /// Executions whose instrumentation-event count exceeds this budget are
  /// flagged as hangs (the deterministic analogue of Peach's timeout).
  std::uint64_t hang_event_budget = 200000;
  /// Reference mode for tests and benches: route all trace analysis through
  /// the retained dense full-map passes (coverage/dense_ref.hpp) instead of
  /// the sparse dirty-word path. Results are bit-identical — asserted by the
  /// trajectory-preservation suite — but every execution pays the
  /// pre-overhaul ~6 whole-map sweeps again.
  bool dense_reference = false;
  /// Which coverage/simd.hpp kernel this executor's map dispatches to.
  /// kAuto picks the best the build + CPU support; kScalar force-selects the
  /// portable reference loop (the equivalence suite runs campaigns under
  /// both arms so CI exercises the dispatch even on a single ISA).
  cov::simd::Kernel coverage_kernel = cov::simd::Kernel::kAuto;
  /// Execution backend selection: kInProcess (default) runs the
  /// ProtocolTarget passed to run() on this thread; the out-of-process
  /// kinds run `backend.target_cmd` under the fork server and the target
  /// argument is only a placeholder. Coverage then arrives through the
  /// shared-memory segment and is adopted into the same sparse analysis
  /// (CoverageMap::adopt_external), so results are bit-identical to
  /// in-process execution of the same stacks.
  ExecBackendConfig backend;
  /// Telemetry sink for executor-level observables: out-of-process
  /// restart/retry/hang/server-lost/recycle counters and the journal
  /// events that record each kill's reason (hang deadline vs lost server).
  /// Disabled by default — the Fuzzer binds its own sink in when it builds
  /// its executor, while replay/distill executors stay quiet so
  /// distillation never pollutes campaign metrics.
  telem::Sink telemetry;
};

class Executor {
 public:
  explicit Executor(ExecutorConfig config = {});
  ~Executor();
  Executor(Executor&&) noexcept;
  Executor& operator=(Executor&&) noexcept;

  /// Resets the target, arms coverage + sanitizer, runs one packet and
  /// classifies the outcome. Updates the campaign's accumulated coverage
  /// and path set. The returned reference points at per-executor scratch
  /// refilled every run (vector capacities reused — the steady state
  /// allocates nothing), valid until the next run/run_into/run_batch call.
  const ExecResult& run(ProtocolTarget& target, ByteSpan packet);

  /// Caller-owned-buffer variant of run(): overwrites `result` in place,
  /// reusing the capacity of its faults/response vectors, so a caller that
  /// passes the same ExecResult every iteration performs zero steady-state
  /// heap allocations (given an allocation-free target — see
  /// ProtocolTarget::process_into).
  void run_into(ProtocolTarget& target, ByteSpan packet, ExecResult& result);

  /// Runs a batch of packets, delivering each classified result in packet
  /// order (the result reference is scratch, valid only inside the
  /// callback). The persistent backend pipelines the batch across its shm
  /// slots; other backends execute sequentially. Campaign state (paths,
  /// accumulated coverage, execution count) advances exactly as if run()
  /// had been called per packet — batch vs sequential trajectories are
  /// bit-identical (asserted by test_exec_oop.cpp).
  void run_batch(ProtocolTarget& target, const std::vector<Bytes>& packets,
                 const std::function<void(std::size_t, const ExecResult&)>&
                     on_result);

  [[nodiscard]] const cov::CoverageMap& coverage() const { return map_; }
  [[nodiscard]] const cov::PathTracker& paths() const { return paths_; }
  [[nodiscard]] std::size_t path_count() const { return paths_.path_count(); }
  [[nodiscard]] std::size_t edge_count() const { return map_.edges_covered(); }
  [[nodiscard]] std::uint64_t executions() const { return executions_; }

  /// Distinct hashed session states reached this campaign (0 unless a
  /// session backend is running — plain executions carry no states).
  [[nodiscard]] std::size_t session_state_count() const {
    return session_states_.size();
  }
  /// Sorted snapshot of the reached session-state set (stable across runs
  /// with the same trajectory; feeds checkpoint capture).
  [[nodiscard]] std::vector<std::uint64_t> session_states_snapshot() const;
  /// True if the hashed session state `state` was reached this campaign.
  [[nodiscard]] bool session_state_reached(std::uint32_t state) const {
    return session_states_.contains(state);
  }

  /// Forgets all campaign-lifetime state (fresh run).
  void reset_campaign();

  /// Checkpoint/resume: reinstates campaign-lifetime state captured from
  /// another executor — the execution count, the accumulated coverage map
  /// (kMapSize bytes from CoverageMap::snapshot_accumulated) and the path
  /// set. The restored executor continues the campaign exactly where the
  /// captured one stopped: novelty decisions (new_coverage / new_path)
  /// depend only on this state.
  void restore_campaign(std::uint64_t executions,
                        const std::uint8_t* accumulated,
                        const std::vector<std::uint64_t>& path_hashes,
                        const std::vector<std::uint64_t>& session_states = {});

  /// True when this executor runs packets out of process.
  [[nodiscard]] bool out_of_process() const {
    return config_.backend.kind != BackendKind::kInProcess;
  }

  /// The execution backend (never null after construction).
  [[nodiscard]] ExecBackend& backend() { return *backend_; }
  [[nodiscard]] const ExecBackend& backend() const { return *backend_; }

  /// The fork-server transport (out-of-process kinds only; null
  /// in-process). Fault-injection tests and the OOP bench read restart /
  /// recycle counts and transport errors through this.
  [[nodiscard]] const oop::OutOfProcessExecutor* oop_backend() const {
    return backend_->oop();
  }

 private:
  /// Shared tail of every backend (hang budget + summary fields + path
  /// recording) — one implementation, so the backends' trajectories cannot
  /// drift apart.
  void finish_result(const cov::TraceSummary& summary, ExecResult& result);

  ExecutorConfig config_;
  cov::CoverageMap map_;
  cov::PathTracker paths_;
  std::uint64_t executions_ = 0;
  /// Campaign-lifetime set of hashed session states (session backends
  /// only; finish_result folds each execution's chain in).
  std::unordered_set<std::uint32_t> session_states_;
  std::unique_ptr<ExecBackend> backend_;
  /// Scratch for the reference-returning run() (capacity reused).
  ExecResult scratch_;
};

}  // namespace icsfuzz::fuzz
