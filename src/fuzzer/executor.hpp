// Executor — runs one generated packet against the instrumented target and
// reports the observables the paper's feedback loop consumes: edge
// coverage novelty ("valuable seed" detection, §IV-B), the execution path
// hash (the path-coverage metric of §V), and soft-sanitizer faults
// (crash/hang detection).
#pragma once

#include <cstdint>
#include <vector>

#include "coverage/coverage_map.hpp"
#include "coverage/path_tracker.hpp"
#include "protocols/protocol_target.hpp"
#include "sanitizer/fault.hpp"

namespace icsfuzz::fuzz {

struct ExecResult {
  /// The trace contained a bucketed edge never seen before in this
  /// campaign — the seed is "valuable" in the paper's sense.
  bool new_coverage = false;
  /// The whole-trace hash was never seen before — a new path.
  bool new_path = false;
  std::uint64_t trace_hash = 0;
  std::size_t trace_edges = 0;
  /// Instrumentation events consumed (deterministic time proxy).
  std::uint64_t events = 0;
  /// Faults raised during the execution (at most one real fault, possibly
  /// followed by a synthetic Hang entry).
  std::vector<san::FaultReport> faults;
  /// Response bytes the target produced (diagnostics; empty on fault).
  Bytes response;

  [[nodiscard]] bool crashed() const { return !faults.empty(); }
};

struct ExecutorConfig {
  /// Executions whose instrumentation-event count exceeds this budget are
  /// flagged as hangs (the deterministic analogue of Peach's timeout).
  std::uint64_t hang_event_budget = 200000;
  /// Reference mode for tests and benches: route all trace analysis through
  /// the retained dense full-map passes (coverage/dense_ref.hpp) instead of
  /// the sparse dirty-word path. Results are bit-identical — asserted by the
  /// trajectory-preservation suite — but every execution pays the
  /// pre-overhaul ~6 whole-map sweeps again.
  bool dense_reference = false;
  /// Which coverage/simd.hpp kernel this executor's map dispatches to.
  /// kAuto picks the best the build + CPU support; kScalar force-selects the
  /// portable reference loop (the equivalence suite runs campaigns under
  /// both arms so CI exercises the dispatch even on a single ISA).
  cov::simd::Kernel coverage_kernel = cov::simd::Kernel::kAuto;
};

class Executor {
 public:
  explicit Executor(ExecutorConfig config = {}) : config_(config) {
    map_.use_kernel(config_.coverage_kernel);
  }

  /// Resets the target, arms coverage + sanitizer, runs one packet and
  /// classifies the outcome. Updates the campaign's accumulated coverage
  /// and path set.
  ExecResult run(ProtocolTarget& target, ByteSpan packet);

  /// Buffer-reusing variant of run(): overwrites `result` in place, reusing
  /// the capacity of its faults/response vectors, so a caller that passes
  /// the same ExecResult every iteration performs zero steady-state heap
  /// allocations (given an allocation-free target — see
  /// ProtocolTarget::process_into).
  void run_into(ProtocolTarget& target, ByteSpan packet, ExecResult& result);

  [[nodiscard]] const cov::CoverageMap& coverage() const { return map_; }
  [[nodiscard]] const cov::PathTracker& paths() const { return paths_; }
  [[nodiscard]] std::size_t path_count() const { return paths_.path_count(); }
  [[nodiscard]] std::size_t edge_count() const { return map_.edges_covered(); }
  [[nodiscard]] std::uint64_t executions() const { return executions_; }

  /// Forgets all campaign-lifetime state (fresh run).
  void reset_campaign();

 private:
  ExecutorConfig config_;
  cov::CoverageMap map_;
  cov::PathTracker paths_;
  std::uint64_t executions_ = 0;
};

}  // namespace icsfuzz::fuzz
