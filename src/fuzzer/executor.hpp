// Executor — runs one generated packet against the instrumented target and
// reports the observables the paper's feedback loop consumes: edge
// coverage novelty ("valuable seed" detection, §IV-B), the execution path
// hash (the path-coverage metric of §V), and soft-sanitizer faults
// (crash/hang detection).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "coverage/coverage_map.hpp"
#include "coverage/path_tracker.hpp"
#include "protocols/protocol_target.hpp"
#include "sanitizer/fault.hpp"
#include "telemetry/telemetry.hpp"

namespace icsfuzz::oop {
class OutOfProcessExecutor;
}  // namespace icsfuzz::oop

namespace icsfuzz::fuzz {

struct ExecResult {
  /// The trace contained a bucketed edge never seen before in this
  /// campaign — the seed is "valuable" in the paper's sense.
  bool new_coverage = false;
  /// The whole-trace hash was never seen before — a new path.
  bool new_path = false;
  std::uint64_t trace_hash = 0;
  std::size_t trace_edges = 0;
  /// Instrumentation events consumed (deterministic time proxy).
  std::uint64_t events = 0;
  /// Faults raised during the execution (at most one real fault, possibly
  /// followed by a synthetic Hang entry).
  std::vector<san::FaultReport> faults;
  /// Response bytes the target produced (diagnostics; empty on fault).
  Bytes response;
  /// Out-of-process execution only: the response overflowed the shm aux
  /// block and `response` holds a clamped prefix (always false in-process
  /// — callers comparing the two modes must check it before trusting
  /// response equality).
  bool response_truncated = false;

  [[nodiscard]] bool crashed() const { return !faults.empty(); }
};

struct ExecutorConfig {
  /// Executions whose instrumentation-event count exceeds this budget are
  /// flagged as hangs (the deterministic analogue of Peach's timeout).
  std::uint64_t hang_event_budget = 200000;
  /// Reference mode for tests and benches: route all trace analysis through
  /// the retained dense full-map passes (coverage/dense_ref.hpp) instead of
  /// the sparse dirty-word path. Results are bit-identical — asserted by the
  /// trajectory-preservation suite — but every execution pays the
  /// pre-overhaul ~6 whole-map sweeps again.
  bool dense_reference = false;
  /// Which coverage/simd.hpp kernel this executor's map dispatches to.
  /// kAuto picks the best the build + CPU support; kScalar force-selects the
  /// portable reference loop (the equivalence suite runs campaigns under
  /// both arms so CI exercises the dispatch even on a single ISA).
  cov::simd::Kernel coverage_kernel = cov::simd::Kernel::kAuto;
  /// Out-of-process execution: when non-empty, packets run against this
  /// fork-server target command (argv; typically
  /// {"icsfuzz-shim-target", "--project", <name>}) instead of the
  /// in-process ProtocolTarget passed to run() — the target argument is
  /// then only a placeholder. Coverage arrives through the shared-memory
  /// segment and is adopted into the same sparse analysis
  /// (CoverageMap::adopt_external), so results are bit-identical to
  /// in-process execution of the same stacks.
  std::vector<std::string> target_cmd;
  /// Wall-clock deadline per out-of-process execution (a SIGKILLed hang;
  /// the deterministic hang_event_budget still applies on top, from the
  /// event count the child ships back). <= 0 disables the wall-clock
  /// deadline entirely — executions may then block indefinitely.
  int oop_exec_timeout_ms = 1000;
  /// Deadline for the fork-server spawn handshake.
  int oop_handshake_timeout_ms = 5000;
  /// Telemetry sink for executor-level observables: out-of-process
  /// restart/retry/hang/server-lost counters and the journal events that
  /// record each kill's reason (hang deadline vs lost server). Disabled by
  /// default — the Fuzzer binds its own sink in when it builds its
  /// executor, while replay/distill executors stay quiet so distillation
  /// never pollutes campaign metrics.
  telem::Sink telemetry;
};

class Executor {
 public:
  explicit Executor(ExecutorConfig config = {});
  ~Executor();
  Executor(Executor&&) noexcept;
  Executor& operator=(Executor&&) noexcept;

  /// Resets the target, arms coverage + sanitizer, runs one packet and
  /// classifies the outcome. Updates the campaign's accumulated coverage
  /// and path set.
  ExecResult run(ProtocolTarget& target, ByteSpan packet);

  /// Buffer-reusing variant of run(): overwrites `result` in place, reusing
  /// the capacity of its faults/response vectors, so a caller that passes
  /// the same ExecResult every iteration performs zero steady-state heap
  /// allocations (given an allocation-free target — see
  /// ProtocolTarget::process_into).
  void run_into(ProtocolTarget& target, ByteSpan packet, ExecResult& result);

  [[nodiscard]] const cov::CoverageMap& coverage() const { return map_; }
  [[nodiscard]] const cov::PathTracker& paths() const { return paths_; }
  [[nodiscard]] std::size_t path_count() const { return paths_.path_count(); }
  [[nodiscard]] std::size_t edge_count() const { return map_.edges_covered(); }
  [[nodiscard]] std::uint64_t executions() const { return executions_; }

  /// Forgets all campaign-lifetime state (fresh run).
  void reset_campaign();

  /// True when this executor runs packets out of process (target_cmd set).
  [[nodiscard]] bool out_of_process() const {
    return !config_.target_cmd.empty();
  }

  /// The fork-server backend (out-of-process mode only; null otherwise or
  /// before the first execution). Fault-injection tests and the OOP bench
  /// read restart counts and transport errors through this.
  [[nodiscard]] const oop::OutOfProcessExecutor* oop_backend() const {
    return oop_.get();
  }

 private:
  void run_oop_into(ByteSpan packet, ExecResult& result);

  /// Shared tail of both execution modes (hang budget + summary fields +
  /// path recording).
  void finish_result(const cov::TraceSummary& summary, ExecResult& result);

  ExecutorConfig config_;
  cov::CoverageMap map_;
  cov::PathTracker paths_;
  std::uint64_t executions_ = 0;
  /// Lazily spawned fork-server backend (out-of-process mode only; owns
  /// the shm segment, the server process and the outcome scratch).
  std::unique_ptr<oop::OutOfProcessExecutor> oop_;
};

}  // namespace icsfuzz::fuzz
