#include "fuzzer/campaign.hpp"

#include <algorithm>

namespace icsfuzz::fuzz {

ArmResult run_arm(Strategy strategy, const TargetFactory& make_target,
                  const model::DataModelSet& models,
                  const CampaignConfig& config) {
  ArmResult arm;
  arm.strategy = strategy;
  double sum_paths = 0.0;
  double sum_edges = 0.0;
  double sum_crashes = 0.0;
  for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
    auto target = make_target();
    FuzzerConfig fuzzer_config = config.fuzzer;
    fuzzer_config.strategy = strategy;
    fuzzer_config.rng_seed = config.base_seed + rep;
    fuzzer_config.stats_interval = config.stats_interval;
    Fuzzer fuzzer(*target, models, fuzzer_config);
    fuzzer.run(config.iterations);

    arm.repetition_series.push_back(fuzzer.stats().checkpoints());
    sum_paths += static_cast<double>(fuzzer.path_count());
    sum_edges += static_cast<double>(fuzzer.executor().edge_count());
    sum_crashes += static_cast<double>(fuzzer.crashes().unique_count());
    for (const CrashRecord* record : fuzzer.crashes().records()) {
      arm.pooled_crashes.record(
          san::FaultReport{record->kind, record->site, record->detail},
          record->reproducer, record->first_execution);
    }
  }
  const double reps = static_cast<double>(config.repetitions);
  arm.mean_final_paths = sum_paths / reps;
  arm.mean_final_edges = sum_edges / reps;
  arm.mean_unique_crashes = sum_crashes / reps;
  arm.mean_series = average_series(arm.repetition_series);
  return arm;
}

CampaignResult run_campaign(
    const std::string& project, const TargetFactory& make_target,
    const model::DataModelSet& models, const CampaignConfig& config,
    const std::function<void(Strategy, std::size_t)>& on_progress) {
  CampaignResult result;
  result.project = project;
  if (on_progress) on_progress(Strategy::Peach, 0);
  result.peach = run_arm(Strategy::Peach, make_target, models, config);
  if (on_progress) on_progress(Strategy::PeachStar, 0);
  result.peach_star = run_arm(Strategy::PeachStar, make_target, models, config);
  return result;
}

std::uint64_t CampaignResult::executions_to_match_baseline() const {
  const double goal = peach.mean_final_paths;
  for (const Checkpoint& point : peach_star.mean_series) {
    if (static_cast<double>(point.paths) >= goal) return point.executions;
  }
  return 0;
}

double CampaignResult::speedup() const {
  const std::uint64_t to_match = executions_to_match_baseline();
  if (to_match == 0) return 1.0;  // never matched within budget
  const std::uint64_t budget =
      peach.mean_series.empty() ? to_match
                                : peach.mean_series.back().executions;
  return static_cast<double>(budget) / static_cast<double>(to_match);
}

double CampaignResult::path_increase_pct() const {
  if (peach.mean_final_paths <= 0.0) return 0.0;
  return (peach_star.mean_final_paths - peach.mean_final_paths) /
         peach.mean_final_paths * 100.0;
}

std::string series_csv(const CampaignResult& result) {
  std::string out = "executions,peach_paths,peachstar_paths\n";
  const auto& a = result.peach.mean_series;
  const auto& b = result.peach_star.mean_series;
  const std::size_t rows = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const std::uint64_t execs = i < a.size() ? a[i].executions
                                             : b[i].executions;
    out += std::to_string(execs) + ",";
    out += i < a.size() ? std::to_string(a[i].paths) : std::string("");
    out += ",";
    out += i < b.size() ? std::to_string(b[i].paths) : std::string("");
    out += "\n";
  }
  return out;
}

}  // namespace icsfuzz::fuzz
