#include "fuzzer/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

namespace icsfuzz::fuzz {
namespace {

/// Everything one repetition contributes to its arm's aggregate.
struct RepetitionOutcome {
  std::vector<Checkpoint> series;
  double final_paths = 0.0;
  double final_edges = 0.0;
  double final_crashes = 0.0;
  std::vector<CrashRecord> crash_records;
};

/// One deterministic repetition: fresh target, seed base_seed + rep.
RepetitionOutcome run_repetition(Strategy strategy, std::size_t rep,
                                 const TargetFactory& make_target,
                                 const model::DataModelSet& models,
                                 const CampaignConfig& config) {
  auto target = make_target();
  FuzzerConfig fuzzer_config = config.fuzzer;
  fuzzer_config.strategy = strategy;
  fuzzer_config.rng_seed = config.base_seed + rep;
  fuzzer_config.stats_interval = config.stats_interval;
  Fuzzer fuzzer(*target, models, fuzzer_config);
  fuzzer.run(config.iterations);

  RepetitionOutcome outcome;
  outcome.series = fuzzer.stats().checkpoints();
  outcome.final_paths = static_cast<double>(fuzzer.path_count());
  outcome.final_edges = static_cast<double>(fuzzer.executor().edge_count());
  outcome.final_crashes =
      static_cast<double>(fuzzer.crashes().unique_count());
  for (const CrashRecord* record : fuzzer.crashes().records()) {
    outcome.crash_records.push_back(*record);
  }
  return outcome;
}

/// Folds repetition outcomes (in repetition order) into an ArmResult —
/// shared by the sequential and the thread-pooled schedulers so both
/// produce identical aggregates.
ArmResult assemble_arm(Strategy strategy,
                       std::vector<RepetitionOutcome> outcomes) {
  ArmResult arm;
  arm.strategy = strategy;
  double sum_paths = 0.0;
  double sum_edges = 0.0;
  double sum_crashes = 0.0;
  for (RepetitionOutcome& outcome : outcomes) {
    arm.repetition_series.push_back(std::move(outcome.series));
    sum_paths += outcome.final_paths;
    sum_edges += outcome.final_edges;
    sum_crashes += outcome.final_crashes;
    for (const CrashRecord& record : outcome.crash_records) {
      arm.pooled_crashes.record(
          san::FaultReport{record.kind, record.site, record.detail},
          record.reproducer, record.first_execution);
    }
  }
  const double reps =
      outcomes.empty() ? 1.0 : static_cast<double>(outcomes.size());
  arm.mean_final_paths = sum_paths / reps;
  arm.mean_final_edges = sum_edges / reps;
  arm.mean_unique_crashes = sum_crashes / reps;
  arm.mean_series = average_series(arm.repetition_series);
  return arm;
}

}  // namespace

ArmResult run_arm(Strategy strategy, const TargetFactory& make_target,
                  const model::DataModelSet& models,
                  const CampaignConfig& config) {
  std::vector<RepetitionOutcome> outcomes;
  outcomes.reserve(config.repetitions);
  for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
    outcomes.push_back(
        run_repetition(strategy, rep, make_target, models, config));
  }
  return assemble_arm(strategy, std::move(outcomes));
}

CampaignResult run_campaign(
    const std::string& project, const TargetFactory& make_target,
    const model::DataModelSet& models, const CampaignConfig& config,
    const std::function<void(Strategy, std::size_t)>& on_progress) {
  CampaignResult result;
  result.project = project;
  if (on_progress) on_progress(Strategy::Peach, 0);
  result.peach = run_arm(Strategy::Peach, make_target, models, config);
  if (on_progress) on_progress(Strategy::PeachStar, 0);
  result.peach_star = run_arm(Strategy::PeachStar, make_target, models, config);
  return result;
}

CampaignResult run_campaign_parallel(
    const std::string& project, const TargetFactory& make_target,
    const model::DataModelSet& models, const CampaignConfig& config,
    std::size_t workers,
    const std::function<void(Strategy, std::size_t)>& on_progress) {
  const Strategy arms[] = {Strategy::Peach, Strategy::PeachStar};
  const std::size_t job_count = 2 * config.repetitions;
  if (workers <= 1 || job_count <= 1) {
    return run_campaign(project, make_target, models, config, on_progress);
  }

  // Every (arm, repetition) pair is one job; outcome slots are indexed by
  // job id so the assembly below sees repetition order regardless of which
  // thread finished when.
  std::vector<RepetitionOutcome> outcomes(job_count);
  std::atomic<std::size_t> next_job{0};
  std::mutex progress_mutex;

  auto pool_body = [&] {
    for (;;) {
      const std::size_t job = next_job.fetch_add(1);
      if (job >= job_count) return;
      const Strategy strategy = arms[job / config.repetitions];
      const std::size_t rep = job % config.repetitions;
      if (on_progress) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        on_progress(strategy, rep);
      }
      outcomes[job] =
          run_repetition(strategy, rep, make_target, models, config);
    }
  };

  {
    std::vector<std::thread> threads;
    const std::size_t pool = std::min(workers, job_count);
    threads.reserve(pool - 1);
    for (std::size_t t = 1; t < pool; ++t) threads.emplace_back(pool_body);
    pool_body();
    for (std::thread& thread : threads) thread.join();
  }

  CampaignResult result;
  result.project = project;
  auto begin = outcomes.begin();
  result.peach = assemble_arm(
      Strategy::Peach,
      std::vector<RepetitionOutcome>(
          std::make_move_iterator(begin),
          std::make_move_iterator(begin + config.repetitions)));
  result.peach_star = assemble_arm(
      Strategy::PeachStar,
      std::vector<RepetitionOutcome>(
          std::make_move_iterator(begin + config.repetitions),
          std::make_move_iterator(outcomes.end())));
  return result;
}

std::uint64_t CampaignResult::executions_to_match_baseline() const {
  const double goal = peach.mean_final_paths;
  for (const Checkpoint& point : peach_star.mean_series) {
    if (static_cast<double>(point.paths) >= goal) return point.executions;
  }
  return 0;
}

double CampaignResult::speedup() const {
  const std::uint64_t to_match = executions_to_match_baseline();
  if (to_match == 0) return 1.0;  // never matched within budget
  const std::uint64_t budget =
      peach.mean_series.empty() ? to_match
                                : peach.mean_series.back().executions;
  return static_cast<double>(budget) / static_cast<double>(to_match);
}

double CampaignResult::path_increase_pct() const {
  if (peach.mean_final_paths <= 0.0) return 0.0;
  return (peach_star.mean_final_paths - peach.mean_final_paths) /
         peach.mean_final_paths * 100.0;
}

std::string series_csv(const CampaignResult& result) {
  std::string out = "executions,peach_paths,peachstar_paths\n";
  const auto& a = result.peach.mean_series;
  const auto& b = result.peach_star.mean_series;
  const std::size_t rows = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const std::uint64_t execs = i < a.size() ? a[i].executions
                                             : b[i].executions;
    out += std::to_string(execs) + ",";
    out += i < a.size() ? std::to_string(a[i].paths) : std::string("");
    out += ",";
    out += i < b.size() ? std::to_string(b[i].paths) : std::string("");
    out += "\n";
  }
  return out;
}

}  // namespace icsfuzz::fuzz
