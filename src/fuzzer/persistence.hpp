// Persistence — writes a fuzzing session's artefacts to a directory the
// way released fuzzers do: one reproducer file per unique crash, one file
// per retained valuable seed, and machine-readable CSV summaries. A saved
// session can be reloaded to replay crashes (triage) or to warm-start a
// future campaign's corpus via the cracker.
//
// Layout under the session root:
//   crashes/<kind>-<site>.bin     raw reproducer packet
//   crashes/<kind>-<site>.txt     fault detail + metadata
//   seeds/seed-<index>.bin        retained valuable seeds
//   stats.csv                     the campaign's checkpoint series
//   summary.txt                   human-readable wrap-up
//   telemetry.json                final metrics snapshot (telemetry on)
//   journal.jsonl                 telemetry event journal (telemetry on)
//
// Distilled corpora (src/distill/) persist as their own directory of
// seed-<index>.bin files plus a MANIFEST.txt recording the ReplayReport
// the corpus must reproduce when reloaded — the load side hands that
// expectation back so callers can verify replay coverage is bit-identical.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "distill/replay.hpp"
#include "fuzzer/fuzzer.hpp"
#include "telemetry/export.hpp"

namespace icsfuzz::fuzz {

/// Writes all artefacts of `fuzzer` under `directory` (created if absent).
/// Returns an error message on I/O failure, nullopt on success.
std::optional<std::string> save_session(const Fuzzer& fuzzer,
                                        const std::string& directory);

/// A reloaded crash artefact.
struct LoadedCrash {
  std::string file_stem;  // "<kind>-<site>"
  Bytes reproducer;
};

/// Loads every crash reproducer saved under `directory`.
std::vector<LoadedCrash> load_crashes(const std::string& directory);

/// Loads every retained seed saved under `directory`.
std::vector<Bytes> load_seeds(const std::string& directory);

/// Loads the telemetry event journal saved under `directory` (empty when
/// the session was saved with telemetry disabled).
std::vector<telem::Event> load_journal(const std::string& directory);

/// Loads the final metrics snapshot saved under `directory` (nullopt when
/// absent or malformed).
std::optional<telem::Snapshot> load_telemetry_snapshot(
    const std::string& directory);

/// Renders a human-readable campaign summary (used by summary.txt and the
/// examples).
std::string render_summary(const Fuzzer& fuzzer);

/// Writes a distilled corpus under `directory`: one seed-<index>.bin per
/// seed plus MANIFEST.txt with `report`'s coverage expectation. Returns an
/// error message on I/O failure, nullopt on success.
std::optional<std::string> save_distilled_corpus(
    const std::string& directory, const std::vector<Bytes>& seeds,
    const distill::ReplayReport& report);

/// A reloaded distilled corpus.
struct LoadedCorpus {
  std::vector<Bytes> seeds;
  /// The coverage the corpus claimed at save time (MANIFEST.txt); compare
  /// with a fresh replay via ReplayReport::same_coverage.
  distill::ReplayReport expected;
  bool has_manifest = false;
};

/// Loads a distilled corpus directory (empty seeds when missing).
LoadedCorpus load_distilled_corpus(const std::string& directory);

}  // namespace icsfuzz::fuzz
