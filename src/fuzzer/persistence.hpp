// Persistence — writes a fuzzing session's artefacts to a directory the
// way released fuzzers do: one reproducer file per unique crash, one file
// per retained valuable seed, and machine-readable CSV summaries. A saved
// session can be reloaded to replay crashes (triage) or to warm-start a
// future campaign's corpus via the cracker.
//
// Layout under the session root:
//   crashes/<kind>-<site>.bin     raw reproducer packet
//   crashes/<kind>-<site>.txt     fault detail + metadata
//   seeds/seed-<index>.bin        retained valuable seeds
//   stats.csv                     the campaign's checkpoint series
//   summary.txt                   human-readable wrap-up
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fuzzer/fuzzer.hpp"

namespace icsfuzz::fuzz {

/// Writes all artefacts of `fuzzer` under `directory` (created if absent).
/// Returns an error message on I/O failure, nullopt on success.
std::optional<std::string> save_session(const Fuzzer& fuzzer,
                                        const std::string& directory);

/// A reloaded crash artefact.
struct LoadedCrash {
  std::string file_stem;  // "<kind>-<site>"
  Bytes reproducer;
};

/// Loads every crash reproducer saved under `directory`.
std::vector<LoadedCrash> load_crashes(const std::string& directory);

/// Loads every retained seed saved under `directory`.
std::vector<Bytes> load_seeds(const std::string& directory);

/// Renders a human-readable campaign summary (used by summary.txt and the
/// examples).
std::string render_summary(const Fuzzer& fuzzer);

}  // namespace icsfuzz::fuzz
