// Persistence — writes a fuzzing session's artefacts to a directory the
// way released fuzzers do: one reproducer file per unique crash, one file
// per retained valuable seed, and machine-readable CSV summaries. A saved
// session can be reloaded to replay crashes (triage) or to warm-start a
// future campaign's corpus via the cracker.
//
// Layout under the session root:
//   crashes/<kind>-<site>.bin     raw reproducer packet
//   crashes/<kind>-<site>.txt     fault detail + metadata
//   seeds/seed-<index>.bin        retained valuable seeds
//   stats.csv                     the campaign's checkpoint series
//   summary.txt                   human-readable wrap-up
//   telemetry.json                final metrics snapshot (telemetry on)
//   journal.jsonl                 telemetry event journal (telemetry on)
//
// Distilled corpora (src/distill/) persist as their own directory of
// seed-<index>.bin files plus a MANIFEST.txt recording the ReplayReport
// the corpus must reproduce when reloaded — the load side hands that
// expectation back so callers can verify replay coverage is bit-identical.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "distill/replay.hpp"
#include "fuzzer/fuzzer.hpp"
#include "telemetry/export.hpp"

namespace icsfuzz::fuzz {

/// Writes all artefacts of `fuzzer` under `directory` (created if absent).
/// Returns an error message on I/O failure, nullopt on success.
std::optional<std::string> save_session(const Fuzzer& fuzzer,
                                        const std::string& directory);

/// A reloaded crash artefact.
struct LoadedCrash {
  std::string file_stem;  // "<kind>-<site>"
  Bytes reproducer;
};

/// Loads every crash reproducer saved under `directory`.
std::vector<LoadedCrash> load_crashes(const std::string& directory);

/// Serializes a crash db as JSONL, one record per line in discovery order:
///   {"kind":"segv","site":"0012abcd","trace_hash":"0123456789abcdef",
///    "hits":3,"first_execution":42,"detail":"...","reproducer":"<hex>"}
/// The full record round-trips — unlike the crashes/<stem>.bin artefacts,
/// hits / first_execution / trace_hash survive.
std::string crash_db_to_jsonl(const CrashDb& db);

/// Parses a crash-db JSONL document into `db` with CrashDb::restore
/// semantics: hits, first_execution and trace_hash are reinstated verbatim
/// (so dedup continues across a resume instead of double-counting), and
/// discovery order is preserved. Blank and malformed lines are skipped.
/// Returns the number of records restored.
std::size_t crash_db_from_jsonl(std::string_view text, CrashDb& db);

/// File round-trip of the JSONL form. save_session writes the same
/// document as crashes.jsonl under the session root.
std::optional<std::string> save_crash_db(const CrashDb& db,
                                         const std::string& path);
std::size_t load_crash_db(const std::string& path, CrashDb& db);

/// Loads every retained seed saved under `directory`.
std::vector<Bytes> load_seeds(const std::string& directory);

/// Loads the telemetry event journal saved under `directory` (empty when
/// the session was saved with telemetry disabled).
std::vector<telem::Event> load_journal(const std::string& directory);

/// Loads the final metrics snapshot saved under `directory` (nullopt when
/// absent or malformed).
std::optional<telem::Snapshot> load_telemetry_snapshot(
    const std::string& directory);

/// Renders a human-readable campaign summary (used by summary.txt and the
/// examples).
std::string render_summary(const Fuzzer& fuzzer);

/// Writes a distilled corpus under `directory`: one seed-<index>.bin per
/// seed plus MANIFEST.txt with `report`'s coverage expectation. Returns an
/// error message on I/O failure, nullopt on success.
std::optional<std::string> save_distilled_corpus(
    const std::string& directory, const std::vector<Bytes>& seeds,
    const distill::ReplayReport& report);

/// A reloaded distilled corpus.
struct LoadedCorpus {
  std::vector<Bytes> seeds;
  /// The coverage the corpus claimed at save time (MANIFEST.txt); compare
  /// with a fresh replay via ReplayReport::same_coverage.
  distill::ReplayReport expected;
  bool has_manifest = false;
};

/// Loads a distilled corpus directory (empty seeds when missing).
LoadedCorpus load_distilled_corpus(const std::string& directory);

}  // namespace icsfuzz::fuzz
