#include "fuzzer/executor.hpp"

#include <cassert>

namespace icsfuzz::fuzz {

ExecResult Executor::run(ProtocolTarget& target, ByteSpan packet) {
  ExecResult result;
  run_into(target, packet, result);
  return result;
}

void Executor::run_into(ProtocolTarget& target, ByteSpan packet,
                        ExecResult& result) {
  ++executions_;

  // Executions must not nest on a thread: the second begin_execution would
  // silently steal the first one's thread-local trace arming.
  assert(!cov::trace_armed());

  target.reset();
  san::FaultSink::arm();
  if (config_.dense_reference) {
    map_.begin_execution_dense();
  } else {
    map_.begin_execution();
  }

  target.process_into(packet, result.response);

  // The fused sparse pass (or its dense reference twin) replaces the old
  // end_execution -> trace_hash -> trace_edge_count -> accumulate sequence:
  // one sweep of the dirty words instead of four full-map passes.
  const cov::TraceSummary summary = config_.dense_reference
                                        ? map_.finalize_execution_dense()
                                        : map_.finalize_execution();
  result.events = cov::tls_event_count;
  san::FaultSink::disarm_into(result.faults);

  if (result.faults.empty() && result.events > config_.hang_event_budget) {
    result.faults.push_back(san::FaultReport{
        san::FaultKind::Hang, san::site_id("executor-hang-budget"),
        "execution exceeded " + std::to_string(config_.hang_event_budget) +
            " instrumentation events"});
  }

  result.trace_hash = summary.trace_hash;
  result.trace_edges = summary.trace_edges;
  result.new_coverage = summary.new_coverage;
  result.new_path = paths_.record(summary.trace_hash);
}

void Executor::reset_campaign() {
  map_.reset_accumulated();
  paths_.clear();
  executions_ = 0;
}

}  // namespace icsfuzz::fuzz
