#include "fuzzer/executor.hpp"

#include <cassert>
#include <cstdio>

#include "exec_oop/oop_executor.hpp"

namespace icsfuzz::fuzz {

Executor::Executor(ExecutorConfig config) : config_(std::move(config)) {
  map_.use_kernel(config_.coverage_kernel);
}

Executor::~Executor() = default;
Executor::Executor(Executor&&) noexcept = default;
Executor& Executor::operator=(Executor&&) noexcept = default;

ExecResult Executor::run(ProtocolTarget& target, ByteSpan packet) {
  ExecResult result;
  run_into(target, packet, result);
  return result;
}

void Executor::run_into(ProtocolTarget& target, ByteSpan packet,
                        ExecResult& result) {
  if (out_of_process()) {
    run_oop_into(packet, result);
    return;
  }
  ++executions_;

  // Executions must not nest on a thread: the second begin_execution would
  // silently steal the first one's thread-local trace arming.
  assert(!cov::trace_armed());

  target.reset();
  san::FaultSink::arm();
  if (config_.dense_reference) {
    map_.begin_execution_dense();
  } else {
    map_.begin_execution();
  }

  target.process_into(packet, result.response);
  result.response_truncated = false;  // reused-result hygiene

  // The fused sparse pass (or its dense reference twin) replaces the old
  // end_execution -> trace_hash -> trace_edge_count -> accumulate sequence:
  // one sweep of the dirty words instead of four full-map passes.
  const cov::TraceSummary summary = config_.dense_reference
                                        ? map_.finalize_execution_dense()
                                        : map_.finalize_execution();
  result.events = cov::tls_event_count;
  san::FaultSink::disarm_into(result.faults);

  finish_result(summary, result);
}

/// Shared tail of both execution modes: the deterministic hang budget and
/// the summary/new-path assignments. One implementation, so the two arms
/// of the in-process/out-of-process differential oracle cannot drift.
void Executor::finish_result(const cov::TraceSummary& summary,
                             ExecResult& result) {
  if (result.faults.empty() && result.events > config_.hang_event_budget) {
    result.faults.push_back(san::FaultReport{
        san::FaultKind::Hang, san::site_id("executor-hang-budget"),
        "execution exceeded " + std::to_string(config_.hang_event_budget) +
            " instrumentation events"});
  }
  result.trace_hash = summary.trace_hash;
  result.trace_edges = summary.trace_edges;
  result.new_coverage = summary.new_coverage;
  result.new_path = paths_.record(summary.trace_hash);
}

void Executor::run_oop_into(ByteSpan packet, ExecResult& result) {
  ++executions_;
  if (!oop_) {
    oop::OopExecutorConfig oop_config;
    oop_config.target_cmd = config_.target_cmd;
    oop_config.exec_timeout_ms = config_.oop_exec_timeout_ms;
    oop_config.handshake_timeout_ms = config_.oop_handshake_timeout_ms;
    oop_ = std::make_unique<oop::OutOfProcessExecutor>(std::move(oop_config));
  }

  const telem::Sink& telemetry = config_.telemetry;
  const std::uint64_t restarts_before = oop_->server_restarts();
  const std::uint64_t retries_before = oop_->run_retries();

  const oop::OutOfProcessExecutor::Outcome& outcome = oop_->run(packet);

  if (telemetry.enabled()) {
    // Mirror the backend's restart/retry tallies (previously visible only
    // to the fault-injection tests) into the campaign metrics, and journal
    // each kill with its reason — a deadline SIGKILL ("hang") is a target
    // bug, a lost server is infrastructure trouble, and conflating the two
    // used to require reading the synthetic fault site ids.
    const std::uint64_t respawns = oop_->server_restarts() - restarts_before;
    const std::uint64_t retries = oop_->run_retries() - retries_before;
    if (respawns > 0) {
      telemetry.add(telem::Counter::kOopRestarts, respawns);
      telemetry.event(telem::EventType::kForkServerRespawn,
                      content_hash(packet), "reason=server-lost");
    }
    if (retries > 0) telemetry.add(telem::Counter::kOopRetries, retries);
    if (outcome.status == oop::ExecStatus::kHang) {
      telemetry.add(telem::Counter::kOopHangs);
      char detail[48];
      std::snprintf(detail, sizeof detail, "reason=hang deadline_ms=%d",
                    config_.oop_exec_timeout_ms);
      telemetry.event(telem::EventType::kHang, content_hash(packet), detail);
    } else if (outcome.status == oop::ExecStatus::kServerLost) {
      telemetry.add(telem::Counter::kOopServerLost);
      telemetry.event(telem::EventType::kServerLost, content_hash(packet),
                      "reason=server-lost");
    }
  }

  // Adopt the child's shared-memory trace into this map (reader-side dirty
  // list rebuild), then reuse the exact in-process analysis — the sparse
  // fused pass or its dense reference twin — unchanged. A backend that
  // could not even create its segment adopts the empty trace (null).
  map_.adopt_external(oop_->map_words());
  const cov::TraceSummary summary = config_.dense_reference
                                        ? map_.finalize_execution_dense()
                                        : map_.finalize_execution();

  result.events = outcome.aux.events;
  result.faults.assign(outcome.aux.faults.begin(), outcome.aux.faults.end());
  result.response.assign(outcome.aux.response.begin(),
                         outcome.aux.response.end());
  result.response_truncated = outcome.aux.response_truncated;
  if (outcome.aux.faults_truncated) {
    // The child's fault stream overflowed the aux block: the list above is
    // incomplete, which crash accounting must see rather than silently
    // under-report.
    result.faults.push_back(san::FaultReport{
        san::FaultKind::Segv, san::site_id("oop-aux-faults-truncated"),
        "fault reports overflowed the shared-memory aux block"});
  }

  // Transport-level failures become synthetic fault reports so the
  // campaign's crash accounting sees them; on the healthy path the aux
  // block shipped the exact in-process observables and the reports below
  // never fire — which is what keeps out-of-process trajectories
  // bit-identical to in-process ones (test_exec_oop.cpp).
  switch (outcome.status) {
    case oop::ExecStatus::kOk:
      break;
    case oop::ExecStatus::kCrash:
      result.faults.push_back(san::FaultReport{
          san::FaultKind::Segv, san::site_id("oop-child-terminated"),
          outcome.term_signal != 0
              ? "target child died on signal " +
                    std::to_string(outcome.term_signal)
              : "target child exited abnormally (code " +
                    std::to_string(outcome.exit_code) + ")"});
      break;
    case oop::ExecStatus::kHang:
      result.faults.push_back(san::FaultReport{
          san::FaultKind::Hang, san::site_id("oop-exec-deadline"),
          "execution exceeded the " +
              std::to_string(config_.oop_exec_timeout_ms) +
              " ms fork-server deadline"});
      break;
    case oop::ExecStatus::kServerLost:
      result.faults.push_back(san::FaultReport{
          san::FaultKind::Segv, san::site_id("oop-server-lost"),
          "fork server unreachable: " + oop_->last_error()});
      break;
  }

  // Same tail as in-process execution — the hang budget applies to the
  // event count the child shipped back.
  finish_result(summary, result);
}

void Executor::reset_campaign() {
  map_.reset_accumulated();
  paths_.clear();
  executions_ = 0;
}

}  // namespace icsfuzz::fuzz
