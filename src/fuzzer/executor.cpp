#include "fuzzer/executor.hpp"

#include <algorithm>

#include "exec_oop/oop_executor.hpp"

namespace icsfuzz::fuzz {

Executor::Executor(ExecutorConfig config)
    : config_(std::move(config)),
      backend_(make_exec_backend(config_.backend, config_.dense_reference,
                                 config_.telemetry)) {
  map_.use_kernel(config_.coverage_kernel);
}

Executor::~Executor() = default;
Executor::Executor(Executor&&) noexcept = default;
Executor& Executor::operator=(Executor&&) noexcept = default;

const ExecResult& Executor::run(ProtocolTarget& target, ByteSpan packet) {
  run_into(target, packet, scratch_);
  return scratch_;
}

void Executor::run_into(ProtocolTarget& target, ByteSpan packet,
                        ExecResult& result) {
  ++executions_;
  const cov::TraceSummary summary =
      backend_->execute(target, packet, map_, result);
  finish_result(summary, result);
}

void Executor::run_batch(
    ProtocolTarget& target, const std::vector<Bytes>& packets,
    const std::function<void(std::size_t, const ExecResult&)>& on_result) {
  backend_->execute_batch(
      target, packets, map_, scratch_,
      [&](std::size_t index, const cov::TraceSummary& summary,
          ExecResult& result) {
        ++executions_;
        finish_result(summary, result);
        on_result(index, result);
      });
}

/// Shared tail of every backend: the deterministic hang budget and the
/// summary/new-path assignments. One implementation, so the arms of the
/// in-process/out-of-process differential oracle cannot drift.
void Executor::finish_result(const cov::TraceSummary& summary,
                             ExecResult& result) {
  if (result.faults.empty() && result.events > config_.hang_event_budget) {
    result.faults.push_back(san::FaultReport{
        san::FaultKind::Hang, san::site_id("executor-hang-budget"),
        "execution exceeded " + std::to_string(config_.hang_event_budget) +
            " instrumentation events"});
  }
  result.trace_hash = summary.trace_hash;
  result.trace_edges = summary.trace_edges;
  result.new_coverage = summary.new_coverage;
  result.new_path = paths_.record(summary.trace_hash);
  if (result.session_messages != 0) {
    std::uint64_t fresh = 0;
    for (const std::uint32_t state : result.session_states) {
      if (session_states_.insert(state).second) ++fresh;
    }
    if (config_.telemetry.enabled()) {
      config_.telemetry.add(telem::Counter::kSessionsExecuted);
      config_.telemetry.add(telem::Counter::kSessionMessages,
                            result.session_messages);
      if (fresh > 0) {
        config_.telemetry.add(telem::Counter::kSessionNewStates, fresh);
      }
    }
  }
}

std::vector<std::uint64_t> Executor::session_states_snapshot() const {
  std::vector<std::uint64_t> out(session_states_.begin(),
                                 session_states_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void Executor::reset_campaign() {
  map_.reset_accumulated();
  paths_.clear();
  executions_ = 0;
  session_states_.clear();
}

void Executor::restore_campaign(
    std::uint64_t executions, const std::uint8_t* accumulated,
    const std::vector<std::uint64_t>& path_hashes,
    const std::vector<std::uint64_t>& session_states) {
  reset_campaign();
  executions_ = executions;
  if (accumulated != nullptr) map_.merge_accumulated(accumulated);
  for (const std::uint64_t hash : path_hashes) paths_.record(hash);
  for (const std::uint64_t state : session_states) {
    session_states_.insert(static_cast<std::uint32_t>(state));
  }
}

}  // namespace icsfuzz::fuzz
