#include "fuzzer/executor.hpp"

#include <cassert>

namespace icsfuzz::fuzz {

ExecResult Executor::run(ProtocolTarget& target, ByteSpan packet) {
  ExecResult result;
  ++executions_;

  // Executions must not nest on a thread: the second begin_execution would
  // silently steal the first one's thread-local trace arming.
  assert(!cov::trace_armed());

  target.reset();
  san::FaultSink::arm();
  map_.begin_execution();

  result.response = target.process(packet);

  map_.end_execution();
  result.events = cov::tls_event_count;
  result.faults = san::FaultSink::disarm();

  if (result.faults.empty() && result.events > config_.hang_event_budget) {
    result.faults.push_back(san::FaultReport{
        san::FaultKind::Hang, san::site_id("executor-hang-budget"),
        "execution exceeded " + std::to_string(config_.hang_event_budget) +
            " instrumentation events"});
  }

  result.trace_hash = map_.trace_hash();
  result.trace_edges = map_.trace_edge_count();
  result.new_coverage = map_.accumulate();
  result.new_path = paths_.record(result.trace_hash);
  return result;
}

void Executor::reset_campaign() {
  map_.reset_accumulated();
  paths_.clear();
  executions_ = 0;
}

}  // namespace icsfuzz::fuzz
