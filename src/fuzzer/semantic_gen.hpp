// Semantic-aware generation — Algorithm 3 of the paper, plus the File
// Fixup pass (§IV-D).
//
// Two modes:
//   * `generate` — steady-state single seed: walk the model; at every chunk
//     whose construction rule has donors in the puzzle corpus, splice a
//     donor (exact tier first, similar tier as fallback) with probability
//     `donor_use_pct`, otherwise fall back to the inherent mutator
//     generation; recurse into composites so donated leaves can mix with
//     fresh siblings.
//   * `generate_batch` — the paper's combinatorial construction applied
//     right after a crack: enumerate donor candidates position by position
//     (the p x q product of Algorithm 3), bounded by `max_batch`.
//
// Both modes finish with model::apply_constraints — the File Fixup module —
// so spliced seeds regain their size-of/count-of/CRC integrity.
#pragma once

#include "fuzzer/corpus.hpp"
#include "fuzzer/instantiator.hpp"
#include "model/data_model.hpp"

namespace icsfuzz::fuzz {

struct SemanticGenConfig {
  /// Probability (percent) of using an available donor at a chunk position
  /// in a donor-heavy seed. Each generated seed rolls one of three donor
  /// intensities — heavy (this value), medium (half), light (explore_pct) —
  /// so the stream mixes gate-passing exploitation with value exploration.
  unsigned donor_use_pct = 80;
  /// Donor probability of the exploration-leaning intensity.
  unsigned explore_pct = 15;
  /// Probability (percent) of applying a byte-level mutation to donated
  /// bytes — the paper's "mutation on existing chunks" (§II) applied to
  /// corpus material.
  unsigned mutate_donor_pct = 20;
  /// Probability (percent) that the similar-shape tier is consulted when
  /// the exact tier has no candidates.
  unsigned similar_tier_pct = 30;
  /// Upper bound on seeds produced by one generate_batch call.
  std::size_t max_batch = 24;
  /// Upper bound on donor candidates enumerated per position in batch mode.
  std::size_t candidates_per_position = 4;
  /// Run the File Fixup pass on spliced seeds. Disabling this is the
  /// paper-motivating ablation: donated pieces break size/CRC integrity and
  /// die in framing validation.
  bool apply_file_fixup = true;
};

class SemanticGenerator {
 public:
  SemanticGenerator(SemanticGenConfig config, mutation::MutatorConfig mutators)
      : config_(config), instantiator_(mutators) {}

  /// Steady-state semantic-aware generation of one seed.
  Bytes generate(const model::DataModel& model, const PuzzleCorpus& corpus,
                 Rng& rng) const;

  /// Buffer-reusing variant of generate(): serializes into `out` (cleared
  /// first, capacity retained). Identical RNG draws.
  void generate_into(const model::DataModel& model, const PuzzleCorpus& corpus,
                     Rng& rng, Bytes& out) const;

  /// Post-crack combinatorial batch (Algorithm 3's cartesian construction).
  std::vector<Bytes> generate_batch(const model::DataModel& model,
                                    const PuzzleCorpus& corpus,
                                    Rng& rng) const;

  [[nodiscard]] const SemanticGenConfig& config() const { return config_; }

  /// Generates one leaf (donor-aware) — used by the batch tree builder.
  model::InsNode build_leaf_or_donor(const model::Chunk& chunk,
                                     const PuzzleCorpus& corpus,
                                     Rng& rng) const;

 private:
  model::InsNode build_with_donors(const model::Chunk& chunk,
                                   const PuzzleCorpus& corpus, Rng& rng,
                                   unsigned donor_pct) const;

  /// Rolls this seed's donor intensity (heavy / medium / light).
  unsigned roll_donor_intensity(Rng& rng) const;

  SemanticGenConfig config_;
  ModelInstantiator instantiator_;
};

}  // namespace icsfuzz::fuzz
