#include "fuzzer/exec_backend.hpp"

#include <cassert>
#include <cstdio>

#include "coverage/instrument.hpp"
#include "exec_oop/oop_executor.hpp"
#include "session/session_backend.hpp"
#include "session/tcp_backend.hpp"
#include "util/bytes.hpp"

namespace icsfuzz::fuzz {

std::string_view to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kInProcess: return "in-process";
    case BackendKind::kForkPerExec: return "fork-per-exec";
    case BackendKind::kPersistent: return "persistent";
    case BackendKind::kTcp: return "tcp";
  }
  return "?";
}

void ExecBackend::execute_batch(
    ProtocolTarget& target, const std::vector<Bytes>& packets,
    cov::CoverageMap& map, ExecResult& scratch,
    const std::function<void(std::size_t, const cov::TraceSummary&,
                             ExecResult&)>& each) {
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const cov::TraceSummary summary =
        execute(target, ByteSpan(packets[i]), map, scratch);
    each(i, summary, scratch);
  }
}

namespace {

/// kInProcess: the ProtocolTarget runs on this thread under the
/// thread-local trace arming — reset, arm, trace, process, finalize.
class InProcessBackend final : public ExecBackend {
 public:
  explicit InProcessBackend(bool dense_reference)
      : dense_(dense_reference) {}

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kInProcess;
  }

  cov::TraceSummary execute(ProtocolTarget& target, ByteSpan packet,
                            cov::CoverageMap& map,
                            ExecResult& result) override {
    // Executions must not nest on a thread: the second begin_execution
    // would silently steal the first one's thread-local trace arming.
    assert(!cov::trace_armed());

    target.reset();
    san::FaultSink::arm();
    if (dense_) {
      map.begin_execution_dense();
    } else {
      map.begin_execution();
    }

    target.process_into(packet, result.response);
    result.response_truncated = false;  // reused-result hygiene
    result.session_states.clear();      // plain exchanges have no session
    result.session_messages = 0;

    // The fused sparse pass (or its dense reference twin) replaces the old
    // end_execution -> trace_hash -> trace_edge_count -> accumulate
    // sequence: one sweep of the dirty words instead of four full-map
    // passes.
    const cov::TraceSummary summary =
        dense_ ? map.finalize_execution_dense() : map.finalize_execution();
    result.events = cov::tls_event_count;
    san::FaultSink::disarm_into(result.faults);
    return summary;
  }

 private:
  bool dense_;
};

/// kForkPerExec / kPersistent: packets cross into the fork-server target
/// through OutOfProcessExecutor; the shm trace is adopted into the owning
/// map (reader-side dirty rebuild) so the analysis downstream of execute()
/// is byte-for-byte the in-process one.
class OopBackend final : public ExecBackend {
 public:
  OopBackend(const ExecBackendConfig& config, bool dense_reference,
             telem::Sink telemetry)
      : kind_(config.kind),
        dense_(dense_reference),
        exec_timeout_ms_(config.exec_timeout_ms),
        telemetry_(telemetry) {
    oop::OopExecutorConfig oop_config;
    oop_config.target_cmd = config.target_cmd;
    oop_config.exec_timeout_ms = config.exec_timeout_ms;
    oop_config.handshake_timeout_ms = config.handshake_timeout_ms;
    oop_config.persistent_budget = config.kind == BackendKind::kPersistent
                                       ? config.persistent_budget
                                       : 0;
    oop_config.retry = config.retry;
    oop_config.jail = config.jail;
    oop_config.preload = config.preload;
    exec_ = std::make_unique<oop::OutOfProcessExecutor>(std::move(oop_config));
  }

  [[nodiscard]] BackendKind kind() const override { return kind_; }

  [[nodiscard]] const oop::OutOfProcessExecutor* oop() const override {
    return exec_.get();
  }

  cov::TraceSummary execute(ProtocolTarget& /*target*/, ByteSpan packet,
                            cov::CoverageMap& map,
                            ExecResult& result) override {
    const Tallies before = tallies();
    const oop::OutOfProcessExecutor::Outcome& outcome = exec_->run(packet);
    mirror_telemetry(before, outcome, content_hash(packet));
    return adopt_and_fill(outcome, map, result);
  }

  void execute_batch(
      ProtocolTarget& /*target*/, const std::vector<Bytes>& packets,
      cov::CoverageMap& map, ExecResult& scratch,
      const std::function<void(std::size_t, const cov::TraceSummary&,
                               ExecResult&)>& each) override {
    Tallies before = tallies();
    exec_->run_batch(
        packets, [&](std::size_t index,
                     const oop::OutOfProcessExecutor::Outcome& outcome) {
          mirror_telemetry(before, outcome,
                           content_hash(ByteSpan(packets[index])));
          before = tallies();
          const cov::TraceSummary summary =
              adopt_and_fill(outcome, map, scratch);
          each(index, summary, scratch);
        });
  }

 private:
  /// Backend tallies sampled before a run, so telemetry mirrors deltas
  /// (the backend aggregates across retries inside one run()).
  struct Tallies {
    std::uint64_t restarts = 0;
    std::uint64_t retries = 0;
    std::uint64_t orderly_exits = 0;
  };

  [[nodiscard]] Tallies tallies() const {
    return {exec_->server_restarts(), exec_->run_retries(),
            exec_->orderly_server_exits()};
  }

  /// Mirrors the backend's restart/retry/recycle tallies (previously
  /// visible only to the fault-injection tests) into the campaign
  /// metrics, and journals each kill with its reason — a deadline SIGKILL
  /// ("hang") is a target bug, a lost server is infrastructure trouble,
  /// and an orderly retirement is neither.
  void mirror_telemetry(const Tallies& before,
                        const oop::OutOfProcessExecutor::Outcome& outcome,
                        std::uint64_t packet_hash) const {
    if (!telemetry_.enabled()) return;
    const std::uint64_t respawns = exec_->server_restarts() - before.restarts;
    const std::uint64_t retries = exec_->run_retries() - before.retries;
    const std::uint64_t orderly =
        exec_->orderly_server_exits() - before.orderly_exits;
    if (respawns > 0) {
      telemetry_.add(telem::Counter::kOopRestarts, respawns);
      telemetry_.event(
          telem::EventType::kForkServerRespawn, packet_hash,
          orderly > 0 ? "reason=server-exited" : "reason=server-lost");
    }
    if (retries > 0) telemetry_.add(telem::Counter::kOopRetries, retries);
    if (orderly > 0) {
      telemetry_.add(telem::Counter::kOopServerExits, orderly);
    }
    if (outcome.child_recycled) {
      telemetry_.add(telem::Counter::kOopChildRecycles);
      telemetry_.observe(telem::Histogram::kOopIterationsPerChild,
                         outcome.iteration);
    }
    if (outcome.status == oop::ExecStatus::kHang) {
      telemetry_.add(telem::Counter::kOopHangs);
      char detail[48];
      std::snprintf(detail, sizeof detail, "reason=hang deadline_ms=%d",
                    exec_timeout_ms_);
      telemetry_.event(telem::EventType::kHang, packet_hash, detail);
    } else if (outcome.status == oop::ExecStatus::kOom) {
      telemetry_.add(telem::Counter::kOopOomKills);
      char detail[48];
      std::snprintf(detail, sizeof detail, "reason=oom jail_as_mb=%llu",
                    static_cast<unsigned long long>(
                        exec_->config().jail.address_space_mb));
      telemetry_.event(telem::EventType::kOomKill, packet_hash, detail);
    } else if (outcome.status == oop::ExecStatus::kServerLost) {
      telemetry_.add(telem::Counter::kOopServerLost);
      telemetry_.event(telem::EventType::kServerLost, packet_hash,
                       "reason=server-lost");
    }
  }

  /// Adopts the child's shared-memory trace into `map` (reader-side dirty
  /// list rebuild), reuses the exact in-process analysis unchanged, and
  /// maps the outcome onto the ExecResult observables. Transport-level
  /// failures become synthetic fault reports so crash accounting sees
  /// them; on the healthy path the aux block shipped the exact in-process
  /// observables and the reports below never fire — which is what keeps
  /// out-of-process trajectories bit-identical to in-process ones
  /// (test_exec_oop.cpp).
  cov::TraceSummary adopt_and_fill(
      const oop::OutOfProcessExecutor::Outcome& outcome, cov::CoverageMap& map,
      ExecResult& result) {
    map.adopt_external(exec_->map_words());
    const cov::TraceSummary summary =
        dense_ ? map.finalize_execution_dense() : map.finalize_execution();

    result.events = outcome.aux.events;
    result.faults.assign(outcome.aux.faults.begin(),
                         outcome.aux.faults.end());
    result.response.assign(outcome.aux.response.begin(),
                           outcome.aux.response.end());
    result.response_truncated = outcome.aux.response_truncated;
    result.session_states.clear();  // fork-server exchanges are sessionless
    result.session_messages = 0;
    if (outcome.aux.faults_truncated) {
      // The child's fault stream overflowed the aux block: the list above
      // is incomplete, which crash accounting must see rather than
      // silently under-report.
      result.faults.push_back(san::FaultReport{
          san::FaultKind::Segv, san::site_id("oop-aux-faults-truncated"),
          "fault reports overflowed the shared-memory aux block"});
    }

    switch (outcome.status) {
      case oop::ExecStatus::kOk:
        break;
      case oop::ExecStatus::kCrash:
        result.faults.push_back(san::FaultReport{
            san::FaultKind::Segv, san::site_id("oop-child-terminated"),
            outcome.term_signal != 0
                ? "target child died on signal " +
                      std::to_string(outcome.term_signal)
                : "target child exited abnormally (code " +
                      std::to_string(outcome.exit_code) + ")"});
        break;
      case oop::ExecStatus::kHang:
        result.faults.push_back(san::FaultReport{
            san::FaultKind::Hang, san::site_id("oop-exec-deadline"),
            "execution exceeded the " + std::to_string(exec_timeout_ms_) +
                " ms fork-server deadline"});
        break;
      case oop::ExecStatus::kOom:
        // The jail's distinct exit code keeps allocation-failure deaths
        // out of the memory-safety crash buckets.
        result.faults.push_back(san::FaultReport{
            san::FaultKind::Segv, san::site_id("oop-child-oom"),
            "resource jail killed the child (allocation failure under "
            "RLIMIT_AS)"});
        break;
      case oop::ExecStatus::kServerLost:
        result.faults.push_back(san::FaultReport{
            san::FaultKind::Segv, san::site_id("oop-server-lost"),
            "fork server unreachable: " + exec_->last_error()});
        break;
    }
    return summary;
  }

  BackendKind kind_;
  bool dense_;
  int exec_timeout_ms_;
  telem::Sink telemetry_;
  std::unique_ptr<oop::OutOfProcessExecutor> exec_;
};

}  // namespace

std::unique_ptr<ExecBackend> make_exec_backend(const ExecBackendConfig& config,
                                               bool dense_reference,
                                               telem::Sink telemetry) {
  if (config.kind == BackendKind::kTcp) {
    return session::make_tcp_session_backend(config, dense_reference,
                                             telemetry);
  }
  if (config.kind == BackendKind::kInProcess) {
    if (config.session.framing != session::Framing::kNone) {
      return session::make_in_process_session_backend(config, dense_reference);
    }
    return std::make_unique<InProcessBackend>(dense_reference);
  }
  return std::make_unique<OopBackend>(config, dense_reference, telemetry);
}

}  // namespace icsfuzz::fuzz
