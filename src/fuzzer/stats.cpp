#include "fuzzer/stats.hpp"

#include <algorithm>

namespace icsfuzz::fuzz {

void StatsSeries::tick(std::uint64_t executions, std::size_t paths,
                       std::size_t edges, std::size_t unique_crashes,
                       std::size_t corpus_size) {
  if (interval_ == 0 || executions % interval_ != 0) return;
  points_.push_back({executions, paths, edges, unique_crashes, corpus_size});
}

void StatsSeries::finalize(std::uint64_t executions, std::size_t paths,
                           std::size_t edges, std::size_t unique_crashes,
                           std::size_t corpus_size) {
  if (!points_.empty() && points_.back().executions == executions) return;
  points_.push_back({executions, paths, edges, unique_crashes, corpus_size});
}

std::size_t StatsSeries::final_paths() const {
  return points_.empty() ? 0 : points_.back().paths;
}

std::uint64_t StatsSeries::executions_to_reach(std::size_t paths) const {
  for (const Checkpoint& point : points_) {
    if (point.paths >= paths) return point.executions;
  }
  return 0;
}

std::string StatsSeries::to_csv() const {
  std::string out = "executions,paths,edges,unique_crashes,corpus\n";
  for (const Checkpoint& point : points_) {
    out += std::to_string(point.executions) + "," +
           std::to_string(point.paths) + "," + std::to_string(point.edges) +
           "," + std::to_string(point.unique_crashes) + "," +
           std::to_string(point.corpus_size) + "\n";
  }
  return out;
}

std::vector<Checkpoint> average_series(
    const std::vector<std::vector<Checkpoint>>& repetitions) {
  std::vector<Checkpoint> out;
  if (repetitions.empty()) return out;
  std::size_t longest = 0;
  for (const auto& series : repetitions) {
    longest = std::max(longest, series.size());
  }
  for (std::size_t i = 0; i < longest; ++i) {
    Checkpoint avg;
    std::size_t contributors = 0;
    for (const auto& series : repetitions) {
      if (i >= series.size()) continue;
      avg.executions = series[i].executions;  // shared interval
      avg.paths += series[i].paths;
      avg.edges += series[i].edges;
      avg.unique_crashes += series[i].unique_crashes;
      avg.corpus_size += series[i].corpus_size;
      ++contributors;
    }
    if (contributors == 0) break;
    avg.paths /= contributors;
    avg.edges /= contributors;
    avg.unique_crashes /= contributors;
    avg.corpus_size /= contributors;
    out.push_back(avg);
  }
  return out;
}

std::vector<Checkpoint> sum_series(
    const std::vector<std::vector<Checkpoint>>& workers) {
  std::vector<Checkpoint> out;
  std::size_t longest = 0;
  for (const auto& series : workers) {
    longest = std::max(longest, series.size());
  }
  for (std::size_t i = 0; i < longest; ++i) {
    Checkpoint total;
    for (const auto& series : workers) {
      if (i >= series.size()) continue;
      total.executions += series[i].executions;
      total.paths += series[i].paths;
      total.edges += series[i].edges;
      total.unique_crashes += series[i].unique_crashes;
      total.corpus_size += series[i].corpus_size;
    }
    out.push_back(total);
  }
  return out;
}

}  // namespace icsfuzz::fuzz
