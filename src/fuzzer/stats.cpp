#include "fuzzer/stats.hpp"

#include <algorithm>

namespace icsfuzz::fuzz {

void StatsSeries::tick(std::uint64_t executions, std::size_t paths,
                       std::size_t edges, std::size_t unique_crashes,
                       std::size_t corpus_size, std::uint64_t wall_ns) {
  if (!due(executions)) return;
  points_.push_back(
      {executions, paths, edges, unique_crashes, corpus_size, wall_ns});
}

void StatsSeries::finalize(std::uint64_t executions, std::size_t paths,
                           std::size_t edges, std::size_t unique_crashes,
                           std::size_t corpus_size, std::uint64_t wall_ns) {
  if (!points_.empty() && points_.back().executions == executions) return;
  points_.push_back(
      {executions, paths, edges, unique_crashes, corpus_size, wall_ns});
}

std::size_t StatsSeries::final_paths() const {
  return points_.empty() ? 0 : points_.back().paths;
}

std::uint64_t StatsSeries::executions_to_reach(std::size_t paths) const {
  for (const Checkpoint& point : points_) {
    if (point.paths >= paths) return point.executions;
  }
  return 0;
}

std::string StatsSeries::to_csv() const {
  std::string out = "executions,paths,edges,unique_crashes,corpus,wall_ms\n";
  for (const Checkpoint& point : points_) {
    out += std::to_string(point.executions) + "," +
           std::to_string(point.paths) + "," + std::to_string(point.edges) +
           "," + std::to_string(point.unique_crashes) + "," +
           std::to_string(point.corpus_size) + "," +
           std::to_string(point.wall_ns / 1000000) + "\n";
  }
  return out;
}

std::vector<Checkpoint> average_series(
    const std::vector<std::vector<Checkpoint>>& repetitions) {
  std::vector<Checkpoint> out;
  if (repetitions.empty()) return out;
  std::size_t longest = 0;
  for (const auto& series : repetitions) {
    longest = std::max(longest, series.size());
  }
  for (std::size_t i = 0; i < longest; ++i) {
    Checkpoint avg;
    std::size_t contributors = 0;
    for (const auto& series : repetitions) {
      if (i >= series.size()) continue;
      avg.executions = series[i].executions;  // shared interval
      avg.paths += series[i].paths;
      avg.edges += series[i].edges;
      avg.unique_crashes += series[i].unique_crashes;
      avg.corpus_size += series[i].corpus_size;
      // Wall clock is not averaged: the repetitions ran sequentially, so
      // the latest contributor's reading is the meaningful one.
      avg.wall_ns = std::max(avg.wall_ns, series[i].wall_ns);
      ++contributors;
    }
    if (contributors == 0) break;
    avg.paths /= contributors;
    avg.edges /= contributors;
    avg.unique_crashes /= contributors;
    avg.corpus_size /= contributors;
    out.push_back(avg);
  }
  return out;
}

std::vector<Checkpoint> sum_series(
    const std::vector<std::vector<Checkpoint>>& workers) {
  std::vector<Checkpoint> out;
  std::size_t longest = 0;
  for (const auto& series : workers) {
    longest = std::max(longest, series.size());
  }
  for (std::size_t i = 0; i < longest; ++i) {
    Checkpoint total;
    for (const auto& series : workers) {
      if (i >= series.size()) continue;
      total.executions += series[i].executions;
      total.paths += series[i].paths;
      total.edges += series[i].edges;
      total.unique_crashes += series[i].unique_crashes;
      total.corpus_size += series[i].corpus_size;
      // Workers share one telemetry clock; the checkpoint "time" of the
      // summed row is the last worker to reach it.
      total.wall_ns = std::max(total.wall_ns, series[i].wall_ns);
    }
    out.push_back(total);
  }
  return out;
}

}  // namespace icsfuzz::fuzz
