#include "fuzzer/crash_db.hpp"

#include <algorithm>

namespace icsfuzz::fuzz {

bool CrashDb::record(const san::FaultReport& fault, ByteSpan packet,
                     std::uint64_t execution_index, std::uint64_t trace_hash) {
  const auto key = std::make_pair(static_cast<std::uint8_t>(fault.kind),
                                  fault.site);
  auto [it, inserted] = records_.try_emplace(key);
  CrashRecord& record = it->second;
  ++record.hits;
  if (inserted) {
    record.kind = fault.kind;
    record.site = fault.site;
    record.detail = fault.detail;
    record.reproducer.assign(packet.begin(), packet.end());
    record.first_execution = execution_index;
    record.trace_hash = trace_hash;
  }
  return inserted;
}

void CrashDb::restore(const CrashRecord& record) {
  const auto key = std::make_pair(static_cast<std::uint8_t>(record.kind),
                                  record.site);
  records_[key] = record;
}

std::size_t CrashDb::unique_memory_faults() const {
  std::size_t count = 0;
  for (const auto& [key, record] : records_) {
    if (record.kind != san::FaultKind::Hang) ++count;
  }
  return count;
}

std::vector<const CrashRecord*> CrashDb::records() const {
  std::vector<const CrashRecord*> out;
  out.reserve(records_.size());
  for (const auto& [key, record] : records_) out.push_back(&record);
  std::sort(out.begin(), out.end(),
            [](const CrashRecord* a, const CrashRecord* b) {
              return a->first_execution < b->first_execution;
            });
  return out;
}

std::map<san::FaultKind, std::size_t> CrashDb::by_kind() const {
  std::map<san::FaultKind, std::size_t> out;
  for (const auto& [key, record] : records_) ++out[record.kind];
  return out;
}

}  // namespace icsfuzz::fuzz
