// Campaign statistics: the paths-over-executions series behind Figure 4
// and the scalar summaries behind the paper's headline numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace icsfuzz::fuzz {

struct Checkpoint {
  std::uint64_t executions = 0;
  std::size_t paths = 0;
  std::size_t edges = 0;
  std::size_t unique_crashes = 0;
  std::size_t corpus_size = 0;
  /// Telemetry-clock reading when the checkpoint was taken (0 when the
  /// caller has no clock). Campaign-relative nanoseconds; with a manual
  /// telemetry clock, replayed campaigns emit identical timestamps.
  std::uint64_t wall_ns = 0;
};

/// Records checkpoints at a fixed execution interval.
class StatsSeries {
 public:
  explicit StatsSeries(std::uint64_t interval = 500) : interval_(interval) {}

  /// True when `executions` lands on the checkpoint interval — callers
  /// gate the (possibly clock-reading) tick() arguments on this so the hot
  /// path pays nothing between checkpoints.
  [[nodiscard]] bool due(std::uint64_t executions) const {
    return interval_ != 0 && executions % interval_ == 0;
  }

  /// Called once per execution; records a checkpoint when due.
  void tick(std::uint64_t executions, std::size_t paths, std::size_t edges,
            std::size_t unique_crashes, std::size_t corpus_size,
            std::uint64_t wall_ns = 0);

  /// Forces a final checkpoint (campaign end).
  void finalize(std::uint64_t executions, std::size_t paths, std::size_t edges,
                std::size_t unique_crashes, std::size_t corpus_size,
                std::uint64_t wall_ns = 0);

  [[nodiscard]] const std::vector<Checkpoint>& checkpoints() const {
    return points_;
  }
  [[nodiscard]] std::uint64_t interval() const { return interval_; }

  /// Paths at the latest checkpoint (0 when empty).
  [[nodiscard]] std::size_t final_paths() const;

  /// First execution count at which `paths` was reached, or 0 when never.
  [[nodiscard]] std::uint64_t executions_to_reach(std::size_t paths) const;

  /// Renders "executions,paths,edges,crashes,corpus,wall_ms" CSV lines
  /// (the trailing wall-clock column was appended in PR 6; the original
  /// columns are stable).
  [[nodiscard]] std::string to_csv() const;

  /// Checkpoint/resume: replaces the recorded series wholesale (interval
  /// stays as configured — it is part of FuzzerConfig, not of the series
  /// state).
  void restore(std::vector<Checkpoint> points) { points_ = std::move(points); }

 private:
  std::uint64_t interval_;
  std::vector<Checkpoint> points_;
};

/// Averages several repetitions' series at common checkpoints (series must
/// share the interval; shorter series stop contributing past their end).
std::vector<Checkpoint> average_series(
    const std::vector<std::vector<Checkpoint>>& repetitions);

/// Sums parallel workers' series at common checkpoint indexes into one
/// campaign-wide throughput series: executions add up, and so do the
/// per-worker path/edge/crash/corpus tallies. The summed coverage columns
/// ignore cross-worker overlap, so they upper-bound the deduplicated global
/// numbers — those come from the merged CoverageMap / PathTracker at sync
/// points, not from this series.
std::vector<Checkpoint> sum_series(
    const std::vector<std::vector<Checkpoint>>& workers);

}  // namespace icsfuzz::fuzz
