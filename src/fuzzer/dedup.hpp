// GenerationalDedup — bounded-memory executed-packet dedup.
//
// The fuzzer rules out "meaningless repetitions of path exploration"
// (paper §I) by hashing every executed packet. An unbounded set would grow
// without limit over a long campaign; the naive fix — wipe the whole set at
// a threshold — discards ALL dedup state at once, so the iterations right
// after the wipe happily re-execute the most recently seen packets.
//
// This class keeps two generations instead: inserts go to `current_`, and
// when `current_` reaches half the capacity it rotates into `previous_`
// (dropping the generation before it). Membership checks consult both, so
// at any moment at least the most recent capacity/2 distinct hashes are
// still deduplicated — the half-clear costs one move, no rehash, no copy.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <utility>

namespace icsfuzz::fuzz {

class GenerationalDedup {
 public:
  /// `capacity` bounds the total retained hashes across both generations.
  explicit GenerationalDedup(std::size_t capacity = 1ULL << 21)
      : capacity_(capacity < 2 ? 2 : capacity) {}

  /// Records `hash`; returns true when it was NOT seen in the two retained
  /// generations (i.e. the packet should execute).
  bool insert(std::uint64_t hash) {
    if (current_.contains(hash) || previous_.contains(hash)) return false;
    current_.insert(hash);
    if (current_.size() >= capacity_ / 2) {
      // Rotate: the oldest generation's memory is released, the newest
      // half of the history is retained verbatim.
      previous_ = std::move(current_);
      current_.clear();
    }
    return true;
  }

  [[nodiscard]] bool contains(std::uint64_t hash) const {
    return current_.contains(hash) || previous_.contains(hash);
  }

  /// Hashes currently retained (both generations).
  [[nodiscard]] std::size_t size() const {
    return current_.size() + previous_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Checkpoint access: the two generations, separately. Which set is
  /// `current_` matters — rotation fires off current_'s size — so resume
  /// must restore them as distinct sets, not a merged union.
  [[nodiscard]] const std::unordered_set<std::uint64_t>& current_generation()
      const {
    return current_;
  }
  [[nodiscard]] const std::unordered_set<std::uint64_t>& previous_generation()
      const {
    return previous_;
  }
  void restore_generations(std::unordered_set<std::uint64_t> current,
                           std::unordered_set<std::uint64_t> previous) {
    current_ = std::move(current);
    previous_ = std::move(previous);
  }

 private:
  std::size_t capacity_;
  std::unordered_set<std::uint64_t> current_;
  std::unordered_set<std::uint64_t> previous_;
};

}  // namespace icsfuzz::fuzz
