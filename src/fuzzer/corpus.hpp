// PuzzleCorpus — the store of cracked packet pieces (paper §IV-C/D).
//
// Each puzzle is the serialized bytes of one sub-tree of a valuable seed's
// instantiation tree, keyed by the construction rule of the chunk it
// instantiates. Lookup happens in two tiers:
//   * exact rule key  (kind + shape + semantic tag) — "same rule";
//   * shape key       (kind + shape only)           — "similar rule".
// Per-rule entry counts are capped; once full, new entries replace random
// incumbents so the corpus keeps drifting toward recent discoveries without
// unbounded growth.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "model/chunk.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace icsfuzz::fuzz {

/// Checkpoint image of a PuzzleCorpus. Per-bucket entry ORDER is part of
/// the fuzzing trajectory (full-bucket replacement picks victims by
/// rng.index over the entries vector), so entries are captured verbatim in
/// order; the dedup hash sets are recomputed on restore. Keys are sorted so
/// the serialized form of a given corpus is stable.
struct CorpusSnapshot {
  struct BucketImage {
    std::uint64_t key = 0;
    std::vector<Bytes> entries;
  };
  std::vector<BucketImage> exact;
  std::vector<BucketImage> shape;
  std::uint64_t revision = 0;
};

struct CorpusConfig {
  /// Maximum stored puzzles per rule key (and per shape key).
  std::size_t per_rule_cap = 32;
};

class PuzzleCorpus {
 public:
  explicit PuzzleCorpus(CorpusConfig config = {}) : config_(config) {}

  /// Inserts one puzzle for `rule`. Deduplicates identical bytes within a
  /// rule. Returns true when the corpus changed.
  bool add(const model::Chunk& rule, Bytes puzzle, Rng& rng);

  /// Exact-tier candidates for `rule` (empty when none).
  [[nodiscard]] const std::vector<Bytes>* exact_candidates(
      const model::Chunk& rule) const;

  /// Similar-tier candidates for `rule` (empty when none).
  [[nodiscard]] const std::vector<Bytes>* similar_candidates(
      const model::Chunk& rule) const;

  /// Folds every puzzle of `other` into this corpus, tier by tier, with the
  /// usual per-bucket dedup and cap (rng picks replacement victims in full
  /// buckets). Returns the number of exact-tier puzzles actually added, so
  /// merging a corpus into itself — or re-merging an unchanged peer —
  /// returns 0 and draws nothing from `rng`. This is the corpus-sync
  /// primitive of the parallel campaign.
  std::size_t merge_from(const PuzzleCorpus& other, Rng& rng);

  [[nodiscard]] bool empty() const { return exact_.empty(); }

  /// Total stored puzzles across all exact-tier rules.
  [[nodiscard]] std::size_t size() const;

  /// Number of distinct exact rules with at least one puzzle.
  [[nodiscard]] std::size_t rule_count() const { return exact_.size(); }

  /// Monotonic mutation counter: bumped by every accepted add (including
  /// replacements) and by clear(). Lets parallel-sync callers skip whole
  /// corpus re-merges when nothing changed since their last visit.
  [[nodiscard]] std::uint64_t revision() const { return revision_; }

  void clear();

  /// Captures both tiers for checkpointing (entry order preserved).
  [[nodiscard]] CorpusSnapshot snapshot() const;

  /// Replaces the corpus contents with `image` (bucket hash sets are
  /// recomputed from the entries; revision_ is restored verbatim).
  void restore(const CorpusSnapshot& image);

 private:
  struct Bucket {
    std::vector<Bytes> entries;
    std::unordered_set<std::uint64_t> hashes;  // dedup within the bucket
  };

  bool add_to(std::unordered_map<std::uint64_t, Bucket>& tier,
              std::uint64_t key, const Bytes& puzzle, Rng& rng);

  CorpusConfig config_;
  std::unordered_map<std::uint64_t, Bucket> exact_;
  std::unordered_map<std::uint64_t, Bucket> shape_;
  std::uint64_t revision_ = 0;
};

}  // namespace icsfuzz::fuzz
