#include "fuzzer/semantic_gen.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

namespace icsfuzz::fuzz {
namespace {

/// Donation happens at *leaf* granularity: the paper's linear model ML
/// (Figure 2a) is the flat sequence of chunk construction rules, and a
/// donated leaf splices into freshly generated siblings. Composite puzzles
/// stay in the corpus (Definition 2) but are not replayed wholesale —
/// replaying whole packets would collapse exploration into repetition.
bool donor_eligible(const model::Chunk& chunk) {
  if (!chunk.is_leaf()) return false;
  if (chunk.kind() == model::ChunkKind::Number) {
    const bool derived = chunk.number_spec().is_token ||
                         chunk.relation().active() || chunk.fixup().active();
    return !derived;
  }
  return true;  // free String / Blob
}

model::InsNode leaf_node(const model::Chunk& chunk, Bytes content) {
  model::InsNode node;
  node.rule = &chunk;
  node.content = std::move(content);
  return node;
}

/// Pinned leaf assignments used by the batch construction.
using Assignment = std::unordered_map<const model::Chunk*, const Bytes*>;

}  // namespace

unsigned SemanticGenerator::roll_donor_intensity(Rng& rng) const {
  switch (rng.below(3)) {
    case 0: return config_.donor_use_pct;       // heavy: pass learned gates
    case 1: return config_.donor_use_pct / 2;   // medium blend
    default: return config_.explore_pct;        // light: explore values
  }
}

model::InsNode SemanticGenerator::build_with_donors(const model::Chunk& chunk,
                                                    const PuzzleCorpus& corpus,
                                                    Rng& rng,
                                                    unsigned donor_pct) const {
  if (donor_eligible(chunk) && rng.chance(donor_pct, 100)) {
    const std::vector<Bytes>* pool = corpus.exact_candidates(chunk);
    if (pool == nullptr && rng.chance(config_.similar_tier_pct, 100)) {
      pool = corpus.similar_candidates(chunk);
    }
    if (pool != nullptr) {
      Bytes donation = rng.pick(*pool);
      // "Mutation on existing chunks": occasionally perturb the donated
      // bytes so learned values seed neighbourhood exploration.
      if (rng.chance(config_.mutate_donor_pct, 100)) {
        const std::size_t original_size = donation.size();
        donation = instantiator_.mutators().mutate_bytes(donation, rng);
        const bool fixed_width =
            chunk.fixed_width().has_value();
        if (fixed_width) donation.resize(original_size, 0);
      }
      return leaf_node(chunk, std::move(donation));
    }
  }

  model::InsNode node;
  node.rule = &chunk;
  switch (chunk.kind()) {
    case model::ChunkKind::Number:
    case model::ChunkKind::String:
    case model::ChunkKind::Blob:
      node.content = instantiator_.mutators().generate_leaf(chunk, rng);
      break;
    case model::ChunkKind::Block:
      for (const model::Chunk& child : chunk.children()) {
        node.children.push_back(build_with_donors(child, corpus, rng, donor_pct));
      }
      break;
    case model::ChunkKind::Choice: {
      const std::size_t pick = rng.index(chunk.children().size());
      node.choice_index = pick;
      node.children.push_back(
          build_with_donors(chunk.children()[pick], corpus, rng, donor_pct));
      break;
    }
  }
  return node;
}

Bytes SemanticGenerator::generate(const model::DataModel& model,
                                  const PuzzleCorpus& corpus, Rng& rng) const {
  Bytes out;
  generate_into(model, corpus, rng, out);
  return out;
}

void SemanticGenerator::generate_into(const model::DataModel& model,
                                      const PuzzleCorpus& corpus, Rng& rng,
                                      Bytes& out) const {
  model::InsTree tree;
  tree.model = &model;
  if (rng.chance(60, 100)) {
    // Donor-recombination profile: the structural counterpart of Peach's
    // sequential mutation. Every free field takes either a donated puzzle
    // or its default, then 0-2 fields go aberrant. This is what reaches
    // multi-field non-default combinations — each learned separately from
    // different valuable seeds — that single-field mutation cannot.
    tree.root = instantiator_.instantiate_defaults(model, rng);
    std::vector<model::InsNode*> leaves =
        ModelInstantiator::free_leaves(tree.root);
    const unsigned donor_pct = roll_donor_intensity(rng);
    for (model::InsNode* leaf : leaves) {
      if (!rng.chance(donor_pct, 100)) continue;
      const std::vector<Bytes>* pool = corpus.exact_candidates(*leaf->rule);
      if (pool == nullptr && rng.chance(config_.similar_tier_pct, 100)) {
        pool = corpus.similar_candidates(*leaf->rule);
      }
      if (pool != nullptr) leaf->content = rng.pick(*pool);
    }
    if (!leaves.empty() && rng.chance(2, 3)) {
      const std::size_t perturbations =
          rng.chance(1, 3) && leaves.size() > 1 ? 2 : 1;
      for (std::size_t i = 0; i < perturbations; ++i) {
        model::InsNode* leaf = rng.pick(leaves);
        if (rng.chance(config_.mutate_donor_pct, 100) &&
            !leaf->content.empty()) {
          const std::size_t original_size = leaf->content.size();
          leaf->content =
              instantiator_.mutators().mutate_bytes(leaf->content, rng);
          if (leaf->rule->fixed_width().has_value()) {
            leaf->content.resize(original_size, 0);
          }
        } else {
          leaf->content = instantiator_.mutators().generate_leaf(*leaf->rule, rng);
        }
      }
    }
  } else {
    tree.root =
        build_with_donors(model.root(), corpus, rng, roll_donor_intensity(rng));
  }
  if (config_.apply_file_fixup) {
    model::apply_constraints(tree);  // File Fixup
  }
  tree.serialize_into(out);
}

namespace {

/// Tree builder honouring pinned leaf assignments; unpinned content comes
/// from the donor-aware recursive generator.
model::InsNode build_pinned(const SemanticGenerator& gen,
                            const model::Chunk& chunk,
                            const PuzzleCorpus& corpus, Rng& rng,
                            const Assignment& pinned);

model::InsNode build_pinned_children(const SemanticGenerator& gen,
                                     const model::Chunk& chunk,
                                     const PuzzleCorpus& corpus, Rng& rng,
                                     const Assignment& pinned) {
  model::InsNode node;
  node.rule = &chunk;
  if (chunk.kind() == model::ChunkKind::Choice) {
    // Prefer an alternative that contains a pinned leaf; random otherwise.
    std::size_t pick = rng.index(chunk.children().size());
    for (std::size_t i = 0; i < chunk.children().size(); ++i) {
      for (const auto& [leaf, bytes] : pinned) {
        if (chunk.children()[i].find(leaf->name()) != nullptr) {
          pick = i;
          break;
        }
      }
    }
    node.choice_index = pick;
    node.children.push_back(
        build_pinned(gen, chunk.children()[pick], corpus, rng, pinned));
    return node;
  }
  for (const model::Chunk& child : chunk.children()) {
    node.children.push_back(build_pinned(gen, child, corpus, rng, pinned));
  }
  return node;
}

model::InsNode build_pinned(const SemanticGenerator& gen,
                            const model::Chunk& chunk,
                            const PuzzleCorpus& corpus, Rng& rng,
                            const Assignment& pinned) {
  if (auto it = pinned.find(&chunk); it != pinned.end()) {
    return leaf_node(chunk, *it->second);
  }
  if (chunk.is_leaf()) {
    return gen.build_leaf_or_donor(chunk, corpus, rng);
  }
  return build_pinned_children(gen, chunk, corpus, rng, pinned);
}

}  // namespace

model::InsNode SemanticGenerator::build_leaf_or_donor(
    const model::Chunk& chunk, const PuzzleCorpus& corpus, Rng& rng) const {
  return build_with_donors(chunk, corpus, rng, config_.donor_use_pct / 2);
}

std::vector<Bytes> SemanticGenerator::generate_batch(
    const model::DataModel& model, const PuzzleCorpus& corpus,
    Rng& rng) const {
  std::vector<Bytes> out;

  // The linear model: every donor-eligible leaf that actually has exact-tier
  // candidates becomes an enumeration position (GETDONOR non-empty); all
  // other chunks fall back to the inherent rule (Algorithm 3 lines 14-15).
  struct Position {
    const model::Chunk* leaf = nullptr;
    const std::vector<Bytes>* candidates = nullptr;
  };
  std::vector<Position> positions;
  for (const model::Chunk* leaf : model.leaves()) {
    if (!donor_eligible(*leaf)) continue;
    if (const std::vector<Bytes>* candidates = corpus.exact_candidates(*leaf)) {
      positions.push_back({leaf, candidates});
    }
  }
  if (positions.empty()) return out;

  // Bound the product: shuffle, keep a handful of positions, and sample at
  // most candidates_per_position donors per position.
  rng.shuffle(positions);
  constexpr std::size_t kMaxPositions = 3;
  if (positions.size() > kMaxPositions) positions.resize(kMaxPositions);

  std::vector<std::vector<const Bytes*>> choices(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    std::vector<std::size_t> order(positions[i].candidates->size());
    for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
    rng.shuffle(order);
    const std::size_t take =
        std::min(order.size(), config_.candidates_per_position);
    for (std::size_t j = 0; j < take; ++j) {
      choices[i].push_back(&(*positions[i].candidates)[order[j]]);
    }
  }

  // Recursive construct: depth-first product over the selected positions.
  Assignment pinned;
  std::vector<std::size_t> cursor(positions.size(), 0);
  const std::function<void(std::size_t)> construct = [&](std::size_t pos) {
    if (out.size() >= config_.max_batch) return;
    if (pos == positions.size()) {
      model::InsTree tree;
      tree.model = &model;
      tree.root = build_pinned(*this, model.root(), corpus, rng, pinned);
      if (config_.apply_file_fixup) {
        model::apply_constraints(tree);  // File Fixup
      }
      out.push_back(tree.serialize());
      return;
    }
    for (const Bytes* candidate : choices[pos]) {
      pinned[positions[pos].leaf] = candidate;
      construct(pos + 1);
      if (out.size() >= config_.max_batch) break;
    }
    pinned.erase(positions[pos].leaf);
  };
  construct(0);
  return out;
}

}  // namespace icsfuzz::fuzz
