// Fuzzer — the engines under evaluation.
//
//   * Strategy::Peach        — the baseline generation-based loop of the
//     paper's Algorithm 1: choose a data model, instantiate it through the
//     per-type mutators, run the target, record crashes. No feedback use.
//   * Strategy::PeachStar    — the paper's contribution (Figure 3): the
//     same loop augmented with (1) coverage-based valuable-seed
//     identification, (2) the File Cracker feeding the puzzle corpus, and
//     (3) semantic-aware generation with File Fixup, including the
//     post-crack combinatorial batch of Algorithm 3.
//   * Strategy::ByteMutation — an AFL-style coverage-guided byte mutator
//     (the paper's related-work foil and its future-work direction of
//     porting the approach to mutation-based fuzzers): seeds are the
//     models' default instances, new-coverage packets join the pool, and
//     generation is stacked byte-level mutation with no format knowledge.
#pragma once

#include <deque>
#include <functional>

#include "fuzzer/corpus.hpp"
#include "fuzzer/cracker.hpp"
#include "fuzzer/crash_db.hpp"
#include "fuzzer/dedup.hpp"
#include "fuzzer/executor.hpp"
#include "fuzzer/instantiator.hpp"
#include "fuzzer/semantic_gen.hpp"
#include "fuzzer/stats.hpp"
#include "model/data_model.hpp"
#include "session/sequencer.hpp"
#include "telemetry/telemetry.hpp"

namespace icsfuzz::fuzz {

enum class Strategy : std::uint8_t { Peach, PeachStar, ByteMutation };

std::string to_string(Strategy strategy);

struct FuzzerConfig {
  Strategy strategy = Strategy::PeachStar;
  std::uint64_t rng_seed = 1;
  /// Checkpoint interval for the stats series.
  std::uint64_t stats_interval = 500;
  mutation::MutatorConfig mutators;
  SemanticGenConfig semantic;
  CorpusConfig corpus;
  ExecutorConfig executor;
  /// Retained valuable seeds cap (oldest evicted first).
  std::size_t max_retained_seeds = 512;
  /// Ablation knob: crack every generated seed instead of only valuable
  /// ones (pollutes the corpus and pays the crack cost per execution; the
  /// default is the paper's coverage-gated design).
  bool crack_all_seeds = false;
  /// Percentage of steady-state generations that use the semantic-aware
  /// strategy once the corpus is non-empty. The paper employs the semantic
  /// strategy "in the following iteration" after a valuable seed (the
  /// batch) and keeps the inherent strategy otherwise; a small steady-state
  /// share re-applies learned chunks between discoveries without throttling
  /// value exploration.
  unsigned steady_semantic_pct = 25;
  /// Auto-distillation: every `distill_interval` executions the retained
  /// valuable-seed pool is minimized in place with the greedy set-cover
  /// cmin of src/distill/ (replays run through a private executor and draw
  /// no randomness, so enabling this never changes the fuzzing trajectory
  /// — only the retained pool's size). 0 disables.
  std::uint64_t distill_interval = 0;
  /// Executed-packet dedup memory bound (GenerationalDedup capacity): at
  /// least the most recent dedup_capacity/2 distinct packets stay
  /// deduplicated; older generations are released. Campaigns shorter than
  /// dedup_capacity/2 unique packets behave as with unbounded dedup.
  std::size_t dedup_capacity = 1ULL << 21;
  /// Session sequencing (src/session/): when enabled, generation produces
  /// whole session *streams* from session templates instead of single
  /// packets — pair it with ExecutorConfig::backend.session.framing (and
  /// optionally BackendKind::kTcp) so execution splits the stream back
  /// into the same framed message list. Disabled by default: the classic
  /// single-exchange engines are untouched.
  session::SequencerConfig session;
  /// Telemetry sink (src/telemetry/): counters, histograms and journal
  /// events for this fuzzer's hot loop, bound to the process-wide hub by
  /// default — bench_telemetry holds the cost under 2% of the hot path, so
  /// it stays on. Assign a worker-specific sink for parallel campaigns
  /// (each worker must own its registry shard) or a default-constructed
  /// Sink to disable. The sink is write-only from the engine's point of
  /// view: enabling or disabling it never changes a campaign's trajectory.
  telem::Sink telemetry = telem::Sink::global(0);
};

/// One retained valuable seed.
struct RetainedSeed {
  Bytes bytes;
  std::string model_name;
  std::uint64_t execution = 0;
};

/// Complete mid-campaign state of a Fuzzer — everything its trajectory
/// depends on. A fresh Fuzzer constructed with the same target/models/
/// config and restored from this image continues the campaign bit-for-bit
/// as if it had never stopped (gated by tests/test_checkpoint_resume.cpp).
/// Captured only between step_fast() calls (scratch buffers hold no
/// trajectory state at iteration boundaries).
struct FuzzerCheckpoint {
  Rng::State rng{};
  /// Both dedup generations, separately — which set is current decides
  /// when the next rotation fires. Sorted for a stable serialized form.
  std::vector<std::uint64_t> dedup_current;
  std::vector<std::uint64_t> dedup_previous;
  CorpusSnapshot corpus;
  std::vector<CrashRecord> crashes;  // full records, hits preserved
  std::vector<Checkpoint> stats_points;
  std::vector<RetainedSeed> retained;
  std::vector<Bytes> pending_batch;
  std::vector<Bytes> mutation_pool;
  std::vector<Bytes> imported;
  std::uint64_t total_retained = 0;
  std::uint64_t exported_retained = 0;
  std::uint64_t distill_passes = 0;
  std::uint64_t distill_dropped = 0;
  /// Executor campaign state: execution count, accumulated coverage map
  /// (cov::kMapSize bytes) and the path set (sorted).
  std::uint64_t executions = 0;
  std::vector<std::uint8_t> coverage;
  std::vector<std::uint64_t> path_hashes;
  /// Hashed session states reached (sorted; empty for sessionless
  /// campaigns — the common case costs nothing).
  std::vector<std::uint64_t> session_states;
};

class Fuzzer {
 public:
  /// `target` and `models` must outlive the fuzzer.
  Fuzzer(ProtocolTarget& target, const model::DataModelSet& models,
         FuzzerConfig config = {});

  /// Runs `iterations` executions. `on_exec` (optional) observes every
  /// execution (used by tests and live reporting).
  void run(std::uint64_t iterations,
           const std::function<void(const ExecResult&)>& on_exec = {});

  /// Runs a single fuzzing iteration; returns the execution's result.
  ExecResult step();

  /// Hot-path variant of step(): the returned reference points at internal
  /// scratch reused every iteration (valid until the next step), so the
  /// steady-state loop performs no per-iteration heap allocations for the
  /// packet, response or fault vectors. run() and the parallel workers use
  /// this; step() wraps it with a copy.
  const ExecResult& step_fast();

  // -- Observers. --
  [[nodiscard]] const Executor& executor() const { return executor_; }
  [[nodiscard]] const CrashDb& crashes() const { return crash_db_; }
  [[nodiscard]] const PuzzleCorpus& corpus() const { return corpus_; }
  [[nodiscard]] const StatsSeries& stats() const { return stats_; }
  [[nodiscard]] const std::vector<RetainedSeed>& retained_seeds() const {
    return retained_;
  }
  [[nodiscard]] std::size_t path_count() const {
    return executor_.path_count();
  }
  [[nodiscard]] const FuzzerConfig& config() const { return config_; }
  /// Auto-distill passes run so far (distill_interval > 0 only).
  [[nodiscard]] std::uint64_t distill_passes() const {
    return distill_passes_;
  }
  /// Retained seeds pruned by auto-distillation over the campaign.
  [[nodiscard]] std::uint64_t distill_dropped() const {
    return distill_dropped_;
  }

  /// Finalizes the stats series (records a last checkpoint).
  void finish();

  // -- Parallel-campaign hooks (src/parallel/). --
  //
  // These never perturb the fuzzer's own RNG stream: imports queue packets
  // for execution and exports only read. A worker with no peers therefore
  // behaves bit-for-bit like a sequential fuzzer, which is what keeps W=1
  // equal to the sequential engine.

  /// Queues a peer's valuable seed for execution ahead of generation, the
  /// way AFL instances re-execute synced seeds to update their own maps.
  /// Locally repeated packets are skipped by the usual dedup.
  void import_external_seed(Bytes packet);

  /// Seeds queued by import_external_seed and not yet executed.
  [[nodiscard]] std::size_t imported_pending() const {
    return imported_.size();
  }

  /// Returns the valuable seeds retained since the previous call (an
  /// export cursor over the retained pool; eviction-safe). The parallel
  /// worker publishes these to the seed exchange after each sync interval.
  std::vector<RetainedSeed> drain_new_retained();

  /// Mutable corpus access for in-place merges from the seed exchange
  /// (pair with an import-side RNG, never the generation stream).
  [[nodiscard]] PuzzleCorpus& mutable_corpus() { return corpus_; }

  // -- Crash-safe checkpoint/resume (src/supervise/). --

  /// Captures the complete trajectory-relevant state. Call only between
  /// iterations (never from inside an on_exec observer).
  [[nodiscard]] FuzzerCheckpoint capture_checkpoint() const;

  /// Reinstates state captured by capture_checkpoint() on a fuzzer built
  /// with the same target, models and config. Subsequent iterations
  /// reproduce the captured campaign's uninterrupted trajectory
  /// bit-for-bit.
  void restore_checkpoint(const FuzzerCheckpoint& checkpoint);

 private:
  /// CHOOSE(SM): uniformly random model selection.
  const model::DataModel& choose_model();

  /// Produces the next packet according to the active strategy into `out`
  /// (caller-owned scratch; capacity reused across iterations).
  void next_packet_into(const model::DataModel*& used_model, Bytes& out);

  /// Returns true when `packet` was executed before in this campaign
  /// (and records it otherwise).
  bool seen_before(const Bytes& packet);

  /// Minimizes the retained pool in place (FuzzerConfig::distill_interval).
  void auto_distill();

  ProtocolTarget& target_;
  const model::DataModelSet& models_;
  FuzzerConfig config_;
  Rng rng_;
  /// Hashes of executed packets — rules out the "meaningless repetitions
  /// of path exploration" the paper's corpus design targets (§I). Bounded
  /// by the generational half-clear scheme (dedup.hpp).
  GenerationalDedup executed_;

  Executor executor_;
  ModelInstantiator instantiator_;
  /// Session-stream generation (FuzzerConfig::session.enabled only).
  std::unique_ptr<session::SessionSequencer> sequencer_;
  SemanticGenerator semantic_;
  FileCracker cracker_;
  PuzzleCorpus corpus_;
  CrashDb crash_db_;
  StatsSeries stats_;

  std::vector<RetainedSeed> retained_;
  /// Seeds scheduled by the post-crack combinatorial batch.
  std::deque<Bytes> pending_batch_;
  /// ByteMutation strategy's seed pool (AFL-style queue).
  std::vector<Bytes> mutation_pool_;

  /// Peer seeds queued by import_external_seed (drained before generation).
  std::deque<Bytes> imported_;
  /// Iteration scratch reused by step_fast(): the generated packet, the
  /// stacked-mutation ping-pong buffer, and the execution result. Their
  /// capacities converge after warm-up, making the steady-state loop
  /// allocation-free outside rare events (new coverage, crashes).
  Bytes packet_scratch_;
  Bytes mutate_scratch_;
  ExecResult exec_scratch_;
  /// Lifetime count of retained seeds and how many have been exported —
  /// the eviction-safe cursor behind drain_new_retained().
  std::uint64_t total_retained_ = 0;
  std::uint64_t exported_retained_ = 0;
  /// Auto-distillation tallies (distill_interval > 0 only).
  std::uint64_t distill_passes_ = 0;
  std::uint64_t distill_dropped_ = 0;
};

}  // namespace icsfuzz::fuzz
