#include "fuzzer/fuzzer.hpp"

#include <algorithm>
#include <cstdio>

#include "distill/distill.hpp"

namespace icsfuzz::fuzz {
namespace {

/// The executor inherits the fuzzer's telemetry sink so executor-level
/// observables (OOP restarts, kill reasons) land in the same shard. The
/// copy stays out of config_.executor, which is what auto_distill and the
/// final-distill paths hand to their private replay executors — those must
/// stay quiet or distillation would double-count campaign metrics.
ExecutorConfig executor_config_with_telemetry(const FuzzerConfig& config) {
  ExecutorConfig out = config.executor;
  out.telemetry = config.telemetry;
  return out;
}

/// Allocation-free twin of san::to_string for journal details (the event
/// path must not allocate even on the rare unique-crash transitions, so
/// the bench's zero-allocation delta holds exactly).
const char* fault_kind_name(san::FaultKind kind) {
  switch (kind) {
    case san::FaultKind::Segv: return "SEGV";
    case san::FaultKind::HeapBufferOverflow: return "heap-buffer-overflow";
    case san::FaultKind::HeapUseAfterFree: return "heap-use-after-free";
    case san::FaultKind::Hang: return "hang";
  }
  return "?";
}

}  // namespace

std::string to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::Peach: return "Peach";
    case Strategy::PeachStar: return "Peach*";
    case Strategy::ByteMutation: return "ByteMutation";
  }
  return "?";
}

Fuzzer::Fuzzer(ProtocolTarget& target, const model::DataModelSet& models,
               FuzzerConfig config)
    : target_(target),
      models_(models),
      config_(config),
      rng_(config.rng_seed),
      executed_(config.dedup_capacity),
      executor_(executor_config_with_telemetry(config)),
      instantiator_(config.mutators),
      semantic_(config.semantic, config.mutators),
      corpus_(config.corpus),
      stats_(config.stats_interval) {
  if (config_.session.enabled && !models.empty()) {
    sequencer_ = std::make_unique<session::SessionSequencer>(
        config_.session, models_, instantiator_);
  }
}

const model::DataModel& Fuzzer::choose_model() {
  return models_.models()[rng_.index(models_.size())];
}

bool Fuzzer::seen_before(const Bytes& packet) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (std::uint8_t byte : packet) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  }
  // Memory stays bounded via generational half-clears: at least the most
  // recent dedup_capacity/2 packets remain deduplicated at all times.
  return !executed_.insert(hash);
}

void Fuzzer::next_packet_into(const model::DataModel*& used_model,
                              Bytes& out) {
  used_model = nullptr;
  // A few regeneration attempts skip packets already executed — the
  // "meaningless repetitions" the paper's design sets out to rule out.
  constexpr int kDedupAttempts = 4;
  // Peer seeds synced from the exchange run first (for every strategy):
  // executing them locally is what transfers the peer's coverage discovery
  // into this worker's map, corpus and pools.
  while (!imported_.empty()) {
    out = std::move(imported_.front());
    imported_.pop_front();
    if (!seen_before(out)) return;
  }
  if (sequencer_ != nullptr) {
    // Session mode replaces per-packet generation for every strategy: a
    // "packet" is a whole session stream from the sequencer, or a mutation
    // of a retained valuable session (the session-level analogue of the
    // seed-reuse loop). Cracked-batch seeds still run first under
    // PeachStar — they are session streams too, retained ones re-cracked.
    while (config_.strategy == Strategy::PeachStar &&
           !pending_batch_.empty()) {
      out = std::move(pending_batch_.front());
      pending_batch_.pop_front();
      if (!seen_before(out)) return;
    }
    for (int attempt = 0;; ++attempt) {
      if (!retained_.empty() && rng_.chance(30, 100)) {
        const RetainedSeed& seed = rng_.pick(retained_);
        sequencer_->mutate_stream_into(ByteSpan(seed.bytes), rng_, out);
      } else {
        sequencer_->generate_into(rng_, out);
      }
      if (attempt >= kDedupAttempts || !seen_before(out)) return;
    }
  }
  if (config_.strategy == Strategy::PeachStar) {
    // Drain the combinatorial batch scheduled by the last crack first.
    while (!pending_batch_.empty()) {
      out = std::move(pending_batch_.front());
      pending_batch_.pop_front();
      if (!seen_before(out)) return;
    }
    for (int attempt = 0;; ++attempt) {
      const model::DataModel& model = choose_model();
      used_model = &model;
      const bool semantic =
          !corpus_.empty() && rng_.chance(config_.steady_semantic_pct, 100);
      if (semantic) {
        semantic_.generate_into(model, corpus_, rng_, out);
      } else {
        instantiator_.generate_into(model, rng_, out);
      }
      if (attempt >= kDedupAttempts || !seen_before(out)) return;
    }
  }
  if (config_.strategy == Strategy::ByteMutation) {
    // AFL-style: pick a pool seed and stack 1..8 byte-level mutations.
    if (mutation_pool_.empty()) {
      for (const model::DataModel& model : models_.models()) {
        mutation_pool_.push_back(model::default_instance(model).serialize());
      }
    }
    for (int attempt = 0;; ++attempt) {
      const Bytes& seed = rng_.pick(mutation_pool_);
      out.assign(seed.begin(), seed.end());
      const std::uint64_t stack = rng_.between(1, 8);
      for (std::uint64_t i = 0; i < stack; ++i) {
        // Ping-pong with the second scratch buffer: mutate_bytes_into must
        // not read and write the same vector.
        instantiator_.mutators().mutate_bytes_into(out, mutate_scratch_, rng_);
        out.swap(mutate_scratch_);
      }
      if (attempt >= kDedupAttempts || !seen_before(out)) return;
    }
  }
  // Baseline Peach: inherent generation only.
  for (int attempt = 0;; ++attempt) {
    const model::DataModel& model = choose_model();
    used_model = &model;
    instantiator_.generate_into(model, rng_, out);
    if (attempt >= kDedupAttempts || !seen_before(out)) return;
  }
}

ExecResult Fuzzer::step() { return step_fast(); }

const ExecResult& Fuzzer::step_fast() {
  const telem::Sink& telemetry = config_.telemetry;
  const model::DataModel* used_model = nullptr;
  next_packet_into(used_model, packet_scratch_);
  const Bytes& packet = packet_scratch_;
  // Latency is sampled every 64th execution, decided on the execution
  // count — deterministic across repeats — so the ~40ns clock-read pair
  // amortizes to well under a nanosecond of per-execution cost.
  const bool sample_latency =
      telemetry.enabled() &&
      (executor_.executions() & (telem::kLatencySampleInterval - 1)) == 0;
  const std::uint64_t latency_start = sample_latency ? telemetry.now_ns() : 0;
  executor_.run_into(target_, packet, exec_scratch_);
  ExecResult& result = exec_scratch_;

  if (telemetry.enabled()) {
    if (sample_latency) {
      telemetry.observe(telem::Histogram::kExecLatencyNs,
                        telemetry.now_ns() - latency_start);
    }
    telemetry.add(telem::Counter::kExecutions);
    telemetry.observe(telem::Histogram::kPacketBytes, packet.size());
    // The dirty list survives finalize_execution until the next run, so
    // this reads the trace's dirty-word count without an extra sweep.
    telemetry.observe(telem::Histogram::kTraceDirtyWords,
                      executor_.coverage().dirty_word_count());
    if (result.new_path) telemetry.add(telem::Counter::kNewPaths);
    if (result.new_coverage) {
      telemetry.add(telem::Counter::kNewCoverageSeeds);
    }
    // Gauges move only on discoveries, so writing them here (not per
    // execution) keeps the steady-state cost at the branch alone.
    if (result.new_path || result.new_coverage) {
      telemetry.set(telem::Gauge::kPathsCovered, executor_.path_count());
      telemetry.set(telem::Gauge::kEdgesCovered, executor_.edge_count());
    }
  }

  for (const san::FaultReport& fault : result.faults) {
    const bool fresh = crash_db_.record(fault, packet, executor_.executions(),
                                        result.trace_hash);
    if (telemetry.enabled()) {
      const bool hang = fault.kind == san::FaultKind::Hang;
      telemetry.add(hang ? telem::Counter::kHangFaults
                         : telem::Counter::kCrashFaults);
      if (fresh) {
        telemetry.add(telem::Counter::kUniqueCrashes);
        char detail[48];
        std::snprintf(detail, sizeof detail, "%s site=%08x",
                      fault_kind_name(fault.kind), fault.site);
        telemetry.event(hang ? telem::EventType::kHang
                             : telem::EventType::kCrash,
                        content_hash(packet), detail);
      }
    }
  }

  if (config_.strategy == Strategy::ByteMutation && result.new_coverage) {
    // AFL-style queue growth: interesting inputs become future seeds.
    constexpr std::size_t kPoolCap = 2048;
    if (mutation_pool_.size() >= kPoolCap) {
      mutation_pool_[rng_.index(mutation_pool_.size())] = packet;
    } else {
      mutation_pool_.push_back(packet);
    }
  }

  const bool crack_now =
      config_.strategy == Strategy::PeachStar &&
      (result.new_coverage || config_.crack_all_seeds);
  if (crack_now) {
    // Valuable seed: retain it, crack it into puzzles, and schedule the
    // combinatorial batch against the *other* data models so the donated
    // pieces transfer across packet types.
    if (result.new_coverage) {
      if (retained_.size() >= config_.max_retained_seeds) {
        retained_.erase(retained_.begin());
      }
      retained_.push_back(RetainedSeed{
          packet, used_model != nullptr ? used_model->name() : std::string{},
          executor_.executions()});
      ++total_retained_;
    }

    const CrackStats crack_stats =
        cracker_.crack(models_, packet, corpus_, rng_);
    if (telemetry.enabled()) telemetry.add(telem::Counter::kCrackRuns);

    // Schedule the combinatorial batch only when the crack contributed new
    // puzzles: a crack that changed nothing would replay known material.
    if (result.new_coverage && crack_stats.puzzles_added > 0) {
      const model::DataModel& donor_target = choose_model();
      std::vector<Bytes> batch =
          semantic_.generate_batch(donor_target, corpus_, rng_);
      if (telemetry.enabled()) {
        telemetry.add(telem::Counter::kBatchSeeds, batch.size());
      }
      for (Bytes& seed : batch) pending_batch_.push_back(std::move(seed));
    }
    if (telemetry.enabled()) {
      telemetry.set(telem::Gauge::kRetainedSeeds, retained_.size());
      telemetry.set(telem::Gauge::kCorpusPuzzles, corpus_.size());
    }
  }

  // The interval check runs here (due()) so the telemetry clock is read
  // only at checkpoint boundaries, never per execution.
  if (stats_.due(executor_.executions())) {
    stats_.tick(executor_.executions(), executor_.path_count(),
                executor_.edge_count(), crash_db_.unique_count(),
                corpus_.size(), telemetry.now_ns());
  }

  if (config_.distill_interval != 0 && retained_.size() > 1 &&
      executor_.executions() % config_.distill_interval == 0) {
    auto_distill();
  }
  return result;
}

void Fuzzer::auto_distill() {
  // Replays go through a private executor: the campaign's accumulated map,
  // path set and execution counter stay untouched, and cmin draws no
  // randomness, so the fuzzing trajectory is identical with or without
  // auto-distillation.
  std::vector<Bytes> seeds;
  seeds.reserve(retained_.size());
  for (const RetainedSeed& seed : retained_) seeds.push_back(seed.bytes);

  distill::CminConfig config;
  config.executor = config_.executor;  // telemetry-free replay executor
  const distill::CminResult result = distill::cmin(target_, seeds, config);
  ++distill_passes_;
  const telem::Sink& telemetry = config_.telemetry;
  if (telemetry.enabled()) {
    telemetry.add(telem::Counter::kDistillPasses);
    char detail[48];
    std::snprintf(detail, sizeof detail, "kept=%zu dropped=%zu",
                  result.kept.size(), retained_.size() - result.kept.size());
    telemetry.event(telem::EventType::kDistill, 0, detail);
  }
  if (result.kept.size() == retained_.size()) return;

  std::vector<RetainedSeed> kept;
  kept.reserve(result.kept.size());
  for (const std::size_t index : result.kept) {
    kept.push_back(std::move(retained_[index]));
  }
  distill_dropped_ += retained_.size() - kept.size();
  if (telemetry.enabled()) {
    telemetry.add(telem::Counter::kDistillDroppedSeeds,
                  retained_.size() - kept.size());
  }
  // Order (and therefore the newest-at-the-back property the export cursor
  // relies on) is preserved: kept indices are ascending. A pruned
  // not-yet-exported seed may cause one extra re-publish of an older seed;
  // the exchange's content dedup absorbs it.
  retained_ = std::move(kept);
}

void Fuzzer::run(std::uint64_t iterations,
                 const std::function<void(const ExecResult&)>& on_exec) {
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const ExecResult& result = step_fast();
    if (on_exec) on_exec(result);
  }
  finish();
}

void Fuzzer::finish() {
  stats_.finalize(executor_.executions(), executor_.path_count(),
                  executor_.edge_count(), crash_db_.unique_count(),
                  corpus_.size(), config_.telemetry.now_ns());
}

void Fuzzer::import_external_seed(Bytes packet) {
  config_.telemetry.add(telem::Counter::kImportedSeeds);
  imported_.push_back(std::move(packet));
}

FuzzerCheckpoint Fuzzer::capture_checkpoint() const {
  FuzzerCheckpoint cp;
  cp.rng = rng_.state();
  cp.dedup_current.assign(executed_.current_generation().begin(),
                          executed_.current_generation().end());
  cp.dedup_previous.assign(executed_.previous_generation().begin(),
                           executed_.previous_generation().end());
  std::sort(cp.dedup_current.begin(), cp.dedup_current.end());
  std::sort(cp.dedup_previous.begin(), cp.dedup_previous.end());
  cp.corpus = corpus_.snapshot();
  for (const CrashRecord* record : crash_db_.records()) {
    cp.crashes.push_back(*record);
  }
  cp.stats_points = stats_.checkpoints();
  cp.retained = retained_;
  cp.pending_batch.assign(pending_batch_.begin(), pending_batch_.end());
  cp.mutation_pool = mutation_pool_;
  cp.imported.assign(imported_.begin(), imported_.end());
  cp.total_retained = total_retained_;
  cp.exported_retained = exported_retained_;
  cp.distill_passes = distill_passes_;
  cp.distill_dropped = distill_dropped_;
  cp.executions = executor_.executions();
  cp.coverage = executor_.coverage().snapshot_accumulated();
  cp.path_hashes = executor_.paths().snapshot();
  std::sort(cp.path_hashes.begin(), cp.path_hashes.end());
  cp.session_states = executor_.session_states_snapshot();
  return cp;
}

void Fuzzer::restore_checkpoint(const FuzzerCheckpoint& cp) {
  rng_.set_state(cp.rng);
  executed_.restore_generations(
      std::unordered_set<std::uint64_t>(cp.dedup_current.begin(),
                                        cp.dedup_current.end()),
      std::unordered_set<std::uint64_t>(cp.dedup_previous.begin(),
                                        cp.dedup_previous.end()));
  corpus_.restore(cp.corpus);
  crash_db_.clear();
  for (const CrashRecord& record : cp.crashes) crash_db_.restore(record);
  stats_.restore(cp.stats_points);
  retained_ = cp.retained;
  pending_batch_.assign(cp.pending_batch.begin(), cp.pending_batch.end());
  mutation_pool_ = cp.mutation_pool;
  imported_.assign(cp.imported.begin(), cp.imported.end());
  total_retained_ = cp.total_retained;
  exported_retained_ = cp.exported_retained;
  distill_passes_ = cp.distill_passes;
  distill_dropped_ = cp.distill_dropped;
  executor_.restore_campaign(
      cp.executions, cp.coverage.empty() ? nullptr : cp.coverage.data(),
      cp.path_hashes, cp.session_states);
}

std::vector<RetainedSeed> Fuzzer::drain_new_retained() {
  // `retained_` may have evicted old entries since the last drain, but the
  // newest seeds are always at the back; the lifetime counters say how many
  // of them are unexported.
  const std::uint64_t fresh = total_retained_ - exported_retained_;
  exported_retained_ = total_retained_;
  const std::size_t take =
      std::min(retained_.size(), static_cast<std::size_t>(fresh));
  return std::vector<RetainedSeed>(retained_.end() - take, retained_.end());
}

}  // namespace icsfuzz::fuzz
