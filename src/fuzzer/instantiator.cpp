#include "fuzzer/instantiator.hpp"

#include <functional>

namespace icsfuzz::fuzz {

model::InsNode ModelInstantiator::build(const model::Chunk& chunk,
                                        Rng& rng) const {
  model::InsNode node;
  node.rule = &chunk;
  switch (chunk.kind()) {
    case model::ChunkKind::Number:
    case model::ChunkKind::String:
    case model::ChunkKind::Blob:
      node.content = mutators_.generate_leaf(chunk, rng);
      break;
    case model::ChunkKind::Block:
      for (const model::Chunk& child : chunk.children()) {
        node.children.push_back(build(child, rng));
      }
      break;
    case model::ChunkKind::Choice: {
      const std::size_t pick = rng.index(chunk.children().size());
      node.choice_index = pick;
      node.children.push_back(build(chunk.children()[pick], rng));
      break;
    }
  }
  return node;
}

model::InsNode ModelInstantiator::build_defaults(const model::Chunk& chunk,
                                                 Rng& rng) const {
  model::InsNode node;
  node.rule = &chunk;
  switch (chunk.kind()) {
    case model::ChunkKind::Number: {
      const model::NumberSpec& spec = chunk.number_spec();
      node.content = encode_uint(spec.default_value, spec.width, spec.endian);
      break;
    }
    case model::ChunkKind::String: {
      const model::StringSpec& spec = chunk.string_spec();
      std::string text = spec.default_value;
      if (spec.length) text.resize(*spec.length, ' ');
      node.content = to_bytes(text);
      if (spec.null_terminated) node.content.push_back(0);
      break;
    }
    case model::ChunkKind::Blob: {
      const model::BlobSpec& spec = chunk.blob_spec();
      node.content = spec.default_value;
      if (spec.length) node.content.resize(*spec.length, 0);
      break;
    }
    case model::ChunkKind::Block:
      for (const model::Chunk& child : chunk.children()) {
        node.children.push_back(build_defaults(child, rng));
      }
      break;
    case model::ChunkKind::Choice: {
      const std::size_t pick = rng.index(chunk.children().size());
      node.choice_index = pick;
      node.children.push_back(build_defaults(chunk.children()[pick], rng));
      break;
    }
  }
  return node;
}

std::vector<model::InsNode*> ModelInstantiator::free_leaves(
    model::InsNode& root) {
  std::vector<model::InsNode*> out;
  const std::function<void(model::InsNode&)> visit = [&](model::InsNode& node) {
    if (node.rule != nullptr && node.rule->is_leaf()) {
      const bool derived =
          node.rule->kind() == model::ChunkKind::Number &&
          (node.rule->number_spec().is_token ||
           node.rule->relation().active() || node.rule->fixup().active());
      if (!derived) out.push_back(&node);
      return;
    }
    for (model::InsNode& child : node.children) visit(child);
  };
  visit(root);
  return out;
}

model::InsTree ModelInstantiator::instantiate(const model::DataModel& model,
                                              Rng& rng) const {
  model::InsTree tree;
  tree.model = &model;
  if (rng.chance(config_.sequential_mode_pct, 100)) {
    // Peach's sequential profile: every field at its default, then 1-2
    // randomly chosen free fields take aggressive values.
    tree.root = build_defaults(model.root(), rng);
    std::vector<model::InsNode*> leaves = free_leaves(tree.root);
    if (!leaves.empty()) {
      const std::size_t perturbations =
          rng.chance(1, 3) && leaves.size() > 1 ? 2 : 1;
      for (std::size_t i = 0; i < perturbations; ++i) {
        model::InsNode* leaf = rng.pick(leaves);
        leaf->content = mutators_.generate_leaf(*leaf->rule, rng);
      }
    }
  } else {
    // Independent regeneration of every field.
    tree.root = build(model.root(), rng);
  }
  model::apply_constraints(tree);
  return tree;
}

Bytes ModelInstantiator::generate(const model::DataModel& model,
                                  Rng& rng) const {
  return instantiate(model, rng).serialize();
}

void ModelInstantiator::generate_into(const model::DataModel& model, Rng& rng,
                                      Bytes& out) const {
  instantiate(model, rng).serialize_into(out);
}

}  // namespace icsfuzz::fuzz
