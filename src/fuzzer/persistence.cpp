#include "fuzzer/persistence.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "util/hexdump.hpp"
#include "util/json.hpp"

namespace icsfuzz::fuzz {
namespace {

namespace fs = std::filesystem;

bool write_file(const fs::path& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

bool write_text(const fs::path& path, const std::string& text) {
  return write_file(path,
                    ByteSpan(reinterpret_cast<const std::uint8_t*>(text.data()),
                             text.size()));
}

std::optional<Bytes> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return data;
}

std::string site_hex(std::uint32_t site) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "%08x", site);
  return buffer;
}

}  // namespace

std::string render_summary(const Fuzzer& fuzzer) {
  std::string out;
  out += "strategy        : " + to_string(fuzzer.config().strategy) + "\n";
  out += "executions      : " + std::to_string(fuzzer.executor().executions()) + "\n";
  out += "paths covered   : " + std::to_string(fuzzer.path_count()) + "\n";
  out += "edges covered   : " + std::to_string(fuzzer.executor().edge_count()) + "\n";
  out += "valuable seeds  : " + std::to_string(fuzzer.retained_seeds().size()) + "\n";
  out += "puzzle corpus   : " + std::to_string(fuzzer.corpus().size()) +
         " puzzles / " + std::to_string(fuzzer.corpus().rule_count()) +
         " rules\n";
  out += "unique crashes  : " + std::to_string(fuzzer.crashes().unique_count()) + "\n";
  for (const CrashRecord* crash : fuzzer.crashes().records()) {
    out += "  [" + san::to_string(crash->kind) + "] site " +
           site_hex(crash->site) + " first at execution " +
           std::to_string(crash->first_execution) + " (" +
           std::to_string(crash->hits) + " hits)\n    " + crash->detail + "\n";
  }
  return out;
}

std::optional<std::string> save_session(const Fuzzer& fuzzer,
                                        const std::string& directory) {
  std::error_code error;
  const fs::path root(directory);
  fs::create_directories(root / "crashes", error);
  fs::create_directories(root / "seeds", error);
  if (error) return "cannot create session directory: " + error.message();

  for (const CrashRecord* crash : fuzzer.crashes().records()) {
    const std::string stem =
        san::to_slug(crash->kind) + "-" + site_hex(crash->site);
    if (!write_file(root / "crashes" / (stem + ".bin"), crash->reproducer)) {
      return "cannot write crash reproducer " + stem;
    }
    std::string meta;
    meta += "kind  : " + san::to_string(crash->kind) + "\n";
    meta += "site  : " + site_hex(crash->site) + "\n";
    meta += "detail: " + crash->detail + "\n";
    meta += "first : execution " + std::to_string(crash->first_execution) + "\n";
    meta += "hits  : " + std::to_string(crash->hits) + "\n";
    meta += "bytes : " + std::to_string(crash->reproducer.size()) + "\n\n";
    meta += hexdump(crash->reproducer);
    if (!write_text(root / "crashes" / (stem + ".txt"), meta)) {
      return "cannot write crash metadata " + stem;
    }
  }

  std::size_t index = 0;
  for (const RetainedSeed& seed : fuzzer.retained_seeds()) {
    char name[32];
    std::snprintf(name, sizeof name, "seed-%05zu.bin", index++);
    if (!write_file(root / "seeds" / name, seed.bytes)) {
      return std::string("cannot write ") + name;
    }
  }

  if (!write_text(root / "crashes.jsonl",
                  crash_db_to_jsonl(fuzzer.crashes()))) {
    return "cannot write crashes.jsonl";
  }

  if (!write_text(root / "stats.csv", fuzzer.stats().to_csv())) {
    return "cannot write stats.csv";
  }
  if (!write_text(root / "summary.txt", render_summary(fuzzer))) {
    return "cannot write summary.txt";
  }

  // Telemetry artefacts: the hub-wide final snapshot and the event
  // journal. The hub may be shared (the process-global default, or one hub
  // across a parallel campaign's workers), in which case this records the
  // campaign-wide view rather than this fuzzer's slice alone.
  if (const telem::Telemetry* hub = fuzzer.config().telemetry.hub()) {
    if (!write_text(root / "telemetry.json",
                    telem::to_json(hub->snapshot()))) {
      return "cannot write telemetry.json";
    }
    if (!write_text(root / "journal.jsonl", hub->journal().to_jsonl())) {
      return "cannot write journal.jsonl";
    }
  }
  return std::nullopt;
}

std::vector<telem::Event> load_journal(const std::string& directory) {
  const auto data = read_file(fs::path(directory) / "journal.jsonl");
  if (!data) return {};
  return telem::EventJournal::from_jsonl(std::string_view(
      reinterpret_cast<const char*>(data->data()), data->size()));
}

std::optional<telem::Snapshot> load_telemetry_snapshot(
    const std::string& directory) {
  const auto data = read_file(fs::path(directory) / "telemetry.json");
  if (!data) return std::nullopt;
  return telem::snapshot_from_json(std::string_view(
      reinterpret_cast<const char*>(data->data()), data->size()));
}

std::optional<std::string> save_distilled_corpus(
    const std::string& directory, const std::vector<Bytes>& seeds,
    const distill::ReplayReport& report) {
  std::error_code error;
  const fs::path root(directory);
  fs::create_directories(root, error);
  if (error) return "cannot create corpus directory: " + error.message();

  // A re-save into the same directory must fully replace the corpus:
  // stale seed files would be globbed back in by load_distilled_corpus
  // and falsify the fresh manifest.
  for (const auto& entry : fs::directory_iterator(root, error)) {
    if (entry.path().extension() == ".bin") {
      std::error_code ignored;
      fs::remove(entry.path(), ignored);
    }
  }

  std::size_t index = 0;
  for (const Bytes& seed : seeds) {
    char name[32];
    std::snprintf(name, sizeof name, "seed-%05zu.bin", index++);
    if (!write_file(root / name, seed)) {
      return std::string("cannot write ") + name;
    }
  }

  char manifest[512];
  std::snprintf(manifest, sizeof manifest,
                "icsfuzz-distilled-corpus v1\n"
                "seeds %zu\n"
                "executions %llu\n"
                "edges %zu\n"
                "paths %zu\n"
                "crashes %zu\n"
                "map_fingerprint %016llx\n"
                "path_fingerprint %016llx\n",
                seeds.size(),
                static_cast<unsigned long long>(report.executions),
                report.edges, report.paths, report.crashes,
                static_cast<unsigned long long>(report.map_fingerprint),
                static_cast<unsigned long long>(report.path_fingerprint));
  if (!write_text(root / "MANIFEST.txt", manifest)) {
    return "cannot write MANIFEST.txt";
  }
  return std::nullopt;
}

LoadedCorpus load_distilled_corpus(const std::string& directory) {
  LoadedCorpus corpus;
  std::error_code error;
  const fs::path root(directory);
  if (!fs::is_directory(root, error)) return corpus;

  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(root, error)) {
    if (entry.path().extension() == ".bin") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& path : paths) {
    if (auto data = read_file(path)) corpus.seeds.push_back(std::move(*data));
  }

  std::ifstream manifest(root / "MANIFEST.txt");
  if (manifest) {
    std::string header;
    std::getline(manifest, header);
    if (header.rfind("icsfuzz-distilled-corpus", 0) == 0) {
      corpus.has_manifest = true;
      std::string key;
      while (manifest >> key) {
        if (key == "seeds") manifest >> corpus.expected.seeds;
        else if (key == "executions") manifest >> corpus.expected.executions;
        else if (key == "edges") manifest >> corpus.expected.edges;
        else if (key == "paths") manifest >> corpus.expected.paths;
        else if (key == "crashes") manifest >> corpus.expected.crashes;
        else if (key == "map_fingerprint") {
          manifest >> std::hex >> corpus.expected.map_fingerprint >> std::dec;
        } else if (key == "path_fingerprint") {
          manifest >> std::hex >> corpus.expected.path_fingerprint >> std::dec;
        } else {
          std::string skipped;
          manifest >> skipped;
        }
      }
    }
  }
  return corpus;
}

std::vector<LoadedCrash> load_crashes(const std::string& directory) {
  std::vector<LoadedCrash> out;
  std::error_code error;
  const fs::path dir = fs::path(directory) / "crashes";
  if (!fs::is_directory(dir, error)) return out;
  for (const auto& entry : fs::directory_iterator(dir, error)) {
    if (entry.path().extension() != ".bin") continue;
    if (auto data = read_file(entry.path())) {
      out.push_back({entry.path().stem().string(), std::move(*data)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LoadedCrash& a, const LoadedCrash& b) {
              return a.file_stem < b.file_stem;
            });
  return out;
}

std::string crash_db_to_jsonl(const CrashDb& db) {
  std::string out;
  for (const CrashRecord* record : db.records()) {
    char head[128];
    std::snprintf(head, sizeof head,
                  "{\"kind\":\"%s\",\"site\":\"%08x\","
                  "\"trace_hash\":\"%016llx\",\"hits\":%llu,"
                  "\"first_execution\":%llu,",
                  san::to_slug(record->kind).c_str(), record->site,
                  static_cast<unsigned long long>(record->trace_hash),
                  static_cast<unsigned long long>(record->hits),
                  static_cast<unsigned long long>(record->first_execution));
    out += head;
    out += "\"detail\":\"" + json_escape(record->detail) +
           "\",\"reproducer\":\"" + to_hex(record->reproducer) + "\"}\n";
  }
  return out;
}

std::size_t crash_db_from_jsonl(std::string_view text, CrashDb& db) {
  std::size_t restored = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    const std::optional<JsonValue> doc = json_parse(line);
    if (!doc || !doc->is_object()) continue;
    const JsonValue* kind = doc->find("kind");
    const JsonValue* site = doc->find("site");
    const JsonValue* trace = doc->find("trace_hash");
    const JsonValue* hits = doc->find("hits");
    const JsonValue* first = doc->find("first_execution");
    const JsonValue* detail = doc->find("detail");
    const JsonValue* reproducer = doc->find("reproducer");
    if (kind == nullptr || !kind->is_string() || site == nullptr ||
        !site->is_string() || hits == nullptr || !hits->is_u64 ||
        first == nullptr || !first->is_u64) {
      continue;
    }
    const std::optional<san::FaultKind> parsed_kind =
        san::kind_from_slug(kind->string);
    if (!parsed_kind) continue;
    CrashRecord record;
    record.kind = *parsed_kind;
    record.site = static_cast<std::uint32_t>(
        std::strtoul(site->string.c_str(), nullptr, 16));
    if (trace != nullptr && trace->is_string()) {
      record.trace_hash = std::strtoull(trace->string.c_str(), nullptr, 16);
    }
    record.hits = hits->u64;
    record.first_execution = first->u64;
    if (detail != nullptr && detail->is_string()) {
      record.detail = detail->string;
    }
    if (reproducer != nullptr && reproducer->is_string()) {
      record.reproducer = from_hex(reproducer->string);
    }
    db.restore(record);
    ++restored;
  }
  return restored;
}

std::optional<std::string> save_crash_db(const CrashDb& db,
                                         const std::string& path) {
  if (!write_text(path, crash_db_to_jsonl(db))) {
    return "cannot write " + path;
  }
  return std::nullopt;
}

std::size_t load_crash_db(const std::string& path, CrashDb& db) {
  const auto data = read_file(path);
  if (!data) return 0;
  return crash_db_from_jsonl(
      std::string_view(reinterpret_cast<const char*>(data->data()),
                       data->size()),
      db);
}

std::vector<Bytes> load_seeds(const std::string& directory) {
  std::vector<Bytes> out;
  std::error_code error;
  const fs::path dir = fs::path(directory) / "seeds";
  if (!fs::is_directory(dir, error)) return out;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir, error)) {
    if (entry.path().extension() == ".bin") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& path : paths) {
    if (auto data = read_file(path)) out.push_back(std::move(*data));
  }
  return out;
}

}  // namespace icsfuzz::fuzz
