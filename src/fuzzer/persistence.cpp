#include "fuzzer/persistence.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "util/hexdump.hpp"

namespace icsfuzz::fuzz {
namespace {

namespace fs = std::filesystem;

bool write_file(const fs::path& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

bool write_text(const fs::path& path, const std::string& text) {
  return write_file(path,
                    ByteSpan(reinterpret_cast<const std::uint8_t*>(text.data()),
                             text.size()));
}

std::optional<Bytes> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return data;
}

std::string kind_slug(san::FaultKind kind) {
  switch (kind) {
    case san::FaultKind::Segv: return "segv";
    case san::FaultKind::HeapBufferOverflow: return "heap-overflow";
    case san::FaultKind::HeapUseAfterFree: return "heap-uaf";
    case san::FaultKind::Hang: return "hang";
  }
  return "unknown";
}

std::string site_hex(std::uint32_t site) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "%08x", site);
  return buffer;
}

}  // namespace

std::string render_summary(const Fuzzer& fuzzer) {
  std::string out;
  out += "strategy        : " + to_string(fuzzer.config().strategy) + "\n";
  out += "executions      : " + std::to_string(fuzzer.executor().executions()) + "\n";
  out += "paths covered   : " + std::to_string(fuzzer.path_count()) + "\n";
  out += "edges covered   : " + std::to_string(fuzzer.executor().edge_count()) + "\n";
  out += "valuable seeds  : " + std::to_string(fuzzer.retained_seeds().size()) + "\n";
  out += "puzzle corpus   : " + std::to_string(fuzzer.corpus().size()) +
         " puzzles / " + std::to_string(fuzzer.corpus().rule_count()) +
         " rules\n";
  out += "unique crashes  : " + std::to_string(fuzzer.crashes().unique_count()) + "\n";
  for (const CrashRecord* crash : fuzzer.crashes().records()) {
    out += "  [" + san::to_string(crash->kind) + "] site " +
           site_hex(crash->site) + " first at execution " +
           std::to_string(crash->first_execution) + " (" +
           std::to_string(crash->hits) + " hits)\n    " + crash->detail + "\n";
  }
  return out;
}

std::optional<std::string> save_session(const Fuzzer& fuzzer,
                                        const std::string& directory) {
  std::error_code error;
  const fs::path root(directory);
  fs::create_directories(root / "crashes", error);
  fs::create_directories(root / "seeds", error);
  if (error) return "cannot create session directory: " + error.message();

  for (const CrashRecord* crash : fuzzer.crashes().records()) {
    const std::string stem = kind_slug(crash->kind) + "-" + site_hex(crash->site);
    if (!write_file(root / "crashes" / (stem + ".bin"), crash->reproducer)) {
      return "cannot write crash reproducer " + stem;
    }
    std::string meta;
    meta += "kind  : " + san::to_string(crash->kind) + "\n";
    meta += "site  : " + site_hex(crash->site) + "\n";
    meta += "detail: " + crash->detail + "\n";
    meta += "first : execution " + std::to_string(crash->first_execution) + "\n";
    meta += "hits  : " + std::to_string(crash->hits) + "\n";
    meta += "bytes : " + std::to_string(crash->reproducer.size()) + "\n\n";
    meta += hexdump(crash->reproducer);
    if (!write_text(root / "crashes" / (stem + ".txt"), meta)) {
      return "cannot write crash metadata " + stem;
    }
  }

  std::size_t index = 0;
  for (const RetainedSeed& seed : fuzzer.retained_seeds()) {
    char name[32];
    std::snprintf(name, sizeof name, "seed-%05zu.bin", index++);
    if (!write_file(root / "seeds" / name, seed.bytes)) {
      return std::string("cannot write ") + name;
    }
  }

  if (!write_text(root / "stats.csv", fuzzer.stats().to_csv())) {
    return "cannot write stats.csv";
  }
  if (!write_text(root / "summary.txt", render_summary(fuzzer))) {
    return "cannot write summary.txt";
  }

  // Telemetry artefacts: the hub-wide final snapshot and the event
  // journal. The hub may be shared (the process-global default, or one hub
  // across a parallel campaign's workers), in which case this records the
  // campaign-wide view rather than this fuzzer's slice alone.
  if (const telem::Telemetry* hub = fuzzer.config().telemetry.hub()) {
    if (!write_text(root / "telemetry.json",
                    telem::to_json(hub->snapshot()))) {
      return "cannot write telemetry.json";
    }
    if (!write_text(root / "journal.jsonl", hub->journal().to_jsonl())) {
      return "cannot write journal.jsonl";
    }
  }
  return std::nullopt;
}

std::vector<telem::Event> load_journal(const std::string& directory) {
  const auto data = read_file(fs::path(directory) / "journal.jsonl");
  if (!data) return {};
  return telem::EventJournal::from_jsonl(std::string_view(
      reinterpret_cast<const char*>(data->data()), data->size()));
}

std::optional<telem::Snapshot> load_telemetry_snapshot(
    const std::string& directory) {
  const auto data = read_file(fs::path(directory) / "telemetry.json");
  if (!data) return std::nullopt;
  return telem::snapshot_from_json(std::string_view(
      reinterpret_cast<const char*>(data->data()), data->size()));
}

std::optional<std::string> save_distilled_corpus(
    const std::string& directory, const std::vector<Bytes>& seeds,
    const distill::ReplayReport& report) {
  std::error_code error;
  const fs::path root(directory);
  fs::create_directories(root, error);
  if (error) return "cannot create corpus directory: " + error.message();

  // A re-save into the same directory must fully replace the corpus:
  // stale seed files would be globbed back in by load_distilled_corpus
  // and falsify the fresh manifest.
  for (const auto& entry : fs::directory_iterator(root, error)) {
    if (entry.path().extension() == ".bin") {
      std::error_code ignored;
      fs::remove(entry.path(), ignored);
    }
  }

  std::size_t index = 0;
  for (const Bytes& seed : seeds) {
    char name[32];
    std::snprintf(name, sizeof name, "seed-%05zu.bin", index++);
    if (!write_file(root / name, seed)) {
      return std::string("cannot write ") + name;
    }
  }

  char manifest[512];
  std::snprintf(manifest, sizeof manifest,
                "icsfuzz-distilled-corpus v1\n"
                "seeds %zu\n"
                "executions %llu\n"
                "edges %zu\n"
                "paths %zu\n"
                "crashes %zu\n"
                "map_fingerprint %016llx\n"
                "path_fingerprint %016llx\n",
                seeds.size(),
                static_cast<unsigned long long>(report.executions),
                report.edges, report.paths, report.crashes,
                static_cast<unsigned long long>(report.map_fingerprint),
                static_cast<unsigned long long>(report.path_fingerprint));
  if (!write_text(root / "MANIFEST.txt", manifest)) {
    return "cannot write MANIFEST.txt";
  }
  return std::nullopt;
}

LoadedCorpus load_distilled_corpus(const std::string& directory) {
  LoadedCorpus corpus;
  std::error_code error;
  const fs::path root(directory);
  if (!fs::is_directory(root, error)) return corpus;

  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(root, error)) {
    if (entry.path().extension() == ".bin") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& path : paths) {
    if (auto data = read_file(path)) corpus.seeds.push_back(std::move(*data));
  }

  std::ifstream manifest(root / "MANIFEST.txt");
  if (manifest) {
    std::string header;
    std::getline(manifest, header);
    if (header.rfind("icsfuzz-distilled-corpus", 0) == 0) {
      corpus.has_manifest = true;
      std::string key;
      while (manifest >> key) {
        if (key == "seeds") manifest >> corpus.expected.seeds;
        else if (key == "executions") manifest >> corpus.expected.executions;
        else if (key == "edges") manifest >> corpus.expected.edges;
        else if (key == "paths") manifest >> corpus.expected.paths;
        else if (key == "crashes") manifest >> corpus.expected.crashes;
        else if (key == "map_fingerprint") {
          manifest >> std::hex >> corpus.expected.map_fingerprint >> std::dec;
        } else if (key == "path_fingerprint") {
          manifest >> std::hex >> corpus.expected.path_fingerprint >> std::dec;
        } else {
          std::string skipped;
          manifest >> skipped;
        }
      }
    }
  }
  return corpus;
}

std::vector<LoadedCrash> load_crashes(const std::string& directory) {
  std::vector<LoadedCrash> out;
  std::error_code error;
  const fs::path dir = fs::path(directory) / "crashes";
  if (!fs::is_directory(dir, error)) return out;
  for (const auto& entry : fs::directory_iterator(dir, error)) {
    if (entry.path().extension() != ".bin") continue;
    if (auto data = read_file(entry.path())) {
      out.push_back({entry.path().stem().string(), std::move(*data)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LoadedCrash& a, const LoadedCrash& b) {
              return a.file_stem < b.file_stem;
            });
  return out;
}

std::vector<Bytes> load_seeds(const std::string& directory) {
  std::vector<Bytes> out;
  std::error_code error;
  const fs::path dir = fs::path(directory) / "seeds";
  if (!fs::is_directory(dir, error)) return out;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir, error)) {
    if (entry.path().extension() == ".bin") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& path : paths) {
    if (auto data = read_file(path)) out.push_back(std::move(*data));
  }
  return out;
}

}  // namespace icsfuzz::fuzz
