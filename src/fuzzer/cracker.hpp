// File Cracker — Algorithm 2 of the paper.
//
// Given a valuable seed, try to PARSE it against every data model of the
// format specification; for each legal parse, walk the instantiation tree
// by DFS and register every sub-tree's serialized bytes as a puzzle in the
// corpus (leaves contribute their content, internal nodes the in-order
// concatenation of their children — Definition 2).
#pragma once

#include "fuzzer/corpus.hpp"
#include "model/data_model.hpp"
#include "model/instantiation.hpp"
#include "util/rng.hpp"

namespace icsfuzz::fuzz {

struct CrackStats {
  std::size_t models_parsed = 0;   // models whose PARSE was legal
  std::size_t puzzles_added = 0;   // new corpus entries
  std::size_t puzzles_seen = 0;    // total sub-trees visited
};

class FileCracker {
 public:
  /// `options` controls the LEGAL test (full consumption + verified
  /// relations/fixups by default, as generated packets satisfy them).
  explicit FileCracker(model::ParseOptions options = {}) : options_(options) {}

  /// Cracks `seed` against every model in `models`, adding puzzles to
  /// `corpus`. Returns per-crack statistics.
  CrackStats crack(const model::DataModelSet& models, ByteSpan seed,
                   PuzzleCorpus& corpus, Rng& rng) const;

  /// Cracks against a single model (exposed for tests and the examples).
  CrackStats crack_one(const model::DataModel& model, ByteSpan seed,
                       PuzzleCorpus& corpus, Rng& rng) const;

 private:
  void collect(const model::InsNode& node, PuzzleCorpus& corpus, Rng& rng,
               CrackStats& stats) const;

  model::ParseOptions options_;
};

}  // namespace icsfuzz::fuzz
