// CrashDb — the C7 set of the paper's Algorithm 1 plus unique-bug
// accounting: faults are deduplicated by (kind, site), mirroring how the
// paper counts "unique bugs" from ASan crash sites (Table I).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sanitizer/fault.hpp"
#include "util/bytes.hpp"

namespace icsfuzz::fuzz {

/// One deduplicated vulnerability.
struct CrashRecord {
  san::FaultKind kind = san::FaultKind::Segv;
  std::uint32_t site = 0;
  std::string detail;        // first-seen diagnostic
  Bytes reproducer;          // first packet that triggered it
  std::uint64_t hits = 0;    // total triggering executions
  std::uint64_t first_execution = 0;  // execution index of discovery
  /// Coverage fingerprint (trace hash) of the first triggering execution;
  /// 0 when the recorder had none. Together with (kind, site) this is the
  /// triage-store bucket identity.
  std::uint64_t trace_hash = 0;
};

class CrashDb {
 public:
  /// Records a fault raised by `packet` at execution `execution_index`.
  /// Returns true when this (kind, site) pair is new — a previously
  /// unknown vulnerability in the paper's terms. `trace_hash` is the
  /// execution's coverage fingerprint (kept from the first sighting only).
  bool record(const san::FaultReport& fault, ByteSpan packet,
              std::uint64_t execution_index, std::uint64_t trace_hash = 0);

  [[nodiscard]] std::size_t unique_count() const { return records_.size(); }

  /// Unique crashes excluding hangs (Table I counts memory-safety bugs).
  [[nodiscard]] std::size_t unique_memory_faults() const;

  /// All records in discovery order.
  [[nodiscard]] std::vector<const CrashRecord*> records() const;

  /// Per-kind tally (for the Table I "Number" column).
  [[nodiscard]] std::map<san::FaultKind, std::size_t> by_kind() const;

  void clear() { records_.clear(); }

  /// Checkpoint/resume and persistence-load path: reinstates a record
  /// verbatim — hits, first_execution, and trace_hash are preserved, NOT
  /// re-counted the way record() would (the parallel campaign's pooled
  /// re-record resets hits; restore must not). An existing (kind, site)
  /// entry is overwritten.
  void restore(const CrashRecord& record);

 private:
  // Keyed by (kind, site); std::map keeps report ordering stable.
  std::map<std::pair<std::uint8_t, std::uint32_t>, CrashRecord> records_;
};

}  // namespace icsfuzz::fuzz
