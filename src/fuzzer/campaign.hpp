// Campaign harness — runs the A/B experiment of the paper's §V: Peach vs
// Peach* on one protocol target, N repetitions each, and derives the
// Figure 4 series plus the headline scalars (speedup to equal coverage,
// final path increase, vulnerabilities found).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "fuzzer/fuzzer.hpp"

namespace icsfuzz::fuzz {

struct CampaignConfig {
  std::uint64_t iterations = 20000;   // per repetition
  std::size_t repetitions = 10;       // paper: "repeated each ... 10 times"
  std::uint64_t base_seed = 1000;     // repetition i uses base_seed + i
  std::uint64_t stats_interval = 500;
  FuzzerConfig fuzzer;                // strategy field is overridden per arm
};

/// Aggregated outcome of one arm (one strategy).
struct ArmResult {
  Strategy strategy = Strategy::Peach;
  std::vector<std::vector<Checkpoint>> repetition_series;
  std::vector<Checkpoint> mean_series;
  double mean_final_paths = 0.0;
  double mean_final_edges = 0.0;
  double mean_unique_crashes = 0.0;
  /// Unique vulnerabilities (kind+site) pooled across repetitions.
  CrashDb pooled_crashes;
};

struct CampaignResult {
  std::string project;
  ArmResult peach;
  ArmResult peach_star;

  /// Executions Peach* needed (on its mean series) to reach Peach's mean
  /// final path count; 0 when never reached.
  [[nodiscard]] std::uint64_t executions_to_match_baseline() const;

  /// Speedup factor: iterations / executions_to_match_baseline (the paper's
  /// "achieves the same code coverage at the speed of 1.2X-25X").
  [[nodiscard]] double speedup() const;

  /// Final path increase percentage (the paper's "8.35%-36.84% more paths").
  [[nodiscard]] double path_increase_pct() const;
};

/// Factory that produces a fresh target instance per repetition.
using TargetFactory = std::function<std::unique_ptr<ProtocolTarget>()>;

/// Runs both arms. `on_progress(arm, repetition)` (optional) reports
/// progress for long campaigns.
CampaignResult run_campaign(
    const std::string& project, const TargetFactory& make_target,
    const model::DataModelSet& models, const CampaignConfig& config,
    const std::function<void(Strategy, std::size_t)>& on_progress = {});

/// Runs a single arm (used by the ablation benches).
ArmResult run_arm(Strategy strategy, const TargetFactory& make_target,
                  const model::DataModelSet& models,
                  const CampaignConfig& config);

/// Parallel repetition scheduler: farms every (arm, repetition) job of the
/// §V A/B experiment across a pool of `workers` threads. Each repetition is
/// an independent deterministic Fuzzer run (own target instance, seed
/// base_seed + rep), so the assembled result is identical to
/// run_campaign()'s for any worker count — only the wall clock changes.
/// `workers` == 0 or 1 degenerates to the sequential path. Note the
/// callback cadence differs between the two paths: the pooled scheduler
/// reports every (arm, repetition) job as it starts (in nondeterministic
/// order), while the sequential path keeps run_campaign()'s once-per-arm
/// reporting.
CampaignResult run_campaign_parallel(
    const std::string& project, const TargetFactory& make_target,
    const model::DataModelSet& models, const CampaignConfig& config,
    std::size_t workers,
    const std::function<void(Strategy, std::size_t)>& on_progress = {});

/// Renders the mean series of both arms as aligned CSV
/// ("executions,peach_paths,peachstar_paths").
std::string series_csv(const CampaignResult& result);

}  // namespace icsfuzz::fuzz
