#include "supervise/triage_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "distill/distill.hpp"
#include "distill/replay.hpp"
#include "util/hexdump.hpp"
#include "util/json.hpp"

namespace icsfuzz::supervise {

namespace {

namespace fs = std::filesystem;

std::string render_record(const TriageRecord& record) {
  char head[192];
  std::snprintf(head, sizeof head,
                "{\"bucket\":\"%s\",\"kind\":\"%s\",\"site\":\"%08x\","
                "\"trace_hash\":\"%016llx\",\"hits\":%llu,"
                "\"first_execution\":%llu,\"ingests\":%llu,",
                record.bucket.c_str(), san::to_slug(record.kind).c_str(),
                record.site,
                static_cast<unsigned long long>(record.trace_hash),
                static_cast<unsigned long long>(record.hits),
                static_cast<unsigned long long>(record.first_execution),
                static_cast<unsigned long long>(record.ingests));
  char tail[128];
  std::snprintf(tail, sizeof tail,
                "\"verified\":%s,\"minimized\":%s,\"bytes\":%zu,"
                "\"original_bytes\":%zu,\"detail\":\"",
                record.verified ? "true" : "false",
                record.minimized ? "true" : "false", record.reproducer_bytes,
                record.original_bytes);
  return std::string(head) + tail + json_escape(record.detail) + "\"}\n";
}

std::optional<TriageRecord> parse_record(std::string_view line) {
  const std::optional<JsonValue> doc = json_parse(line);
  if (!doc || !doc->is_object()) return std::nullopt;
  const JsonValue* bucket = doc->find("bucket");
  const JsonValue* kind = doc->find("kind");
  const JsonValue* site = doc->find("site");
  const JsonValue* trace = doc->find("trace_hash");
  const JsonValue* hits = doc->find("hits");
  const JsonValue* first = doc->find("first_execution");
  if (bucket == nullptr || !bucket->is_string() || kind == nullptr ||
      !kind->is_string() || site == nullptr || !site->is_string() ||
      hits == nullptr || !hits->is_u64 || first == nullptr ||
      !first->is_u64) {
    return std::nullopt;
  }
  const std::optional<san::FaultKind> parsed_kind =
      san::kind_from_slug(kind->string);
  if (!parsed_kind) return std::nullopt;

  TriageRecord record;
  record.bucket = bucket->string;
  record.kind = *parsed_kind;
  record.site = static_cast<std::uint32_t>(
      std::strtoul(site->string.c_str(), nullptr, 16));
  if (trace != nullptr && trace->is_string()) {
    record.trace_hash = std::strtoull(trace->string.c_str(), nullptr, 16);
  }
  record.hits = hits->u64;
  record.first_execution = first->u64;
  if (const JsonValue* v = doc->find("ingests"); v != nullptr && v->is_u64) {
    record.ingests = v->u64;
  }
  if (const JsonValue* v = doc->find("verified");
      v != nullptr && v->kind == JsonValue::Kind::kBool) {
    record.verified = v->boolean;
  }
  if (const JsonValue* v = doc->find("minimized");
      v != nullptr && v->kind == JsonValue::Kind::kBool) {
    record.minimized = v->boolean;
  }
  if (const JsonValue* v = doc->find("bytes"); v != nullptr && v->is_u64) {
    record.reproducer_bytes = static_cast<std::size_t>(v->u64);
  }
  if (const JsonValue* v = doc->find("original_bytes");
      v != nullptr && v->is_u64) {
    record.original_bytes = static_cast<std::size_t>(v->u64);
  }
  if (const JsonValue* v = doc->find("detail");
      v != nullptr && v->is_string()) {
    record.detail = v->string;
  }
  return record;
}

/// True when the replay raised the bucket's own fault (same kind + site),
/// not merely any fault.
bool reproduces(const distill::CrashReplay& replay, san::FaultKind kind,
                std::uint32_t site) {
  for (const san::FaultReport& fault : replay.faults) {
    if (fault.kind == kind && fault.site == site) return true;
  }
  return false;
}

}  // namespace

std::string triage_bucket_id(san::FaultKind kind, std::uint32_t site,
                             std::uint64_t trace_hash) {
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "%s-%08x-%016llx",
                san::to_slug(kind).c_str(), site,
                static_cast<unsigned long long>(trace_hash));
  return buffer;
}

TriageStore::TriageStore(std::string directory)
    : directory_(std::move(directory)) {}

bool TriageStore::open() {
  records_.clear();
  error_.clear();
  std::ifstream in(fs::path(directory_) / "index.jsonl", std::ios::binary);
  if (!in) {
    std::error_code ec;
    if (fs::exists(fs::path(directory_) / "index.jsonl", ec)) {
      error_ = "cannot read index.jsonl";
      return false;
    }
    return true;  // no store yet — empty index
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  // A killed writer can leave a torn trailing line; complete journals
  // always end with '\n', so an unterminated tail is dropped whole — and
  // truncated away on disk (best effort), else the NEXT append would fuse
  // with the fragment and corrupt a good record.
  std::string_view view(text);
  if (!view.empty() && view.back() != '\n') {
    const std::size_t last = view.rfind('\n');
    view = last == std::string_view::npos ? std::string_view()
                                          : view.substr(0, last + 1);
    std::error_code ec;
    fs::resize_file(fs::path(directory_) / "index.jsonl", view.size(), ec);
  }
  std::size_t start = 0;
  while (start < view.size()) {
    std::size_t end = view.find('\n', start);
    if (end == std::string_view::npos) end = view.size();
    const std::string_view line = view.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (std::optional<TriageRecord> record = parse_record(line)) {
      upsert(*record);
    }
  }
  return true;
}

const TriageRecord* TriageStore::find(std::string_view bucket) const {
  for (const TriageRecord& record : records_) {
    if (record.bucket == bucket) return &record;
  }
  return nullptr;
}

std::optional<Bytes> TriageStore::load_reproducer(
    std::string_view bucket) const {
  std::ifstream in(
      fs::path(directory_) / "repro" / (std::string(bucket) + ".bin"),
      std::ios::binary);
  if (!in) return std::nullopt;
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return data;
}

TriageRecord& TriageStore::upsert(const TriageRecord& record) {
  // Journal replay: each line is the bucket's complete state at append
  // time, so the latest line wins while the bucket keeps its first-seen
  // position.
  for (TriageRecord& existing : records_) {
    if (existing.bucket == record.bucket) {
      existing = record;
      return existing;
    }
  }
  records_.push_back(record);
  return records_.back();
}

bool TriageStore::persist(const TriageRecord& record,
                          const Bytes* reproducer) {
  std::error_code ec;
  fs::create_directories(fs::path(directory_) / "repro", ec);
  if (ec) {
    error_ = "cannot create store directory: " + ec.message();
    return false;
  }
  if (reproducer != nullptr) {
    std::ofstream out(
        fs::path(directory_) / "repro" / (record.bucket + ".bin"),
        std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(reproducer->data()),
              static_cast<std::streamsize>(reproducer->size()));
    if (!out) {
      error_ = "cannot write reproducer for " + record.bucket;
      return false;
    }
  }
  std::ofstream journal(fs::path(directory_) / "index.jsonl",
                        std::ios::binary | std::ios::app);
  journal << render_record(record);
  if (!journal) {
    error_ = "cannot append to index.jsonl";
    return false;
  }
  return true;
}

TriageStore::IngestOutcome TriageStore::ingest(
    const fuzz::CrashRecord& crash, ProtocolTarget* target, bool minimize,
    const fuzz::ExecutorConfig& executor) {
  IngestOutcome outcome;
  outcome.bucket =
      triage_bucket_id(crash.kind, crash.site, crash.trace_hash);

  const TriageRecord* existing = find(outcome.bucket);
  outcome.is_new = existing == nullptr;

  TriageRecord record;
  Bytes reproducer = crash.reproducer;
  bool write_reproducer = true;
  if (existing == nullptr) {
    record.bucket = outcome.bucket;
    record.kind = crash.kind;
    record.site = crash.site;
    record.trace_hash = crash.trace_hash;
    record.detail = crash.detail;
    record.hits = crash.hits;
    record.first_execution = crash.first_execution;
    record.ingests = 1;
    record.original_bytes = crash.reproducer.size();
  } else {
    record = *existing;
    record.hits += crash.hits;
    record.first_execution =
        std::min(record.first_execution, crash.first_execution);
    ++record.ingests;
    // Keep the stored reproducer unless the incoming one is smaller (or
    // the side file went missing) — a re-ingest must never replace a
    // minimized reproducer with a bigger duplicate.
    std::optional<Bytes> stored = load_reproducer(outcome.bucket);
    if (stored && stored->size() <= crash.reproducer.size()) {
      reproducer = std::move(*stored);
      write_reproducer = false;
    } else {
      record.minimized = false;
    }
  }

  if (target != nullptr) {
    const distill::CrashReplay replay =
        distill::replay_crash(*target, reproducer, executor);
    outcome.reproduced = reproduces(replay, record.kind, record.site);
    outcome.verify_failed = !outcome.reproduced;
    record.verified = outcome.reproduced;
    if (outcome.reproduced && minimize) {
      distill::TminConfig tmin_config;
      tmin_config.executor = executor;
      distill::TminResult trimmed =
          distill::tmin(*target, reproducer, tmin_config);
      if (trimmed.shrunk()) {
        reproducer = std::move(trimmed.seed);
        record.minimized = true;
        outcome.minimized = true;
        write_reproducer = true;
      }
    }
  }
  record.reproducer_bytes = reproducer.size();

  upsert(record);
  persist(record, write_reproducer ? &reproducer : nullptr);
  return outcome;
}

std::optional<TriageStore::IngestOutcome> TriageStore::reverify(
    std::string_view bucket, ProtocolTarget& target, bool minimize,
    const fuzz::ExecutorConfig& executor) {
  const TriageRecord* existing = find(bucket);
  if (existing == nullptr) return std::nullopt;
  std::optional<Bytes> reproducer = load_reproducer(bucket);
  if (!reproducer) return std::nullopt;

  IngestOutcome outcome;
  outcome.bucket = existing->bucket;
  TriageRecord record = *existing;

  const distill::CrashReplay replay =
      distill::replay_crash(target, *reproducer, executor);
  outcome.reproduced = reproduces(replay, record.kind, record.site);
  outcome.verify_failed = !outcome.reproduced;
  record.verified = outcome.reproduced;
  bool write_reproducer = false;
  if (outcome.reproduced && minimize) {
    distill::TminConfig tmin_config;
    tmin_config.executor = executor;
    distill::TminResult trimmed =
        distill::tmin(target, *reproducer, tmin_config);
    if (trimmed.shrunk()) {
      *reproducer = std::move(trimmed.seed);
      record.minimized = true;
      outcome.minimized = true;
      write_reproducer = true;
    }
  }
  record.reproducer_bytes = reproducer->size();

  upsert(record);
  persist(record, write_reproducer ? &*reproducer : nullptr);
  return outcome;
}

}  // namespace icsfuzz::supervise
