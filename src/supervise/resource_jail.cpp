#include "supervise/resource_jail.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdlib>
#include <new>

namespace icsfuzz::supervise {
namespace {

[[noreturn]] void oom_exit_handler() {
  // Allocation failed under RLIMIT_AS: leave through the marker exit code
  // instead of an uncatchable bad_alloc -> std::terminate -> SIGABRT, so
  // the parent distinguishes the jail firing from a genuine crash.
  ::_exit(kOomExitCode);
}

void set_limit(int resource, rlim_t value) {
  struct rlimit limit;
  limit.rlim_cur = value;
  limit.rlim_max = value;
  // Failure is non-fatal by design: a jail the kernel refuses (e.g. a cap
  // above the hard limit in a container) degrades to the unjailed
  // behavior rather than killing the campaign.
  (void)::setrlimit(resource, &limit);
}

std::uint64_t env_value(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : 0;
}

}  // namespace

void append_jail_env(const ResourceJail& jail,
                     std::vector<std::string>& env) {
  if (!jail.enabled()) return;
  if (jail.address_space_mb != 0) {
    env.push_back(std::string(kJailAsEnv) + "=" +
                  std::to_string(jail.address_space_mb));
  }
  if (jail.cpu_seconds != 0) {
    env.push_back(std::string(kJailCpuEnv) + "=" +
                  std::to_string(jail.cpu_seconds));
  }
  env.push_back(std::string(kJailCoreEnv) + "=" +
                (jail.allow_core_dumps ? "1" : "0"));
}

ResourceJail jail_from_env() {
  ResourceJail jail;
  jail.address_space_mb = env_value(kJailAsEnv);
  jail.cpu_seconds = static_cast<std::uint32_t>(env_value(kJailCpuEnv));
  jail.allow_core_dumps = env_value(kJailCoreEnv) != 0;
  return jail;
}

void apply_in_child(const ResourceJail& jail) {
  if (!jail.enabled()) return;
  if (jail.address_space_mb != 0) {
    set_limit(RLIMIT_AS,
              static_cast<rlim_t>(jail.address_space_mb) * 1024 * 1024);
  }
  if (jail.cpu_seconds != 0) {
    set_limit(RLIMIT_CPU, jail.cpu_seconds);
  }
  if (!jail.allow_core_dumps) {
    set_limit(RLIMIT_CORE, 0);
  }
  std::set_new_handler(oom_exit_handler);
}

}  // namespace icsfuzz::supervise
