// CampaignSupervisor — fault-tolerant driver for a parallel campaign.
//
// ParallelCampaign::run() executes the whole iteration budget in one
// blocking call; the supervisor executes the *same* campaign as a sequence
// of lockstep chunks with a control loop wrapped around the workers:
//
//     ┌───────────────────────── supervisor thread ─────────────────────┐
//     │  resume? ── load_checkpoint ── restore workers                  │
//     │  repeat until budget done or signalled:                         │
//     │    spawn worker threads      run_range(chunk)                   │
//     │    watchdog poll ── progress() heartbeats ── kill wedged server │
//     │    join ── save_checkpoint (atomic tmp+rename)                  │
//     │  final: aggregate + telemetry flush                             │
//     └─────────────────────────────────────────────────────────────────┘
//
// Because Worker::run_range() keys the sync schedule on absolute iteration
// indices, chunked execution is bit-identical to one uninterrupted run —
// which is what makes the checkpoint/resume trajectory reproducible after
// a kill -9 (gated by tests/test_checkpoint_resume.cpp).
//
// The watchdog reads each worker's relaxed progress counter; a worker that
// makes no progress for `wedge_timeout_ms` gets its fork server SIGKILLed
// (the worker unblocks through the normal server-lost respawn path). In-
// process backends cannot be unwedged this way; after `max_watchdog_kicks`
// the supervisor stops intervening and simply waits.
//
// SIGINT/SIGTERM (when install_signal_handlers) request a graceful stop:
// the current chunk completes, a final checkpoint and telemetry export are
// flushed, registered shm segments are unlinked, and run() returns with
// interrupted=true — rerunning with resume=true continues the campaign.
#pragma once

#include <cstdint>
#include <string>

#include "parallel/parallel_campaign.hpp"

namespace icsfuzz::supervise {

struct SupervisorConfig {
  /// The campaign to supervise (worker count, budget, fuzzer config...).
  par::ParallelCampaignConfig campaign;
  /// Checkpoint image path; empty disables checkpoint/resume entirely.
  std::string checkpoint_path;
  /// Iterations per lockstep chunk — a checkpoint lands after every chunk.
  /// 0 means one chunk covering the whole budget (final checkpoint only).
  std::uint64_t checkpoint_interval = 4096;
  /// Restore checkpoint_path when it holds a matching campaign image.
  bool resume = true;
  /// Worker heartbeat: no progress for this long marks a worker wedged.
  int wedge_timeout_ms = 30000;
  /// Watchdog poll period.
  int watchdog_poll_ms = 200;
  /// Remediation budget per worker per chunk; beyond it the supervisor
  /// stops kicking and waits (a kick cycle that does not unwedge the
  /// worker will not be improved by more kicks).
  int max_watchdog_kicks = 4;
  /// Install SIGINT/SIGTERM handlers for the duration of run(). Off by
  /// default so embedding tests control shutdown via request_stop().
  bool install_signal_handlers = false;
};

struct SupervisorResult {
  /// Aggregated campaign result — fully populated only when the budget
  /// completed (interrupted == false); a stopped run reports the partial
  /// per-worker tallies without the final distillation.
  par::ParallelCampaignResult campaign;
  bool interrupted = false;
  bool resumed = false;
  std::uint64_t completed_iterations = 0;
  std::uint64_t checkpoints_saved = 0;
  std::uint64_t watchdog_kicks = 0;
  /// Non-fatal problems (unreadable checkpoint, failed save...).
  std::string notes;
};

class CampaignSupervisor {
 public:
  /// `models` must outlive the supervisor; `make_target` is invoked once
  /// per worker.
  CampaignSupervisor(fuzz::TargetFactory make_target,
                     const model::DataModelSet& models,
                     SupervisorConfig config);

  /// Drives the campaign to completion (or until stopped). Blocking.
  SupervisorResult run();

  /// Requests a graceful stop of every running supervisor in the process —
  /// what the signal handlers call; async-signal-safe.
  static void request_stop();
  /// Clears a pending stop request (call before run() when reusing the
  /// process after a stop).
  static void clear_stop();

 private:
  fuzz::TargetFactory make_target_;
  const model::DataModelSet& models_;
  SupervisorConfig config_;
};

}  // namespace icsfuzz::supervise
