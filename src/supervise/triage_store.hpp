// TriageStore — the campaign's durable, append-only crash-triage database.
//
// The in-memory CrashDb deduplicates by (kind, site) within one campaign;
// the triage store is its cross-campaign, on-disk counterpart. Buckets key
// on (fault kind, crash site, coverage fingerprint) — the trace hash
// separates distinct paths into the same guarded access, which (kind,
// site) alone would merge — and every ingest can re-verify the reproducer
// against a live target and tmin-shrink it before it is persisted, so the
// store only ever accumulates actionable, replayable crashes.
//
// On-disk layout under the store root:
//   index.jsonl          append-only journal of bucket records; the live
//                        index is the journal replayed with last-record-
//                        per-bucket wins (first-seen order preserved), so
//                        updates never rewrite history and a torn trailing
//                        line from a killed writer is simply dropped
//   repro/<bucket>.bin   current reproducer packet for the bucket
//
// Bucket id: "<kind-slug>-<site:%08x>-<trace:%016llx>".
//
// The icsfuzz-triage CLI (tools/icsfuzz_triage.cpp) fronts this store:
// ingest from a session's crashes.jsonl, list/show buckets, re-replay and
// minimize reproducers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fuzzer/crash_db.hpp"
#include "fuzzer/executor.hpp"

namespace icsfuzz::supervise {

/// One triage bucket — a unique (kind, site, trace) crash with its current
/// reproducer metadata.
struct TriageRecord {
  std::string bucket;
  san::FaultKind kind = san::FaultKind::Segv;
  std::uint32_t site = 0;
  std::uint64_t trace_hash = 0;
  std::string detail;
  /// Summed over every ingest that landed in this bucket.
  std::uint64_t hits = 0;
  /// Earliest discovery across ingests.
  std::uint64_t first_execution = 0;
  /// Ingests merged into this bucket.
  std::uint64_t ingests = 0;
  /// The last replay of the reproducer faulted on the same (kind, site).
  bool verified = false;
  /// The reproducer has been tmin-shrunk.
  bool minimized = false;
  std::size_t reproducer_bytes = 0;
  /// Reproducer size when the bucket was first ingested.
  std::size_t original_bytes = 0;
};

[[nodiscard]] std::string triage_bucket_id(san::FaultKind kind,
                                           std::uint32_t site,
                                           std::uint64_t trace_hash);

class TriageStore {
 public:
  explicit TriageStore(std::string directory);

  /// Replays index.jsonl into the live index (a missing store is simply
  /// empty). Returns false only when the directory exists but cannot be
  /// read; error() then explains.
  bool open();

  struct IngestOutcome {
    std::string bucket;
    bool is_new = false;
    /// Replay ran and reproduced the fault on the same (kind, site).
    bool reproduced = false;
    /// Replay ran and did NOT reproduce — recorded, but flagged.
    bool verify_failed = false;
    bool minimized = false;
  };

  /// Ingests one crash record: buckets it, re-verifies the reproducer when
  /// `target` is non-null (and tmin-shrinks it when `minimize`, trace-hash
  /// invariant so the minimized packet provably executes the same path),
  /// writes the reproducer side file and appends the bucket's updated
  /// record to the journal. Repeated ingests into one bucket accumulate
  /// hits and keep the earliest first_execution and the smallest verified
  /// reproducer.
  IngestOutcome ingest(const fuzz::CrashRecord& record, ProtocolTarget* target,
                       bool minimize = false,
                       const fuzz::ExecutorConfig& executor = {});

  /// Re-runs verification (and optional minimization) of an existing
  /// bucket's stored reproducer, journaling the updated record. Nullopt
  /// when the bucket or its reproducer is missing.
  std::optional<IngestOutcome> reverify(std::string_view bucket,
                                        ProtocolTarget& target,
                                        bool minimize = false,
                                        const fuzz::ExecutorConfig& executor =
                                            {});

  /// Buckets in first-seen order.
  [[nodiscard]] const std::vector<TriageRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const TriageRecord* find(std::string_view bucket) const;
  /// Reads a bucket's reproducer side file (nullopt when absent).
  [[nodiscard]] std::optional<Bytes> load_reproducer(
      std::string_view bucket) const;

  [[nodiscard]] const std::string& directory() const { return directory_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  TriageRecord& upsert(const TriageRecord& record);
  /// Appends `record` to index.jsonl and writes `reproducer` (when given)
  /// to the bucket's side file.
  bool persist(const TriageRecord& record, const Bytes* reproducer);

  std::string directory_;
  std::vector<TriageRecord> records_;
  std::string error_;
};

}  // namespace icsfuzz::supervise
