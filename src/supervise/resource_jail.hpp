// ResourceJail — rlimit sandbox for out-of-process fuzz children.
//
// Campaigns run untrusted inputs against targets that can allocate without
// bound; without a jail an OOM'd child either drags the host into swap or
// is killed by the kernel OOM killer and booked as a generic crash. The
// jail caps the child's address space (RLIMIT_AS) and CPU time
// (RLIMIT_CPU), suppresses core dumps (RLIMIT_CORE — a crashing campaign
// writes thousands of them otherwise), and installs a std::new_handler
// that exits with the distinctive kOomExitCode so the parent can classify
// allocation-failure deaths as ExecStatus::kOom instead of kCrash.
//
// The jail crosses the exec boundary as environment variables: the parent
// (OutOfProcessExecutor::spawn) serializes the limits with
// append_jail_env(); the fork-server shim re-reads them with
// jail_from_env() and applies them inside every forked execution child
// (apply_in_child) — never in the server process itself, which must stay
// alive across crashing children.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace icsfuzz::supervise {

/// Child exit code marking an allocation-failure death (the jail's
/// new_handler). Distinct from the shim's exec-failure codes (126/127) and
/// from any small status a protocol target returns.
inline constexpr int kOomExitCode = 79;

/// Environment variables carrying the jail across the exec boundary.
inline constexpr const char* kJailAsEnv = "ICSFUZZ_JAIL_AS_MB";
inline constexpr const char* kJailCpuEnv = "ICSFUZZ_JAIL_CPU_S";
inline constexpr const char* kJailCoreEnv = "ICSFUZZ_JAIL_CORE";

struct ResourceJail {
  /// RLIMIT_AS cap in MiB (0 = unlimited).
  std::uint64_t address_space_mb = 0;
  /// RLIMIT_CPU cap in seconds (0 = unlimited). A belt-and-braces bound
  /// behind the wall-clock exec deadline: a child spinning with signals
  /// blocked still dies on SIGXCPU.
  std::uint32_t cpu_seconds = 0;
  /// Keep core dumps (default: suppressed while the jail is active).
  bool allow_core_dumps = false;

  /// An all-default jail is inert: nothing is exported to the child and
  /// spawn behavior is bit-identical to the pre-jail executor.
  [[nodiscard]] bool enabled() const {
    return address_space_mb != 0 || cpu_seconds != 0;
  }
};

/// Appends the jail's env entries ("NAME=value" strings) to `env`.
/// No-op for a disabled jail.
void append_jail_env(const ResourceJail& jail, std::vector<std::string>& env);

/// Reconstructs the jail from the current environment (the shim side).
[[nodiscard]] ResourceJail jail_from_env();

/// Applies the jail to the calling process: setrlimit AS/CPU/CORE plus the
/// OOM-marking new_handler. Call in the forked execution child, after
/// fork() and before the target runs. No-op for a disabled jail.
/// Async-signal-safe except for set_new_handler (safe directly after fork).
void apply_in_child(const ResourceJail& jail);

}  // namespace icsfuzz::supervise
