// Campaign checkpoint serialization — the on-disk image behind crash-safe
// resume.
//
// A CampaignCheckpoint is the complete trajectory-relevant state of a
// (possibly parallel) campaign at a quiescent point: how many iterations
// every worker has completed plus each worker's full WorkerState (fuzzer
// checkpoint, exchange cursor, sync bookkeeping — see parallel/worker.hpp).
// The CampaignSupervisor writes one periodically via save_checkpoint()
// (atomic tmp+rename, so a kill -9 mid-write leaves the previous image
// intact) and load_checkpoint() reinstates it on the next start; the
// resumed campaign reproduces the uninterrupted run's trajectory
// bit-for-bit (gated by tests/test_checkpoint_resume.cpp).
//
// Format: "icsfuzz-checkpoint v1", then a whitespace-separated token
// stream — integers in decimal, byte blobs as hex ("-" for empty). The
// identity line ties a checkpoint to the campaign shape that wrote it
// (base seed, iteration budget, sync interval, worker count); a mismatch
// on load is rejected rather than silently resuming a different campaign.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "parallel/worker.hpp"

namespace icsfuzz::supervise {

struct CampaignCheckpoint {
  /// Iterations every worker has completed (workers advance in lockstep
  /// chunks, so one number covers all of them).
  std::uint64_t completed_iterations = 0;
  // Campaign identity — must match the resuming configuration.
  std::uint64_t base_seed = 0;
  std::uint64_t iterations_per_worker = 0;
  std::uint64_t sync_interval = 0;
  std::vector<par::WorkerState> workers;
};

/// Renders the checkpoint into its stable text form.
[[nodiscard]] std::string serialize_checkpoint(const CampaignCheckpoint& cp);

/// Parses a serialized checkpoint (nullopt on any malformed input — a torn
/// or truncated file never yields a partial checkpoint).
[[nodiscard]] std::optional<CampaignCheckpoint> parse_checkpoint(
    std::string_view text);

/// Atomically writes the checkpoint to `path` (tmp + rename; the previous
/// image survives a crash mid-write). Returns an error message on I/O
/// failure, nullopt on success.
std::optional<std::string> save_checkpoint(const CampaignCheckpoint& cp,
                                           const std::string& path);

/// Loads and parses `path` (nullopt when absent or malformed).
[[nodiscard]] std::optional<CampaignCheckpoint> load_checkpoint(
    const std::string& path);

}  // namespace icsfuzz::supervise
