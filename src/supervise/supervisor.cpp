#include "supervise/supervisor.hpp"

#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "exec_oop/shm_segment.hpp"
#include "supervise/checkpoint.hpp"
#include "telemetry/export.hpp"

namespace icsfuzz::supervise {

namespace {

/// Process-wide stop flag: written by signal handlers and request_stop(),
/// polled by every supervisor between chunks.
volatile std::sig_atomic_t g_stop_requested = 0;

void stop_signal_handler(int /*signo*/) { g_stop_requested = 1; }

/// Scoped SIGINT/SIGTERM installation restoring the previous handlers.
class ScopedStopSignals {
 public:
  explicit ScopedStopSignals(bool install) : installed_(install) {
    if (!installed_) return;
    struct sigaction action {};
    action.sa_handler = stop_signal_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: interrupt blocking reads promptly
    ::sigaction(SIGINT, &action, &previous_int_);
    ::sigaction(SIGTERM, &action, &previous_term_);
  }
  ~ScopedStopSignals() {
    if (!installed_) return;
    ::sigaction(SIGINT, &previous_int_, nullptr);
    ::sigaction(SIGTERM, &previous_term_, nullptr);
  }

 private:
  bool installed_;
  struct sigaction previous_int_ {};
  struct sigaction previous_term_ {};
};

void append_note(std::string& notes, const std::string& note) {
  if (!notes.empty()) notes += "; ";
  notes += note;
}

}  // namespace

void CampaignSupervisor::request_stop() { g_stop_requested = 1; }
void CampaignSupervisor::clear_stop() { g_stop_requested = 0; }

CampaignSupervisor::CampaignSupervisor(fuzz::TargetFactory make_target,
                                       const model::DataModelSet& models,
                                       SupervisorConfig config)
    : make_target_(std::move(make_target)),
      models_(models),
      config_(std::move(config)) {}

SupervisorResult CampaignSupervisor::run() {
  SupervisorResult result;
  par::ParallelCampaign campaign(make_target_, models_, config_.campaign);
  const par::ParallelCampaignConfig& cc = campaign.config();  // normalized
  par::SeedExchange exchange(campaign.exchange_config());
  std::vector<std::unique_ptr<par::Worker>> workers =
      campaign.build_workers(exchange);

  // The supervisor's own sink: shard W — distinct from every worker's
  // shard for any campaign under the registry's 64-slot modulo, so the
  // watchdog can count kicks while workers run without violating the
  // single-writer shard contract. Journal appends are mutex-protected and
  // safe from here regardless.
  const telem::Sink campaign_sink = cc.fuzzer.telemetry;
  const telem::Sink sink =
      campaign_sink.enabled()
          ? telem::Sink(campaign_sink.hub(),
                        static_cast<std::uint32_t>(cc.workers))
          : telem::Sink();

  const std::uint64_t total = cc.iterations_per_worker;
  std::uint64_t completed = 0;

  // -- Resume. -------------------------------------------------------------
  if (config_.resume && !config_.checkpoint_path.empty()) {
    if (std::optional<CampaignCheckpoint> cp =
            load_checkpoint(config_.checkpoint_path)) {
      const bool identity_matches =
          cp->base_seed == cc.base_seed &&
          cp->iterations_per_worker == cc.iterations_per_worker &&
          cp->sync_interval == cc.sync_interval &&
          cp->workers.size() == workers.size() &&
          cp->completed_iterations <= total;
      if (identity_matches) {
        for (std::size_t w = 0; w < workers.size(); ++w) {
          workers[w]->restore_state(cp->workers[w]);
        }
        completed = cp->completed_iterations;
        result.resumed = true;
        if (sink.enabled()) {
          char detail[64];
          std::snprintf(detail, sizeof detail, "resumed at=%llu of=%llu",
                        static_cast<unsigned long long>(completed),
                        static_cast<unsigned long long>(total));
          sink.event(telem::EventType::kCheckpoint, 0, detail);
        }
      } else {
        append_note(result.notes,
                    "checkpoint ignored: campaign identity mismatch");
      }
    }
  }

  ScopedStopSignals signals(config_.install_signal_handlers);

  if (sink.enabled()) {
    char detail[64];
    std::snprintf(detail, sizeof detail, "workers=%zu iterations=%llu",
                  cc.workers, static_cast<unsigned long long>(total));
    sink.event(telem::EventType::kCampaignStart, 0, detail);
  }

  auto save = [&](std::uint64_t done) {
    if (config_.checkpoint_path.empty()) return;
    CampaignCheckpoint cp;
    cp.completed_iterations = done;
    cp.base_seed = cc.base_seed;
    cp.iterations_per_worker = cc.iterations_per_worker;
    cp.sync_interval = cc.sync_interval;
    cp.workers.reserve(workers.size());
    for (const std::unique_ptr<par::Worker>& worker : workers) {
      cp.workers.push_back(worker->capture_state());
    }
    if (std::optional<std::string> error =
            save_checkpoint(cp, config_.checkpoint_path)) {
      append_note(result.notes, "checkpoint save failed: " + *error);
      return;
    }
    ++result.checkpoints_saved;
    if (sink.enabled()) {
      char detail[64];
      std::snprintf(detail, sizeof detail, "saved at=%llu of=%llu",
                    static_cast<unsigned long long>(done),
                    static_cast<unsigned long long>(total));
      sink.add(telem::Counter::kCheckpointsSaved);
      sink.event(telem::EventType::kCheckpoint, 0, detail);
    }
  };

  // -- Chunk loop. ---------------------------------------------------------
  const std::uint64_t chunk_size =
      config_.checkpoint_interval != 0 ? config_.checkpoint_interval : total;
  const auto start = std::chrono::steady_clock::now();
  while (completed < total && g_stop_requested == 0) {
    const std::uint64_t chunk_end = std::min(total, completed + chunk_size);

    // All workers on spawned threads; this thread runs the watchdog.
    const std::size_t n = workers.size();
    std::unique_ptr<std::atomic<bool>[]> done(new std::atomic<bool>[n]);
    for (std::size_t w = 0; w < n; ++w) done[w].store(false);
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t w = 0; w < n; ++w) {
      threads.emplace_back([&, w] {
        workers[w]->run_range(completed, chunk_end, total);
        done[w].store(true, std::memory_order_release);
      });
    }

    std::vector<std::uint64_t> last_progress(n, 0);
    std::vector<int> stalled_ms(n, 0);
    std::vector<int> kicks(n, 0);
    for (std::size_t w = 0; w < n; ++w) {
      last_progress[w] = workers[w]->progress();
    }
    const int poll_ms = config_.watchdog_poll_ms > 0 ? config_.watchdog_poll_ms
                                                     : 200;
    for (;;) {
      bool all_done = true;
      for (std::size_t w = 0; w < n; ++w) {
        if (!done[w].load(std::memory_order_acquire)) {
          all_done = false;
          break;
        }
      }
      if (all_done) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
      for (std::size_t w = 0; w < n; ++w) {
        if (done[w].load(std::memory_order_acquire)) continue;
        const std::uint64_t progress = workers[w]->progress();
        if (progress != last_progress[w]) {
          last_progress[w] = progress;
          stalled_ms[w] = 0;
          continue;
        }
        stalled_ms[w] += poll_ms;
        if (stalled_ms[w] < config_.wedge_timeout_ms) continue;
        stalled_ms[w] = 0;
        if (kicks[w] >= config_.max_watchdog_kicks) continue;
        ++kicks[w];
        ++result.watchdog_kicks;
        workers[w]->kill_target_server();
        if (sink.enabled()) {
          char detail[64];
          std::snprintf(detail, sizeof detail, "worker=%zu kick=%d", w,
                        kicks[w]);
          sink.add(telem::Counter::kWatchdogKicks);
          sink.event(telem::EventType::kWatchdogKick, 0, detail);
        }
      }
    }
    for (std::thread& thread : threads) thread.join();

    completed = chunk_end;
    // Checkpoint between chunks (workers quiescent). The final chunk's
    // image marks the campaign complete, so a rerun with resume=true is a
    // no-op instead of a replay.
    save(completed);
  }
  const auto stop = std::chrono::steady_clock::now();
  const double wall_seconds =
      std::chrono::duration<double>(stop - start).count();

  result.interrupted = completed < total;
  result.completed_iterations = completed;
  if (result.interrupted) {
    // Stop requested mid-budget: the checkpoint above already landed after
    // the last finished chunk; flush telemetry and report partial tallies
    // (no final distillation — the campaign is not over).
    par::ParallelCampaignConfig partial = cc;
    partial.distill_final = false;
    par::ParallelCampaign partial_campaign(make_target_, models_, partial);
    result.campaign =
        partial_campaign.aggregate(workers, exchange, wall_seconds);
  } else {
    result.campaign = campaign.aggregate(workers, exchange, wall_seconds);
  }

  if (sink.enabled()) {
    sink.event(telem::EventType::kCampaignStop, 0,
               result.interrupted ? "stop-requested" : "workers-joined");
    if (!cc.telemetry_dir.empty()) {
      telem::RateWindows rates;
      telem::export_live(*sink.hub(), rates, cc.telemetry_dir);
    }
  }
  if (result.interrupted) {
    // Belt-and-braces shm hygiene on the shutdown path: unlinking a name
    // whose mapping is still live is safe (the mapping survives), and the
    // owners' destructors tolerate the later ENOENT.
    oop::unlink_all_registered();
  }
  return result;
}

}  // namespace icsfuzz::supervise
