#include "supervise/checkpoint.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "telemetry/export.hpp"
#include "util/hexdump.hpp"

namespace icsfuzz::supervise {

namespace {

constexpr const char* kMagic = "icsfuzz-checkpoint";
// v2: per-worker "sstates" list (reached session states) after "paths".
constexpr const char* kVersion = "v2";

// -- Writer helpers. -------------------------------------------------------

void put_u64(std::string& out, std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%llu",
                static_cast<unsigned long long>(value));
  out += buffer;
  out += ' ';
}

void put_blob(std::string& out, ByteSpan bytes) {
  if (bytes.empty()) {
    out += "- ";
  } else {
    out += to_hex(bytes);
    out += ' ';
  }
}

void put_string(std::string& out, const std::string& text) {
  put_blob(out, ByteSpan(reinterpret_cast<const std::uint8_t*>(text.data()),
                         text.size()));
}

void put_tag(std::string& out, const char* tag) {
  out += tag;
  out += ' ';
}

void put_u64_list(std::string& out, const char* tag,
                  const std::vector<std::uint64_t>& values) {
  put_tag(out, tag);
  put_u64(out, values.size());
  for (const std::uint64_t value : values) put_u64(out, value);
  out += '\n';
}

void put_bytes_list(std::string& out, const char* tag,
                    const std::vector<Bytes>& blobs) {
  put_tag(out, tag);
  put_u64(out, blobs.size());
  out += '\n';
  for (const Bytes& blob : blobs) {
    put_tag(out, "b");
    put_blob(out, ByteSpan(blob));
    out += '\n';
  }
}

// -- Reader. ---------------------------------------------------------------

/// Whitespace-token scanner with sticky failure: any mismatch or exhausted
/// input marks the reader failed and every later read returns defaults, so
/// the parse routine checks once at the end.
struct TokenReader {
  std::string_view text;
  std::size_t pos = 0;
  bool failed = false;

  std::string_view next() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
    if (pos >= text.size()) {
      failed = true;
      return {};
    }
    const std::size_t start = pos;
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) == 0) {
      ++pos;
    }
    return text.substr(start, pos - start);
  }

  void expect(std::string_view tag) {
    if (next() != tag) failed = true;
  }

  std::uint64_t u64() {
    const std::string_view token = next();
    if (failed || token.empty()) {
      failed = true;
      return 0;
    }
    std::uint64_t value = 0;
    for (const char c : token) {
      if (c < '0' || c > '9') {
        failed = true;
        return 0;
      }
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return value;
  }

  Bytes blob() {
    const std::string_view token = next();
    if (failed) return {};
    if (token == "-") return {};
    Bytes bytes = from_hex(token);
    // from_hex drops malformed input silently; a non-empty token decoding
    // to nothing means corruption.
    if (bytes.empty() && !token.empty()) failed = true;
    return bytes;
  }

  std::string string() {
    const Bytes bytes = blob();
    return std::string(bytes.begin(), bytes.end());
  }

  std::vector<std::uint64_t> u64_list(const char* tag) {
    expect(tag);
    const std::uint64_t count = u64();
    std::vector<std::uint64_t> values;
    if (failed || count > (1ULL << 32)) {
      failed = true;
      return values;
    }
    values.reserve(count);
    for (std::uint64_t i = 0; i < count && !failed; ++i) {
      values.push_back(u64());
    }
    return values;
  }

  std::vector<Bytes> bytes_list(const char* tag) {
    expect(tag);
    const std::uint64_t count = u64();
    std::vector<Bytes> blobs;
    if (failed || count > (1ULL << 32)) {
      failed = true;
      return blobs;
    }
    blobs.reserve(count);
    for (std::uint64_t i = 0; i < count && !failed; ++i) {
      expect("b");
      blobs.push_back(blob());
    }
    return blobs;
  }
};

void put_rng(std::string& out, const char* tag, const Rng::State& state) {
  put_tag(out, tag);
  for (const std::uint64_t word : state.words) put_u64(out, word);
  out += '\n';
}

Rng::State read_rng(TokenReader& reader, const char* tag) {
  reader.expect(tag);
  Rng::State state{};
  for (std::uint64_t& word : state.words) word = reader.u64();
  return state;
}

void put_corpus_tier(std::string& out, const char* tag,
                     const std::vector<fuzz::CorpusSnapshot::BucketImage>&
                         tier) {
  put_tag(out, tag);
  put_u64(out, tier.size());
  out += '\n';
  for (const fuzz::CorpusSnapshot::BucketImage& bucket : tier) {
    put_tag(out, "bucket");
    put_u64(out, bucket.key);
    put_u64(out, bucket.entries.size());
    out += '\n';
    for (const Bytes& entry : bucket.entries) {
      put_tag(out, "e");
      put_blob(out, ByteSpan(entry));
      out += '\n';
    }
  }
}

std::vector<fuzz::CorpusSnapshot::BucketImage> read_corpus_tier(
    TokenReader& reader, const char* tag) {
  std::vector<fuzz::CorpusSnapshot::BucketImage> tier;
  reader.expect(tag);
  const std::uint64_t buckets = reader.u64();
  if (reader.failed || buckets > (1ULL << 32)) {
    reader.failed = true;
    return tier;
  }
  tier.reserve(buckets);
  for (std::uint64_t i = 0; i < buckets && !reader.failed; ++i) {
    reader.expect("bucket");
    fuzz::CorpusSnapshot::BucketImage bucket;
    bucket.key = reader.u64();
    const std::uint64_t entries = reader.u64();
    if (reader.failed || entries > (1ULL << 32)) {
      reader.failed = true;
      return tier;
    }
    bucket.entries.reserve(entries);
    for (std::uint64_t j = 0; j < entries && !reader.failed; ++j) {
      reader.expect("e");
      bucket.entries.push_back(reader.blob());
    }
    tier.push_back(std::move(bucket));
  }
  return tier;
}

void put_worker(std::string& out, const par::WorkerState& state) {
  out += "worker\n";
  put_rng(out, "syncrng", state.sync_rng);
  {
    put_tag(out, "cursor");
    put_u64(out, state.cursor_next.size());
    for (const std::size_t value : state.cursor_next) put_u64(out, value);
    out += '\n';
  }
  put_tag(out, "wstats");
  put_u64(out, state.published);
  put_u64(out, state.imported);
  put_u64(out, state.puzzles_imported);
  put_u64(out, state.syncs);
  put_u64(out, state.published_corpus_revision);
  put_u64(out, state.imported_global_revision);
  out += '\n';

  const fuzz::FuzzerCheckpoint& cp = state.fuzzer;
  put_rng(out, "rng", cp.rng);
  put_u64_list(out, "dcur", cp.dedup_current);
  put_u64_list(out, "dprev", cp.dedup_previous);
  put_tag(out, "crev");
  put_u64(out, cp.corpus.revision);
  out += '\n';
  put_corpus_tier(out, "exact", cp.corpus.exact);
  put_corpus_tier(out, "shape", cp.corpus.shape);

  put_tag(out, "crashes");
  put_u64(out, cp.crashes.size());
  out += '\n';
  for (const fuzz::CrashRecord& crash : cp.crashes) {
    put_tag(out, "crash");
    put_u64(out, static_cast<std::uint64_t>(crash.kind));
    put_u64(out, crash.site);
    put_u64(out, crash.hits);
    put_u64(out, crash.first_execution);
    put_u64(out, crash.trace_hash);
    put_string(out, crash.detail);
    put_blob(out, ByteSpan(crash.reproducer));
    out += '\n';
  }

  put_tag(out, "stats");
  put_u64(out, cp.stats_points.size());
  out += '\n';
  for (const fuzz::Checkpoint& point : cp.stats_points) {
    put_tag(out, "pt");
    put_u64(out, point.executions);
    put_u64(out, point.paths);
    put_u64(out, point.edges);
    put_u64(out, point.unique_crashes);
    put_u64(out, point.corpus_size);
    put_u64(out, point.wall_ns);
    out += '\n';
  }

  put_tag(out, "retained");
  put_u64(out, cp.retained.size());
  out += '\n';
  for (const fuzz::RetainedSeed& seed : cp.retained) {
    put_tag(out, "rs");
    put_u64(out, seed.execution);
    put_string(out, seed.model_name);
    put_blob(out, ByteSpan(seed.bytes));
    out += '\n';
  }

  put_bytes_list(out, "pending", cp.pending_batch);
  put_bytes_list(out, "pool", cp.mutation_pool);
  put_bytes_list(out, "queued", cp.imported);

  put_tag(out, "lifetime");
  put_u64(out, cp.total_retained);
  put_u64(out, cp.exported_retained);
  put_u64(out, cp.distill_passes);
  put_u64(out, cp.distill_dropped);
  out += '\n';

  put_tag(out, "exec");
  put_u64(out, cp.executions);
  out += '\n';
  put_tag(out, "cov");
  put_blob(out, ByteSpan(cp.coverage.data(), cp.coverage.size()));
  out += '\n';
  put_u64_list(out, "paths", cp.path_hashes);
  put_u64_list(out, "sstates", cp.session_states);
  out += "endworker\n";
}

bool read_worker(TokenReader& reader, par::WorkerState& state) {
  reader.expect("worker");
  state.sync_rng = read_rng(reader, "syncrng");
  {
    reader.expect("cursor");
    const std::uint64_t count = reader.u64();
    if (reader.failed || count > (1ULL << 24)) return false;
    state.cursor_next.reserve(count);
    for (std::uint64_t i = 0; i < count && !reader.failed; ++i) {
      state.cursor_next.push_back(static_cast<std::size_t>(reader.u64()));
    }
  }
  reader.expect("wstats");
  state.published = reader.u64();
  state.imported = reader.u64();
  state.puzzles_imported = reader.u64();
  state.syncs = reader.u64();
  state.published_corpus_revision = reader.u64();
  state.imported_global_revision = reader.u64();

  fuzz::FuzzerCheckpoint& cp = state.fuzzer;
  cp.rng = read_rng(reader, "rng");
  cp.dedup_current = reader.u64_list("dcur");
  cp.dedup_previous = reader.u64_list("dprev");
  reader.expect("crev");
  cp.corpus.revision = reader.u64();
  cp.corpus.exact = read_corpus_tier(reader, "exact");
  cp.corpus.shape = read_corpus_tier(reader, "shape");

  reader.expect("crashes");
  const std::uint64_t crashes = reader.u64();
  if (reader.failed || crashes > (1ULL << 24)) return false;
  cp.crashes.reserve(crashes);
  for (std::uint64_t i = 0; i < crashes && !reader.failed; ++i) {
    reader.expect("crash");
    fuzz::CrashRecord crash;
    crash.kind = static_cast<san::FaultKind>(reader.u64());
    crash.site = static_cast<std::uint32_t>(reader.u64());
    crash.hits = reader.u64();
    crash.first_execution = reader.u64();
    crash.trace_hash = reader.u64();
    crash.detail = reader.string();
    crash.reproducer = reader.blob();
    cp.crashes.push_back(std::move(crash));
  }

  reader.expect("stats");
  const std::uint64_t points = reader.u64();
  if (reader.failed || points > (1ULL << 24)) return false;
  cp.stats_points.reserve(points);
  for (std::uint64_t i = 0; i < points && !reader.failed; ++i) {
    reader.expect("pt");
    fuzz::Checkpoint point;
    point.executions = reader.u64();
    point.paths = static_cast<std::size_t>(reader.u64());
    point.edges = static_cast<std::size_t>(reader.u64());
    point.unique_crashes = static_cast<std::size_t>(reader.u64());
    point.corpus_size = static_cast<std::size_t>(reader.u64());
    point.wall_ns = reader.u64();
    cp.stats_points.push_back(point);
  }

  reader.expect("retained");
  const std::uint64_t retained = reader.u64();
  if (reader.failed || retained > (1ULL << 24)) return false;
  cp.retained.reserve(retained);
  for (std::uint64_t i = 0; i < retained && !reader.failed; ++i) {
    reader.expect("rs");
    fuzz::RetainedSeed seed;
    seed.execution = reader.u64();
    seed.model_name = reader.string();
    seed.bytes = reader.blob();
    cp.retained.push_back(std::move(seed));
  }

  cp.pending_batch = reader.bytes_list("pending");
  cp.mutation_pool = reader.bytes_list("pool");
  cp.imported = reader.bytes_list("queued");

  reader.expect("lifetime");
  cp.total_retained = reader.u64();
  cp.exported_retained = reader.u64();
  cp.distill_passes = reader.u64();
  cp.distill_dropped = reader.u64();

  reader.expect("exec");
  cp.executions = reader.u64();
  reader.expect("cov");
  cp.coverage = reader.blob();
  cp.path_hashes = reader.u64_list("paths");
  cp.session_states = reader.u64_list("sstates");
  reader.expect("endworker");
  return !reader.failed;
}

}  // namespace

std::string serialize_checkpoint(const CampaignCheckpoint& cp) {
  std::string out;
  out.reserve(1 << 16);
  out += kMagic;
  out += ' ';
  out += kVersion;
  out += '\n';
  put_tag(out, "campaign");
  put_u64(out, cp.completed_iterations);
  put_u64(out, cp.base_seed);
  put_u64(out, cp.iterations_per_worker);
  put_u64(out, cp.sync_interval);
  put_u64(out, cp.workers.size());
  out += '\n';
  for (const par::WorkerState& worker : cp.workers) put_worker(out, worker);
  out += "end\n";
  return out;
}

std::optional<CampaignCheckpoint> parse_checkpoint(std::string_view text) {
  TokenReader reader{text};
  reader.expect(kMagic);
  reader.expect(kVersion);
  CampaignCheckpoint cp;
  reader.expect("campaign");
  cp.completed_iterations = reader.u64();
  cp.base_seed = reader.u64();
  cp.iterations_per_worker = reader.u64();
  cp.sync_interval = reader.u64();
  const std::uint64_t workers = reader.u64();
  if (reader.failed || workers == 0 || workers > 1024) return std::nullopt;
  cp.workers.resize(workers);
  for (par::WorkerState& worker : cp.workers) {
    if (!read_worker(reader, worker)) return std::nullopt;
  }
  reader.expect("end");
  if (reader.failed) return std::nullopt;
  return cp;
}

std::optional<std::string> save_checkpoint(const CampaignCheckpoint& cp,
                                           const std::string& path) {
  return telem::write_text_atomic(path, serialize_checkpoint(cp));
}

std::optional<CampaignCheckpoint> load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_checkpoint(buffer.str());
}

}  // namespace icsfuzz::supervise
