// ForkServer — fuzzer-side client of the classic AFL two-pipe fork-server
// protocol (exec_protocol.hpp).
//
// One spawn pays the exec + dynamic-link cost once; every execution after
// that is a single fork() inside the target, which is what makes
// out-of-process fuzzing of real binaries viable at thousands of
// executions per second. The server process is the shim's request loop;
// the per-execution child is the shim's fork.
//
// Failure surface (all reported, never thrown — the campaign must outlive
// a dying target):
//   * spawn/handshake failure  -> start() false, error() says why
//   * per-exec wall-clock hang -> the shim SIGKILLs its own child at the
//                                 deadline (it owns the pid — no recycled
//                                 -pid hazard) and the run reports
//                                 kTimeout
//   * server death (EOF/EPIPE) -> the run reports kServerLost; the owner
//                                 (OutOfProcessExecutor) respawns
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace icsfuzz::oop {

class ForkServer {
 public:
  ForkServer() = default;
  ~ForkServer();

  ForkServer(const ForkServer&) = delete;
  ForkServer& operator=(const ForkServer&) = delete;

  /// One execution's transport-level outcome (the semantic mapping onto
  /// crash/hang/ok lives in OutOfProcessExecutor, which also reads the
  /// segment's aux block).
  struct RunOutcome {
    enum class Kind : std::uint8_t {
      kExited,      ///< child exited; exit_code valid
      kSignaled,    ///< child died on a signal; term_signal valid
      kTimeout,     ///< deadline hit; child was SIGKILLed
      kServerLost,  ///< the fork server itself is gone mid-run
    };
    Kind kind = Kind::kServerLost;
    int exit_code = 0;
    int term_signal = 0;
  };

  /// Spawns `argv` (argv[0] resolved through PATH) with `extra_env`
  /// appended to the inherited environment, performs the hello handshake.
  /// False on spawn or handshake failure (error() explains).
  bool start(const std::vector<std::string>& argv,
             const std::vector<std::string>& extra_env,
             int handshake_timeout_ms);

  /// Runs one packet with a wall-clock deadline, enforced by the shim on
  /// its own child. `timeout_ms` <= 0 disables the deadline end to end
  /// (the client then waits indefinitely; only pipe EOF catches a wedged
  /// server). Requires running().
  RunOutcome run(ByteSpan packet, int timeout_ms);

  /// Kills the server process (SIGKILL), reaps it, closes the pipes.
  /// Idempotent; start() may be called again afterwards.
  void stop();

  [[nodiscard]] bool running() const { return server_pid_ > 0; }
  [[nodiscard]] pid_t server_pid() const { return server_pid_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  pid_t server_pid_ = -1;
  int ctl_fd_ = -1;  ///< write side: [timeout_ms][len][packet] requests
  int st_fd_ = -1;   ///< read side: hello / [wstatus][timed_out] replies
  std::string error_;
};

}  // namespace icsfuzz::oop
