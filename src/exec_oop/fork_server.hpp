// ForkServer — fuzzer-side client of the classic AFL two-pipe fork-server
// protocol (exec_protocol.hpp).
//
// One spawn pays the exec + dynamic-link cost once; every execution after
// that is a single fork() inside the target — or, in persistent mode, one
// SIGCONT/SIGSTOP round trip of a long-lived child — which is what makes
// out-of-process fuzzing of real binaries viable at tens of thousands of
// executions per second. The server process is the shim's request loop;
// the per-execution child is the shim's fork (or persistent loop body).
//
// The handshake is versioned: a v1 server speaks fork-per-exec only, a v2
// server adds a capability word (persistent mode). start() records what
// the server offered; callers that want persistent execution check
// persistent_capable() and degrade to fork-per-exec when an old shim is
// on the other side.
//
// Failure surface (all reported, never thrown — the campaign must outlive
// a dying target):
//   * spawn/handshake failure  -> start() false, error() says why
//   * per-exec wall-clock hang -> the shim SIGKILLs its own child at the
//                                 deadline (it owns the pid — no recycled
//                                 -pid hazard) and the run reports
//                                 kTimeout
//   * orderly server exit      -> EOF plus exit status 0 (the shim
//                                 retired after its final execution);
//                                 reported kServerExited so telemetry
//                                 never books it as a lost server
//   * server death (EOF/EPIPE) -> the run reports kServerLost; the owner
//                                 (OutOfProcessExecutor) respawns
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exec_oop/exec_protocol.hpp"
#include "util/bytes.hpp"

namespace icsfuzz::oop {

class ForkServer {
 public:
  ForkServer() = default;
  ~ForkServer();

  ForkServer(const ForkServer&) = delete;
  ForkServer& operator=(const ForkServer&) = delete;

  /// One execution's transport-level outcome (the semantic mapping onto
  /// crash/hang/ok lives in OutOfProcessExecutor, which also reads the
  /// segment's aux block).
  struct RunOutcome {
    enum class Kind : std::uint8_t {
      kExited,        ///< child exited; exit_code valid
      kSignaled,      ///< child died on a signal; term_signal valid
      kTimeout,       ///< deadline hit; child was SIGKILLed
      kServerExited,  ///< server exited 0 in an orderly way (respawn, but
                      ///< do not count a lost server)
      kServerLost,    ///< the fork server itself is gone mid-run
    };
    Kind kind = Kind::kServerLost;
    int exit_code = 0;
    int term_signal = 0;
    /// The execution ran inside the persistent child (v2 reply flag).
    bool persistent = false;
    /// 1-based iteration "N of K" within the serving child (persistent).
    std::uint32_t iteration = 0;
    /// The serving child was recycled after this execution, and why.
    RecycleReason recycled = RecycleReason::kNone;
  };

  /// Spawns `argv` (argv[0] resolved through PATH) with `extra_env`
  /// appended to the inherited environment, performs the hello handshake.
  /// False on spawn or handshake failure (error() explains).
  bool start(const std::vector<std::string>& argv,
             const std::vector<std::string>& extra_env,
             int handshake_timeout_ms);

  /// Runs one packet fork-per-exec with a wall-clock deadline, enforced by
  /// the shim on its own child. `timeout_ms` <= 0 disables the deadline
  /// end to end (the client then waits indefinitely; only pipe EOF catches
  /// a wedged server). Requires running().
  RunOutcome run(ByteSpan packet, int timeout_ms);

  /// Persistent-mode single execution: the packet must already sit in the
  /// control word's shm slot (exec_protocol slot_store_packet). Requires
  /// persistent_capable().
  RunOutcome run_persistent(std::uint32_t control, int timeout_ms);

  /// Pipelined dispatch, persistent mode: queues one request without
  /// waiting for its reply (up to kNumSlots may be in flight; replies
  /// drain strictly in submission order through await_reply). False when
  /// the request could not be written — last_failure() says whether the
  /// server exited in an orderly way or was lost.
  bool submit(std::uint32_t control, int timeout_ms);

  /// Reads the next in-flight reply. `io_deadline_ms` bounds the wait
  /// (give it headroom for every exec still queued ahead); <= 0 waits
  /// indefinitely.
  RunOutcome await_reply(int io_deadline_ms);

  /// Kills the server process (SIGKILL), reaps it, closes the pipes.
  /// Idempotent; start() may be called again afterwards.
  void stop();

  [[nodiscard]] bool running() const { return server_pid_ > 0; }
  [[nodiscard]] pid_t server_pid() const { return server_pid_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Negotiated protocol version (1 or 2); 0 before the first handshake.
  [[nodiscard]] int protocol_version() const { return version_; }
  /// The server advertised the persistent capability (v2 only).
  [[nodiscard]] bool persistent_capable() const {
    return (caps_ & kCapPersistent) != 0;
  }
  /// How the last failed submit/run left the server (orderly vs lost).
  [[nodiscard]] RunOutcome::Kind last_failure() const { return last_failure_; }

 private:
  /// Writes one request ([timeout][control?][len][packet]) in the
  /// negotiated wire format; classifies the server on failure.
  bool write_request(std::uint32_t control, ByteSpan packet, int timeout_ms,
                     int io_deadline_ms);

  /// EOF/EPIPE on a pipe: decides kServerExited (reaped, exit status 0)
  /// vs kServerLost, updating last_failure_ and reaping an orderly exit.
  RunOutcome::Kind classify_server_gone();

  pid_t server_pid_ = -1;
  int ctl_fd_ = -1;  ///< write side: request stream
  int st_fd_ = -1;   ///< read side: hello / reply stream
  int version_ = 0;
  std::uint32_t caps_ = 0;
  RunOutcome::Kind last_failure_ = RunOutcome::Kind::kServerLost;
  std::string error_;
};

}  // namespace icsfuzz::oop
