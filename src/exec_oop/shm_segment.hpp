// POSIX shared-memory segment for out-of-process coverage collection.
//
// The paper's Peach*-clang instrumentation writes edge hits into "shared
// memory" (the AFL shm map); this class owns that segment on the fuzzer
// side. The primary backing is shm_open + mmap with a per-segment unique
// name: the name travels to the exec'd target through an environment
// variable (exec_protocol.hpp) and the child attaches with
// ShmSegment::attach. When the POSIX shm namespace is unavailable (no
// /dev/shm, sandboxed CI), creation falls back to an anonymous MAP_SHARED
// mapping, which survives fork() — enough for same-binary harnesses and
// the fallback's unit tests — but cannot be re-attached across exec(), so
// the fork server requires the named backing and reports a descriptive
// error otherwise.
//
// Lifetime: the name stays linked while the segment lives (a restarted
// fork server re-attaches by name) and is unlinked in the destructor.
// Unlinking early — by a peer, a cleanup race, or unlink_name() — never
// invalidates existing mappings; both sides keep working on the same
// pages, which the fault-injection suite asserts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace icsfuzz::oop {

class ShmSegment {
 public:
  ShmSegment() = default;
  ~ShmSegment();

  ShmSegment(ShmSegment&& other) noexcept;
  ShmSegment& operator=(ShmSegment&& other) noexcept;
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  /// Creates a fresh zero-filled segment of `size` bytes. Tries shm_open
  /// with a unique generated name first; `force_anonymous` (tests) or a
  /// failing shm namespace falls back to an anonymous shared mapping.
  static ShmSegment create(std::size_t size, bool force_anonymous = false);

  /// Maps an existing named segment (the target-side attach).
  static ShmSegment attach(const std::string& name, std::size_t size);

  [[nodiscard]] bool valid() const { return data_ != nullptr; }
  [[nodiscard]] std::uint8_t* data() { return data_; }
  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// The shm_open name ("/icsfuzz-..."), empty for the anonymous fallback.
  [[nodiscard]] const std::string& name() const { return name_; }

  /// True when backed by the named POSIX shm object (re-attachable across
  /// exec); false for the anonymous fork-only fallback.
  [[nodiscard]] bool named() const { return !name_.empty(); }

  /// Why create()/attach() produced an invalid segment.
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Removes the name from the shm namespace early (the mapping — ours and
  /// every attached peer's — stays fully usable). Idempotent.
  void unlink_name();

 private:
  void register_name();
  void forget_name();

  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::string name_;
  /// We unlink only names we created (an attach must not tear down the
  /// creator's segment on destruction).
  bool owns_name_ = false;
  std::string error_;
};

/// Unlinks every named segment this process created and has not yet
/// unlinked (the live-name registry create() maintains). The emergency
/// half of shm hygiene: a supervisor's signal-driven shutdown calls this
/// so an interrupted campaign leaves no /dev/shm residue even when
/// executor destructors never run. Mappings in use stay valid (POSIX
/// unlink-vs-mapping semantics). Returns the number of names unlinked.
std::size_t unlink_all_registered();

/// Sweeps /dev/shm for leaked icsfuzz segments whose creator is dead: the
/// generated names embed the creating pid, so any "icsfuzz-<pid>-..."
/// entry whose /proc/<pid> no longer exists is residue of a SIGKILLed
/// campaign and is unlinked. Safe to run concurrently with live campaigns
/// (their creator pids are alive). Returns the number of names unlinked.
std::size_t sweep_orphans();

}  // namespace icsfuzz::oop
