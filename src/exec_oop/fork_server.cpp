#include "exec_oop/fork_server.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "exec_oop/exec_protocol.hpp"

extern char** environ;

namespace icsfuzz::oop {

namespace {

/// A dead server must surface as EPIPE on the next write, not kill the
/// fuzzer with SIGPIPE. Installed once, process-wide, on first spawn —
/// the same disposition AFL-style frontends set up.
void ignore_sigpipe_once() {
  static const bool done = [] {
    struct sigaction action {};
    action.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &action, nullptr);
    return true;
  }();
  (void)done;
}

/// Resolves a bare command name through PATH *before* fork: the post-fork
/// child is restricted to async-signal-safe calls, which rules out
/// execvp's PATH walk (it may allocate). Returns the command unchanged
/// when it contains a slash or nothing on PATH matches (execve will then
/// fail and the child exits 127, surfacing as a handshake failure).
std::string resolve_executable(const std::string& command) {
  if (command.find('/') != std::string::npos) return command;
  const char* path = std::getenv("PATH");
  if (path == nullptr) return command;
  const std::string entries = path;
  std::size_t begin = 0;
  while (begin <= entries.size()) {
    const std::size_t end = entries.find(':', begin);
    const std::string dir = entries.substr(
        begin, end == std::string::npos ? std::string::npos : end - begin);
    if (!dir.empty()) {
      const std::string candidate = dir + "/" + command;
      if (::access(candidate.c_str(), X_OK) == 0) return candidate;
    }
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  return command;
}

/// True when `entry` ("NAME=value") defines the same NAME as `other`.
bool same_env_name(const char* entry, const std::string& other) {
  const std::size_t eq = other.find('=');
  if (eq == std::string::npos) return false;
  return std::strncmp(entry, other.c_str(), eq + 1) == 0;
}

/// Pipe-I/O deadline for one request/reply: the exec budget plus a grace
/// margin (the shim owns the real deadline; ours only catches a wedged
/// server). Negative for an unbounded exec budget.
int io_deadline_for(int timeout_ms) {
  if (timeout_ms <= 0) return -1;
  return timeout_ms > std::numeric_limits<int>::max() - 5000
             ? std::numeric_limits<int>::max()
             : timeout_ms + 5000;
}

}  // namespace

ForkServer::~ForkServer() { stop(); }

bool ForkServer::start(const std::vector<std::string>& argv,
                       const std::vector<std::string>& extra_env,
                       int handshake_timeout_ms) {
  stop();
  error_.clear();
  last_failure_ = RunOutcome::Kind::kServerLost;
  if (argv.empty()) {
    error_ = "empty target command";
    return false;
  }
  ignore_sigpipe_once();

  int ctl_pipe[2];
  int st_pipe[2];
  if (::pipe2(ctl_pipe, O_CLOEXEC) != 0) {
    error_ = std::string("pipe2(ctl): ") + std::strerror(errno);
    return false;
  }
  if (::pipe2(st_pipe, O_CLOEXEC) != 0) {
    error_ = std::string("pipe2(st): ") + std::strerror(errno);
    ::close(ctl_pipe[0]);
    ::close(ctl_pipe[1]);
    return false;
  }

  // Everything execve() needs is materialized BEFORE fork(): a worker
  // thread of a parallel campaign may fork while siblings hold allocator
  // locks, so the child must restrict itself to async-signal-safe calls
  // (setpgid/fcntl/dup2/execve/_exit). That includes the PATH walk —
  // resolved here, not via execvp in the child.
  const std::string executable = resolve_executable(argv[0]);
  std::vector<char*> child_argv;
  child_argv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    child_argv.push_back(const_cast<char*>(arg.c_str()));
  }
  child_argv.push_back(nullptr);

  // extra_env must OVERRIDE inherited duplicates, not merely follow them:
  // getenv returns the first match, so an inherited ICSFUZZ_OOP_SHM (a
  // debugging leftover, a nested harness) would otherwise shadow the
  // fresh per-spawn segment name.
  std::vector<char*> child_env;
  for (char** env = environ; *env != nullptr; ++env) {
    bool overridden = false;
    for (const std::string& entry : extra_env) {
      overridden |= same_env_name(*env, entry);
    }
    if (!overridden) child_env.push_back(*env);
  }
  for (const std::string& entry : extra_env) {
    child_env.push_back(const_cast<char*>(entry.c_str()));
  }
  child_env.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    error_ = std::string("fork: ") + std::strerror(errno);
    ::close(ctl_pipe[0]);
    ::close(ctl_pipe[1]);
    ::close(st_pipe[0]);
    ::close(st_pipe[1]);
    return false;
  }
  if (pid == 0) {
    // Child: lead a fresh process group — the shim's per-exec forks stay
    // in it, so stop()'s group kill reaps a wedged server AND any
    // in-flight exec child instead of orphaning the grandchild.
    ::setpgid(0, 0);
    // Install the protocol descriptors and exec the shim. Two edge cases
    // under fd pressure: a pipe end may already BE 198/199 (dup2 would be
    // a no-op that leaves O_CLOEXEC set and the fd closes across exec),
    // and the ctl end could occupy the st end's slot (the second dup2
    // would clobber it) — so first move any end sitting inside the target
    // range above it, then dup2 (which clears CLOEXEC) or clear CLOEXEC
    // in place. fcntl/dup2 are async-signal-safe.
    int ctl = ctl_pipe[0];
    int st = st_pipe[1];
    if (ctl == kCtlFd || ctl == kStFd) {
      ctl = ::fcntl(ctl, F_DUPFD, kStFd + 1);
    }
    if (st == kCtlFd || st == kStFd) {
      st = ::fcntl(st, F_DUPFD, kStFd + 1);
    }
    if (ctl < 0 || st < 0 || ::dup2(ctl, kCtlFd) < 0 ||
        ::dup2(st, kStFd) < 0) {
      ::_exit(126);
    }
    ::execve(executable.c_str(), child_argv.data(), child_env.data());
    ::_exit(127);
  }

  // Parent. The control pipe goes non-blocking: run() writes through the
  // deadline-aware poll loop, so a wedged server that stops draining the
  // pipe surfaces as a timeout instead of blocking the fuzzer forever on
  // a larger-than-pipe-buffer packet.
  ::close(ctl_pipe[0]);
  ::close(st_pipe[1]);
  ctl_fd_ = ctl_pipe[1];
  st_fd_ = st_pipe[0];
  ::fcntl(ctl_fd_, F_SETFL, ::fcntl(ctl_fd_, F_GETFL) | O_NONBLOCK);
  server_pid_ = pid;

  // Versioned hello: a v1 server sends the bare magic (fork-per-exec
  // only), a v2 server follows its magic with a capability word. Keeping
  // both accepted is what lets a new fuzzer drive an old shim binary —
  // it simply never gets the persistent capability and degrades to
  // fork-per-exec requests in the v1 wire format.
  version_ = 0;
  caps_ = 0;
  std::uint32_t hello = 0;
  ReadStatus status =
      read_full_deadline(st_fd_, &hello, sizeof(hello), handshake_timeout_ms);
  if (status == ReadStatus::kOk && hello == kHelloMagicV2) {
    status = read_full_deadline(st_fd_, &caps_, sizeof(caps_),
                                handshake_timeout_ms);
    if (status == ReadStatus::kOk) version_ = 2;
  } else if (status == ReadStatus::kOk && hello == kHelloMagic) {
    version_ = 1;
  }
  if (version_ == 0) {
    error_ = status == ReadStatus::kTimeout
                 ? "fork server handshake timed out"
                 : (status == ReadStatus::kClosed
                        ? "fork server exited before handshake"
                        : "fork server sent a bad hello");
    stop();
    return false;
  }
  return true;
}

ForkServer::RunOutcome::Kind ForkServer::classify_server_gone() {
  // EOF can race the exit status by a hair (the pipe ends close inside
  // the exiting process before it turns waitable), so poll briefly. An
  // orderly exit (status 0 — the shim retired after its final execution,
  // or was asked to shut down) is reaped here and must NOT be booked as a
  // lost server; anything else keeps the kServerLost verdict and leaves
  // stop() to do the killing.
  for (int spin = 0; server_pid_ > 0 && spin < 500; ++spin) {
    int wstatus = 0;
    const pid_t reaped = ::waitpid(server_pid_, &wstatus, WNOHANG);
    if (reaped == server_pid_) {
      server_pid_ = -1;  // already reaped: stop() must not kill this pid
      if (ctl_fd_ >= 0) ::close(ctl_fd_);
      if (st_fd_ >= 0) ::close(st_fd_);
      ctl_fd_ = st_fd_ = -1;
      last_failure_ = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0
                          ? RunOutcome::Kind::kServerExited
                          : RunOutcome::Kind::kServerLost;
      return last_failure_;
    }
    if (reaped < 0 && errno == EINTR) continue;  // supervisor signal; re-poll
    if (reaped != 0) break;  // ECHILD or error: treat as lost
    ::usleep(1000);
  }
  last_failure_ = RunOutcome::Kind::kServerLost;
  return last_failure_;
}

bool ForkServer::write_request(std::uint32_t control, ByteSpan packet,
                               int timeout_ms, int io_deadline_ms) {
  if (!running()) {
    // Keep last_failure_ as classify_server_gone() left it: a caller that
    // races a just-retired server still sees kServerExited, not a loss.
    error_ = "fork server not running";
    return false;
  }
  // timeout_ms <= 0 disables the per-exec wall-clock deadline end to end:
  // the shim disarms its interval timer and this side waits indefinitely
  // — a wedged server is then caught only by pipe EOF (the caller opted
  // out of wall-clock limits).
  const std::uint32_t wire_timeout =
      timeout_ms <= 0 ? 0 : static_cast<std::uint32_t>(timeout_ms);
  const std::uint32_t length = static_cast<std::uint32_t>(packet.size());

  ReadStatus status = write_full_deadline(ctl_fd_, &wire_timeout,
                                          sizeof(wire_timeout),
                                          io_deadline_ms);
  if (status == ReadStatus::kOk && version_ >= 2) {
    status = write_full_deadline(ctl_fd_, &control, sizeof(control),
                                 io_deadline_ms);
  }
  if (status == ReadStatus::kOk) {
    status = write_full_deadline(ctl_fd_, &length, sizeof(length),
                                 io_deadline_ms);
  }
  if (status == ReadStatus::kOk && length != 0) {
    status = write_full_deadline(ctl_fd_, packet.data(), length,
                                 io_deadline_ms);
  }
  if (status != ReadStatus::kOk) {
    if (status == ReadStatus::kTimeout) {
      error_ = "fork server stopped draining the request pipe";
      last_failure_ = RunOutcome::Kind::kServerLost;
    } else {
      error_ = "fork server pipe write failed (server gone?)";
      classify_server_gone();
    }
    return false;
  }
  return true;
}

bool ForkServer::submit(std::uint32_t control, int timeout_ms) {
  return write_request(control, {}, timeout_ms, io_deadline_for(timeout_ms));
}

ForkServer::RunOutcome ForkServer::await_reply(int io_deadline_ms) {
  RunOutcome outcome;
  if (st_fd_ < 0) {
    outcome.kind = last_failure_;
    return outcome;
  }

  // The shim owns the per-exec deadline (it SIGKILLs its own child when
  // the timer fires and reports timed_out) — our read deadline only has
  // to catch the server itself wedging, so it gets a generous grace
  // margin on top of the exec budget and expiry means server-gone, never
  // a hang verdict.
  std::int32_t wstatus = 0;
  std::uint32_t flags = 0;
  ReadStatus status =
      read_full_deadline(st_fd_, &wstatus, sizeof(wstatus), io_deadline_ms);
  if (version_ >= 2) {
    if (status == ReadStatus::kOk) {
      status = read_full_deadline(st_fd_, &flags, sizeof(flags),
                                  io_deadline_ms);
    }
    if (status == ReadStatus::kOk) {
      status = read_full_deadline(st_fd_, &outcome.iteration,
                                  sizeof(outcome.iteration), io_deadline_ms);
    }
  } else {
    std::uint8_t timed_out = 0;
    if (status == ReadStatus::kOk) {
      status = read_full_deadline(st_fd_, &timed_out, sizeof(timed_out),
                                  io_deadline_ms);
    }
    if (timed_out != 0) flags |= kReplyTimedOut;
  }
  if (status != ReadStatus::kOk) {
    error_ = "fork server died mid-execution";
    outcome.kind = status == ReadStatus::kClosed
                       ? classify_server_gone()
                       : RunOutcome::Kind::kServerLost;
    return outcome;
  }

  outcome.persistent = (flags & kReplyPersistent) != 0;
  outcome.recycled = (flags & kReplyChildRecycled) != 0
                         ? reply_recycle_reason(flags)
                         : RecycleReason::kNone;
  if ((flags & kReplyTimedOut) != 0) {
    outcome.kind = RunOutcome::Kind::kTimeout;
    outcome.term_signal = WIFSIGNALED(wstatus) ? WTERMSIG(wstatus) : SIGKILL;
  } else if (WIFSIGNALED(wstatus)) {
    outcome.kind = RunOutcome::Kind::kSignaled;
    outcome.term_signal = WTERMSIG(wstatus);
  } else {
    outcome.kind = RunOutcome::Kind::kExited;
    outcome.exit_code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 0;
  }
  return outcome;
}

ForkServer::RunOutcome ForkServer::run(ByteSpan packet, int timeout_ms) {
  const int io_deadline_ms = io_deadline_for(timeout_ms);
  if (!write_request(0, packet, timeout_ms, io_deadline_ms)) {
    RunOutcome outcome;
    outcome.kind = last_failure_;
    return outcome;
  }
  return await_reply(io_deadline_ms);
}

ForkServer::RunOutcome ForkServer::run_persistent(std::uint32_t control,
                                                  int timeout_ms) {
  const int io_deadline_ms = io_deadline_for(timeout_ms);
  if (!write_request(control, {}, timeout_ms, io_deadline_ms)) {
    RunOutcome outcome;
    outcome.kind = last_failure_;
    return outcome;
  }
  return await_reply(io_deadline_ms);
}

void ForkServer::stop() {
  if (ctl_fd_ >= 0) {
    ::close(ctl_fd_);
    ctl_fd_ = -1;
  }
  if (st_fd_ >= 0) {
    ::close(st_fd_);
    st_fd_ = -1;
  }
  if (server_pid_ > 0) {
    // Group kill first: the server leads its own process group (set up
    // before exec), so this also reaps any in-flight per-exec child a
    // wedged or already-dead server left behind. The direct kill is the
    // fallback for a server that died before setpgid took effect.
    ::kill(-server_pid_, SIGKILL);
    ::kill(server_pid_, SIGKILL);
    int wstatus = 0;
    while (::waitpid(server_pid_, &wstatus, 0) < 0 && errno == EINTR) {
    }
    server_pid_ = -1;
  }
}

}  // namespace icsfuzz::oop
