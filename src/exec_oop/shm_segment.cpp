#include "exec_oop/shm_segment.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <random>

namespace icsfuzz::oop {

namespace {

/// Monotonic per-process counter so concurrent workers of one campaign
/// never collide on a name; the pid disambiguates across live processes
/// and the random tag across pid-recycled ones (a SIGKILLed fuzzer leaks
/// its names, and a successor with the recycled pid must not land on
/// them — create() additionally retries on EEXIST).
std::string generate_name() {
  static std::atomic<std::uint64_t> counter{0};
  static const std::uint64_t tag = [] {
    std::random_device device;
    return (static_cast<std::uint64_t>(device()) << 32) ^ device();
  }();
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  char name[64];
  std::snprintf(name, sizeof(name), "/icsfuzz-%ld-%llx-%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(tag),
                static_cast<unsigned long long>(n));
  return name;
}

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

ShmSegment::~ShmSegment() {
  if (data_ != nullptr) ::munmap(data_, size_);
  if (owns_name_ && !name_.empty()) ::shm_unlink(name_.c_str());
}

ShmSegment::ShmSegment(ShmSegment&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      name_(std::move(other.name_)),
      owns_name_(other.owns_name_),
      error_(std::move(other.error_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.owns_name_ = false;
  other.name_.clear();
}

ShmSegment& ShmSegment::operator=(ShmSegment&& other) noexcept {
  if (this == &other) return *this;
  if (data_ != nullptr) ::munmap(data_, size_);
  if (owns_name_ && !name_.empty()) ::shm_unlink(name_.c_str());
  data_ = other.data_;
  size_ = other.size_;
  name_ = std::move(other.name_);
  owns_name_ = other.owns_name_;
  error_ = std::move(other.error_);
  other.data_ = nullptr;
  other.size_ = 0;
  other.owns_name_ = false;
  other.name_.clear();
  return *this;
}

ShmSegment ShmSegment::create(std::size_t size, bool force_anonymous) {
  ShmSegment segment;
  segment.size_ = size;

  if (!force_anonymous) {
    // A few attempts with fresh names: EEXIST means a leaked segment from
    // a killed predecessor (or an astronomically unlucky collision) is
    // squatting on the name — a different name recovers.
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::string name = generate_name();
      const int fd =
          ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
      if (fd < 0) {
        segment.error_ = errno_string("shm_open");
        if (errno == EEXIST) continue;
        break;
      }
      if (::ftruncate(fd, static_cast<off_t>(size)) == 0) {
        void* mapped = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                              MAP_SHARED, fd, 0);
        ::close(fd);
        if (mapped != MAP_FAILED) {
          segment.data_ = static_cast<std::uint8_t*>(mapped);
          segment.name_ = name;
          segment.owns_name_ = true;
          return segment;
        }
        segment.error_ = errno_string("mmap(shm)");
      } else {
        segment.error_ = errno_string("ftruncate(shm)");
        ::close(fd);
      }
      ::shm_unlink(name.c_str());
      break;
    }
    // Fall through to the anonymous fallback, keeping the shm error so a
    // later "needs a named segment" diagnostic can explain why there is
    // none.
  }

  void* mapped = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mapped == MAP_FAILED) {
    segment.error_ += segment.error_.empty() ? "" : "; ";
    segment.error_ += errno_string("mmap(anonymous)");
    segment.size_ = 0;
    return segment;
  }
  segment.data_ = static_cast<std::uint8_t*>(mapped);
  return segment;
}

ShmSegment ShmSegment::attach(const std::string& name, std::size_t size) {
  ShmSegment segment;
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) {
    segment.error_ = errno_string("shm_open(attach)");
    return segment;
  }
  void* mapped =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (mapped == MAP_FAILED) {
    segment.error_ = errno_string("mmap(attach)");
    return segment;
  }
  segment.data_ = static_cast<std::uint8_t*>(mapped);
  segment.size_ = size;
  segment.name_ = name;
  return segment;
}

void ShmSegment::unlink_name() {
  if (owns_name_ && !name_.empty()) {
    ::shm_unlink(name_.c_str());
    owns_name_ = false;
  }
}

}  // namespace icsfuzz::oop
