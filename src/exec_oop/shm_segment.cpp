#include "exec_oop/shm_segment.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <random>
#include <unordered_set>
#include <vector>

namespace icsfuzz::oop {

namespace {

/// Live created-and-not-yet-unlinked segment names, process-wide. The
/// normal lifecycle (destructor / unlink_name) keeps this empty at exit;
/// unlink_all_registered() drains whatever a signal-driven shutdown left.
struct NameRegistry {
  std::mutex mutex;
  std::unordered_set<std::string> names;

  static NameRegistry& instance() {
    static NameRegistry registry;
    return registry;
  }
};

/// Monotonic per-process counter so concurrent workers of one campaign
/// never collide on a name; the pid disambiguates across live processes
/// and the random tag across pid-recycled ones (a SIGKILLed fuzzer leaks
/// its names, and a successor with the recycled pid must not land on
/// them — create() additionally retries on EEXIST).
std::string generate_name() {
  static std::atomic<std::uint64_t> counter{0};
  static const std::uint64_t tag = [] {
    std::random_device device;
    return (static_cast<std::uint64_t>(device()) << 32) ^ device();
  }();
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  char name[64];
  std::snprintf(name, sizeof(name), "/icsfuzz-%ld-%llx-%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(tag),
                static_cast<unsigned long long>(n));
  return name;
}

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

void ShmSegment::register_name() {
  NameRegistry& registry = NameRegistry::instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.names.insert(name_);
}

void ShmSegment::forget_name() {
  NameRegistry& registry = NameRegistry::instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.names.erase(name_);
}

ShmSegment::~ShmSegment() {
  if (data_ != nullptr) ::munmap(data_, size_);
  if (owns_name_ && !name_.empty()) {
    ::shm_unlink(name_.c_str());
    forget_name();
  }
}

ShmSegment::ShmSegment(ShmSegment&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      name_(std::move(other.name_)),
      owns_name_(other.owns_name_),
      error_(std::move(other.error_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.owns_name_ = false;
  other.name_.clear();
}

ShmSegment& ShmSegment::operator=(ShmSegment&& other) noexcept {
  if (this == &other) return *this;
  if (data_ != nullptr) ::munmap(data_, size_);
  if (owns_name_ && !name_.empty()) {
    ::shm_unlink(name_.c_str());
    forget_name();
  }
  data_ = other.data_;
  size_ = other.size_;
  name_ = std::move(other.name_);
  owns_name_ = other.owns_name_;
  error_ = std::move(other.error_);
  other.data_ = nullptr;
  other.size_ = 0;
  other.owns_name_ = false;
  other.name_.clear();
  return *this;
}

ShmSegment ShmSegment::create(std::size_t size, bool force_anonymous) {
  ShmSegment segment;
  segment.size_ = size;

  if (!force_anonymous) {
    // A few attempts with fresh names: EEXIST means a leaked segment from
    // a killed predecessor (or an astronomically unlucky collision) is
    // squatting on the name — a different name recovers.
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::string name = generate_name();
      const int fd =
          ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
      if (fd < 0) {
        segment.error_ = errno_string("shm_open");
        if (errno == EEXIST) continue;
        break;
      }
      if (::ftruncate(fd, static_cast<off_t>(size)) == 0) {
        void* mapped = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                              MAP_SHARED, fd, 0);
        ::close(fd);
        if (mapped != MAP_FAILED) {
          segment.data_ = static_cast<std::uint8_t*>(mapped);
          segment.name_ = name;
          segment.owns_name_ = true;
          segment.register_name();
          return segment;
        }
        segment.error_ = errno_string("mmap(shm)");
      } else {
        segment.error_ = errno_string("ftruncate(shm)");
        ::close(fd);
      }
      ::shm_unlink(name.c_str());
      break;
    }
    // Fall through to the anonymous fallback, keeping the shm error so a
    // later "needs a named segment" diagnostic can explain why there is
    // none.
  }

  void* mapped = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mapped == MAP_FAILED) {
    segment.error_ += segment.error_.empty() ? "" : "; ";
    segment.error_ += errno_string("mmap(anonymous)");
    segment.size_ = 0;
    return segment;
  }
  segment.data_ = static_cast<std::uint8_t*>(mapped);
  return segment;
}

ShmSegment ShmSegment::attach(const std::string& name, std::size_t size) {
  ShmSegment segment;
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) {
    segment.error_ = errno_string("shm_open(attach)");
    return segment;
  }
  void* mapped =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (mapped == MAP_FAILED) {
    segment.error_ = errno_string("mmap(attach)");
    return segment;
  }
  segment.data_ = static_cast<std::uint8_t*>(mapped);
  segment.size_ = size;
  segment.name_ = name;
  return segment;
}

void ShmSegment::unlink_name() {
  if (owns_name_ && !name_.empty()) {
    ::shm_unlink(name_.c_str());
    forget_name();
    owns_name_ = false;
  }
}

std::size_t unlink_all_registered() {
  NameRegistry& registry = NameRegistry::instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::size_t unlinked = 0;
  for (const std::string& name : registry.names) {
    if (::shm_unlink(name.c_str()) == 0) ++unlinked;
  }
  registry.names.clear();
  return unlinked;
}

std::size_t sweep_orphans() {
  // The generated names are "/icsfuzz-<pid>-<tag>-<counter>"; /dev/shm
  // lists them without the leading slash. A dead creator pid marks the
  // segment as residue of a killed campaign.
  DIR* dir = ::opendir("/dev/shm");
  if (dir == nullptr) return 0;
  std::vector<std::string> orphans;
  constexpr const char* kPrefix = "icsfuzz-";
  while (const struct dirent* entry = ::readdir(dir)) {
    const char* name = entry->d_name;
    if (std::strncmp(name, kPrefix, std::strlen(kPrefix)) != 0) continue;
    char* end = nullptr;
    const long pid = std::strtol(name + std::strlen(kPrefix), &end, 10);
    if (pid <= 0 || end == nullptr || *end != '-') continue;
    char proc_path[64];
    std::snprintf(proc_path, sizeof(proc_path), "/proc/%ld", pid);
    if (::access(proc_path, F_OK) == 0) continue;  // creator still alive
    orphans.push_back("/" + std::string(name));
  }
  ::closedir(dir);
  std::size_t unlinked = 0;
  for (const std::string& orphan : orphans) {
    if (::shm_unlink(orphan.c_str()) == 0) ++unlinked;
  }
  return unlinked;
}

}  // namespace icsfuzz::oop
