#include "exec_oop/shim_runner.hpp"

#include <signal.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "coverage/instrument.hpp"
#include "exec_oop/exec_protocol.hpp"
#include "exec_oop/shm_segment.hpp"
#include "sanitizer/fault.hpp"
#include "supervise/resource_jail.hpp"

namespace icsfuzz::oop {

namespace {

std::uint64_t env_u64(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return 0;
  return std::strtoull(value, nullptr, 10);
}

/// Set by the SIGALRM handler when the per-exec deadline fires. The
/// handler only flags: the kill happens in normal context inside the
/// waitpid loop, where the child is provably not yet reaped — so the shim
/// can never SIGKILL a recycled pid.
volatile sig_atomic_t g_deadline_fired = 0;

void on_deadline(int) { g_deadline_fired = 1; }

/// Installs the SIGALRM disposition WITHOUT SA_RESTART, so the blocking
/// waitpid returns EINTR when the timer fires.
void install_deadline_handler() {
  struct sigaction action {};
  action.sa_handler = on_deadline;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ::sigaction(SIGALRM, &action, nullptr);
}

/// Arms (or with 0 disarms) the per-exec interval timer. The timer
/// REPEATS at the same period: a one-shot could fire (and be consumed by
/// the handler) in the window between arming and waitpid() blocking —
/// e.g. the shim descheduled on a loaded runner — after which a hung
/// child would block the shim forever. With a repeating interval the next
/// tick delivers another EINTR and the kill still happens.
void arm_deadline(std::uint32_t timeout_ms) {
  struct itimerval timer {};
  timer.it_value.tv_sec = timeout_ms / 1000;
  timer.it_value.tv_usec =
      static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  timer.it_interval = timer.it_value;
  ::setitimer(ITIMER_REAL, &timer, nullptr);
}

/// Waits for `child` with the per-exec deadline armed; SIGKILLs it when
/// the timer fires first. With `wait_stops` the waitpid also returns for a
/// child that stopped itself (the persistent child's iteration-complete
/// SIGSTOP). Returns the raw wstatus; `timed_out` reports a deadline kill.
int await_child(pid_t child, std::uint32_t timeout_ms, bool wait_stops,
                bool& timed_out) {
  g_deadline_fired = 0;
  if (timeout_ms != 0) arm_deadline(timeout_ms);
  int wstatus = 0;
  timed_out = false;
  const int options = wait_stops ? WUNTRACED : 0;
  for (;;) {
    const pid_t reaped = ::waitpid(child, &wstatus, options);
    if (reaped == child) {
      // After a deadline SIGKILL, a stop that was already pending can be
      // reported first; keep waiting for the termination so the child is
      // actually reaped (no zombie) before the hang verdict goes out.
      if (timed_out && WIFSTOPPED(wstatus)) continue;
      break;
    }
    if (reaped < 0 && errno == EINTR) {
      if (g_deadline_fired && !timed_out) {
        timed_out = true;
        // SIGKILL terminates even a stopped child, so a deadline that
        // races the iteration-complete stop still converges: whichever
        // state change waitpid reports first wins, and a just-stopped
        // child is reported as stopped (completed), not as a hang.
        ::kill(child, SIGKILL);
      }
      continue;
    }
    break;  // unexpected waitpid failure; report whatever we have
  }
  arm_deadline(0);
  return wstatus;
}

/// Fault-plan OOM hook: allocates address space until the resource jail's
/// new_handler fires (_exit through supervise::kOomExitCode). Chunks are
/// never touched, so an unjailed run consumes address space only, and
/// after a bounded number of allocations the child leaves through the
/// marker code anyway — the hook exists to drive the jail's kOom
/// classification path, not to actually exhaust the host.
[[noreturn]] void exhaust_memory() {
  constexpr std::size_t kChunkBytes = 64u << 20;  // 64 MiB per allocation
  for (int i = 0; i < (1 << 14); ++i) {           // <= 1 TiB of VA
    (void)new std::uint8_t[kChunkBytes];
  }
  ::_exit(supervise::kOomExitCode);
}

/// One fork-per-exec execution, inside the forked child: trace into the
/// v1 region of the shm segment, run the target, publish the aux block,
/// _exit. Never returns.
[[noreturn]] void run_child(ProtocolTarget& target, std::uint8_t* segment,
                            ByteSpan packet) {
  // Same arming order as the in-process Executor::run_into — reset,
  // fault sink, then tracing — so an instrumented reset() contributes to
  // neither the map nor the event count in either mode (the differential
  // oracle depends on this symmetry, not on reset() happening to be
  // uninstrumented).
  target.reset();
  san::FaultSink::arm();
  // The child's trace must satisfy the dirty-list invariant "every word not
  // listed is zero": the server memset the whole segment before forking,
  // and this list starts empty.
  static cov::DirtyWordList dirty;
  dirty.count = 0;
  cov::begin_trace(segment, &dirty);

  AuxResult result;
  target.process_into(packet, result.response);
  result.events = cov::tls_event_count;
  cov::end_trace();
  san::FaultSink::disarm_into(result.faults);

  aux_store(segment + kAuxOffset, kAuxBytes, result);
  // _exit (not exit): no atexit handlers, no stdio flush, and — under
  // AddressSanitizer — no leak check in the short-lived child; the parent
  // process is the one leak detection watches.
  ::_exit(0);
}

/// The persistent child's ICSFUZZ_LOOP: up to `budget` executions in one
/// process, one per wakeup. Each iteration reads its slot assignment from
/// the control block, restores the slot's map invariant with a sparse
/// clear (its own per-slot dirty list — nobody else writes a slot's map
/// while this child serves it), runs the target, publishes the slot's aux
/// block, and raises SIGSTOP to report completion. The final iteration
/// _exit(0)s instead — the budget-exhaustion recycle the shim re-forks
/// after. Never returns.
[[noreturn]] void run_persistent_child(ProtocolTarget& target,
                                       std::uint8_t* segment,
                                       const ShimFaultPlan& plan) {
  const std::uint32_t budget = ctl_load(segment).budget;
  // Per-slot dirty lists, paired with first-use flags: a slot is fully
  // zeroed the first time THIS child serves it (establishing "empty list
  // == all-zero map" whatever an earlier child left behind), and
  // sparse-cleared on every later iteration. Clearing lazily — instead of
  // the server wiping all slots at fork — matters with pipelining: at a
  // recycle boundary the client may not yet have read the previous
  // child's final slots, and the window protocol only guarantees a slot's
  // reply has been consumed before a NEW request lands on that slot.
  static cov::DirtyWordList dirty[kNumSlots];
  static bool slot_used[kNumSlots];
  for (cov::DirtyWordList& list : dirty) list.count = 0;
  for (bool& used : slot_used) used = false;
  AuxResult result;

  for (std::uint32_t iteration = 1;; ++iteration) {
    const CtlBlock ctl = ctl_load(segment);
    const std::uint32_t slot = ctl.slot < kNumSlots ? ctl.slot : 0;
    std::uint8_t* slot_base = segment + slot_offset(slot);

    // Fault-plan hooks key off the campaign-global execution index, same
    // semantics as the fork-per-exec path.
    if (plan.kill_child_at != 0 && ctl.exec_index == plan.kill_child_at) {
      ::raise(SIGKILL);
    }
    if (plan.segv_at != 0 && ctl.exec_index == plan.segv_at) {
      ::raise(SIGSEGV);
    }
    if (plan.hang_at != 0 && ctl.exec_index == plan.hang_at) {
      for (;;) ::pause();
    }
    if (plan.oom_at != 0 && ctl.exec_index == plan.oom_at) {
      exhaust_memory();
    }

    // Pristine slot state: full memset on this child's first use of the
    // slot, sparse-clear of the previous iteration's dirty words after
    // that (the in-process begin_execution analogue). Either way the aux
    // magic ends up invalidated, so a crash mid-iteration can never be
    // mistaken for a completed one.
    cov::DirtyWordList& slot_dirty = dirty[slot];
    if (!slot_used[slot]) {
      std::memset(slot_base, 0, cov::kMapSize + kAuxBytes);
      slot_used[slot] = true;
      slot_dirty.count = 0;
    } else {
      auto* words = reinterpret_cast<std::uint64_t*>(slot_base);
      for (std::uint32_t i = 0; i < slot_dirty.count; ++i) {
        words[slot_dirty.indices[i]] = 0;
      }
      slot_dirty.count = 0;
      std::memset(slot_base + kSlotAuxOffset, 0, 4);
    }

    target.reset();
    san::FaultSink::arm();
    cov::begin_trace(slot_base, &slot_dirty);

    result.response.clear();
    target.process_into(slot_load_packet(segment, slot), result.response);
    result.events = cov::tls_event_count;
    cov::end_trace();
    san::FaultSink::disarm_into(result.faults);

    aux_store(slot_base + kSlotAuxOffset, kAuxBytes, result);

    if (iteration >= budget) ::_exit(0);  // budget exhausted: recycle me
    // Iteration complete: stop until the shim SIGCONTs us with the next
    // assignment in the control block.
    ::raise(SIGSTOP);
  }
}

/// Shim-side bookkeeping for the persistent child.
struct PersistentChild {
  pid_t pid = -1;
  std::uint32_t iteration = 0;  ///< executions served by this child
  std::uint32_t budget = 0;

  [[nodiscard]] bool alive() const { return pid > 0; }
};

/// SIGKILLs and reaps a (possibly stopped) persistent child — shutdown
/// and server-retirement hygiene so no stopped process outlives the shim.
void kill_persistent_child(PersistentChild& child) {
  if (!child.alive()) return;
  ::kill(child.pid, SIGKILL);
  int wstatus = 0;
  while (::waitpid(child.pid, &wstatus, 0) < 0 && errno == EINTR) {
  }
  child.pid = -1;
}

}  // namespace

ShimFaultPlan shim_fault_plan_from_env() {
  ShimFaultPlan plan;
  plan.no_handshake = env_u64("ICSFUZZ_SHIM_NO_HANDSHAKE") != 0;
  plan.legacy_v1 = env_u64("ICSFUZZ_SHIM_LEGACY_V1") != 0;
  plan.kill_child_at = env_u64("ICSFUZZ_SHIM_KILL_CHILD_AT");
  plan.segv_at = env_u64("ICSFUZZ_SHIM_SEGV_AT");
  plan.hang_at = env_u64("ICSFUZZ_SHIM_HANG_AT");
  plan.oom_at = env_u64("ICSFUZZ_SHIM_OOM_AT");
  plan.server_exit_at = env_u64("ICSFUZZ_SHIM_SERVER_EXIT_AT");
  plan.server_retire_after = env_u64("ICSFUZZ_SHIM_SERVER_RETIRE_AFTER");
  return plan;
}

int run_shim_server(ProtocolTarget& target, const ShimFaultPlan& plan) {
  const char* shm_name = std::getenv(kShmNameEnv);
  const std::uint64_t shm_size = env_u64(kShmSizeEnv);
  if (shm_name == nullptr || shm_size < kSegmentBytes) {
    // Not spawned by a fork server; exiting without the hello makes the
    // client report a handshake failure with this code visible in ps/logs.
    return 3;
  }
  ShmSegment segment =
      ShmSegment::attach(shm_name, static_cast<std::size_t>(shm_size));
  if (!segment.valid()) return 3;
  // Persistent mode needs the v2 slot region; a client that mapped only
  // the v1 geometry gets a v1 server (and fork-per-exec semantics).
  const bool v2 = !plan.legacy_v1 && shm_size >= kSegmentBytesV2;

  if (plan.no_handshake) return 7;

  install_deadline_handler();
  if (v2) {
    const std::uint32_t hello[2] = {kHelloMagicV2, kCapPersistent};
    if (!write_full(kStFd, hello, sizeof(hello))) return 4;
  } else {
    const std::uint32_t hello = kHelloMagic;
    if (!write_full(kStFd, &hello, sizeof(hello))) return 4;
  }

  // The jail travels from the fuzzing parent as environment variables and
  // is applied inside every forked execution child — never in this server
  // process, which must stay alive across jail-killed children.
  const supervise::ResourceJail jail = supervise::jail_from_env();

  Bytes packet;
  PersistentChild persistent;
  std::uint64_t exec_index = 0;
  for (;;) {
    std::uint32_t timeout_ms = 0;
    std::uint32_t control = 0;
    std::uint32_t length = 0;
    if (!read_full(kCtlFd, &timeout_ms, sizeof(timeout_ms))) {
      kill_persistent_child(persistent);
      return 0;  // EOF: clean shutdown
    }
    if (v2 && !read_full(kCtlFd, &control, sizeof(control))) return 0;
    if (!read_full(kCtlFd, &length, sizeof(length))) return 0;
    packet.resize(length);
    if (length != 0 && !read_full(kCtlFd, packet.data(), length)) return 0;

    ++exec_index;
    if (plan.server_exit_at != 0 && exec_index == plan.server_exit_at) {
      return 9;  // simulated fork-server crash
    }

    std::int32_t wire_status = 0;
    std::uint32_t flags = 0;
    std::uint32_t iteration = 0;
    bool timed_out = false;

    if ((control & kCtlPersistent) != 0) {
      // -- Persistent iteration. ------------------------------------------
      const std::uint32_t slot = control_slot(control);
      std::uint32_t budget = control_budget(control);
      if (budget == 0) budget = 1;
      const bool fresh = !persistent.alive();
      ctl_store(segment.data(),
                CtlBlock{slot, fresh ? budget : persistent.budget,
                         exec_index});
      if (fresh) {
        // The child zeroes each slot on its own first use (see
        // run_persistent_child): wiping all slots here would destroy
        // results the pipelined client has not read yet.
        const pid_t child = ::fork();
        if (child < 0) return 5;
        if (child == 0) {
          supervise::apply_in_child(jail);
          run_persistent_child(target, segment.data(), plan);
        }
        persistent = PersistentChild{child, 1, budget};
      } else {
        ++persistent.iteration;
        ::kill(persistent.pid, SIGCONT);
      }

      const int wstatus = await_child(persistent.pid, timeout_ms,
                                      /*wait_stops=*/true, timed_out);
      iteration = persistent.iteration;
      flags = kReplyPersistent;
      wire_status = static_cast<std::int32_t>(wstatus);
      if (timed_out) {
        flags |= kReplyTimedOut | encode_recycle(RecycleReason::kHang);
        persistent.pid = -1;  // killed and reaped by await_child
      } else if (WIFSTOPPED(wstatus)) {
        wire_status = 0;  // iteration complete, child healthy
      } else if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0 &&
                 persistent.iteration >= persistent.budget) {
        // Orderly budget exhaustion: the execution completed (aux block
        // published) and the child retired itself.
        wire_status = 0;
        flags |= encode_recycle(RecycleReason::kBudget);
        persistent.pid = -1;
      } else {
        // Crash: signal, abnormal exit, or an exit-0 before the budget
        // (the target pulled the child down mid-loop).
        flags |= encode_recycle(RecycleReason::kCrash);
        persistent.pid = -1;
      }
    } else {
      // -- Fork-per-exec (v1 semantics; also v2 requests with control 0).
      //
      // Pristine v1 region for the child: the map invariant (all words
      // zero) and a magic-less aux block, whatever the previous child
      // left behind. The slot region keeps its own invariants (each
      // persistent child re-zeroes a slot on first use), so only the v1
      // region is touched here.
      std::memset(segment.data(), 0, kSegmentBytes);

      const pid_t child = ::fork();
      if (child < 0) return 5;
      if (child == 0) {
        supervise::apply_in_child(jail);
        if (plan.kill_child_at != 0 && exec_index == plan.kill_child_at) {
          ::raise(SIGKILL);
        }
        if (plan.segv_at != 0 && exec_index == plan.segv_at) {
          ::raise(SIGSEGV);
        }
        if (plan.hang_at != 0 && exec_index == plan.hang_at) {
          for (;;) ::pause();
        }
        if (plan.oom_at != 0 && exec_index == plan.oom_at) {
          exhaust_memory();
        }
        run_child(target, segment.data(), packet);
      }

      // The shim enforces the wall-clock deadline itself: it is the
      // child's parent, so between here and a successful waitpid the pid
      // provably belongs to this child and the SIGKILL can never hit a
      // recycled pid. A child that finishes right at the boundary is
      // reaped normally and reported as completed, not as a hang.
      const int wstatus = await_child(child, timeout_ms,
                                      /*wait_stops=*/false, timed_out);
      wire_status = static_cast<std::int32_t>(wstatus);
      if (timed_out) flags |= kReplyTimedOut;
    }

    if (v2) {
      if (!write_full(kStFd, &wire_status, sizeof(wire_status))) return 6;
      if (!write_full(kStFd, &flags, sizeof(flags))) return 6;
      if (!write_full(kStFd, &iteration, sizeof(iteration))) return 6;
    } else {
      const std::uint8_t wire_timed_out = timed_out ? 1 : 0;
      if (!write_full(kStFd, &wire_status, sizeof(wire_status))) return 6;
      if (!write_full(kStFd, &wire_timed_out, sizeof(wire_timed_out))) {
        return 6;
      }
    }

    if (plan.server_retire_after != 0 &&
        exec_index >= plan.server_retire_after) {
      // Orderly retirement: the reply above completed this execution, so
      // the client loses nothing — its next request sees EOF plus our
      // exit status 0 and respawns without charging a lost server.
      kill_persistent_child(persistent);
      return 0;
    }
  }
}

}  // namespace icsfuzz::oop
