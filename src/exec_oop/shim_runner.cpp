#include "exec_oop/shim_runner.hpp"

#include <signal.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "coverage/instrument.hpp"
#include "exec_oop/exec_protocol.hpp"
#include "exec_oop/shm_segment.hpp"
#include "sanitizer/fault.hpp"

namespace icsfuzz::oop {

namespace {

std::uint64_t env_u64(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return 0;
  return std::strtoull(value, nullptr, 10);
}

/// Set by the SIGALRM handler when the per-exec deadline fires. The
/// handler only flags: the kill happens in normal context inside the
/// waitpid loop, where the child is provably not yet reaped — so the shim
/// can never SIGKILL a recycled pid.
volatile sig_atomic_t g_deadline_fired = 0;

void on_deadline(int) { g_deadline_fired = 1; }

/// Installs the SIGALRM disposition WITHOUT SA_RESTART, so the blocking
/// waitpid returns EINTR when the timer fires.
void install_deadline_handler() {
  struct sigaction action {};
  action.sa_handler = on_deadline;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ::sigaction(SIGALRM, &action, nullptr);
}

/// Arms (or with 0 disarms) the per-exec interval timer. The timer
/// REPEATS at the same period: a one-shot could fire (and be consumed by
/// the handler) in the window between arming and waitpid() blocking —
/// e.g. the shim descheduled on a loaded runner — after which a hung
/// child would block the shim forever. With a repeating interval the next
/// tick delivers another EINTR and the kill still happens.
void arm_deadline(std::uint32_t timeout_ms) {
  struct itimerval timer {};
  timer.it_value.tv_sec = timeout_ms / 1000;
  timer.it_value.tv_usec =
      static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  timer.it_interval = timer.it_value;
  ::setitimer(ITIMER_REAL, &timer, nullptr);
}

/// One execution, inside the forked child: trace into the shm map, run the
/// target, publish the aux block, _exit. Never returns.
[[noreturn]] void run_child(ProtocolTarget& target, std::uint8_t* segment,
                            ByteSpan packet) {
  // Same arming order as the in-process Executor::run_into — reset,
  // fault sink, then tracing — so an instrumented reset() contributes to
  // neither the map nor the event count in either mode (the differential
  // oracle depends on this symmetry, not on reset() happening to be
  // uninstrumented).
  target.reset();
  san::FaultSink::arm();
  // The child's trace must satisfy the dirty-list invariant "every word not
  // listed is zero": the server memset the whole segment before forking,
  // and this list starts empty.
  static cov::DirtyWordList dirty;
  dirty.count = 0;
  cov::begin_trace(segment, &dirty);

  AuxResult result;
  target.process_into(packet, result.response);
  result.events = cov::tls_event_count;
  cov::end_trace();
  san::FaultSink::disarm_into(result.faults);

  aux_store(segment + kAuxOffset, kAuxBytes, result);
  // _exit (not exit): no atexit handlers, no stdio flush, and — under
  // AddressSanitizer — no leak check in the short-lived child; the parent
  // process is the one leak detection watches.
  ::_exit(0);
}

}  // namespace

ShimFaultPlan shim_fault_plan_from_env() {
  ShimFaultPlan plan;
  plan.no_handshake = env_u64("ICSFUZZ_SHIM_NO_HANDSHAKE") != 0;
  plan.kill_child_at = env_u64("ICSFUZZ_SHIM_KILL_CHILD_AT");
  plan.hang_at = env_u64("ICSFUZZ_SHIM_HANG_AT");
  plan.server_exit_at = env_u64("ICSFUZZ_SHIM_SERVER_EXIT_AT");
  return plan;
}

int run_shim_server(ProtocolTarget& target, const ShimFaultPlan& plan) {
  const char* shm_name = std::getenv(kShmNameEnv);
  const std::uint64_t shm_size = env_u64(kShmSizeEnv);
  if (shm_name == nullptr || shm_size < kSegmentBytes) {
    // Not spawned by a fork server; exiting without the hello makes the
    // client report a handshake failure with this code visible in ps/logs.
    return 3;
  }
  ShmSegment segment =
      ShmSegment::attach(shm_name, static_cast<std::size_t>(shm_size));
  if (!segment.valid()) return 3;

  if (plan.no_handshake) return 7;

  install_deadline_handler();
  const std::uint32_t hello = kHelloMagic;
  if (!write_full(kStFd, &hello, sizeof(hello))) return 4;

  Bytes packet;
  std::uint64_t exec_index = 0;
  for (;;) {
    std::uint32_t timeout_ms = 0;
    std::uint32_t length = 0;
    if (!read_full(kCtlFd, &timeout_ms, sizeof(timeout_ms))) {
      return 0;  // EOF: clean shutdown
    }
    if (!read_full(kCtlFd, &length, sizeof(length))) return 0;
    packet.resize(length);
    if (length != 0 && !read_full(kCtlFd, packet.data(), length)) return 0;

    ++exec_index;
    if (plan.server_exit_at != 0 && exec_index == plan.server_exit_at) {
      return 9;  // simulated fork-server crash
    }

    // Pristine segment for the child: the map invariant (all words zero)
    // and a magic-less aux block, whatever the previous child left behind.
    std::memset(segment.data(), 0, segment.size());

    const pid_t child = ::fork();
    if (child < 0) return 5;
    if (child == 0) {
      if (plan.kill_child_at != 0 && exec_index == plan.kill_child_at) {
        ::raise(SIGKILL);
      }
      if (plan.hang_at != 0 && exec_index == plan.hang_at) {
        for (;;) ::pause();
      }
      run_child(target, segment.data(), packet);
    }

    // The shim enforces the wall-clock deadline itself: it is the child's
    // parent, so between here and a successful waitpid the pid provably
    // belongs to this child and the SIGKILL can never hit a recycled pid.
    // A child that finishes right at the boundary is reaped normally and
    // reported as completed, not as a hang.
    g_deadline_fired = 0;
    if (timeout_ms != 0) arm_deadline(timeout_ms);
    int wstatus = 0;
    bool timed_out = false;
    for (;;) {
      const pid_t reaped = ::waitpid(child, &wstatus, 0);
      if (reaped == child) break;
      if (reaped < 0 && errno == EINTR) {
        if (g_deadline_fired && !timed_out) {
          timed_out = true;
          ::kill(child, SIGKILL);
        }
        continue;
      }
      break;  // unexpected waitpid failure; report whatever we have
    }
    arm_deadline(0);

    const std::int32_t wire_status = static_cast<std::int32_t>(wstatus);
    const std::uint8_t wire_timed_out = timed_out ? 1 : 0;
    if (!write_full(kStFd, &wire_status, sizeof(wire_status))) return 6;
    if (!write_full(kStFd, &wire_timed_out, sizeof(wire_timed_out))) {
      return 6;
    }
  }
}

}  // namespace icsfuzz::oop
