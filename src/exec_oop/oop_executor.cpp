#include "exec_oop/oop_executor.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "inject/inject_protocol.hpp"

namespace icsfuzz::oop {
namespace {

/// splitmix64 finalizer — the deterministic jitter hash (no RNG stream).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Backoff delay before the `consecutive`-th consecutive respawn
/// (1-based): initial * 2^(consecutive-1), capped, plus jitter.
std::uint32_t backoff_delay_ms(const RetryPolicy& policy,
                               std::uint32_t consecutive,
                               std::uint64_t jitter_key) {
  if (policy.backoff_initial_ms == 0 || consecutive == 0) return 0;
  std::uint64_t delay = policy.backoff_initial_ms;
  for (std::uint32_t i = 1; i < consecutive && delay < policy.backoff_max_ms;
       ++i) {
    delay *= 2;
  }
  delay = std::min<std::uint64_t>(delay, policy.backoff_max_ms);
  if (policy.jitter_pct != 0) {
    const std::uint64_t span = delay * policy.jitter_pct / 100;
    if (span != 0) delay += mix64(jitter_key) % (span + 1);
  }
  return static_cast<std::uint32_t>(delay);
}

}  // namespace

std::string to_string(ExecStatus status) {
  switch (status) {
    case ExecStatus::kOk: return "ok";
    case ExecStatus::kCrash: return "crash";
    case ExecStatus::kHang: return "hang";
    case ExecStatus::kOom: return "oom";
    case ExecStatus::kServerLost: return "server-lost";
  }
  return "?";
}

OutOfProcessExecutor::OutOfProcessExecutor(OopExecutorConfig config)
    : config_(std::move(config)) {}

OutOfProcessExecutor::~OutOfProcessExecutor() { shutdown(); }

void OutOfProcessExecutor::shutdown() {
  server_.stop();
  segment_ = ShmSegment();
  map_offset_ = 0;
}

bool OutOfProcessExecutor::spawn() {
  server_.stop();
  // A fresh segment per spawn: restart never races a peer's shm_unlink of
  // the previous name, and a crashed child can leave no stale bytes behind.
  // Always the v2 size — a v1 shim validates only the v1 prefix it uses,
  // so the extra slot region is invisible to it.
  segment_ = ShmSegment::create(kSegmentBytesV2);
  if (!segment_.valid()) {
    error_ = "shm segment creation failed: " + segment_.error();
    return false;
  }
  if (!segment_.named()) {
    error_ =
        "fork-server execution needs a named shm segment "
        "(anonymous fallback cannot cross exec): " +
        segment_.error();
    return false;
  }
  std::memset(segment_.data(), 0, segment_.size());
  map_offset_ = 0;

  std::vector<std::string> extra_env = {
      std::string(kShmNameEnv) + "=" + segment_.name(),
      std::string(kShmSizeEnv) + "=" + std::to_string(segment_.size()),
  };
  supervise::append_jail_env(config_.jail, extra_env);
  inject::append_preload_env(config_.preload, inject::kInjectModeFork,
                             extra_env);
  if (!server_.start(config_.target_cmd, extra_env,
                     config_.handshake_timeout_ms)) {
    error_ = server_.error();
    return false;
  }
  return true;
}

bool OutOfProcessExecutor::ensure_started() {
  if (server_.running()) return true;
  const RetryPolicy& policy = config_.retry;
  if (ever_started_) {
    // Crash-loop breaker: a server that keeps dying stops being respawned
    // once the lifetime budget is spent — campaigns then report
    // kServerLost per packet instead of forking a doomed target forever.
    if (policy.max_respawns >= 0 &&
        restarts_ >= static_cast<std::uint64_t>(policy.max_respawns)) {
      error_ = "crash-loop budget exhausted (" +
               std::to_string(policy.max_respawns) + " respawns)";
      return false;
    }
    // Exponential backoff (with deterministic jitter) before consecutive
    // respawns, so a crash-looping target does not busy-spin fork+exec.
    const std::uint32_t delay = backoff_delay_ms(
        policy, consecutive_respawns_ + 1, restarts_ + 1);
    if (delay != 0) ::usleep(delay * 1000u);
  }
  if (!spawn()) return false;
  // Count only successful respawns of a server that had previously come
  // up: a target that can never start keeps the counter at zero (that is
  // "server never started", not "server keeps dying" — the distinction
  // the fault-injection suite and the bench gate read).
  if (ever_started_) {
    ++restarts_;
    ++consecutive_respawns_;
  } else {
    ever_started_ = true;
  }
  return true;
}

void OutOfProcessExecutor::note_server_gone(ForkServer::RunOutcome::Kind kind) {
  if (kind == ForkServer::RunOutcome::Kind::kServerExited) {
    ++orderly_exits_;
  } else {
    error_ = server_.error();
  }
  server_.stop();
}

void OutOfProcessExecutor::classify(const ForkServer::RunOutcome& raw,
                                    std::size_t map_offset,
                                    std::size_t aux_offset, Outcome& out) {
  out.status = ExecStatus::kServerLost;
  out.term_signal = 0;
  out.exit_code = 0;
  out.persistent = raw.persistent;
  out.iteration = raw.iteration;
  out.child_recycled = raw.recycled != RecycleReason::kNone;
  if (out.child_recycled) ++child_recycles_;
  map_offset_ = map_offset;
  // Any classified outcome means the server answered — the crash loop (if
  // there was one) is over.
  consecutive_respawns_ = 0;

  const bool aux_complete =
      aux_load(segment_.data() + aux_offset, kAuxBytes, out.aux);
  switch (raw.kind) {
    case ForkServer::RunOutcome::Kind::kTimeout:
      out.status = ExecStatus::kHang;
      out.term_signal = raw.term_signal;
      break;
    case ForkServer::RunOutcome::Kind::kSignaled:
      out.status = ExecStatus::kCrash;
      out.term_signal = raw.term_signal;
      break;
    case ForkServer::RunOutcome::Kind::kExited:
      if (raw.exit_code == 0 && aux_complete) {
        out.status = ExecStatus::kOk;
      } else if (raw.exit_code == supervise::kOomExitCode) {
        // The resource jail's new_handler fired: allocation failure under
        // RLIMIT_AS, not a memory-safety crash.
        out.status = ExecStatus::kOom;
        out.exit_code = raw.exit_code;
        ++oom_kills_;
      } else {
        // A nonzero exit — or a clean exit that never finished the aux
        // block — is an abnormal termination mid-execution.
        out.status = ExecStatus::kCrash;
        out.exit_code = raw.exit_code;
      }
      break;
    case ForkServer::RunOutcome::Kind::kServerExited:
    case ForkServer::RunOutcome::Kind::kServerLost:
      break;  // callers handle server-gone before classify()
  }
}

void OutOfProcessExecutor::fail_outcome(Outcome& out) {
  // Both attempts failed: kServerLost with error_ describing why, and a
  // zeroed coverage window (the caller adopts an empty trace).
  if (segment_.valid()) {
    std::memset(segment_.data(), 0, segment_.size());
  }
  out.status = ExecStatus::kServerLost;
  out.term_signal = 0;
  out.exit_code = 0;
  out.persistent = false;
  out.iteration = 0;
  out.child_recycled = false;
  out.aux.events = 0;
  out.aux.faults.clear();
  out.aux.response.clear();
  out.aux.response_truncated = false;
  out.aux.faults_truncated = false;
  map_offset_ = 0;
}

const OutOfProcessExecutor::Outcome& OutOfProcessExecutor::run(
    ByteSpan packet) {
  Outcome& outcome = outcome_;
  for (int attempt = 0; attempt <= config_.retry.max_retries; ++attempt) {
    if (attempt == 1) ++retries_;
    if (!ensure_started()) continue;  // next attempt retries the spawn

    ForkServer::RunOutcome raw;
    std::size_t map_offset = 0;
    std::size_t aux_offset = kAuxOffset;
    // Persistent single-exec path: packet through slot 0, oversized
    // packets (rare — > kSlotTestCaseBytes) fall back to the v1-style
    // pipe request for this one execution.
    if (persistent_active() && slot_store_packet(segment_.data(), 0, packet)) {
      raw = server_.run_persistent(
          encode_control(0, config_.persistent_budget),
          config_.exec_timeout_ms);
      map_offset = slot_offset(0);
      aux_offset = slot_offset(0) + kSlotAuxOffset;
    } else {
      raw = server_.run(packet, config_.exec_timeout_ms);
    }

    if (raw.kind == ForkServer::RunOutcome::Kind::kServerExited ||
        raw.kind == ForkServer::RunOutcome::Kind::kServerLost) {
      note_server_gone(raw.kind);
      continue;  // respawn + retry once
    }
    classify(raw, map_offset, aux_offset, outcome);
    return outcome;
  }
  fail_outcome(outcome);
  return outcome;
}

std::size_t OutOfProcessExecutor::run_batch(
    const std::vector<Bytes>& packets,
    const std::function<void(std::size_t, const Outcome&)>& on_outcome) {
  std::size_t next_submit = 0;   // next packet to put on the wire
  std::size_t next_deliver = 0;  // next packet whose reply we owe

  while (next_deliver < packets.size()) {
    if (!persistent_active() || !ensure_started()) {
      // No pipelining available (fork-per-exec, v1 server, or the server
      // is down): drain the remainder through the sequential path, which
      // owns the respawn/retry policy.
      for (; next_deliver < packets.size(); ++next_deliver) {
        on_outcome(next_deliver, run(ByteSpan(packets[next_deliver])));
      }
      break;
    }

    // Fill the window: one in-flight request per shm slot. Replies drain
    // strictly in submission order, so slot i%kNumSlots is never reused
    // before its reply has been consumed.
    bool submit_failed = false;
    while (!submit_failed && next_submit < packets.size() &&
           next_submit - next_deliver < kNumSlots) {
      const std::uint32_t slot =
          static_cast<std::uint32_t>(next_submit % kNumSlots);
      if (!slot_store_packet(segment_.data(), slot,
                             ByteSpan(packets[next_submit]))) {
        break;  // oversized: drain in-flight first, then run() it inline
      }
      if (!server_.submit(encode_control(slot, config_.persistent_budget),
                          config_.exec_timeout_ms)) {
        submit_failed = true;
        break;
      }
      ++next_submit;
    }

    if (next_submit == next_deliver) {
      if (submit_failed) {
        // Request never went out: nothing in flight to drain. Respawn via
        // the sequential path (which counts the retry) and resubmit.
        note_server_gone(server_.last_failure());
        on_outcome(next_deliver, run(ByteSpan(packets[next_deliver])));
        ++next_deliver;
        next_submit = next_deliver;
      } else {
        // Oversized packet at the head of the queue.
        on_outcome(next_deliver, run(ByteSpan(packets[next_deliver])));
        ++next_deliver;
        next_submit = next_deliver;
      }
      continue;
    }

    // Drain one reply. The deadline covers every exec queued ahead of it
    // in the worst case, plus IO grace.
    const int deadline =
        config_.exec_timeout_ms > 0
            ? config_.exec_timeout_ms * static_cast<int>(kNumSlots) + 5000
            : -1;
    const ForkServer::RunOutcome raw = server_.await_reply(deadline);
    if (raw.kind == ForkServer::RunOutcome::Kind::kServerExited ||
        raw.kind == ForkServer::RunOutcome::Kind::kServerLost) {
      // Every in-flight reply is gone with the server. Re-run the whole
      // window sequentially (run() respawns and retries).
      note_server_gone(raw.kind);
      for (; next_deliver < next_submit; ++next_deliver) {
        on_outcome(next_deliver, run(ByteSpan(packets[next_deliver])));
      }
      next_submit = next_deliver;
      continue;
    }
    const std::uint32_t slot =
        static_cast<std::uint32_t>(next_deliver % kNumSlots);
    classify(raw, slot_offset(slot), slot_offset(slot) + kSlotAuxOffset,
             outcome_);
    on_outcome(next_deliver, outcome_);
    ++next_deliver;
  }
  return packets.size();
}

}  // namespace icsfuzz::oop
