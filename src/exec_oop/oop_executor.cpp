#include "exec_oop/oop_executor.hpp"

#include <cstring>

namespace icsfuzz::oop {

std::string to_string(ExecStatus status) {
  switch (status) {
    case ExecStatus::kOk: return "ok";
    case ExecStatus::kCrash: return "crash";
    case ExecStatus::kHang: return "hang";
    case ExecStatus::kServerLost: return "server-lost";
  }
  return "?";
}

OutOfProcessExecutor::OutOfProcessExecutor(OopExecutorConfig config)
    : config_(std::move(config)) {}

OutOfProcessExecutor::~OutOfProcessExecutor() { shutdown(); }

void OutOfProcessExecutor::shutdown() {
  server_.stop();
  segment_ = ShmSegment();
}

bool OutOfProcessExecutor::spawn() {
  server_.stop();
  // A fresh segment per spawn: restart never races a peer's shm_unlink of
  // the previous name, and a crashed child can leave no stale bytes behind.
  segment_ = ShmSegment::create(kSegmentBytes);
  if (!segment_.valid()) {
    error_ = "shm segment creation failed: " + segment_.error();
    return false;
  }
  if (!segment_.named()) {
    error_ =
        "fork-server execution needs a named shm segment "
        "(anonymous fallback cannot cross exec): " +
        segment_.error();
    return false;
  }
  std::memset(segment_.data(), 0, segment_.size());

  const std::vector<std::string> extra_env = {
      std::string(kShmNameEnv) + "=" + segment_.name(),
      std::string(kShmSizeEnv) + "=" + std::to_string(segment_.size()),
  };
  if (!server_.start(config_.target_cmd, extra_env,
                     config_.handshake_timeout_ms)) {
    error_ = server_.error();
    return false;
  }
  return true;
}

bool OutOfProcessExecutor::ensure_started() {
  if (server_.running()) return true;
  if (!spawn()) return false;
  // Count only successful respawns of a server that had previously come
  // up: a target that can never start keeps the counter at zero (that is
  // "server never started", not "server keeps dying" — the distinction
  // the fault-injection suite and the bench gate read).
  if (ever_started_) {
    ++restarts_;
  } else {
    ever_started_ = true;
  }
  return true;
}

const OutOfProcessExecutor::Outcome& OutOfProcessExecutor::run(
    ByteSpan packet) {
  Outcome& outcome = outcome_;
  outcome.status = ExecStatus::kServerLost;
  outcome.term_signal = 0;
  outcome.exit_code = 0;

  for (int attempt = 0; attempt < 2; ++attempt) {
    if (attempt == 1) ++retries_;
    if (!ensure_started()) continue;  // second attempt retries the spawn

    const ForkServer::RunOutcome raw =
        server_.run(packet, config_.exec_timeout_ms);
    if (raw.kind == ForkServer::RunOutcome::Kind::kServerLost) {
      error_ = server_.error();
      server_.stop();
      continue;  // respawn + retry once
    }

    const bool aux_complete =
        aux_load(segment_.data() + kAuxOffset, kAuxBytes, outcome.aux);
    switch (raw.kind) {
      case ForkServer::RunOutcome::Kind::kTimeout:
        outcome.status = ExecStatus::kHang;
        outcome.term_signal = raw.term_signal;
        break;
      case ForkServer::RunOutcome::Kind::kSignaled:
        outcome.status = ExecStatus::kCrash;
        outcome.term_signal = raw.term_signal;
        break;
      case ForkServer::RunOutcome::Kind::kExited:
        if (raw.exit_code == 0 && aux_complete) {
          outcome.status = ExecStatus::kOk;
        } else {
          // A nonzero exit — or a clean exit that never finished the aux
          // block — is an abnormal termination mid-execution.
          outcome.status = ExecStatus::kCrash;
          outcome.exit_code = raw.exit_code;
        }
        break;
      case ForkServer::RunOutcome::Kind::kServerLost:
        break;  // unreachable (handled above)
    }
    return outcome;
  }
  // Both attempts failed: leave kServerLost with error_ describing why,
  // and a zeroed coverage window (the caller adopts an empty trace).
  if (segment_.valid()) {
    std::memset(segment_.data(), 0, segment_.size());
  }
  outcome.aux.events = 0;
  outcome.aux.faults.clear();
  outcome.aux.response.clear();
  outcome.aux.response_truncated = false;
  outcome.aux.faults_truncated = false;
  return outcome;
}

}  // namespace icsfuzz::oop
