// Target-side half of the fork-server protocol: the request loop the shim
// binary (tools/icsfuzz_shim_target.cpp) runs around an instrumented
// ProtocolTarget.
//
// Kept in the library so the protocol has exactly one implementation on
// each side — the executor's client in fork_server.cpp, this server loop
// here — and so future real-target harnesses can reuse it by linking
// against their own ProtocolTarget.
#pragma once

#include "protocols/protocol_target.hpp"

namespace icsfuzz::oop {

/// Deterministic fault-injection knobs, parsed from the environment by the
/// shim binary (tests drive the fork-server failure surface with these;
/// all default to "off"). Execution indices are 1-based.
struct ShimFaultPlan {
  /// Exit (code 7) before writing the hello — a target that never
  /// handshakes.
  bool no_handshake = false;
  /// On execution #N the forked child SIGKILLs itself mid-execution.
  std::uint64_t kill_child_at = 0;
  /// On execution #N the forked child hangs forever (the executor's
  /// wall-clock deadline must reap it).
  std::uint64_t hang_at = 0;
  /// Before serving execution #N the server process itself exits (code 9)
  /// — a crashed fork server the executor must respawn.
  std::uint64_t server_exit_at = 0;
};

/// Reads the ICSFUZZ_SHIM_* fault-injection variables.
ShimFaultPlan shim_fault_plan_from_env();

/// Attaches the shm segment named by the environment (exec_protocol.hpp),
/// writes the hello, and serves run requests on the protocol descriptors
/// until the control pipe closes. Returns the process exit code.
int run_shim_server(ProtocolTarget& target, const ShimFaultPlan& plan);

}  // namespace icsfuzz::oop
