// Target-side half of the fork-server protocol: the request loop the shim
// binary (tools/icsfuzz_shim_target.cpp) runs around an instrumented
// ProtocolTarget.
//
// Kept in the library so the protocol has exactly one implementation on
// each side — the executor's client in fork_server.cpp, this server loop
// here — and so future real-target harnesses can reuse it by linking
// against their own ProtocolTarget.
//
// The shim speaks protocol v2 (exec_protocol.hpp) and advertises the
// persistent capability: fork-per-exec requests (control == 0) fork one
// child per execution exactly as v1 did, while persistent requests run K
// executions per child through an ICSFUZZ_LOOP-style loop — the child
// raises SIGSTOP between iterations (the AFL persistent-mode convention),
// the shim SIGCONTs it per request, and the child is re-forked
// automatically after a crash, a deadline kill, or budget exhaustion.
#pragma once

#include "protocols/protocol_target.hpp"

namespace icsfuzz::oop {

/// Deterministic fault-injection knobs, parsed from the environment by the
/// shim binary (tests drive the fork-server failure surface with these;
/// all default to "off"). Execution indices are 1-based.
struct ShimFaultPlan {
  /// Exit (code 7) before writing the hello — a target that never
  /// handshakes.
  bool no_handshake = false;
  /// Speak protocol v1 (bare hello, no capability word, fork-per-exec
  /// request format) — the handshake-negotiation tests use this to stand
  /// in for an old shim binary.
  bool legacy_v1 = false;
  /// On execution #N the (forked or persistent) child SIGKILLs itself
  /// mid-execution.
  std::uint64_t kill_child_at = 0;
  /// On execution #N the child raises SIGSEGV — a genuine memory-fault
  /// signal, so differential tests can compare the shim's crash
  /// classification bit-for-bit against a real segfaulting binary
  /// (kill_child_at's SIGKILL is indistinguishable from a deadline kill).
  std::uint64_t segv_at = 0;
  /// On execution #N the child hangs forever (the executor's wall-clock
  /// deadline must reap it).
  std::uint64_t hang_at = 0;
  /// On execution #N the child allocates until the resource jail's
  /// new_handler fires — the kOom classification path (pair with an
  /// ICSFUZZ_JAIL_AS_MB cap; an unjailed child exits through the marker
  /// code after a bounded number of untouched allocations).
  std::uint64_t oom_at = 0;
  /// Before serving execution #N the server process itself exits (code 9)
  /// — a crashed fork server the executor must respawn.
  std::uint64_t server_exit_at = 0;
  /// After serving N executions the server exits 0 — an ORDERLY
  /// retirement (periodic server recycling) the client must distinguish
  /// from a lost server. 0 disables.
  std::uint64_t server_retire_after = 0;
};

/// Reads the ICSFUZZ_SHIM_* fault-injection variables.
ShimFaultPlan shim_fault_plan_from_env();

/// Attaches the shm segment named by the environment (exec_protocol.hpp),
/// writes the hello, and serves run requests on the protocol descriptors
/// until the control pipe closes. Returns the process exit code.
int run_shim_server(ProtocolTarget& target, const ShimFaultPlan& plan);

}  // namespace icsfuzz::oop
