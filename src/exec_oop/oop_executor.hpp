// OutOfProcessExecutor — runs packets against an external fork-server
// target (the shim binary, or any program speaking exec_protocol.hpp) and
// exposes the raw observables the in-process Executor turns into an
// ExecResult: the shared-memory coverage words, the aux block (events,
// soft-sanitizer faults, response bytes), and the transport status.
//
// The ROADMAP's "real binaries under fork-server execution" unlock: the
// same sparse dirty-word + SIMD analysis of PRs 3-4 consumes the shm map
// via CoverageMap::adopt_external, so feedback semantics are bit-identical
// to in-process execution — the differential oracle test_exec_oop.cpp
// asserts exactly that.
//
// Robustness: a lost fork server (crashed, killed, never handshaken) is
// respawned transparently with a fresh shm segment and the packet retried
// once; a target that cannot be started at all degrades every run to
// kServerLost without throwing, so campaigns report the failure instead of
// dying.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec_oop/exec_protocol.hpp"
#include "exec_oop/fork_server.hpp"
#include "exec_oop/shm_segment.hpp"
#include "util/bytes.hpp"

namespace icsfuzz::oop {

/// Semantic outcome of one out-of-process execution.
enum class ExecStatus : std::uint8_t {
  kOk,          ///< child ran to completion (aux block valid)
  kCrash,       ///< child died on a signal / abnormal exit mid-execution
  kHang,        ///< wall-clock deadline expired; child was SIGKILLed
  kServerLost,  ///< fork server unreachable even after a respawn
};

std::string to_string(ExecStatus status);

struct OopExecutorConfig {
  /// argv of the fork-server target; argv[0] resolved through PATH.
  std::vector<std::string> target_cmd;
  /// Wall-clock deadline per execution (the safety net behind the
  /// deterministic event budget, which ships in the aux block).
  int exec_timeout_ms = 1000;
  /// Deadline for the spawn handshake.
  int handshake_timeout_ms = 5000;
};

class OutOfProcessExecutor {
 public:
  struct Outcome {
    ExecStatus status = ExecStatus::kServerLost;
    /// Signal that terminated the child (kCrash/kHang), 0 otherwise.
    int term_signal = 0;
    /// Child exit code (kCrash with a nonzero abnormal exit), 0 otherwise.
    int exit_code = 0;
    /// Aux-block observables; valid (and exact) only for kOk.
    AuxResult aux;
  };

  explicit OutOfProcessExecutor(OopExecutorConfig config);
  ~OutOfProcessExecutor();

  OutOfProcessExecutor(const OutOfProcessExecutor&) = delete;
  OutOfProcessExecutor& operator=(const OutOfProcessExecutor&) = delete;

  /// Ensures the fork server is up (spawning it on first use / after a
  /// loss). False when the target cannot be started; error() explains.
  bool ensure_started();

  /// Runs one packet, retrying once across a server respawn. The returned
  /// reference points at internal scratch refilled every run (vector
  /// capacities reused), valid until the next call.
  const Outcome& run(ByteSpan packet);

  /// The shm coverage words the last run produced (kMapWords uint64s),
  /// ready for CoverageMap::adopt_external. Null until the server started.
  [[nodiscard]] const std::uint64_t* map_words() const {
    return segment_.valid()
               ? reinterpret_cast<const std::uint64_t*>(segment_.data())
               : nullptr;
  }

  /// Successful respawns of a server that had previously come up (a
  /// target that never starts keeps this at 0) — 0 on a healthy campaign;
  /// the fault-injection suite watches this climb.
  [[nodiscard]] std::uint64_t server_restarts() const { return restarts_; }

  /// Packets that needed a second attempt after the first one lost the
  /// server (counted whether or not the retry then succeeded). Together
  /// with server_restarts() this feeds the telemetry registry's
  /// oop_restarts/oop_retries counters, which used to be visible only to
  /// the fault-injection tests.
  [[nodiscard]] std::uint64_t run_retries() const { return retries_; }

  [[nodiscard]] bool server_running() const { return server_.running(); }
  [[nodiscard]] const std::string& last_error() const { return error_; }
  [[nodiscard]] const ShmSegment& segment() const { return segment_; }
  [[nodiscard]] const OopExecutorConfig& config() const { return config_; }

  /// Tears the server down (next run respawns it).
  void shutdown();

 private:
  bool spawn();

  OopExecutorConfig config_;
  ShmSegment segment_;
  ForkServer server_;
  Outcome outcome_;
  std::string error_;
  std::uint64_t restarts_ = 0;
  std::uint64_t retries_ = 0;
  /// A spawn has succeeded at least once (gates restart counting).
  bool ever_started_ = false;
};

}  // namespace icsfuzz::oop
