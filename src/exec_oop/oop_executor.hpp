// OutOfProcessExecutor — runs packets against an external fork-server
// target (the shim binary, or any program speaking exec_protocol.hpp) and
// exposes the raw observables the in-process Executor turns into an
// ExecResult: the shared-memory coverage words, the aux block (events,
// soft-sanitizer faults, response bytes), and the transport status.
//
// The ROADMAP's "real binaries under fork-server execution" unlock: the
// same sparse dirty-word + SIMD analysis of PRs 3-4 consumes the shm map
// via CoverageMap::adopt_external, so feedback semantics are bit-identical
// to in-process execution — the differential oracle test_exec_oop.cpp
// asserts exactly that.
//
// Two execution modes behind one run() call:
//   * fork-per-exec — one fork() per packet (protocol v1 semantics; the
//     only mode a v1 shim offers).
//   * persistent    — `persistent_budget` > 1 and the server advertises
//     kCapPersistent: packets travel through shm test-case slots into a
//     long-lived child that loops K executions per process, which removes
//     the per-exec fork() and recovers an order of magnitude of
//     throughput. run_batch() additionally pipelines up to kNumSlots
//     requests so the round-trip stall disappears from replay-style
//     workloads. An old (v1) server silently degrades the executor to
//     fork-per-exec — persistent_active() reports what actually runs.
//
// Robustness: a lost fork server (crashed, killed, never handshaken) is
// respawned transparently with a fresh shm segment and the packet retried
// once; an *orderly* server exit (status 0 — e.g. periodic retirement) is
// respawned the same way but never booked as a lost server; a target that
// cannot be started at all degrades every run to kServerLost without
// throwing, so campaigns report the failure instead of dying.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec_oop/exec_protocol.hpp"
#include "exec_oop/fork_server.hpp"
#include "exec_oop/shm_segment.hpp"
#include "supervise/resource_jail.hpp"
#include "util/bytes.hpp"

namespace icsfuzz::oop {

/// Semantic outcome of one out-of-process execution.
enum class ExecStatus : std::uint8_t {
  kOk,          ///< child ran to completion (aux block valid)
  kCrash,       ///< child died on a signal / abnormal exit mid-execution
  kHang,        ///< wall-clock deadline expired; child was SIGKILLed
  kOom,         ///< resource jail fired: allocation failure under RLIMIT_AS
  kServerLost,  ///< fork server unreachable even after a respawn
};

std::string to_string(ExecStatus status);

/// Respawn/retry policy for a lost fork server. The defaults reproduce the
/// historical hard-coded behavior exactly: one retry per packet, unlimited
/// respawns, no backoff — so existing campaigns and the differential
/// oracles are bit-identical unless a supervisor opts in.
struct RetryPolicy {
  /// Extra attempts per packet after the first one loses the server.
  int max_retries = 1;
  /// Lifetime respawn budget — the crash-loop breaker. Once a server that
  /// had come up has been respawned this many times, further losses fail
  /// fast as kServerLost instead of forking a doomed target forever.
  /// Negative = unlimited.
  int max_respawns = -1;
  /// Backoff before the Nth consecutive respawn (doubling, capped at
  /// backoff_max_ms). 0 disables sleeping entirely.
  std::uint32_t backoff_initial_ms = 0;
  std::uint32_t backoff_max_ms = 2000;
  /// Deterministic jitter: up to this percentage is added on top of the
  /// backoff delay, derived by hashing the respawn count (no RNG stream —
  /// the fuzzing trajectory never depends on it).
  std::uint32_t jitter_pct = 0;
};

struct OopExecutorConfig {
  /// argv of the fork-server target; argv[0] resolved through PATH.
  std::vector<std::string> target_cmd;
  /// Wall-clock deadline per execution (the safety net behind the
  /// deterministic event budget, which ships in the aux block).
  int exec_timeout_ms = 1000;
  /// Deadline for the spawn handshake.
  int handshake_timeout_ms = 5000;
  /// Executions per persistent child (the ICSFUZZ_LOOP budget K). <= 1
  /// keeps fork-per-exec; larger values request persistent mode, which
  /// engages when the server also advertises the capability.
  std::uint32_t persistent_budget = 0;
  /// Lost-server respawn/retry policy (defaults preserve the historical
  /// respawn-once behavior).
  RetryPolicy retry;
  /// Resource jail applied inside every forked execution child (exported
  /// to the shim via environment). Disabled by default.
  supervise::ResourceJail jail;
  /// Path to libicsfuzz-preload.so. Non-empty: the target is spawned under
  /// the instrumentation-injection runtime (LD_PRELOAD + fork mode env), so
  /// a stock binary that never linked icsfuzz serves the fork-server
  /// protocol — src/inject/inject_protocol.hpp documents the contract.
  /// Empty (default): the target must speak the protocol natively (shim).
  std::string preload;
};

class OutOfProcessExecutor {
 public:
  struct Outcome {
    ExecStatus status = ExecStatus::kServerLost;
    /// Signal that terminated the child (kCrash/kHang), 0 otherwise.
    int term_signal = 0;
    /// Child exit code (kCrash with a nonzero abnormal exit), 0 otherwise.
    int exit_code = 0;
    /// The execution ran inside the persistent child.
    bool persistent = false;
    /// 1-based iteration "N of K" within the serving child (persistent).
    std::uint32_t iteration = 0;
    /// The serving child was recycled after this execution (persistent:
    /// budget exhaustion, crash, or hang — see status for which).
    bool child_recycled = false;
    /// Aux-block observables; valid (and exact) only for kOk.
    AuxResult aux;
  };

  explicit OutOfProcessExecutor(OopExecutorConfig config);
  ~OutOfProcessExecutor();

  OutOfProcessExecutor(const OutOfProcessExecutor&) = delete;
  OutOfProcessExecutor& operator=(const OutOfProcessExecutor&) = delete;

  /// Ensures the fork server is up (spawning it on first use / after a
  /// loss). False when the target cannot be started; error() explains.
  bool ensure_started();

  /// Runs one packet, retrying once across a server respawn. The returned
  /// reference points at internal scratch refilled every run (vector
  /// capacities reused), valid until the next call.
  const Outcome& run(ByteSpan packet);

  /// Pipelined batch dispatch (replay/bench/distill workloads — the
  /// adaptive fuzzing loop stays per-exec because generation depends on
  /// each result). Up to kNumSlots requests ride the pipe concurrently in
  /// persistent mode; outcomes are delivered strictly in packet order,
  /// each valid only for the duration of its callback (the scratch is
  /// reused). Falls back to sequential run() calls when persistent mode
  /// is inactive. Returns the number of packets executed (always
  /// packets.size(); failures surface per-outcome, not as early exits).
  std::size_t run_batch(
      const std::vector<Bytes>& packets,
      const std::function<void(std::size_t, const Outcome&)>& on_outcome);

  /// The shm coverage words the last outcome's execution produced
  /// (kMapWords uint64s), ready for CoverageMap::adopt_external — the v1
  /// map region or the persistent slot that served the execution. Null
  /// until the server started. During run_batch this advances with each
  /// callback.
  [[nodiscard]] const std::uint64_t* map_words() const {
    return segment_.valid()
               ? reinterpret_cast<const std::uint64_t*>(segment_.data() +
                                                        map_offset_)
               : nullptr;
  }

  /// Persistent mode requested by the config (budget > 1).
  [[nodiscard]] bool persistent_requested() const {
    return config_.persistent_budget > 1;
  }
  /// Persistent mode actually in effect: requested AND the serving shim
  /// advertised the capability. False before the first spawn and after a
  /// v1 server degraded us to fork-per-exec.
  [[nodiscard]] bool persistent_active() const {
    return persistent_requested() && server_.persistent_capable();
  }

  /// Successful respawns of a server that had previously come up (a
  /// target that never starts keeps this at 0) — 0 on a healthy campaign;
  /// the fault-injection suite watches this climb. Orderly exits count
  /// here too (the respawn is real) but never in the lost-server
  /// accounting.
  [[nodiscard]] std::uint64_t server_restarts() const { return restarts_; }

  /// Packets that needed a second attempt after the first one lost the
  /// server (counted whether or not the retry then succeeded). Together
  /// with server_restarts() this feeds the telemetry registry's
  /// oop_restarts/oop_retries counters, which used to be visible only to
  /// the fault-injection tests.
  [[nodiscard]] std::uint64_t run_retries() const { return retries_; }

  /// Orderly server exits (EOF + exit status 0) absorbed by a respawn —
  /// kept apart from lost servers so `oop_server_lost` telemetry does not
  /// overcount periodic retirement.
  [[nodiscard]] std::uint64_t orderly_server_exits() const {
    return orderly_exits_;
  }

  /// Persistent children recycled so far (budget exhaustion, crash or
  /// hang — each one costs the next request a fork).
  [[nodiscard]] std::uint64_t child_recycles() const {
    return child_recycles_;
  }

  /// Executions the resource jail terminated (classified kOom).
  [[nodiscard]] std::uint64_t oom_kills() const { return oom_kills_; }

  [[nodiscard]] bool server_running() const { return server_.running(); }
  [[nodiscard]] const std::string& last_error() const { return error_; }
  [[nodiscard]] const ShmSegment& segment() const { return segment_; }
  [[nodiscard]] const OopExecutorConfig& config() const { return config_; }
  [[nodiscard]] const ForkServer& server() const { return server_; }

  /// Tears the server down (next run respawns it).
  void shutdown();

 private:
  bool spawn();

  /// Maps a transport outcome + the aux block at `aux_offset` onto the
  /// semantic Outcome, and points map_words() at `map_offset`.
  void classify(const ForkServer::RunOutcome& raw, std::size_t map_offset,
                std::size_t aux_offset, Outcome& out);

  /// Handles a gone server (orderly vs lost) before a respawn attempt.
  void note_server_gone(ForkServer::RunOutcome::Kind kind);

  /// Zeroed-scratch outcome for the both-attempts-failed path.
  void fail_outcome(Outcome& out);

  OopExecutorConfig config_;
  ShmSegment segment_;
  ForkServer server_;
  Outcome outcome_;
  std::string error_;
  std::size_t map_offset_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t orderly_exits_ = 0;
  std::uint64_t child_recycles_ = 0;
  std::uint64_t oom_kills_ = 0;
  /// Respawns since the last successful reply — drives the exponential
  /// backoff and the crash-loop verdict; reset by any classified outcome.
  std::uint32_t consecutive_respawns_ = 0;
  /// A spawn has succeeded at least once (gates restart counting).
  bool ever_started_ = false;
};

}  // namespace icsfuzz::oop
