#include "exec_oop/exec_protocol.hpp"

#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace icsfuzz::oop {

namespace {

// Aux block fixed header (little-endian native; both sides are the same
// machine by construction):
//   u32 magic  u32 fault_count  u64 events  u32 response_len  u32 flags
// followed by fault_count * { u8 kind, u32 site, u32 detail_len, detail }
// and then response_len response bytes.
constexpr std::size_t kMagicOff = 0;
constexpr std::size_t kFaultCountOff = 4;
constexpr std::size_t kEventsOff = 8;
constexpr std::size_t kResponseLenOff = 16;
constexpr std::size_t kFlagsOff = 20;
constexpr std::size_t kPayloadOff = 24;
constexpr std::uint32_t kFlagResponseTruncated = 1u << 0;
constexpr std::uint32_t kFlagFaultsTruncated = 1u << 1;

template <typename T>
void store(std::uint8_t* base, std::size_t offset, T value) {
  std::memcpy(base + offset, &value, sizeof(T));
}

template <typename T>
T load(const std::uint8_t* base, std::size_t offset) {
  T value;
  std::memcpy(&value, base + offset, sizeof(T));
  return value;
}

}  // namespace

void aux_store(std::uint8_t* aux, std::size_t aux_size,
               const AuxResult& result) {
  store<std::uint32_t>(aux, kMagicOff, 0);  // not complete while writing
  store<std::uint64_t>(aux, kEventsOff, result.events);

  std::size_t cursor = kPayloadOff;
  std::uint32_t stored_faults = 0;
  std::uint32_t flags = 0;
  for (const san::FaultReport& fault : result.faults) {
    // Fault reports are short (a kind, a site, one diagnostic line); a
    // pathological stream that overflows the block clamps detail strings
    // first and drops whole reports last — either way the truncation flag
    // travels, so the parent knows the list is incomplete instead of
    // silently under-reporting.
    const std::size_t head = 1 + 4 + 4;
    if (cursor + head > aux_size) {
      flags |= kFlagFaultsTruncated;
      break;
    }
    std::size_t detail_len = fault.detail.size();
    if (cursor + head + detail_len > aux_size) {
      detail_len = aux_size - cursor - head;
      flags |= kFlagFaultsTruncated;
    }
    store<std::uint8_t>(aux, cursor, static_cast<std::uint8_t>(fault.kind));
    store<std::uint32_t>(aux, cursor + 1, fault.site);
    store<std::uint32_t>(aux, cursor + 5,
                         static_cast<std::uint32_t>(detail_len));
    std::memcpy(aux + cursor + head, fault.detail.data(), detail_len);
    cursor += head + detail_len;
    ++stored_faults;
  }
  store<std::uint32_t>(aux, kFaultCountOff, stored_faults);

  std::size_t response_len = result.response.size();
  if (cursor + response_len > aux_size) {
    response_len = aux_size - cursor;
    flags |= kFlagResponseTruncated;
  }
  if (response_len != 0) {
    std::memcpy(aux + cursor, result.response.data(), response_len);
  }
  store<std::uint32_t>(aux, kResponseLenOff,
                       static_cast<std::uint32_t>(response_len));
  store<std::uint32_t>(aux, kFlagsOff, flags);

  // Publish: everything above must be visible before the magic.
  std::atomic_thread_fence(std::memory_order_release);
  store<std::uint32_t>(aux, kMagicOff, kAuxCompleteMagic);
}

bool aux_load(const std::uint8_t* aux, std::size_t aux_size, AuxResult& out) {
  out.events = 0;
  out.faults.clear();
  out.response.clear();
  out.response_truncated = false;
  out.faults_truncated = false;
  if (load<std::uint32_t>(aux, kMagicOff) != kAuxCompleteMagic) return false;
  std::atomic_thread_fence(std::memory_order_acquire);

  out.events = load<std::uint64_t>(aux, kEventsOff);
  const std::uint32_t fault_count = load<std::uint32_t>(aux, kFaultCountOff);
  const std::uint32_t response_len =
      load<std::uint32_t>(aux, kResponseLenOff);
  const std::uint32_t flags = load<std::uint32_t>(aux, kFlagsOff);
  out.response_truncated = (flags & kFlagResponseTruncated) != 0;
  out.faults_truncated = (flags & kFlagFaultsTruncated) != 0;

  std::size_t cursor = kPayloadOff;
  for (std::uint32_t i = 0; i < fault_count; ++i) {
    if (cursor + 9 > aux_size) return false;  // corrupt block
    san::FaultReport fault;
    fault.kind =
        static_cast<san::FaultKind>(load<std::uint8_t>(aux, cursor));
    fault.site = load<std::uint32_t>(aux, cursor + 1);
    const std::uint32_t detail_len = load<std::uint32_t>(aux, cursor + 5);
    if (cursor + 9 + detail_len > aux_size) return false;
    fault.detail.assign(reinterpret_cast<const char*>(aux + cursor + 9),
                        detail_len);
    cursor += 9 + detail_len;
    out.faults.push_back(std::move(fault));
  }
  if (cursor + response_len > aux_size) return false;
  out.response.assign(aux + cursor, aux + cursor + response_len);
  return true;
}

void ctl_store(std::uint8_t* segment, const CtlBlock& ctl) {
  std::uint8_t* block = segment + kCtlBlockOffset;
  store<std::uint32_t>(block, 0, ctl.slot);
  store<std::uint32_t>(block, 4, ctl.budget);
  store<std::uint64_t>(block, 8, ctl.exec_index);
  std::atomic_thread_fence(std::memory_order_release);
}

CtlBlock ctl_load(const std::uint8_t* segment) {
  std::atomic_thread_fence(std::memory_order_acquire);
  const std::uint8_t* block = segment + kCtlBlockOffset;
  CtlBlock ctl;
  ctl.slot = load<std::uint32_t>(block, 0);
  ctl.budget = load<std::uint32_t>(block, 4);
  ctl.exec_index = load<std::uint64_t>(block, 8);
  return ctl;
}

bool slot_store_packet(std::uint8_t* segment, std::uint32_t slot,
                       ByteSpan packet) {
  if (packet.size() > kSlotTestCaseBytes - 4) return false;
  std::uint8_t* buffer = segment + slot_offset(slot) + kSlotTestCaseOffset;
  store<std::uint32_t>(buffer, 0, static_cast<std::uint32_t>(packet.size()));
  if (!packet.empty()) {
    std::memcpy(buffer + 4, packet.data(), packet.size());
  }
  return true;
}

ByteSpan slot_load_packet(const std::uint8_t* segment, std::uint32_t slot) {
  const std::uint8_t* buffer =
      segment + slot_offset(slot) + kSlotTestCaseOffset;
  std::uint32_t length = load<std::uint32_t>(buffer, 0);
  if (length > kSlotTestCaseBytes - 4) length = 0;  // corrupt header
  return ByteSpan(buffer + 4, length);
}

bool write_full(int fd, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, bytes + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_full(int fd, void* data, std::size_t size) {
  auto* bytes = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, bytes + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF
    got += static_cast<std::size_t>(n);
  }
  return true;
}

namespace {

/// Shared poll-then-transfer loop behind the deadline-aware exact read and
/// write. `events` is POLLIN or POLLOUT; `transfer` performs one
/// read/write step and reports bytes moved (0 = peer closed for reads;
/// writes report closure via -1/EPIPE).
template <typename Transfer>
ReadStatus full_io_deadline(int fd, std::size_t size, int timeout_ms,
                            short events, Transfer transfer) {
  using Clock = std::chrono::steady_clock;
  const bool unbounded = timeout_ms < 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(unbounded ? 0 : timeout_ms);
  std::size_t done = 0;
  while (done < size) {
    int wait_ms = -1;
    if (!unbounded) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - Clock::now());
      if (remaining.count() <= 0) return ReadStatus::kTimeout;
      wait_ms = static_cast<int>(remaining.count()) + 1;
    }
    struct pollfd pfd = {fd, events, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kClosed;
    }
    if (ready == 0) return ReadStatus::kTimeout;
    const ssize_t n = transfer(done);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return ReadStatus::kClosed;
    }
    if (n == 0 && events == POLLIN) return ReadStatus::kClosed;  // EOF
    done += static_cast<std::size_t>(n);
  }
  return ReadStatus::kOk;
}

}  // namespace

ReadStatus read_full_deadline(int fd, void* data, std::size_t size,
                              int timeout_ms) {
  auto* bytes = static_cast<std::uint8_t*>(data);
  return full_io_deadline(fd, size, timeout_ms, POLLIN,
                          [fd, bytes, size](std::size_t done) {
                            return ::read(fd, bytes + done, size - done);
                          });
}

ReadStatus write_full_deadline(int fd, const void* data, std::size_t size,
                               int timeout_ms) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  return full_io_deadline(fd, size, timeout_ms, POLLOUT,
                          [fd, bytes, size](std::size_t done) {
                            return ::write(fd, bytes + done, size - done);
                          });
}

}  // namespace icsfuzz::oop
