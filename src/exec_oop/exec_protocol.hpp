// Wire + segment protocol shared by the fuzzer-side fork-server client
// (fork_server.hpp / oop_executor.hpp) and the target-side shim loop
// (shim_runner.hpp, linked into tools/icsfuzz_shim_target.cpp).
//
// Segment layout (one ShmSegment of kSegmentBytes):
//
//   [0, kMapSize)                  raw edge-hit map (cov::kMapSize bytes),
//                                  written by the instrumented child via
//                                  cov::begin_trace into the mapping
//   [kAuxOffset, kAuxOffset+kAux)  auxiliary execution result, written by
//                                  the child just before _exit
//
// The aux block ships the observables a pipe could lose if the child died
// mid-write: the instrumentation event count (the deterministic hang
// budget), the soft-sanitizer fault reports, and the response bytes. The
// child stores the completion magic LAST (release fence); the parent reads
// it only after waitpid() has reaped the child, so a set magic implies a
// fully written block and a missing magic means the child never finished
// (killed, crashed, hung).
//
// Pipe protocol (classic AFL two-pipe handshake, enriched):
//
//   spawn:    shim dup2s the control pipe onto fd kCtlFd and the status
//             pipe onto fd kStFd, then writes kHelloMagic on kStFd.
//   per exec: executor writes [u32 timeout_ms][u32 packet_len][packet] on
//             kCtlFd. The shim clears the segment, forks, arms a
//             timeout_ms interval timer, waitpid()s the child (SIGKILLing
//             it when the timer fires first — the shim owns the pid, so
//             the kill can never hit a recycled pid, and a child that
//             finished just before the deadline is reaped normally, not
//             misreported), then writes [i32 wstatus][u8 timed_out] on
//             kStFd. The executor's own read deadline (timeout_ms plus
//             a grace margin) only guards against the server itself
//             wedging, which is reported as server-lost, not as a hang.
//   shutdown: executor closes the control pipe; the shim's packet read
//             sees EOF and exits cleanly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coverage/instrument.hpp"
#include "sanitizer/fault.hpp"
#include "util/bytes.hpp"

namespace icsfuzz::oop {

/// Fixed descriptors the shim inherits (AFL uses 198/199 for the same
/// purpose; keeping the convention makes the protocol self-describing).
inline constexpr int kCtlFd = 198;
inline constexpr int kStFd = 199;

/// First word the shim writes after attaching the segment ("ICSF").
inline constexpr std::uint32_t kHelloMagic = 0x49435346;

/// Aux-block completion magic ("OOP!"), stored last by the child.
inline constexpr std::uint32_t kAuxCompleteMagic = 0x4F4F5021;

/// Segment geometry: the coverage map followed by the aux result block.
inline constexpr std::size_t kAuxOffset = cov::kMapSize;
inline constexpr std::size_t kAuxBytes = std::size_t{1} << 16;
inline constexpr std::size_t kSegmentBytes = kAuxOffset + kAuxBytes;

/// Environment variables carrying the segment to the exec'd shim.
inline constexpr const char* kShmNameEnv = "ICSFUZZ_OOP_SHM";
inline constexpr const char* kShmSizeEnv = "ICSFUZZ_OOP_SHM_SIZE";

/// What one out-of-process execution reported back through the aux block.
struct AuxResult {
  std::uint64_t events = 0;
  std::vector<san::FaultReport> faults;
  Bytes response;
  /// The response did not fit the aux block and was truncated (the map and
  /// every other observable are still exact).
  bool response_truncated = false;
  /// Whole fault reports were dropped (or a detail string clamped) because
  /// the aux block filled — the shipped fault list is incomplete. The
  /// executor surfaces this as a synthetic fault so crash accounting never
  /// silently under-reports.
  bool faults_truncated = false;
};

/// Serializes `result` into the aux block (child side; `aux` points at
/// kAuxOffset, `aux_size` bytes available). Stores the completion magic
/// last, behind a release fence.
void aux_store(std::uint8_t* aux, std::size_t aux_size,
               const AuxResult& result);

/// Reads the aux block (parent side, after waitpid). Returns false when the
/// completion magic is absent — the child never finished its execution.
bool aux_load(const std::uint8_t* aux, std::size_t aux_size, AuxResult& out);

// -- Pipe plumbing (EINTR-safe, deadline-aware). ---------------------------

/// Writes exactly `size` bytes; false on error/EPIPE (server gone).
bool write_full(int fd, const void* data, std::size_t size);

/// Reads exactly `size` bytes; false on error or EOF.
bool read_full(int fd, void* data, std::size_t size);

/// Deadline-aware exact read. Returns kOk, kTimeout (deadline expired with
/// the read incomplete) or kClosed (error/EOF). A negative `timeout_ms`
/// waits indefinitely (no deadline).
enum class ReadStatus : std::uint8_t { kOk, kTimeout, kClosed };
ReadStatus read_full_deadline(int fd, void* data, std::size_t size,
                              int timeout_ms);

/// Deadline-aware exact write for a non-blocking descriptor: polls for
/// writability, so a wedged peer that stops draining the pipe surfaces as
/// kTimeout instead of blocking the caller forever (a full-buffer write to
/// a stopped reader otherwise blocks with no deadline at all). Negative
/// `timeout_ms` waits indefinitely; kClosed covers EPIPE/errors.
ReadStatus write_full_deadline(int fd, const void* data, std::size_t size,
                               int timeout_ms);

}  // namespace icsfuzz::oop
