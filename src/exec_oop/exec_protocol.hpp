// Wire + segment protocol shared by the fuzzer-side fork-server client
// (fork_server.hpp / oop_executor.hpp) and the target-side shim loop
// (shim_runner.hpp, linked into tools/icsfuzz_shim_target.cpp).
//
// Segment layout (one ShmSegment of kSegmentBytes):
//
//   [0, kMapSize)                  raw edge-hit map (cov::kMapSize bytes),
//                                  written by the instrumented child via
//                                  cov::begin_trace into the mapping
//   [kAuxOffset, kAuxOffset+kAux)  auxiliary execution result, written by
//                                  the child just before _exit
//
// The aux block ships the observables a pipe could lose if the child died
// mid-write: the instrumentation event count (the deterministic hang
// budget), the soft-sanitizer fault reports, and the response bytes. The
// child stores the completion magic LAST (release fence); the parent reads
// it only after waitpid() has reaped the child, so a set magic implies a
// fully written block and a missing magic means the child never finished
// (killed, crashed, hung).
//
// Pipe protocol (classic AFL two-pipe handshake, enriched, versioned):
//
//   spawn:    shim dup2s the control pipe onto fd kCtlFd and the status
//             pipe onto fd kStFd, then handshakes on kStFd. A v1 shim
//             writes the bare [u32 kHelloMagic]; a v2 shim writes
//             [u32 kHelloMagicV2][u32 caps] where caps advertises optional
//             features (kCapPersistent). The client accepts either hello
//             and downgrades its request format to what the server speaks,
//             which is how a new fuzzer degrades gracefully to
//             fork-per-exec against an old shim binary.
//   per exec: v1 request  [u32 timeout_ms][u32 packet_len][packet]
//             v2 request  [u32 timeout_ms][u32 control][u32 packet_len]
//                         [packet], where control == 0 keeps the v1
//                         fork-per-exec semantics and a persistent control
//                         word (encode_control) routes the execution into
//                         the persistent child over a shm test-case slot
//                         (packet_len is then 0 — the packet travels
//                         through the segment, not the pipe).
//             The shim runs the execution (fork per exec, or one iteration
//             of the persistent child's loop), SIGKILLing the child when
//             its timeout_ms interval timer fires first — the shim owns
//             the pid, so the kill can never hit a recycled pid — then
//             replies on kStFd:
//             v1 reply  [i32 wstatus][u8 timed_out]
//             v2 reply  [i32 wstatus][u32 flags][u32 iteration], flags
//                       carrying timed-out / ran-persistent / recycled
//                       (+ the recycle reason), iteration saying which
//                       "N of K" of the serving child this execution was.
//             The executor's own read deadline (timeout_ms plus a grace
//             margin) only guards against the server itself wedging,
//             which is reported as server-lost, not as a hang.
//   shutdown: executor closes the control pipe; the shim's request read
//             sees EOF, reaps any stopped persistent child and exits
//             cleanly (exit 0 — an *orderly* shutdown the client tells
//             apart from a lost server).
//
// Persistent mode (v2 + kCapPersistent): the shim forks one long-lived
// child that loops up to K executions (the request's budget). Between
// iterations the child raises SIGSTOP (AFL deferred/persistent-mode
// convention); the shim observes the stop via waitpid(WUNTRACED), which is
// the "iteration complete" signal, and SIGCONTs it when the next request
// arrives. The child _exit(0)s at iteration K (budget exhaustion) and the
// shim re-forks on the next request — likewise after a crash or a
// deadline kill, so one bad execution never poisons the loop. Each
// iteration's observables land in that request's shm *slot* (its own map,
// aux block and test-case buffer), so the client can pipeline up to
// kNumSlots requests into the pipe without a round-trip stall per exec
// and adopt each slot's results as the in-order replies drain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coverage/instrument.hpp"
#include "sanitizer/fault.hpp"
#include "util/bytes.hpp"

namespace icsfuzz::oop {

/// Fixed descriptors the shim inherits (AFL uses 198/199 for the same
/// purpose; keeping the convention makes the protocol self-describing).
inline constexpr int kCtlFd = 198;
inline constexpr int kStFd = 199;

/// First word the shim writes after attaching the segment ("ICSF") —
/// protocol v1: fork-per-exec only, no capability word.
inline constexpr std::uint32_t kHelloMagic = 0x49435346;

/// v2 hello magic ("ICS2"): followed by a u32 capability word.
inline constexpr std::uint32_t kHelloMagicV2 = 0x49435332;

/// Capability bits in the v2 hello.
inline constexpr std::uint32_t kCapPersistent = 1u << 0;

/// TCP session-server hello magic ("ICST"), written by a shim started in
/// `--tcp` mode (session/tcp_server.hpp) instead of the fork-server hellos
/// above, followed by [u32 port]: the loopback port the session server
/// accepts connections on. The segment then carries one extra sync block
/// after the v1 region (session/session_wire.hpp documents the geometry);
/// executions travel over the socket, not the control pipe — the pipe's
/// only remaining job is EOF-triggered shutdown.
inline constexpr std::uint32_t kTcpHelloMagic = 0x49435354;

/// Aux-block completion magic ("OOP!"), stored last by the child.
inline constexpr std::uint32_t kAuxCompleteMagic = 0x4F4F5021;

/// v1 segment geometry: the coverage map followed by the aux result block.
/// This region still serves every fork-per-exec execution (and is all a v1
/// shim ever touches).
inline constexpr std::size_t kAuxOffset = cov::kMapSize;
inline constexpr std::size_t kAuxBytes = std::size_t{1} << 16;
inline constexpr std::size_t kSegmentBytes = kAuxOffset + kAuxBytes;

/// v2 slot region, appended after the v1 region: kNumSlots independent
/// execution slots, each with its own coverage map, aux block and
/// test-case buffer, so up to kNumSlots persistent-mode requests can be in
/// flight (pipelined into the pipe) with no shared mutable state between
/// them.
inline constexpr std::uint32_t kNumSlots = 4;
inline constexpr std::size_t kSlotAuxOffset = cov::kMapSize;
inline constexpr std::size_t kSlotTestCaseOffset = kSlotAuxOffset + kAuxBytes;
inline constexpr std::size_t kSlotTestCaseBytes = std::size_t{1} << 16;
inline constexpr std::size_t kSlotBytes =
    kSlotTestCaseOffset + kSlotTestCaseBytes;
inline constexpr std::size_t kSlotsOffset = kSegmentBytes;

/// Per-iteration control block the shim writes before waking (or forking)
/// the persistent child: which slot this iteration serves, the loop budget
/// K, and the campaign-global execution index (fault-injection hooks key
/// off it, mirroring the fork-per-exec plan semantics).
inline constexpr std::size_t kCtlBlockOffset =
    kSlotsOffset + std::size_t{kNumSlots} * kSlotBytes;
inline constexpr std::size_t kCtlBlockBytes = 64;

/// Full v2 segment size (the client always creates this much; a v1 shim
/// simply never looks past kSegmentBytes).
inline constexpr std::size_t kSegmentBytesV2 = kCtlBlockOffset + kCtlBlockBytes;

/// Byte offset of persistent slot `slot` inside the segment.
[[nodiscard]] constexpr std::size_t slot_offset(std::uint32_t slot) {
  return kSlotsOffset + std::size_t{slot} * kSlotBytes;
}

// -- v2 request control word. ----------------------------------------------
//
// 0 = v1 fork-per-exec semantics (packet on the pipe, results in the v1
// region). Otherwise: bits [0,4) the slot index, bit 4 the persistent
// marker, bits [8,32) the iteration budget K.
inline constexpr std::uint32_t kCtlPersistent = 1u << 4;
inline constexpr std::uint32_t kCtlSlotMask = 0xF;
inline constexpr std::uint32_t kCtlBudgetShift = 8;

[[nodiscard]] constexpr std::uint32_t encode_control(std::uint32_t slot,
                                                     std::uint32_t budget) {
  return kCtlPersistent | (slot & kCtlSlotMask) |
         (budget << kCtlBudgetShift);
}
[[nodiscard]] constexpr std::uint32_t control_slot(std::uint32_t control) {
  return control & kCtlSlotMask;
}
[[nodiscard]] constexpr std::uint32_t control_budget(std::uint32_t control) {
  return control >> kCtlBudgetShift;
}

// -- v2 reply flags. -------------------------------------------------------
inline constexpr std::uint32_t kReplyTimedOut = 1u << 0;
/// The execution ran inside the persistent child (not a fresh fork).
inline constexpr std::uint32_t kReplyPersistent = 1u << 1;
/// The serving child is gone after this execution; the next request
/// re-forks. The recycle *reason* sits in bits [8,16).
inline constexpr std::uint32_t kReplyChildRecycled = 1u << 2;
inline constexpr std::uint32_t kReplyRecycleShift = 8;
enum class RecycleReason : std::uint8_t {
  kNone = 0,
  kBudget,  ///< orderly _exit(0) at iteration K
  kCrash,   ///< signal / abnormal exit mid-iteration
  kHang,    ///< deadline SIGKILL
};
[[nodiscard]] constexpr std::uint32_t encode_recycle(RecycleReason reason) {
  return kReplyChildRecycled |
         (static_cast<std::uint32_t>(reason) << kReplyRecycleShift);
}
[[nodiscard]] constexpr RecycleReason reply_recycle_reason(
    std::uint32_t flags) {
  return static_cast<RecycleReason>((flags >> kReplyRecycleShift) & 0xFF);
}

/// The per-iteration control block (kCtlBlockOffset).
struct CtlBlock {
  std::uint32_t slot = 0;
  std::uint32_t budget = 0;
  std::uint64_t exec_index = 0;
};

/// Publishes `ctl` into the segment (shim side, before fork/SIGCONT) /
/// reads it back (child side, after resuming). The kernel round trip of
/// the wakeup orders the accesses; the fences make the pairing explicit.
void ctl_store(std::uint8_t* segment, const CtlBlock& ctl);
CtlBlock ctl_load(const std::uint8_t* segment);

/// Writes `packet` into slot `slot`'s test-case buffer as [u32 len][bytes]
/// (client side). False when the packet exceeds the buffer — the caller
/// must fall back to a fork-per-exec request over the pipe.
bool slot_store_packet(std::uint8_t* segment, std::uint32_t slot,
                       ByteSpan packet);

/// The packet span stored in slot `slot` (persistent-child side).
ByteSpan slot_load_packet(const std::uint8_t* segment, std::uint32_t slot);

/// Environment variables carrying the segment to the exec'd shim.
inline constexpr const char* kShmNameEnv = "ICSFUZZ_OOP_SHM";
inline constexpr const char* kShmSizeEnv = "ICSFUZZ_OOP_SHM_SIZE";

/// What one out-of-process execution reported back through the aux block.
struct AuxResult {
  std::uint64_t events = 0;
  std::vector<san::FaultReport> faults;
  Bytes response;
  /// The response did not fit the aux block and was truncated (the map and
  /// every other observable are still exact).
  bool response_truncated = false;
  /// Whole fault reports were dropped (or a detail string clamped) because
  /// the aux block filled — the shipped fault list is incomplete. The
  /// executor surfaces this as a synthetic fault so crash accounting never
  /// silently under-reports.
  bool faults_truncated = false;
};

/// Serializes `result` into the aux block (child side; `aux` points at
/// kAuxOffset, `aux_size` bytes available). Stores the completion magic
/// last, behind a release fence.
void aux_store(std::uint8_t* aux, std::size_t aux_size,
               const AuxResult& result);

/// Reads the aux block (parent side, after waitpid). Returns false when the
/// completion magic is absent — the child never finished its execution.
bool aux_load(const std::uint8_t* aux, std::size_t aux_size, AuxResult& out);

// -- Pipe plumbing (EINTR-safe, deadline-aware). ---------------------------

/// Writes exactly `size` bytes; false on error/EPIPE (server gone).
bool write_full(int fd, const void* data, std::size_t size);

/// Reads exactly `size` bytes; false on error or EOF.
bool read_full(int fd, void* data, std::size_t size);

/// Deadline-aware exact read. Returns kOk, kTimeout (deadline expired with
/// the read incomplete) or kClosed (error/EOF). A negative `timeout_ms`
/// waits indefinitely (no deadline).
enum class ReadStatus : std::uint8_t { kOk, kTimeout, kClosed };
ReadStatus read_full_deadline(int fd, void* data, std::size_t size,
                              int timeout_ms);

/// Deadline-aware exact write for a non-blocking descriptor: polls for
/// writability, so a wedged peer that stops draining the pipe surfaces as
/// kTimeout instead of blocking the caller forever (a full-buffer write to
/// a stopped reader otherwise blocks with no deadline at all). Negative
/// `timeout_ms` waits indefinitely; kClosed covers EPIPE/errors.
ReadStatus write_full_deadline(int fd, const void* data, std::size_t size,
                               int timeout_ms);

}  // namespace icsfuzz::oop
