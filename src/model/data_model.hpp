// DataModel — one packet type's format tree, plus the linearisation the
// paper calls the "linear model ML" (§III, Figure 2a).
//
// A format specification (a Pit) yields a *set* of data models, one per
// packet type / function code; EXTRACTDATAMODEL in the paper's Algorithms 1
// and 2 corresponds to DataModelSet.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/chunk.hpp"

namespace icsfuzz::model {

class DataModel {
 public:
  DataModel(std::string name, Chunk root);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Chunk& root() const { return root_; }

  /// The function-code/opcode value this model produces, when the model
  /// represents one concrete packet type (metadata used by reports).
  [[nodiscard]] std::optional<std::uint64_t> opcode() const { return opcode_; }
  void set_opcode(std::uint64_t opcode) { opcode_ = opcode; }

  /// Linear model ML: the top-level fields in wire order (children of the
  /// root block, or the root itself when it is a leaf).
  [[nodiscard]] std::vector<const Chunk*> linear() const;

  /// All leaves in wire order (diagnostics, tests).
  [[nodiscard]] std::vector<const Chunk*> leaves() const;

  /// Finds any chunk by name (unique within a model; see validate()).
  [[nodiscard]] const Chunk* find(const std::string& name) const;

  /// Finds the Number chunk that carries a SizeOf/CountOf relation whose
  /// target is `name`, or nullptr (used by the parser to resolve variable
  /// lengths).
  [[nodiscard]] const Chunk* relation_source_for(const std::string& name) const;

  /// Structural validation; returns a human-readable error for the first
  /// problem found (duplicate names, dangling relation/fixup refs, zero
  /// widths, empty composites), or nullopt when well-formed.
  [[nodiscard]] std::optional<std::string> validate() const;

  [[nodiscard]] std::size_t node_count() const { return root_.node_count(); }

 private:
  std::string name_;
  Chunk root_;
  std::optional<std::uint64_t> opcode_;
};

/// The data-model set extracted from one format specification.
class DataModelSet {
 public:
  DataModelSet() = default;
  explicit DataModelSet(std::vector<DataModel> models);

  void add(DataModel model);

  [[nodiscard]] const std::vector<DataModel>& models() const { return models_; }
  [[nodiscard]] std::size_t size() const { return models_.size(); }
  [[nodiscard]] bool empty() const { return models_.empty(); }

  [[nodiscard]] const DataModel& at(std::size_t index) const {
    return models_.at(index);
  }

  [[nodiscard]] const DataModel* find(const std::string& name) const;

  /// Validates every model; first error wins.
  [[nodiscard]] std::optional<std::string> validate() const;

 private:
  std::vector<DataModel> models_;
};

}  // namespace icsfuzz::model
