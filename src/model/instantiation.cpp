#include "model/instantiation.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "util/hexdump.hpp"

namespace icsfuzz::model {
namespace {

// Resolved variable-length information gathered while parsing: maps a chunk
// name to the *byte length* its relation source dictates.
using LengthEnv = std::unordered_map<std::string, std::size_t>;

/// Inverts relation_value: given the parsed field value, how many wire bytes
/// does the target occupy?
std::optional<std::size_t> target_bytes_from_value(const Relation& relation,
                                                   std::uint64_t value) {
  const std::int64_t unbiased = static_cast<std::int64_t>(value) - relation.bias;
  if (unbiased < 0) return std::nullopt;
  switch (relation.kind) {
    case RelationKind::None:
      return std::nullopt;
    case RelationKind::SizeOf:
      return static_cast<std::size_t>(unbiased);
    case RelationKind::CountOf: {
      const std::uint32_t unit = relation.unit == 0 ? 1 : relation.unit;
      return static_cast<std::size_t>(unbiased) * unit;
    }
  }
  return std::nullopt;
}

class Parser {
 public:
  Parser(const DataModel& model, ByteSpan packet, const ParseOptions& options)
      : model_(model), packet_(packet), options_(options) {}

  std::optional<InsTree> run() {
    std::size_t pos = 0;
    auto root = parse_node(model_.root(), packet_, pos);
    if (!root) return std::nullopt;
    if (options_.require_full_consumption && pos != packet_.size()) {
      return std::nullopt;
    }
    InsTree tree;
    tree.model = &model_;
    tree.root = std::move(*root);
    if (options_.verify_relations && !verify_relations(tree)) return std::nullopt;
    if (options_.verify_fixups && !verify_fixups(tree)) return std::nullopt;
    return tree;
  }

 private:
  // Parses `chunk` from data[pos..); on success advances pos.
  std::optional<InsNode> parse_node(const Chunk& chunk, ByteSpan data,
                                    std::size_t& pos) {
    switch (chunk.kind()) {
      case ChunkKind::Number: return parse_number(chunk, data, pos);
      case ChunkKind::String: return parse_string(chunk, data, pos);
      case ChunkKind::Blob: return parse_blob(chunk, data, pos);
      case ChunkKind::Block: return parse_block(chunk, data, pos);
      case ChunkKind::Choice: return parse_choice(chunk, data, pos);
    }
    return std::nullopt;
  }

  std::optional<InsNode> parse_number(const Chunk& chunk, ByteSpan data,
                                      std::size_t& pos) {
    const NumberSpec& spec = chunk.number_spec();
    if (pos + spec.width > data.size()) return std::nullopt;
    const ByteSpan raw = data.subspan(pos, spec.width);
    const std::uint64_t value = decode_uint(raw, spec.endian);
    if (spec.is_token && value != spec.default_value) return std::nullopt;
    pos += spec.width;
    if (chunk.relation().active()) {
      if (auto bytes = target_bytes_from_value(chunk.relation(), value)) {
        env_[chunk.relation().target] = *bytes;
      } else {
        return std::nullopt;  // relation value underflows its bias
      }
    }
    InsNode node;
    node.rule = &chunk;
    node.content.assign(raw.begin(), raw.end());
    return node;
  }

  std::optional<InsNode> parse_string(const Chunk& chunk, ByteSpan data,
                                      std::size_t& pos) {
    const StringSpec& spec = chunk.string_spec();
    std::size_t length = 0;
    if (auto env_length = lookup_env(chunk.name())) {
      length = *env_length;
    } else if (spec.length) {
      length = *spec.length;
    } else if (spec.null_terminated) {
      // Scan for the terminator within the current scope.
      std::size_t scan = pos;
      while (scan < data.size() && data[scan] != 0) ++scan;
      if (scan >= data.size()) return std::nullopt;
      length = scan - pos;
    } else {
      length = data.size() - pos;  // rest of scope
    }
    const std::size_t terminator = spec.null_terminated ? 1 : 0;
    if (pos + length + terminator > data.size()) return std::nullopt;
    InsNode node;
    node.rule = &chunk;
    node.content.assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
                        data.begin() + static_cast<std::ptrdiff_t>(pos + length + terminator));
    if (spec.null_terminated && node.content.back() != 0) return std::nullopt;
    pos += length + terminator;
    return node;
  }

  std::optional<InsNode> parse_blob(const Chunk& chunk, ByteSpan data,
                                    std::size_t& pos) {
    const BlobSpec& spec = chunk.blob_spec();
    std::size_t length = 0;
    if (auto env_length = lookup_env(chunk.name())) {
      length = *env_length;
    } else if (spec.length) {
      length = *spec.length;
    } else {
      length = data.size() - pos;  // rest of scope
    }
    if (pos + length > data.size()) return std::nullopt;
    InsNode node;
    node.rule = &chunk;
    node.content.assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
                        data.begin() + static_cast<std::ptrdiff_t>(pos + length));
    pos += length;
    return node;
  }

  std::optional<InsNode> parse_block(const Chunk& chunk, ByteSpan data,
                                     std::size_t& pos) {
    // A block whose length is dictated by a relation parses its children
    // inside the carved sub-span and must consume it exactly.
    ByteSpan scope = data;
    std::size_t scope_pos = pos;
    bool carved = false;
    if (auto env_length = lookup_env(chunk.name())) {
      if (pos + *env_length > data.size()) return std::nullopt;
      scope = data.subspan(0, pos + *env_length);
      carved = true;
    }
    InsNode node;
    node.rule = &chunk;
    for (const Chunk& child : chunk.children()) {
      auto parsed = parse_node(child, scope, scope_pos);
      if (!parsed) return std::nullopt;
      node.children.push_back(std::move(*parsed));
    }
    if (carved && scope_pos != scope.size()) return std::nullopt;
    pos = scope_pos;
    return node;
  }

  std::optional<InsNode> parse_choice(const Chunk& chunk, ByteSpan data,
                                      std::size_t& pos) {
    for (std::size_t i = 0; i < chunk.children().size(); ++i) {
      // Alternatives may write to the length environment before failing, so
      // each attempt works on a scratch copy.
      LengthEnv saved = env_;
      std::size_t attempt_pos = pos;
      auto parsed = parse_node(chunk.children()[i], data, attempt_pos);
      if (parsed) {
        InsNode node;
        node.rule = &chunk;
        node.choice_index = i;
        node.children.push_back(std::move(*parsed));
        pos = attempt_pos;
        return node;
      }
      env_ = std::move(saved);
    }
    return std::nullopt;
  }

  std::optional<std::size_t> lookup_env(const std::string& name) const {
    auto it = env_.find(name);
    if (it == env_.end()) return std::nullopt;
    return it->second;
  }

  bool verify_relations(const InsTree& tree) const {
    bool ok = true;
    visit(tree.root, [&](const InsNode& node) {
      if (!ok || node.rule == nullptr || !node.rule->relation().active()) return;
      const InsNode* target = tree.root.find(node.rule->relation().target);
      if (target == nullptr) {
        ok = false;
        return;
      }
      const std::uint64_t expected =
          relation_value(node.rule->relation(), target->serialized_size());
      const std::uint64_t actual =
          decode_uint(node.content, node.rule->number_spec().endian);
      if (expected != actual) ok = false;
    });
    return ok;
  }

  bool verify_fixups(const InsTree& tree) const {
    bool ok = true;
    visit(tree.root, [&](const InsNode& node) {
      if (!ok || node.rule == nullptr || !node.rule->fixup().active()) return;
      const InsNode* ref = tree.root.find(node.rule->fixup().ref);
      if (ref == nullptr) {
        ok = false;
        return;
      }
      const NumberSpec& spec = node.rule->number_spec();
      const std::uint64_t mask =
          spec.width >= 8 ? ~0ULL : ((1ULL << (spec.width * 8)) - 1);
      const std::uint64_t expected =
          fixup_value(node.rule->fixup().kind, ref->serialize()) & mask;
      const std::uint64_t actual = decode_uint(node.content, spec.endian);
      if (expected != actual) ok = false;
    });
    return ok;
  }

  static void visit(const InsNode& node,
                    const std::function<void(const InsNode&)>& fn) {
    fn(node);
    for (const InsNode& child : node.children) visit(child, fn);
  }

  const DataModel& model_;
  ByteSpan packet_;
  ParseOptions options_;
  LengthEnv env_;
};

InsNode build_default(const Chunk& chunk) {
  InsNode node;
  node.rule = &chunk;
  switch (chunk.kind()) {
    case ChunkKind::Number: {
      const NumberSpec& spec = chunk.number_spec();
      node.content = encode_uint(spec.default_value, spec.width, spec.endian);
      break;
    }
    case ChunkKind::String: {
      const StringSpec& spec = chunk.string_spec();
      std::string text = spec.default_value;
      if (spec.length) text.resize(*spec.length, ' ');
      node.content = to_bytes(text);
      if (spec.null_terminated) node.content.push_back(0);
      break;
    }
    case ChunkKind::Blob: {
      const BlobSpec& spec = chunk.blob_spec();
      node.content = spec.default_value;
      if (spec.length) node.content.resize(*spec.length, 0);
      break;
    }
    case ChunkKind::Block:
      for (const Chunk& child : chunk.children()) {
        node.children.push_back(build_default(child));
      }
      break;
    case ChunkKind::Choice:
      node.choice_index = 0;
      node.children.push_back(build_default(chunk.children().front()));
      break;
  }
  return node;
}

void dump_node(const InsNode& node, std::size_t depth, std::string& out) {
  out.append(depth * 2, ' ');
  if (node.rule != nullptr) {
    out += node.rule->name();
    out += " <";
    out += to_string(node.rule->kind());
    out += ">";
  } else {
    out += "?";
  }
  if (node.opaque) out += " (opaque donor)";
  const Bytes bytes = node.serialize();
  out += " [" + std::to_string(bytes.size()) + "B]";
  if (node.rule != nullptr && (node.rule->is_leaf() || node.opaque)) {
    const std::size_t preview = std::min<std::size_t>(bytes.size(), 16);
    out += " ";
    out += to_hex(ByteSpan(bytes.data(), preview));
    if (bytes.size() > preview) out += "..";
  }
  out += "\n";
  for (const InsNode& child : node.children) dump_node(child, depth + 1, out);
}

}  // namespace

Bytes InsNode::serialize() const {
  Bytes out;
  out.reserve(serialized_size());
  serialize_append(out);
  return out;
}

void InsNode::serialize_append(Bytes& out) const {
  if ((rule != nullptr && rule->is_leaf()) || opaque) {
    append(out, content);
    return;
  }
  for (const InsNode& child : children) child.serialize_append(out);
}

std::size_t InsNode::serialized_size() const {
  if ((rule != nullptr && rule->is_leaf()) || opaque) return content.size();
  std::size_t total = 0;
  for (const InsNode& child : children) total += child.serialized_size();
  return total;
}

InsNode* InsNode::find(const std::string& name) {
  if (rule != nullptr && rule->name() == name) return this;
  for (InsNode& child : children) {
    if (InsNode* found = child.find(name)) return found;
  }
  return nullptr;
}

const InsNode* InsNode::find(const std::string& name) const {
  if (rule != nullptr && rule->name() == name) return this;
  for (const InsNode& child : children) {
    if (const InsNode* found = child.find(name)) return found;
  }
  return nullptr;
}

std::size_t InsNode::node_count() const {
  std::size_t count = 1;
  for (const InsNode& child : children) count += child.node_count();
  return count;
}

std::optional<InsTree> parse_packet(const DataModel& model, ByteSpan packet,
                                    const ParseOptions& options) {
  Parser parser(model, packet, options);
  return parser.run();
}

std::size_t apply_constraints(InsTree& tree) {
  if (tree.model == nullptr) return 0;
  std::size_t rewritten = 0;

  // Pass 1: relations. Relation fields are fixed-width numbers, so writing
  // them never changes any measured size.
  std::function<void(InsNode&)> fix_relations = [&](InsNode& node) {
    if (node.opaque) return;  // donor bytes are immutable
    if (node.rule != nullptr && node.rule->relation().active() &&
        node.rule->kind() == ChunkKind::Number) {
      const InsNode* target = tree.root.find(node.rule->relation().target);
      if (target != nullptr) {
        const NumberSpec& spec = node.rule->number_spec();
        const std::uint64_t value =
            relation_value(node.rule->relation(), target->serialized_size());
        Bytes encoded = encode_uint(value, spec.width, spec.endian);
        if (encoded != node.content) {
          node.content = std::move(encoded);
          ++rewritten;
        }
      }
    }
    for (InsNode& child : node.children) fix_relations(child);
  };
  fix_relations(tree.root);

  // Pass 2: fixups, innermost reference first so that an outer checksum
  // covers the final bytes of any inner one.
  struct FixupSite {
    InsNode* node = nullptr;
    std::size_t ref_depth = 0;
  };
  std::vector<FixupSite> sites;
  std::function<std::size_t(const InsNode&, const std::string&, std::size_t)>
      depth_of = [&](const InsNode& node, const std::string& name,
                     std::size_t depth) -> std::size_t {
    if (node.rule != nullptr && node.rule->name() == name) return depth;
    for (const InsNode& child : node.children) {
      const std::size_t found = depth_of(child, name, depth + 1);
      if (found != 0) return found;
    }
    return 0;
  };
  std::function<void(InsNode&)> collect = [&](InsNode& node) {
    if (node.opaque) return;
    if (node.rule != nullptr && node.rule->fixup().active() &&
        node.rule->kind() == ChunkKind::Number) {
      sites.push_back(
          {&node, depth_of(tree.root, node.rule->fixup().ref, 1)});
    }
    for (InsNode& child : node.children) collect(child);
  };
  collect(tree.root);
  std::stable_sort(sites.begin(), sites.end(),
                   [](const FixupSite& a, const FixupSite& b) {
                     return a.ref_depth > b.ref_depth;
                   });
  for (FixupSite& site : sites) {
    const InsNode* ref = tree.root.find(site.node->rule->fixup().ref);
    if (ref == nullptr) continue;
    const NumberSpec& spec = site.node->rule->number_spec();
    const std::uint64_t value =
        fixup_value(site.node->rule->fixup().kind, ref->serialize());
    Bytes encoded = encode_uint(value, spec.width, spec.endian);
    if (encoded != site.node->content) {
      site.node->content = std::move(encoded);
      ++rewritten;
    }
  }
  return rewritten;
}

InsTree default_instance(const DataModel& model) {
  InsTree tree;
  tree.model = &model;
  tree.root = build_default(model.root());
  apply_constraints(tree);
  return tree;
}

std::string dump_tree(const InsTree& tree) {
  std::string out;
  if (tree.model != nullptr) {
    out += "model " + tree.model->name() + "\n";
  }
  dump_node(tree.root, 0, out);
  return out;
}

}  // namespace icsfuzz::model
