#include "model/data_model.hpp"

#include <unordered_set>
#include <utility>

namespace icsfuzz::model {
namespace {

void collect_leaves(const Chunk& chunk, std::vector<const Chunk*>& out) {
  if (chunk.is_leaf()) {
    out.push_back(&chunk);
    return;
  }
  for (const Chunk& child : chunk.children()) collect_leaves(child, out);
}

const Chunk* find_relation_source(const Chunk& chunk, const std::string& name) {
  if (chunk.relation().active() && chunk.relation().target == name) {
    return &chunk;
  }
  for (const Chunk& child : chunk.children()) {
    if (const Chunk* found = find_relation_source(child, name)) return found;
  }
  return nullptr;
}

std::optional<std::string> validate_chunk(const Chunk& chunk, const Chunk& root,
                                          std::unordered_set<std::string>& names) {
  if (chunk.name().empty()) return "chunk with empty name";
  if (!names.insert(chunk.name()).second) {
    return "duplicate chunk name: " + chunk.name();
  }
  switch (chunk.kind()) {
    case ChunkKind::Number: {
      const NumberSpec& spec = chunk.number_spec();
      if (spec.width == 0 || spec.width > 8) {
        return "number width out of range: " + chunk.name();
      }
      break;
    }
    case ChunkKind::String: {
      const StringSpec& spec = chunk.string_spec();
      if (spec.length && *spec.length == 0 && !spec.null_terminated) {
        return "zero-length string without terminator: " + chunk.name();
      }
      break;
    }
    case ChunkKind::Blob:
      break;
    case ChunkKind::Block:
    case ChunkKind::Choice:
      if (chunk.children().empty()) {
        return "empty composite chunk: " + chunk.name();
      }
      break;
  }
  if (chunk.relation().active()) {
    if (chunk.kind() != ChunkKind::Number) {
      return "relation on non-number chunk: " + chunk.name();
    }
    if (root.find(chunk.relation().target) == nullptr) {
      return "relation target not found: " + chunk.relation().target +
             " (from " + chunk.name() + ")";
    }
  }
  if (chunk.fixup().active()) {
    if (chunk.kind() != ChunkKind::Number) {
      return "fixup on non-number chunk: " + chunk.name();
    }
    if (root.find(chunk.fixup().ref) == nullptr) {
      return "fixup ref not found: " + chunk.fixup().ref + " (from " +
             chunk.name() + ")";
    }
  }
  for (const Chunk& child : chunk.children()) {
    if (auto error = validate_chunk(child, root, names)) return error;
  }
  return std::nullopt;
}

}  // namespace

DataModel::DataModel(std::string name, Chunk root)
    : name_(std::move(name)), root_(std::move(root)) {}

std::vector<const Chunk*> DataModel::linear() const {
  std::vector<const Chunk*> out;
  if (root_.is_leaf() || root_.kind() == ChunkKind::Choice) {
    out.push_back(&root_);
    return out;
  }
  out.reserve(root_.children().size());
  for (const Chunk& child : root_.children()) out.push_back(&child);
  return out;
}

std::vector<const Chunk*> DataModel::leaves() const {
  std::vector<const Chunk*> out;
  collect_leaves(root_, out);
  return out;
}

const Chunk* DataModel::find(const std::string& name) const {
  return root_.find(name);
}

const Chunk* DataModel::relation_source_for(const std::string& name) const {
  return find_relation_source(root_, name);
}

std::optional<std::string> DataModel::validate() const {
  std::unordered_set<std::string> names;
  return validate_chunk(root_, root_, names);
}

DataModelSet::DataModelSet(std::vector<DataModel> models)
    : models_(std::move(models)) {}

void DataModelSet::add(DataModel model) { models_.push_back(std::move(model)); }

const DataModel* DataModelSet::find(const std::string& name) const {
  for (const DataModel& model : models_) {
    if (model.name() == name) return &model;
  }
  return nullptr;
}

std::optional<std::string> DataModelSet::validate() const {
  for (const DataModel& model : models_) {
    if (auto error = model.validate()) {
      return "model " + model.name() + ": " + *error;
    }
  }
  return std::nullopt;
}

}  // namespace icsfuzz::model
