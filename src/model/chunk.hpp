// Chunk — one node of a Peach data model tree (paper Figure 1).
//
// A chunk is a *construction rule*: it says how to produce (and how to
// re-parse) one region of a packet. Leaf kinds are Number, String and Blob;
// Block composes children in order; Choice selects one of several
// alternative children (how ICS pits model per-function-code payloads).
//
// Two hash keys identify a chunk's construction rule for the puzzle corpus
// (paper §IV-C/D):
//   * rule_key  — exact rule identity: kind + shape + semantic tag. Chunks
//     in *different* data models that represent the same protocol concept
//     (e.g. "register address") share a tag, which is precisely the
//     cross-packet-type similarity Peach* exploits.
//   * shape_key — weaker tier: kind + shape only, used as a fallback donor
//     match ("similar construction rules" in the paper's wording).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/fixup.hpp"
#include "model/relation.hpp"
#include "util/bytes.hpp"

namespace icsfuzz::model {

enum class ChunkKind : std::uint8_t { Number, String, Blob, Block, Choice };

std::string to_string(ChunkKind kind);

/// Numeric leaf: fixed-width unsigned integer field.
struct NumberSpec {
  std::size_t width = 1;           // bytes, 1..8
  Endian endian = Endian::Big;
  std::uint64_t default_value = 0;
  bool is_token = false;           // constant marker; anchors parsing
  /// Enumerated legal values (e.g. defined function codes); generation
  /// prefers these, parsing does not require them unless token.
  std::vector<std::uint64_t> legal_values;
  /// Optional closed range hint for generation.
  std::optional<std::uint64_t> min_value;
  std::optional<std::uint64_t> max_value;
};

/// Text leaf: ASCII string field.
struct StringSpec {
  std::optional<std::size_t> length;  // fixed byte length when set
  std::string default_value;
  bool null_terminated = false;       // parse/serialize a trailing NUL
  std::size_t max_generated = 32;     // generation length cap when variable
};

/// Raw byte leaf. Length is resolved, in priority order, from (1) a SizeOf /
/// CountOf relation elsewhere in the model, (2) the fixed `length`, or
/// (3) "rest of the enclosing scope".
struct BlobSpec {
  std::optional<std::size_t> length;
  Bytes default_value;
  std::size_t max_generated = 64;  // generation length cap when variable
  /// Element width for CountOf-driven lengths (wire bytes = count * unit).
  std::uint32_t unit = 1;
};

class Chunk {
 public:
  // -- Factories (the only way to build chunks; keeps invariants local). --
  static Chunk number(std::string name, NumberSpec spec);
  static Chunk token(std::string name, std::size_t width, Endian endian,
                     std::uint64_t value);
  static Chunk string(std::string name, StringSpec spec);
  static Chunk blob(std::string name, BlobSpec spec);
  static Chunk block(std::string name, std::vector<Chunk> children);
  static Chunk choice(std::string name, std::vector<Chunk> children);

  // -- Fluent attribute setters (return *this for builder-style pits). --
  Chunk& with_tag(std::string tag);
  Chunk& with_relation(Relation relation);
  Chunk& with_fixup(Fixup fixup);

  // -- Accessors. --
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& tag() const { return tag_; }
  [[nodiscard]] ChunkKind kind() const { return kind_; }
  [[nodiscard]] bool is_leaf() const {
    return kind_ == ChunkKind::Number || kind_ == ChunkKind::String ||
           kind_ == ChunkKind::Blob;
  }

  [[nodiscard]] const NumberSpec& number_spec() const { return number_; }
  [[nodiscard]] const StringSpec& string_spec() const { return string_; }
  [[nodiscard]] const BlobSpec& blob_spec() const { return blob_; }

  [[nodiscard]] const Relation& relation() const { return relation_; }
  [[nodiscard]] const Fixup& fixup() const { return fixup_; }

  [[nodiscard]] const std::vector<Chunk>& children() const { return children_; }
  [[nodiscard]] std::vector<Chunk>& children() { return children_; }

  /// Exact construction-rule identity (see file comment).
  [[nodiscard]] std::uint64_t rule_key() const;

  /// Weaker "similar rule" identity.
  [[nodiscard]] std::uint64_t shape_key() const;

  /// Fixed serialized width when statically known (Number always; String /
  /// Blob with fixed length; Block when all children are fixed).
  [[nodiscard]] std::optional<std::size_t> fixed_width() const;

  /// Depth-first search for a descendant (or this) by name.
  [[nodiscard]] const Chunk* find(const std::string& name) const;

  /// Total node count of this subtree (diagnostics / tests).
  [[nodiscard]] std::size_t node_count() const;

 private:
  Chunk(std::string name, ChunkKind kind) : name_(std::move(name)), kind_(kind) {}

  std::string name_;
  std::string tag_;  // semantic tag; defaults to name
  ChunkKind kind_;
  NumberSpec number_;
  StringSpec string_;
  BlobSpec blob_;
  Relation relation_;
  Fixup fixup_;
  std::vector<Chunk> children_;
};

}  // namespace icsfuzz::model
