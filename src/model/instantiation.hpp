// Instantiation Tree — Definition 1 in the paper: the same shape as the
// data model tree, but with each construction-rule node replaced by a
// realistic data chunk.
//
// Two producers build InsTrees:
//   * the generators (baseline mutator-driven and Peach*'s semantic-aware
//     strategy) build them top-down, then serialize;
//   * the parser (`parse_packet`) builds them bottom-up from wire bytes —
//     this is PARSE(M, Iv) in the paper's Algorithm 2, the entry point of
//     the File Cracker.
//
// `apply_constraints` implements the File Fixup module (§IV-D): it rewrites
// relation-carrying numbers (size-of / count-of) from measured child sizes
// and then recomputes checksum fixups, innermost first.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model/data_model.hpp"
#include "util/bytes.hpp"

namespace icsfuzz::model {

/// One node of an instantiation tree.
///
/// Leaf nodes hold `content` (their wire bytes). Composite nodes normally
/// hold children; a composite may instead be *opaque* — carrying pre-built
/// bytes donated from the puzzle corpus — in which case its internal
/// structure is not materialised (the donor was already a legal fragment).
struct InsNode {
  const Chunk* rule = nullptr;     // borrowed from the DataModel (must outlive)
  Bytes content;                   // leaf bytes, or opaque composite bytes
  bool opaque = false;             // composite with donor-provided content
  std::vector<InsNode> children;   // composite structure when !opaque

  /// For a parsed Choice node: index of the alternative that matched.
  std::optional<std::size_t> choice_index;

  [[nodiscard]] bool is_composite() const {
    return rule != nullptr && !rule->is_leaf();
  }

  /// Serialized wire bytes of this subtree (a "puzzle" per Definition 2).
  [[nodiscard]] Bytes serialize() const;

  /// Appends this subtree's wire bytes to `out` without clearing it — the
  /// allocation-free core of serialize(); callers own the buffer.
  void serialize_append(Bytes& out) const;

  /// Serialized byte length without materialising the bytes.
  [[nodiscard]] std::size_t serialized_size() const;

  /// DFS lookup by rule name within this subtree.
  [[nodiscard]] InsNode* find(const std::string& name);
  [[nodiscard]] const InsNode* find(const std::string& name) const;

  /// Node count (tests/diagnostics).
  [[nodiscard]] std::size_t node_count() const;
};

/// A complete instantiation of one data model.
struct InsTree {
  const DataModel* model = nullptr;  // borrowed; must outlive the tree
  InsNode root;

  [[nodiscard]] Bytes serialize() const { return root.serialize(); }

  /// Serializes into a caller-owned buffer (cleared first, capacity
  /// retained) — the packet pipeline's zero-allocation serialization path.
  void serialize_into(Bytes& out) const {
    out.clear();
    out.reserve(root.serialized_size());
    root.serialize_append(out);
  }
};

/// Options controlling `parse_packet`.
struct ParseOptions {
  /// Require every byte of the packet to be consumed (the LEGAL test).
  bool require_full_consumption = true;
  /// Verify checksum fixups against recomputed values.
  bool verify_fixups = true;
  /// Verify size-of / count-of fields against measured sizes.
  bool verify_relations = true;
};

/// PARSE(M, Iv): parses `packet` against `model`. Returns nullopt when the
/// packet is not legal under the model (token mismatch, truncation, length
/// inconsistency, failed checksum, trailing garbage).
std::optional<InsTree> parse_packet(const DataModel& model, ByteSpan packet,
                                    const ParseOptions& options = {});

/// File Fixup: recomputes relation fields and checksum fixups in `tree` so
/// the serialized packet satisfies its integrity constraints. Opaque donor
/// composites are treated as immutable byte ranges. Returns the number of
/// fields rewritten.
std::size_t apply_constraints(InsTree& tree);

/// Builds the default instantiation of a model: every leaf takes its
/// default value, choices take their first alternative, then constraints
/// are applied. The cheapest way to get one valid packet from a model.
InsTree default_instance(const DataModel& model);

/// Renders a one-line-per-node dump of the tree (tests, crash triage).
std::string dump_tree(const InsTree& tree);

}  // namespace icsfuzz::model
