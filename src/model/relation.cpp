#include "model/relation.hpp"

#include "util/strings.hpp"

namespace icsfuzz::model {

std::uint64_t relation_value(const Relation& relation, std::size_t target_bytes) {
  std::int64_t value = 0;
  switch (relation.kind) {
    case RelationKind::None:
      return 0;
    case RelationKind::SizeOf:
      value = static_cast<std::int64_t>(target_bytes);
      break;
    case RelationKind::CountOf: {
      const std::uint32_t unit = relation.unit == 0 ? 1 : relation.unit;
      value = static_cast<std::int64_t>(target_bytes / unit);
      break;
    }
  }
  value += relation.bias;
  return value < 0 ? 0 : static_cast<std::uint64_t>(value);
}

RelationKind relation_kind_from_string(const std::string& text) {
  const std::string lowered = to_lower(text);
  if (lowered == "sizeof" || lowered == "size") return RelationKind::SizeOf;
  if (lowered == "countof" || lowered == "count") return RelationKind::CountOf;
  return RelationKind::None;
}

std::string to_string(RelationKind kind) {
  switch (kind) {
    case RelationKind::None: return "none";
    case RelationKind::SizeOf: return "sizeof";
    case RelationKind::CountOf: return "countof";
  }
  return "none";
}

}  // namespace icsfuzz::model
