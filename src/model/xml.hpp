// Minimal XML document-object model — just enough to read Peach-Pit-style
// format specifications (elements, attributes, nesting, comments, XML
// declarations; no namespaces, entities beyond the five predefined ones, or
// CDATA).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace icsfuzz::model {

struct XmlElement {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<XmlElement> children;
  std::string text;  // concatenated character data directly inside this element

  /// Attribute lookup (first match); nullopt when absent.
  [[nodiscard]] std::optional<std::string> attr(const std::string& key) const;

  /// All direct children with the given element name.
  [[nodiscard]] std::vector<const XmlElement*> children_named(
      const std::string& name) const;

  /// First direct child with the given name, or nullptr.
  [[nodiscard]] const XmlElement* first_child(const std::string& name) const;
};

/// Parse result: the document element, or an error with offset context.
struct XmlParseResult {
  std::optional<XmlElement> root;
  std::string error;  // empty on success

  [[nodiscard]] bool ok() const { return root.has_value(); }
};

XmlParseResult parse_xml(std::string_view text);

}  // namespace icsfuzz::model
