// Relations — Peach's mechanism for integrity constraints between fields
// (the `Relation sizeof` edge in the paper's Figure 1 data model).
//
// A Number chunk carrying a relation does not hold free data: its value is
// derived from another chunk's serialized form. SizeOf yields the byte
// length of the target; CountOf yields the number of `unit` — byte elements
// (e.g. Modbus "Quantity of Registers" counts 2-byte units of the payload).
#pragma once

#include <cstdint>
#include <string>

namespace icsfuzz::model {

enum class RelationKind : std::uint8_t { None, SizeOf, CountOf };

struct Relation {
  RelationKind kind = RelationKind::None;
  /// Name of the chunk whose serialized bytes are measured.
  std::string target;
  /// Element width for CountOf (value = target_bytes / unit). Must be >= 1.
  std::uint32_t unit = 1;
  /// Constant added to the derived value (some framings count header bytes:
  /// e.g. Modbus MBAP length = unit id + PDU, DNP3 length counts addresses).
  std::int64_t bias = 0;

  [[nodiscard]] bool active() const { return kind != RelationKind::None; }
};

/// Derives the relation value from the measured byte length of the target.
std::uint64_t relation_value(const Relation& relation, std::size_t target_bytes);

/// Parses "sizeof"/"countof" (Pit XML attribute values).
RelationKind relation_kind_from_string(const std::string& text);
std::string to_string(RelationKind kind);

}  // namespace icsfuzz::model
