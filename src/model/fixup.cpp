#include "model/fixup.hpp"

#include "util/checksum.hpp"
#include "util/strings.hpp"

namespace icsfuzz::model {

std::uint64_t fixup_value(FixupKind kind, ByteSpan data) {
  switch (kind) {
    case FixupKind::None: return 0;
    case FixupKind::Crc32: return crc32(data);
    case FixupKind::Crc16Modbus: return crc16_modbus(data);
    case FixupKind::CrcDnp3: return crc16_dnp3(data);
    case FixupKind::Lrc8: return lrc8(data);
    case FixupKind::Sum8: return sum8(data);
    case FixupKind::Fletcher16: return fletcher16(data);
  }
  return 0;
}

std::size_t fixup_width(FixupKind kind) {
  switch (kind) {
    case FixupKind::None: return 0;
    case FixupKind::Crc32: return 4;
    case FixupKind::Crc16Modbus: return 2;
    case FixupKind::CrcDnp3: return 2;
    case FixupKind::Lrc8: return 1;
    case FixupKind::Sum8: return 1;
    case FixupKind::Fletcher16: return 2;
  }
  return 0;
}

FixupKind fixup_kind_from_string(const std::string& text) {
  const std::string lowered = to_lower(text);
  if (lowered == "crc32fixup" || lowered == "crc32") return FixupKind::Crc32;
  if (lowered == "crc16modbusfixup" || lowered == "crc16modbus" ||
      lowered == "crc16") {
    return FixupKind::Crc16Modbus;
  }
  if (lowered == "crcdnp3fixup" || lowered == "crcdnp3" || lowered == "dnp3crc") {
    return FixupKind::CrcDnp3;
  }
  if (lowered == "lrcfixup" || lowered == "lrc" || lowered == "lrc8") {
    return FixupKind::Lrc8;
  }
  if (lowered == "sumfixup" || lowered == "sum8" || lowered == "sum") {
    return FixupKind::Sum8;
  }
  if (lowered == "fletcher16fixup" || lowered == "fletcher16") {
    return FixupKind::Fletcher16;
  }
  return FixupKind::None;
}

std::string to_string(FixupKind kind) {
  switch (kind) {
    case FixupKind::None: return "none";
    case FixupKind::Crc32: return "Crc32Fixup";
    case FixupKind::Crc16Modbus: return "Crc16ModbusFixup";
    case FixupKind::CrcDnp3: return "CrcDnp3Fixup";
    case FixupKind::Lrc8: return "LrcFixup";
    case FixupKind::Sum8: return "SumFixup";
    case FixupKind::Fletcher16: return "Fletcher16Fixup";
  }
  return "none";
}

}  // namespace icsfuzz::model
