// Pit parser — loads a format specification written in a Peach-Pit-style
// XML dialect into a DataModelSet.
//
// Supported dialect (a faithful subset of Peach 3 Pit syntax):
//
//   <Peach>
//     <DataModel name="WriteSingleRegister" opcode="6">
//       <Number name="TransactionId" size="16" endian="big" value="1"/>
//       <Number name="Protocol"      size="16" token="true" value="0"/>
//       <Number name="Length" size="16">
//         <Relation type="sizeof" of="Body" bias="1"/>
//       </Number>
//       <Block name="Body">
//         <Number name="FunctionCode" size="8" token="true" value="6"/>
//         <Number name="Address" size="16" tag="reg-addr"/>
//         <Blob name="Payload" length="4"/>
//       </Block>
//       <Number name="Crc" size="32">
//         <Fixup class="Crc32Fixup" ref="Body"/>
//       </Number>
//     </DataModel>
//   </Peach>
//
// Notes vs real Peach: `size` on Number is in *bits* (8/16/24/32/64) as in
// Peach; String/Blob `length` is in bytes. `values` gives a comma-separated
// legal-value list. <Choice> wraps alternatives. `tag` sets the semantic
// rule tag that the puzzle corpus keys on.
#pragma once

#include <string>

#include "model/data_model.hpp"

namespace icsfuzz::model {

struct PitParseResult {
  DataModelSet models;
  std::string error;  // empty on success

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Parses a pit document from memory.
PitParseResult parse_pit(std::string_view xml_text);

/// Parses a pit file from disk.
PitParseResult parse_pit_file(const std::string& path);

}  // namespace icsfuzz::model
