#include "model/xml.hpp"

#include <cctype>

namespace icsfuzz::model {
namespace {

class XmlParser {
 public:
  explicit XmlParser(std::string_view text) : text_(text) {}

  XmlParseResult run() {
    skip_prolog();
    auto element = parse_element();
    if (!element) return fail();
    skip_misc();
    if (pos_ != text_.size()) return fail("trailing content after document element");
    XmlParseResult result;
    result.root = std::move(*element);
    return result;
  }

 private:
  XmlParseResult fail(std::string message = {}) {
    XmlParseResult result;
    result.error = message.empty() ? error_ : std::move(message);
    if (result.error.empty()) result.error = "malformed XML";
    result.error += " (at offset " + std::to_string(pos_) + ")";
    return result;
  }

  void set_error(std::string message) {
    if (error_.empty()) error_ = std::move(message);
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return eof() ? '\0' : text_[pos_]; }
  char take() { return eof() ? '\0' : text_[pos_++]; }

  bool consume(std::string_view token) {
    if (text_.substr(pos_, token.size()) != token) return false;
    pos_ += token.size();
    return true;
  }

  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  bool skip_comment() {
    if (!consume("<!--")) return false;
    const std::size_t end = text_.find("-->", pos_);
    if (end == std::string_view::npos) {
      set_error("unterminated comment");
      pos_ = text_.size();
      return true;
    }
    pos_ = end + 3;
    return true;
  }

  void skip_prolog() {
    skip_ws();
    if (consume("<?xml")) {
      const std::size_t end = text_.find("?>", pos_);
      pos_ = end == std::string_view::npos ? text_.size() : end + 2;
    }
    skip_misc();
  }

  void skip_misc() {
    for (;;) {
      skip_ws();
      if (!skip_comment()) return;
    }
  }

  static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
           c == '.' || c == ':';
  }

  std::string parse_name() {
    std::string name;
    while (!eof() && is_name_char(peek())) name.push_back(take());
    return name;
  }

  static void append_entity(std::string& out, std::string_view entity) {
    if (entity == "lt") out.push_back('<');
    else if (entity == "gt") out.push_back('>');
    else if (entity == "amp") out.push_back('&');
    else if (entity == "quot") out.push_back('"');
    else if (entity == "apos") out.push_back('\'');
    // Unknown entities are dropped; pits do not use others.
  }

  std::string parse_quoted() {
    const char quote = take();  // caller verified ' or "
    std::string value;
    while (!eof() && peek() != quote) {
      char c = take();
      if (c == '&') {
        std::string entity;
        while (!eof() && peek() != ';') entity.push_back(take());
        if (!eof()) take();  // ';'
        append_entity(value, entity);
      } else {
        value.push_back(c);
      }
    }
    if (!eof()) take();  // closing quote
    return value;
  }

  std::optional<XmlElement> parse_element() {
    skip_misc();
    if (peek() != '<' || !consume("<")) {
      set_error("expected element");
      return std::nullopt;
    }
    XmlElement element;
    element.name = parse_name();
    if (element.name.empty()) {
      set_error("empty element name");
      return std::nullopt;
    }
    // Attributes.
    for (;;) {
      skip_ws();
      if (consume("/>")) return element;
      if (consume(">")) break;
      std::string key = parse_name();
      if (key.empty()) {
        set_error("bad attribute in <" + element.name + ">");
        return std::nullopt;
      }
      skip_ws();
      if (!consume("=")) {
        set_error("attribute without value: " + key);
        return std::nullopt;
      }
      skip_ws();
      if (peek() != '"' && peek() != '\'') {
        set_error("unquoted attribute value: " + key);
        return std::nullopt;
      }
      element.attributes.emplace_back(std::move(key), parse_quoted());
    }
    // Content.
    for (;;) {
      if (eof()) {
        set_error("unterminated element <" + element.name + ">");
        return std::nullopt;
      }
      if (text_.substr(pos_, 4) == "<!--") {
        skip_comment();
        continue;
      }
      if (consume("</")) {
        const std::string closing = parse_name();
        skip_ws();
        if (!consume(">") || closing != element.name) {
          set_error("mismatched close tag for <" + element.name + ">");
          return std::nullopt;
        }
        return element;
      }
      if (peek() == '<') {
        auto child = parse_element();
        if (!child) return std::nullopt;
        element.children.push_back(std::move(*child));
        continue;
      }
      // Character data.
      char c = take();
      if (c == '&') {
        std::string entity;
        while (!eof() && peek() != ';') entity.push_back(take());
        if (!eof()) take();
        append_entity(element.text, entity);
      } else {
        element.text.push_back(c);
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<std::string> XmlElement::attr(const std::string& key) const {
  for (const auto& [name, value] : attributes) {
    if (name == key) return value;
  }
  return std::nullopt;
}

std::vector<const XmlElement*> XmlElement::children_named(
    const std::string& name) const {
  std::vector<const XmlElement*> out;
  for (const XmlElement& child : children) {
    if (child.name == name) out.push_back(&child);
  }
  return out;
}

const XmlElement* XmlElement::first_child(const std::string& name) const {
  for (const XmlElement& child : children) {
    if (child.name == name) return &child;
  }
  return nullptr;
}

XmlParseResult parse_xml(std::string_view text) {
  return XmlParser(text).run();
}

}  // namespace icsfuzz::model
