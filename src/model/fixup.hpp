// Fixups — Peach's post-generation integrity mechanism (the `Fixup
// Crc32Fixup` edge in the paper's Figure 1). A Number chunk with a fixup has
// its content overwritten, after all free fields are instantiated, with a
// checksum computed over the serialized bytes of a referenced chunk.
//
// The File Fixup module of Peach* (paper §IV-D) reuses exactly this
// machinery to repair packets assembled from cracked puzzle pieces.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace icsfuzz::model {

enum class FixupKind : std::uint8_t {
  None,
  Crc32,         // the paper's Crc32Fixup
  Crc16Modbus,   // Modbus RTU trailer
  CrcDnp3,       // DNP3 per-block CRC
  Lrc8,          // Modbus ASCII
  Sum8,          // simple additive checksum
  Fletcher16,    // synthetic example protocol
};

struct Fixup {
  FixupKind kind = FixupKind::None;
  /// Name of the chunk whose serialized bytes feed the checksum.
  std::string ref;

  [[nodiscard]] bool active() const { return kind != FixupKind::None; }
};

/// Computes the checksum value of `data` under `kind`.
std::uint64_t fixup_value(FixupKind kind, ByteSpan data);

/// Natural encoded width in bytes of each fixup kind (CRC32 -> 4, ...).
std::size_t fixup_width(FixupKind kind);

/// Parses Pit XML fixup class names ("Crc32Fixup", "Crc16ModbusFixup", ...).
FixupKind fixup_kind_from_string(const std::string& text);
std::string to_string(FixupKind kind);

}  // namespace icsfuzz::model
