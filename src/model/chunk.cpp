#include "model/chunk.hpp"

#include <utility>

namespace icsfuzz::model {
namespace {

std::uint64_t hash_mix(std::uint64_t hash, std::uint64_t value) {
  hash ^= value + 0x9E3779B97F4A7C15ULL + (hash << 6) + (hash >> 2);
  return hash;
}

std::uint64_t hash_string(std::uint64_t hash, const std::string& text) {
  for (char c : text) hash = hash_mix(hash, static_cast<std::uint8_t>(c));
  return hash;
}

}  // namespace

std::string to_string(ChunkKind kind) {
  switch (kind) {
    case ChunkKind::Number: return "Number";
    case ChunkKind::String: return "String";
    case ChunkKind::Blob: return "Blob";
    case ChunkKind::Block: return "Block";
    case ChunkKind::Choice: return "Choice";
  }
  return "?";
}

Chunk Chunk::number(std::string name, NumberSpec spec) {
  Chunk chunk(std::move(name), ChunkKind::Number);
  if (spec.width == 0) spec.width = 1;
  if (spec.width > 8) spec.width = 8;
  chunk.number_ = std::move(spec);
  chunk.tag_ = chunk.name_;
  return chunk;
}

Chunk Chunk::token(std::string name, std::size_t width, Endian endian,
                   std::uint64_t value) {
  NumberSpec spec;
  spec.width = width;
  spec.endian = endian;
  spec.default_value = value;
  spec.is_token = true;
  spec.legal_values = {value};
  return number(std::move(name), std::move(spec));
}

Chunk Chunk::string(std::string name, StringSpec spec) {
  Chunk chunk(std::move(name), ChunkKind::String);
  chunk.string_ = std::move(spec);
  chunk.tag_ = chunk.name_;
  return chunk;
}

Chunk Chunk::blob(std::string name, BlobSpec spec) {
  Chunk chunk(std::move(name), ChunkKind::Blob);
  if (spec.unit == 0) spec.unit = 1;
  chunk.blob_ = std::move(spec);
  chunk.tag_ = chunk.name_;
  return chunk;
}

Chunk Chunk::block(std::string name, std::vector<Chunk> children) {
  Chunk chunk(std::move(name), ChunkKind::Block);
  chunk.children_ = std::move(children);
  chunk.tag_ = chunk.name_;
  return chunk;
}

Chunk Chunk::choice(std::string name, std::vector<Chunk> children) {
  Chunk chunk(std::move(name), ChunkKind::Choice);
  chunk.children_ = std::move(children);
  chunk.tag_ = chunk.name_;
  return chunk;
}

Chunk& Chunk::with_tag(std::string tag) {
  tag_ = std::move(tag);
  return *this;
}

Chunk& Chunk::with_relation(Relation relation) {
  relation_ = std::move(relation);
  return *this;
}

Chunk& Chunk::with_fixup(Fixup fixup) {
  fixup_ = std::move(fixup);
  return *this;
}

std::uint64_t Chunk::shape_key() const {
  std::uint64_t hash = 0xC0FFEE ^ static_cast<std::uint64_t>(kind_);
  switch (kind_) {
    case ChunkKind::Number:
      hash = hash_mix(hash, number_.width);
      hash = hash_mix(hash, static_cast<std::uint64_t>(number_.endian));
      break;
    case ChunkKind::String:
      hash = hash_mix(hash, string_.length.value_or(0));
      hash = hash_mix(hash, string_.null_terminated ? 1 : 0);
      break;
    case ChunkKind::Blob:
      hash = hash_mix(hash, blob_.length.value_or(0));
      hash = hash_mix(hash, blob_.unit);
      break;
    case ChunkKind::Block:
    case ChunkKind::Choice:
      // A composite's shape is the ordered shape of its children.
      for (const Chunk& child : children_) {
        hash = hash_mix(hash, child.shape_key());
      }
      break;
  }
  return hash;
}

std::uint64_t Chunk::rule_key() const {
  std::uint64_t hash = shape_key();
  hash = hash_string(hash, tag_);
  // A relation- or fixup-carrying field is derived data, not free data; its
  // rule identity must not collide with a free field of the same shape.
  hash = hash_mix(hash, static_cast<std::uint64_t>(relation_.kind));
  hash = hash_mix(hash, static_cast<std::uint64_t>(fixup_.kind));
  return hash;
}

std::optional<std::size_t> Chunk::fixed_width() const {
  switch (kind_) {
    case ChunkKind::Number:
      return number_.width;
    case ChunkKind::String:
      if (string_.length) {
        return *string_.length + (string_.null_terminated ? 1 : 0);
      }
      return std::nullopt;
    case ChunkKind::Blob:
      return blob_.length;
    case ChunkKind::Block: {
      std::size_t total = 0;
      for (const Chunk& child : children_) {
        const auto width = child.fixed_width();
        if (!width) return std::nullopt;
        total += *width;
      }
      return total;
    }
    case ChunkKind::Choice: {
      // Fixed only when all alternatives agree.
      std::optional<std::size_t> common;
      for (const Chunk& child : children_) {
        const auto width = child.fixed_width();
        if (!width) return std::nullopt;
        if (common && *common != *width) return std::nullopt;
        common = width;
      }
      return common;
    }
  }
  return std::nullopt;
}

const Chunk* Chunk::find(const std::string& name) const {
  if (name_ == name) return this;
  for (const Chunk& child : children_) {
    if (const Chunk* found = child.find(name)) return found;
  }
  return nullptr;
}

std::size_t Chunk::node_count() const {
  std::size_t count = 1;
  for (const Chunk& child : children_) count += child.node_count();
  return count;
}

}  // namespace icsfuzz::model
