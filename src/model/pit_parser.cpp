#include "model/pit_parser.hpp"

#include <fstream>
#include <sstream>

#include "model/xml.hpp"
#include "util/hexdump.hpp"
#include "util/strings.hpp"

namespace icsfuzz::model {
namespace {

struct ChunkBuildResult {
  std::optional<Chunk> chunk;
  std::string error;
};

ChunkBuildResult build_error(std::string message) {
  return ChunkBuildResult{std::nullopt, std::move(message)};
}

Endian parse_endian(const XmlElement& element) {
  const std::string value = to_lower(element.attr("endian").value_or("big"));
  return value == "little" ? Endian::Little : Endian::Big;
}

/// Applies <Relation> / <Fixup> child elements and tag attribute.
std::string apply_common(Chunk& chunk, const XmlElement& element) {
  if (auto tag = element.attr("tag")) chunk.with_tag(*tag);
  if (const XmlElement* rel = element.first_child("Relation")) {
    Relation relation;
    relation.kind = relation_kind_from_string(rel->attr("type").value_or(""));
    if (relation.kind == RelationKind::None) {
      return "bad Relation type on " + chunk.name();
    }
    auto of = rel->attr("of");
    if (!of || of->empty()) return "Relation without 'of' on " + chunk.name();
    relation.target = *of;
    if (auto unit = rel->attr("unit")) {
      auto parsed = parse_uint(*unit);
      if (!parsed || *parsed == 0) return "bad Relation unit on " + chunk.name();
      relation.unit = static_cast<std::uint32_t>(*parsed);
    }
    if (auto bias = rel->attr("bias")) {
      // bias may be negative; parse sign manually.
      std::string_view text = *bias;
      bool negative = false;
      if (!text.empty() && (text[0] == '-' || text[0] == '+')) {
        negative = text[0] == '-';
        text.remove_prefix(1);
      }
      auto parsed = parse_uint(text);
      if (!parsed) return "bad Relation bias on " + chunk.name();
      relation.bias = negative ? -static_cast<std::int64_t>(*parsed)
                               : static_cast<std::int64_t>(*parsed);
    }
    chunk.with_relation(relation);
  }
  if (const XmlElement* fix = element.first_child("Fixup")) {
    Fixup fixup;
    fixup.kind = fixup_kind_from_string(fix->attr("class").value_or(""));
    if (fixup.kind == FixupKind::None) {
      return "bad Fixup class on " + chunk.name();
    }
    auto ref = fix->attr("ref");
    if (!ref || ref->empty()) return "Fixup without 'ref' on " + chunk.name();
    fixup.ref = *ref;
    chunk.with_fixup(fixup);
  }
  return {};
}

ChunkBuildResult build_chunk(const XmlElement& element);

ChunkBuildResult build_number(const XmlElement& element,
                              const std::string& name) {
  NumberSpec spec;
  const std::string size_text = element.attr("size").value_or("8");
  auto size_bits = parse_uint(size_text);
  if (!size_bits || *size_bits == 0 || *size_bits % 8 != 0 || *size_bits > 64) {
    return build_error("bad Number size '" + size_text + "' on " + name);
  }
  spec.width = static_cast<std::size_t>(*size_bits / 8);
  spec.endian = parse_endian(element);
  if (auto value = element.attr("value")) {
    auto parsed = parse_uint(*value);
    if (!parsed) return build_error("bad Number value on " + name);
    spec.default_value = *parsed;
  }
  if (auto token = element.attr("token")) {
    auto parsed = parse_bool(*token);
    if (!parsed) return build_error("bad token attribute on " + name);
    spec.is_token = *parsed;
  }
  if (auto values = element.attr("values")) {
    for (const std::string& item : split(*values, ',')) {
      auto parsed = parse_uint(trim(item));
      if (!parsed) return build_error("bad values list on " + name);
      spec.legal_values.push_back(*parsed);
    }
  }
  if (auto min = element.attr("min")) {
    auto parsed = parse_uint(*min);
    if (!parsed) return build_error("bad min on " + name);
    spec.min_value = *parsed;
  }
  if (auto max = element.attr("max")) {
    auto parsed = parse_uint(*max);
    if (!parsed) return build_error("bad max on " + name);
    spec.max_value = *parsed;
  }
  if (spec.is_token && spec.legal_values.empty()) {
    spec.legal_values = {spec.default_value};
  }
  Chunk chunk = Chunk::number(name, std::move(spec));
  if (std::string error = apply_common(chunk, element); !error.empty()) {
    return build_error(std::move(error));
  }
  return ChunkBuildResult{std::move(chunk), {}};
}

ChunkBuildResult build_string(const XmlElement& element,
                              const std::string& name) {
  StringSpec spec;
  if (auto length = element.attr("length")) {
    auto parsed = parse_uint(*length);
    if (!parsed) return build_error("bad String length on " + name);
    spec.length = static_cast<std::size_t>(*parsed);
  }
  spec.default_value = element.attr("value").value_or("");
  if (auto terminated = element.attr("nullTerminated")) {
    auto parsed = parse_bool(*terminated);
    if (!parsed) return build_error("bad nullTerminated on " + name);
    spec.null_terminated = *parsed;
  }
  if (auto max_generated = element.attr("maxGenerated")) {
    auto parsed = parse_uint(*max_generated);
    if (!parsed || *parsed == 0) return build_error("bad maxGenerated on " + name);
    spec.max_generated = static_cast<std::size_t>(*parsed);
  }
  Chunk chunk = Chunk::string(name, std::move(spec));
  if (std::string error = apply_common(chunk, element); !error.empty()) {
    return build_error(std::move(error));
  }
  return ChunkBuildResult{std::move(chunk), {}};
}

ChunkBuildResult build_blob(const XmlElement& element, const std::string& name) {
  BlobSpec spec;
  if (auto length = element.attr("length")) {
    auto parsed = parse_uint(*length);
    if (!parsed) return build_error("bad Blob length on " + name);
    spec.length = static_cast<std::size_t>(*parsed);
  }
  if (auto value = element.attr("valueHex")) {
    spec.default_value = from_hex(*value);
    if (spec.default_value.empty() && !value->empty()) {
      return build_error("bad Blob valueHex on " + name);
    }
  } else if (auto text_value = element.attr("value")) {
    spec.default_value = to_bytes(*text_value);
  }
  if (auto unit = element.attr("unit")) {
    auto parsed = parse_uint(*unit);
    if (!parsed || *parsed == 0) return build_error("bad Blob unit on " + name);
    spec.unit = static_cast<std::uint32_t>(*parsed);
  }
  if (auto max_generated = element.attr("maxGenerated")) {
    auto parsed = parse_uint(*max_generated);
    if (!parsed) return build_error("bad maxGenerated on " + name);
    spec.max_generated = static_cast<std::size_t>(*parsed);
  }
  Chunk chunk = Chunk::blob(name, std::move(spec));
  if (std::string error = apply_common(chunk, element); !error.empty()) {
    return build_error(std::move(error));
  }
  return ChunkBuildResult{std::move(chunk), {}};
}

ChunkBuildResult build_composite(const XmlElement& element,
                                 const std::string& name, bool is_choice) {
  std::vector<Chunk> children;
  for (const XmlElement& child : element.children) {
    if (child.name == "Relation" || child.name == "Fixup") continue;
    auto result = build_chunk(child);
    if (!result.chunk) return result;
    children.push_back(std::move(*result.chunk));
  }
  if (children.empty()) {
    return build_error(std::string(is_choice ? "Choice" : "Block") +
                       " with no children: " + name);
  }
  Chunk chunk = is_choice ? Chunk::choice(name, std::move(children))
                          : Chunk::block(name, std::move(children));
  if (std::string error = apply_common(chunk, element); !error.empty()) {
    return build_error(std::move(error));
  }
  return ChunkBuildResult{std::move(chunk), {}};
}

ChunkBuildResult build_chunk(const XmlElement& element) {
  const std::string name = element.attr("name").value_or("");
  if (name.empty()) {
    return build_error("element <" + element.name + "> without name");
  }
  if (element.name == "Number") return build_number(element, name);
  if (element.name == "String") return build_string(element, name);
  if (element.name == "Blob") return build_blob(element, name);
  if (element.name == "Block") return build_composite(element, name, false);
  if (element.name == "Choice") return build_composite(element, name, true);
  return build_error("unknown element <" + element.name + ">");
}

}  // namespace

PitParseResult parse_pit(std::string_view xml_text) {
  PitParseResult result;
  XmlParseResult xml = parse_xml(xml_text);
  if (!xml.ok()) {
    result.error = "XML error: " + xml.error;
    return result;
  }
  const XmlElement& root = *xml.root;
  if (root.name != "Peach") {
    result.error = "document element must be <Peach>, got <" + root.name + ">";
    return result;
  }
  for (const XmlElement* model_element : root.children_named("DataModel")) {
    const std::string name = model_element->attr("name").value_or("");
    if (name.empty()) {
      result.error = "DataModel without name";
      return result;
    }
    std::vector<Chunk> fields;
    for (const XmlElement& child : model_element->children) {
      auto built = build_chunk(child);
      if (!built.chunk) {
        result.error = "DataModel " + name + ": " + built.error;
        return result;
      }
      fields.push_back(std::move(*built.chunk));
    }
    if (fields.empty()) {
      result.error = "DataModel " + name + " has no fields";
      return result;
    }
    DataModel model(name, Chunk::block(name + ".root", std::move(fields)));
    if (auto opcode = model_element->attr("opcode")) {
      auto parsed = parse_uint(*opcode);
      if (!parsed) {
        result.error = "DataModel " + name + ": bad opcode";
        return result;
      }
      model.set_opcode(*parsed);
    }
    if (auto error = model.validate()) {
      result.error = "DataModel " + name + ": " + *error;
      return result;
    }
    result.models.add(std::move(model));
  }
  if (result.models.empty()) {
    result.error = "pit contains no DataModel";
    return result;
  }
  return result;
}

PitParseResult parse_pit_file(const std::string& path) {
  std::ifstream input(path, std::ios::binary);
  if (!input) {
    PitParseResult result;
    result.error = "cannot open pit file: " + path;
    return result;
  }
  std::ostringstream buffer;
  buffer << input.rdbuf();
  return parse_pit(buffer.str());
}

}  // namespace icsfuzz::model
