#include "sanitizer/fault.hpp"

#include <utility>

namespace icsfuzz::san {
namespace {

struct SinkState {
  bool armed = false;
  std::vector<FaultReport> faults;
};

thread_local SinkState tls_sink;

}  // namespace

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::Segv: return "SEGV";
    case FaultKind::HeapBufferOverflow: return "Heap Buffer Overflow";
    case FaultKind::HeapUseAfterFree: return "Heap Use after Free";
    case FaultKind::Hang: return "Hang";
  }
  return "Unknown";
}

std::string to_slug(FaultKind kind) {
  switch (kind) {
    case FaultKind::Segv: return "segv";
    case FaultKind::HeapBufferOverflow: return "heap-overflow";
    case FaultKind::HeapUseAfterFree: return "heap-uaf";
    case FaultKind::Hang: return "hang";
  }
  return "unknown";
}

std::optional<FaultKind> kind_from_slug(std::string_view slug) {
  if (slug == "segv") return FaultKind::Segv;
  if (slug == "heap-overflow") return FaultKind::HeapBufferOverflow;
  if (slug == "heap-uaf") return FaultKind::HeapUseAfterFree;
  if (slug == "hang") return FaultKind::Hang;
  return std::nullopt;
}

void FaultSink::arm() {
  tls_sink.armed = true;
  tls_sink.faults.clear();
}

std::vector<FaultReport> FaultSink::disarm() {
  tls_sink.armed = false;
  return std::exchange(tls_sink.faults, {});
}

void FaultSink::disarm_into(std::vector<FaultReport>& out) {
  tls_sink.armed = false;
  out.clear();
  std::swap(out, tls_sink.faults);
}

void FaultSink::raise(FaultKind kind, std::uint32_t site, std::string detail) {
  if (!tls_sink.armed) return;
  // Keep only the first fault: a real process dies at its first invalid
  // access, so later "faults" in the same execution would never be observed.
  if (!tls_sink.faults.empty()) return;
  tls_sink.faults.push_back(FaultReport{kind, site, std::move(detail)});
}

bool FaultSink::tripped() { return !tls_sink.faults.empty(); }

bool FaultSink::armed() { return tls_sink.armed; }

}  // namespace icsfuzz::san
