#include "sanitizer/guard.hpp"

#include <string>

namespace icsfuzz::san {
namespace {

std::string describe_oob(std::string_view label, std::size_t index,
                         std::size_t size) {
  return std::string(label) + ": index " + std::to_string(index) +
         " out of bounds (size " + std::to_string(size) + ")";
}

}  // namespace

std::uint8_t GuardedSpan::at(std::size_t index) const {
  if (index >= data_.size()) {
    FaultSink::raise(FaultKind::Segv, site_, describe_oob(label_, index, data_.size()));
    return 0;
  }
  return data_[index];
}

std::uint16_t GuardedSpan::load_u16be(std::size_t index) const {
  const std::uint16_t high = at(index);
  const std::uint16_t low = at(index + 1);
  return static_cast<std::uint16_t>((high << 8) | low);
}

GuardedAlloc::GuardedAlloc(std::size_t size, std::uint32_t site,
                           std::string_view label)
    : storage_(size, 0), site_(site), label_(label) {}

bool GuardedAlloc::fault_if_freed(const char* op) const {
  if (!freed_) return false;
  FaultSink::raise(FaultKind::HeapUseAfterFree, site_,
                   std::string(label_) + ": " + op + " after free");
  return true;
}

std::uint8_t GuardedAlloc::read(std::size_t index) const {
  if (fault_if_freed("read")) return 0;
  if (index >= storage_.size()) {
    FaultSink::raise(FaultKind::Segv, site_,
                     describe_oob(label_, index, storage_.size()));
    return 0;
  }
  return storage_[index];
}

void GuardedAlloc::write(std::size_t index, std::uint8_t value) {
  if (fault_if_freed("write")) return;
  if (index >= storage_.size()) {
    FaultSink::raise(FaultKind::HeapBufferOverflow, site_,
                     describe_oob(label_, index, storage_.size()));
    return;
  }
  storage_[index] = value;
}

void GuardedAlloc::write_bytes(std::size_t offset, ByteSpan data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    write(offset + i, data[i]);
    if (FaultSink::tripped()) return;
  }
}

void GuardedAlloc::free() {
  if (fault_if_freed("free")) return;
  freed_ = true;
}

}  // namespace icsfuzz::san
