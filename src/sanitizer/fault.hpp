// Soft-sanitizer fault model.
//
// The paper runs its targets under AddressSanitizer and treats the ASan
// report (SEGV, heap-use-after-free, heap-buffer-overflow) as the crash
// signal, deduplicated by crash site. Re-raising real signals inside a
// single-process fuzzing loop would be both slow (fork/exec per exec) and
// non-portable, so the protocol stacks in this repository perform all
// packet-derived memory accesses through guarded wrappers (guard.hpp) that
// detect the same violation classes and report them here as structured
// `FaultReport`s. The observable surface — fault kind + unique site —
// matches what the paper's fuzzer consumes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace icsfuzz::san {

/// Violation classes, mirroring the "Vulnerability Type" column of Table I.
enum class FaultKind : std::uint8_t {
  Segv,                 // wild/out-of-bounds read ("SEGV" in the paper)
  HeapBufferOverflow,   // out-of-bounds write on a tracked allocation
  HeapUseAfterFree,     // access to a freed tracked allocation
  Hang,                 // execution exceeded its deterministic event budget
};

/// Human-readable name ("SEGV", "Heap Buffer Overflow", ...), matching the
/// paper's Table I wording.
std::string to_string(FaultKind kind);

/// Stable filesystem/JSON slug ("segv", "heap-overflow", "heap-uaf",
/// "hang") — the identifier persisted artefacts key on.
std::string to_slug(FaultKind kind);

/// Inverse of to_slug (nullopt for an unknown slug).
std::optional<FaultKind> kind_from_slug(std::string_view slug);

/// One detected violation. `site` identifies the program point (the
/// "crash site" used for dedup); `detail` is the diagnostic message.
struct FaultReport {
  FaultKind kind = FaultKind::Segv;
  std::uint32_t site = 0;
  std::string detail;
};

/// Thread-local collector armed by the executor around each packet run.
///
/// Target code calls `raise()`; the first fault of an execution is retained
/// (like a process that dies on its first invalid access) and subsequent
/// target code can test `tripped()` to unwind early, emulating the abrupt
/// termination an actual signal would cause.
class FaultSink {
 public:
  /// Arms the sink for a fresh execution.
  static void arm();

  /// Disarms and returns the faults collected during the execution.
  static std::vector<FaultReport> disarm();

  /// Allocation-free disarm: swaps the collected faults into `out`
  /// (clearing it first). On the fault-free steady-state path this swaps
  /// two empty vectors — no heap traffic — which is what lets
  /// Executor::run_into stay zero-allocation across executions.
  static void disarm_into(std::vector<FaultReport>& out);

  /// Records a fault (no-op when the sink is not armed).
  static void raise(FaultKind kind, std::uint32_t site, std::string detail);

  /// True once any fault has been recorded in the current execution.
  static bool tripped();

  /// True while an execution is being monitored.
  static bool armed();
};

/// Stable fault-site id derived from a string tag (usually the function or
/// CVE-style bug name). Constexpr so sites are compile-time constants.
constexpr std::uint32_t site_id(const char* tag) {
  std::uint32_t hash = 2166136261U;
  for (const char* p = tag; *p != '\0'; ++p) {
    hash ^= static_cast<std::uint8_t>(*p);
    hash *= 16777619U;
  }
  return hash;
}

}  // namespace icsfuzz::san
