// Guarded memory wrappers — the mechanism through which the re-implemented
// protocol stacks "crash" like their ASan-compiled originals.
//
// GuardedSpan models a read view of packet-derived memory: an out-of-bounds
// index is exactly the bad-address dereference the paper shows in lib60870's
// CS101_ASDU_getCOT (Listing 1/2) and reports as SEGV.
//
// GuardedAlloc models a tracked heap allocation: writes past the end report
// Heap Buffer Overflow; any access after free() reports Heap Use after Free.
// Faults flow to the thread-local FaultSink and the wrappers return benign
// values so the (single-process) fuzzing loop survives.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sanitizer/fault.hpp"
#include "util/bytes.hpp"

namespace icsfuzz::san {

/// Bounds-checked read-only view. Unlike ByteReader (which models *correct*
/// parsing with explicit truncation handling), GuardedSpan models the
/// *unchecked* accesses of buggy code: `at()` past the end raises Segv.
class GuardedSpan {
 public:
  // The label must outlive the guard (call sites pass string literals);
  // keeping a view instead of a std::string keeps guard construction off
  // the heap — asdu_get_cot builds one per ASDU on the hot path.
  GuardedSpan(ByteSpan data, std::uint32_t site, std::string_view label)
      : data_(data), site_(site), label_(label) {}

  /// Unchecked-style element access; OOB raises Segv and returns 0.
  std::uint8_t at(std::size_t index) const;

  /// 16-bit big-endian load at `index` (two at() reads).
  std::uint16_t load_u16be(std::size_t index) const;

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] ByteSpan raw() const { return data_; }

 private:
  ByteSpan data_;
  std::uint32_t site_;
  std::string_view label_;
};

/// Tracked heap allocation with ASan-like poisoning semantics.
class GuardedAlloc {
 public:
  GuardedAlloc(std::size_t size, std::uint32_t site, std::string_view label);

  /// Read; OOB raises Segv, freed raises HeapUseAfterFree. Returns 0 on fault.
  std::uint8_t read(std::size_t index) const;

  /// Write; OOB raises HeapBufferOverflow, freed raises HeapUseAfterFree.
  void write(std::size_t index, std::uint8_t value);

  /// Bulk write starting at `offset`; each OOB byte raises (deduped by the
  /// sink's first-fault rule).
  void write_bytes(std::size_t offset, ByteSpan data);

  /// Marks the allocation freed; double free raises HeapUseAfterFree.
  void free();

  [[nodiscard]] bool freed() const { return freed_; }
  [[nodiscard]] std::size_t size() const { return storage_.size(); }

  /// Valid (in-bounds, not freed) contents for assertions in tests.
  [[nodiscard]] const Bytes& storage() const { return storage_; }

 private:
  bool fault_if_freed(const char* op) const;

  Bytes storage_;
  std::uint32_t site_;
  std::string_view label_;
  bool freed_ = false;
};

}  // namespace icsfuzz::san
